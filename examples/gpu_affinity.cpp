// Plan-ahead in action: when is it worth *waiting* for a GPU?
//
// A GPU job arrives while all GPU nodes are busy for another 16 seconds.
// Running immediately anywhere takes 3x as long as running on GPUs. With
// plan-ahead, TetriSched compares "slow now" against "fast later" inside one
// MILP and defers exactly when the math favors it; without plan-ahead
// (TetriSched-NP / alsched) it can only grab the slow fallback.
//
// The example sweeps the job's deadline from relaxed to urgent and shows the
// scheduler switching from "wait for GPUs" to "start immediately anywhere".

#include <cstdio>

#include "src/core/scheduler.h"

using namespace tetrisched;

namespace {

RunningHold BusyGpus(const Cluster& cluster, SimTime until) {
  RunningHold hold;
  hold.job = 999;
  hold.slo_class = SloClass::kBestEffort;
  hold.counts[cluster.GpuPartitions()[0]] =
      cluster.CapacityOf(cluster.GpuPartitions());
  hold.expected_end = until;
  return hold;
}

}  // namespace

int main() {
  Cluster cluster = MakeUniformCluster(/*racks=*/2, /*nodes_per_rack=*/4,
                                       /*gpu_racks=*/1);
  std::printf("Cluster: %d nodes, %d with GPUs. GPUs busy until t=16.\n\n",
              cluster.num_nodes(), cluster.num_gpu_nodes());

  Job job;
  job.id = 1;
  job.type = JobType::kGpu;
  job.k = 4;
  job.submit = 0;
  job.actual_runtime = 40;  // on GPUs; 120 s anywhere else
  job.slowdown = 3.0;
  job.wants_reservation = true;
  job.slo_class = SloClass::kSloAccepted;

  std::printf("%-10s | %-18s | %s\n", "deadline", "with plan-ahead",
              "without plan-ahead (NP)");
  std::printf("-----------+--------------------+------------------------\n");
  for (SimTime deadline : {400, 200, 120, 100, 30}) {
    job.deadline = deadline;

    auto describe = [&](TetriSchedConfig config) -> std::string {
      config.milp.rel_gap = 0.0;
      TetriScheduler scheduler(cluster, config);
      auto decision =
          scheduler.OnCycle(0, {&job}, {BusyGpus(cluster, 16)});
      if (!decision.drop.empty()) {
        return "drop (SLO hopeless)";
      }
      if (decision.start_now.empty()) {
        return "wait for GPUs";
      }
      return decision.start_now[0].preferred_belief ? "start on GPUs now"
                                                    : "start anywhere (slow)";
    };

    std::printf("%8lld s | %-18s | %s\n", (long long)deadline,
                describe(TetriSchedConfig::Full(96)).c_str(),
                describe(TetriSchedConfig::NoPlanAhead()).c_str());
  }

  std::printf(
      "\nThe plan-ahead scheduler sees the GPUs freeing at t=16 and defers\n"
      "for the fast run (finishing ~t=56). Deciding \"now or never\", NP\n"
      "settles for the 3x slower fallback (finishing ~t=120) while the\n"
      "deadline still allows it; once it does not (<120 s), NP is stuck\n"
      "waiting blindly. And when no option can meet the SLO at all (30 s),\n"
      "both cull the job instead of wasting cluster time on it.\n");
  return 0;
}
