// A production day in miniature: the trace-derived GR MIX workload (52% SLO
// jobs with deadlines, 48% best-effort) run through both scheduler stacks —
// Rayon/TetriSched and Rayon/CapacityScheduler — on the same cluster, same
// jobs, same admission decisions. Prints the §6.3 success metrics side by
// side plus a per-class breakdown.
//
// Usage: production_mix [num_jobs] [estimate_error]
//   e.g. ./build/examples/production_mix 80 -0.2   (20% under-estimation)

#include <cstdio>
#include <cstdlib>

#include "src/baseline/capacity_scheduler.h"
#include "src/core/scheduler.h"
#include "src/sim/simulator.h"
#include "src/sim/trace.h"
#include "src/workload/workload.h"

using namespace tetrisched;

int main(int argc, char** argv) {
  int num_jobs = argc > 1 ? std::atoi(argv[1]) : 80;
  double estimate_error = argc > 2 ? std::atof(argv[2]) : 0.0;

  Cluster cluster = MakeUniformCluster(8, 4, 0);
  WorkloadParams params;
  params.kind = WorkloadKind::kGrMix;
  params.num_jobs = num_jobs;
  params.estimate_error = estimate_error;
  params.seed = 2016;
  std::vector<Job> jobs = GenerateWorkload(cluster, params);
  int accepted = ApplyAdmission(cluster, jobs);

  std::printf("Workload: %s\n", DescribeWorkload(jobs).c_str());
  std::printf("Rayon accepted %d reservations; estimate error %+.0f%%\n\n",
              accepted, estimate_error * 100);

  SimTrace tetri_trace;
  SimTrace cs_trace;
  auto run = [&](SchedulerPolicy& policy, SimTrace* trace) {
    SimConfig sim_config;
    sim_config.trace = trace;
    Simulator sim(cluster, policy, jobs, sim_config);
    return sim.Run();
  };

  TetriScheduler tetri(cluster, TetriSchedConfig::Full());
  SimMetrics tetri_metrics = run(tetri, &tetri_trace);
  CapacityScheduler cs(cluster);
  SimMetrics cs_metrics = run(cs, &cs_trace);

  std::printf("%-34s %14s %14s\n", "metric", "Rayon/CS", "TetriSched");
  auto row = [&](const char* name, double cs_value, double tetri_value,
                 const char* unit) {
    std::printf("%-34s %13.1f%s %13.1f%s\n", name, cs_value, unit,
                tetri_value, unit);
  };
  row("SLO attainment (all SLO jobs)", 100 * cs_metrics.TotalSloAttainment(),
      100 * tetri_metrics.TotalSloAttainment(), "%");
  row("SLO attainment (accepted)", 100 * cs_metrics.AcceptedSloAttainment(),
      100 * tetri_metrics.AcceptedSloAttainment(), "%");
  row("SLO attainment (w/o reservation)",
      100 * cs_metrics.UnreservedSloAttainment(),
      100 * tetri_metrics.UnreservedSloAttainment(), "%");
  row("best-effort mean latency", cs_metrics.MeanBestEffortLatency(),
      tetri_metrics.MeanBestEffortLatency(), "s");
  row("cluster utilization", 100 * cs_metrics.utilization,
      100 * tetri_metrics.utilization, "%");
  row("preemptions", cs_metrics.preemptions, tetri_metrics.preemptions, " ");
  row("mean cycle latency", cs_metrics.cycle_latency_ms.Mean(),
      tetri_metrics.cycle_latency_ms.Mean(), "ms");

  // Per-class job counts for context.
  int counts[3] = {0, 0, 0};
  for (const JobOutcome& outcome : tetri_metrics.outcomes) {
    ++counts[static_cast<int>(outcome.slo_class)];
  }
  std::printf("\nJob classes: %d best-effort, %d accepted SLO, %d SLO w/o "
              "reservation\n",
              counts[0], counts[1], counts[2]);

  std::printf("\nRayon/CS    %s\n",
              cs_trace.RenderUtilizationTimeline(cluster.num_nodes()).c_str());
  std::printf("TetriSched  %s\n",
              tetri_trace.RenderUtilizationTimeline(cluster.num_nodes()).c_str());
  return 0;
}
