// Command-line experiment runner: one simulated experiment, fully
// parameterized from flags. The general-purpose front door to the library
// for ad-hoc exploration:
//
//   experiment_runner [--workload=gshet] [--policy=tetrisched]
//                     [--nodes-per-rack=4] [--racks=4] [--gpu-racks=2]
//                     [--jobs=60] [--error=0.0] [--plan-ahead=96]
//                     [--seed=1] [--slowdown=1.5] [--load=1.0]
//                     [--arrivals=poisson|bursty|diurnal] [--learn]
//                     [--preemption] [--trace=out.csv] [--timeline]
//
// Policies: tetrisched, nh, ng, np, cs, delay<tolerance> (e.g. delay60).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "src/baseline/capacity_scheduler.h"
#include "src/common/atomic_io.h"
#include "src/baseline/delay_scheduler.h"
#include "src/core/scheduler.h"
#include "src/sim/simulator.h"
#include "src/sim/trace.h"
#include "src/workload/workload.h"

using namespace tetrisched;

namespace {

struct Flags {
  std::string workload = "gshet";
  std::string policy = "tetrisched";
  int racks = 4;
  int nodes_per_rack = 4;
  int gpu_racks = 2;
  int jobs = 60;
  double error = 0.0;
  SimDuration plan_ahead = 96;
  uint64_t seed = 1;
  double slowdown = 1.5;
  double load = 1.0;
  std::string arrivals = "poisson";
  bool learn = false;
  bool preemption = false;
  std::string trace_path;
  bool timeline = false;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) == 0) {
    *out = arg + prefix.size();
    return true;
  }
  return false;
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "workload", &value)) {
      flags->workload = value;
    } else if (ParseFlag(argv[i], "policy", &value)) {
      flags->policy = value;
    } else if (ParseFlag(argv[i], "racks", &value)) {
      flags->racks = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "nodes-per-rack", &value)) {
      flags->nodes_per_rack = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "gpu-racks", &value)) {
      flags->gpu_racks = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "jobs", &value)) {
      flags->jobs = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "error", &value)) {
      flags->error = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "plan-ahead", &value)) {
      flags->plan_ahead = std::atoll(value.c_str());
    } else if (ParseFlag(argv[i], "seed", &value)) {
      flags->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "slowdown", &value)) {
      flags->slowdown = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "load", &value)) {
      flags->load = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "arrivals", &value)) {
      flags->arrivals = value;
    } else if (ParseFlag(argv[i], "trace", &value)) {
      flags->trace_path = value;
    } else if (std::strcmp(argv[i], "--learn") == 0) {
      flags->learn = true;
    } else if (std::strcmp(argv[i], "--preemption") == 0) {
      flags->preemption = true;
    } else if (std::strcmp(argv[i], "--timeline") == 0) {
      flags->timeline = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

std::unique_ptr<SchedulerPolicy> MakePolicy(const Flags& flags,
                                            const Cluster& cluster) {
  if (flags.policy == "cs") {
    return std::make_unique<CapacityScheduler>(cluster);
  }
  if (flags.policy.rfind("delay", 0) == 0) {
    DelaySchedulerConfig config;
    if (flags.policy.size() > 5) {
      config.delay_tolerance = std::atoll(flags.policy.c_str() + 5);
    }
    return std::make_unique<DelayScheduler>(cluster, config);
  }
  TetriSchedConfig config;
  if (flags.policy == "nh") {
    config = TetriSchedConfig::NoHeterogeneity(flags.plan_ahead);
  } else if (flags.policy == "ng") {
    config = TetriSchedConfig::NoGlobal(flags.plan_ahead);
  } else if (flags.policy == "np") {
    config = TetriSchedConfig::NoPlanAhead();
  } else {
    config = TetriSchedConfig::Full(flags.plan_ahead);
  }
  config.enable_preemption = flags.preemption;
  return std::make_unique<TetriScheduler>(cluster, config);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    return 1;
  }

  Cluster cluster =
      MakeUniformCluster(flags.racks, flags.nodes_per_rack, flags.gpu_racks);

  WorkloadParams params;
  params.kind = flags.workload == "grslo"   ? WorkloadKind::kGrSlo
                : flags.workload == "grmix" ? WorkloadKind::kGrMix
                : flags.workload == "gsmix" ? WorkloadKind::kGsMix
                                            : WorkloadKind::kGsHet;
  params.num_jobs = flags.jobs;
  params.estimate_error = flags.error;
  params.seed = flags.seed;
  params.slowdown = flags.slowdown;
  params.target_load = flags.load;
  params.arrivals = flags.arrivals == "bursty"    ? ArrivalPattern::kBursty
                    : flags.arrivals == "diurnal" ? ArrivalPattern::kDiurnal
                                                  : ArrivalPattern::kPoisson;

  std::vector<Job> jobs = GenerateWorkload(cluster, params);
  int accepted = ApplyAdmission(cluster, jobs);
  std::printf("workload: %s (%s arrivals), %d reservations accepted\n",
              DescribeWorkload(jobs).c_str(), ToString(params.arrivals),
              accepted);

  std::unique_ptr<SchedulerPolicy> policy = MakePolicy(flags, cluster);
  SimTrace trace;
  SimConfig sim_config;
  sim_config.learn_estimates = flags.learn;
  if (!flags.trace_path.empty() || flags.timeline) {
    sim_config.trace = &trace;
  }
  Simulator sim(cluster, *policy, std::move(jobs), sim_config);
  SimMetrics metrics = sim.Run();

  std::printf("policy: %s\n%s\n", policy->name(), metrics.Summary().c_str());
  std::printf("cycle latency: mean %.2f ms, p95 %.2f ms | preemptions %d | "
              "failure kills %d\n",
              metrics.cycle_latency_ms.Mean(),
              metrics.cycle_latency_ms.Percentile(95), metrics.preemptions,
              metrics.failure_kills);
  if (flags.timeline) {
    std::printf("%s\n",
                trace.RenderUtilizationTimeline(cluster.num_nodes()).c_str());
  }
  if (!flags.trace_path.empty()) {
    if (WriteFileAtomic(flags.trace_path, trace.ToCsv())) {
      std::printf("trace written to %s (%zu events)\n",
                  flags.trace_path.c_str(), trace.size());
    } else {
      std::fprintf(stderr, "cannot write trace to %s\n",
                   flags.trace_path.c_str());
    }
  }
  return 0;
}
