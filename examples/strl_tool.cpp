// STRL inspection tool: builds the paper's canonical STRL expressions,
// pretty-prints them, compiles each to MILP, and shows the solved schedule.
// Handy for understanding how each operator lowers into variables and
// constraints (Algorithm 1).
//
// Usage: strl_tool [expr]
//   expr: one of soft | gang | antiaffinity | barrier | global (default all)

#include <cstdio>
#include <cstring>

#include "src/cluster/availability.h"
#include "src/compiler/compiler.h"
#include "src/solver/milp.h"
#include "src/strl/strl.h"

using namespace tetrisched;

namespace {

void Show(const char* name, const char* comment, const Cluster& cluster,
          const StrlExpr& expr) {
  std::printf("=== %s ===\n%s\n\nSTRL:  %s\n", name, comment,
              ToString(expr).c_str());
  TimeGrid grid{.start = 0, .quantum = 1, .num_slices = 8};
  AvailabilityGrid availability(cluster, grid);
  CompiledStrl compiled = StrlCompiler(availability).Compile(expr);
  std::printf("MILP:  %d vars, %d constraints\n",
              compiled.model().num_vars(),
              compiled.model().num_constraints());
  MilpOptions options;
  options.rel_gap = 0.0;
  MilpResult result = MilpSolver(compiled.model(), options).Solve();
  std::printf("Solve: objective %.2f, status %s\n", result.objective,
              result.status == MilpStatus::kOptimal ? "optimal" : "feasible");
  for (const StrlAllocation& alloc :
       compiled.ExtractAllocations(result.values)) {
    std::printf("  leaf tag %lld: start=%lld dur=%lld nodes={",
                (long long)alloc.tag, (long long)alloc.start,
                (long long)alloc.duration);
    for (const auto& [partition, count] : alloc.counts) {
      std::printf(" p%d x%d", partition, count);
    }
    std::printf(" } value=%.2f\n", alloc.value);
  }
  std::printf("\n");
}

bool Wanted(const char* name, int argc, char** argv) {
  return argc < 2 || std::strcmp(argv[1], name) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  // The Fig 1 cluster: 2 racks x 2 nodes, rack 0 GPU-enabled.
  Cluster cluster = MakeUniformCluster(2, 2, 1);
  PartitionSet all = cluster.AllPartitions();
  PartitionSet gpu = cluster.GpuPartitions();

  if (Wanted("soft", argc, argv)) {
    Show("soft constraint (paper Fig 3)",
         "A GPU job: 2 GPU nodes for 2 time units (value 4) OR any 2 nodes\n"
         "for 3 time units (value 3). MAX picks the better satisfiable arm.",
         cluster,
         Max({NCk(gpu, 2, 0, 2, 4.0, 1), NCk(all, 2, 0, 3, 3.0, 2)}));
  }
  if (Wanted("gang", argc, argv)) {
    Show("gang with start-time choices (paper S4.4)",
         "All feasible start times for a 2-gang within deadline 3, as the\n"
         "STRL generator derives from a Rayon RDL Window/Atom.",
         cluster,
         Max({NCk(all, 2, 0, 3, 1.0, 1), NCk(gpu, 2, 0, 2, 1.0, 2),
              NCk(gpu, 2, 1, 2, 1.0, 3)}));
  }
  if (Wanted("antiaffinity", argc, argv)) {
    Show("anti-affinity via MIN (paper Fig 1 'Availability' job)",
         "One task on each rack, both required: MIN is satisfied only when\n"
         "every child is.",
         cluster,
         Min({NCk(cluster.RackPartitions(0), 1, 0, 3, 2.0, 1),
              NCk(cluster.RackPartitions(1), 1, 0, 3, 2.0, 2)}));
  }
  if (Wanted("barrier", argc, argv)) {
    Show("barrier + scale (priority gating)",
         "SCALE amplifies a subtree's value; BARRIER forwards value only if\n"
         "the subtree reaches the threshold (used for k-of-n placement).",
         cluster,
         Barrier(Scale(NCk(all, 2, 0, 2, 1.0, 1), 3.0), 3.0));
  }
  if (Wanted("global", argc, argv)) {
    Show("global aggregation via SUM (paper S5.1)",
         "Three jobs contending on 4 machines, batched into one MILP: the\n"
         "solver trades them off simultaneously instead of greedily.",
         cluster,
         Sum({NCk(all, 2, 0, 2, 1.0, 1),
              Max({NCk(all, 2, 0, 2, 1.0, 2), NCk(all, 2, 2, 2, 1.0, 3)}),
              Max({NCk(gpu, 2, 0, 2, 2.0, 4), NCk(gpu, 2, 2, 2, 1.5, 5)})}));
  }
  return 0;
}
