// Quickstart: the paper's Fig 1 scenario end to end.
//
// A 2-rack x 2-node cluster where rack 1 is GPU-enabled, and three jobs with
// very different placement preferences:
//   * an Availability job that wants one task on each rack (anti-affinity),
//   * an MPI job that runs faster with both tasks on one rack,
//   * a GPU job that runs faster on GPU nodes.
// TetriSched expresses all three in STRL, compiles one global MILP, and
// produces a space-time schedule; we then replay it in the simulator.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "src/core/plan_render.h"
#include "src/core/scheduler.h"
#include "src/sim/simulator.h"

using namespace tetrisched;

namespace {

Job MakeJob(JobId id, JobType type, int k, SimDuration runtime,
            double slowdown) {
  Job job;
  job.id = id;
  job.type = type;
  job.k = k;
  job.submit = 0;
  job.actual_runtime = runtime;
  job.slowdown = slowdown;
  job.deadline = 600;
  job.wants_reservation = true;
  return job;
}

}  // namespace

int main() {
  // --- 1. Describe the cluster (Fig 1: rack 0 has the GPUs). -------------
  Cluster cluster = MakeUniformCluster(/*racks=*/2, /*nodes_per_rack=*/2,
                                       /*gpu_racks=*/1);
  std::printf("%s\n", cluster.DebugString().c_str());

  // --- 2. Submit jobs through Rayon admission. ----------------------------
  std::vector<Job> jobs;
  jobs.push_back(MakeJob(1, JobType::kAvailability, 2, 120, 1.0));
  jobs.push_back(MakeJob(2, JobType::kMpi, 2, 80, 1.5));
  jobs.push_back(MakeJob(3, JobType::kGpu, 2, 80, 1.5));
  int accepted = ApplyAdmission(cluster, jobs);
  std::printf("Rayon admission accepted %d of %zu reservations\n\n", accepted,
              jobs.size());

  // --- 3. Peek at the STRL the generator builds for the GPU job. ----------
  StrlGenerator generator(cluster, {.plan_ahead = 32, .quantum = 8});
  OptionRegistry registry;
  auto gpu_expr = generator.GenerateJobExpr(jobs[2], /*now=*/0, &registry);
  std::printf("STRL for the GPU job (plan-ahead 32 s, quantum 8 s):\n%s\n\n",
              ToString(*gpu_expr).c_str());

  // --- 4. One global scheduling cycle: all jobs, one MILP. ----------------
  TetriSchedConfig config = TetriSchedConfig::Full(/*plan_ahead=*/32);
  config.milp.rel_gap = 0.0;
  TetriScheduler scheduler(cluster, config);
  std::vector<const Job*> pending{&jobs[0], &jobs[1], &jobs[2]};
  auto decision = scheduler.OnCycle(/*now=*/0, pending, /*running=*/{});
  std::printf("Cycle 0 decision (%d MILP vars, %d constraints, %.1f ms in "
              "the solver):\n",
              decision.stats.milp_vars, decision.stats.milp_constraints,
              decision.stats.solver_seconds * 1e3);
  for (const Placement& placement : decision.start_now) {
    std::printf("  job %lld starts now on {", (long long)placement.job);
    for (const auto& [partition, count] : placement.counts) {
      std::printf(" p%d x%d", partition, count);
    }
    std::printf(" } est %lld s %s\n", (long long)placement.est_duration,
                placement.preferred_belief ? "(preferred placement)"
                                           : "(fallback placement)");
  }

  // --- 5. Full simulation of the same workload. ----------------------------
  TetriScheduler sim_scheduler(cluster, config);
  Simulator sim(cluster, sim_scheduler, jobs);
  SimMetrics metrics = sim.Run();
  std::printf("\nSimulation: %s\n", metrics.Summary().c_str());
  std::vector<PlanSlot> slots;
  for (const JobOutcome& outcome : metrics.outcomes) {
    std::printf("  job %lld [%s]: start=%lld end=%lld %s\n",
                (long long)outcome.id, ToString(outcome.type),
                (long long)outcome.start_time, (long long)outcome.completion,
                outcome.preferred ? "on preferred resources" : "on fallback");
  }

  // --- 6. The executed schedule as a Fig-1-style space-time grid. ----------
  for (const JobOutcome& outcome : metrics.outcomes) {
    if (!outcome.completed) {
      continue;
    }
    for (const auto& [partition, count] : outcome.placement) {
      slots.push_back(PlanSlot{outcome.id, partition, count,
                               {outcome.start_time, outcome.completion}});
    }
  }
  std::printf("\nExecuted schedule (machines x time, 40 s slices):\n%s",
              RenderPlan(cluster, slots, 0, 40, 5).c_str());
  return 0;
}
