// Google-benchmark microbenchmarks for the scheduling pipeline's hot pieces:
// STRL generation, STRL->MILP compilation, LP relaxation, and full MILP
// solves at several plan-ahead window sizes. Quantifies the §7.3 claim that
// MILP size (and hence solver latency) grows with the plan-ahead window, and
// that warm starts cut solve time.

#include <benchmark/benchmark.h>

#include <chrono>
#include <string>

#include "bench/bench_json.h"
#include "src/cluster/availability.h"
#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/common/span.h"
#include "src/compiler/compiler.h"
#include "src/core/strl_gen.h"
#include "src/solver/milp.h"
#include "src/solver/simplex.h"

namespace tetrisched {
namespace {

// A GS-HET-like pending queue: `jobs` mixed GPU/MPI/unconstrained jobs.
std::vector<Job> MakeQueue(int jobs) {
  std::vector<Job> queue;
  for (int i = 0; i < jobs; ++i) {
    Job job;
    job.id = i;
    job.k = 2 + i % 3;
    job.actual_runtime = 40 + 13 * (i % 5);
    job.deadline = 600 + 50 * i;
    job.slowdown = 1.5;
    job.slo_class =
        i % 4 == 3 ? SloClass::kBestEffort : SloClass::kSloAccepted;
    job.type = i % 3 == 0   ? JobType::kGpu
               : i % 3 == 1 ? JobType::kMpi
                            : JobType::kUnconstrained;
    queue.push_back(job);
  }
  return queue;
}

StrlExpr BuildAggregate(const Cluster& cluster, const StrlGenerator& gen,
                        const std::vector<Job>& jobs,
                        OptionRegistry* registry) {
  std::vector<StrlExpr> exprs;
  for (const Job& job : jobs) {
    auto expr = gen.GenerateJobExpr(job, 0, registry);
    if (expr.has_value()) {
      exprs.push_back(std::move(*expr));
    }
  }
  return Sum(std::move(exprs));
}

void BM_StrlGeneration(benchmark::State& state) {
  Cluster cluster = MakeUniformCluster(4, 4, 2);
  StrlGenerator gen(cluster, {.plan_ahead = state.range(0), .quantum = 8});
  std::vector<Job> jobs = MakeQueue(10);
  for (auto _ : state) {
    OptionRegistry registry;
    StrlExpr root = BuildAggregate(cluster, gen, jobs, &registry);
    benchmark::DoNotOptimize(CountLeaves(root));
  }
}
BENCHMARK(BM_StrlGeneration)->Arg(48)->Arg(96)->Arg(144);

void BM_StrlCompile(benchmark::State& state) {
  Cluster cluster = MakeUniformCluster(4, 4, 2);
  SimDuration plan_ahead = state.range(0);
  StrlGenerator gen(cluster, {.plan_ahead = plan_ahead, .quantum = 8});
  std::vector<Job> jobs = MakeQueue(10);
  OptionRegistry registry;
  StrlExpr root = BuildAggregate(cluster, gen, jobs, &registry);
  TimeGrid grid{.start = 0, .quantum = 8,
                .num_slices = static_cast<int>(plan_ahead / 8)};
  AvailabilityGrid avail(cluster, grid);
  for (auto _ : state) {
    CompiledStrl compiled = StrlCompiler(avail).Compile(root);
    benchmark::DoNotOptimize(compiled.model().num_vars());
  }
  state.counters["milp_vars"] = static_cast<double>(
      StrlCompiler(avail).Compile(root).model().num_vars());
}
BENCHMARK(BM_StrlCompile)->Arg(48)->Arg(96)->Arg(144);

void BM_LpRelaxation(benchmark::State& state) {
  Cluster cluster = MakeUniformCluster(4, 4, 2);
  SimDuration plan_ahead = state.range(0);
  StrlGenerator gen(cluster, {.plan_ahead = plan_ahead, .quantum = 8});
  std::vector<Job> jobs = MakeQueue(10);
  OptionRegistry registry;
  StrlExpr root = BuildAggregate(cluster, gen, jobs, &registry);
  TimeGrid grid{.start = 0, .quantum = 8,
                .num_slices = static_cast<int>(plan_ahead / 8)};
  AvailabilityGrid avail(cluster, grid);
  CompiledStrl compiled = StrlCompiler(avail).Compile(root);
  for (auto _ : state) {
    LpSolver lp(compiled.model());
    LpResult result = lp.Solve();
    benchmark::DoNotOptimize(result.objective);
  }
}
BENCHMARK(BM_LpRelaxation)->Arg(48)->Arg(96)->Arg(144);

void BM_MilpSolve(benchmark::State& state) {
  Cluster cluster = MakeUniformCluster(4, 4, 2);
  SimDuration plan_ahead = state.range(0);
  StrlGenerator gen(cluster, {.plan_ahead = plan_ahead, .quantum = 8});
  std::vector<Job> jobs = MakeQueue(8);
  OptionRegistry registry;
  StrlExpr root = BuildAggregate(cluster, gen, jobs, &registry);
  TimeGrid grid{.start = 0, .quantum = 8,
                .num_slices = static_cast<int>(plan_ahead / 8)};
  AvailabilityGrid avail(cluster, grid);
  CompiledStrl compiled = StrlCompiler(avail).Compile(root);
  MilpOptions options;  // paper defaults: 10% gap
  options.time_limit_seconds = 2.0;
  for (auto _ : state) {
    MilpResult result = MilpSolver(compiled.model(), options).Solve();
    benchmark::DoNotOptimize(result.objective);
  }
}
BENCHMARK(BM_MilpSolve)->Arg(48)->Arg(96)->Unit(benchmark::kMillisecond);

void BM_MilpSolveWarmStarted(benchmark::State& state) {
  // Warm start from the previous solve's solution: the §3.2.2 optimization.
  Cluster cluster = MakeUniformCluster(4, 4, 2);
  StrlGenerator gen(cluster, {.plan_ahead = 96, .quantum = 8});
  std::vector<Job> jobs = MakeQueue(8);
  OptionRegistry registry;
  StrlExpr root = BuildAggregate(cluster, gen, jobs, &registry);
  TimeGrid grid{.start = 0, .quantum = 8, .num_slices = 12};
  AvailabilityGrid avail(cluster, grid);
  CompiledStrl compiled = StrlCompiler(avail).Compile(root);
  MilpOptions options;
  options.time_limit_seconds = 2.0;
  MilpResult cold = MilpSolver(compiled.model(), options).Solve();
  for (auto _ : state) {
    MilpResult warm = MilpSolver(compiled.model(), options).Solve(cold.values);
    benchmark::DoNotOptimize(warm.objective);
  }
}
BENCHMARK(BM_MilpSolveWarmStarted)->Unit(benchmark::kMillisecond);

void BM_MilpSolveThreads(benchmark::State& state) {
  // 1-thread vs N-thread full solve of the same model: the parallel
  // branch-and-bound scaling case.
  Cluster cluster = MakeUniformCluster(4, 4, 2);
  StrlGenerator gen(cluster, {.plan_ahead = 96, .quantum = 8});
  std::vector<Job> jobs = MakeQueue(8);
  OptionRegistry registry;
  StrlExpr root = BuildAggregate(cluster, gen, jobs, &registry);
  TimeGrid grid{.start = 0, .quantum = 8, .num_slices = 12};
  AvailabilityGrid avail(cluster, grid);
  CompiledStrl compiled = StrlCompiler(avail).Compile(root);
  MilpOptions options;
  options.time_limit_seconds = 10.0;
  options.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    MilpResult result = MilpSolver(compiled.model(), options).Solve();
    benchmark::DoNotOptimize(result.objective);
  }
}
BENCHMARK(BM_MilpSolveThreads)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Block-diagonal model: `blocks` independent random binary-packing blocks
// (the multi-component churn shape — jobs preferring disjoint equivalence
// sets compile to exactly this structure). Each block needs a real tree
// search; the blocks share no rows, so the decomposition layer splits them.
MilpModel MakeBlockPackingModel(int blocks, int vars_per_block,
                                int cons_per_block, uint64_t seed) {
  MilpModel model;
  Rng rng(seed);
  for (int b = 0; b < blocks; ++b) {
    std::vector<VarId> vars;
    for (int v = 0; v < vars_per_block; ++v) {
      VarId id = model.AddBinaryVar();
      model.AddObjectiveTerm(id, rng.UniformReal(-5.0, 10.0));
      vars.push_back(id);
    }
    for (int c = 0; c < cons_per_block; ++c) {
      std::vector<LinTerm> terms;
      for (VarId id : vars) {
        if (rng.Bernoulli(0.6)) {
          terms.push_back({id, rng.UniformReal(-3.0, 5.0)});
        }
      }
      if (!terms.empty()) {
        model.AddConstraint(std::move(terms), ConstraintSense::kLessEqual,
                            rng.UniformReal(0.0, 6.0));
      }
    }
  }
  return model;
}

void BM_MilpSolveDecomposition(benchmark::State& state) {
  // Block-diagonal solve with the decomposition layer on (arg = 1) vs the
  // monolithic baseline (arg = 0), same model and same 10% gap.
  MilpModel model = MakeBlockPackingModel(6, 14, 7, 42);
  MilpOptions options;
  options.time_limit_seconds = 30.0;
  options.num_threads = 1;
  options.enable_decomposition = state.range(0) != 0;
  for (auto _ : state) {
    MilpResult result = MilpSolver(model, options).Solve();
    benchmark::DoNotOptimize(result.objective);
  }
}
BENCHMARK(BM_MilpSolveDecomposition)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_MilpSolveObservabilityEnabled(benchmark::State& state) {
  // Same solve as BM_MilpSolve(96) but with clock-reading instrumentation
  // on; compare against BM_MilpSolve/96 to see the enabled-path cost on a
  // real workload (per-LP timing + spans).
  Cluster cluster = MakeUniformCluster(4, 4, 2);
  StrlGenerator gen(cluster, {.plan_ahead = 96, .quantum = 8});
  std::vector<Job> jobs = MakeQueue(8);
  OptionRegistry registry;
  StrlExpr root = BuildAggregate(cluster, gen, jobs, &registry);
  TimeGrid grid{.start = 0, .quantum = 8, .num_slices = 12};
  AvailabilityGrid avail(cluster, grid);
  CompiledStrl compiled = StrlCompiler(avail).Compile(root);
  MilpOptions options;
  options.time_limit_seconds = 2.0;
  const bool prev = ObservabilityEnabled();
  SetObservabilityEnabled(true);
  for (auto _ : state) {
    MilpResult result = MilpSolver(compiled.model(), options).Solve();
    benchmark::DoNotOptimize(result.objective);
    // Keep the span buffer from growing without bound across iterations.
    SpanCollector::Global().Clear();
  }
  SetObservabilityEnabled(prev);
}
BENCHMARK(BM_MilpSolveObservabilityEnabled)->Unit(benchmark::kMillisecond);

void BM_ScopedSpanDisabled(benchmark::State& state) {
  // The acceptance bar for "zero-overhead when disabled": a disabled
  // TETRI_SPAN is one relaxed atomic load, no clock read.
  const bool prev = ObservabilityEnabled();
  SetObservabilityEnabled(false);
  for (auto _ : state) {
    TETRI_SPAN("bench.disabled");
    benchmark::ClobberMemory();
  }
  SetObservabilityEnabled(prev);
}
BENCHMARK(BM_ScopedSpanDisabled);

void BM_ScopedSpanEnabled(benchmark::State& state) {
  const bool prev = ObservabilityEnabled();
  SetObservabilityEnabled(true);
  int since_clear = 0;
  for (auto _ : state) {
    {
      TETRI_SPAN("bench.enabled");
      benchmark::ClobberMemory();
    }
    if (++since_clear >= 8192) {
      state.PauseTiming();
      SpanCollector::Global().Clear();
      since_clear = 0;
      state.ResumeTiming();
    }
  }
  SetObservabilityEnabled(prev);
  SpanCollector::Global().Clear();
}
BENCHMARK(BM_ScopedSpanEnabled);

// The machine-readable solver record (satisfies a fixed op-name schema so the
// perf trajectory can be tracked across commits): LP relaxation plus full
// MILP solves at 1/2/4 workers, all solved to the same default 10% gap.
// Emitted only when TETRISCHED_BENCH_JSON is set; see bench/bench_json.h.
void EmitBenchJson() {
  if (!BenchJsonWriter::Requested()) {
    return;
  }
  BenchJsonWriter writer;
  Cluster cluster = MakeUniformCluster(4, 4, 2);
  StrlGenerator gen(cluster, {.plan_ahead = 96, .quantum = 8});
  std::vector<Job> jobs = MakeQueue(8);
  OptionRegistry registry;
  StrlExpr root = BuildAggregate(cluster, gen, jobs, &registry);
  TimeGrid grid{.start = 0, .quantum = 8, .num_slices = 12};
  AvailabilityGrid avail(cluster, grid);
  CompiledStrl compiled = StrlCompiler(avail).Compile(root);

  {
    LpSolver lp(compiled.model());
    auto start = std::chrono::steady_clock::now();
    LpResult lp_result = lp.Solve();
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    writer.Add("lp_relaxation_p96", ms,
               {{"lp_iterations", static_cast<double>(lp_result.iterations)},
                {"objective", lp_result.objective}});
  }
  for (int threads : {1, 2, 4}) {
    // Generous time budget so every run terminates at the same (default 10%)
    // gap and wall-clock differences come from the search, not the clock.
    MilpOptions options;
    options.time_limit_seconds = 60.0;
    options.num_threads = threads;
    MilpResult result = MilpSolver(compiled.model(), options).Solve();
    writer.Add("milp_full_solve_threads" + std::to_string(threads),
               result.solve_seconds * 1e3,
               {{"nodes", static_cast<double>(result.nodes)},
                {"lp_iterations", static_cast<double>(result.lp_iterations)},
                {"threads", static_cast<double>(result.threads_used)},
                {"objective", result.objective},
                {"best_bound", result.best_bound},
                {"components", static_cast<double>(result.components)},
                {"decompose_ms", result.decompose_ms}});
  }

  // Decomposition on/off on a block-diagonal model (same instance, same 10%
  // gap, one worker): the cycle-time breakdown rows — components found,
  // time spent splitting, the slowest component — plus the wall-clock and
  // node-count delta of solving the blocks independently.
  {
    MilpModel blocks = MakeBlockPackingModel(6, 14, 7, 42);
    for (bool decomposed : {false, true}) {
      MilpOptions options;
      options.time_limit_seconds = 60.0;
      options.max_nodes = 100000000;  // let both sides terminate at the gap
      options.num_threads = 1;
      options.enable_decomposition = decomposed;
      MilpResult result = MilpSolver(blocks, options).Solve();
      writer.Add(decomposed ? "milp_block6_decomposed" : "milp_block6_monolithic",
                 result.solve_seconds * 1e3,
                 {{"nodes", static_cast<double>(result.nodes)},
                  {"lp_iterations", static_cast<double>(result.lp_iterations)},
                  {"objective", result.objective},
                  {"best_bound", result.best_bound},
                  {"components", static_cast<double>(result.components)},
                  {"decompose_ms", result.decompose_ms},
                  {"max_component_ms", result.max_component_ms}});
    }
  }
  writer.WriteIfRequested("BENCH_solver.json");
}

}  // namespace
}  // namespace tetrisched

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  tetrisched::EmitBenchJson();
  return 0;
}
