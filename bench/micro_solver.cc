// Google-benchmark microbenchmarks for the scheduling pipeline's hot pieces:
// STRL generation, STRL->MILP compilation, LP relaxation, and full MILP
// solves at several plan-ahead window sizes. Quantifies the §7.3 claim that
// MILP size (and hence solver latency) grows with the plan-ahead window, and
// that warm starts cut solve time.

#include <benchmark/benchmark.h>

#include "src/cluster/availability.h"
#include "src/compiler/compiler.h"
#include "src/core/strl_gen.h"
#include "src/solver/milp.h"
#include "src/solver/simplex.h"

namespace tetrisched {
namespace {

// A GS-HET-like pending queue: `jobs` mixed GPU/MPI/unconstrained jobs.
std::vector<Job> MakeQueue(int jobs) {
  std::vector<Job> queue;
  for (int i = 0; i < jobs; ++i) {
    Job job;
    job.id = i;
    job.k = 2 + i % 3;
    job.actual_runtime = 40 + 13 * (i % 5);
    job.deadline = 600 + 50 * i;
    job.slowdown = 1.5;
    job.slo_class =
        i % 4 == 3 ? SloClass::kBestEffort : SloClass::kSloAccepted;
    job.type = i % 3 == 0   ? JobType::kGpu
               : i % 3 == 1 ? JobType::kMpi
                            : JobType::kUnconstrained;
    queue.push_back(job);
  }
  return queue;
}

StrlExpr BuildAggregate(const Cluster& cluster, const StrlGenerator& gen,
                        const std::vector<Job>& jobs,
                        OptionRegistry* registry) {
  std::vector<StrlExpr> exprs;
  for (const Job& job : jobs) {
    auto expr = gen.GenerateJobExpr(job, 0, registry);
    if (expr.has_value()) {
      exprs.push_back(std::move(*expr));
    }
  }
  return Sum(std::move(exprs));
}

void BM_StrlGeneration(benchmark::State& state) {
  Cluster cluster = MakeUniformCluster(4, 4, 2);
  StrlGenerator gen(cluster, {.plan_ahead = state.range(0), .quantum = 8});
  std::vector<Job> jobs = MakeQueue(10);
  for (auto _ : state) {
    OptionRegistry registry;
    StrlExpr root = BuildAggregate(cluster, gen, jobs, &registry);
    benchmark::DoNotOptimize(CountLeaves(root));
  }
}
BENCHMARK(BM_StrlGeneration)->Arg(48)->Arg(96)->Arg(144);

void BM_StrlCompile(benchmark::State& state) {
  Cluster cluster = MakeUniformCluster(4, 4, 2);
  SimDuration plan_ahead = state.range(0);
  StrlGenerator gen(cluster, {.plan_ahead = plan_ahead, .quantum = 8});
  std::vector<Job> jobs = MakeQueue(10);
  OptionRegistry registry;
  StrlExpr root = BuildAggregate(cluster, gen, jobs, &registry);
  TimeGrid grid{.start = 0, .quantum = 8,
                .num_slices = static_cast<int>(plan_ahead / 8)};
  AvailabilityGrid avail(cluster, grid);
  for (auto _ : state) {
    CompiledStrl compiled = StrlCompiler(avail).Compile(root);
    benchmark::DoNotOptimize(compiled.model().num_vars());
  }
  state.counters["milp_vars"] = static_cast<double>(
      StrlCompiler(avail).Compile(root).model().num_vars());
}
BENCHMARK(BM_StrlCompile)->Arg(48)->Arg(96)->Arg(144);

void BM_LpRelaxation(benchmark::State& state) {
  Cluster cluster = MakeUniformCluster(4, 4, 2);
  SimDuration plan_ahead = state.range(0);
  StrlGenerator gen(cluster, {.plan_ahead = plan_ahead, .quantum = 8});
  std::vector<Job> jobs = MakeQueue(10);
  OptionRegistry registry;
  StrlExpr root = BuildAggregate(cluster, gen, jobs, &registry);
  TimeGrid grid{.start = 0, .quantum = 8,
                .num_slices = static_cast<int>(plan_ahead / 8)};
  AvailabilityGrid avail(cluster, grid);
  CompiledStrl compiled = StrlCompiler(avail).Compile(root);
  for (auto _ : state) {
    LpSolver lp(compiled.model());
    LpResult result = lp.Solve();
    benchmark::DoNotOptimize(result.objective);
  }
}
BENCHMARK(BM_LpRelaxation)->Arg(48)->Arg(96)->Arg(144);

void BM_MilpSolve(benchmark::State& state) {
  Cluster cluster = MakeUniformCluster(4, 4, 2);
  SimDuration plan_ahead = state.range(0);
  StrlGenerator gen(cluster, {.plan_ahead = plan_ahead, .quantum = 8});
  std::vector<Job> jobs = MakeQueue(8);
  OptionRegistry registry;
  StrlExpr root = BuildAggregate(cluster, gen, jobs, &registry);
  TimeGrid grid{.start = 0, .quantum = 8,
                .num_slices = static_cast<int>(plan_ahead / 8)};
  AvailabilityGrid avail(cluster, grid);
  CompiledStrl compiled = StrlCompiler(avail).Compile(root);
  MilpOptions options;  // paper defaults: 10% gap
  options.time_limit_seconds = 2.0;
  for (auto _ : state) {
    MilpResult result = MilpSolver(compiled.model(), options).Solve();
    benchmark::DoNotOptimize(result.objective);
  }
}
BENCHMARK(BM_MilpSolve)->Arg(48)->Arg(96)->Unit(benchmark::kMillisecond);

void BM_MilpSolveWarmStarted(benchmark::State& state) {
  // Warm start from the previous solve's solution: the §3.2.2 optimization.
  Cluster cluster = MakeUniformCluster(4, 4, 2);
  StrlGenerator gen(cluster, {.plan_ahead = 96, .quantum = 8});
  std::vector<Job> jobs = MakeQueue(8);
  OptionRegistry registry;
  StrlExpr root = BuildAggregate(cluster, gen, jobs, &registry);
  TimeGrid grid{.start = 0, .quantum = 8, .num_slices = 12};
  AvailabilityGrid avail(cluster, grid);
  CompiledStrl compiled = StrlCompiler(avail).Compile(root);
  MilpOptions options;
  options.time_limit_seconds = 2.0;
  MilpResult cold = MilpSolver(compiled.model(), options).Solve();
  for (auto _ : state) {
    MilpResult warm = MilpSolver(compiled.model(), options).Solve(cold.values);
    benchmark::DoNotOptimize(warm.objective);
  }
}
BENCHMARK(BM_MilpSolveWarmStarted)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tetrisched

BENCHMARK_MAIN();
