// Ablation (extension): learned runtime estimates in the loop.
//
// The paper's §4.4 sketches "initial estimates learned from clustering
// similar jobs (work in progress)". This repo implements that loop: the
// simulator trains a RuntimeEstimator on completions and replaces the
// submitted (error-injected) estimates of recurring jobs once their cluster
// has enough observations. This bench measures how much of the estimate-error
// damage the estimator undoes on GS MIX: with severe mis-estimation the
// learned estimates recover most of the zero-error SLO attainment.

#include <cstdio>

#include "bench/exp_common.h"
#include "src/core/scheduler.h"

namespace tetrisched {
namespace {

struct Row {
  double total_slo = 0.0;
  double accepted = 0.0;
  double be_latency = 0.0;
};

Row RunCell(const Cluster& cluster, WorkloadParams params, bool learn,
            int seeds) {
  Row row;
  for (int s = 0; s < seeds; ++s) {
    params.seed = 900 + 41 * s;
    std::vector<Job> jobs = GenerateWorkload(cluster, params);
    ApplyAdmission(cluster, jobs);
    TetriSchedConfig config = TetriSchedConfig::Full();
    TetriScheduler scheduler(cluster, config);
    SimConfig sim_config;
    sim_config.learn_estimates = learn;
    Simulator sim(cluster, scheduler, jobs, sim_config);
    SimMetrics metrics = sim.Run();
    row.total_slo += 100.0 * metrics.TotalSloAttainment();
    row.accepted += 100.0 * metrics.AcceptedSloAttainment();
    row.be_latency += metrics.MeanBestEffortLatency();
  }
  row.total_slo /= seeds;
  row.accepted /= seeds;
  row.be_latency /= seeds;
  return row;
}

int Main() {
  Cluster cluster = MakeRc80(0);
  PrintHeader("Ablation (extension): learned runtime estimates (Perforator "
              "loop)",
              "GS MIX", cluster);

  WorkloadParams params;
  params.kind = WorkloadKind::kGsMix;
  params.num_jobs = 80;  // enough recurrences for clusters to warm up
  int seeds = SeedsFromEnv(2);

  std::printf("%8s | %22s | %22s\n", "", "submitted estimates",
              "learned estimates");
  std::printf("%8s | %7s %7s %6s | %7s %7s %6s\n", "err(%)", "total", "acc",
              "BE lat", "total", "acc", "BE lat");
  for (double error : {-0.5, 0.0, 0.5, 1.0, 2.0}) {
    params.estimate_error = error;
    Row off = RunCell(cluster, params, false, seeds);
    Row on = RunCell(cluster, params, true, seeds);
    std::printf("%8.0f | %6.1f%% %6.1f%% %5.0fs | %6.1f%% %6.1f%% %5.0fs\n",
                error * 100, off.total_slo, off.accepted, off.be_latency,
                on.total_slo, on.accepted, on.be_latency);
  }
  std::printf("\n(Admission still sees the submitted estimates -- the learned\n"
              "values kick in at scheduling time once a job class has been\n"
              "observed 3 times, so recovery grows with recurrence count.)\n");
  return 0;
}

}  // namespace
}  // namespace tetrisched

int main() { return tetrisched::Main(); }
