#include "bench/exp_common.h"

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/baseline/capacity_scheduler.h"

namespace tetrisched {

const char* PolicyName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kTetriSched:
      return "TetriSched";
    case PolicyKind::kTetriSchedNH:
      return "TetriSched-NH";
    case PolicyKind::kTetriSchedNG:
      return "TetriSched-NG";
    case PolicyKind::kTetriSchedNP:
      return "TetriSched-NP";
    case PolicyKind::kRayonCS:
      return "Rayon/CS";
  }
  return "?";
}

Cluster MakeRc256(int gpu_racks) { return MakeUniformCluster(8, 4, gpu_racks); }

Cluster MakeRc80(int gpu_racks) { return MakeUniformCluster(4, 4, gpu_racks); }

namespace {

std::unique_ptr<SchedulerPolicy> MakePolicy(const Cluster& cluster,
                                            const ExperimentSpec& spec) {
  if (spec.policy == PolicyKind::kRayonCS) {
    return std::make_unique<CapacityScheduler>(cluster);
  }
  TetriSchedConfig config;
  switch (spec.policy) {
    case PolicyKind::kTetriSched:
      config = TetriSchedConfig::Full(spec.plan_ahead);
      break;
    case PolicyKind::kTetriSchedNH:
      config = TetriSchedConfig::NoHeterogeneity(spec.plan_ahead);
      break;
    case PolicyKind::kTetriSchedNG:
      config = TetriSchedConfig::NoGlobal(spec.plan_ahead);
      break;
    case PolicyKind::kTetriSchedNP:
      config = TetriSchedConfig::NoPlanAhead();
      break;
    case PolicyKind::kRayonCS:
      break;
  }
  config.quantum = spec.quantum;
  if (spec.policy == PolicyKind::kTetriSchedNP) {
    config.plan_ahead = spec.quantum;
  }
  config.milp.time_limit_seconds = spec.milp_time_limit;
  config.milp.max_nodes = spec.milp_max_nodes;
  config.milp.num_threads = spec.milp_num_threads;
  config.milp.enable_decomposition = spec.milp_decomposition;
  return std::make_unique<TetriScheduler>(cluster, config);
}

}  // namespace

SimMetrics RunExperiment(const Cluster& cluster, const WorkloadParams& params,
                         const ExperimentSpec& spec) {
  std::vector<Job> jobs = GenerateWorkload(cluster, params);
  ApplyAdmission(cluster, jobs);
  std::unique_ptr<SchedulerPolicy> policy = MakePolicy(cluster, spec);
  SimConfig sim_config;
  sim_config.cycle_period = spec.cycle_period;
  Simulator sim(cluster, *policy, std::move(jobs), sim_config);
  return sim.Run();
}

SweepStats RunAveraged(const Cluster& cluster, WorkloadParams params,
                       const ExperimentSpec& spec, int num_seeds) {
  SweepStats stats;
  for (int s = 0; s < num_seeds; ++s) {
    params.seed = 1000 + 17 * s;
    SimMetrics metrics = RunExperiment(cluster, params, spec);
    stats.total_slo += 100.0 * metrics.TotalSloAttainment();
    stats.accepted_slo += 100.0 * metrics.AcceptedSloAttainment();
    stats.unreserved_slo += 100.0 * metrics.UnreservedSloAttainment();
    stats.be_latency += metrics.MeanBestEffortLatency();
    stats.cycle_latency_ms += metrics.cycle_latency_ms.Mean();
    stats.solver_latency_ms += metrics.solver_latency_ms.Mean();
    stats.utilization += 100.0 * metrics.utilization;
  }
  double inv = 1.0 / num_seeds;
  stats.total_slo *= inv;
  stats.accepted_slo *= inv;
  stats.unreserved_slo *= inv;
  stats.be_latency *= inv;
  stats.cycle_latency_ms *= inv;
  stats.solver_latency_ms *= inv;
  stats.utilization *= inv;
  return stats;
}

void PrintHeader(const std::string& title, const std::string& workload,
                 const Cluster& cluster) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Workload: %s | Cluster: %d nodes, %d racks, %d gpu nodes\n",
              workload.c_str(), cluster.num_nodes(), cluster.num_racks(),
              cluster.num_gpu_nodes());
  std::printf("==============================================================\n");
}

std::string Fixed(double value, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

const char* PanelTitle(Panel panel) {
  switch (panel) {
    case Panel::kTotalSlo:
      return "SLO attainment, all SLO jobs (%)";
    case Panel::kAcceptedSlo:
      return "SLO attainment, accepted SLO jobs (%)";
    case Panel::kUnreservedSlo:
      return "SLO attainment, SLO jobs w/o reservation (%)";
    case Panel::kBeLatency:
      return "best-effort mean latency (s)";
  }
  return "?";
}

double PanelValue(const SweepStats& stats, Panel panel) {
  switch (panel) {
    case Panel::kTotalSlo:
      return stats.total_slo;
    case Panel::kAcceptedSlo:
      return stats.accepted_slo;
    case Panel::kUnreservedSlo:
      return stats.unreserved_slo;
    case Panel::kBeLatency:
      return stats.be_latency;
  }
  return 0.0;
}

int SeedsFromEnv(int default_seeds) {
  return std::getenv("TETRI_QUICK") != nullptr ? 1 : default_seeds;
}

void RunAndPrintErrorSweep(const Cluster& cluster,
                           const ErrorSweepSpec& spec) {
  std::vector<std::vector<SweepStats>> results(spec.errors.size());
  for (size_t e = 0; e < spec.errors.size(); ++e) {
    for (PolicyKind policy : spec.policies) {
      WorkloadParams params = spec.params;
      params.estimate_error = spec.errors[e];
      ExperimentSpec experiment = spec.experiment;
      experiment.policy = policy;
      results[e].push_back(
          RunAveraged(cluster, params, experiment, spec.num_seeds));
    }
  }

  char label = 'a';
  for (Panel panel : spec.panels) {
    std::printf("\n(%c) %s\n", label++, PanelTitle(panel));
    std::printf("%10s", "err(%)");
    for (PolicyKind policy : spec.policies) {
      std::printf(" %14s", PolicyName(policy));
    }
    std::printf("\n");
    for (size_t e = 0; e < spec.errors.size(); ++e) {
      std::printf("%10.0f", spec.errors[e] * 100);
      for (size_t p = 0; p < spec.policies.size(); ++p) {
        std::printf(" %14s", Fixed(PanelValue(results[e][p], panel)).c_str());
      }
      std::printf("\n");
    }
  }
}

}  // namespace tetrisched
