// Shared experiment harness for the paper-reproduction benches.
//
// Each bench binary regenerates one table/figure of the paper: it sweeps a
// parameter (estimate error, plan-ahead, ...), runs the simulated cluster
// under each scheduler stack, and prints the same rows/series the paper
// reports. Scales are reduced (RC256 -> 32 simulated nodes, RC80 -> 16) so a
// full sweep finishes on a laptop; the paper's claims are relative, so the
// comparison shape is what matters (see EXPERIMENTS.md).
//
// Observability: every bench runs its simulations through Simulator::Run,
// which picks up export paths from the environment (DESIGN.md §10):
//   TETRISCHED_METRICS_JSON=m.json   per-phase histograms + counters (JSON)
//   TETRISCHED_METRICS_PROM=m.prom   same registry, Prometheus text format
//   TETRISCHED_TRACE_JSON=t.json     Chrome trace of cycle/solver spans
//   TETRISCHED_LOG_LEVEL=debug       stderr log threshold (logging.h)
// Setting any of the first three also enables clock-reading instrumentation
// for the run; results are unchanged (instrumentation never steers search).

#ifndef TETRISCHED_BENCH_EXP_COMMON_H_
#define TETRISCHED_BENCH_EXP_COMMON_H_

#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/core/scheduler.h"
#include "src/sim/simulator.h"
#include "src/workload/workload.h"

namespace tetrisched {

enum class PolicyKind {
  kTetriSched,
  kTetriSchedNH,
  kTetriSchedNG,
  kTetriSchedNP,
  kRayonCS,
};

const char* PolicyName(PolicyKind kind);

// The paper's two testbeds, scaled: RC256 = 8 racks x 4 nodes (32), RC80 =
// 4 racks x 4 nodes (16). GPU racks only matter for GS HET.
Cluster MakeRc256(int gpu_racks = 0);
Cluster MakeRc80(int gpu_racks = 2);

struct ExperimentSpec {
  PolicyKind policy = PolicyKind::kTetriSched;
  SimDuration plan_ahead = 96;
  SimDuration quantum = 8;
  // MILP budget per cycle; the paper bounds CPLEX the same way (§3.2.2).
  double milp_time_limit = 0.15;
  int milp_max_nodes = 1500;
  // Branch-and-bound workers per solve (0 = one per hardware thread).
  int milp_num_threads = 0;
  // Component decomposition of the cycle MILP (solver/decompose.h). On by
  // default; benches toggle it off for the monolithic baseline.
  bool milp_decomposition = true;
  SimDuration cycle_period = 4;
};

// Runs one workload/policy combination end to end (admission + simulation).
SimMetrics RunExperiment(const Cluster& cluster, const WorkloadParams& params,
                         const ExperimentSpec& spec);

// Averages a metric over `seeds` workload seeds. `metric` receives each
// run's SimMetrics and returns the scalar to average.
struct SweepStats {
  double total_slo = 0.0;        // percent
  double accepted_slo = 0.0;     // percent
  double unreserved_slo = 0.0;   // percent
  double be_latency = 0.0;       // seconds
  double cycle_latency_ms = 0.0;
  double solver_latency_ms = 0.0;
  double utilization = 0.0;      // percent
};

SweepStats RunAveraged(const Cluster& cluster, WorkloadParams params,
                       const ExperimentSpec& spec, int num_seeds);

// Formatting helpers for paper-style tables.
void PrintHeader(const std::string& title, const std::string& workload,
                 const Cluster& cluster);
std::string Fixed(double value, int precision = 1);

// One printable panel of a figure.
enum class Panel {
  kTotalSlo,
  kAcceptedSlo,
  kUnreservedSlo,
  kBeLatency,
};

const char* PanelTitle(Panel panel);
double PanelValue(const SweepStats& stats, Panel panel);

// Generic estimate-error sweep: runs every (error, policy) cell and prints
// one table per panel — the layout shared by the paper's Figs 6-10.
struct ErrorSweepSpec {
  std::string title;
  WorkloadParams params;
  std::vector<double> errors;
  std::vector<PolicyKind> policies;
  std::vector<Panel> panels;
  ExperimentSpec experiment;
  int num_seeds = 3;
};

void RunAndPrintErrorSweep(const Cluster& cluster, const ErrorSweepSpec& spec);

// Seeds reduced to 1 when TETRI_QUICK is set (fast smoke runs of benches).
int SeedsFromEnv(int default_seeds);

}  // namespace tetrisched

#endif  // TETRISCHED_BENCH_EXP_COMMON_H_
