// Reproduces the paper's configuration artifacts:
//  * Table 1 — workload compositions (verified against generated workloads),
//  * Table 2 — TetriSched ablation configurations,
//  * Fig 5   — internal value functions for SLO and best-effort jobs.

#include <cstdio>

#include "bench/exp_common.h"
#include "src/strl/value.h"

namespace tetrisched {
namespace {

void PrintTable1() {
  std::printf("Table 1: workload compositions\n");
  std::printf("%-8s %6s %6s %14s %6s %6s   %s\n", "Workload", "SLO", "BE",
              "Unconstrained", "GPU", "MPI", "generated check (2000 jobs)");
  Cluster cluster = MakeRc80(2);
  for (WorkloadKind kind : {WorkloadKind::kGrSlo, WorkloadKind::kGrMix,
                            WorkloadKind::kGsMix, WorkloadKind::kGsHet}) {
    WorkloadComposition composition = CompositionFor(kind);
    WorkloadParams params;
    params.kind = kind;
    params.num_jobs = 2000;
    params.seed = 11;
    std::vector<Job> jobs = GenerateWorkload(cluster, params);
    int slo = 0, gpu = 0, mpi = 0;
    for (const Job& job : jobs) {
      slo += job.wants_reservation ? 1 : 0;
      gpu += job.type == JobType::kGpu ? 1 : 0;
      mpi += job.type == JobType::kMpi ? 1 : 0;
    }
    std::printf("%-8s %5.0f%% %5.0f%% %13.0f%% %5.0f%% %5.0f%%   "
                "slo=%.1f%% gpu=%.1f%% mpi=%.1f%%\n",
                ToString(kind), composition.slo_fraction * 100,
                (1 - composition.slo_fraction) * 100,
                (1 - composition.gpu_fraction - composition.mpi_fraction) * 100,
                composition.gpu_fraction * 100, composition.mpi_fraction * 100,
                100.0 * slo / jobs.size(), 100.0 * gpu / jobs.size(),
                100.0 * mpi / jobs.size());
  }
}

void PrintTable2() {
  std::printf("\nTable 2: TetriSched configurations with features disabled\n");
  std::printf("  TetriSched     all features\n");
  std::printf("  TetriSched-NH  no heterogeneity (soft constraint awareness)\n");
  std::printf("  TetriSched-NG  no global scheduling (3 priority FIFO queues,\n"
              "                 per-job MILP)\n");
  std::printf("  TetriSched-NP  no plan-ahead (single-slice window, alsched-"
              "like)\n");
}

void PrintFig5() {
  std::printf("\nFig 5: internal value functions v(t), deadline = 100 s\n");
  ValueFunction accepted = AcceptedSloValue(100);
  ValueFunction unreserved = UnreservedSloValue(100);
  ValueFunction best_effort = BestEffortValue(0, 600);
  std::printf("%12s %14s %16s %14s\n", "completion", "accepted SLO",
              "SLO w/o resv", "best effort");
  for (SimTime t : {0, 25, 50, 75, 100, 101, 150}) {
    std::printf("%12lld %14.1f %16.1f %14.3f\n", static_cast<long long>(t),
                accepted.At(t), unreserved.At(t), best_effort.At(t));
  }
  std::printf("(accepted = 1000x base, w/o reservation = 25x, best effort\n"
              " linearly decays from 1x to a 0.01 floor)\n");
}

int Main() {
  Cluster cluster = MakeRc80(2);
  PrintHeader("Table 1 / Table 2 / Fig 5: workload & scheduler configuration",
              "all", cluster);
  PrintTable1();
  PrintTable2();
  PrintFig5();
  return 0;
}

}  // namespace
}  // namespace tetrisched

int main() { return tetrisched::Main(); }
