// Reproduces paper Fig 7: SLO-only production-derived workload (GR SLO) to
// isolate SLO-job behavior from best-effort interference, across estimate
// error, on the RC256-scaled cluster.
//
// Expected shape (paper): Rayon/TetriSched achieves higher SLO attainment
// overall and keeps accepted-SLO attainment near 100%.

#include "bench/exp_common.h"

namespace tetrisched {
namespace {

int Main() {
  Cluster cluster = MakeRc256();
  PrintHeader("Fig 7: estimate-error sweep, SLO-only workload", "GR SLO",
              cluster);

  ErrorSweepSpec spec;
  spec.params.kind = WorkloadKind::kGrSlo;
  spec.params.num_jobs = 100;
  spec.errors = {-0.2, -0.1, 0.0, 0.1, 0.2};
  spec.policies = {PolicyKind::kRayonCS, PolicyKind::kTetriSched};
  spec.panels = {Panel::kTotalSlo, Panel::kAcceptedSlo,
                 Panel::kUnreservedSlo};
  spec.num_seeds = SeedsFromEnv(2);
  RunAndPrintErrorSweep(cluster, spec);
  return 0;
}

}  // namespace
}  // namespace tetrisched

int main() { return tetrisched::Main(); }
