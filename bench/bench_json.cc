#include "bench/bench_json.h"

#include <cstdio>
#include <cstdlib>

#include "src/common/atomic_io.h"
#include "src/common/json.h"

namespace tetrisched {
namespace {

std::string FormatNumber(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

void BenchJsonWriter::Add(const std::string& name, double wall_ms,
                          std::map<std::string, double> extra) {
  records_.push_back({name, wall_ms, std::move(extra)});
}

std::string BenchJsonWriter::ToJson() const {
  std::string out = "{\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < records_.size(); ++i) {
    const Record& record = records_[i];
    out += "    {\"name\": \"" + JsonEscape(record.name) + "\", \"wall_ms\": " +
           FormatNumber(record.wall_ms);
    for (const auto& [key, value] : record.extra) {
      out += ", \"" + JsonEscape(key) + "\": " + FormatNumber(value);
    }
    out += i + 1 < records_.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

bool BenchJsonWriter::Requested() {
  const char* env = std::getenv("TETRISCHED_BENCH_JSON");
  return env != nullptr && *env != '\0';
}

bool BenchJsonWriter::WriteIfRequested(const std::string& default_path) const {
  const char* env = std::getenv("TETRISCHED_BENCH_JSON");
  if (env == nullptr || *env == '\0') {
    return false;
  }
  std::string value = env;
  std::string path = (value == "1" || value == "true")
                         ? default_path
                         : value + "/" + default_path;
  // Atomic replace: perf-tracking scripts must never read a half-written
  // artifact from a bench run that died mid-export.
  if (!WriteFileAtomic(path, ToJson())) {
    std::fprintf(stderr, "bench_json: cannot write %s\n", path.c_str());
    return false;
  }
  std::printf("bench_json: wrote %s\n", path.c_str());
  return true;
}

}  // namespace tetrisched
