// Ablation: warm-starting the MILP from the previous cycle's plan
// (paper §3.2.2: "we cache solver results to serve as a feasible initial
// solution for the next cycle's solver invocation. We find this optimization
// to be quite effective.").
//
// Runs the same GS HET experiment with the warm start enabled and disabled.
// With this repo's B&B solver the dominant effect is schedule *quality under
// a fixed per-cycle budget* (the inherited plan is a strong incumbent that
// budget-limited search then improves on), visible as higher SLO attainment;
// CPLEX additionally converts the incumbent into lower solve latency, which
// a bound-limited open-source B&B only partially reproduces.

#include <cstdio>

#include "bench/exp_common.h"
#include "src/core/scheduler.h"

namespace tetrisched {
namespace {

struct Row {
  double mean_ms = 0.0;
  double p95_ms = 0.0;
  double max_ms = 0.0;
  double slo = 0.0;
};

Row RunOnce(const Cluster& cluster, const WorkloadParams& params,
            bool warm_start) {
  std::vector<Job> jobs = GenerateWorkload(cluster, params);
  ApplyAdmission(cluster, jobs);
  TetriSchedConfig config = TetriSchedConfig::Full();
  config.enable_warm_start = warm_start;
  config.milp.time_limit_seconds = 0.5;
  TetriScheduler scheduler(cluster, config);
  Simulator sim(cluster, scheduler, jobs);
  SimMetrics metrics = sim.Run();
  Row row;
  row.mean_ms = metrics.solver_latency_ms.Mean();
  row.p95_ms = metrics.solver_latency_ms.Percentile(95);
  row.max_ms = metrics.solver_latency_ms.Max();
  row.slo = 100.0 * metrics.TotalSloAttainment();
  return row;
}

int Main() {
  Cluster cluster = MakeRc80(2);
  PrintHeader("Ablation: cross-cycle MILP warm start (S3.2.2)", "GS HET",
              cluster);

  WorkloadParams params;
  params.kind = WorkloadKind::kGsHet;
  params.num_jobs = 60;
  params.slowdown = 2.0;

  std::printf("%6s | %30s | %30s\n", "", "warm start ON", "warm start OFF");
  std::printf("%6s | %8s %8s %8s %4s | %8s %8s %8s %4s\n", "seed", "mean",
              "p95", "max", "slo", "mean", "p95", "max", "slo");
  int seeds = SeedsFromEnv(2);
  double on_mean = 0.0, off_mean = 0.0;
  for (int s = 0; s < seeds; ++s) {
    params.seed = 500 + 31 * s;
    Row on = RunOnce(cluster, params, true);
    Row off = RunOnce(cluster, params, false);
    on_mean += on.mean_ms;
    off_mean += off.mean_ms;
    std::printf("%6d | %7.2fms %7.2fms %7.2fms %3.0f%% | %7.2fms %7.2fms "
                "%7.2fms %3.0f%%\n",
                s, on.mean_ms, on.p95_ms, on.max_ms, on.slo, off.mean_ms,
                off.p95_ms, off.max_ms, off.slo);
  }
  std::printf("\nmean solver latency: %.2f ms warm vs %.2f ms cold "
              "(%.0f%% change)\n",
              on_mean / seeds, off_mean / seeds,
              100.0 * (on_mean - off_mean) / std::max(off_mean, 1e-9));
  return 0;
}

}  // namespace
}  // namespace tetrisched

int main() { return tetrisched::Main(); }
