// Detection-latency sweep under message loss (robustness extension; not a
// paper figure — the paper's control plane is YARN's, assumed reliable).
//
// Sweeps the failure detector's heartbeat suspect timeout against the
// control-plane message drop rate on the RC80-scaled cluster under GS MIX
// with stochastic churn and control-plane partitions (DESIGN.md §15).
// Reports SLO attainment, detection latency (true failure -> suspicion),
// false suspicions, and the fencing/adoption/bounce accounting. The §15
// safety invariant (no double-occupied node, no silently lost gang) is
// asserted in every cell: the sweep trades performance, never correctness.
//
// With TETRISCHED_BENCH_JSON set, one record per (timeout, drop, seed)
// cell is written to BENCH_detect.json.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bench/bench_json.h"
#include "bench/exp_common.h"
#include "src/sim/faults.h"

namespace tetrisched {
namespace {

struct CellStats {
  double total_slo = 0.0;      // percent
  double accepted_slo = 0.0;   // percent
  double detect_mean = 0.0;    // seconds
  double detect_max = 0.0;     // seconds
  double suspicions = 0.0;
  double false_suspicions = 0.0;
  double dead_declared = 0.0;
  double fenced = 0.0;
  double adopted = 0.0;
  double bounces = 0.0;
  double kills = 0.0;
  double invariant_violations = 0.0;  // must stay 0
};

std::unique_ptr<SchedulerPolicy> MakePolicy(const Cluster& cluster) {
  TetriSchedConfig config = TetriSchedConfig::Full(/*plan_ahead=*/96);
  config.quantum = 8;
  config.milp.time_limit_seconds = 0.15;
  config.milp.max_nodes = 1500;
  return std::make_unique<TetriScheduler>(cluster, config);
}

CellStats RunCell(const Cluster& cluster, SimDuration suspect_timeout,
                  double drop_prob, int num_seeds, BenchJsonWriter& json) {
  CellStats cell;
  for (int s = 0; s < num_seeds; ++s) {
    WorkloadParams params;
    params.kind = WorkloadKind::kGsMix;
    params.seed = 2000 + 17 * s;
    params.num_jobs = 24;

    std::vector<Job> jobs = GenerateWorkload(cluster, params);
    RayonAdmission rayon(cluster.num_nodes());
    ApplyAdmission(cluster, jobs, &rayon);

    FaultModelParams faults;
    faults.seed = 42 + s;
    faults.horizon = 6000;
    faults.mtbf = 600.0;
    faults.mttr = 40.0;
    faults.msg_drop_prob = drop_prob;
    faults.msg_dup_prob = drop_prob > 0 ? 0.05 : 0.0;
    faults.msg_delay_jitter = drop_prob > 0 ? 2 : 0;
    faults.suspect_timeout = suspect_timeout;
    faults.partition_mtbf = 900.0;
    faults.partition_mttr = 25.0;
    faults.rack_partition_prob = 0.3;
    FaultSchedule schedule = GenerateFaultSchedule(cluster, faults);

    SimConfig sim_config;
    sim_config.node_failures = schedule.failures;
    sim_config.stragglers = schedule.stragglers;
    sim_config.comms = schedule.comms;
    sim_config.rayon = &rayon;

    std::unique_ptr<SchedulerPolicy> policy = MakePolicy(cluster);
    Simulator sim(cluster, *policy, std::move(jobs), sim_config);
    auto t0 = std::chrono::steady_clock::now();
    SimMetrics metrics = sim.Run();
    double wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();

    if (metrics.belief_invariant_violations != 0 ||
        metrics.validator_violations != 0) {
      std::fprintf(stderr,
                   "FATAL: safety invariant violated (belief=%d, "
                   "validator=%d) at timeout=%lld drop=%.2f seed=%d\n",
                   metrics.belief_invariant_violations,
                   metrics.validator_violations,
                   static_cast<long long>(suspect_timeout), drop_prob, s);
      std::exit(1);
    }

    double detect_mean =
        metrics.detection_latency.empty() ? 0.0
                                          : metrics.detection_latency.Mean();
    double detect_max =
        metrics.detection_latency.empty() ? 0.0
                                          : metrics.detection_latency.Max();
    cell.total_slo += 100.0 * metrics.TotalSloAttainment();
    cell.accepted_slo += 100.0 * metrics.AcceptedSloAttainment();
    cell.detect_mean += detect_mean;
    cell.detect_max = std::max(cell.detect_max, detect_max);
    cell.suspicions += metrics.suspicions;
    cell.false_suspicions += metrics.false_suspicions;
    cell.dead_declared += metrics.dead_declared;
    cell.fenced += metrics.fenced_tasks;
    cell.adopted += metrics.orphans_adopted;
    cell.bounces += metrics.stale_placement_bounces;
    cell.kills += metrics.failure_kills;
    cell.invariant_violations += metrics.belief_invariant_violations;

    json.Add("timeout=" + std::to_string(suspect_timeout) +
                 "/drop=" + Fixed(drop_prob, 2) + "/seed=" +
                 std::to_string(s),
             wall_ms,
             {{"suspect_timeout", static_cast<double>(suspect_timeout)},
              {"drop_prob", drop_prob},
              {"total_slo", 100.0 * metrics.TotalSloAttainment()},
              {"accepted_slo", 100.0 * metrics.AcceptedSloAttainment()},
              {"detect_mean_s", detect_mean},
              {"detect_max_s", detect_max},
              {"suspicions", static_cast<double>(metrics.suspicions)},
              {"false_suspicions",
               static_cast<double>(metrics.false_suspicions)},
              {"dead_declared", static_cast<double>(metrics.dead_declared)},
              {"fenced_tasks", static_cast<double>(metrics.fenced_tasks)},
              {"orphans_adopted",
               static_cast<double>(metrics.orphans_adopted)},
              {"stale_placement_bounces",
               static_cast<double>(metrics.stale_placement_bounces)},
              {"heartbeats_dropped",
               static_cast<double>(metrics.heartbeats_dropped)},
              {"commands_dropped",
               static_cast<double>(metrics.commands_dropped)},
              {"failure_kills", static_cast<double>(metrics.failure_kills)},
              {"belief_invariant_violations",
               static_cast<double>(metrics.belief_invariant_violations)}});
  }
  double inv = 1.0 / num_seeds;
  cell.total_slo *= inv;
  cell.accepted_slo *= inv;
  cell.detect_mean *= inv;
  cell.suspicions *= inv;
  cell.false_suspicions *= inv;
  cell.dead_declared *= inv;
  cell.fenced *= inv;
  cell.adopted *= inv;
  cell.bounces *= inv;
  cell.kills *= inv;
  return cell;
}

int Main() {
  Cluster cluster = MakeRc80();
  PrintHeader("Detection sweep: suspect timeout x message drop rate",
              "GS MIX + churn (MTBF 600 s) + control-plane partitions "
              "(MTBF 900 s, 30% rack-scoped), lossy heartbeat channel",
              cluster);

  const std::vector<SimDuration> timeouts = {4, 8, 16};
  const std::vector<double> drops = {0.0, 0.05, 0.2};
  const int num_seeds = SeedsFromEnv(3);
  BenchJsonWriter json;

  std::vector<std::vector<CellStats>> results(timeouts.size());
  for (size_t t = 0; t < timeouts.size(); ++t) {
    for (double drop : drops) {
      results[t].push_back(
          RunCell(cluster, timeouts[t], drop, num_seeds, json));
    }
  }

  std::printf("\n(a) SLO attainment, all SLO jobs (%%)\n");
  std::printf("%12s", "timeout(s)");
  for (double drop : drops) {
    std::printf("      drop=%.2f", drop);
  }
  std::printf("\n");
  for (size_t t = 0; t < timeouts.size(); ++t) {
    std::printf("%12lld", static_cast<long long>(timeouts[t]));
    for (size_t d = 0; d < drops.size(); ++d) {
      std::printf(" %14s", Fixed(results[t][d].total_slo).c_str());
    }
    std::printf("\n");
  }

  std::printf("\n(b) mean detection latency, true failure -> suspicion (s)\n");
  std::printf("%12s", "timeout(s)");
  for (double drop : drops) {
    std::printf("      drop=%.2f", drop);
  }
  std::printf("\n");
  for (size_t t = 0; t < timeouts.size(); ++t) {
    std::printf("%12lld", static_cast<long long>(timeouts[t]));
    for (size_t d = 0; d < drops.size(); ++d) {
      std::printf(" %14s", Fixed(results[t][d].detect_mean).c_str());
    }
    std::printf("\n");
  }

  std::printf("\n(c) false suspicions per run\n");
  std::printf("%12s", "timeout(s)");
  for (double drop : drops) {
    std::printf("      drop=%.2f", drop);
  }
  std::printf("\n");
  for (size_t t = 0; t < timeouts.size(); ++t) {
    std::printf("%12lld", static_cast<long long>(timeouts[t]));
    for (size_t d = 0; d < drops.size(); ++d) {
      std::printf(" %14s", Fixed(results[t][d].false_suspicions).c_str());
    }
    std::printf("\n");
  }

  std::printf(
      "\n(d) fencing/adoption accounting at drop=0.2, averaged per run\n");
  std::printf("%12s %8s %8s %8s %8s %8s %10s\n", "timeout(s)", "suspect",
              "dead", "fenced", "adopted", "bounces", "kills");
  for (size_t t = 0; t < timeouts.size(); ++t) {
    const CellStats& cell = results[t].back();
    std::printf("%12lld %8s %8s %8s %8s %8s %10s\n",
                static_cast<long long>(timeouts[t]),
                Fixed(cell.suspicions).c_str(),
                Fixed(cell.dead_declared).c_str(), Fixed(cell.fenced).c_str(),
                Fixed(cell.adopted).c_str(), Fixed(cell.bounces).c_str(),
                Fixed(cell.kills).c_str());
  }
  std::printf(
      "\nsafety: belief-invariant violations were zero in every cell "
      "(asserted).\n");

  json.WriteIfRequested("BENCH_detect.json");
  return 0;
}

}  // namespace
}  // namespace tetrisched

int main() { return tetrisched::Main(); }
