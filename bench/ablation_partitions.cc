// Ablation: equivalence-set partitioning (paper §4.2, §5; TR Appendix A).
//
// The paper claims equivalence sets are "instrumental to the reduction of
// combinatorial complexity": the MILP tracks per-partition integer counts
// instead of per-machine choices. This bench compiles and solves the same
// pending queue against
//   (a) the normal attribute-partitioned cluster (one partition per
//       (rack, gpu) signature), and
//   (b) a "shattered" cluster where every node is its own partition
//       (attr_tag = node id) — the no-equivalence-sets strawman,
// and reports MILP size and solve latency at several queue depths.

#include <chrono>
#include <cstdio>

#include "bench/exp_common.h"
#include "src/compiler/compiler.h"
#include "src/core/strl_gen.h"
#include "src/solver/milp.h"

namespace tetrisched {
namespace {

std::vector<Job> MakeQueue(int jobs) {
  std::vector<Job> queue;
  for (int i = 0; i < jobs; ++i) {
    Job job;
    job.id = i;
    job.k = 2 + i % 3;
    job.actual_runtime = 40 + 13 * (i % 5);
    job.deadline = 600 + 40 * i;
    job.slowdown = 1.5;
    job.slo_class = SloClass::kSloAccepted;
    job.type = i % 3 == 0   ? JobType::kGpu
               : i % 3 == 1 ? JobType::kMpi
                            : JobType::kUnconstrained;
    queue.push_back(job);
  }
  return queue;
}

Cluster MakeShattered(int racks, int nodes_per_rack, int gpu_racks) {
  std::vector<NodeSpec> nodes;
  int id = 0;
  for (int rack = 0; rack < racks; ++rack) {
    for (int i = 0; i < nodes_per_rack; ++i) {
      NodeSpec node;
      node.rack = rack;
      node.has_gpu = rack < gpu_racks;
      node.attr_tag = id++;  // every node its own equivalence class
      nodes.push_back(node);
    }
  }
  return Cluster(std::move(nodes));
}

struct Cell {
  int vars = 0;
  int constraints = 0;
  double solve_ms = 0.0;
  double objective = 0.0;
};

Cell Measure(const Cluster& cluster, const std::vector<Job>& jobs) {
  StrlGenerator gen(cluster, {.plan_ahead = 96, .quantum = 8});
  OptionRegistry registry;
  std::vector<StrlExpr> exprs;
  for (const Job& job : jobs) {
    auto expr = gen.GenerateJobExpr(job, 0, &registry);
    if (expr.has_value()) {
      exprs.push_back(std::move(*expr));
    }
  }
  StrlExpr root = Sum(std::move(exprs));
  TimeGrid grid{.start = 0, .quantum = 8, .num_slices = 12};
  AvailabilityGrid avail(cluster, grid);
  CompiledStrl compiled = StrlCompiler(avail).Compile(root);

  Cell cell;
  cell.vars = compiled.model().num_vars();
  cell.constraints = compiled.model().num_constraints();
  MilpOptions options;
  options.time_limit_seconds = 2.0;
  auto start = std::chrono::steady_clock::now();
  MilpResult result = MilpSolver(compiled.model(), options).Solve();
  cell.solve_ms = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count() *
                  1e3;
  cell.objective = result.objective;
  return cell;
}

int Main() {
  Cluster partitioned = MakeRc80(2);
  Cluster shattered = MakeShattered(4, 4, 2);
  PrintHeader("Ablation: equivalence-set partitioning vs per-node variables",
              "synthetic GS-HET-like queue", partitioned);
  std::printf("(shattered cluster: every node is its own partition -> %d "
              "partitions vs %d)\n\n",
              shattered.num_partitions(), partitioned.num_partitions());

  std::printf("%6s | %22s | %22s | %8s\n", "queue",
              "equivalence sets", "per-node variables", "speedup");
  std::printf("%6s | %8s %7s %5s | %8s %7s %5s |\n", "depth", "vars",
              "constr", "ms", "vars", "constr", "ms");
  for (int depth : {2, 4, 6, 8}) {
    std::vector<Job> jobs = MakeQueue(depth);
    Cell eq = Measure(partitioned, jobs);
    Cell sh = Measure(shattered, jobs);
    std::printf("%6d | %8d %7d %5.0f | %8d %7d %5.0f | %6.1fx (obj %.1f vs %.1f)\n",
                depth, eq.vars, eq.constraints, eq.solve_ms, sh.vars,
                sh.constraints, sh.solve_ms,
                sh.solve_ms / std::max(eq.solve_ms, 1e-3), eq.objective,
                sh.objective);
  }
  std::printf("\n(The encodings are value-equivalent; the per-node model pays\n"
              "in variables, constraints, and solve latency -- and under the\n"
              "2 s budget it can fail to find the full-value schedule at all,\n"
              "visible as a lower objective on deep queues.)\n");
  return 0;
}

}  // namespace
}  // namespace tetrisched

int main() { return tetrisched::Main(); }
