// Scale sweep (paper §7.3 / TR claim: TetriSched scales to 1000-node
// simulated clusters with stable cycle latency distributions).
//
// Grows the simulated cluster from 16 to 64 nodes with the workload scaled
// proportionally (constant offered load) and reports cycle/solver latency
// and MILP size for the global policy. The shape to observe: latency grows
// with cluster scale but stays bounded by the per-cycle budget, and
// scheduling quality (SLO attainment) does not degrade.

#include <cstdio>

#include "bench/exp_common.h"

namespace tetrisched {
namespace {

int Main() {
  PrintHeader("Scale sweep: cluster size vs cycle latency (global policy)",
              "GS HET scaled", MakeRc80(2));

  std::printf("%7s %6s | %9s %9s %9s | %6s %6s\n", "nodes", "jobs",
              "solver-ms", "p95-ms", "vars", "SLO%", "util%");
  for (int racks : {4, 8, 16}) {
    Cluster cluster = MakeUniformCluster(racks, 4, racks / 2);
    WorkloadParams params;
    params.kind = WorkloadKind::kGsHet;
    params.num_jobs = cluster.num_nodes() * 2;  // constant offered load
    params.slowdown = 2.0;
    params.seed = 77;
    ExperimentSpec spec;
    spec.policy = PolicyKind::kTetriSched;
    // Scale the per-cycle solver budget with the cluster, as the paper does
    // by re-parameterizing CPLEX's timeout at larger scales (S3.2.2).
    spec.milp_time_limit = 0.1 * racks / 4.0;
    spec.quantum = 12;  // coarser slices keep the largest models tractable
    SimMetrics metrics = RunExperiment(cluster, params, spec);
    std::printf("%7d %6d | %9.2f %9.2f %9.0f | %5.1f%% %5.1f%%\n",
                cluster.num_nodes(), params.num_jobs,
                metrics.solver_latency_ms.Mean(),
                metrics.solver_latency_ms.Percentile(95),
                metrics.milp_vars.Mean(),
                100.0 * metrics.TotalSloAttainment(),
                100.0 * metrics.utilization);
  }
  return 0;
}

}  // namespace
}  // namespace tetrisched

int main() { return tetrisched::Main(); }
