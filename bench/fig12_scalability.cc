// Reproduces paper Fig 12: scheduler scalability with plan-ahead. Measures
// (a) mean MILP solver latency and (b) mean cycle latency as functions of
// the plan-ahead window for global TetriSched and greedy TetriSched-NG, and
// (c) the latency CDFs at the largest plan-ahead.
//
// Expected shape (paper): solver latency grows with plan-ahead for the
// global policy and dominates cycle latency; the greedy policy is cheaper
// and its latency can *decrease* with plan-ahead because better schedules
// shrink the pending queue. Absolute values are smaller than the paper's
// (scaled cluster + our own B&B solver), but the growth shape holds.

#include <cstdio>
#include <string>

#include "bench/bench_json.h"
#include "bench/exp_common.h"

namespace tetrisched {
namespace {

struct LatencyRow {
  double solver_ms = 0.0;
  double cycle_ms = 0.0;
  SampleStats solver_samples;
  SampleStats cycle_samples;
  double milp_vars_mean = 0.0;
  double milp_vars_max = 0.0;
  double components_mean = 0.0;
  double components_max = 0.0;
};

int Main() {
  Cluster cluster = MakeRc80(/*gpu_racks=*/2);
  PrintHeader("Fig 12: scalability with plan-ahead (latency per cycle)",
              "GS HET", cluster);

  WorkloadParams params;
  params.kind = WorkloadKind::kGsHet;
  params.num_jobs = 60;
  params.slowdown = 2.0;
  params.seed = 1000;

  const SimDuration plan_aheads[] = {8, 44, 96, 120, 144};
  const PolicyKind policies[] = {PolicyKind::kTetriSched,
                                 PolicyKind::kTetriSchedNG};
  LatencyRow rows[5][2];

  for (int w = 0; w < 5; ++w) {
    for (int p = 0; p < 2; ++p) {
      ExperimentSpec spec;
      spec.policy = policies[p];
      spec.plan_ahead = plan_aheads[w];
      // Give the solver room so latency reflects problem size, not just the
      // budget ceiling.
      spec.milp_time_limit = 0.5;
      SimMetrics metrics = RunExperiment(cluster, params, spec);
      rows[w][p].solver_ms = metrics.solver_latency_ms.Mean();
      rows[w][p].cycle_ms = metrics.cycle_latency_ms.Mean();
      rows[w][p].solver_samples = metrics.solver_latency_ms;
      rows[w][p].cycle_samples = metrics.cycle_latency_ms;
      rows[w][p].milp_vars_mean = metrics.milp_vars.Mean();
      rows[w][p].milp_vars_max = metrics.milp_vars.Max();
      rows[w][p].components_mean = metrics.milp_components.Mean();
      rows[w][p].components_max = metrics.milp_components.Max();
    }
  }

  // Decomposition on/off sweep (global policy only): identical workload and
  // budgets, MilpOptions::enable_decomposition toggled off for the
  // monolithic baseline. Same 10% gap on both sides, so the wall-clock
  // delta is pure search-tree savings (solver/decompose.h).
  LatencyRow mono_rows[5];
  for (int w = 0; w < 5; ++w) {
    ExperimentSpec spec;
    spec.policy = PolicyKind::kTetriSched;
    spec.plan_ahead = plan_aheads[w];
    spec.milp_time_limit = 0.5;
    spec.milp_decomposition = false;
    SimMetrics metrics = RunExperiment(cluster, params, spec);
    mono_rows[w].solver_ms = metrics.solver_latency_ms.Mean();
    mono_rows[w].cycle_ms = metrics.cycle_latency_ms.Mean();
  }

  std::printf("\n(a) mean solver latency (ms)\n");
  std::printf("%14s %14s %14s\n", "plan-ahead(s)", "TetriSched",
              "TetriSched-NG");
  for (int w = 0; w < 5; ++w) {
    std::printf("%14lld %14s %14s\n", static_cast<long long>(plan_aheads[w]),
                Fixed(rows[w][0].solver_ms, 2).c_str(),
                Fixed(rows[w][1].solver_ms, 2).c_str());
  }

  std::printf("\n(b) mean cycle latency (ms)\n");
  std::printf("%14s %14s %14s\n", "plan-ahead(s)", "TetriSched",
              "TetriSched-NG");
  for (int w = 0; w < 5; ++w) {
    std::printf("%14lld %14s %14s\n", static_cast<long long>(plan_aheads[w]),
                Fixed(rows[w][0].cycle_ms, 2).c_str(),
                Fixed(rows[w][1].cycle_ms, 2).c_str());
  }

  std::printf("\n(c) latency CDF at plan-ahead = 144 s (ms at percentile)\n");
  std::printf("%6s %16s %16s %18s %18s\n", "pct", "TetriSched cyc",
              "TetriSched slv", "TetriSched-NG cyc", "TetriSched-NG slv");
  for (double pct : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0}) {
    std::printf("%6.0f %16s %16s %18s %18s\n", pct,
                Fixed(rows[4][0].cycle_samples.Percentile(pct), 2).c_str(),
                Fixed(rows[4][0].solver_samples.Percentile(pct), 2).c_str(),
                Fixed(rows[4][1].cycle_samples.Percentile(pct), 2).c_str(),
                Fixed(rows[4][1].solver_samples.Percentile(pct), 2).c_str());
  }

  std::printf("\nMean MILP size (decision variables) at each plan-ahead, "
              "global policy:\n");
  for (int w = 0; w < 5; ++w) {
    std::printf("  plan-ahead %3lld s: %.0f vars/cycle (mean), %.0f max\n",
                static_cast<long long>(plan_aheads[w]),
                rows[w][0].milp_vars_mean, rows[w][0].milp_vars_max);
  }

  std::printf("\n(e) solver decomposition on/off, global policy "
              "(mean solver ms at equal 10%% gap)\n");
  std::printf("%14s %12s %12s %10s %18s\n", "plan-ahead(s)", "decomposed",
              "monolithic", "speedup", "components mean/max");
  for (int w = 0; w < 5; ++w) {
    double speedup = rows[w][0].solver_ms > 0.0
                         ? mono_rows[w].solver_ms / rows[w][0].solver_ms
                         : 1.0;
    std::printf("%14lld %12s %12s %9sx %12.1f / %.0f\n",
                static_cast<long long>(plan_aheads[w]),
                Fixed(rows[w][0].solver_ms, 2).c_str(),
                Fixed(mono_rows[w].solver_ms, 2).c_str(),
                Fixed(speedup, 2).c_str(), rows[w][0].components_mean,
                rows[w][0].components_max);
  }

  // Machine-readable record of the latency sweep (see bench/bench_json.h).
  BenchJsonWriter writer;
  const char* policy_names[] = {"tetrisched", "tetrisched_ng"};
  for (int w = 0; w < 5; ++w) {
    for (int p = 0; p < 2; ++p) {
      writer.Add("fig12_solver_ms_pa" +
                     std::to_string(static_cast<long long>(plan_aheads[w])) +
                     "_" + policy_names[p],
                 rows[w][p].solver_ms,
                 {{"cycle_ms", rows[w][p].cycle_ms},
                  {"milp_vars_mean", rows[w][p].milp_vars_mean},
                  {"components_mean", rows[w][p].components_mean},
                  {"components_max", rows[w][p].components_max}});
    }
    writer.Add("fig12_solver_ms_pa" +
                   std::to_string(static_cast<long long>(plan_aheads[w])) +
                   "_tetrisched_monolithic",
               mono_rows[w].solver_ms, {{"cycle_ms", mono_rows[w].cycle_ms}});
  }
  writer.WriteIfRequested("BENCH_fig12.json");
  return 0;
}

}  // namespace
}  // namespace tetrisched

int main() { return tetrisched::Main(); }
