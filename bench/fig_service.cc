// Service-layer load bench (DESIGN.md §16; not a paper figure).
//
// An in-process tetrischedd serves closed-loop clients over socketpairs
// while the offered submission rate sweeps from a trickle to a flood well
// past the admission bound. Each client paces its submissions to its share
// of the offered rate and then blocks on the reply, so measured latency is
// the full request path: frame encode -> daemon poll loop -> admission ->
// response frame. Per-rate cells report admission throughput (accepted/s),
// the rejection ("overloaded") rate, and request latency p50/p99.
//
// With TETRISCHED_BENCH_JSON set, one record per offered-rate cell is
// written to BENCH_service.json. TETRI_QUICK shortens the measured window.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "src/client/client.h"
#include "src/net/socket.h"
#include "src/service/daemon.h"

namespace tetrisched {
namespace {

using Clock = std::chrono::steady_clock;

struct ClientStats {
  int64_t accepted = 0;
  int64_t rejected = 0;
  int64_t errors = 0;
  std::vector<double> latency_ms;
};

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) {
    return 0.0;
  }
  size_t index = static_cast<size_t>(p * static_cast<double>(sorted->size()));
  index = std::min(index, sorted->size() - 1);
  return (*sorted)[index];
}

// One closed-loop client: submits small jobs paced at `rps` requests per
// second until the deadline, blocking on each reply.
ClientStats RunClient(ServiceClient client, double rps,
                      Clock::time_point deadline) {
  ClientStats stats;
  JsonObj spec;
  spec.Field("type", "unconstrained");
  spec.Field("k", static_cast<int64_t>(1));
  spec.Field("runtime", static_cast<int64_t>(4));
  auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / rps));
  Clock::time_point next_send = Clock::now();
  while (Clock::now() < deadline) {
    if (Clock::now() < next_send) {
      std::this_thread::sleep_until(std::min(next_send, deadline));
      continue;
    }
    next_send += interval;
    Clock::time_point started = Clock::now();
    ServiceReply reply = client.SubmitSpec(spec);
    double ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                          started)
                    .count();
    if (!reply.transport_ok) {
      ++stats.errors;
      break;
    }
    stats.latency_ms.push_back(ms);
    if (reply.ok) {
      ++stats.accepted;
    } else if (reply.Overloaded()) {
      ++stats.rejected;
    } else {
      ++stats.errors;
    }
  }
  return stats;
}

}  // namespace
}  // namespace tetrisched

int main() {
  using namespace tetrisched;

  const bool quick = std::getenv("TETRI_QUICK") != nullptr;
  const double window_s = quick ? 0.4 : 2.0;
  const int kClients = 4;

  std::vector<double> offered_rps = {100, 400, 1600, 6400};
  if (quick) {
    offered_rps = {200, 3200};
  }

  BenchJsonWriter writer;
  std::printf(
      "service load sweep: %d closed-loop clients, %.1fs per cell\n"
      "%10s %12s %12s %10s %10s %10s\n",
      kClients, window_s, "offered/s", "achieved/s", "accepted/s", "rej_rate",
      "p50_ms", "p99_ms");

  for (double rps : offered_rps) {
    DaemonOptions options;
    options.racks = 2;
    options.nodes_per_rack = 4;
    options.cycle_period_ms = 5;
    options.sim_seconds_per_cycle = 4;
    options.admission.max_queued = 64;
    options.admission.admit_per_cycle = 32;
    options.admission.cycle_period_ms = 5;
    options.max_pending_jobs = 512;
    SchedulerDaemon daemon(options);
    if (!daemon.Start()) {
      std::fprintf(stderr, "daemon failed to start\n");
      return 1;
    }
    std::thread serving([&daemon] { daemon.Run(); });

    std::vector<ServiceClient> clients;
    for (int c = 0; c < kClients; ++c) {
      auto [daemon_end, client_end] = MakeSocketPair();
      daemon.AddConnectionFd(daemon_end.Release());
      ServiceClient client = ServiceClient::Adopt(client_end.Release());
      client.set_client_name("load-" + std::to_string(c));
      client.set_timeout_ms(5000);
      clients.push_back(std::move(client));
    }

    Clock::time_point started = Clock::now();
    Clock::time_point deadline =
        started + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(window_s));
    std::vector<std::thread> threads;
    std::vector<ClientStats> stats(kClients);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        stats[c] = RunClient(std::move(clients[c]), rps / kClients, deadline);
      });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
    double elapsed_s =
        std::chrono::duration<double>(Clock::now() - started).count();

    ClientStats total;
    for (const ClientStats& s : stats) {
      total.accepted += s.accepted;
      total.rejected += s.rejected;
      total.errors += s.errors;
      total.latency_ms.insert(total.latency_ms.end(), s.latency_ms.begin(),
                              s.latency_ms.end());
    }
    daemon.RequestStop();
    serving.join();

    std::sort(total.latency_ms.begin(), total.latency_ms.end());
    int64_t requests = total.accepted + total.rejected;
    double achieved = static_cast<double>(requests) / elapsed_s;
    double admitted = static_cast<double>(total.accepted) / elapsed_s;
    double rejection_rate =
        requests > 0
            ? static_cast<double>(total.rejected) / static_cast<double>(requests)
            : 0.0;
    double p50 = Percentile(&total.latency_ms, 0.50);
    double p99 = Percentile(&total.latency_ms, 0.99);
    std::printf("%10.0f %12.0f %12.0f %9.1f%% %10.3f %10.3f\n", rps, achieved,
                admitted, 100.0 * rejection_rate, p50, p99);
    if (total.errors > 0) {
      std::fprintf(stderr, "  (%lld unexpected errors)\n",
                   static_cast<long long>(total.errors));
    }

    writer.Add("service_offered_" + std::to_string(static_cast<int>(rps)),
               elapsed_s * 1000.0,
               {{"offered_rps", rps},
                {"achieved_rps", achieved},
                {"admitted_rps", admitted},
                {"accepted", static_cast<double>(total.accepted)},
                {"rejected", static_cast<double>(total.rejected)},
                {"rejection_rate", rejection_rate},
                {"latency_p50_ms", p50},
                {"latency_p99_ms", p99}});
  }

  writer.WriteIfRequested("BENCH_service.json");
  return 0;
}
