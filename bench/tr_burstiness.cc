// TR companion claim (§7.3 footnote to [34]): "TetriSched scales effectively
// ... across varied cluster loads, inter-arrival burstiness, slowdown,
// plan-ahead, and workload mixes."
//
// This bench sweeps the arrival process from smooth Poisson through
// increasingly bursty patterns (and a diurnal wave) at constant average
// load, comparing TetriSched against Rayon/CS on GS HET. Bursts are exactly
// where plan-ahead matters: a burst floods the pending queue and only global
// space-time optimization can sequence it without SLO collapse.

#include <cstdio>

#include "bench/exp_common.h"

namespace tetrisched {
namespace {

int Main() {
  Cluster cluster = MakeRc80(2);
  PrintHeader("TR sweep: inter-arrival burstiness at constant load", "GS HET",
              cluster);

  WorkloadParams params;
  params.kind = WorkloadKind::kGsHet;
  params.num_jobs = 60;
  params.slowdown = 2.0;
  params.slack_min = 1.6;
  params.slack_max = 3.0;
  int seeds = SeedsFromEnv(2);

  struct Shape {
    const char* name;
    ArrivalPattern pattern;
    double burst_factor;
  };
  const Shape shapes[] = {
      {"poisson", ArrivalPattern::kPoisson, 1.0},
      {"bursty x2", ArrivalPattern::kBursty, 2.0},
      {"bursty x4", ArrivalPattern::kBursty, 4.0},
      {"bursty x8", ArrivalPattern::kBursty, 8.0},
      {"diurnal", ArrivalPattern::kDiurnal, 1.0},
  };

  std::printf("%12s | %22s | %22s\n", "", "Rayon/CS", "TetriSched");
  std::printf("%12s | %9s %12s | %9s %12s\n", "arrivals", "SLO(%)",
              "BE lat (s)", "SLO(%)", "BE lat (s)");
  for (const Shape& shape : shapes) {
    params.arrivals = shape.pattern;
    params.burst_factor = shape.burst_factor;

    ExperimentSpec cs_spec;
    cs_spec.policy = PolicyKind::kRayonCS;
    SweepStats cs = RunAveraged(cluster, params, cs_spec, seeds);

    ExperimentSpec tetri_spec;
    tetri_spec.policy = PolicyKind::kTetriSched;
    SweepStats tetri = RunAveraged(cluster, params, tetri_spec, seeds);

    std::printf("%12s | %9s %12s | %9s %12s\n", shape.name,
                Fixed(cs.total_slo).c_str(), Fixed(cs.be_latency).c_str(),
                Fixed(tetri.total_slo).c_str(),
                Fixed(tetri.be_latency).c_str());
  }
  return 0;
}

}  // namespace
}  // namespace tetrisched

int main() { return tetrisched::Main(); }
