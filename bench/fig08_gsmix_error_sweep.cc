// Reproduces paper Fig 8: the synthetic homogeneous SLO + BE mix (GS MIX) on
// the smaller RC80-scaled cluster — the sanity check that the small testbed
// reproduces the Fig 6 trends before the ablation studies.
//
// Expected shape (paper): same trends as Fig 6 — TetriSched wins on SLO
// attainment and best-effort latency. (Known exception in the paper: at -50%
// TetriSched trades BE latency for SLO attainment by admitting more BE jobs.)

#include "bench/exp_common.h"

namespace tetrisched {
namespace {

int Main() {
  Cluster cluster = MakeRc80(/*gpu_racks=*/0);
  PrintHeader("Fig 8: estimate-error sweep on the small cluster", "GS MIX",
              cluster);

  ErrorSweepSpec spec;
  spec.params.kind = WorkloadKind::kGsMix;
  spec.params.num_jobs = 80;
  spec.errors = {-0.5, -0.2, 0.0, 0.2, 0.5, 1.0};
  spec.policies = {PolicyKind::kRayonCS, PolicyKind::kTetriSched};
  spec.panels = {Panel::kTotalSlo, Panel::kAcceptedSlo, Panel::kBeLatency};
  spec.num_seeds = SeedsFromEnv(2);
  RunAndPrintErrorSweep(cluster, spec);
  return 0;
}

}  // namespace
}  // namespace tetrisched

int main() { return tetrisched::Main(); }
