// Reproduces paper Fig 9: the benefit of soft-constraint (heterogeneity)
// awareness. Workload GS HET on the RC80-scaled cluster; compares TetriSched,
// TetriSched-NH (heterogeneity disabled), and Rayon/CS across runtime
// estimate error.
//
// Expected shape (paper): TetriSched >> TetriSched-NH on the heterogeneous
// mix (2-3x SLO attainment); NH can even drop below Rayon/CS as
// over-estimation grows, and Rayon/CS best-effort latency is far higher.

#include "bench/exp_common.h"

namespace tetrisched {
namespace {

int Main() {
  Cluster cluster = MakeRc80(/*gpu_racks=*/2);
  PrintHeader(
      "Fig 9: soft-constraint awareness (TetriSched vs -NH vs Rayon/CS)",
      "GS HET", cluster);

  ErrorSweepSpec spec;
  spec.params.kind = WorkloadKind::kGsHet;
  spec.params.num_jobs = 60;
  // Heterogeneity must matter for this figure: a stronger off-preference
  // penalty and tighter deadlines make placement quality decisive.
  spec.params.slowdown = 2.0;
  spec.params.slack_min = 1.6;
  spec.params.slack_max = 3.0;
  spec.errors = {-0.5, -0.2, 0.0, 0.2, 0.5};
  spec.policies = {PolicyKind::kRayonCS, PolicyKind::kTetriSched,
                   PolicyKind::kTetriSchedNH};
  spec.panels = {Panel::kTotalSlo, Panel::kAcceptedSlo, Panel::kUnreservedSlo,
                 Panel::kBeLatency};
  spec.num_seeds = SeedsFromEnv(2);
  RunAndPrintErrorSweep(cluster, spec);
  return 0;
}

}  // namespace
}  // namespace tetrisched

int main() { return tetrisched::Main(); }
