// Reproduces paper Fig 10: the benefit of global scheduling. TetriSched vs
// TetriSched-NG (greedy per-job MILPs over 3 priority queues, keeping soft
// constraints and plan-ahead) vs Rayon/CS on GS HET.
//
// Expected shape (paper): global > greedy by a meaningful margin (up to
// ~36% at +50% over-estimation), and even greedy beats Rayon/CS on both SLO
// attainment and BE latency.

#include "bench/exp_common.h"

namespace tetrisched {
namespace {

int Main() {
  Cluster cluster = MakeRc80(/*gpu_racks=*/2);
  PrintHeader("Fig 10: global vs greedy scheduling (TetriSched vs -NG)",
              "GS HET", cluster);

  ErrorSweepSpec spec;
  spec.params.kind = WorkloadKind::kGsHet;
  spec.params.num_jobs = 60;
  spec.params.slowdown = 2.0;
  spec.params.slack_min = 1.6;
  spec.params.slack_max = 3.0;
  spec.errors = {-0.5, -0.2, 0.0, 0.2, 0.5};
  spec.policies = {PolicyKind::kRayonCS, PolicyKind::kTetriSched,
                   PolicyKind::kTetriSchedNG};
  spec.panels = {Panel::kTotalSlo, Panel::kAcceptedSlo, Panel::kUnreservedSlo,
                 Panel::kBeLatency};
  spec.num_seeds = SeedsFromEnv(2);
  RunAndPrintErrorSweep(cluster, spec);
  return 0;
}

}  // namespace
}  // namespace tetrisched

int main() { return tetrisched::Main(); }
