// Ablation (extension): rescue preemption in TetriSched. The paper's §7.2
// notes "Preemption in a TetriSched-like scheduler is an area for future
// work"; this repo implements a last-chance rescue — when an accepted SLO job
// is about to lose its final feasible start and best-effort containers hold
// the capacity, the youngest BE jobs are preempted and the cycle re-solved.
//
// This bench measures what that buys (and costs) on the GS MIX workload
// across estimate error: accepted-SLO attainment should rise under pressure,
// at the price of BE latency from restarted containers.

#include <cstdio>

#include "bench/exp_common.h"
#include "src/core/scheduler.h"

namespace tetrisched {
namespace {

struct Row {
  double accepted = 0.0;
  double total = 0.0;
  double be_latency = 0.0;
  double preemptions = 0.0;
};

Row RunCell(const Cluster& cluster, WorkloadParams params, bool preemption,
            int seeds) {
  Row row;
  for (int s = 0; s < seeds; ++s) {
    params.seed = 300 + 13 * s;
    std::vector<Job> jobs = GenerateWorkload(cluster, params);
    ApplyAdmission(cluster, jobs);
    TetriSchedConfig config = TetriSchedConfig::Full();
    config.enable_preemption = preemption;
    TetriScheduler scheduler(cluster, config);
    Simulator sim(cluster, scheduler, jobs);
    SimMetrics metrics = sim.Run();
    row.accepted += 100.0 * metrics.AcceptedSloAttainment();
    row.total += 100.0 * metrics.TotalSloAttainment();
    row.be_latency += metrics.MeanBestEffortLatency();
    row.preemptions += metrics.preemptions;
  }
  row.accepted /= seeds;
  row.total /= seeds;
  row.be_latency /= seeds;
  row.preemptions /= seeds;
  return row;
}

int Main() {
  Cluster cluster = MakeRc80(0);
  PrintHeader("Ablation (extension): rescue preemption in TetriSched",
              "GS MIX", cluster);

  WorkloadParams params;
  params.kind = WorkloadKind::kGsMix;
  params.num_jobs = 60;
  params.slack_min = 1.5;
  params.slack_max = 2.5;  // tight deadlines create rescue opportunities
  int seeds = SeedsFromEnv(2);

  std::printf("%8s | %26s | %26s\n", "", "preemption OFF (paper)",
              "preemption ON (extension)");
  std::printf("%8s | %7s %7s %6s %4s | %7s %7s %6s %4s\n", "err(%)", "acc",
              "total", "BE lat", "pre", "acc", "total", "BE lat", "pre");
  for (double error : {-0.5, -0.2, 0.0, 0.2, 0.5}) {
    params.estimate_error = error;
    Row off = RunCell(cluster, params, false, seeds);
    Row on = RunCell(cluster, params, true, seeds);
    std::printf("%8.0f | %6.1f%% %6.1f%% %5.0fs %4.0f | %6.1f%% %6.1f%% "
                "%5.0fs %4.0f\n",
                error * 100, off.accepted, off.total, off.be_latency,
                off.preemptions, on.accepted, on.total, on.be_latency,
                on.preemptions);
  }
  return 0;
}

}  // namespace
}  // namespace tetrisched

int main() { return tetrisched::Main(); }
