// Reproduces paper Fig 11: the benefit of plan-ahead. Sweeps the plan-ahead
// window (paper: 0, 44, 96, 120, 144 s; 0 == TetriSched-NP == alsched) for
// both global TetriSched and greedy TetriSched-NG on GS HET, with Rayon/CS
// as a flat reference.
//
// Expected shape (paper): SLO attainment rises steeply with plan-ahead and
// saturates around ~100 s; with plan-ahead disabled even global scheduling
// with soft constraints performs poorly on the heterogeneous workload.

#include <cstdio>

#include "bench/exp_common.h"

namespace tetrisched {
namespace {

int Main() {
  Cluster cluster = MakeRc80(/*gpu_racks=*/2);
  PrintHeader("Fig 11: plan-ahead sweep (0 = TetriSched-NP = alsched)",
              "GS HET", cluster);

  WorkloadParams params;
  params.kind = WorkloadKind::kGsHet;
  params.num_jobs = 60;
  params.slowdown = 2.0;
  params.slack_min = 1.6;
  params.slack_max = 3.0;
  params.estimate_error = 0.0;
  const int num_seeds = SeedsFromEnv(2);

  // Plan-ahead 8 is a single 8 s quantum == "now only" == NP.
  const SimDuration plan_aheads[] = {8, 44, 96, 120, 144};
  const PolicyKind policies[] = {PolicyKind::kTetriSched,
                                 PolicyKind::kTetriSchedNG};

  // Rayon/CS reference (plan-ahead does not apply to it).
  ExperimentSpec cs_spec;
  cs_spec.policy = PolicyKind::kRayonCS;
  SweepStats cs = RunAveraged(cluster, params, cs_spec, num_seeds);

  SweepStats results[5][2];
  for (int w = 0; w < 5; ++w) {
    for (int p = 0; p < 2; ++p) {
      ExperimentSpec spec;
      spec.policy = policies[p];
      spec.plan_ahead = plan_aheads[w];
      if (plan_aheads[w] <= spec.quantum) {
        spec.policy = p == 0 ? PolicyKind::kTetriSchedNP : policies[p];
      }
      results[w][p] = RunAveraged(cluster, params, spec, num_seeds);
    }
  }

  const Panel panels[] = {Panel::kTotalSlo, Panel::kAcceptedSlo,
                          Panel::kUnreservedSlo, Panel::kBeLatency};
  char label = 'a';
  for (Panel panel : panels) {
    std::printf("\n(%c) %s\n", label++, PanelTitle(panel));
    std::printf("%14s %14s %14s %14s\n", "plan-ahead(s)", "Rayon/CS",
                "TetriSched", "TetriSched-NG");
    for (int w = 0; w < 5; ++w) {
      std::printf("%14lld %14s %14s %14s\n",
                  static_cast<long long>(plan_aheads[w] == 8 ? 0
                                                             : plan_aheads[w]),
                  Fixed(PanelValue(cs, panel)).c_str(),
                  Fixed(PanelValue(results[w][0], panel)).c_str(),
                  Fixed(PanelValue(results[w][1], panel)).c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace tetrisched

int main() { return tetrisched::Main(); }
