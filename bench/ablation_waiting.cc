// Ablation: waiting policies (paper §3.2.1).
//
// "Plan-ahead ... is particularly important for the scheduler to know
// whether it should wait for preferred resources (in contrast to never
// waiting [33] or always waiting [41])."
//
// This bench instantiates all three philosophies on GS HET:
//   never wait   -> TetriSched-NP (alsched-like, takes the fallback now)
//   always wait  -> DelayScheduler with various tolerances (Zaharia et al.)
//   informed     -> TetriSched (plan-ahead decides per job)
// plus Rayon/CS for reference, and reports SLO attainment, BE latency, and
// the fraction of jobs that ran on their preferred resources.

#include <cstdio>

#include "bench/exp_common.h"
#include "src/baseline/capacity_scheduler.h"
#include "src/baseline/delay_scheduler.h"
#include "src/core/scheduler.h"

namespace tetrisched {
namespace {

struct Row {
  double total_slo = 0.0;
  double be_latency = 0.0;
  double preferred_pct = 0.0;
};

Row Summarize(const SimMetrics& metrics) {
  Row row;
  row.total_slo = 100.0 * metrics.TotalSloAttainment();
  row.be_latency = metrics.MeanBestEffortLatency();
  int started = 0;
  int preferred = 0;
  for (const JobOutcome& outcome : metrics.outcomes) {
    if (outcome.started) {
      ++started;
      preferred += outcome.preferred ? 1 : 0;
    }
  }
  row.preferred_pct = started > 0 ? 100.0 * preferred / started : 0.0;
  return row;
}

int Main() {
  Cluster cluster = MakeRc80(2);
  PrintHeader("Ablation: never-wait vs always-wait vs informed plan-ahead",
              "GS HET", cluster);

  WorkloadParams params;
  params.kind = WorkloadKind::kGsHet;
  params.num_jobs = 60;
  params.slowdown = 2.0;
  params.slack_min = 1.6;
  params.slack_max = 3.0;
  int seeds = SeedsFromEnv(2);

  struct PolicyRow {
    const char* name;
    Row totals;
  };
  std::vector<PolicyRow> rows = {
      {"never wait (TetriSched-NP)", {}},
      {"delay 30s", {}},
      {"delay 120s", {}},
      {"informed (TetriSched)", {}},
      {"Rayon/CS", {}},
  };

  for (int s = 0; s < seeds; ++s) {
    params.seed = 2100 + 19 * s;
    std::vector<Job> jobs = GenerateWorkload(cluster, params);
    ApplyAdmission(cluster, jobs);
    auto run = [&](SchedulerPolicy& policy) {
      Simulator sim(cluster, policy, jobs);
      return Summarize(sim.Run());
    };
    auto add = [](Row& total, const Row& one) {
      total.total_slo += one.total_slo;
      total.be_latency += one.be_latency;
      total.preferred_pct += one.preferred_pct;
    };

    TetriScheduler np(cluster, TetriSchedConfig::NoPlanAhead());
    add(rows[0].totals, run(np));
    DelayScheduler delay30(cluster, {.delay_tolerance = 30});
    add(rows[1].totals, run(delay30));
    DelayScheduler delay120(cluster, {.delay_tolerance = 120});
    add(rows[2].totals, run(delay120));
    TetriScheduler full(cluster, TetriSchedConfig::Full());
    add(rows[3].totals, run(full));
    CapacityScheduler cs(cluster);
    add(rows[4].totals, run(cs));
  }

  std::printf("%-28s %10s %12s %12s\n", "policy", "SLO(%)", "BE lat (s)",
              "preferred(%)");
  for (PolicyRow& row : rows) {
    std::printf("%-28s %10s %12s %12s\n", row.name,
                Fixed(row.totals.total_slo / seeds).c_str(),
                Fixed(row.totals.be_latency / seeds).c_str(),
                Fixed(row.totals.preferred_pct / seeds).c_str());
  }
  return 0;
}

}  // namespace
}  // namespace tetrisched

int main() { return tetrisched::Main(); }
