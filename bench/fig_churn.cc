// Churn sweep (robustness extension; not a paper figure).
//
// Sweeps the stochastic fault model's per-node MTBF on the RC256-scaled
// cluster under GS MIX and reports SLO attainment and mean best-effort
// latency for TetriSched Full vs NoPlanAhead, plus the graceful-degradation
// counters (failure kills, fallback cycles, validator violations). The
// expectation mirrors the paper's plan-ahead story: under churn, plan-ahead
// keeps reserved SLO jobs ahead of their deadlines after restarts, while
// the no-plan-ahead ablation degrades faster.
//
// With TETRISCHED_BENCH_JSON set, one record per (policy, mtbf) cell is
// written to BENCH_churn.json.

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_json.h"
#include "bench/exp_common.h"
#include "src/sim/faults.h"

namespace tetrisched {
namespace {

struct CellStats {
  double total_slo = 0.0;     // percent
  double accepted_slo = 0.0;  // percent
  double be_latency = 0.0;    // seconds
  double kills = 0.0;
  double fallback_cycles = 0.0;
  double violations = 0.0;
  double readmissions = 0.0;
  double reservations_dropped = 0.0;
  double retries_exhausted = 0.0;
};

std::unique_ptr<SchedulerPolicy> MakeChurnPolicy(const Cluster& cluster,
                                                 PolicyKind kind) {
  TetriSchedConfig config = kind == PolicyKind::kTetriSchedNP
                                ? TetriSchedConfig::NoPlanAhead()
                                : TetriSchedConfig::Full(/*plan_ahead=*/96);
  config.quantum = 8;
  if (kind == PolicyKind::kTetriSchedNP) {
    config.plan_ahead = config.quantum;
  }
  config.milp.time_limit_seconds = 0.15;
  config.milp.max_nodes = 1500;
  return std::make_unique<TetriScheduler>(cluster, config);
}

// RunExperiment (exp_common) has no fault plumbing, so this bench drives
// admission + simulation itself and keeps the Rayon agenda alive for the
// failure-path re-admission hook.
CellStats RunCell(const Cluster& cluster, PolicyKind kind, double mtbf,
                  int num_seeds, BenchJsonWriter& json) {
  CellStats cell;
  for (int s = 0; s < num_seeds; ++s) {
    WorkloadParams params;
    params.kind = WorkloadKind::kGsMix;
    params.seed = 1000 + 17 * s;
    params.num_jobs = 60;

    std::vector<Job> jobs = GenerateWorkload(cluster, params);
    RayonAdmission rayon(cluster.num_nodes());
    ApplyAdmission(cluster, jobs, &rayon);

    FaultModelParams faults;
    faults.seed = 42 + s;
    faults.horizon = 6000;
    faults.mtbf = mtbf;
    faults.mttr = 60.0;
    faults.rack_burst_prob = 0.1;
    faults.straggler_prob = 0.2;
    faults.straggler_slowdown = 2.0;
    FaultSchedule schedule = GenerateFaultSchedule(cluster, faults);

    SimConfig sim_config;
    sim_config.node_failures = schedule.failures;
    sim_config.stragglers = schedule.stragglers;
    sim_config.rayon = &rayon;

    std::unique_ptr<SchedulerPolicy> policy = MakeChurnPolicy(cluster, kind);
    Simulator sim(cluster, *policy, std::move(jobs), sim_config);
    auto t0 = std::chrono::steady_clock::now();
    SimMetrics metrics = sim.Run();
    double wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();

    cell.total_slo += 100.0 * metrics.TotalSloAttainment();
    cell.accepted_slo += 100.0 * metrics.AcceptedSloAttainment();
    cell.be_latency += metrics.MeanBestEffortLatency();
    cell.kills += metrics.failure_kills;
    cell.fallback_cycles += metrics.fallback_cycles;
    cell.violations += metrics.validator_violations;
    cell.readmissions += metrics.readmissions;
    cell.reservations_dropped += metrics.reservations_dropped;
    cell.retries_exhausted += metrics.retries_exhausted;

    json.Add(std::string(PolicyName(kind)) + "/mtbf=" +
                 Fixed(mtbf, 0) + "/seed=" + std::to_string(s),
             wall_ms,
             {{"mtbf", mtbf},
              {"total_slo", 100.0 * metrics.TotalSloAttainment()},
              {"accepted_slo", 100.0 * metrics.AcceptedSloAttainment()},
              {"be_latency", metrics.MeanBestEffortLatency()},
              {"failure_kills", static_cast<double>(metrics.failure_kills)},
              {"fallback_cycles",
               static_cast<double>(metrics.fallback_cycles)},
              {"validator_violations",
               static_cast<double>(metrics.validator_violations)},
              {"readmissions", static_cast<double>(metrics.readmissions)},
              {"reservations_dropped",
               static_cast<double>(metrics.reservations_dropped)},
              {"retries_exhausted",
               static_cast<double>(metrics.retries_exhausted)}});
  }
  double inv = 1.0 / num_seeds;
  cell.total_slo *= inv;
  cell.accepted_slo *= inv;
  cell.be_latency *= inv;
  cell.kills *= inv;
  cell.fallback_cycles *= inv;
  cell.violations *= inv;
  cell.readmissions *= inv;
  cell.reservations_dropped *= inv;
  cell.retries_exhausted *= inv;
  return cell;
}

int Main() {
  Cluster cluster = MakeRc256();
  PrintHeader("Churn sweep: SLO attainment vs per-node MTBF",
              "GS MIX + stochastic faults (MTTR 60 s, 10% rack bursts, "
              "20% stragglers)",
              cluster);

  // mtbf = 0 disables churn (the no-fault baseline column).
  const std::vector<double> mtbfs = {0.0, 2400.0, 1200.0, 600.0, 300.0};
  const std::vector<PolicyKind> policies = {PolicyKind::kTetriSched,
                                            PolicyKind::kTetriSchedNP};
  const int num_seeds = SeedsFromEnv(3);
  BenchJsonWriter json;

  std::vector<std::vector<CellStats>> results(mtbfs.size());
  for (size_t m = 0; m < mtbfs.size(); ++m) {
    for (PolicyKind kind : policies) {
      results[m].push_back(RunCell(cluster, kind, mtbfs[m], num_seeds, json));
    }
  }

  std::printf("\n(a) SLO attainment, all SLO jobs (%%)\n");
  std::printf("%12s", "mtbf(s)");
  for (PolicyKind kind : policies) {
    std::printf(" %14s", PolicyName(kind));
  }
  std::printf("\n");
  for (size_t m = 0; m < mtbfs.size(); ++m) {
    std::printf("%12s", mtbfs[m] > 0 ? Fixed(mtbfs[m], 0).c_str() : "inf");
    for (size_t p = 0; p < policies.size(); ++p) {
      std::printf(" %14s", Fixed(results[m][p].total_slo).c_str());
    }
    std::printf("\n");
  }

  std::printf("\n(b) best-effort mean latency (s)\n");
  std::printf("%12s", "mtbf(s)");
  for (PolicyKind kind : policies) {
    std::printf(" %14s", PolicyName(kind));
  }
  std::printf("\n");
  for (size_t m = 0; m < mtbfs.size(); ++m) {
    std::printf("%12s", mtbfs[m] > 0 ? Fixed(mtbfs[m], 0).c_str() : "inf");
    for (size_t p = 0; p < policies.size(); ++p) {
      std::printf(" %14s", Fixed(results[m][p].be_latency).c_str());
    }
    std::printf("\n");
  }

  std::printf(
      "\n(c) churn accounting, averaged per run (Full policy column)\n");
  std::printf("%12s %8s %10s %10s %8s %8s %8s\n", "mtbf(s)", "kills",
              "fallbacks", "violations", "readmit", "resdrop", "exhaust");
  for (size_t m = 0; m < mtbfs.size(); ++m) {
    const CellStats& full = results[m][0];
    std::printf("%12s %8s %10s %10s %8s %8s %8s\n",
                mtbfs[m] > 0 ? Fixed(mtbfs[m], 0).c_str() : "inf",
                Fixed(full.kills).c_str(),
                Fixed(full.fallback_cycles).c_str(),
                Fixed(full.violations).c_str(),
                Fixed(full.readmissions).c_str(),
                Fixed(full.reservations_dropped).c_str(),
                Fixed(full.retries_exhausted).c_str());
  }

  json.WriteIfRequested("BENCH_churn.json");
  return 0;
}

}  // namespace
}  // namespace tetrisched

int main() { return tetrisched::Main(); }
