// Reproduces the paper's §5.1 / Fig 4 worked MILP example: 3 jobs on a
// 3-machine cluster where only global scheduling with plan-ahead meets every
// deadline. Prints the generated MILP and the resulting schedule, which must
// be: job 1 at t=0, job 3 at t=10, job 2 at t=20.

#include <cstdio>

#include "bench/exp_common.h"
#include "src/compiler/compiler.h"
#include "src/solver/milp.h"

namespace tetrisched {
namespace {

int Main() {
  Cluster cluster = MakeUniformCluster(1, 3, 0);
  TimeGrid grid{.start = 0, .quantum = 10, .num_slices = 5};
  AvailabilityGrid availability(cluster, grid);
  PrintHeader("Fig 4 / S5.1: worked MILP example (3 jobs, 3 machines)",
              "hand-built", cluster);

  PartitionSet all = cluster.AllPartitions();
  // Job 1: short urgent — 2 machines x 10 s, deadline 10.
  StrlExpr job1 = NCk(all, 2, 0, 10, 1.0, 100);
  // Job 2: long small — 1 machine x 20 s, deadline 40.
  StrlExpr job2 = Max({NCk(all, 1, 0, 20, 1.0, 200),
                       NCk(all, 1, 10, 20, 1.0, 201),
                       NCk(all, 1, 20, 20, 1.0, 202)});
  // Job 3: short large — 3 machines x 10 s, deadline 20.
  StrlExpr job3 =
      Max({NCk(all, 3, 0, 10, 1.0, 300), NCk(all, 3, 10, 10, 1.0, 301)});
  StrlExpr root = Sum({std::move(job1), std::move(job2), std::move(job3)});

  std::printf("STRL: %s\n\n", ToString(root).c_str());

  CompiledStrl compiled = StrlCompiler(availability).Compile(root);
  std::printf("Generated MILP: %d variables, %d constraints\n",
              compiled.model().num_vars(), compiled.model().num_constraints());
  std::printf("%s\n", compiled.model().DebugString().c_str());

  MilpOptions options;
  options.rel_gap = 0.0;
  MilpResult result = MilpSolver(compiled.model(), options).Solve();
  std::printf("Solved: objective=%.1f (all 3 deadlines met), %d B&B nodes, "
              "%ld LP iterations\n\n",
              result.objective, result.nodes, result.lp_iterations);

  std::printf("Schedule (paper Fig 4 expects job1@0, job3@10, job2@20):\n");
  for (const StrlAllocation& alloc :
       compiled.ExtractAllocations(result.values)) {
    std::printf("  job %lld starts t=%lld for %lld s on %d machines\n",
                static_cast<long long>(alloc.tag / 100),
                static_cast<long long>(alloc.start),
                static_cast<long long>(alloc.duration), alloc.total_nodes());
  }
  return 0;
}

}  // namespace
}  // namespace tetrisched

int main() { return tetrisched::Main(); }
