// Overload storm sweep (robustness extension; not a paper figure).
//
// Sweeps arrival burstiness on the RC256-scaled cluster under GS MIX and
// compares three TetriSched configurations:
//   * fixed      — Full plan-ahead (96 s), no cycle budget (pre-§13 behavior)
//   * adaptive   — Full plan-ahead plus a wall-clock cycle budget: the AIMD
//                  controller shrinks the plan-ahead window (and relaxes
//                  rel_gap) while storms keep blowing the budget, and
//                  restores it when headroom returns (DESIGN.md §13)
//   * fixed-NP   — now-or-never (plan_ahead == quantum), the floor the
//                  adaptive controller degrades toward
// Reported per storm level: SLO attainment, p99 cycle wall-clock latency,
// and the budget accounting (blown cycles, adaptations). The expectation:
// adaptive keeps p99 cycle latency near the budget while fixed does not,
// at SLO attainment no worse than fixed-NP.
//
// With TETRISCHED_BENCH_JSON set, one record per (policy, burst, seed) cell
// is written to BENCH_overload.json.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/exp_common.h"

namespace tetrisched {
namespace {

// Wall-clock budget for one scheduling cycle in the adaptive configuration.
// The simulated cycle period is 4 s, but solves in the scaled testbed take
// milliseconds, so the budget is scaled the same way the per-solve MILP
// limit is (exp_common: 0.15 s).
constexpr double kCycleBudgetSeconds = 0.05;

enum class Config { kFixed, kAdaptive, kFixedNp };

const char* ConfigName(Config config) {
  switch (config) {
    case Config::kFixed:
      return "fixed";
    case Config::kAdaptive:
      return "adaptive";
    case Config::kFixedNp:
      return "fixed-NP";
  }
  return "?";
}

std::unique_ptr<TetriScheduler> MakePolicy(const Cluster& cluster,
                                           Config config) {
  TetriSchedConfig scheduler_config =
      config == Config::kFixedNp ? TetriSchedConfig::NoPlanAhead()
                                 : TetriSchedConfig::Full(/*plan_ahead=*/96);
  scheduler_config.quantum = 8;
  scheduler_config.milp.time_limit_seconds = 0.15;
  scheduler_config.milp.max_nodes = 1500;
  if (config == Config::kAdaptive) {
    scheduler_config.budget.budget_seconds = kCycleBudgetSeconds;
    scheduler_config.budget.aimd.shrink_after = 2;
    scheduler_config.budget.aimd.restore_after = 4;
  }
  return std::make_unique<TetriScheduler>(cluster, scheduler_config);
}

struct CellStats {
  double total_slo = 0.0;       // percent
  double accepted_slo = 0.0;    // percent
  double p99_cycle_ms = 0.0;
  double mean_cycle_ms = 0.0;
  double blown_cycles = 0.0;
  double adaptations = 0.0;
  double certifier_rejects = 0.0;
  double fallback_cycles = 0.0;
};

CellStats RunCell(const Cluster& cluster, Config config, double burst_factor,
                  int num_seeds, BenchJsonWriter& json) {
  CellStats cell;
  for (int s = 0; s < num_seeds; ++s) {
    WorkloadParams params;
    params.kind = WorkloadKind::kGsMix;
    params.seed = 3000 + 29 * s;
    params.num_jobs = 60;
    params.target_load = 1.3;  // deliberately past capacity: an overload storm
    if (burst_factor > 1.0) {
      params.arrivals = ArrivalPattern::kBursty;
      params.burst_factor = burst_factor;
    }

    std::vector<Job> jobs = GenerateWorkload(cluster, params);
    RayonAdmission rayon(cluster.num_nodes());
    ApplyAdmission(cluster, jobs, &rayon);

    SimConfig sim_config;
    sim_config.rayon = &rayon;

    std::unique_ptr<TetriScheduler> policy = MakePolicy(cluster, config);
    Simulator sim(cluster, *policy, std::move(jobs), sim_config);
    auto t0 = std::chrono::steady_clock::now();
    SimMetrics metrics = sim.Run();
    double wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();

    double p99 = metrics.cycle_latency_ms.Percentile(99);
    cell.total_slo += 100.0 * metrics.TotalSloAttainment();
    cell.accepted_slo += 100.0 * metrics.AcceptedSloAttainment();
    cell.p99_cycle_ms += p99;
    cell.mean_cycle_ms += metrics.cycle_latency_ms.Mean();
    cell.blown_cycles += metrics.budget_blown_cycles;
    cell.adaptations += metrics.plan_ahead_adaptations;
    cell.certifier_rejects += metrics.certifier_rejects;
    cell.fallback_cycles += metrics.fallback_cycles;

    json.Add(std::string(ConfigName(config)) + "/burst=" +
                 Fixed(burst_factor, 0) + "/seed=" + std::to_string(s),
             wall_ms,
             {{"burst_factor", burst_factor},
              {"total_slo", 100.0 * metrics.TotalSloAttainment()},
              {"accepted_slo", 100.0 * metrics.AcceptedSloAttainment()},
              {"p99_cycle_ms", p99},
              {"mean_cycle_ms", metrics.cycle_latency_ms.Mean()},
              {"budget_blown_cycles",
               static_cast<double>(metrics.budget_blown_cycles)},
              {"plan_ahead_adaptations",
               static_cast<double>(metrics.plan_ahead_adaptations)},
              {"certifier_rejects",
               static_cast<double>(metrics.certifier_rejects)},
              {"fallback_cycles",
               static_cast<double>(metrics.fallback_cycles)}});
  }
  double inv = 1.0 / num_seeds;
  cell.total_slo *= inv;
  cell.accepted_slo *= inv;
  cell.p99_cycle_ms *= inv;
  cell.mean_cycle_ms *= inv;
  cell.blown_cycles *= inv;
  cell.adaptations *= inv;
  cell.certifier_rejects *= inv;
  cell.fallback_cycles *= inv;
  return cell;
}

int Main() {
  Cluster cluster = MakeRc256();
  PrintHeader(
      "Overload storm sweep: adaptive plan-ahead vs fixed",
      "GS MIX at 1.3x load, bursty arrivals (burst=1 means Poisson); "
      "adaptive cycle budget " + Fixed(1e3 * kCycleBudgetSeconds, 0) + " ms",
      cluster);

  const std::vector<double> bursts = {1.0, 4.0, 8.0, 16.0};
  const std::vector<Config> configs = {Config::kFixed, Config::kAdaptive,
                                       Config::kFixedNp};
  const int num_seeds = SeedsFromEnv(3);
  BenchJsonWriter json;

  std::vector<std::vector<CellStats>> results(bursts.size());
  for (size_t b = 0; b < bursts.size(); ++b) {
    for (Config config : configs) {
      results[b].push_back(RunCell(cluster, config, bursts[b], num_seeds,
                                   json));
    }
  }

  std::printf("\n(a) SLO attainment, all SLO jobs (%%)\n");
  std::printf("%10s", "burst");
  for (Config config : configs) {
    std::printf(" %12s", ConfigName(config));
  }
  std::printf("\n");
  for (size_t b = 0; b < bursts.size(); ++b) {
    std::printf("%10s", Fixed(bursts[b], 0).c_str());
    for (size_t c = 0; c < configs.size(); ++c) {
      std::printf(" %12s", Fixed(results[b][c].total_slo).c_str());
    }
    std::printf("\n");
  }

  std::printf("\n(b) p99 cycle wall-clock latency (ms; budget %s ms)\n",
              Fixed(1e3 * kCycleBudgetSeconds, 0).c_str());
  std::printf("%10s", "burst");
  for (Config config : configs) {
    std::printf(" %12s", ConfigName(config));
  }
  std::printf("\n");
  for (size_t b = 0; b < bursts.size(); ++b) {
    std::printf("%10s", Fixed(bursts[b], 0).c_str());
    for (size_t c = 0; c < configs.size(); ++c) {
      std::printf(" %12s", Fixed(results[b][c].p99_cycle_ms).c_str());
    }
    std::printf("\n");
  }

  std::printf(
      "\n(c) budget accounting, averaged per run (adaptive column)\n");
  std::printf("%10s %8s %8s %10s %10s\n", "burst", "blown", "adapts",
              "certrej", "fallbacks");
  for (size_t b = 0; b < bursts.size(); ++b) {
    const CellStats& adaptive = results[b][1];
    std::printf("%10s %8s %8s %10s %10s\n", Fixed(bursts[b], 0).c_str(),
                Fixed(adaptive.blown_cycles).c_str(),
                Fixed(adaptive.adaptations).c_str(),
                Fixed(adaptive.certifier_rejects).c_str(),
                Fixed(adaptive.fallback_cycles).c_str());
  }

  json.WriteIfRequested("BENCH_overload.json");
  return 0;
}

}  // namespace
}  // namespace tetrisched

int main() { return tetrisched::Main(); }
