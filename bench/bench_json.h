// Machine-readable benchmark output.
//
// Benches accumulate (op name -> wall ms + numeric counters) records in a
// BenchJsonWriter and call WriteIfRequested() on exit. Nothing is written
// unless the TETRISCHED_BENCH_JSON environment variable is set:
//   TETRISCHED_BENCH_JSON=1          -> write <default_path> in the cwd
//   TETRISCHED_BENCH_JSON=some/dir   -> write some/dir/<default_path>
// This keeps the human-readable bench output unchanged while letting CI or a
// perf-tracking script record the solver's trajectory over time.

#ifndef TETRISCHED_BENCH_BENCH_JSON_H_
#define TETRISCHED_BENCH_BENCH_JSON_H_

#include <map>
#include <string>
#include <vector>

namespace tetrisched {

class BenchJsonWriter {
 public:
  // Records one benchmark op. `extra` holds named counters such as nodes,
  // lp_iterations, objective.
  void Add(const std::string& name, double wall_ms,
           std::map<std::string, double> extra = {});

  std::string ToJson() const;

  // True iff TETRISCHED_BENCH_JSON is set (and non-empty).
  static bool Requested();

  // Writes ToJson() to the requested location; returns true if a file was
  // written. A warning is logged on I/O failure.
  bool WriteIfRequested(const std::string& default_path) const;

 private:
  struct Record {
    std::string name;
    double wall_ms = 0.0;
    std::map<std::string, double> extra;
  };
  std::vector<Record> records_;
};

}  // namespace tetrisched

#endif  // TETRISCHED_BENCH_BENCH_JSON_H_
