// Provenance overhead bench (observability extension; not a paper figure).
//
// Runs the fig_churn workload (GS MIX + stochastic faults on the
// RC256-scaled cluster) twice per seed: once with the decision-provenance
// flight recorder forced off (the baseline every other bench measures) and
// once forced on, recording to the in-memory ring. The headline number is
// the relative overhead on mean scheduling-cycle latency — the acceptance
// bar is < 5%, since record sites are a relaxed atomic load when off and a
// short mutex-guarded append when on.
//
// A third leg re-runs churn + injected scheduler crashes with a JSONL
// export configured, producing the artifact the tetrisched_explain CLI (and
// the CI observability-smoke job) consumes.
//
// With TETRISCHED_BENCH_JSON set, per-seed records plus the aggregate
// overhead_pct land in BENCH_obs.json.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/exp_common.h"
#include "src/obs/provenance.h"
#include "src/sim/faults.h"

namespace tetrisched {
namespace {

struct Leg {
  double cycle_ms = 0.0;   // mean scheduling-cycle latency
  double wall_ms = 0.0;    // whole-run wall clock
  double total_slo = 0.0;  // percent, sanity that legs ran the same workload
  double records = 0.0;    // provenance records buffered (on-legs only)
};

std::unique_ptr<SchedulerPolicy> MakePolicy(const Cluster& cluster) {
  TetriSchedConfig config = TetriSchedConfig::Full(/*plan_ahead=*/96);
  config.quantum = 8;
  config.milp.time_limit_seconds = 0.15;
  config.milp.max_nodes = 1500;
  return std::make_unique<TetriScheduler>(cluster, config);
}

Leg RunLeg(const Cluster& cluster, int seed, SimConfig sim_config,
           bool with_crashes) {
  WorkloadParams params;
  params.kind = WorkloadKind::kGsMix;
  params.seed = 1000 + 17 * seed;
  params.num_jobs = 60;

  std::vector<Job> jobs = GenerateWorkload(cluster, params);
  RayonAdmission rayon(cluster.num_nodes());
  ApplyAdmission(cluster, jobs, &rayon);

  FaultModelParams faults;
  faults.seed = 42 + seed;
  faults.horizon = 6000;
  faults.mtbf = 600.0;
  faults.mttr = 60.0;
  faults.rack_burst_prob = 0.1;
  faults.straggler_prob = 0.2;
  faults.straggler_slowdown = 2.0;
  FaultSchedule schedule = GenerateFaultSchedule(cluster, faults);

  sim_config.node_failures = schedule.failures;
  sim_config.stragglers = schedule.stragglers;
  sim_config.rayon = &rayon;
  if (with_crashes) {
    sim_config.scheduler_crashes = {{/*at=*/200, CrashPhase::kSolve},
                                    {/*at=*/900, CrashPhase::kMidCommit}};
  }

  std::unique_ptr<SchedulerPolicy> policy = MakePolicy(cluster);
  Simulator sim(cluster, *policy, std::move(jobs), sim_config);
  auto t0 = std::chrono::steady_clock::now();
  SimMetrics metrics = sim.Run();

  Leg leg;
  leg.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  leg.cycle_ms = metrics.cycle_latency_ms.Mean();
  leg.total_slo = 100.0 * metrics.TotalSloAttainment();
  leg.records = static_cast<double>(ProvenanceRecorder::Global().size());
  return leg;
}

int Main() {
  Cluster cluster = MakeRc256();
  PrintHeader("Provenance overhead: flight recorder on vs off",
              "GS MIX + stochastic faults (MTBF 600 s), fig_churn cell",
              cluster);

  const int num_seeds = SeedsFromEnv(3);
  BenchJsonWriter json;

  double off_cycle_ms = 0.0;
  double on_cycle_ms = 0.0;
  for (int s = 0; s < num_seeds; ++s) {
    SimConfig off;
    off.provenance = SimConfig::ProvenanceMode::kOff;
    Leg off_leg = RunLeg(cluster, s, off, /*with_crashes=*/false);
    off_cycle_ms += off_leg.cycle_ms;

    SimConfig on;
    on.provenance = SimConfig::ProvenanceMode::kOn;
    Leg on_leg = RunLeg(cluster, s, on, /*with_crashes=*/false);
    on_cycle_ms += on_leg.cycle_ms;

    std::printf(
        "seed %d: cycle %s -> %s ms, slo %s -> %s %%, %d records\n", s,
        Fixed(off_leg.cycle_ms, 3).c_str(), Fixed(on_leg.cycle_ms, 3).c_str(),
        Fixed(off_leg.total_slo).c_str(), Fixed(on_leg.total_slo).c_str(),
        static_cast<int>(on_leg.records));
    json.Add("provenance_off/seed=" + std::to_string(s), off_leg.wall_ms,
             {{"cycle_ms", off_leg.cycle_ms}, {"total_slo", off_leg.total_slo}});
    json.Add("provenance_on/seed=" + std::to_string(s), on_leg.wall_ms,
             {{"cycle_ms", on_leg.cycle_ms},
              {"total_slo", on_leg.total_slo},
              {"records", on_leg.records}});
  }
  off_cycle_ms /= num_seeds;
  on_cycle_ms /= num_seeds;
  double overhead_pct =
      off_cycle_ms > 0 ? 100.0 * (on_cycle_ms - off_cycle_ms) / off_cycle_ms
                       : 0.0;

  // Churn + crash leg with a JSONL export: the artifact the explain CLI and
  // the CI smoke job consume. SLO misses under churn guarantee the
  // --slo-misses report has content.
  SimConfig exported;
  exported.provenance = SimConfig::ProvenanceMode::kOn;
  exported.provenance_jsonl_path = "provenance_churn.jsonl";
  Leg export_leg = RunLeg(cluster, 0, exported, /*with_crashes=*/true);
  std::printf(
      "\nexport leg (churn + 2 crashes): %d records -> "
      "provenance_churn.jsonl\n",
      static_cast<int>(export_leg.records));
  json.Add("provenance_export", export_leg.wall_ms,
           {{"records", export_leg.records}});

  std::printf("\nmean cycle latency: off %s ms, on %s ms -> overhead %s%%\n",
              Fixed(off_cycle_ms, 3).c_str(), Fixed(on_cycle_ms, 3).c_str(),
              Fixed(overhead_pct, 2).c_str());
  json.Add("provenance_overhead", on_cycle_ms,
           {{"off_cycle_ms", off_cycle_ms},
            {"on_cycle_ms", on_cycle_ms},
            {"overhead_pct", overhead_pct}});

  json.WriteIfRequested("BENCH_obs.json");
  return 0;
}

}  // namespace
}  // namespace tetrisched

int main() { return tetrisched::Main(); }
