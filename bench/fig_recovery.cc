// Recovery-latency sweep (robustness extension; not a paper figure).
//
// Measures PersistenceManager::Recover() wall time as a function of journal
// length: a synthetic but representative event mix (two-phase commits,
// launches, completions, Rayon agenda changes) is appended to an empty
// snapshot, then recovery replays it from scratch. Both the in-memory
// storage (pure replay cost) and the file-backed storage (replay + disk
// read) are swept, so the ms/1k-records slope separates decode/apply cost
// from I/O.
//
// With TETRISCHED_BENCH_JSON set, one record per (storage, journal length)
// cell is written to BENCH_recovery.json.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "src/persist/persist.h"

namespace tetrisched {
namespace {

// Appends `records` events shaped like a steady scheduling workload:
// every 8 records form two cycles of intent / launch / applied / complete
// plus a Rayon admit, over a rolling population of jobs.
void FillJournal(PersistenceManager& persist, int records) {
  JobId job = 0;
  SimTime now = 0;
  for (int i = 0; i < records; ++i) {
    DurableEvent event;
    event.time = now;
    switch (i % 8) {
      case 0: {
        event.kind = DurableEventKind::kCommitIntent;
        GangRecord gang{job, {{0, 2}, {1, 1}}, now, now + 40, 40};
        event.gangs = {gang};
        break;
      }
      case 1:
        event.kind = DurableEventKind::kGangLaunch;
        event.job = job;
        event.gang = GangRecord{job, {{0, 2}, {1, 1}}, now, now + 40, 40};
        break;
      case 2:
        event.kind = DurableEventKind::kCommitApplied;
        event.blob = std::string(128, 'w');  // warm-start-sized policy blob
        break;
      case 3:
        event.kind = DurableEventKind::kRayonAdmit;
        event.job = job + 1;
        event.k = 3;
        event.interval = {now, now + 60};
        break;
      case 4:
        event.kind = DurableEventKind::kSloUpdate;
        event.job = job + 1;
        event.slo_class = 1;
        event.interval = {now, now + 60};
        break;
      case 5:
        event.kind = DurableEventKind::kGangComplete;
        event.job = job;
        event.preferred = (i % 16) == 5;
        event.runtime = 38;
        break;
      case 6:
        event.kind = DurableEventKind::kGangKill;
        event.job = job + 2;
        event.retries = 1;
        event.eligible_at = now + 8;
        break;
      case 7:
        event.kind = DurableEventKind::kGangLaunch;
        event.job = job + 2;
        event.gang = GangRecord{job + 2, {{2, 1}}, now, now + 20, 20};
        ++job;
        now += 4;
        break;
    }
    persist.Append(event);
  }
}

double TimeRecover(PersistenceManager& persist, int reps, int* replayed) {
  double best_ms = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    RecoveryResult result = persist.Recover();
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    if (ms < best_ms) {
      best_ms = ms;
    }
    *replayed = result.replayed;
  }
  return best_ms;
}

void RunCell(const char* storage_name, int records, BenchJsonWriter& json) {
  std::unique_ptr<JournalStorage> storage;
  std::string dir;
  if (std::string(storage_name) == "file") {
    dir = (std::filesystem::temp_directory_path() /
           ("tetri_fig_recovery_" + std::to_string(::getpid())))
              .string();
    std::filesystem::create_directories(dir);
    storage = std::make_unique<FileJournalStorage>(dir);
  } else {
    storage = std::make_unique<MemoryJournalStorage>();
  }

  // Disable the cadence so the whole journal survives to recovery.
  PersistOptions options;
  options.snapshot_every = 0;
  PersistenceManager persist(std::move(storage), options);
  FillJournal(persist, records);
  size_t journal_bytes = persist.storage().ReadJournal().size();

  int replayed = 0;
  double ms = TimeRecover(persist, /*reps=*/5, &replayed);
  double per_1k = records > 0 ? ms * 1000.0 / records : 0.0;
  std::printf("%-6s %6d records  %8zu B  recover %8.3f ms  (%6.3f ms/1k)\n",
              storage_name, records, journal_bytes, ms, per_1k);
  json.Add("recovery_" + std::string(storage_name) + "_" +
               std::to_string(records),
           ms,
           {{"records", static_cast<double>(records)},
            {"journal_bytes", static_cast<double>(journal_bytes)},
            {"replayed", static_cast<double>(replayed)},
            {"ms_per_1k_records", per_1k}});

  if (!dir.empty()) {
    std::filesystem::remove_all(dir);
  }
}

}  // namespace
}  // namespace tetrisched

int main() {
  using namespace tetrisched;
  std::printf("recovery latency vs journal length (DESIGN.md §11)\n\n");
  BenchJsonWriter json;
  for (const char* storage : {"memory", "file"}) {
    for (int records : {64, 256, 1024, 4096, 16384}) {
      RunCell(storage, records, json);
    }
    std::printf("\n");
  }
  json.WriteIfRequested("BENCH_recovery.json");
  return 0;
}
