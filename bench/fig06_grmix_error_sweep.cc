// Reproduces paper Fig 6: Rayon/TetriSched vs Rayon/CapacityScheduler on the
// production-trace-derived GR MIX workload (52% SLO / 48% BE, unconstrained)
// across runtime estimate error, on the RC256-scaled cluster.
//
// Expected shape (paper): TetriSched outperforms at every point; it keeps
// accepted-SLO attainment high even at -50% (under-estimation), while
// Rayon/CS collapses there and suffers large best-effort latencies under
// over-estimation.

#include "bench/exp_common.h"

namespace tetrisched {
namespace {

int Main() {
  Cluster cluster = MakeRc256();
  PrintHeader("Fig 6: estimate-error sweep, TetriSched vs Rayon/CS", "GR MIX",
              cluster);

  ErrorSweepSpec spec;
  spec.params.kind = WorkloadKind::kGrMix;
  spec.params.num_jobs = 100;
  spec.errors = {-0.5, -0.2, 0.0, 0.2, 0.5, 1.0};
  spec.policies = {PolicyKind::kRayonCS, PolicyKind::kTetriSched};
  spec.panels = {Panel::kTotalSlo, Panel::kAcceptedSlo, Panel::kUnreservedSlo,
                 Panel::kBeLatency};
  spec.num_seeds = SeedsFromEnv(2);
  RunAndPrintErrorSweep(cluster, spec);
  return 0;
}

}  // namespace
}  // namespace tetrisched

int main() { return tetrisched::Main(); }
