// Discrete-event cluster simulator (substitute for the paper's 256/80-node
// physical YARN testbeds).
//
// The simulator owns ground truth: node occupancy, actual job runtimes
// (which depend on the true placement quality, not the scheduler's belief),
// arrivals, and completions. Policies only ever see estimates. Runtime
// mis-estimation therefore emerges exactly as in the paper: the scheduler
// plans with estimate-derived expected completions while the simulator
// completes jobs on their actual runtimes.
//
// Metrics collected match §6.3: accepted / total / unreserved SLO attainment,
// mean best-effort latency, plus cycle & solver latency distributions and
// cluster utilization for the scalability analysis.

#ifndef TETRISCHED_SIM_SIMULATOR_H_
#define TETRISCHED_SIM_SIMULATOR_H_

#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/stats.h"
#include "src/core/job.h"
#include "src/core/policy.h"
#include "src/rayon/rayon.h"
#include "src/sim/trace.h"

namespace tetrisched {

// Fault injection: `node` dies at `at` (any task running on it is killed and
// its whole gang requeued) and, optionally, rejoins at `recover_at`.
struct NodeFailure {
  SimTime at = 0;
  NodeId node = -1;
  SimTime recover_at = kTimeNever;
};

struct SimConfig {
  SimDuration cycle_period = 4;  // paper §6.3: TetriSched cycle = 4 s
  SimTime max_time = 4000000;    // safety stop
  std::vector<NodeFailure> node_failures;
  // Run a RuntimeEstimator in the loop: completions train it, and pending
  // jobs from sufficiently-observed clusters have their (error-injected)
  // estimates replaced by learned ones (paper Fig 2's Perforator role).
  bool learn_estimates = false;
  // Optional event recorder (not owned; must outlive Run()).
  SimTrace* trace = nullptr;
};

// True placement quality: does this partition-count assignment satisfy the
// job's preference (GPU nodes only / single rack / the job's own data
// partitions / anything)?
bool IsPreferredPlacement(const Cluster& cluster, const Job& job,
                          const std::map<PartitionId, int>& counts);

// Runs every reservation-seeking job through Rayon admission (in submit
// order, with conservative fallback-runtime estimates), setting slo_class
// and reservation on each job. Returns the number accepted.
int ApplyAdmission(const Cluster& cluster, std::vector<Job>& jobs);

struct JobOutcome {
  JobId id = -1;
  SloClass slo_class = SloClass::kBestEffort;
  JobType type = JobType::kUnconstrained;
  SimTime submit = 0;
  SimTime deadline = kTimeNever;
  bool started = false;
  bool completed = false;
  bool dropped = false;
  SimTime start_time = -1;
  SimTime completion = -1;
  bool preferred = false;  // actual placement quality at completion
  // Final placement (partition -> node count); empty if never started.
  std::map<PartitionId, int> placement;
  int preemptions = 0;

  bool MetDeadline() const {
    return completed && completion <= deadline;
  }
  bool is_slo() const { return slo_class != SloClass::kBestEffort; }
};

struct SimMetrics {
  std::vector<JobOutcome> outcomes;
  SampleStats cycle_latency_ms;
  SampleStats solver_latency_ms;
  SampleStats milp_vars;
  double utilization = 0.0;  // busy node-seconds / (nodes * makespan)
  SimTime makespan = 0;
  int preemptions = 0;
  int failure_kills = 0;  // jobs killed by node failures (then requeued)

  // §6.3 success metrics. Fractions in [0,1]; 0 when the class is empty.
  double AcceptedSloAttainment() const;
  double TotalSloAttainment() const;
  double UnreservedSloAttainment() const;
  double MeanBestEffortLatency() const;

  int CountJobs(SloClass slo_class) const;
  std::string Summary() const;
};

class Simulator {
 public:
  // `jobs` must already be admission-processed (slo_class set) and sorted by
  // submit time. The policy and cluster must outlive Run().
  Simulator(const Cluster& cluster, SchedulerPolicy& policy,
            std::vector<Job> jobs, SimConfig config = {});

  SimMetrics Run();

 private:
  const Cluster& cluster_;
  SchedulerPolicy& policy_;
  std::vector<Job> jobs_;
  SimConfig config_;
};

}  // namespace tetrisched

#endif  // TETRISCHED_SIM_SIMULATOR_H_
