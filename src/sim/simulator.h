// Discrete-event cluster simulator (substitute for the paper's 256/80-node
// physical YARN testbeds).
//
// The simulator owns ground truth: node occupancy, actual job runtimes
// (which depend on the true placement quality, not the scheduler's belief),
// arrivals, and completions. Policies only ever see estimates. Runtime
// mis-estimation therefore emerges exactly as in the paper: the scheduler
// plans with estimate-derived expected completions while the simulator
// completes jobs on their actual runtimes.
//
// Metrics collected match §6.3: accepted / total / unreserved SLO attainment,
// mean best-effort latency, plus cycle & solver latency distributions and
// cluster utilization for the scalability analysis.

#ifndef TETRISCHED_SIM_SIMULATOR_H_
#define TETRISCHED_SIM_SIMULATOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/stats.h"
#include "src/core/job.h"
#include "src/core/policy.h"
#include "src/persist/persist.h"
#include "src/rayon/rayon.h"
#include "src/sim/comms.h"
#include "src/sim/faults.h"
#include "src/sim/trace.h"

namespace tetrisched {

struct SimConfig {
  SimDuration cycle_period = 4;  // paper §6.3: TetriSched cycle = 4 s
  SimTime max_time = 4000000;    // safety stop
  // Fault injection (faults.h): scripted lists or the output of
  // GenerateFaultSchedule. node_failures is validated/normalized up front
  // (bad entries are dropped with one warning each).
  std::vector<NodeFailure> node_failures;
  std::vector<StragglerEvent> stragglers;
  // Scheduler-process crashes (faults.h): each fires at the first cycle at
  // or after its `at`, at the given CrashPhase, and is followed by recovery
  // from the persistence subsystem (snapshot load + journal replay +
  // reconciliation against surviving cluster state). At most one crash
  // fires per cycle.
  std::vector<SchedulerCrashEvent> scheduler_crashes;
  // Durability subsystem (persist.h). When set, the run journals every
  // durable scheduler event (two-phase commits, Rayon agenda changes,
  // kills/completions/drops) through it and recovers from it after an
  // injected crash. Not owned. When crashes are configured without one, an
  // in-memory journal is used automatically.
  PersistenceManager* persist = nullptr;
  // Builds the replacement policy after a crash (a real restart constructs
  // a fresh scheduler process). The recovered durable state is imported
  // into the new policy. When unset, the original policy object is reused
  // (its durable state still reset from the journal).
  std::function<std::unique_ptr<SchedulerPolicy>()> policy_factory;
  // Retry policy for failure-killed gangs: a killed gang re-enters the
  // pending queue after a capped exponential backoff
  // (min(retry_backoff_cap, retry_backoff << (kills-1)); 0 = immediate)
  // and is dropped outright after max_retries kills.
  int max_retries = 5;
  SimDuration retry_backoff = 4;
  SimDuration retry_backoff_cap = 64;
  // Lossy control plane (comms.h, DESIGN.md §15). When enabled and not in
  // oracle mode, the scheduler stops seeing ground truth: node failures are
  // learned through heartbeat silence (timeout / phi-accrual detector),
  // placement and kill commands can be lost, and every cycle plans against
  // the believed ClusterView. Epoch fencing keeps false suspicions safe:
  // unreachable copies are orphaned and later adopted back or fenced. With
  // the default (disabled / oracle) params the simulator takes its legacy
  // instant-detection path and schedules are byte-identical to pre-§15
  // builds. Usually copied from FaultSchedule::comms.
  CommsParams comms;
  // Re-admission hook: when set (the agenda used by ApplyAdmission), an
  // accepted-SLO gang whose reservation no longer fits its post-kill
  // restart window is re-admitted against the remaining window
  // (shrink) or downgraded to unreserved (drop). Not owned.
  RayonAdmission* rayon = nullptr;
  // Run a RuntimeEstimator in the loop: completions train it, and pending
  // jobs from sufficiently-observed clusters have their (error-injected)
  // estimates replaced by learned ones (paper Fig 2's Perforator role).
  bool learn_estimates = false;
  // Optional event recorder (not owned; must outlive Run()).
  SimTrace* trace = nullptr;
  // Observability exports (DESIGN.md §10). When any path is non-empty,
  // Run() turns on clock-reading instrumentation (SetObservabilityEnabled)
  // for its duration and writes the corresponding file on exit:
  //   * metrics_json_path — registry snapshot as JSON (per-phase histograms
  //     with p50/p95/p99/max),
  //   * metrics_prom_path — the same registry in Prometheus text format,
  //   * trace_json_path   — Chrome trace-event JSON of the span tree
  //     (open in chrome://tracing or https://ui.perfetto.dev).
  // Empty fields default from the TETRISCHED_METRICS_JSON /
  // TETRISCHED_METRICS_PROM / TETRISCHED_TRACE_JSON environment variables
  // in the Simulator constructor, so every bench and example supports
  // exports without per-binary wiring. Exports never change scheduling
  // decisions: instrumentation only reads clocks and bumps atomics.
  std::string metrics_json_path;
  std::string metrics_prom_path;
  std::string trace_json_path;
  // Decision provenance (DESIGN.md §14). kAuto turns the flight recorder on
  // exactly when provenance_jsonl_path is non-empty (the path defaults from
  // TETRISCHED_PROVENANCE_JSONL, like the exports above); kOn/kOff force it
  // regardless of the path — benches use kOff to measure a provenance-free
  // baseline even when the environment requests an export. Recording never
  // changes scheduling decisions; with the recorder off, runs are
  // byte-identical to a build without it.
  enum class ProvenanceMode { kAuto, kOn, kOff };
  ProvenanceMode provenance = ProvenanceMode::kAuto;
  std::string provenance_jsonl_path;
  // Ring capacity override; 0 = TETRISCHED_PROVENANCE_RING (default 65536).
  size_t provenance_ring = 0;
};

// True placement quality: does this partition-count assignment satisfy the
// job's preference (GPU nodes only / single rack / the job's own data
// partitions / anything)?
bool IsPreferredPlacement(const Cluster& cluster, const Job& job,
                          const std::map<PartitionId, int>& counts);

// Runs every reservation-seeking job through Rayon admission (in submit
// order, with conservative fallback-runtime estimates), setting slo_class
// and reservation on each job. Returns the number accepted. When `rayon`
// is provided the admission runs against it (so the same agenda can later
// serve SimConfig::rayon re-admission); otherwise a throwaway agenda is
// used.
int ApplyAdmission(const Cluster& cluster, std::vector<Job>& jobs,
                   RayonAdmission* rayon = nullptr);

struct JobOutcome {
  JobId id = -1;
  SloClass slo_class = SloClass::kBestEffort;
  JobType type = JobType::kUnconstrained;
  SimTime submit = 0;
  SimTime deadline = kTimeNever;
  bool started = false;
  bool completed = false;
  bool dropped = false;
  SimTime start_time = -1;
  SimTime completion = -1;
  bool preferred = false;  // actual placement quality at completion
  // Final placement (partition -> node count); empty if never started.
  std::map<PartitionId, int> placement;
  int preemptions = 0;
  // Churn bookkeeping: failure-kill restarts, total time spent between a
  // kill and the subsequent restart, reservation re-admissions after a
  // kill, and whether the reservation was ultimately dropped (downgrade to
  // unreserved). slo_class above stays the admission-time class.
  int retries = 0;
  SimDuration recovery_latency = 0;
  int readmissions = 0;
  bool reservation_dropped = false;

  bool MetDeadline() const {
    return completed && completion <= deadline;
  }
  bool is_slo() const { return slo_class != SloClass::kBestEffort; }
};

struct SimMetrics {
  std::vector<JobOutcome> outcomes;
  SampleStats cycle_latency_ms;
  SampleStats solver_latency_ms;
  SampleStats milp_vars;
  // Independent components the cycle MILP split into (1 = monolithic);
  // sampled only on cycles that built a model, like milp_vars.
  SampleStats milp_components;
  double utilization = 0.0;  // busy node-seconds / (nodes * makespan)
  SimTime makespan = 0;
  int preemptions = 0;
  int failure_kills = 0;  // jobs killed by node failures (then requeued)

  // Graceful-degradation and churn accounting.
  int fallback_cycles = 0;        // cycles planned by the greedy fallback
  int validator_violations = 0;   // plans/placements rejected by validation
  int retries_exhausted = 0;      // jobs dropped after max_retries kills
  int readmissions = 0;           // reservations successfully re-placed
  int reservations_dropped = 0;   // reservations invalidated with no re-fit
  int straggler_slowed_starts = 0; // gangs started on >= 1 fail-slow node
  SampleStats recovery_latency;   // kill -> restart gap per retry (s)

  // Cycle budget / adaptive plan-ahead accounting (DESIGN.md §13).
  int budget_blown_cycles = 0;      // cycles exceeding their wall-clock budget
  int plan_ahead_adaptations = 0;   // AIMD shrink/restore steps taken
  int certifier_rejects = 0;        // incumbents refused by the plan certifier

  // Lossy control plane / failure detector accounting (DESIGN.md §15).
  int suspicions = 0;           // kAlive -> kSuspect transitions
  int false_suspicions = 0;     // suspected nodes that were actually up
  int dead_declared = 0;        // kSuspect -> kDead transitions
  int fenced_tasks = 0;         // stale orphan tasks killed via epoch fencing
  int orphans_adopted = 0;      // orphaned copies adopted back intact
  int stale_placement_bounces = 0;  // commits refused by ground truth
  int64_t heartbeats_dropped = 0;   // lost to message faults or partitions
  int64_t commands_dropped = 0;     // placement/kill commands lost
  int64_t stale_command_rejects = 0;  // duplicate/stale commands refused
  // Nodes occupied by no copy, or claimed by more than one copy, at any
  // cycle boundary. The §15 invariant: always zero.
  int belief_invariant_violations = 0;
  SampleStats detection_latency;  // true failure -> suspicion gap (s)

  // Scheduler-crash/persistence accounting (DESIGN.md §11).
  int scheduler_crashes = 0;     // injected crashes that fired
  int recoveries = 0;            // successful recovery passes
  int journal_replayed = 0;      // journal records replayed across recoveries
  int journal_dropped = 0;       // torn/corrupt tail records truncated away
  int recovery_adoptions = 0;    // running gangs adopted from a pending intent
  int recovery_mismatches = 0;   // RM-view vs cluster ground-truth conflicts
  SampleStats recovery_ms;       // wall-clock per recovery pass (ms)

  // §6.3 success metrics. Fractions in [0,1]; 0 when the class is empty.
  double AcceptedSloAttainment() const;
  double TotalSloAttainment() const;
  double UnreservedSloAttainment() const;
  double MeanBestEffortLatency() const;

  int CountJobs(SloClass slo_class) const;
  std::string Summary() const;
};

class Simulator {
 public:
  // `jobs` must already be admission-processed (slo_class set) and sorted by
  // submit time. The policy and cluster must outlive Run().
  Simulator(const Cluster& cluster, SchedulerPolicy& policy,
            std::vector<Job> jobs, SimConfig config = {});

  SimMetrics Run();

 private:
  const Cluster& cluster_;
  SchedulerPolicy& policy_;
  std::vector<Job> jobs_;
  SimConfig config_;
};

}  // namespace tetrisched

#endif  // TETRISCHED_SIM_SIMULATOR_H_
