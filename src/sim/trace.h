// Structured simulation trace: every scheduling-relevant event (submission,
// start, completion, drop, preemption, node failure/recovery, cycle) with
// timestamps, exportable as CSV for offline analysis and renderable as an
// ASCII cluster-utilization timeline. Attach one to SimConfig::trace to
// record a run.

#ifndef TETRISCHED_SIM_TRACE_H_
#define TETRISCHED_SIM_TRACE_H_

#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/core/job.h"

namespace tetrisched {

enum class TraceEventKind {
  kSubmit,
  kStart,
  kComplete,
  kDrop,
  kPreempt,
  kFailureKill,  // job killed because a node under it died
  kNodeFail,
  kNodeRecover,
  kNodeSlow,         // fail-slow (straggler) episode begins; value = slowdown
  kNodeSlowRecover,  // fail-slow episode ends
  // Cycle planned below the MILP on the degradation ladder; count = the
  // rung that produced the plan (1 = greedy first-fit, 2 = skip).
  kFallback,
  kPlanReject,       // placement rejected by ledger validation, not committed
  kCycle,
  // Scheduler-process crash injected at a CrashPhase (count = phase enum);
  // kRecover marks the rebuilt scheduler resuming (count = journal records
  // replayed, value = recovery latency in ms).
  kSchedulerCrash,
  kRecover,
};

const char* ToString(TraceEventKind kind);

struct TraceEvent {
  SimTime time = 0;
  TraceEventKind kind = TraceEventKind::kCycle;
  JobId job = -1;     // job events; -1 otherwise
  int32_t node = -1;  // node failure/recovery events; -1 otherwise
  // Gang size on start, pending depth on cycle, ladder rung on fallback.
  int32_t count = 0;
  double value = 0.0; // cycle latency (ms) on kCycle, 0 otherwise
};

class SimTrace {
 public:
  void Record(TraceEvent event) { events_.push_back(event); }

  const std::vector<TraceEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  int CountKind(TraceEventKind kind) const;

  // "time,kind,job,node,count,value" rows with a header line.
  std::string ToCsv() const;

  // ASCII utilization timeline: one row of '0'..'9'/'#' glyphs, each bucket
  // showing busy-node fraction of `cluster_nodes` over `buckets` equal time
  // slices (derived from start/complete/preempt/kill events).
  std::string RenderUtilizationTimeline(int cluster_nodes,
                                        int buckets = 60) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace tetrisched

#endif  // TETRISCHED_SIM_TRACE_H_
