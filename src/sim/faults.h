// Fault model: scripted and stochastic node churn plus fail-slow injection.
//
// The simulator consumes two flat, time-sorted event lists — fail-stop
// `NodeFailure`s and fail-slow `StragglerEvent`s. Hand-scripted scenarios
// build these lists directly; the seeded stochastic model here *compiles
// down* to the same lists (per-node exponential MTBF/MTTR churn,
// rack-correlated failure bursts, straggler injection), so both kinds of
// fault share one code path through the simulator's ledger machinery and
// are exactly reproducible from a seed.

#ifndef TETRISCHED_SIM_FAULTS_H_
#define TETRISCHED_SIM_FAULTS_H_

#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/time.h"
#include "src/sim/comms.h"

namespace tetrisched {

// Fail-stop: `node` dies at `at` (any task running on it is killed and its
// whole gang requeued) and, optionally, rejoins at `recover_at`.
struct NodeFailure {
  SimTime at = 0;
  NodeId node = -1;
  SimTime recover_at = kTimeNever;

  bool operator==(const NodeFailure& other) const = default;
};

// Fail-slow: `node` stays in service but multiplies the true runtime of any
// gang *started* on it while the event is active. Gangs already running
// when a straggler begins are unaffected (the slowdown is sampled at
// placement time).
struct StragglerEvent {
  SimTime at = 0;
  NodeId node = -1;
  SimTime recover_at = kTimeNever;
  double slowdown = 1.0;

  bool operator==(const StragglerEvent& other) const = default;
};

// Phase of one scheduling cycle at which an injected scheduler crash fires
// (DESIGN.md §11). The first seven interrupt the cycle inside or around the
// policy's OnCycle (via the span crash hook for the instrumented phases);
// the last three land inside the simulator's two-phase commit sequence,
// straddling the journal's intent/applied records.
enum class CrashPhase : uint8_t {
  kBeforeCycle = 0,  // cycle about to start; nothing journaled yet
  kAvailability,     // scheduler.availability span
  kStrlGen,          // scheduler.strl_gen span
  kCompile,          // scheduler.compile span
  kSolve,            // scheduler.solve span
  kValidate,         // scheduler.validate span
  kExtract,          // scheduler.commit span (allocation extraction)
  kCommitIntent,     // kCommitIntent journaled, no mutation applied yet
  kMidCommit,        // first placement applied, its kGangLaunch not journaled
  kAfterCommit,      // kCommitApplied journaled; crash after a full commit
};
inline constexpr int kNumCrashPhases = 10;

const char* ToString(CrashPhase phase);

// Span name whose entry fires the crash for in-OnCycle phases; nullptr for
// the simulator-side phases (kBeforeCycle/kCommitIntent/kMidCommit/
// kAfterCommit), which crash at explicit points in the commit sequence.
const char* CrashPhaseSpanName(CrashPhase phase);

// Scheduler-process crash: fires at the first scheduling cycle whose time is
// >= `at`, at the given phase. The simulator then discards the scheduler
// (policy, Rayon agenda, retry/backoff, estimator) and rebuilds it from the
// persistence subsystem; cluster ground truth survives (work-preserving
// restart).
struct SchedulerCrashEvent {
  SimTime at = 0;
  CrashPhase phase = CrashPhase::kBeforeCycle;

  bool operator==(const SchedulerCrashEvent& other) const = default;
};

// Thrown by an armed crash point; caught only by the simulator's recovery
// harness. Carrying no state by design: a real crash preserves nothing.
struct SchedulerCrashSignal {};

// Validates and normalizes a failure list before the run starts: drops
// entries with `recover_at <= at`, out-of-range node ids, and entries
// overlapping an earlier failure of the same node. Returns the surviving
// entries sorted by (at, node). When `log_dropped`, one warning is logged
// per dropped entry; `num_dropped` (optional) receives the drop count.
std::vector<NodeFailure> NormalizeNodeFailures(
    const Cluster& cluster, std::vector<NodeFailure> failures,
    bool log_dropped = true, int* num_dropped = nullptr);

// Knobs of the seeded stochastic fault model. All churn is disabled when
// `mtbf <= 0`.
struct FaultModelParams {
  uint64_t seed = 1;
  SimTime horizon = 4000;  // events generated in [0, horizon)

  // Per-node exponential churn: failures arrive with mean inter-failure
  // gap `mtbf` seconds; each outage lasts Exp(mttr) seconds (min 1 s).
  double mtbf = 0.0;
  double mttr = 60.0;

  // With this probability a fail-stop failure becomes a rack-correlated
  // burst: every other node of the rack fails within `rack_burst_span`
  // seconds for the same outage duration (shared switch / PDU failure).
  double rack_burst_prob = 0.0;
  SimDuration rack_burst_span = 4;

  // With this probability a generated fault is fail-slow instead of
  // fail-stop: the node keeps running but gangs started on it run
  // `straggler_slowdown` times longer.
  double straggler_prob = 0.0;
  double straggler_slowdown = 2.0;

  // Scheduler-process crashes arrive with mean gap `scheduler_crash_mtbf`
  // seconds (0 disables); each crash's cycle phase is drawn uniformly over
  // all CrashPhases.
  double scheduler_crash_mtbf = 0.0;

  // Control-plane message faults and failure detector (comms.h,
  // DESIGN.md §15). Compiled verbatim into FaultSchedule::comms; the model
  // is active when any message fault, a suspect timeout, or partitions are
  // configured. With everything at its zero default the control plane is an
  // oracle and the simulator's legacy instant-detection path is used.
  double msg_drop_prob = 0.0;        // per-message loss probability
  double msg_dup_prob = 0.0;         // per-message duplication probability
  SimDuration msg_delay = 0;         // fixed propagation delay (s)
  SimDuration msg_delay_jitter = 0;  // extra uniform [0, jitter] per message
  double msg_reorder_prob = 0.0;     // late-outlier (reordering) probability
  SimDuration heartbeat_period = 1;  // agent heartbeat send period (s)
  SimDuration suspect_timeout = 0;   // silence before kSuspect (0 = oracle)
  SimDuration dead_timeout = 0;      // silence before kDead (0 = 4x suspect)
  double phi_threshold = 0.0;        // > 0: phi-accrual detector multiplier

  // Control-plane partitions arrive with mean gap `partition_mtbf` seconds
  // (0 disables); each lasts Exp(partition_mttr) seconds (min 1 s) and with
  // `rack_partition_prob` isolates a whole rack instead of one node.
  double partition_mtbf = 0.0;
  double partition_mttr = 30.0;
  double rack_partition_prob = 0.0;

  // Safety cap on events per node (runaway-parameter guard).
  int max_failures_per_node = 10000;
};

struct FaultSchedule {
  std::vector<NodeFailure> failures;      // normalized, sorted by (at, node)
  std::vector<StragglerEvent> stragglers; // sorted by (at, node)
  std::vector<SchedulerCrashEvent> scheduler_crashes;  // sorted by at
  // Control-plane model (message faults, detector, generated partitions);
  // enabled iff the params configure any of them. Copy into
  // SimConfig::comms.
  CommsParams comms;
};

// Deterministically expands the stochastic model into concrete event lists.
// Same cluster + params => byte-identical schedule (each node draws from
// its own forked substream, so the lists are stable under reordering of
// unrelated code).
FaultSchedule GenerateFaultSchedule(const Cluster& cluster,
                                    const FaultModelParams& params);

}  // namespace tetrisched

#endif  // TETRISCHED_SIM_FAULTS_H_
