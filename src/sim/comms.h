// Control-plane communication model between the scheduler and per-node
// agents (DESIGN.md §15).
//
// Every robustness layer before this one assumed the scheduler learns of
// node failures instantly and infallibly — an oracle no real deployment
// has. This module closes that gap: heartbeats from node agents flow to the
// scheduler through a seeded lossy channel (drop, delay, duplication,
// reordering, node- and rack-scoped partitions), a timeout / phi-accrual
// failure detector turns their arrival stream into a per-node
// kAlive/kSuspect/kDead *belief*, and the scheduler's cycle input becomes
// this believed ClusterView rather than ground truth. Correctness under
// false suspicion is enforced with monotonically increasing per-node fence
// epochs: the scheduler bumps a node's epoch when it gives up on it
// (journaled as kEpochBump so crash recovery never resurrects a fenced
// placement), and a node whose agent epoch lags the fence epoch has its
// stale tasks killed at reconciliation when it becomes reachable again.
//
// Determinism: every per-message decision (drop, delay jitter, duplicate,
// command loss) is a counter-based hash of (seed, node, stream, sequence),
// never a shared-stream draw, so two same-seed runs make byte-identical
// channel decisions regardless of evaluation order, and enabling one fault
// class never perturbs another.
//
// Oracle mode (no message faults, suspect_timeout == 0, no partitions) is
// the pre-§15 contract: belief equals ground truth at every instant. The
// simulator short-circuits to its legacy event path in that case, so
// oracle-mode schedules are byte-identical to a build without this module.

#ifndef TETRISCHED_SIM_COMMS_H_
#define TETRISCHED_SIM_COMMS_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/logging.h"
#include "src/common/time.h"

namespace tetrisched {

// Scheduler-side belief about one node, maintained by the failure detector.
enum class NodeBeliefState : uint8_t {
  kAlive = 0,   // heartbeats fresh
  kSuspect,     // heartbeats stale past the suspect threshold
  kDead,        // stale past the dead threshold (capacity written off)
};

const char* ToString(NodeBeliefState state);

// A control-plane partition: while active, no message crosses between the
// scheduler and the scoped nodes in either direction (heartbeats out,
// placement/kill commands in). Scope is one node (`node >= 0`) or one whole
// rack (`rack >= 0`); exactly one of the two must be set.
struct CommsPartitionEvent {
  SimTime at = 0;
  SimTime recover_at = kTimeNever;
  NodeId node = -1;
  RackId rack = -1;

  bool operator==(const CommsPartitionEvent& other) const = default;
};

// Per-message fault knobs of the channel. All probabilities are i.i.d. per
// message and drawn from counter-based hashes (see file comment).
struct MessageFaultParams {
  double drop_prob = 0.0;        // message lost outright
  double dup_prob = 0.0;         // message delivered twice (idempotence test)
  SimDuration delay = 0;         // fixed propagation delay, seconds
  SimDuration delay_jitter = 0;  // extra uniform [0, jitter] per message
  // With this probability a heartbeat takes one additional jitter draw of
  // delay — a late outlier that arrives out of order behind its successors.
  double reorder_prob = 0.0;
};

// Failure-detector knobs. suspect_timeout == 0 selects the oracle detector
// (belief == ground truth, no heartbeat machinery).
struct DetectorParams {
  SimDuration heartbeat_period = 1;  // agent send period, seconds
  SimDuration suspect_timeout = 0;   // silence before kSuspect; 0 = oracle
  SimDuration dead_timeout = 0;      // silence before kDead; 0 = 4x suspect
  // > 0 enables phi-accrual instead of the fixed timeout: a node is
  // suspected when the current silence exceeds `phi_threshold` times its
  // smoothed heartbeat inter-arrival gap (floored at suspect_timeout).
  double phi_threshold = 0.0;

  SimDuration effective_dead_timeout() const {
    return dead_timeout > 0 ? dead_timeout : 4 * suspect_timeout;
  }
};

// Top-level control-plane configuration carried by SimConfig::comms and
// derived from FaultModelParams by GenerateFaultSchedule.
struct CommsParams {
  bool enabled = false;
  uint64_t seed = 1;
  MessageFaultParams message;
  DetectorParams detector;
  std::vector<CommsPartitionEvent> partitions;

  // True when the model cannot deviate from ground truth: the simulator
  // keeps its legacy instant-detection path and schedules stay
  // byte-identical to pre-§15 behavior.
  bool oracle() const {
    return !enabled ||
           (message.drop_prob <= 0.0 && message.dup_prob <= 0.0 &&
            message.delay <= 0 && message.delay_jitter <= 0 &&
            message.reorder_prob <= 0.0 && detector.suspect_timeout <= 0 &&
            partitions.empty());
  }
};

// The scheduler's believed cluster state — what MILP compilation, the
// greedy ladder, and ValidatePlan actually plan against when the control
// plane is lossy. One entry per node.
struct NodeView {
  NodeBeliefState state = NodeBeliefState::kAlive;
  SimTime last_heard = 0;     // send time of the freshest delivered heartbeat
  uint64_t fence_epoch = 0;   // scheduler-side epoch (durable via the WAL)
  uint64_t seen_boot = 0;     // latest agent boot incarnation heard
};

struct ClusterView {
  std::vector<NodeView> nodes;

  int BelievedDown() const {
    int down = 0;
    for (const NodeView& node : nodes) {
      if (node.state != NodeBeliefState::kAlive) {
        ++down;
      }
    }
    return down;
  }
};

// Channel + detector + epoch state machine. The simulator owns one per run
// and calls it from three sides:
//   * ground truth: NodeDown / NodeUp as failures and recoveries happen
//     (drives which heartbeats exist at all, and agent boot counts),
//   * scheduler: Evaluate once per cycle to advance beliefs, then acts on
//     the returned transitions (recalls, fences, reconciliations),
//   * commit path: DeliverCommand per placement/kill command attempt.
// All RM-side state a crash must not lose (the fence-epoch table) is
// exported/restored explicitly; everything else is either ground truth
// (agent epochs, boot counts) or soft state the detector re-derives.
class ControlPlane {
 public:
  ControlPlane(const Cluster& cluster, const CommsParams& params);

  // Enabled and capable of diverging from ground truth. When false the
  // simulator takes its legacy oracle path and never calls anything below.
  bool active() const { return active_; }
  const CommsParams& params() const { return params_; }

  // --- ground-truth (physical) transitions -------------------------------
  void NodeDown(NodeId node, SimTime now);
  void NodeUp(NodeId node, SimTime now);
  bool node_up(NodeId node) const { return up_[node]; }
  uint64_t boot_count(NodeId node) const { return boot_[node]; }

  // --- detector ----------------------------------------------------------
  // Belief transitions produced by one evaluation at `now` (cycle start).
  struct Verdict {
    std::vector<NodeId> newly_suspect;  // kAlive -> kSuspect this evaluation
    std::vector<NodeId> newly_dead;     // kSuspect -> kDead
    std::vector<NodeId> recovered;      // kSuspect/kDead -> kAlive
    // Heartbeat carried a newer boot count: the node silently rebooted
    // (outage shorter than the suspect timeout); any task the scheduler
    // believes it runs is gone.
    std::vector<NodeId> rebooted;
    // Reachable nodes whose agent epoch lags the fence epoch: stale
    // placements on them must be fenced now (reconciliation).
    std::vector<NodeId> reconcilable;
  };
  // Advances heartbeat delivery to `now`, applies belief transitions, and
  // reports them. `cycle` feeds the rate-limited per-node WARN logs.
  Verdict Evaluate(SimTime now, int64_t cycle);

  const ClusterView& view() const { return view_; }
  NodeBeliefState belief(NodeId node) const {
    return view_.nodes[node].state;
  }
  bool BelievedDown(NodeId node) const {
    return view_.nodes[node].state != NodeBeliefState::kAlive;
  }
  // Per-node bitmap of believed-down nodes (the commit path's avoid set).
  const std::vector<char>& believed_down_mask() const { return down_mask_; }

  // --- fencing / epochs --------------------------------------------------
  // Bumps the scheduler-side fence epoch of `node` (call after journaling
  // the matching kEpochBump record) and returns the new epoch.
  uint64_t FenceNode(NodeId node);
  uint64_t fence_epoch(NodeId node) const {
    return view_.nodes[node].fence_epoch;
  }
  uint64_t agent_epoch(NodeId node) const { return agent_epoch_[node]; }
  // Node agent accepts the current fence epoch (a delivered placement
  // command, or the kill side of a reconciliation).
  void AgentAdoptEpoch(NodeId node);
  // Crash recovery: exports / restores the durable fence-epoch table.
  std::map<NodeId, uint64_t> ExportFenceEpochs() const;
  void RestoreFenceEpochs(const std::map<NodeId, uint64_t>& epochs);

  // --- command channel ---------------------------------------------------
  // One placement/kill command attempt to `node` at `now`. False when the
  // link is partitioned, the node is down, or the channel dropped the
  // message; the caller retries on a later cycle. Counts duplicate
  // deliveries (idempotently rejected by the agent) as stale rejects.
  bool DeliverCommand(NodeId node, SimTime now);
  // A command whose fence epoch no longer matches would be rejected by the
  // agent; exposed for the commit path's dup/stale accounting.
  void CountStaleReject() { ++counters_.stale_command_rejects; }

  bool LinkUp(NodeId node, SimTime now) const;

  // --- accounting --------------------------------------------------------
  struct Counters {
    int64_t heartbeats_sent = 0;
    int64_t heartbeats_dropped = 0;   // lost to drop_prob or a partition
    int64_t heartbeats_duplicated = 0;
    int64_t heartbeats_reordered = 0; // arrived behind a later-sent one
    int64_t commands_dropped = 0;
    int64_t stale_command_rejects = 0;
    int64_t suspicions = 0;
    int64_t false_suspicions = 0;     // node was actually up when suspected
    int64_t dead_declared = 0;
  };
  const Counters& counters() const { return counters_; }
  // Detection latency (failure -> suspicion) samples, seconds.
  const std::vector<double>& detection_latencies() const {
    return detection_latencies_;
  }

 private:
  struct PendingHeartbeat {
    SimTime arrive = 0;
    SimTime sent = 0;
    uint64_t boot = 0;
  };

  // Deterministic per-message draws (counter-based, order-independent).
  uint64_t Mix(NodeId node, uint64_t stream, uint64_t seq) const;
  double UnitDraw(NodeId node, uint64_t stream, uint64_t seq) const;

  // Advances node's heartbeat stream: evaluates sends up to `now`, queues
  // in-flight arrivals, folds arrivals <= now into last_heard/seen_boot.
  void PumpHeartbeats(NodeId node, SimTime now);

  const Cluster& cluster_;
  CommsParams params_;
  bool active_ = false;

  ClusterView view_;
  std::vector<char> down_mask_;       // believed-down bitmap
  std::vector<char> up_;              // ground truth: node in service
  std::vector<uint64_t> boot_;        // ground truth: agent incarnation
  std::vector<uint64_t> agent_epoch_; // ground truth: agent fence epoch
  std::vector<int64_t> next_seq_;     // next heartbeat ordinal to evaluate
  std::vector<SimTime> down_since_;   // ground truth failure time (or -1)
  std::vector<SimTime> last_arrival_; // freshest heartbeat arrival time
  std::vector<double> ema_gap_;       // smoothed inter-arrival gap (phi)
  std::vector<std::vector<PendingHeartbeat>> in_flight_;

  Counters counters_;
  std::vector<double> detection_latencies_;
  std::vector<int64_t> cmd_seq_;     // per-node command ordinal (draw counter)
  std::vector<char> reboot_flag_;    // boot bump folded since last Evaluate
  LogRateLimiter warn_limit_{16};    // one belief WARN per node per 16 cycles
};

}  // namespace tetrisched

#endif  // TETRISCHED_SIM_COMMS_H_
