#include "src/sim/trace.h"

#include <algorithm>
#include <sstream>

namespace tetrisched {

const char* ToString(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kSubmit:
      return "submit";
    case TraceEventKind::kStart:
      return "start";
    case TraceEventKind::kComplete:
      return "complete";
    case TraceEventKind::kDrop:
      return "drop";
    case TraceEventKind::kPreempt:
      return "preempt";
    case TraceEventKind::kFailureKill:
      return "failure-kill";
    case TraceEventKind::kNodeFail:
      return "node-fail";
    case TraceEventKind::kNodeRecover:
      return "node-recover";
    case TraceEventKind::kNodeSlow:
      return "node-slow";
    case TraceEventKind::kNodeSlowRecover:
      return "node-slow-recover";
    case TraceEventKind::kFallback:
      return "fallback";
    case TraceEventKind::kPlanReject:
      return "plan-reject";
    case TraceEventKind::kCycle:
      return "cycle";
    case TraceEventKind::kSchedulerCrash:
      return "scheduler-crash";
    case TraceEventKind::kRecover:
      return "recover";
  }
  return "?";
}

int SimTrace::CountKind(TraceEventKind kind) const {
  int count = 0;
  for (const TraceEvent& event : events_) {
    if (event.kind == kind) {
      ++count;
    }
  }
  return count;
}

std::string SimTrace::ToCsv() const {
  std::ostringstream out;
  out << "time,kind,job,node,count,value\n";
  for (const TraceEvent& event : events_) {
    out << event.time << ',' << ToString(event.kind) << ',' << event.job
        << ',' << event.node << ',' << event.count << ',' << event.value
        << '\n';
  }
  return out.str();
}

std::string SimTrace::RenderUtilizationTimeline(int cluster_nodes,
                                                int buckets) const {
  if (events_.empty() || cluster_nodes <= 0 || buckets <= 0) {
    return "(empty trace)";
  }
  SimTime end = 0;
  for (const TraceEvent& event : events_) {
    end = std::max(end, event.time);
  }
  if (end == 0) {
    end = 1;
  }

  // Busy-node delta sweep.
  std::vector<std::pair<SimTime, int>> deltas;
  for (const TraceEvent& event : events_) {
    switch (event.kind) {
      case TraceEventKind::kStart:
        deltas.emplace_back(event.time, event.count);
        break;
      case TraceEventKind::kComplete:
      case TraceEventKind::kPreempt:
      case TraceEventKind::kFailureKill:
        deltas.emplace_back(event.time, -event.count);
        break;
      default:
        break;
    }
  }
  std::sort(deltas.begin(), deltas.end());

  // Integrate busy node-time per bucket.
  std::vector<double> busy_time(buckets, 0.0);
  double bucket_width = static_cast<double>(end) / buckets;
  int busy = 0;
  SimTime prev = 0;
  auto accumulate = [&](SimTime from, SimTime to, int level) {
    if (to <= from || level <= 0) {
      return;
    }
    int first = std::min(buckets - 1, static_cast<int>(from / bucket_width));
    int last = std::min(buckets - 1, static_cast<int>((to - 1) / bucket_width));
    for (int b = first; b <= last; ++b) {
      double lo = std::max<double>(static_cast<double>(from), b * bucket_width);
      double hi =
          std::min<double>(static_cast<double>(to), (b + 1) * bucket_width);
      if (hi > lo) {
        busy_time[b] += (hi - lo) * level;
      }
    }
  };
  for (const auto& [time, delta] : deltas) {
    accumulate(prev, time, busy);
    busy += delta;
    prev = time;
  }
  accumulate(prev, end, busy);

  std::ostringstream out;
  out << "utilization 0%..100% over " << FormatSimTime(end) << "\n[";
  for (int b = 0; b < buckets; ++b) {
    double fraction =
        busy_time[b] / (bucket_width * static_cast<double>(cluster_nodes));
    int level = static_cast<int>(fraction * 10.0 + 0.5);
    if (level <= 0) {
      out << '.';
    } else if (level >= 10) {
      out << '#';
    } else {
      out << static_cast<char>('0' + level);
    }
  }
  out << "]";
  return out.str();
}

}  // namespace tetrisched
