#include "src/sim/faults.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/common/logging.h"
#include "src/common/rng.h"

namespace tetrisched {

const char* ToString(CrashPhase phase) {
  switch (phase) {
    case CrashPhase::kBeforeCycle:  return "before_cycle";
    case CrashPhase::kAvailability: return "availability";
    case CrashPhase::kStrlGen:      return "strl_gen";
    case CrashPhase::kCompile:      return "compile";
    case CrashPhase::kSolve:        return "solve";
    case CrashPhase::kValidate:     return "validate";
    case CrashPhase::kExtract:      return "extract";
    case CrashPhase::kCommitIntent: return "commit_intent";
    case CrashPhase::kMidCommit:    return "mid_commit";
    case CrashPhase::kAfterCommit:  return "after_commit";
  }
  return "unknown";
}

const char* CrashPhaseSpanName(CrashPhase phase) {
  switch (phase) {
    case CrashPhase::kAvailability: return "scheduler.availability";
    case CrashPhase::kStrlGen:      return "scheduler.strl_gen";
    case CrashPhase::kCompile:      return "scheduler.compile";
    case CrashPhase::kSolve:        return "scheduler.solve";
    case CrashPhase::kValidate:     return "scheduler.validate";
    case CrashPhase::kExtract:      return "scheduler.commit";
    default:                        return nullptr;
  }
}

std::vector<NodeFailure> NormalizeNodeFailures(const Cluster& cluster,
                                               std::vector<NodeFailure> failures,
                                               bool log_dropped,
                                               int* num_dropped) {
  std::stable_sort(failures.begin(), failures.end(),
                   [](const NodeFailure& a, const NodeFailure& b) {
                     return a.at != b.at ? a.at < b.at : a.node < b.node;
                   });
  // Last accepted recover_at per node; a later entry starting before it
  // overlaps an outage that is already in force.
  std::map<NodeId, SimTime> down_until;
  std::vector<NodeFailure> kept;
  kept.reserve(failures.size());
  int dropped = 0;
  for (const NodeFailure& failure : failures) {
    const char* reason = nullptr;
    if (failure.node < 0 || failure.node >= cluster.num_nodes()) {
      reason = "node id out of range";
    } else if (failure.recover_at <= failure.at) {
      reason = "recover_at <= at";
    } else {
      auto it = down_until.find(failure.node);
      if (it != down_until.end() && failure.at < it->second) {
        reason = "overlaps an earlier failure of the same node";
      }
    }
    if (reason != nullptr) {
      ++dropped;
      if (log_dropped) {
        TETRI_LOG(kWarning) << "dropping node-failure entry (node "
                            << failure.node << ", at " << failure.at
                            << "): " << reason;
      }
      continue;
    }
    down_until[failure.node] = failure.recover_at;
    kept.push_back(failure);
  }
  if (num_dropped != nullptr) {
    *num_dropped = dropped;
  }
  return kept;
}

namespace {

// Lifts the flat control-plane knobs of FaultModelParams into CommsParams.
// Partitions are generated separately (they consume a forked substream).
CommsParams BuildCommsParams(const FaultModelParams& params) {
  CommsParams comms;
  comms.seed = params.seed;
  comms.message.drop_prob = params.msg_drop_prob;
  comms.message.dup_prob = params.msg_dup_prob;
  comms.message.delay = params.msg_delay;
  comms.message.delay_jitter = params.msg_delay_jitter;
  comms.message.reorder_prob = params.msg_reorder_prob;
  comms.detector.heartbeat_period = params.heartbeat_period;
  comms.detector.suspect_timeout = params.suspect_timeout;
  comms.detector.dead_timeout = params.dead_timeout;
  comms.detector.phi_threshold = params.phi_threshold;
  comms.enabled = params.msg_drop_prob > 0.0 || params.msg_dup_prob > 0.0 ||
                  params.msg_delay > 0 || params.msg_delay_jitter > 0 ||
                  params.msg_reorder_prob > 0.0 ||
                  params.suspect_timeout > 0 || params.partition_mtbf > 0.0;
  return comms;
}

}  // namespace

FaultSchedule GenerateFaultSchedule(const Cluster& cluster,
                                    const FaultModelParams& params) {
  FaultSchedule schedule;
  schedule.comms = BuildCommsParams(params);
  if ((params.mtbf <= 0.0 && params.scheduler_crash_mtbf <= 0.0 &&
       params.partition_mtbf <= 0.0) ||
      cluster.num_nodes() == 0) {
    return schedule;
  }

  auto downtime = [&](Rng& rng) {
    return std::max<SimDuration>(
        1, static_cast<SimDuration>(std::llround(rng.Exponential(
               std::max(1.0, params.mttr)))));
  };

  Rng root(params.seed);
  // Burst decisions draw from their own substream so every node's churn
  // stream stays identical whether or not bursts are enabled elsewhere.
  Rng burst_rng = root.Fork();
  for (NodeId node = 0; params.mtbf > 0.0 && node < cluster.num_nodes();
       ++node) {
    Rng rng = root.Fork();
    SimTime t = static_cast<SimTime>(std::llround(rng.Exponential(params.mtbf)));
    for (int count = 0; count < params.max_failures_per_node; ++count) {
      if (t >= params.horizon) {
        break;
      }
      SimDuration down = downtime(rng);
      if (params.straggler_prob > 0.0 && rng.Bernoulli(params.straggler_prob)) {
        schedule.stragglers.push_back(
            {t, node, t + down, params.straggler_slowdown});
      } else {
        schedule.failures.push_back({t, node, t + down});
        if (params.rack_burst_prob > 0.0 &&
            burst_rng.Bernoulli(params.rack_burst_prob)) {
          RackId rack = cluster.node(node).rack;
          for (NodeId peer = 0; peer < cluster.num_nodes(); ++peer) {
            if (peer == node || cluster.node(peer).rack != rack) {
              continue;
            }
            SimTime peer_at =
                t + burst_rng.UniformInt(0, std::max<SimDuration>(
                                                0, params.rack_burst_span));
            schedule.failures.push_back({peer_at, peer, peer_at + down});
          }
        }
      }
      t += down + static_cast<SimTime>(
                      std::llround(rng.Exponential(params.mtbf)));
    }
  }

  // Scheduler crashes draw from a substream forked *after* every node's, so
  // enabling them leaves existing churn schedules byte-identical.
  if (params.scheduler_crash_mtbf > 0.0) {
    Rng crash_rng = root.Fork();
    SimTime t = static_cast<SimTime>(
        std::llround(crash_rng.Exponential(params.scheduler_crash_mtbf)));
    for (int count = 0; count < params.max_failures_per_node; ++count) {
      if (t >= params.horizon) {
        break;
      }
      CrashPhase phase = static_cast<CrashPhase>(
          crash_rng.UniformInt(0, kNumCrashPhases - 1));
      schedule.scheduler_crashes.push_back({t, phase});
      t += std::max<SimTime>(
          1, static_cast<SimTime>(std::llround(
                 crash_rng.Exponential(params.scheduler_crash_mtbf))));
    }
  }

  // Control-plane partitions fork *after* the crash substream, so enabling
  // them leaves node churn and crash schedules byte-identical.
  if (params.partition_mtbf > 0.0) {
    Rng part_rng = root.Fork();
    SimTime t = static_cast<SimTime>(
        std::llround(part_rng.Exponential(params.partition_mtbf)));
    for (int count = 0; count < params.max_failures_per_node; ++count) {
      if (t >= params.horizon) {
        break;
      }
      SimDuration span = std::max<SimDuration>(
          1, static_cast<SimDuration>(std::llround(part_rng.Exponential(
                 std::max(1.0, params.partition_mttr)))));
      CommsPartitionEvent event;
      event.at = t;
      event.recover_at = t + span;
      NodeId picked = static_cast<NodeId>(
          part_rng.UniformInt(0, cluster.num_nodes() - 1));
      if (params.rack_partition_prob > 0.0 &&
          part_rng.Bernoulli(params.rack_partition_prob)) {
        event.rack = cluster.node(picked).rack;
      } else {
        event.node = picked;
      }
      schedule.comms.partitions.push_back(event);
      t += span + std::max<SimTime>(
                      1, static_cast<SimTime>(std::llround(
                             part_rng.Exponential(params.partition_mtbf))));
    }
  }

  // Bursts and independent churn can collide on a node; resolve overlaps
  // here (quietly — they are a modeling artifact, not user error) so the
  // simulator sees the same clean event stream a scripted scenario feeds it.
  schedule.failures = NormalizeNodeFailures(cluster, std::move(schedule.failures),
                                            /*log_dropped=*/false);
  std::stable_sort(schedule.stragglers.begin(), schedule.stragglers.end(),
                   [](const StragglerEvent& a, const StragglerEvent& b) {
                     return a.at != b.at ? a.at < b.at : a.node < b.node;
                   });
  return schedule;
}

}  // namespace tetrisched
