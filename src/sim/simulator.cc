#include "src/sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <sstream>

#include "src/cluster/ledger.h"
#include "src/core/estimator.h"
#include "src/core/plan_check.h"
#include "src/common/atomic_io.h"
#include "src/common/json.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/span.h"
#include "src/obs/provenance.h"
#include "src/persist/journal.h"

namespace tetrisched {

bool IsPreferredPlacement(const Cluster& cluster, const Job& job,
                          const std::map<PartitionId, int>& counts) {
  switch (job.type) {
    case JobType::kUnconstrained:
      return true;
    case JobType::kGpu:
      for (const auto& [partition, count] : counts) {
        if (count > 0 && !cluster.partition(partition).has_gpu) {
          return false;
        }
      }
      return true;
    case JobType::kMpi: {
      RackId rack = -1;
      for (const auto& [partition, count] : counts) {
        if (count == 0) {
          continue;
        }
        RackId r = cluster.partition(partition).rack;
        if (rack == -1) {
          rack = r;
        } else if (rack != r) {
          return false;
        }
      }
      return true;
    }
    case JobType::kAvailability:
      return true;
    case JobType::kDataLocal:
      for (const auto& [partition, count] : counts) {
        if (count > 0 &&
            std::find(job.preferred_partitions.begin(),
                      job.preferred_partitions.end(),
                      partition) == job.preferred_partitions.end()) {
          return false;
        }
      }
      return true;
  }
  return true;
}

int ApplyAdmission(const Cluster& cluster, std::vector<Job>& jobs,
                   RayonAdmission* rayon_in) {
  RayonAdmission local(cluster.num_nodes());
  RayonAdmission& rayon = rayon_in != nullptr ? *rayon_in : local;
  int accepted = 0;
  for (Job& job : jobs) {
    if (!job.wants_reservation) {
      job.slo_class = SloClass::kBestEffort;
      continue;
    }
    RdlRequest request;
    request.requester = job.id;
    request.k = job.k;
    // Reservations are made against the preferred-placement estimate; the
    // scheduler (not the admission plan) absorbs the slowdown risk of
    // fallback placements.
    request.duration = job.EstimatedRuntime(/*preferred=*/true);
    request.window_start = job.submit;
    request.window_end = job.deadline;
    ReservationDecision decision = rayon.Submit(request);
    if (decision.accepted) {
      job.slo_class = SloClass::kSloAccepted;
      job.reservation = decision.interval;
      ++accepted;
    } else {
      job.slo_class = SloClass::kSloUnreserved;
    }
  }
  return accepted;
}

namespace {

enum class JobState {
  kFuture,
  kPending,
  kRunning,
  kCompleted,
  kDropped,
};

struct RunningJob {
  std::vector<NodeId> nodes;
  std::map<PartitionId, int> counts;
  SimTime start = 0;
  SimTime expected_end = 0;  // scheduler-visible (estimate-derived)
  SimTime actual_end = 0;    // ground truth
};

// Registry-backed simulator instruments (DESIGN.md §10): per-cycle pending
// depth plus churn/outcome event counters. SimMetrics stays the per-run
// snapshot computed locally; these accumulate process-wide.
struct SimInstruments {
  Histogram* pending_depth;  // pending jobs offered to the policy per cycle
  Counter* cycles;
  Counter* fallback_cycles;
  Counter* validator_violations;
  Counter* failure_kills;
  Counter* node_failures;
  Counter* node_recoveries;
  Counter* stragglers;
  Counter* preemptions;
  Counter* retries_exhausted;
  Counter* jobs_completed;
  Counter* jobs_dropped;
  Counter* scheduler_crashes;
  // Lossy-control-plane instruments (DESIGN.md §15).
  Counter* detector_suspicions;
  Counter* detector_false_suspicions;
  Counter* detector_dead_declared;
  Counter* detector_fenced_tasks;
  Counter* detector_orphans_adopted;
  Counter* detector_stale_bounces;
  Counter* detector_heartbeats_dropped;
  Counter* detector_commands_dropped;
};

SimInstruments& Instruments() {
  MetricsRegistry& registry = GlobalMetrics();
  static const std::vector<double> kDepthBounds{
      0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000};
  static SimInstruments instruments{
      registry.GetHistogram("tetrisched_sim_pending_depth", kDepthBounds),
      registry.GetCounter("tetrisched_sim_cycles_total"),
      registry.GetCounter("tetrisched_sim_fallback_cycles_total"),
      registry.GetCounter("tetrisched_sim_validator_violations_total"),
      registry.GetCounter("tetrisched_sim_failure_kills_total"),
      registry.GetCounter("tetrisched_sim_node_failures_total"),
      registry.GetCounter("tetrisched_sim_node_recoveries_total"),
      registry.GetCounter("tetrisched_sim_stragglers_total"),
      registry.GetCounter("tetrisched_sim_preemptions_total"),
      registry.GetCounter("tetrisched_sim_retries_exhausted_total"),
      registry.GetCounter("tetrisched_sim_jobs_completed_total"),
      registry.GetCounter("tetrisched_sim_jobs_dropped_total"),
      registry.GetCounter("tetrisched_sim_scheduler_crashes_total"),
      registry.GetCounter("tetrisched_detector_suspicions_total"),
      registry.GetCounter("tetrisched_detector_false_suspicions_total"),
      registry.GetCounter("tetrisched_detector_dead_declared_total"),
      registry.GetCounter("tetrisched_detector_fenced_tasks_total"),
      registry.GetCounter("tetrisched_detector_orphans_adopted_total"),
      registry.GetCounter("tetrisched_detector_stale_bounces_total"),
      registry.GetCounter("tetrisched_detector_heartbeats_dropped_total"),
      registry.GetCounter("tetrisched_detector_commands_dropped_total"),
  };
  return instruments;
}

const char* SloClassLabel(SloClass slo_class) {
  switch (slo_class) {
    case SloClass::kSloAccepted:
      return "slo-accepted";
    case SloClass::kSloUnreserved:
      return "slo-unreserved";
    case SloClass::kBestEffort:
      return "best-effort";
  }
  return "unknown";
}

void WriteFileOrWarn(const std::string& path, const std::string& content) {
  // Crash-atomic: a run dying mid-export must never leave a truncated
  // artifact where consumers expect a complete one.
  if (!WriteFileAtomic(path, content)) {
    TETRI_LOG(kWarning) << "cannot write export " << path;
  }
}

}  // namespace

Simulator::Simulator(const Cluster& cluster, SchedulerPolicy& policy,
                     std::vector<Job> jobs, SimConfig config)
    : cluster_(cluster),
      policy_(policy),
      jobs_(std::move(jobs)),
      config_(config) {
  std::stable_sort(jobs_.begin(), jobs_.end(),
                   [](const Job& a, const Job& b) { return a.submit < b.submit; });
  // Export paths left empty by the caller default from the environment, so
  // `TETRISCHED_TRACE_JSON=trace.json bench/fig_churn` just works.
  auto env_default = [](std::string& field, const char* var) {
    if (field.empty()) {
      const char* value = std::getenv(var);
      if (value != nullptr && *value != '\0') {
        field = value;
      }
    }
  };
  env_default(config_.metrics_json_path, "TETRISCHED_METRICS_JSON");
  env_default(config_.metrics_prom_path, "TETRISCHED_METRICS_PROM");
  env_default(config_.trace_json_path, "TETRISCHED_TRACE_JSON");
  if (config_.provenance != SimConfig::ProvenanceMode::kOff) {
    env_default(config_.provenance_jsonl_path, "TETRISCHED_PROVENANCE_JSONL");
  }
}

SimMetrics Simulator::Run() {
  SimInstruments& sim_ins = Instruments();
  const bool exporting = !config_.metrics_json_path.empty() ||
                         !config_.metrics_prom_path.empty() ||
                         !config_.trace_json_path.empty();
  const bool prev_observability = ObservabilityEnabled();
  if (exporting) {
    SetObservabilityEnabled(true);
    if (!config_.trace_json_path.empty()) {
      // Each run's trace is self-contained: drop spans of earlier runs.
      SpanCollector::Global().Clear();
    }
  }

  // Decision provenance (DESIGN.md §14): the flight recorder runs under kOn,
  // or under kAuto when a JSONL export path is configured; kOff forces it
  // off (benches measure a provenance-free baseline this way even when the
  // environment requests an export). The caller's prior recorder state is
  // restored on exit so nested runs compose; buffered records survive the
  // restore, so tests can Snapshot() after Run().
  ProvenanceRecorder& prov = ProvenanceRecorder::Global();
  const bool prev_provenance = prov.enabled();
  const bool prov_on =
      config_.provenance == SimConfig::ProvenanceMode::kOn ||
      (config_.provenance == SimConfig::ProvenanceMode::kAuto &&
       !config_.provenance_jsonl_path.empty());
  if (prov_on) {
    prov.Enable(config_.provenance_ring);
  } else if (config_.provenance == SimConfig::ProvenanceMode::kOff) {
    prov.SetEnabled(false);
  }

  SimMetrics metrics;
  const int n = static_cast<int>(jobs_.size());
  std::vector<JobState> state(n, JobState::kFuture);
  std::map<JobId, int> index;
  metrics.outcomes.resize(n);
  for (int i = 0; i < n; ++i) {
    const Job& job = jobs_[i];
    index[job.id] = i;
    JobOutcome& outcome = metrics.outcomes[i];
    outcome.id = job.id;
    outcome.slo_class = job.slo_class;
    outcome.type = job.type;
    outcome.submit = job.submit;
    outcome.deadline = job.deadline;
  }

  NodeLedger ledger(cluster_);
  RuntimeEstimator estimator;
  auto trace = [&](TraceEvent event) {
    if (config_.trace != nullptr) {
      config_.trace->Record(event);
    }
  };
  std::map<JobId, RunningJob> running;
  // (actual completion time, job id), earliest first.
  std::priority_queue<std::pair<SimTime, JobId>,
                      std::vector<std::pair<SimTime, JobId>>, std::greater<>>
      completions;

  // Fault injection bookkeeping. Scripted failure lists are validated up
  // front — entries with recover_at <= at, out-of-range node ids, or
  // overlapping duplicates are dropped with one warning each instead of
  // being silently skipped mid-run.
  std::vector<NodeFailure> failures =
      NormalizeNodeFailures(cluster_, config_.node_failures);
  size_t next_failure = 0;
  std::priority_queue<std::pair<SimTime, NodeId>,
                      std::vector<std::pair<SimTime, NodeId>>, std::greater<>>
      recoveries;
  std::map<NodeId, SimTime> failed_nodes;  // node -> recover_at

  // Fail-slow (straggler) bookkeeping: episodes activate at `at`, expire at
  // `recover_at`, and only affect gangs *started* while active.
  std::vector<StragglerEvent> stragglers = config_.stragglers;
  std::stable_sort(stragglers.begin(), stragglers.end(),
                   [](const StragglerEvent& a, const StragglerEvent& b) {
                     return a.at != b.at ? a.at < b.at : a.node < b.node;
                   });
  size_t next_straggler = 0;
  std::vector<StragglerEvent> active_stragglers;
  std::priority_queue<SimTime, std::vector<SimTime>, std::greater<>>
      straggler_ends;
  auto straggle_factor = [&](const std::vector<NodeId>& nodes) {
    double factor = 1.0;
    for (const StragglerEvent& event : active_stragglers) {
      if (std::find(nodes.begin(), nodes.end(), event.node) != nodes.end()) {
        factor = std::max(factor, event.slowdown);
      }
    }
    return factor;
  };

  // Retry/backoff state for failure-killed gangs.
  std::vector<SimTime> eligible_at(n, 0);
  std::vector<SimTime> last_kill(n, -1);

  // Lossy control plane (DESIGN.md §15). When active, `running` is the
  // scheduler's *believed* running set: a gang stays in it after a member
  // node physically dies (broken, it can never complete) until the failure
  // detector suspects the node and the gang is recalled. Copies the
  // scheduler recalled but could not kill (node down, partitioned, or the
  // kill command dropped) move to `orphans`: they still occupy ledger nodes
  // — ground truth — until reconciliation either adopts them back (intact
  // copy, job still pending, every member reachable) or fences them (stale
  // epoch). With `lossy` false none of this machinery runs and the code
  // path is byte-identical to the pre-§15 simulator.
  ControlPlane comms(cluster_, config_.comms);
  const bool lossy = comms.active();
  struct OrphanJob {
    RunningJob run;
    bool intact = true;  // no member killed or physically dead: adoptable
  };
  std::map<JobId, OrphanJob> orphans;
  // Believed-running gangs with physically dead members (the copy died with
  // its node, but the scheduler has not noticed yet). Keyed by gang, value =
  // the dead members; run.nodes keeps listing them because they are still
  // part of the *belief*, so recall and the invariant check must skip them.
  std::map<JobId, std::set<NodeId>> broken;
  int64_t cycle_count = 0;
  auto counts_of = [&](const std::vector<NodeId>& nodes) {
    std::map<PartitionId, int> counts;
    for (NodeId node : nodes) {
      ++counts[cluster_.partition_of(node)];
    }
    return counts;
  };

  // Persistence and scheduler-crash harness (DESIGN.md §11). The active
  // policy is held by pointer so recovery can swap in a freshly built one.
  SchedulerPolicy* policy = &policy_;
  std::unique_ptr<SchedulerPolicy> owned_policy;
  std::vector<SchedulerCrashEvent> crashes = config_.scheduler_crashes;
  std::stable_sort(crashes.begin(), crashes.end(),
                   [](const SchedulerCrashEvent& a,
                      const SchedulerCrashEvent& b) { return a.at < b.at; });
  size_t next_crash = 0;
  std::unique_ptr<PersistenceManager> owned_persist;
  PersistenceManager* persist = config_.persist;
  if (persist == nullptr && !crashes.empty()) {
    // Crashes need a journal to recover from; default to an in-memory one.
    owned_persist = std::make_unique<PersistenceManager>(
        std::make_unique<MemoryJournalStorage>());
    persist = owned_persist.get();
  }

  // Shadow image of the journal: every append is mirrored through
  // ApplyEvent, so `image` is by construction exactly what Recover() would
  // reconstruct and can be checkpointed at any consistent point.
  RecoveredState image;
  auto durable = [&](const DurableEvent& event) {
    if (persist == nullptr) {
      return;
    }
    persist->Append(event);
    ApplyEvent(image, event);
  };
  if (persist != nullptr) {
    if (config_.rayon != nullptr) {
      image.rayon = config_.rayon->ExportState();
    }
    for (const Job& job : jobs_) {
      if (job.slo_class != SloClass::kBestEffort || job.wants_reservation) {
        image.slo[job.id] = SloRecord{
            job.id, static_cast<uint8_t>(job.slo_class), job.reservation};
      }
    }
    image.policy_state = policy->ExportDurableState();
    persist->Checkpoint(image);
  }

  int next_arrival = 0;
  int outstanding = n;  // not yet completed/dropped
  SimTime now = 0;
  SimTime next_cycle = 0;
  SimTime last_event = 0;
  double busy_node_seconds = 0.0;
  int busy_nodes = 0;

  auto advance_to = [&](SimTime t) {
    busy_node_seconds += static_cast<double>(busy_nodes) *
                         static_cast<double>(t - last_event);
    last_event = t;
  };

  // Crash + recovery: the scheduler process dies, losing all RM-side state
  // (policy internals, Rayon agenda, retry/backoff, estimator). Cluster
  // ground truth — the ledger, running gangs, the jobs themselves — survives
  // (work-preserving restart). Recovery rebuilds the RM view from snapshot +
  // journal replay, reconciles it against the surviving cluster, re-validates
  // it, and checkpoints the reconciled image so the journal restarts clean.
  auto recover_scheduler = [&](CrashPhase phase) {
    auto wall_start = std::chrono::steady_clock::now();
    ++metrics.scheduler_crashes;
    sim_ins.scheduler_crashes->Increment();
    trace({now, TraceEventKind::kSchedulerCrash, -1, -1,
           static_cast<int32_t>(phase)});
    TETRI_LOG(kInfo) << "scheduler crash injected at t=" << now << " (phase "
                     << ToString(phase) << "); recovering";
    if (prov.enabled()) {
      ProvenanceRecord record;
      record.kind = ProvKind::kCrash;
      record.time = now;
      record.label = ToString(phase);
      prov.Record(std::move(record));
    }

    RecoveryResult rec = persist->Recover();
    RecoveredState st = std::move(rec.state);

    // 1. Rayon admission agenda.
    if (config_.rayon != nullptr) {
      config_.rayon->Restore(st.rayon);
    }
    // 2. SLO classes/reservations mutated since admission (re-admissions).
    for (const auto& [id, slo] : st.slo) {
      auto it = index.find(id);
      if (it == index.end()) {
        continue;
      }
      jobs_[it->second].slo_class = static_cast<SloClass>(slo.slo_class);
      jobs_[it->second].reservation = slo.reservation;
    }
    // 3. Retry/backoff state.
    for (const auto& [id, retry] : st.retries) {
      auto it = index.find(id);
      if (it == index.end()) {
        continue;
      }
      eligible_at[it->second] = retry.eligible_at;
      last_kill[it->second] = retry.last_kill;
    }
    // 4. Runtime estimator: retrained from the journaled completion stream
    //    in original observation order.
    if (config_.learn_estimates) {
      estimator = RuntimeEstimator();
      for (const CompletionRecord& completion : st.completions) {
        auto it = index.find(completion.job);
        if (it != index.end()) {
          estimator.Observe(jobs_[it->second], completion.preferred,
                            completion.runtime);
        }
      }
    }
    // 4b. Fence epochs (DESIGN.md §15): kEpochBump records journal each
    //     bump *before* the in-memory table changes, so the recovered table
    //     is always >= any epoch a node agent may have adopted — a restart
    //     can never issue commands under a stale epoch and resurrect a
    //     fenced placement. Max-merge because the in-process control plane
    //     also survives the simulated crash.
    comms.RestoreFenceEpochs(st.epochs);
    // 5. Reconcile the recovered RM view against cluster ground truth. A
    //    gang the cluster runs but the journal never confirmed must come
    //    from a commit interrupted between mutation and its kGangLaunch
    //    record — adopt it from the pending intent.
    for (const auto& [id, run] : running) {
      if (st.running.count(id) != 0) {
        continue;
      }
      GangRecord gang;
      bool adopted = false;
      if (st.pending_intent.has_value()) {
        for (const GangRecord& g : st.pending_intent->gangs) {
          if (g.job == id) {
            gang = g;
            adopted = true;
            break;
          }
        }
      }
      if (adopted) {
        ++metrics.recovery_adoptions;
      } else {
        ++metrics.recovery_mismatches;
        TETRI_LOG(kWarning)
            << "recovery: adopting unjournaled running gang of job " << id
            << " from cluster ground truth";
        gang.job = id;
        gang.counts = run.counts;
        gang.start = run.start;
        gang.expected_end = run.expected_end;
        gang.est_duration = run.expected_end - run.start;
      }
      st.running[id] = std::move(gang);
    }
    for (auto it = st.running.begin(); it != st.running.end();) {
      if (running.count(it->first) == 0) {
        ++metrics.recovery_mismatches;
        TETRI_LOG(kWarning) << "recovery: journal believes job " << it->first
                            << " is running but the cluster does not";
        it = st.running.erase(it);
      } else {
        ++it;
      }
    }
    st.pending_intent.reset();

    // 6. Fresh scheduler process: rebuild the policy, import durable state.
    if (config_.policy_factory) {
      owned_policy = config_.policy_factory();
      policy = owned_policy.get();
    }
    policy->ImportDurableState(st.policy_state);

    // 7. Post-recovery validation: the recovered running set, re-checked as
    //    a plan against full capacity minus failed nodes. Zero violations is
    //    the recovery invariant.
    std::vector<const Job*> believed_running;
    std::vector<Placement> recovered_plan;
    for (const auto& [id, gang] : st.running) {
      believed_running.push_back(&jobs_[index[id]]);
      Placement placement;
      placement.job = id;
      placement.counts = gang.counts;
      placement.est_duration = gang.est_duration;
      recovered_plan.push_back(std::move(placement));
    }
    std::vector<RunningHold> failed_holds;
    for (const auto& [node, recover_at] : failed_nodes) {
      RunningHold hold;
      hold.job = -1000 - node;
      hold.counts[cluster_.partition_of(node)] = 1;
      hold.expected_end = recover_at;
      failed_holds.push_back(std::move(hold));
    }
    for (const PlanViolation& violation : ValidatePlan(
             cluster_, believed_running, failed_holds, recovered_plan)) {
      ++metrics.validator_violations;
      sim_ins.validator_violations->Increment();
      TETRI_LOG(kWarning) << "post-recovery validation: job " << violation.job
                          << ": " << violation.reason;
    }

    // 8. The reconciled image is the new checkpoint; the journal restarts
    //    empty, so a crash during recovery replays to the same state.
    image = std::move(st);
    image.checkpoint_time = now;
    persist->Checkpoint(image);

    ++metrics.recoveries;
    metrics.journal_replayed += rec.replayed;
    metrics.journal_dropped += rec.dropped;
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();
    metrics.recovery_ms.Add(ms);
    trace({now, TraceEventKind::kRecover, -1, -1, rec.replayed, ms});
    if (prov.enabled()) {
      ProvenanceRecord record;
      record.kind = ProvKind::kRecovery;
      record.time = now;
      record.value = static_cast<double>(rec.replayed);
      record.detail = JsonObj()
                          .Field("replayed", rec.replayed)
                          .Field("dropped", rec.dropped)
                          .Field("snapshot_loaded", rec.snapshot_loaded)
                          .Field("ms", ms)
                          .str();
      prov.Record(std::move(record));
    }
  };

  // Post-kill retry/backoff bookkeeping, shared verbatim by the legacy
  // instant-detection path and the lossy recall path (oracle-mode schedules
  // stay byte-identical because both run exactly this code). The caller has
  // already released the gang's reachable nodes and erased it from
  // `running`; this decides drop-vs-requeue and journals the kill.
  auto requeue_after_kill = [&](int i, JobId victim, NodeId cause_node) {
    ++metrics.failure_kills;
    sim_ins.failure_kills->Increment();
    JobOutcome& outcome = metrics.outcomes[i];
    ++outcome.retries;
    if (outcome.retries > config_.max_retries) {
      // Retry budget exhausted: drop instead of requeueing.
      state[i] = JobState::kDropped;
      outcome.dropped = true;
      ++metrics.retries_exhausted;
      sim_ins.retries_exhausted->Increment();
      sim_ins.jobs_dropped->Increment();
      trace({now, TraceEventKind::kDrop, victim});
      if (prov.enabled()) {
        ProvenanceRecord record;
        record.kind = ProvKind::kDropped;
        record.time = now;
        record.job = victim;
        record.label = "retries-exhausted";
        record.value = static_cast<double>(outcome.retries);
        record.detail = JsonObj()
                            .Field("node", cause_node)
                            .Field("retries", outcome.retries)
                            .str();
        prov.Record(std::move(record));
      }
      if (persist != nullptr) {
        DurableEvent drop;
        drop.kind = DurableEventKind::kJobDropped;
        drop.time = now;
        drop.job = victim;
        durable(drop);
      }
      --outstanding;
      return;
    }
    state[i] = JobState::kPending;  // gang restarts from scratch
    last_kill[i] = now;
    SimDuration backoff = 0;
    if (config_.retry_backoff > 0) {
      backoff = std::min(config_.retry_backoff_cap,
                         config_.retry_backoff
                             << std::min(outcome.retries - 1, 30));
    }
    eligible_at[i] = now + backoff;
    if (prov.enabled()) {
      ProvenanceRecord record;
      record.kind = ProvKind::kFailureKill;
      record.time = now;
      record.job = victim;
      record.label = "node-failure";
      record.value = static_cast<double>(outcome.retries);
      record.detail =
          JsonObj()
              .Field("node", cause_node)
              .Field("retries", outcome.retries)
              .Field("eligible_at", static_cast<int64_t>(eligible_at[i]))
              .str();
      prov.Record(std::move(record));
    }
    if (persist != nullptr) {
      DurableEvent kill;
      kill.kind = DurableEventKind::kGangKill;
      kill.time = now;
      kill.job = victim;
      kill.retries = outcome.retries;
      kill.eligible_at = eligible_at[i];
      durable(kill);
    }

    // Shrink-or-drop re-admission: an accepted-SLO gang whose
    // reserved slot can no longer start on time gets one shot at a
    // new reservation over the remaining window; on rejection it is
    // downgraded to unreserved (it keeps running best-effort-style
    // toward its deadline).
    Job& job = jobs_[i];
    if (config_.rayon != nullptr &&
        job.slo_class == SloClass::kSloAccepted &&
        job.reservation.start < eligible_at[i]) {
      config_.rayon->Release(job.reservation, job.k);
      if (persist != nullptr) {
        DurableEvent release;
        release.kind = DurableEventKind::kRayonRelease;
        release.time = now;
        release.job = job.id;
        release.k = job.k;
        release.interval = job.reservation;
        durable(release);
      }
      RdlRequest request;
      request.requester = job.id;
      request.k = job.k;
      request.duration = job.EstimatedRuntime(/*preferred=*/true);
      request.window_start = eligible_at[i];
      request.window_end = job.deadline;
      ReservationDecision redo = config_.rayon->Submit(request);
      if (redo.accepted) {
        job.reservation = redo.interval;
        ++outcome.readmissions;
        ++metrics.readmissions;
      } else {
        job.slo_class = SloClass::kSloUnreserved;
        job.reservation = {0, 0};
        outcome.reservation_dropped = true;
        ++metrics.reservations_dropped;
      }
      if (persist != nullptr) {
        DurableEvent admit;
        admit.kind = redo.accepted ? DurableEventKind::kRayonAdmit
                                   : DurableEventKind::kRayonReject;
        admit.time = now;
        admit.job = job.id;
        admit.k = job.k;
        admit.interval = redo.interval;
        durable(admit);
        DurableEvent slo;
        slo.kind = DurableEventKind::kSloUpdate;
        slo.time = now;
        slo.job = job.id;
        slo.slo_class = static_cast<uint8_t>(job.slo_class);
        slo.interval = job.reservation;
        durable(slo);
      }
    }
  };

  // Journals an epoch bump (WAL-first) and applies it to the control plane.
  auto fence_node = [&](NodeId node) {
    if (persist != nullptr) {
      DurableEvent bump;
      bump.kind = DurableEventKind::kEpochBump;
      bump.time = now;
      bump.node = node;
      bump.epoch = comms.fence_epoch(node) + 1;
      durable(bump);
    }
    comms.FenceNode(node);
  };

  // Lossy-mode recall: the detector gave up on `sus` (suspected, declared
  // dead, or observed to have silently rebooted); every believed-running
  // gang touching it is killed and requeued. Members the kill command
  // reaches release their nodes; unreachable members become an orphan copy
  // whose nodes each get a fence-epoch bump, so their agents reject any
  // command issued for the old incarnation of this placement.
  auto recall_gangs_on = [&](NodeId sus, const char* reason) {
    for (auto it = running.begin(); it != running.end();) {
      RunningJob& run = it->second;
      if (std::find(run.nodes.begin(), run.nodes.end(), sus) ==
          run.nodes.end()) {
        ++it;
        continue;
      }
      JobId victim = it->first;
      int i = index[victim];
      if (prov.enabled()) {
        ProvenanceRecord record;
        record.kind = ProvKind::kSuspected;
        record.time = now;
        record.job = victim;
        record.label = reason;
        record.detail = JsonObj()
                            .Field("node", sus)
                            .Field("gang_nodes",
                                   static_cast<int64_t>(run.nodes.size()))
                            .str();
        prov.Record(std::move(record));
      }
      auto dead = broken.find(victim);
      std::vector<NodeId> killed;
      std::vector<NodeId> orphaned;
      for (NodeId member : run.nodes) {
        if (dead != broken.end() && dead->second.count(member) != 0) {
          continue;  // copy died with its node; nothing to kill or release
        }
        if (comms.node_up(member) && comms.LinkUp(member, now) &&
            comms.DeliverCommand(member, now)) {
          killed.push_back(member);
        } else {
          orphaned.push_back(member);
        }
      }
      if (!killed.empty()) {
        ledger.Release(killed);
        busy_nodes -= static_cast<int>(killed.size());
      }
      trace({now, TraceEventKind::kFailureKill, victim, sus,
             static_cast<int32_t>(run.nodes.size())});
      if (!orphaned.empty()) {
        OrphanJob orphan;
        orphan.run = run;
        orphan.run.nodes = orphaned;
        orphan.run.counts = counts_of(orphaned);
        orphan.intact = killed.empty() && broken.count(victim) == 0;
        for (NodeId member : orphaned) {
          fence_node(member);
        }
        orphans[victim] = std::move(orphan);
      }
      broken.erase(victim);
      it = running.erase(it);
      requeue_after_kill(i, victim, sus);
    }
  };

  // Lossy-mode reconciliation for a reachable node whose agent epoch lags
  // its fence epoch: each orphan copy on it is either adopted back wholesale
  // (survivor keeps the slot — the copy is intact, the job was never
  // re-placed, and every member is reachable) or fenced (stale tasks
  // killed, agents advance to the fence epoch). Undeliverable commands
  // leave the orphan in place: the node stays reconcilable and is retried
  // next cycle.
  auto reconcile_node = [&](NodeId node) {
    bool fully_reconciled = true;
    for (auto it = orphans.begin(); it != orphans.end();) {
      OrphanJob& orphan = it->second;
      if (std::find(orphan.run.nodes.begin(), orphan.run.nodes.end(), node) ==
          orphan.run.nodes.end()) {
        ++it;
        continue;
      }
      JobId id = it->first;
      int i = index[id];
      bool adoptable = orphan.intact && state[i] == JobState::kPending;
      if (adoptable) {
        for (NodeId member : orphan.run.nodes) {
          if (!comms.node_up(member) || !comms.LinkUp(member, now)) {
            adoptable = false;
            break;
          }
        }
      }
      if (adoptable) {
        bool delivered = true;
        for (NodeId member : orphan.run.nodes) {
          if (!comms.DeliverCommand(member, now)) {
            delivered = false;
            break;
          }
        }
        if (!delivered) {
          fully_reconciled = false;
          ++it;
          continue;  // retry next cycle; epochs unchanged
        }
        RunningJob run = orphan.run;
        it = orphans.erase(it);
        for (NodeId member : run.nodes) {
          comms.AgentAdoptEpoch(member);
        }
        ++metrics.orphans_adopted;
        state[i] = JobState::kRunning;
        JobOutcome& outcome = metrics.outcomes[i];
        if (last_kill[i] >= 0) {
          SimDuration gap = now - last_kill[i];
          outcome.recovery_latency += gap;
          metrics.recovery_latency.Add(static_cast<double>(gap));
          last_kill[i] = -1;
        }
        if (prov.enabled()) {
          ProvenanceRecord record;
          record.kind = ProvKind::kReconciled;
          record.time = now;
          record.job = id;
          record.label = "adopted";
          record.value = static_cast<double>(run.nodes.size());
          record.detail = JsonObj()
                              .Field("node", node)
                              .Field("start", static_cast<int64_t>(run.start))
                              .str();
          prov.Record(std::move(record));
        }
        if (persist != nullptr) {
          DurableEvent launch;
          launch.kind = DurableEventKind::kGangLaunch;
          launch.time = now;
          launch.job = id;
          launch.gang.job = id;
          launch.gang.counts = run.counts;
          launch.gang.start = run.start;
          launch.gang.expected_end = run.expected_end;
          launch.gang.est_duration = run.expected_end - run.start;
          durable(launch);
        }
        if (run.actual_end <= now) {
          // The copy finished while orphaned; the completion surfaces with
          // the reconciliation (its report needed a reachable control
          // plane). Requeue it at `now` — the stale-entry check accepts it
          // because actual_end is rewritten to match.
          run.actual_end = now;
        }
        completions.push({run.actual_end, id});
        running[id] = std::move(run);
      } else {
        std::vector<NodeId> fenced;
        std::vector<NodeId> remaining;
        for (NodeId member : orphan.run.nodes) {
          if (comms.node_up(member) && comms.LinkUp(member, now) &&
              comms.DeliverCommand(member, now)) {
            fenced.push_back(member);
            comms.AgentAdoptEpoch(member);
          } else {
            remaining.push_back(member);
          }
        }
        if (!fenced.empty()) {
          ledger.Release(fenced);
          busy_nodes -= static_cast<int>(fenced.size());
          metrics.fenced_tasks += static_cast<int>(fenced.size());
          orphan.intact = false;
          if (prov.enabled()) {
            ProvenanceRecord record;
            record.kind = ProvKind::kFenced;
            record.time = now;
            record.job = id;
            record.label = "stale-epoch";
            record.value = static_cast<double>(fenced.size());
            record.detail =
                JsonObj()
                    .Field("node", node)
                    .Field("remaining",
                           static_cast<int64_t>(remaining.size()))
                    .str();
            prov.Record(std::move(record));
          }
        }
        if (remaining.empty()) {
          it = orphans.erase(it);
        } else {
          fully_reconciled = false;
          orphan.run.nodes = std::move(remaining);
          orphan.run.counts = counts_of(orphan.run.nodes);
          ++it;
        }
      }
    }
    if (fully_reconciled) {
      // Nothing stale remains on this node: its agent accepts the current
      // epoch, clearing the reconcilable flag.
      comms.AgentAdoptEpoch(node);
    }
  };

  // The §15 belief invariant, checked at every cycle boundary under a lossy
  // control plane: every occupied ledger node is owned by exactly one copy
  // (believed-running gang, orphan, or failed-node hold), and no node is
  // claimed twice. Double-occupancy or a lost slot is a bug, never a
  // consequence of message loss.
  auto check_belief_invariants = [&]() {
    std::vector<int> owners(cluster_.num_nodes(), 0);
    for (const auto& [id, run] : running) {
      auto dead = broken.find(id);
      for (NodeId member : run.nodes) {
        if (dead != broken.end() && dead->second.count(member) != 0) {
          continue;  // believed-held only; the copy died with its node
        }
        ++owners[member];
      }
    }
    for (const auto& [id, orphan] : orphans) {
      for (NodeId member : orphan.run.nodes) {
        ++owners[member];
      }
    }
    for (const auto& [node, recover_at] : failed_nodes) {
      ++owners[node];
    }
    for (NodeId node = 0; node < cluster_.num_nodes(); ++node) {
      const bool occupied = !ledger.is_free(node);
      if (owners[node] > 1 || occupied != (owners[node] == 1)) {
        ++metrics.belief_invariant_violations;
        TETRI_LOG(kError) << "belief invariant violated at t=" << now
                          << ": node " << node << " has " << owners[node]
                          << " owners, ledger "
                          << (occupied ? "occupied" : "free");
      }
    }
  };

  while (outstanding > 0 && now <= config_.max_time) {
    SimTime next_event = next_cycle;
    if (next_arrival < n) {
      next_event = std::min(next_event, jobs_[next_arrival].submit);
    }
    if (!completions.empty()) {
      next_event = std::min(next_event, completions.top().first);
    }
    if (next_failure < failures.size()) {
      next_event = std::min(next_event, failures[next_failure].at);
    }
    if (!recoveries.empty()) {
      next_event = std::min(next_event, recoveries.top().first);
    }
    if (next_straggler < stragglers.size()) {
      next_event = std::min(next_event, stragglers[next_straggler].at);
    }
    if (!straggler_ends.empty()) {
      next_event = std::min(next_event, straggler_ends.top());
    }
    now = next_event;
    advance_to(now);

    // Arrivals.
    while (next_arrival < n && jobs_[next_arrival].submit <= now) {
      state[next_arrival] = JobState::kPending;
      trace({now, TraceEventKind::kSubmit, jobs_[next_arrival].id});
      if (prov.enabled()) {
        const Job& job = jobs_[next_arrival];
        ProvenanceRecord record;
        record.kind = ProvKind::kArrival;
        record.time = now;
        record.job = job.id;
        record.label = SloClassLabel(job.slo_class);
        record.value = static_cast<double>(job.k);
        record.detail = JsonObj()
                            .Field("k", job.k)
                            .Field("deadline", static_cast<int64_t>(job.deadline))
                            .str();
        prov.Record(std::move(record));
      }
      ++next_arrival;
    }

    // Completions.
    while (!completions.empty() && completions.top().first <= now) {
      auto [time, id] = completions.top();
      completions.pop();
      auto it = running.find(id);
      if (it == running.end() || it->second.actual_end != time) {
        continue;  // stale entry (job was preempted and rescheduled)
      }
      int i = index[id];
      ledger.Release(it->second.nodes);
      busy_nodes -= static_cast<int>(it->second.nodes.size());
      if (config_.learn_estimates) {
        estimator.Observe(jobs_[i], metrics.outcomes[i].preferred,
                          time - it->second.start);
      }
      int released = static_cast<int>(it->second.nodes.size());
      if (persist != nullptr) {
        DurableEvent complete;
        complete.kind = DurableEventKind::kGangComplete;
        complete.time = time;
        complete.job = id;
        complete.preferred = metrics.outcomes[i].preferred;
        complete.runtime = time - it->second.start;
        durable(complete);
      }
      if (prov.enabled()) {
        const Job& job = jobs_[i];
        ProvenanceRecord record;
        record.kind = ProvKind::kCompleted;
        record.time = time;
        record.job = id;
        record.label = time <= job.deadline ? "met" : "late";
        record.value = static_cast<double>(time - it->second.start);
        record.detail =
            JsonObj()
                .Field("runtime", static_cast<int64_t>(time - it->second.start))
                .Field("deadline", static_cast<int64_t>(job.deadline))
                .Field("preferred", metrics.outcomes[i].preferred)
                .str();
        prov.Record(std::move(record));
      }
      running.erase(it);
      state[i] = JobState::kCompleted;
      metrics.outcomes[i].completed = true;
      metrics.outcomes[i].completion = time;
      trace({time, TraceEventKind::kComplete, id, -1, released});
      sim_ins.jobs_completed->Increment();
      --outstanding;
    }

    // Node recoveries before failures: a node recovering at exactly the
    // instant a later failure entry targets it must be back in circulation
    // first, or that failure would be silently skipped as a duplicate.
    while (!recoveries.empty() && recoveries.top().first <= now) {
      auto [time, node] = recoveries.top();
      recoveries.pop();
      ledger.ReturnSpecific(node);
      trace({now, TraceEventKind::kNodeRecover, -1, node});
      sim_ins.node_recoveries->Increment();
      failed_nodes.erase(node);
      if (lossy) {
        // The agent reboots with a bumped incarnation; its heartbeats
        // resume from here and the detector notices on its next pass.
        comms.NodeUp(node, now);
      }
    }

    // Node failures: kill whatever ran on the node, requeue the gang under
    // the retry policy, and take the node out of circulation until recovery.
    while (next_failure < failures.size() &&
           failures[next_failure].at <= now) {
      const NodeFailure& failure = failures[next_failure++];
      if (failure.node < 0 || failure.node >= cluster_.num_nodes() ||
          failed_nodes.count(failure.node) != 0) {
        continue;
      }
      if (!ledger.is_free(failure.node) && !lossy) {
        // Oracle path: the scheduler learns of the failure instantly and
        // kills + requeues the whole gang on the spot.
        for (auto it = running.begin(); it != running.end(); ++it) {
          auto& nodes = it->second.nodes;
          if (std::find(nodes.begin(), nodes.end(), failure.node) ==
              nodes.end()) {
            continue;
          }
          JobId victim = it->first;
          int i = index[victim];
          ledger.Release(nodes);
          busy_nodes -= static_cast<int>(nodes.size());
          trace({now, TraceEventKind::kFailureKill, victim, failure.node,
                 static_cast<int32_t>(nodes.size())});
          running.erase(it);
          requeue_after_kill(i, victim, failure.node);
          break;
        }
      } else if (!ledger.is_free(failure.node)) {
        // Lossy path: the scheduler notices nothing yet. The copy on the
        // node dies with it; the rest of the gang keeps occupying its
        // nodes. A believed-running gang becomes `broken` (its completion
        // is cancelled — a gang with a dead member never finishes) and is
        // recalled only once the detector suspects the node or spots its
        // reboot. An orphan copy just shrinks.
        bool found = false;
        for (auto& [id, run] : running) {
          auto pos =
              std::find(run.nodes.begin(), run.nodes.end(), failure.node);
          if (pos == run.nodes.end()) {
            continue;
          }
          auto dead = broken.find(id);
          if (dead != broken.end() && dead->second.count(failure.node) != 0) {
            continue;  // this gang's copy there died in an earlier incarnation
          }
          broken[id].insert(failure.node);
          ledger.Release({failure.node});
          --busy_nodes;
          run.actual_end = kTimeNever;
          found = true;
          break;
        }
        if (!found) {
          for (auto it = orphans.begin(); it != orphans.end(); ++it) {
            auto& run = it->second.run;
            auto pos =
                std::find(run.nodes.begin(), run.nodes.end(), failure.node);
            if (pos == run.nodes.end()) {
              continue;
            }
            run.nodes.erase(pos);
            ledger.Release({failure.node});
            --busy_nodes;
            it->second.intact = false;
            if (run.nodes.empty()) {
              orphans.erase(it);
            } else {
              run.counts = counts_of(run.nodes);
            }
            break;
          }
        }
      }
      ledger.TakeSpecific(failure.node);
      trace({now, TraceEventKind::kNodeFail, -1, failure.node});
      sim_ins.node_failures->Increment();
      failed_nodes[failure.node] = failure.recover_at;
      if (failure.recover_at != kTimeNever) {
        recoveries.push({failure.recover_at, failure.node});
      }
      if (lossy) {
        comms.NodeDown(failure.node, now);
      }
    }

    // Fail-slow episodes: expire finished ones, then activate those due.
    if (!straggler_ends.empty() && straggler_ends.top() <= now) {
      while (!straggler_ends.empty() && straggler_ends.top() <= now) {
        straggler_ends.pop();
      }
      for (auto it = active_stragglers.begin();
           it != active_stragglers.end();) {
        if (it->recover_at <= now) {
          trace({now, TraceEventKind::kNodeSlowRecover, -1, it->node});
          it = active_stragglers.erase(it);
        } else {
          ++it;
        }
      }
    }
    while (next_straggler < stragglers.size() &&
           stragglers[next_straggler].at <= now) {
      const StragglerEvent& event = stragglers[next_straggler++];
      if (event.node < 0 || event.node >= cluster_.num_nodes() ||
          event.recover_at <= event.at || event.slowdown <= 1.0) {
        continue;
      }
      active_stragglers.push_back(event);
      straggler_ends.push(event.recover_at);
      sim_ins.stragglers->Increment();
      trace({now, TraceEventKind::kNodeSlow, -1, event.node, 0,
             event.slowdown});
    }

    if (now < next_cycle) {
      continue;
    }
    next_cycle = now + config_.cycle_period;

    // At most one injected scheduler crash per cycle, at its scheduled
    // phase. A kBeforeCycle crash loses nothing uncommitted, so recovery
    // runs first and the cycle then proceeds on the rebuilt scheduler.
    const SchedulerCrashEvent* crash = nullptr;
    if (persist != nullptr && next_crash < crashes.size() &&
        crashes[next_crash].at <= now) {
      crash = &crashes[next_crash++];
      if (crash->phase == CrashPhase::kBeforeCycle) {
        recover_scheduler(crash->phase);
        crash = nullptr;
      }
    }

    // Detector pass (DESIGN.md §15): fold heartbeat arrivals up to now,
    // apply belief transitions, then act on them — recall believed-running
    // gangs from nodes the scheduler just gave up on (or that silently
    // rebooted out from under their tasks), and reconcile reachable nodes
    // whose agents lag their fence epoch.
    if (lossy) {
      ++cycle_count;
      ControlPlane::Verdict verdict = comms.Evaluate(now, cycle_count);
      for (NodeId node : verdict.newly_suspect) {
        recall_gangs_on(node, "suspected");
      }
      for (NodeId node : verdict.newly_dead) {
        recall_gangs_on(node, "dead");  // idempotent if recalled at suspicion
      }
      for (NodeId node : verdict.rebooted) {
        recall_gangs_on(node, "rebooted");
      }
      for (NodeId node : verdict.reconcilable) {
        reconcile_node(node);
      }
    }

    // Build the policy's view.
    std::vector<const Job*> pending;
    for (int i = 0; i < n; ++i) {
      if (state[i] != JobState::kPending) {
        continue;
      }
      if (eligible_at[i] > now) {
        continue;  // still backing off after a failure kill
      }
      if (config_.learn_estimates) {
        jobs_[i].learned_estimate_preferred =
            estimator.Predict(jobs_[i], /*preferred=*/true);
        jobs_[i].learned_estimate_fallback =
            estimator.Predict(jobs_[i], /*preferred=*/false);
      }
      pending.push_back(&jobs_[i]);
    }
    std::vector<RunningHold> holds;
    holds.reserve(running.size() + failed_nodes.size());
    // Failed nodes appear to policies as unpreemptible holds lasting until
    // their recovery time. Under a lossy control plane the scheduler cannot
    // see ground truth: the holds come from the detector's believed-down
    // set instead (no recovery ETA — a suspicion carries none), so the
    // policy may plan onto capacity that is actually gone (bounced at
    // commit) and may ignore capacity that is actually fine.
    if (!lossy) {
      for (const auto& [node, recover_at] : failed_nodes) {
        RunningHold hold;
        hold.job = -1000 - node;  // synthetic id, never matches a real job
        hold.slo_class = SloClass::kSloAccepted;
        hold.reservation_end = kTimeNever;
        hold.counts[cluster_.partition_of(node)] = 1;
        hold.expected_end = recover_at;
        holds.push_back(std::move(hold));
      }
    } else {
      const std::vector<char>& down = comms.believed_down_mask();
      for (NodeId node = 0; node < cluster_.num_nodes(); ++node) {
        if (!down[node]) {
          continue;
        }
        RunningHold hold;
        hold.job = -1000 - node;  // synthetic id, never matches a real job
        hold.slo_class = SloClass::kSloAccepted;
        hold.reservation_end = kTimeNever;
        hold.counts[cluster_.partition_of(node)] = 1;
        hold.expected_end = kTimeNever;
        holds.push_back(std::move(hold));
      }
    }
    for (const auto& [id, run] : running) {
      const Job& job = jobs_[index[id]];
      SimTime reservation_end = job.slo_class == SloClass::kSloAccepted
                                    ? job.reservation.end
                                    : kTimeNever;
      holds.push_back({id, job.slo_class, run.start, reservation_end,
                       run.counts, run.expected_end});
    }

    try {
      // In-OnCycle crash phases fire from the span hook: the first entry
      // into the targeted phase's span on this thread throws.
      const char* crash_span =
          crash != nullptr ? CrashPhaseSpanName(crash->phase) : nullptr;
      if (crash_span != nullptr) {
        span_internal::ArmSpanCrashHook(crash_span,
                                        [] { throw SchedulerCrashSignal{}; });
      }
      SchedulerPolicy::Decision decision =
          policy->OnCycle(now, pending, holds);
      if (crash_span != nullptr && span_internal::SpanCrashHookArmed()) {
        // The targeted phase never ran this cycle (the degradation ladder
        // can skip phases); the crash still fires, before the commit.
        span_internal::DisarmSpanCrashHook();
        throw SchedulerCrashSignal{};
      }
      trace({now, TraceEventKind::kCycle, -1, -1,
             static_cast<int32_t>(pending.size()),
             decision.stats.cycle_seconds * 1e3});
      sim_ins.cycles->Increment();
      sim_ins.pending_depth->Observe(static_cast<double>(pending.size()));
      metrics.cycle_latency_ms.Add(decision.stats.cycle_seconds * 1e3);
      metrics.solver_latency_ms.Add(decision.stats.solver_seconds * 1e3);
      if (decision.stats.milp_vars > 0) {
        metrics.milp_vars.Add(decision.stats.milp_vars);
        metrics.milp_components.Add(decision.stats.milp_components);
      }
      if (decision.stats.used_fallback) {
        ++metrics.fallback_cycles;
        sim_ins.fallback_cycles->Increment();
        // `count` carries the degradation-ladder rung that produced the plan
        // (1 = greedy first-fit, 2 = skip), not a placement count.
        trace({now, TraceEventKind::kFallback, -1, -1,
               decision.stats.ladder_rung});
      }
      metrics.validator_violations += decision.stats.validator_rejects;
      sim_ins.validator_violations->Increment(
          decision.stats.validator_rejects);
      if (decision.stats.budget_blown) {
        ++metrics.budget_blown_cycles;
      }
      if (decision.stats.plan_ahead_adapted != 0) {
        ++metrics.plan_ahead_adaptations;
      }
      metrics.certifier_rejects += decision.stats.certifier_rejects;

      // Two-phase commit (DESIGN.md §11): journal the cycle's full intent
      // before any cluster mutation, journal each mutation after it lands,
      // and close with kCommitApplied carrying the policy's durable state.
      // A crash anywhere in between leaves an open intent that recovery
      // reconciles against what actually reached the cluster.
      if (persist != nullptr && decision.stats.plan_ahead_adapted != 0) {
        // AIMD adaptation record (DESIGN.md §13): informational for journal
        // inspection; the authoritative adapted state rides the
        // kCommitApplied policy blob below.
        DurableEvent adapt;
        adapt.kind = DurableEventKind::kPlanAheadAdapt;
        adapt.time = now;
        adapt.k = decision.stats.plan_ahead_adapted;
        adapt.runtime = decision.stats.effective_plan_ahead;
        durable(adapt);
      }
      if (persist != nullptr) {
        DurableEvent intent;
        intent.kind = DurableEventKind::kCommitIntent;
        intent.time = now;
        for (const Placement& placement : decision.start_now) {
          GangRecord gang;
          gang.job = placement.job;
          gang.counts = placement.counts;
          gang.start = now;
          gang.expected_end = now + placement.est_duration;
          gang.est_duration = placement.est_duration;
          intent.gangs.push_back(std::move(gang));
        }
        intent.drops = decision.drop;
        intent.preempts = decision.preempt;
        durable(intent);
      }
      if (crash != nullptr && crash->phase == CrashPhase::kCommitIntent) {
        throw SchedulerCrashSignal{};
      }

      // Preemptions first (they free capacity the placements may rely on).
      for (JobId id : decision.preempt) {
        auto it = running.find(id);
        if (it == running.end()) {
          continue;
        }
        int i = index[id];
        ledger.Release(it->second.nodes);
        busy_nodes -= static_cast<int>(it->second.nodes.size());
        trace({now, TraceEventKind::kPreempt, id, -1,
               static_cast<int32_t>(it->second.nodes.size())});
        running.erase(it);
        state[i] = JobState::kPending;  // restarts from scratch
        ++metrics.outcomes[i].preemptions;
        ++metrics.preemptions;
        sim_ins.preemptions->Increment();
        if (prov.enabled()) {
          ProvenanceRecord record;
          record.kind = ProvKind::kPreempted;
          record.time = now;
          record.job = id;
          record.label = "policy-preempt";
          record.value = static_cast<double>(metrics.outcomes[i].preemptions);
          prov.Record(std::move(record));
        }
        if (persist != nullptr) {
          DurableEvent preempt;
          preempt.kind = DurableEventKind::kGangPreempt;
          preempt.time = now;
          preempt.job = id;
          durable(preempt);
        }
      }

      for (JobId id : decision.drop) {
        auto it = index.find(id);
        if (it == index.end() || state[it->second] != JobState::kPending) {
          continue;
        }
        state[it->second] = JobState::kDropped;
        metrics.outcomes[it->second].dropped = true;
        trace({now, TraceEventKind::kDrop, id});
        sim_ins.jobs_dropped->Increment();
        if (prov.enabled()) {
          ProvenanceRecord record;
          record.kind = ProvKind::kDropped;
          record.time = now;
          record.job = id;
          record.label = "culled";
          prov.Record(std::move(record));
        }
        --outstanding;
        if (persist != nullptr) {
          DurableEvent drop;
          drop.kind = DurableEventKind::kJobDropped;
          drop.time = now;
          drop.job = id;
          durable(drop);
        }
      }

      bool first_placement = true;
      for (const Placement& placement : decision.start_now) {
        // Last line of defense: the scheduler's own ValidatePlan should have
        // caught malformed placements, but a buggy policy must never corrupt
        // the ledger — reject the placement, count it, and keep running.
        auto reject = [&](const char* why) {
          ++metrics.validator_violations;
          sim_ins.validator_violations->Increment();
          trace({now, TraceEventKind::kPlanReject, placement.job});
          TETRI_LOG(kWarning) << "rejected placement of job " << placement.job
                              << ": " << why;
        };
        auto it = index.find(placement.job);
        if (it == index.end()) {
          reject("unknown job id");
          continue;
        }
        int i = it->second;
        if (state[i] != JobState::kPending) {
          reject("job is not pending");
          continue;
        }
        const Job& job = jobs_[i];
        // Availability-type jobs may legitimately place fewer tasks than k
        // (one per rack); everything else is an exact gang.
        if (placement.total_nodes() < 1 || placement.total_nodes() > job.k) {
          reject("gang size out of range");
          continue;
        }
        // A plan the scheduler built against a stale believed view is not a
        // policy bug: ground truth refuses it (the gang stays pending and is
        // replanned next cycle) without charging the validator.
        auto bounce = [&](const char* why) {
          ++metrics.stale_placement_bounces;
          trace({now, TraceEventKind::kPlanReject, placement.job});
          if (prov.enabled()) {
            ProvenanceRecord record;
            record.kind = ProvKind::kRejected;
            record.time = now;
            record.job = placement.job;
            record.label = "stale-view";
            record.detail = JsonObj().Field("why", why).str();
            prov.Record(std::move(record));
          }
        };
        bool fits = true;
        bool stale = false;
        for (const auto& [partition, count] : placement.counts) {
          if (partition < 0 || partition >= cluster_.num_partitions() ||
              count < 0) {
            fits = false;
            break;
          }
          if (!lossy) {
            if (count > ledger.free_in_partition(partition)) {
              fits = false;
              break;
            }
          } else if (count > ledger.FreeAvoiding(
                                 partition, comms.believed_down_mask())) {
            // Physically impossible (or only satisfiable by placing onto
            // believed-down nodes): the believed view was stale.
            stale = true;
            break;
          }
        }
        if (!fits) {
          reject("exceeds free partition capacity");
          continue;
        }
        if (stale) {
          bounce("capacity");
          continue;
        }

        RunningJob run;
        run.counts = placement.counts;
        if (!lossy) {
          for (const auto& [partition, count] : placement.counts) {
            std::vector<NodeId> nodes = ledger.Acquire(partition, count);
            run.nodes.insert(run.nodes.end(), nodes.begin(), nodes.end());
          }
        } else {
          bool short_take = false;
          for (const auto& [partition, count] : placement.counts) {
            std::vector<NodeId> nodes = ledger.AcquireAvoiding(
                partition, count, comms.believed_down_mask());
            run.nodes.insert(run.nodes.end(), nodes.begin(), nodes.end());
            if (static_cast<int>(nodes.size()) < count) {
              short_take = true;
              break;
            }
          }
          if (short_take) {
            ledger.Release(run.nodes);
            bounce("short-take");
            continue;
          }
          // The launch command must reach every member or none: a partial
          // gang is never started. A lost command aborts the whole launch
          // (the agent-side slots are released; the gang retries next
          // cycle).
          bool delivered = true;
          for (NodeId member : run.nodes) {
            if (!comms.DeliverCommand(member, now)) {
              delivered = false;
              break;
            }
          }
          if (!delivered) {
            ledger.Release(run.nodes);
            bounce("command-lost");
            continue;
          }
          // Delivered placement commands carry the current fence epoch;
          // accepting one adopts it.
          for (NodeId member : run.nodes) {
            comms.AgentAdoptEpoch(member);
          }
        }
        busy_nodes += static_cast<int>(run.nodes.size());

        // Ground truth runtime from the *actual* placement quality,
        // stretched by any fail-slow episode active on the gang's nodes at
        // start.
        bool preferred = IsPreferredPlacement(cluster_, job, run.counts);
        SimDuration actual = job.ActualRuntime(preferred);
        double slow = straggle_factor(run.nodes);
        if (slow > 1.0) {
          actual = static_cast<SimDuration>(
              std::llround(static_cast<double>(actual) * slow));
          ++metrics.straggler_slowed_starts;
        }
        run.start = now;
        run.actual_end = now + actual;
        run.expected_end = now + placement.est_duration;
        completions.push({run.actual_end, job.id});
        running[job.id] = std::move(run);

        state[i] = JobState::kRunning;
        trace({now, TraceEventKind::kStart, job.id, -1,
               placement.total_nodes()});
        JobOutcome& outcome = metrics.outcomes[i];
        outcome.started = true;
        if (outcome.start_time < 0) {
          outcome.start_time = now;
        }
        if (last_kill[i] >= 0) {
          SimDuration gap = now - last_kill[i];
          outcome.recovery_latency += gap;
          metrics.recovery_latency.Add(static_cast<double>(gap));
          last_kill[i] = -1;
        }
        outcome.preferred = preferred;
        outcome.placement = placement.counts;
        if (prov.enabled()) {
          // Ground-truth placement quality (the scheduler only ever saw
          // estimates); this is what SLO-miss attribution keys on.
          ProvenanceRecord record;
          record.kind = ProvKind::kStart;
          record.time = now;
          record.job = job.id;
          record.label = preferred ? "preferred" : "fallback";
          record.value = static_cast<double>(placement.total_nodes());
          record.detail =
              JsonObj()
                  .Field("nodes", placement.total_nodes())
                  .Field("est_duration",
                         static_cast<int64_t>(placement.est_duration))
                  .Field("actual_runtime", static_cast<int64_t>(actual))
                  .Field("straggler_factor", slow)
                  .str();
          prov.Record(std::move(record));
        }

        if (first_placement) {
          first_placement = false;
          // kMidCommit: the cluster mutation landed but its kGangLaunch
          // record did not — recovery must adopt this gang from the open
          // commit intent.
          if (crash != nullptr && crash->phase == CrashPhase::kMidCommit) {
            throw SchedulerCrashSignal{};
          }
        }
        if (persist != nullptr) {
          DurableEvent launch;
          launch.kind = DurableEventKind::kGangLaunch;
          launch.time = now;
          launch.job = job.id;
          launch.gang.job = job.id;
          launch.gang.counts = placement.counts;
          launch.gang.start = now;
          launch.gang.expected_end = now + placement.est_duration;
          launch.gang.est_duration = placement.est_duration;
          durable(launch);
        }
      }

      if (crash != nullptr && crash->phase == CrashPhase::kMidCommit &&
          first_placement) {
        // Nothing was placed this cycle, so no launch fired the crash; it
        // still lands inside the commit window, before kCommitApplied.
        throw SchedulerCrashSignal{};
      }

      if (persist != nullptr) {
        // kCommitApplied closes the cycle even when nothing was placed, so
        // a stale warm-start blob never outlives the cycle that cleared it.
        DurableEvent applied;
        applied.kind = DurableEventKind::kCommitApplied;
        applied.time = now;
        applied.blob = policy->ExportDurableState();
        durable(applied);
        image.checkpoint_time = now;
        persist->MaybeCheckpoint(image);
      }
      if (crash != nullptr && crash->phase == CrashPhase::kAfterCommit) {
        throw SchedulerCrashSignal{};
      }
    } catch (const SchedulerCrashSignal&) {
      // The cycle died mid-flight. Ground-truth mutations that already
      // landed stand; recovery rebuilds the RM view around them, and the
      // unapplied remainder of this cycle's plan is replanned next period.
      recover_scheduler(crash != nullptr ? crash->phase
                                         : CrashPhase::kBeforeCycle);
    }
    if (lossy) {
      check_belief_invariants();
    }
  }

  if (now > config_.max_time) {
    TETRI_LOG(kWarning) << "simulation hit max_time with " << outstanding
                        << " jobs outstanding";
  }
  if (lossy) {
    const ControlPlane::Counters& cc = comms.counters();
    metrics.suspicions = static_cast<int>(cc.suspicions);
    metrics.false_suspicions = static_cast<int>(cc.false_suspicions);
    metrics.dead_declared = static_cast<int>(cc.dead_declared);
    metrics.heartbeats_dropped = cc.heartbeats_dropped;
    metrics.commands_dropped = cc.commands_dropped;
    metrics.stale_command_rejects = cc.stale_command_rejects;
    for (double latency : comms.detection_latencies()) {
      metrics.detection_latency.Add(latency);
    }
    sim_ins.detector_suspicions->Increment(cc.suspicions);
    sim_ins.detector_false_suspicions->Increment(cc.false_suspicions);
    sim_ins.detector_dead_declared->Increment(cc.dead_declared);
    sim_ins.detector_fenced_tasks->Increment(metrics.fenced_tasks);
    sim_ins.detector_orphans_adopted->Increment(metrics.orphans_adopted);
    sim_ins.detector_stale_bounces->Increment(
        metrics.stale_placement_bounces);
    sim_ins.detector_heartbeats_dropped->Increment(cc.heartbeats_dropped);
    sim_ins.detector_commands_dropped->Increment(cc.commands_dropped);
  }
  metrics.makespan = now;
  metrics.utilization =
      metrics.makespan > 0
          ? busy_node_seconds / (static_cast<double>(cluster_.num_nodes()) *
                                 static_cast<double>(metrics.makespan))
          : 0.0;

  if (prov.enabled()) {
    // SLO-miss attribution (DESIGN.md §14): every SLO job that failed its
    // deadline gets a closing kSloMiss record whose label is the attributed
    // root cause and whose detail carries the evidence counts behind the
    // verdict — the machine-checkable answer `tetrisched_explain
    // --slo-misses` renders.
    for (const JobOutcome& outcome : metrics.outcomes) {
      if (!outcome.is_slo() || outcome.MetDeadline()) {
        continue;
      }
      ProvenanceRecord record;
      record.kind = ProvKind::kSloMiss;
      record.time = now;
      record.job = outcome.id;
      std::string evidence;
      record.label = ToString(prov.AttributeSloMiss(outcome.id, &evidence));
      record.detail = std::move(evidence);
      record.value = outcome.completed
                         ? static_cast<double>(outcome.completion -
                                               outcome.deadline)
                         : -1.0;  // never finished
      prov.Record(std::move(record));
    }
  }

  if (exporting) {
    UpdateProcessMetrics();
    if (!config_.metrics_json_path.empty()) {
      WriteFileOrWarn(config_.metrics_json_path, GlobalMetrics().ToJson());
    }
    if (!config_.metrics_prom_path.empty()) {
      WriteFileOrWarn(config_.metrics_prom_path,
                      GlobalMetrics().ToPrometheusText());
    }
    if (!config_.trace_json_path.empty()) {
      WriteFileOrWarn(config_.trace_json_path,
                      SpanCollector::Global().ToChromeTraceJson());
    }
    SetObservabilityEnabled(prev_observability);
  }
  if (prov_on && !config_.provenance_jsonl_path.empty()) {
    prov.ExportJsonl(config_.provenance_jsonl_path);
  }
  prov.SetEnabled(prev_provenance);
  return metrics;
}

namespace {

// Attainment over outcomes matching `match`: fraction completed by deadline.
template <typename Predicate>
double Attainment(const std::vector<JobOutcome>& outcomes, Predicate match) {
  int total = 0;
  int met = 0;
  for (const JobOutcome& outcome : outcomes) {
    if (!match(outcome)) {
      continue;
    }
    ++total;
    if (outcome.MetDeadline()) {
      ++met;
    }
  }
  return total > 0 ? static_cast<double>(met) / total : 0.0;
}

}  // namespace

double SimMetrics::AcceptedSloAttainment() const {
  return Attainment(outcomes, [](const JobOutcome& o) {
    return o.slo_class == SloClass::kSloAccepted;
  });
}

double SimMetrics::TotalSloAttainment() const {
  return Attainment(outcomes, [](const JobOutcome& o) { return o.is_slo(); });
}

double SimMetrics::UnreservedSloAttainment() const {
  return Attainment(outcomes, [](const JobOutcome& o) {
    return o.slo_class == SloClass::kSloUnreserved;
  });
}

double SimMetrics::MeanBestEffortLatency() const {
  double total = 0.0;
  int count = 0;
  for (const JobOutcome& outcome : outcomes) {
    if (outcome.is_slo() || !outcome.completed) {
      continue;
    }
    total += static_cast<double>(outcome.completion - outcome.submit);
    ++count;
  }
  return count > 0 ? total / count : 0.0;
}

int SimMetrics::CountJobs(SloClass slo_class) const {
  int count = 0;
  for (const JobOutcome& outcome : outcomes) {
    if (outcome.slo_class == slo_class) {
      ++count;
    }
  }
  return count;
}

std::string SimMetrics::Summary() const {
  std::ostringstream out;
  out << "SLO attainment: total " << FormatPercent(TotalSloAttainment(), 1.0)
      << ", accepted " << FormatPercent(AcceptedSloAttainment(), 1.0)
      << ", w/o reservation "
      << FormatPercent(UnreservedSloAttainment(), 1.0)
      << "; BE mean latency " << MeanBestEffortLatency()
      << " s; utilization " << FormatPercent(utilization, 1.0)
      << "; makespan " << makespan << " s";
  if (failure_kills > 0 || fallback_cycles > 0 || validator_violations > 0) {
    out << "; churn: " << failure_kills << " kills, " << retries_exhausted
        << " retry-exhausted, " << readmissions << " readmissions, "
        << reservations_dropped << " reservations dropped, "
        << fallback_cycles << " fallback cycles, " << validator_violations
        << " validator violations";
  }
  if (budget_blown_cycles > 0 || plan_ahead_adaptations > 0 ||
      certifier_rejects > 0) {
    out << "; budget: " << budget_blown_cycles << " blown cycles, "
        << plan_ahead_adaptations << " plan-ahead adaptations, "
        << certifier_rejects << " certifier rejects";
  }
  if (suspicions > 0 || stale_placement_bounces > 0 || fenced_tasks > 0 ||
      belief_invariant_violations > 0) {
    out << "; detector: " << suspicions << " suspicions ("
        << false_suspicions << " false), " << dead_declared << " dead, "
        << fenced_tasks << " fenced tasks, " << orphans_adopted
        << " orphans adopted, " << stale_placement_bounces
        << " stale bounces, " << belief_invariant_violations
        << " belief violations";
    if (detection_latency.count() > 0) {
      out << ", mean detection " << detection_latency.Mean() << " s";
    }
  }
  if (scheduler_crashes > 0) {
    out << "; crashes: " << scheduler_crashes << " injected, " << recoveries
        << " recoveries, " << journal_replayed << " records replayed, "
        << journal_dropped << " dropped, " << recovery_adoptions
        << " adoptions, " << recovery_mismatches << " mismatches";
  }
  return out.str();
}

}  // namespace tetrisched
