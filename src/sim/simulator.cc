#include "src/sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <queue>
#include <set>
#include <sstream>

#include "src/cluster/ledger.h"
#include "src/core/estimator.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/span.h"

namespace tetrisched {

bool IsPreferredPlacement(const Cluster& cluster, const Job& job,
                          const std::map<PartitionId, int>& counts) {
  switch (job.type) {
    case JobType::kUnconstrained:
      return true;
    case JobType::kGpu:
      for (const auto& [partition, count] : counts) {
        if (count > 0 && !cluster.partition(partition).has_gpu) {
          return false;
        }
      }
      return true;
    case JobType::kMpi: {
      RackId rack = -1;
      for (const auto& [partition, count] : counts) {
        if (count == 0) {
          continue;
        }
        RackId r = cluster.partition(partition).rack;
        if (rack == -1) {
          rack = r;
        } else if (rack != r) {
          return false;
        }
      }
      return true;
    }
    case JobType::kAvailability:
      return true;
    case JobType::kDataLocal:
      for (const auto& [partition, count] : counts) {
        if (count > 0 &&
            std::find(job.preferred_partitions.begin(),
                      job.preferred_partitions.end(),
                      partition) == job.preferred_partitions.end()) {
          return false;
        }
      }
      return true;
  }
  return true;
}

int ApplyAdmission(const Cluster& cluster, std::vector<Job>& jobs,
                   RayonAdmission* rayon_in) {
  RayonAdmission local(cluster.num_nodes());
  RayonAdmission& rayon = rayon_in != nullptr ? *rayon_in : local;
  int accepted = 0;
  for (Job& job : jobs) {
    if (!job.wants_reservation) {
      job.slo_class = SloClass::kBestEffort;
      continue;
    }
    RdlRequest request;
    request.requester = job.id;
    request.k = job.k;
    // Reservations are made against the preferred-placement estimate; the
    // scheduler (not the admission plan) absorbs the slowdown risk of
    // fallback placements.
    request.duration = job.EstimatedRuntime(/*preferred=*/true);
    request.window_start = job.submit;
    request.window_end = job.deadline;
    ReservationDecision decision = rayon.Submit(request);
    if (decision.accepted) {
      job.slo_class = SloClass::kSloAccepted;
      job.reservation = decision.interval;
      ++accepted;
    } else {
      job.slo_class = SloClass::kSloUnreserved;
    }
  }
  return accepted;
}

namespace {

enum class JobState {
  kFuture,
  kPending,
  kRunning,
  kCompleted,
  kDropped,
};

struct RunningJob {
  std::vector<NodeId> nodes;
  std::map<PartitionId, int> counts;
  SimTime start = 0;
  SimTime expected_end = 0;  // scheduler-visible (estimate-derived)
  SimTime actual_end = 0;    // ground truth
};

// Registry-backed simulator instruments (DESIGN.md §10): per-cycle pending
// depth plus churn/outcome event counters. SimMetrics stays the per-run
// snapshot computed locally; these accumulate process-wide.
struct SimInstruments {
  Histogram* pending_depth;  // pending jobs offered to the policy per cycle
  Counter* cycles;
  Counter* fallback_cycles;
  Counter* validator_violations;
  Counter* failure_kills;
  Counter* node_failures;
  Counter* node_recoveries;
  Counter* stragglers;
  Counter* preemptions;
  Counter* retries_exhausted;
  Counter* jobs_completed;
  Counter* jobs_dropped;
};

SimInstruments& Instruments() {
  MetricsRegistry& registry = GlobalMetrics();
  static const std::vector<double> kDepthBounds{
      0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000};
  static SimInstruments instruments{
      registry.GetHistogram("tetrisched_sim_pending_depth", kDepthBounds),
      registry.GetCounter("tetrisched_sim_cycles_total"),
      registry.GetCounter("tetrisched_sim_fallback_cycles_total"),
      registry.GetCounter("tetrisched_sim_validator_violations_total"),
      registry.GetCounter("tetrisched_sim_failure_kills_total"),
      registry.GetCounter("tetrisched_sim_node_failures_total"),
      registry.GetCounter("tetrisched_sim_node_recoveries_total"),
      registry.GetCounter("tetrisched_sim_stragglers_total"),
      registry.GetCounter("tetrisched_sim_preemptions_total"),
      registry.GetCounter("tetrisched_sim_retries_exhausted_total"),
      registry.GetCounter("tetrisched_sim_jobs_completed_total"),
      registry.GetCounter("tetrisched_sim_jobs_dropped_total"),
  };
  return instruments;
}

void WriteFileOrWarn(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    TETRI_LOG(kWarning) << "cannot open " << path << " for export";
    return;
  }
  out << content;
}

}  // namespace

Simulator::Simulator(const Cluster& cluster, SchedulerPolicy& policy,
                     std::vector<Job> jobs, SimConfig config)
    : cluster_(cluster),
      policy_(policy),
      jobs_(std::move(jobs)),
      config_(config) {
  std::stable_sort(jobs_.begin(), jobs_.end(),
                   [](const Job& a, const Job& b) { return a.submit < b.submit; });
  // Export paths left empty by the caller default from the environment, so
  // `TETRISCHED_TRACE_JSON=trace.json bench/fig_churn` just works.
  auto env_default = [](std::string& field, const char* var) {
    if (field.empty()) {
      const char* value = std::getenv(var);
      if (value != nullptr && *value != '\0') {
        field = value;
      }
    }
  };
  env_default(config_.metrics_json_path, "TETRISCHED_METRICS_JSON");
  env_default(config_.metrics_prom_path, "TETRISCHED_METRICS_PROM");
  env_default(config_.trace_json_path, "TETRISCHED_TRACE_JSON");
}

SimMetrics Simulator::Run() {
  SimInstruments& sim_ins = Instruments();
  const bool exporting = !config_.metrics_json_path.empty() ||
                         !config_.metrics_prom_path.empty() ||
                         !config_.trace_json_path.empty();
  const bool prev_observability = ObservabilityEnabled();
  if (exporting) {
    SetObservabilityEnabled(true);
    if (!config_.trace_json_path.empty()) {
      // Each run's trace is self-contained: drop spans of earlier runs.
      SpanCollector::Global().Clear();
    }
  }

  SimMetrics metrics;
  const int n = static_cast<int>(jobs_.size());
  std::vector<JobState> state(n, JobState::kFuture);
  std::map<JobId, int> index;
  metrics.outcomes.resize(n);
  for (int i = 0; i < n; ++i) {
    const Job& job = jobs_[i];
    index[job.id] = i;
    JobOutcome& outcome = metrics.outcomes[i];
    outcome.id = job.id;
    outcome.slo_class = job.slo_class;
    outcome.type = job.type;
    outcome.submit = job.submit;
    outcome.deadline = job.deadline;
  }

  NodeLedger ledger(cluster_);
  RuntimeEstimator estimator;
  auto trace = [&](TraceEvent event) {
    if (config_.trace != nullptr) {
      config_.trace->Record(event);
    }
  };
  std::map<JobId, RunningJob> running;
  // (actual completion time, job id), earliest first.
  std::priority_queue<std::pair<SimTime, JobId>,
                      std::vector<std::pair<SimTime, JobId>>, std::greater<>>
      completions;

  // Fault injection bookkeeping. Scripted failure lists are validated up
  // front — entries with recover_at <= at, out-of-range node ids, or
  // overlapping duplicates are dropped with one warning each instead of
  // being silently skipped mid-run.
  std::vector<NodeFailure> failures =
      NormalizeNodeFailures(cluster_, config_.node_failures);
  size_t next_failure = 0;
  std::priority_queue<std::pair<SimTime, NodeId>,
                      std::vector<std::pair<SimTime, NodeId>>, std::greater<>>
      recoveries;
  std::map<NodeId, SimTime> failed_nodes;  // node -> recover_at

  // Fail-slow (straggler) bookkeeping: episodes activate at `at`, expire at
  // `recover_at`, and only affect gangs *started* while active.
  std::vector<StragglerEvent> stragglers = config_.stragglers;
  std::stable_sort(stragglers.begin(), stragglers.end(),
                   [](const StragglerEvent& a, const StragglerEvent& b) {
                     return a.at != b.at ? a.at < b.at : a.node < b.node;
                   });
  size_t next_straggler = 0;
  std::vector<StragglerEvent> active_stragglers;
  std::priority_queue<SimTime, std::vector<SimTime>, std::greater<>>
      straggler_ends;
  auto straggle_factor = [&](const std::vector<NodeId>& nodes) {
    double factor = 1.0;
    for (const StragglerEvent& event : active_stragglers) {
      if (std::find(nodes.begin(), nodes.end(), event.node) != nodes.end()) {
        factor = std::max(factor, event.slowdown);
      }
    }
    return factor;
  };

  // Retry/backoff state for failure-killed gangs.
  std::vector<SimTime> eligible_at(n, 0);
  std::vector<SimTime> last_kill(n, -1);

  int next_arrival = 0;
  int outstanding = n;  // not yet completed/dropped
  SimTime now = 0;
  SimTime next_cycle = 0;
  SimTime last_event = 0;
  double busy_node_seconds = 0.0;
  int busy_nodes = 0;

  auto advance_to = [&](SimTime t) {
    busy_node_seconds += static_cast<double>(busy_nodes) *
                         static_cast<double>(t - last_event);
    last_event = t;
  };

  while (outstanding > 0 && now <= config_.max_time) {
    SimTime next_event = next_cycle;
    if (next_arrival < n) {
      next_event = std::min(next_event, jobs_[next_arrival].submit);
    }
    if (!completions.empty()) {
      next_event = std::min(next_event, completions.top().first);
    }
    if (next_failure < failures.size()) {
      next_event = std::min(next_event, failures[next_failure].at);
    }
    if (!recoveries.empty()) {
      next_event = std::min(next_event, recoveries.top().first);
    }
    if (next_straggler < stragglers.size()) {
      next_event = std::min(next_event, stragglers[next_straggler].at);
    }
    if (!straggler_ends.empty()) {
      next_event = std::min(next_event, straggler_ends.top());
    }
    now = next_event;
    advance_to(now);

    // Arrivals.
    while (next_arrival < n && jobs_[next_arrival].submit <= now) {
      state[next_arrival] = JobState::kPending;
      trace({now, TraceEventKind::kSubmit, jobs_[next_arrival].id});
      ++next_arrival;
    }

    // Completions.
    while (!completions.empty() && completions.top().first <= now) {
      auto [time, id] = completions.top();
      completions.pop();
      auto it = running.find(id);
      if (it == running.end() || it->second.actual_end != time) {
        continue;  // stale entry (job was preempted and rescheduled)
      }
      int i = index[id];
      ledger.Release(it->second.nodes);
      busy_nodes -= static_cast<int>(it->second.nodes.size());
      if (config_.learn_estimates) {
        estimator.Observe(jobs_[i], metrics.outcomes[i].preferred,
                          time - it->second.start);
      }
      int released = static_cast<int>(it->second.nodes.size());
      running.erase(it);
      state[i] = JobState::kCompleted;
      metrics.outcomes[i].completed = true;
      metrics.outcomes[i].completion = time;
      trace({time, TraceEventKind::kComplete, id, -1, released});
      sim_ins.jobs_completed->Increment();
      --outstanding;
    }

    // Node recoveries before failures: a node recovering at exactly the
    // instant a later failure entry targets it must be back in circulation
    // first, or that failure would be silently skipped as a duplicate.
    while (!recoveries.empty() && recoveries.top().first <= now) {
      auto [time, node] = recoveries.top();
      recoveries.pop();
      ledger.ReturnSpecific(node);
      trace({now, TraceEventKind::kNodeRecover, -1, node});
      sim_ins.node_recoveries->Increment();
      failed_nodes.erase(node);
    }

    // Node failures: kill whatever ran on the node, requeue the gang under
    // the retry policy, and take the node out of circulation until recovery.
    while (next_failure < failures.size() &&
           failures[next_failure].at <= now) {
      const NodeFailure& failure = failures[next_failure++];
      if (failure.node < 0 || failure.node >= cluster_.num_nodes() ||
          failed_nodes.count(failure.node) != 0) {
        continue;
      }
      if (!ledger.is_free(failure.node)) {
        for (auto it = running.begin(); it != running.end(); ++it) {
          auto& nodes = it->second.nodes;
          if (std::find(nodes.begin(), nodes.end(), failure.node) ==
              nodes.end()) {
            continue;
          }
          JobId victim = it->first;
          int i = index[victim];
          ledger.Release(nodes);
          busy_nodes -= static_cast<int>(nodes.size());
          trace({now, TraceEventKind::kFailureKill, victim, failure.node,
                 static_cast<int32_t>(nodes.size())});
          running.erase(it);
          ++metrics.failure_kills;
          sim_ins.failure_kills->Increment();
          JobOutcome& outcome = metrics.outcomes[i];
          ++outcome.retries;
          if (outcome.retries > config_.max_retries) {
            // Retry budget exhausted: drop instead of requeueing.
            state[i] = JobState::kDropped;
            outcome.dropped = true;
            ++metrics.retries_exhausted;
            sim_ins.retries_exhausted->Increment();
            sim_ins.jobs_dropped->Increment();
            trace({now, TraceEventKind::kDrop, victim});
            --outstanding;
            break;
          }
          state[i] = JobState::kPending;  // gang restarts from scratch
          last_kill[i] = now;
          SimDuration backoff = 0;
          if (config_.retry_backoff > 0) {
            backoff = std::min(config_.retry_backoff_cap,
                               config_.retry_backoff
                                   << std::min(outcome.retries - 1, 30));
          }
          eligible_at[i] = now + backoff;

          // Shrink-or-drop re-admission: an accepted-SLO gang whose
          // reserved slot can no longer start on time gets one shot at a
          // new reservation over the remaining window; on rejection it is
          // downgraded to unreserved (it keeps running best-effort-style
          // toward its deadline).
          Job& job = jobs_[i];
          if (config_.rayon != nullptr &&
              job.slo_class == SloClass::kSloAccepted &&
              job.reservation.start < eligible_at[i]) {
            config_.rayon->Release(job.reservation, job.k);
            RdlRequest request;
            request.requester = job.id;
            request.k = job.k;
            request.duration = job.EstimatedRuntime(/*preferred=*/true);
            request.window_start = eligible_at[i];
            request.window_end = job.deadline;
            ReservationDecision redo = config_.rayon->Submit(request);
            if (redo.accepted) {
              job.reservation = redo.interval;
              ++outcome.readmissions;
              ++metrics.readmissions;
            } else {
              job.slo_class = SloClass::kSloUnreserved;
              job.reservation = {0, 0};
              outcome.reservation_dropped = true;
              ++metrics.reservations_dropped;
            }
          }
          break;
        }
      }
      ledger.TakeSpecific(failure.node);
      trace({now, TraceEventKind::kNodeFail, -1, failure.node});
      sim_ins.node_failures->Increment();
      failed_nodes[failure.node] = failure.recover_at;
      if (failure.recover_at != kTimeNever) {
        recoveries.push({failure.recover_at, failure.node});
      }
    }

    // Fail-slow episodes: expire finished ones, then activate those due.
    if (!straggler_ends.empty() && straggler_ends.top() <= now) {
      while (!straggler_ends.empty() && straggler_ends.top() <= now) {
        straggler_ends.pop();
      }
      for (auto it = active_stragglers.begin();
           it != active_stragglers.end();) {
        if (it->recover_at <= now) {
          trace({now, TraceEventKind::kNodeSlowRecover, -1, it->node});
          it = active_stragglers.erase(it);
        } else {
          ++it;
        }
      }
    }
    while (next_straggler < stragglers.size() &&
           stragglers[next_straggler].at <= now) {
      const StragglerEvent& event = stragglers[next_straggler++];
      if (event.node < 0 || event.node >= cluster_.num_nodes() ||
          event.recover_at <= event.at || event.slowdown <= 1.0) {
        continue;
      }
      active_stragglers.push_back(event);
      straggler_ends.push(event.recover_at);
      sim_ins.stragglers->Increment();
      trace({now, TraceEventKind::kNodeSlow, -1, event.node, 0,
             event.slowdown});
    }

    if (now < next_cycle) {
      continue;
    }
    next_cycle = now + config_.cycle_period;

    // Build the policy's view.
    std::vector<const Job*> pending;
    for (int i = 0; i < n; ++i) {
      if (state[i] != JobState::kPending) {
        continue;
      }
      if (eligible_at[i] > now) {
        continue;  // still backing off after a failure kill
      }
      if (config_.learn_estimates) {
        jobs_[i].learned_estimate_preferred =
            estimator.Predict(jobs_[i], /*preferred=*/true);
        jobs_[i].learned_estimate_fallback =
            estimator.Predict(jobs_[i], /*preferred=*/false);
      }
      pending.push_back(&jobs_[i]);
    }
    std::vector<RunningHold> holds;
    holds.reserve(running.size() + failed_nodes.size());
    // Failed nodes appear to policies as unpreemptible holds lasting until
    // their recovery time.
    for (const auto& [node, recover_at] : failed_nodes) {
      RunningHold hold;
      hold.job = -1000 - node;  // synthetic id, never matches a real job
      hold.slo_class = SloClass::kSloAccepted;
      hold.reservation_end = kTimeNever;
      hold.counts[cluster_.partition_of(node)] = 1;
      hold.expected_end = recover_at;
      holds.push_back(std::move(hold));
    }
    for (const auto& [id, run] : running) {
      const Job& job = jobs_[index[id]];
      SimTime reservation_end = job.slo_class == SloClass::kSloAccepted
                                    ? job.reservation.end
                                    : kTimeNever;
      holds.push_back({id, job.slo_class, run.start, reservation_end,
                       run.counts, run.expected_end});
    }

    SchedulerPolicy::Decision decision = policy_.OnCycle(now, pending, holds);
    trace({now, TraceEventKind::kCycle, -1, -1,
           static_cast<int32_t>(pending.size()),
           decision.stats.cycle_seconds * 1e3});
    sim_ins.cycles->Increment();
    sim_ins.pending_depth->Observe(static_cast<double>(pending.size()));
    metrics.cycle_latency_ms.Add(decision.stats.cycle_seconds * 1e3);
    metrics.solver_latency_ms.Add(decision.stats.solver_seconds * 1e3);
    if (decision.stats.milp_vars > 0) {
      metrics.milp_vars.Add(decision.stats.milp_vars);
    }
    if (decision.stats.used_fallback) {
      ++metrics.fallback_cycles;
      sim_ins.fallback_cycles->Increment();
      // `count` carries the degradation-ladder rung that produced the plan
      // (1 = greedy first-fit, 2 = skip), not a placement count.
      trace({now, TraceEventKind::kFallback, -1, -1,
             decision.stats.ladder_rung});
    }
    metrics.validator_violations += decision.stats.validator_rejects;
    sim_ins.validator_violations->Increment(decision.stats.validator_rejects);

    // Preemptions first (they free capacity the placements may rely on).
    for (JobId id : decision.preempt) {
      auto it = running.find(id);
      if (it == running.end()) {
        continue;
      }
      int i = index[id];
      ledger.Release(it->second.nodes);
      busy_nodes -= static_cast<int>(it->second.nodes.size());
      trace({now, TraceEventKind::kPreempt, id, -1,
             static_cast<int32_t>(it->second.nodes.size())});
      running.erase(it);
      state[i] = JobState::kPending;  // restarts from scratch
      ++metrics.outcomes[i].preemptions;
      ++metrics.preemptions;
      sim_ins.preemptions->Increment();
    }

    for (JobId id : decision.drop) {
      auto it = index.find(id);
      if (it == index.end() || state[it->second] != JobState::kPending) {
        continue;
      }
      state[it->second] = JobState::kDropped;
      metrics.outcomes[it->second].dropped = true;
      trace({now, TraceEventKind::kDrop, id});
      sim_ins.jobs_dropped->Increment();
      --outstanding;
    }

    for (const Placement& placement : decision.start_now) {
      // Last line of defense: the scheduler's own ValidatePlan should have
      // caught malformed placements, but a buggy policy must never corrupt
      // the ledger — reject the placement, count it, and keep running.
      auto reject = [&](const char* why) {
        ++metrics.validator_violations;
        sim_ins.validator_violations->Increment();
        trace({now, TraceEventKind::kPlanReject, placement.job});
        TETRI_LOG(kWarning) << "rejected placement of job " << placement.job
                            << ": " << why;
      };
      auto it = index.find(placement.job);
      if (it == index.end()) {
        reject("unknown job id");
        continue;
      }
      int i = it->second;
      if (state[i] != JobState::kPending) {
        reject("job is not pending");
        continue;
      }
      const Job& job = jobs_[i];
      // Availability-type jobs may legitimately place fewer tasks than k
      // (one per rack); everything else is an exact gang.
      if (placement.total_nodes() < 1 || placement.total_nodes() > job.k) {
        reject("gang size out of range");
        continue;
      }
      bool fits = true;
      for (const auto& [partition, count] : placement.counts) {
        if (partition < 0 || partition >= cluster_.num_partitions() ||
            count < 0 || count > ledger.free_in_partition(partition)) {
          fits = false;
          break;
        }
      }
      if (!fits) {
        reject("exceeds free partition capacity");
        continue;
      }

      RunningJob run;
      run.counts = placement.counts;
      for (const auto& [partition, count] : placement.counts) {
        std::vector<NodeId> nodes = ledger.Acquire(partition, count);
        run.nodes.insert(run.nodes.end(), nodes.begin(), nodes.end());
      }
      busy_nodes += static_cast<int>(run.nodes.size());

      // Ground truth runtime from the *actual* placement quality, stretched
      // by any fail-slow episode active on the gang's nodes at start.
      bool preferred = IsPreferredPlacement(cluster_, job, run.counts);
      SimDuration actual = job.ActualRuntime(preferred);
      double slow = straggle_factor(run.nodes);
      if (slow > 1.0) {
        actual = static_cast<SimDuration>(
            std::llround(static_cast<double>(actual) * slow));
        ++metrics.straggler_slowed_starts;
      }
      run.start = now;
      run.actual_end = now + actual;
      run.expected_end = now + placement.est_duration;
      completions.push({run.actual_end, job.id});
      running[job.id] = std::move(run);

      state[i] = JobState::kRunning;
      trace({now, TraceEventKind::kStart, job.id, -1,
             placement.total_nodes()});
      JobOutcome& outcome = metrics.outcomes[i];
      outcome.started = true;
      if (outcome.start_time < 0) {
        outcome.start_time = now;
      }
      if (last_kill[i] >= 0) {
        SimDuration gap = now - last_kill[i];
        outcome.recovery_latency += gap;
        metrics.recovery_latency.Add(static_cast<double>(gap));
        last_kill[i] = -1;
      }
      outcome.preferred = preferred;
      outcome.placement = placement.counts;
    }
  }

  if (now > config_.max_time) {
    TETRI_LOG(kWarning) << "simulation hit max_time with " << outstanding
                        << " jobs outstanding";
  }
  metrics.makespan = now;
  metrics.utilization =
      metrics.makespan > 0
          ? busy_node_seconds / (static_cast<double>(cluster_.num_nodes()) *
                                 static_cast<double>(metrics.makespan))
          : 0.0;

  if (exporting) {
    if (!config_.metrics_json_path.empty()) {
      WriteFileOrWarn(config_.metrics_json_path, GlobalMetrics().ToJson());
    }
    if (!config_.metrics_prom_path.empty()) {
      WriteFileOrWarn(config_.metrics_prom_path,
                      GlobalMetrics().ToPrometheusText());
    }
    if (!config_.trace_json_path.empty()) {
      WriteFileOrWarn(config_.trace_json_path,
                      SpanCollector::Global().ToChromeTraceJson());
    }
    SetObservabilityEnabled(prev_observability);
  }
  return metrics;
}

namespace {

// Attainment over outcomes matching `match`: fraction completed by deadline.
template <typename Predicate>
double Attainment(const std::vector<JobOutcome>& outcomes, Predicate match) {
  int total = 0;
  int met = 0;
  for (const JobOutcome& outcome : outcomes) {
    if (!match(outcome)) {
      continue;
    }
    ++total;
    if (outcome.MetDeadline()) {
      ++met;
    }
  }
  return total > 0 ? static_cast<double>(met) / total : 0.0;
}

}  // namespace

double SimMetrics::AcceptedSloAttainment() const {
  return Attainment(outcomes, [](const JobOutcome& o) {
    return o.slo_class == SloClass::kSloAccepted;
  });
}

double SimMetrics::TotalSloAttainment() const {
  return Attainment(outcomes, [](const JobOutcome& o) { return o.is_slo(); });
}

double SimMetrics::UnreservedSloAttainment() const {
  return Attainment(outcomes, [](const JobOutcome& o) {
    return o.slo_class == SloClass::kSloUnreserved;
  });
}

double SimMetrics::MeanBestEffortLatency() const {
  double total = 0.0;
  int count = 0;
  for (const JobOutcome& outcome : outcomes) {
    if (outcome.is_slo() || !outcome.completed) {
      continue;
    }
    total += static_cast<double>(outcome.completion - outcome.submit);
    ++count;
  }
  return count > 0 ? total / count : 0.0;
}

int SimMetrics::CountJobs(SloClass slo_class) const {
  int count = 0;
  for (const JobOutcome& outcome : outcomes) {
    if (outcome.slo_class == slo_class) {
      ++count;
    }
  }
  return count;
}

std::string SimMetrics::Summary() const {
  std::ostringstream out;
  out << "SLO attainment: total " << FormatPercent(TotalSloAttainment(), 1.0)
      << ", accepted " << FormatPercent(AcceptedSloAttainment(), 1.0)
      << ", w/o reservation "
      << FormatPercent(UnreservedSloAttainment(), 1.0)
      << "; BE mean latency " << MeanBestEffortLatency()
      << " s; utilization " << FormatPercent(utilization, 1.0)
      << "; makespan " << makespan << " s";
  if (failure_kills > 0 || fallback_cycles > 0 || validator_violations > 0) {
    out << "; churn: " << failure_kills << " kills, " << retries_exhausted
        << " retry-exhausted, " << readmissions << " readmissions, "
        << reservations_dropped << " reservations dropped, "
        << fallback_cycles << " fallback cycles, " << validator_violations
        << " validator violations";
  }
  return out.str();
}

}  // namespace tetrisched
