#include "src/sim/comms.h"

#include <algorithm>

namespace tetrisched {

const char* ToString(NodeBeliefState state) {
  switch (state) {
    case NodeBeliefState::kAlive:
      return "alive";
    case NodeBeliefState::kSuspect:
      return "suspect";
    case NodeBeliefState::kDead:
      return "dead";
  }
  return "?";
}

namespace {

// Independent draw streams per message class, so enabling (say) duplication
// never shifts the drop draws of an otherwise identical run.
constexpr uint64_t kStreamHeartbeatDrop = 1;
constexpr uint64_t kStreamHeartbeatJitter = 2;
constexpr uint64_t kStreamHeartbeatDup = 3;
constexpr uint64_t kStreamHeartbeatDupJitter = 4;
constexpr uint64_t kStreamHeartbeatReorder = 5;
constexpr uint64_t kStreamCommandDrop = 6;
constexpr uint64_t kStreamCommandDup = 7;

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ControlPlane::ControlPlane(const Cluster& cluster, const CommsParams& params)
    : cluster_(cluster), params_(params) {
  active_ = params_.enabled && !params_.oracle();
  const int n = cluster_.num_nodes();
  view_.nodes.resize(n);
  down_mask_.assign(n, 0);
  up_.assign(n, 1);
  boot_.assign(n, 1);
  agent_epoch_.assign(n, 0);
  next_seq_.assign(n, 1);  // seq 0 is the registration beat at t = 0
  down_since_.assign(n, -1);
  last_arrival_.assign(n, 0);
  ema_gap_.assign(
      n, static_cast<double>(std::max<SimDuration>(
             1, params_.detector.heartbeat_period)));
  in_flight_.resize(n);
  cmd_seq_.assign(n, 0);
  reboot_flag_.assign(n, 0);
  for (NodeView& node : view_.nodes) {
    node.seen_boot = 1;
  }
}

uint64_t ControlPlane::Mix(NodeId node, uint64_t stream, uint64_t seq) const {
  uint64_t h = SplitMix64(seq);
  h = SplitMix64(h ^ (static_cast<uint64_t>(node) * 0x9ddfea08eb382d69ULL));
  h = SplitMix64(h ^ (stream * 0xc2b2ae3d27d4eb4fULL));
  return SplitMix64(h ^ params_.seed);
}

double ControlPlane::UnitDraw(NodeId node, uint64_t stream,
                              uint64_t seq) const {
  // 53 mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Mix(node, stream, seq) >> 11) *
         (1.0 / 9007199254740992.0);
}

bool ControlPlane::LinkUp(NodeId node, SimTime now) const {
  for (const CommsPartitionEvent& part : params_.partitions) {
    if (now < part.at || now >= part.recover_at) {
      continue;
    }
    if (part.node == node ||
        (part.rack >= 0 && cluster_.node(node).rack == part.rack)) {
      return false;
    }
  }
  return true;
}

void ControlPlane::PumpHeartbeats(NodeId node, SimTime now) {
  const MessageFaultParams& msg = params_.message;
  const SimDuration period =
      std::max<SimDuration>(1, params_.detector.heartbeat_period);
  if (up_[node]) {
    while (next_seq_[node] * period <= now) {
      const int64_t seq = next_seq_[node]++;
      const SimTime sent = seq * period;
      ++counters_.heartbeats_sent;
      if (!LinkUp(node, sent)) {
        ++counters_.heartbeats_dropped;
        continue;
      }
      if (msg.drop_prob > 0.0 &&
          UnitDraw(node, kStreamHeartbeatDrop, seq) < msg.drop_prob) {
        ++counters_.heartbeats_dropped;
        continue;
      }
      SimTime arrive = sent + msg.delay;
      if (msg.delay_jitter > 0) {
        arrive += static_cast<SimDuration>(
            Mix(node, kStreamHeartbeatJitter, seq) %
            static_cast<uint64_t>(msg.delay_jitter + 1));
      }
      if (msg.reorder_prob > 0.0 &&
          UnitDraw(node, kStreamHeartbeatReorder, seq) < msg.reorder_prob) {
        // A late outlier: pushed past at least one successor's arrival.
        arrive += (msg.delay_jitter > 0 ? msg.delay_jitter : period) + 1;
      }
      in_flight_[node].push_back({arrive, sent, boot_[node]});
      if (msg.dup_prob > 0.0 &&
          UnitDraw(node, kStreamHeartbeatDup, seq) < msg.dup_prob) {
        ++counters_.heartbeats_duplicated;
        SimTime dup_arrive = sent + msg.delay;
        if (msg.delay_jitter > 0) {
          dup_arrive += static_cast<SimDuration>(
              Mix(node, kStreamHeartbeatDupJitter, seq) %
              static_cast<uint64_t>(msg.delay_jitter + 1));
        }
        in_flight_[node].push_back({dup_arrive, sent, boot_[node]});
      }
    }
  }
  // Fold everything that has arrived by `now` into the believed view.
  std::vector<PendingHeartbeat>& queue = in_flight_[node];
  std::sort(queue.begin(), queue.end(),
            [](const PendingHeartbeat& a, const PendingHeartbeat& b) {
              return a.arrive != b.arrive ? a.arrive < b.arrive
                                          : a.sent < b.sent;
            });
  NodeView& nv = view_.nodes[node];
  size_t kept = 0;
  for (const PendingHeartbeat& hb : queue) {
    if (hb.arrive > now) {
      queue[kept++] = hb;
      continue;
    }
    if (hb.sent < nv.last_heard) {
      ++counters_.heartbeats_reordered;
    } else {
      nv.last_heard = hb.sent;
    }
    if (hb.arrive > last_arrival_[node]) {
      const double gap = static_cast<double>(hb.arrive - last_arrival_[node]);
      ema_gap_[node] = 0.8 * ema_gap_[node] + 0.2 * gap;
      last_arrival_[node] = hb.arrive;
    }
    if (hb.boot > nv.seen_boot) {
      nv.seen_boot = hb.boot;
      reboot_flag_[node] = 1;
    }
  }
  queue.resize(kept);
}

void ControlPlane::NodeDown(NodeId node, SimTime now) {
  if (!active_) {
    return;
  }
  // Beats sent before the failure instant still exist (and may still be in
  // flight); evaluate them before marking the agent gone.
  PumpHeartbeats(node, now);
  up_[node] = 0;
  down_since_[node] = now;
}

void ControlPlane::NodeUp(NodeId node, SimTime now) {
  if (!active_) {
    return;
  }
  up_[node] = 1;
  ++boot_[node];  // new agent incarnation: heartbeats advertise the reboot
  down_since_[node] = -1;
  const SimDuration period =
      std::max<SimDuration>(1, params_.detector.heartbeat_period);
  // No beats were sent while down; resume strictly after the recovery.
  next_seq_[node] = now / period + 1;
}

ControlPlane::Verdict ControlPlane::Evaluate(SimTime now, int64_t cycle) {
  Verdict verdict;
  if (!active_) {
    return verdict;
  }
  const DetectorParams& det = params_.detector;
  const SimDuration dead_timeout = det.effective_dead_timeout();
  const int n = cluster_.num_nodes();
  for (NodeId node = 0; node < n; ++node) {
    PumpHeartbeats(node, now);
    NodeView& nv = view_.nodes[node];
    const SimTime silence = now - last_arrival_[node];
    bool suspect;
    if (det.phi_threshold > 0.0) {
      const double threshold =
          std::max(static_cast<double>(det.suspect_timeout),
                   det.phi_threshold * ema_gap_[node]);
      suspect = static_cast<double>(silence) > threshold;
    } else {
      suspect = silence > det.suspect_timeout;
    }
    const bool dead = silence > dead_timeout;
    if (nv.state == NodeBeliefState::kAlive && suspect) {
      nv.state = dead ? NodeBeliefState::kDead : NodeBeliefState::kSuspect;
      down_mask_[node] = 1;
      verdict.newly_suspect.push_back(node);
      ++counters_.suspicions;
      if (up_[node]) {
        ++counters_.false_suspicions;
      } else if (down_since_[node] >= 0) {
        detection_latencies_.push_back(
            static_cast<double>(now - down_since_[node]));
      }
      if (dead) {
        verdict.newly_dead.push_back(node);
        ++counters_.dead_declared;
      }
      int64_t suppressed = 0;
      if (warn_limit_.ShouldLog(node, cycle, &suppressed)) {
        TETRI_LOG(kWarning)
            << "detector: node " << node << " -> " << ToString(nv.state)
            << " after " << silence << "s silence"
            << (up_[node] ? " [false suspicion]" : "")
            << LogRateLimiter::SuppressedSuffix(suppressed);
      }
    } else if (nv.state == NodeBeliefState::kSuspect && dead) {
      nv.state = NodeBeliefState::kDead;
      verdict.newly_dead.push_back(node);
      ++counters_.dead_declared;
    } else if (nv.state != NodeBeliefState::kAlive && !suspect) {
      nv.state = NodeBeliefState::kAlive;
      down_mask_[node] = 0;
      verdict.recovered.push_back(node);
      int64_t suppressed = 0;
      if (warn_limit_.ShouldLog(node, cycle, &suppressed)) {
        TETRI_LOG(kWarning)
            << "detector: node " << node << " -> alive (heartbeats resumed)"
            << LogRateLimiter::SuppressedSuffix(suppressed);
      }
    }
    if (reboot_flag_[node]) {
      reboot_flag_[node] = 0;
      verdict.rebooted.push_back(node);
    }
    if (nv.state == NodeBeliefState::kAlive && up_[node] &&
        LinkUp(node, now) && agent_epoch_[node] < nv.fence_epoch) {
      verdict.reconcilable.push_back(node);
    }
  }
  return verdict;
}

uint64_t ControlPlane::FenceNode(NodeId node) {
  return ++view_.nodes[node].fence_epoch;
}

void ControlPlane::AgentAdoptEpoch(NodeId node) {
  agent_epoch_[node] = view_.nodes[node].fence_epoch;
}

std::map<NodeId, uint64_t> ControlPlane::ExportFenceEpochs() const {
  std::map<NodeId, uint64_t> epochs;
  for (NodeId node = 0; node < static_cast<NodeId>(view_.nodes.size());
       ++node) {
    if (view_.nodes[node].fence_epoch > 0) {
      epochs[node] = view_.nodes[node].fence_epoch;
    }
  }
  return epochs;
}

void ControlPlane::RestoreFenceEpochs(
    const std::map<NodeId, uint64_t>& epochs) {
  for (const auto& [node, epoch] : epochs) {
    if (node < 0 || node >= static_cast<NodeId>(view_.nodes.size())) {
      continue;
    }
    view_.nodes[node].fence_epoch =
        std::max(view_.nodes[node].fence_epoch, epoch);
  }
}

bool ControlPlane::DeliverCommand(NodeId node, SimTime now) {
  if (!active_) {
    return true;
  }
  const int64_t seq = cmd_seq_[node]++;
  if (!up_[node] || !LinkUp(node, now)) {
    ++counters_.commands_dropped;
    return false;
  }
  const MessageFaultParams& msg = params_.message;
  if (msg.drop_prob > 0.0 &&
      UnitDraw(node, kStreamCommandDrop, seq) < msg.drop_prob) {
    ++counters_.commands_dropped;
    return false;
  }
  if (msg.dup_prob > 0.0 &&
      UnitDraw(node, kStreamCommandDup, seq) < msg.dup_prob) {
    // The duplicate copy reaches an agent that already executed this
    // command; its epoch/sequence check rejects it idempotently.
    ++counters_.stale_command_rejects;
  }
  return true;
}

}  // namespace tetrisched
