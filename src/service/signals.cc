#include "src/service/signals.h"

#include <csignal>
#include <unistd.h>

#include <atomic>

namespace tetrisched {
namespace {

std::atomic<int> g_pipe_fd{-1};
std::atomic<int> g_last_signal{0};

void TerminationHandler(int signo) {
  g_last_signal.store(signo, std::memory_order_relaxed);
  // A second delivery should kill us for real: drop back to SIG_DFL now.
  std::signal(signo, SIG_DFL);
  int fd = g_pipe_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    unsigned char byte = static_cast<unsigned char>(signo);
    [[maybe_unused]] ssize_t n = ::write(fd, &byte, 1);
  }
}

}  // namespace

bool InstallTerminationSignalHandlers(int pipe_write_fd) {
  g_pipe_fd.store(pipe_write_fd, std::memory_order_relaxed);
  g_last_signal.store(0, std::memory_order_relaxed);
  struct sigaction action {};
  action.sa_handler = TerminationHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  return ::sigaction(SIGINT, &action, nullptr) == 0 &&
         ::sigaction(SIGTERM, &action, nullptr) == 0;
}

void RestoreDefaultSignalHandlers() {
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  g_pipe_fd.store(-1, std::memory_order_relaxed);
}

int LastTerminationSignal() {
  return g_last_signal.load(std::memory_order_relaxed);
}

int ConsumeTerminationSignal() {
  return g_last_signal.exchange(0, std::memory_order_relaxed);
}

}  // namespace tetrisched
