#include "src/service/daemon.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>

#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/core/plan_check.h"
#include "src/obs/explain.h"
#include "src/obs/provenance.h"
#include "src/service/jobspec.h"
#include "src/service/signals.h"

namespace tetrisched {

namespace {

using SteadyClock = std::chrono::steady_clock;

double MsSince(SteadyClock::time_point start) {
  return std::chrono::duration<double, std::milli>(SteadyClock::now() - start)
      .count();
}

// PersistenceManager owns its storage; the daemon's storage must outlive
// restarts (the whole point of the journal), so hand the manager a
// non-owning forwarder instead.
class ForwardingStorage : public JournalStorage {
 public:
  explicit ForwardingStorage(JournalStorage* target) : target_(target) {}
  void AppendJournal(std::string_view bytes) override {
    target_->AppendJournal(bytes);
  }
  std::string ReadJournal() const override { return target_->ReadJournal(); }
  void TruncateJournal() override { target_->TruncateJournal(); }
  void WriteSnapshot(std::string_view bytes) override {
    target_->WriteSnapshot(bytes);
  }
  std::string ReadSnapshot() const override {
    return target_->ReadSnapshot();
  }

 private:
  JournalStorage* target_;
};

struct ServiceInstruments {
  Counter* admitted;
  Counter* rejected;
  Counter* completed;
  Counter* dropped;
  Counter* cancelled;
  Counter* requests;
  Counter* frames;
  Counter* resyncs;
  Counter* oversized;
  Gauge* inflight;
  Gauge* connections;
  Histogram* request_ms;
};

ServiceInstruments& Instruments() {
  static ServiceInstruments instruments = [] {
    MetricsRegistry& registry = GlobalMetrics();
    ServiceInstruments i;
    i.admitted = registry.GetCounter("tetrisched_service_admitted_total");
    i.rejected = registry.GetCounter("tetrisched_service_rejected_total");
    i.completed = registry.GetCounter("tetrisched_service_completed_total");
    i.dropped = registry.GetCounter("tetrisched_service_dropped_total");
    i.cancelled = registry.GetCounter("tetrisched_service_cancelled_total");
    i.requests = registry.GetCounter("tetrisched_service_requests_total");
    i.frames = registry.GetCounter("tetrisched_net_frames_total");
    i.resyncs = registry.GetCounter("tetrisched_net_resyncs_total");
    i.oversized = registry.GetCounter("tetrisched_net_oversized_total");
    i.inflight = registry.GetGauge("tetrisched_service_inflight_total");
    i.connections = registry.GetGauge("tetrisched_service_connections");
    i.request_ms = registry.GetHistogram("tetrisched_service_request_ms");
    return i;
  }();
  return instruments;
}

}  // namespace

const char* SchedulerDaemon::ToString(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kPending:
      return "pending";
    case JobState::kRunning:
      return "running";
    case JobState::kCompleted:
      return "completed";
    case JobState::kDropped:
      return "dropped";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "?";
}

SchedulerDaemon::SchedulerDaemon(DaemonOptions options)
    : options_([&options] {
        // The cycle budget defaults to the real cycle period so the solver
        // cannot overrun the serving cadence (DESIGN.md §13 reuse).
        if (options.scheduler.budget.budget_seconds == 0.0) {
          options.scheduler.budget.budget_seconds =
              static_cast<double>(options.cycle_period_ms) / 1000.0;
        }
        options.admission.cycle_period_ms =
            std::max<int64_t>(1, options.cycle_period_ms);
        return options;
      }()),
      cluster_(MakeUniformCluster(options_.racks, options_.nodes_per_rack,
                                  options_.gpu_racks)),
      scheduler_(cluster_, options_.scheduler),
      rayon_(cluster_.num_nodes()),
      intake_(options_.admission) {
  if (options_.storage != nullptr) {
    PersistOptions persist_options;
    persist_options.snapshot_every = options_.snapshot_every;
    persist_ = std::make_unique<PersistenceManager>(
        std::make_unique<ForwardingStorage>(options_.storage),
        persist_options);
  }
  if (options_.enable_provenance) {
    ProvenanceRecorder::Global().Enable(options_.provenance_ring);
  }
}

SchedulerDaemon::~SchedulerDaemon() = default;

bool SchedulerDaemon::Start() {
  RecoverFromJournal();
  bool ok = true;
  if (!options_.unix_socket_path.empty()) {
    UniqueFd fd = ListenUnix(options_.unix_socket_path);
    if (fd.valid()) {
      int raw = fd.get();
      listeners_.push_back(std::move(fd));
      loop_.Add(raw, [this, raw](uint32_t) { OnListenerReadable(raw); });
    } else {
      ok = false;
    }
  }
  if (options_.tcp_port >= 0) {
    UniqueFd fd = ListenTcpLoopback(options_.tcp_port, &bound_tcp_port_);
    if (fd.valid()) {
      int raw = fd.get();
      listeners_.push_back(std::move(fd));
      loop_.Add(raw, [this, raw](uint32_t) { OnListenerReadable(raw); });
    } else {
      ok = false;
    }
  }
  PublishStatus();
  return ok;
}

void SchedulerDaemon::RecoverFromJournal() {
  if (persist_ == nullptr) {
    return;
  }
  RecoveryResult result = persist_->Recover();
  const RecoveredState& state = result.state;
  now_ = state.checkpoint_time;
  rayon_.Restore(state.rayon);
  if (!state.policy_state.empty()) {
    scheduler_.ImportDurableState(state.policy_state);
  }
  JobId max_id = 0;
  for (const auto& [job_id, spec_json] : state.service_jobs) {
    JsonValue spec;
    std::string error;
    if (!JsonParse(spec_json, &spec, &error)) {
      TETRI_LOG(kWarning) << "recovery: undecodable job spec for job "
                          << job_id << ": " << error;
      continue;
    }
    JobEntry entry;
    if (!JobSpecFromJson(spec, now_, &entry.job, &error)) {
      TETRI_LOG(kWarning) << "recovery: invalid job spec for job " << job_id
                          << ": " << error;
      continue;
    }
    entry.job.id = job_id;
    entry.client = "(recovered)";
    entry.accepted_at = entry.job.submit;
    max_id = std::max(max_id, job_id);
    // Reservation class survives via the journaled kSloUpdate records.
    if (auto slo = state.slo.find(job_id); slo != state.slo.end()) {
      entry.job.slo_class = static_cast<SloClass>(slo->second.slo_class);
      entry.job.reservation = slo->second.reservation;
    }
    if (auto gang = state.running.find(job_id);
        gang != state.running.end()) {
      // Adopt the journaled running gang: the daemon persists its RM view,
      // and (as in the paper's YARN deployment) running work survives a
      // scheduler restart.
      entry.state = JobState::kRunning;
      entry.start = gang->second.start;
      entry.placement = gang->second.counts;
      // Belief == truth in service mode, so the journaled expected end is
      // the completion instant; infer placement quality from it.
      entry.end = gang->second.expected_end;
      entry.preferred = gang->second.est_duration <= entry.job.actual_runtime;
      ++running_count_;
      ++recovered_running_;
    } else {
      entry.state = JobState::kPending;
      pending_.push_back(job_id);
      ++recovered_pending_;
    }
    jobs_.emplace(job_id, std::move(entry));
  }
  next_job_id_ = std::max<JobId>(next_job_id_, max_id + 1);
  if (result.replayed > 0 || result.snapshot_loaded) {
    TETRI_LOG(kInfo) << "tetrischedd recovered at t=" << now_ << ": "
                     << recovered_pending_ << " pending + "
                     << recovered_running_ << " running jobs (replayed "
                     << result.replayed << " records, dropped "
                     << result.dropped << ")";
  }
  if (ProvenanceRecorder::Global().enabled()) {
    ProvenanceRecord record;
    record.kind = ProvKind::kRecovery;
    record.time = now_;
    record.value = static_cast<double>(result.replayed);
    ProvenanceRecorder::Global().Record(std::move(record));
  }
}

RecoveredState SchedulerDaemon::BuildRecoveredState() const {
  RecoveredState state;
  state.checkpoint_time = now_;
  state.rayon = rayon_.ExportState();
  state.policy_state = scheduler_.ExportDurableState();
  for (const auto& [job_id, entry] : jobs_) {
    switch (entry.state) {
      case JobState::kQueued:
      case JobState::kPending:
        state.service_jobs[job_id] = JobSpecToJson(entry.job);
        break;
      case JobState::kRunning: {
        state.service_jobs[job_id] = JobSpecToJson(entry.job);
        GangRecord gang;
        gang.job = job_id;
        gang.counts = entry.placement;
        gang.start = entry.start;
        gang.expected_end = entry.end;
        gang.est_duration = entry.end - entry.start;
        state.running[job_id] = gang;
        break;
      }
      case JobState::kCompleted:
      case JobState::kDropped:
      case JobState::kCancelled:
        state.finished.insert(job_id);
        break;
    }
    if (entry.job.is_slo()) {
      state.slo[job_id] =
          SloRecord{job_id, static_cast<uint8_t>(entry.job.slo_class),
                    entry.job.reservation};
    }
  }
  return state;
}

void SchedulerDaemon::FinalCheckpoint() {
  if (persist_ == nullptr) {
    return;
  }
  persist_->Checkpoint(BuildRecoveredState());
  TETRI_LOG(kInfo) << "tetrischedd final checkpoint at t=" << now_ << " ("
                   << jobs_.size() << " jobs tracked)";
}

void SchedulerDaemon::Journal(const DurableEvent& event) {
  if (persist_ != nullptr) {
    persist_->Append(event);
  }
}

// --- serving ---------------------------------------------------------------

void SchedulerDaemon::OnListenerReadable(int listener_fd) {
  for (;;) {
    UniqueFd fd = AcceptOne(listener_fd);
    if (!fd.valid()) {
      break;
    }
    AdoptConnection(std::move(fd));
  }
}

void SchedulerDaemon::AdoptConnection(UniqueFd fd) {
  int64_t id = next_connection_id_++;
  auto connection = std::make_unique<FramedConnection>(
      std::move(fd), options_.max_frame_bytes, id);
  int raw = connection->fd();
  connections_.emplace(id, std::move(connection));
  loop_.Add(raw, [this, id](uint32_t events) {
    OnConnectionEvent(id, events);
  });
  Instruments().connections->Set(static_cast<double>(connections_.size()));
}

void SchedulerDaemon::AdoptPendingFds() {
  std::vector<UniqueFd> adopted;
  {
    std::lock_guard<std::mutex> lock(adopted_mu_);
    adopted.swap(adopted_fds_);
  }
  for (UniqueFd& fd : adopted) {
    AdoptConnection(std::move(fd));
  }
}

void SchedulerDaemon::AddConnectionFd(int fd) {
  {
    std::lock_guard<std::mutex> lock(adopted_mu_);
    adopted_fds_.emplace_back(fd);
  }
  loop_.Wakeup();
}

void SchedulerDaemon::CloseConnection(int64_t connection_id) {
  auto it = connections_.find(connection_id);
  if (it == connections_.end()) {
    return;
  }
  loop_.Remove(it->second->fd());
  connections_.erase(it);
  Instruments().connections->Set(static_cast<double>(connections_.size()));
}

void SchedulerDaemon::OnConnectionEvent(int64_t connection_id,
                                        uint32_t events) {
  auto it = connections_.find(connection_id);
  if (it == connections_.end()) {
    return;
  }
  FramedConnection& connection = *it->second;
  bool open = true;
  if (events & (EventLoop::kReadable | EventLoop::kError)) {
    FrameDecoder& decoder = connection.decoder();
    int64_t frames_before = decoder.frames_decoded();
    int64_t resyncs_before = decoder.resyncs();
    int64_t oversized_before = decoder.oversized_rejected();
    std::vector<std::string> frames;
    open = connection.ReadInto(&frames);
    Instruments().frames->Increment(decoder.frames_decoded() - frames_before);
    Instruments().resyncs->Increment(decoder.resyncs() - resyncs_before);
    Instruments().oversized->Increment(decoder.oversized_rejected() -
                                       oversized_before);
    for (const std::string& payload : frames) {
      std::string response = HandleRequest(connection_id, payload);
      if (!connection.SendFrame(response)) {
        open = false;
        break;
      }
    }
  }
  if (open && (events & EventLoop::kWritable)) {
    open = connection.FlushWrites();
  }
  if (!open || connection.closed()) {
    CloseConnection(connection_id);
    return;
  }
  loop_.SetWriteInterest(connection.fd(), connection.wants_write());
}

void SchedulerDaemon::EvictIdleConnections() {
  if (options_.idle_timeout_ms <= 0) {
    return;
  }
  auto deadline = SteadyClock::now() -
                  std::chrono::milliseconds(options_.idle_timeout_ms);
  std::vector<int64_t> evict;
  for (const auto& [id, connection] : connections_) {
    if (connection->last_activity() < deadline) {
      evict.push_back(id);
    }
  }
  for (int64_t id : evict) {
    TETRI_LOG(kInfo) << "evicting idle connection " << id;
    CloseConnection(id);
  }
}

void SchedulerDaemon::Run() {
  auto next_cycle = SteadyClock::now();
  while (!stopped_) {
    auto now = SteadyClock::now();
    int timeout_ms = 0;
    if (now < next_cycle) {
      timeout_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(next_cycle -
                                                                now)
              .count()) +
          1;
    }
    loop_.PollOnce(timeout_ms);
    AdoptPendingFds();
    if (int signo = ConsumeTerminationSignal(); signo != 0) {
      TETRI_LOG(kInfo) << "tetrischedd caught signal " << signo
                       << "; draining and checkpointing";
      stop_requested_.store(true, std::memory_order_relaxed);
    }
    if (drain_requested_.exchange(false)) {
      draining_ = true;
    }
    if (SteadyClock::now() >= next_cycle) {
      RunCycle();
      next_cycle += std::chrono::milliseconds(options_.cycle_period_ms);
      // Never schedule into the past (a slow cycle should not trigger a
      // burst of catch-up cycles: the virtual clock advances per cycle run,
      // not per wall period).
      if (next_cycle < SteadyClock::now()) {
        next_cycle = SteadyClock::now() +
                     std::chrono::milliseconds(options_.cycle_period_ms);
      }
      EvictIdleConnections();
    }
    if (stop_requested_.load(std::memory_order_relaxed)) {
      stopped_ = true;
    }
  }
  // Best-effort flush of queued responses (shutdown acks).
  for (auto& [id, connection] : connections_) {
    connection->FlushWrites();
  }
  FinalCheckpoint();
  PublishStatus();
  listeners_.clear();
  if (!options_.unix_socket_path.empty()) {
    // A stale socket file would make the next daemon's clients connect to
    // nothing; remove it now that no listener holds it.
    ::unlink(options_.unix_socket_path.c_str());
  }
}

void SchedulerDaemon::RequestStop() {
  stop_requested_.store(true, std::memory_order_relaxed);
  loop_.Wakeup();
}

void SchedulerDaemon::RequestDrain() {
  drain_requested_.store(true, std::memory_order_relaxed);
  loop_.Wakeup();
}

// --- cycle driver ----------------------------------------------------------

void SchedulerDaemon::CompleteFinishedGangs() {
  for (auto& [job_id, entry] : jobs_) {
    if (entry.state != JobState::kRunning || entry.end > now_) {
      continue;
    }
    entry.state = JobState::kCompleted;
    --running_count_;
    ++completed_;
    Instruments().completed->Increment();
    DurableEvent event;
    event.kind = DurableEventKind::kGangComplete;
    event.time = now_;
    event.job = job_id;
    event.preferred = entry.preferred;
    event.runtime = entry.end - entry.start;
    Journal(event);
    if (ProvenanceRecorder::Global().enabled()) {
      ProvenanceRecord record;
      record.kind = ProvKind::kCompleted;
      record.time = now_;
      record.job = job_id;
      record.label = entry.preferred ? "preferred" : "fallback";
      ProvenanceRecorder::Global().Record(std::move(record));
    }
  }
}

void SchedulerDaemon::DrainIntakeIntoPending() {
  int space = options_.max_pending_jobs - static_cast<int>(pending_.size());
  if (space <= 0) {
    return;
  }
  int budget = std::min(space, options_.admission.admit_per_cycle);
  for (QueuedSubmission& submission : intake_.DrainRoundRobin(budget)) {
    JobId job_id = submission.job.id;
    auto it = jobs_.find(job_id);
    if (it == jobs_.end() || it->second.state != JobState::kQueued) {
      continue;  // cancelled while queued
    }
    JobEntry& entry = it->second;
    // Rayon admission for reservation seekers, with the simulator's
    // conservative fallback-runtime estimate.
    if (entry.job.wants_reservation) {
      RdlRequest request;
      request.requester = job_id;
      request.k = entry.job.k;
      request.duration = entry.job.EstimatedRuntime(/*preferred=*/false);
      request.window_start = now_;
      request.window_end = entry.job.deadline;
      ReservationDecision decision = rayon_.Submit(request);
      DurableEvent rayon_event;
      rayon_event.time = now_;
      rayon_event.job = job_id;
      if (decision.accepted) {
        entry.job.slo_class = SloClass::kSloAccepted;
        entry.job.reservation = decision.interval;
        rayon_event.kind = DurableEventKind::kRayonAdmit;
        rayon_event.k = request.k;
        rayon_event.interval = decision.interval;
      } else {
        entry.job.slo_class = SloClass::kSloUnreserved;
        rayon_event.kind = DurableEventKind::kRayonReject;
      }
      Journal(rayon_event);
      DurableEvent slo_event;
      slo_event.kind = DurableEventKind::kSloUpdate;
      slo_event.time = now_;
      slo_event.job = job_id;
      slo_event.slo_class = static_cast<uint8_t>(entry.job.slo_class);
      slo_event.interval = entry.job.reservation;
      Journal(slo_event);
    } else if (entry.job.deadline != kTimeNever) {
      entry.job.slo_class = SloClass::kSloUnreserved;
    }
    entry.state = JobState::kPending;
    pending_.push_back(job_id);
    DurableEvent event;
    event.kind = DurableEventKind::kServiceSubmit;
    event.time = now_;
    event.job = job_id;
    event.blob = JobSpecToJson(entry.job);
    Journal(event);
    if (ProvenanceRecorder::Global().enabled()) {
      ProvenanceRecord record;
      record.kind = ProvKind::kArrival;
      record.time = now_;
      record.job = job_id;
      record.label = tetrisched::ToString(entry.job.type);
      ProvenanceRecorder::Global().Record(std::move(record));
    }
  }
}

void SchedulerDaemon::DropJob(JobId job, JobState reason, const char* why) {
  auto it = jobs_.find(job);
  if (it == jobs_.end()) {
    return;
  }
  JobEntry& entry = it->second;
  if (entry.state == JobState::kRunning) {
    --running_count_;
  }
  entry.state = reason;
  entry.end = now_;
  if (reason == JobState::kCancelled) {
    ++cancelled_;
    Instruments().cancelled->Increment();
  } else {
    ++dropped_;
    Instruments().dropped->Increment();
  }
  pending_.erase(std::remove(pending_.begin(), pending_.end(), job),
                 pending_.end());
  DurableEvent event;
  event.kind = DurableEventKind::kJobDropped;
  event.time = now_;
  event.job = job;
  Journal(event);
  if (ProvenanceRecorder::Global().enabled()) {
    ProvenanceRecord record;
    record.kind = ProvKind::kDropped;
    record.time = now_;
    record.job = job;
    record.label = why;
    ProvenanceRecorder::Global().Record(std::move(record));
  }
}

void SchedulerDaemon::ApplyDecision(const SchedulerPolicy::Decision& decision) {
  // Two-phase commit (DESIGN.md §11): intent first, then per-mutation
  // records, then the applied marker with the policy's durable state.
  DurableEvent intent;
  intent.kind = DurableEventKind::kCommitIntent;
  intent.time = now_;
  for (const Placement& placement : decision.start_now) {
    GangRecord gang;
    gang.job = placement.job;
    gang.counts = placement.counts;
    gang.start = now_;
    gang.expected_end = now_ + placement.est_duration;
    gang.est_duration = placement.est_duration;
    intent.gangs.push_back(std::move(gang));
  }
  intent.drops = decision.drop;
  Journal(intent);

  for (const Placement& placement : decision.start_now) {
    auto it = jobs_.find(placement.job);
    if (it == jobs_.end() || it->second.state != JobState::kPending) {
      continue;
    }
    JobEntry& entry = it->second;
    entry.state = JobState::kRunning;
    entry.start = now_;
    entry.preferred = placement.preferred_belief;
    entry.placement = placement.counts;
    // Belief == truth in service mode (exact estimates), so the actual end
    // is the believed end.
    entry.end = now_ + entry.job.ActualRuntime(entry.preferred);
    ++running_count_;
    pending_.erase(
        std::remove(pending_.begin(), pending_.end(), placement.job),
        pending_.end());
    DurableEvent event;
    event.kind = DurableEventKind::kGangLaunch;
    event.time = now_;
    event.job = placement.job;
    event.gang.job = placement.job;
    event.gang.counts = placement.counts;
    event.gang.start = now_;
    event.gang.expected_end = now_ + placement.est_duration;
    event.gang.est_duration = placement.est_duration;
    Journal(event);
    if (ProvenanceRecorder::Global().enabled()) {
      ProvenanceRecord record;
      record.kind = ProvKind::kStart;
      record.time = now_;
      record.job = placement.job;
      record.label = entry.preferred ? "preferred" : "fallback";
      record.value = placement.value;
      ProvenanceRecorder::Global().Record(std::move(record));
    }
  }
  for (JobId job : decision.drop) {
    DropJob(job, JobState::kDropped, "deadline unreachable");
  }

  DurableEvent applied;
  applied.kind = DurableEventKind::kCommitApplied;
  applied.time = now_;
  applied.blob = scheduler_.ExportDurableState();
  Journal(applied);
}

void SchedulerDaemon::RunCycle() {
  if (cycles_ > 0) {
    now_ += options_.sim_seconds_per_cycle;
  }
  ++cycles_;
  CompleteFinishedGangs();
  if (!draining_) {
    DrainIntakeIntoPending();
  }

  std::vector<const Job*> pending_jobs;
  pending_jobs.reserve(pending_.size());
  for (JobId job : pending_) {
    auto it = jobs_.find(job);
    if (it != jobs_.end() && it->second.state == JobState::kPending) {
      pending_jobs.push_back(&it->second.job);
    }
  }
  std::vector<RunningHold> running;
  for (const auto& [job_id, entry] : jobs_) {
    if (entry.state != JobState::kRunning) {
      continue;
    }
    RunningHold hold;
    hold.job = job_id;
    hold.slo_class = entry.job.slo_class;
    hold.start = entry.start;
    hold.reservation_end = entry.job.slo_class == SloClass::kSloAccepted
                               ? entry.job.reservation.end
                               : kTimeNever;
    hold.counts = entry.placement;
    hold.expected_end = entry.end;
    running.push_back(std::move(hold));
  }

  if (!pending_jobs.empty() || !running.empty()) {
    SchedulerPolicy::Decision decision =
        scheduler_.OnCycle(now_, pending_jobs, running);
    // Defense in depth: the scheduler validates internally, but the
    // service revalidates before committing anything to its ledger (the
    // acceptance bar: zero violations across restarts).
    std::vector<PlanViolation> violations =
        ValidatePlan(cluster_, pending_jobs, running, decision.start_now);
    if (!violations.empty()) {
      validator_violations_ += static_cast<int64_t>(violations.size());
      for (const PlanViolation& violation : violations) {
        TETRI_LOG(kWarning) << "service plan violation (job "
                            << violation.job << "): " << violation.reason;
      }
      decision.start_now.clear();  // skip the cycle; replan next period
    }
    ApplyDecision(decision);
  }

  if (persist_ != nullptr) {
    persist_->MaybeCheckpoint(BuildRecoveredState());
  }
  Instruments().inflight->Set(static_cast<double>(
      intake_.size() + static_cast<int64_t>(pending_.size()) +
      running_count_));
  PublishStatus();
}

// --- protocol --------------------------------------------------------------

DaemonStatus SchedulerDaemon::UnlockedStatus() const {
  DaemonStatus status;
  status.now = now_;
  status.cycles = cycles_;
  status.queued = intake_.size();
  status.pending = static_cast<int64_t>(pending_.size());
  status.running = running_count_;
  status.completed = completed_;
  status.dropped = dropped_;
  status.cancelled = cancelled_;
  status.admitted_total = admitted_total_;
  status.rejected_total = rejected_total_;
  status.validator_violations = validator_violations_;
  status.draining = draining_;
  status.drained = draining_ && status.queued == 0 && status.pending == 0 &&
                   status.running == 0;
  return status;
}

void SchedulerDaemon::PublishStatus() {
  std::lock_guard<std::mutex> lock(status_mu_);
  published_status_ = UnlockedStatus();
}

DaemonStatus SchedulerDaemon::StatusSnapshot() const {
  std::lock_guard<std::mutex> lock(status_mu_);
  return published_status_;
}

JsonObj SchedulerDaemon::JobStatusJson(const JobEntry& entry) const {
  JsonObj obj;
  obj.Field("job", entry.job.id);
  obj.Field("state", ToString(entry.state));
  obj.Field("client", entry.client);
  obj.Field("type", tetrisched::ToString(entry.job.type));
  obj.Field("slo_class", tetrisched::ToString(entry.job.slo_class));
  obj.Field("k", entry.job.k);
  obj.Field("accepted_at", entry.accepted_at);
  if (entry.job.deadline != kTimeNever) {
    obj.Field("deadline", entry.job.deadline);
  }
  if (entry.start >= 0) {
    obj.Field("start", entry.start);
    obj.Field("preferred", entry.preferred);
  }
  if (entry.end >= 0 && entry.state != JobState::kRunning) {
    obj.Field("end", entry.end);
  } else if (entry.state == JobState::kRunning) {
    obj.Field("expected_end", entry.end);
  }
  if (!entry.placement.empty()) {
    JsonObj placement;
    for (const auto& [partition, count] : entry.placement) {
      placement.Field("p" + std::to_string(partition), count);
    }
    obj.FieldRaw("placement", placement.str());
  }
  return obj;
}

std::string SchedulerDaemon::HandleSubmit(const ServiceRequest& request,
                                          const std::string& client,
                                          int64_t connection_id) {
  if (draining_ || stop_requested_.load(std::memory_order_relaxed)) {
    ++rejected_total_;
    Instruments().rejected->Increment();
    return ErrorResponse(request.req_id, kErrDraining,
                         "daemon is draining; submissions are closed");
  }
  Job job;
  std::string error;
  const JsonValue* strl = request.body.Find("strl");
  if (strl != nullptr && strl->is_string()) {
    if (!JobFromStrlText(strl->string, now_, cluster_.num_partitions(), &job,
                         &error)) {
      return ErrorResponse(request.req_id, kErrBadRequest, error);
    }
    // Optional overrides alongside raw STRL (deadline_in, reservation).
    if (const JsonValue* rel = request.body.Find("deadline_in");
        rel != nullptr && rel->is_number() && rel->number > 0) {
      job.deadline = now_ + static_cast<SimTime>(rel->number);
    }
    job.wants_reservation = request.body.BoolOr("reservation", false) &&
                            job.deadline != kTimeNever;
  } else if (const JsonValue* spec = request.body.Find("job");
             spec != nullptr) {
    if (!JobSpecFromJson(*spec, now_, &job, &error)) {
      return ErrorResponse(request.req_id, kErrBadRequest, error);
    }
  } else {
    return ErrorResponse(request.req_id, kErrBadRequest,
                         "submit needs a \"job\" object or \"strl\" text");
  }
  job.id = next_job_id_++;
  job.submit = now_;

  QueuedSubmission submission;
  submission.job = job;
  submission.client = client;
  submission.connection_id = connection_id;
  AdmissionVerdict verdict = intake_.Offer(std::move(submission));
  if (!verdict.admitted) {
    ++rejected_total_;
    Instruments().rejected->Increment();
    --next_job_id_;  // id was never exposed; reuse it
    return ErrorResponse(request.req_id, kErrOverloaded, verdict.reason,
                         verdict.retry_after_ms);
  }
  JobEntry entry;
  entry.job = job;
  entry.state = JobState::kQueued;
  entry.client = client;
  entry.accepted_at = now_;
  jobs_.emplace(job.id, std::move(entry));
  ++admitted_total_;
  Instruments().admitted->Increment();
  Instruments().inflight->Set(static_cast<double>(
      intake_.size() + static_cast<int64_t>(pending_.size()) +
      running_count_));

  JsonObj extra;
  extra.Field("job", job.id);
  extra.Field("state", "queued");
  extra.Field("queue_depth", intake_.size());
  return OkResponse(request.req_id, extra);
}

std::string SchedulerDaemon::HandleStatus(const ServiceRequest& request) {
  if (const JsonValue* job = request.body.Find("job");
      job != nullptr && job->is_number()) {
    auto it = jobs_.find(static_cast<JobId>(job->number));
    if (it == jobs_.end()) {
      return ErrorResponse(request.req_id, kErrNotFound,
                           "no such job " +
                               std::to_string(static_cast<JobId>(
                                   job->number)));
    }
    return OkResponse(request.req_id, JobStatusJson(it->second));
  }
  DaemonStatus status = UnlockedStatus();
  JsonObj extra;
  extra.Field("now", status.now);
  extra.Field("cycles", status.cycles);
  extra.Field("queued", status.queued);
  extra.Field("pending", status.pending);
  extra.Field("running", status.running);
  extra.Field("completed", status.completed);
  extra.Field("dropped", status.dropped);
  extra.Field("cancelled", status.cancelled);
  extra.Field("admitted_total", status.admitted_total);
  extra.Field("rejected_total", status.rejected_total);
  extra.Field("validator_violations", status.validator_violations);
  extra.Field("draining", status.draining);
  extra.Field("drained", status.drained);
  extra.Field("clients", intake_.active_clients());
  extra.Field("connections", static_cast<int64_t>(connections_.size()));
  extra.Field("effective_plan_ahead", scheduler_.effective_plan_ahead());
  return OkResponse(request.req_id, extra);
}

std::string SchedulerDaemon::HandleCancel(const ServiceRequest& request) {
  const JsonValue* job_field = request.body.Find("job");
  if (job_field == nullptr || !job_field->is_number()) {
    return ErrorResponse(request.req_id, kErrBadRequest,
                         "cancel needs a numeric \"job\"");
  }
  JobId job = static_cast<JobId>(job_field->number);
  auto it = jobs_.find(job);
  if (it == jobs_.end()) {
    return ErrorResponse(request.req_id, kErrNotFound,
                         "no such job " + std::to_string(job));
  }
  JobEntry& entry = it->second;
  switch (entry.state) {
    case JobState::kQueued:
      intake_.CancelJob(job);
      [[fallthrough]];
    case JobState::kPending:
    case JobState::kRunning:
      DropJob(job, JobState::kCancelled, "client cancel");
      break;
    case JobState::kCompleted:
    case JobState::kDropped:
    case JobState::kCancelled:
      return ErrorResponse(request.req_id, kErrConflict,
                           std::string("job already ") +
                               ToString(entry.state));
  }
  JsonObj extra;
  extra.Field("job", job);
  extra.Field("state", ToString(entry.state));
  return OkResponse(request.req_id, extra);
}

std::string SchedulerDaemon::HandleExplain(const ServiceRequest& request) {
  ProvenanceRecorder& recorder = ProvenanceRecorder::Global();
  if (!recorder.enabled()) {
    return ErrorResponse(request.req_id, kErrConflict,
                         "provenance recorder is disabled "
                         "(enable_provenance=false)");
  }
  ProvLog log = ParseProvenanceJsonl(recorder.ToJsonl());
  std::string report;
  if (const JsonValue* job = request.body.Find("job");
      job != nullptr && job->is_number()) {
    report = ExplainJob(log, static_cast<int64_t>(job->number));
  } else if (const JsonValue* cycle = request.body.Find("cycle");
             cycle != nullptr && cycle->is_number()) {
    report = ExplainCycle(log, static_cast<int64_t>(cycle->number));
  } else if (request.body.BoolOr("slo_misses", false)) {
    report = ExplainSloMisses(log);
  } else {
    report = ExplainSummary(log);
  }
  JsonObj extra;
  extra.Field("report", report);
  return OkResponse(request.req_id, extra);
}

std::string SchedulerDaemon::HandleMetrics(const ServiceRequest& request) {
  UpdateProcessMetrics();
  std::string format = request.body.StringOr("format", "json");
  JsonObj extra;
  if (format == "prom" || format == "prometheus") {
    extra.Field("format", "prom");
    extra.Field("metrics", GlobalMetrics().ToPrometheusText());
  } else if (format == "json") {
    extra.Field("format", "json");
    extra.FieldRaw("metrics", GlobalMetrics().ToJson());
  } else {
    return ErrorResponse(request.req_id, kErrBadRequest,
                         "unknown metrics format: " + format);
  }
  return OkResponse(request.req_id, extra);
}

std::string SchedulerDaemon::HandleRequest(int64_t connection_id,
                                           std::string_view payload) {
  auto started = SteadyClock::now();
  Instruments().requests->Increment();
  ServiceRequest request;
  std::string error_response;
  std::string response;
  if (!ParseServiceRequest(payload, &request, &error_response)) {
    response = std::move(error_response);
  } else {
    std::string client = request.client.empty()
                             ? "conn-" + std::to_string(connection_id)
                             : request.client;
    if (request.op == "submit") {
      response = HandleSubmit(request, client, connection_id);
    } else if (request.op == "status") {
      response = HandleStatus(request);
    } else if (request.op == "cancel") {
      response = HandleCancel(request);
    } else if (request.op == "explain") {
      response = HandleExplain(request);
    } else if (request.op == "metrics") {
      response = HandleMetrics(request);
    } else if (request.op == "drain") {
      draining_ = true;
      JsonObj extra;
      extra.Field("draining", true);
      response = OkResponse(request.req_id, extra);
    } else if (request.op == "shutdown") {
      stop_requested_.store(true, std::memory_order_relaxed);
      JsonObj extra;
      extra.Field("stopping", true);
      response = OkResponse(request.req_id, extra);
    } else {
      response = ErrorResponse(request.req_id, kErrUnknownOp,
                               "unknown op: " + request.op);
    }
  }
  Instruments().request_ms->Observe(MsSince(started));
  PublishStatus();
  return response;
}

}  // namespace tetrisched
