// Canonical JSON job specs for the service layer (DESIGN.md §16).
//
// The same codec serves three masters: client submissions (the `submit`
// request's "job" object), the kServiceSubmit journal blob a restarted
// daemon rebuilds its pending set from, and the `status` response. Two
// submission forms are accepted:
//
//   * strl_gen template — a JSON object naming the existing workload
//     vocabulary (type / k / runtime / slowdown / deadline_in /
//     reservation / preferred_partitions); the daemon expands it through
//     the STRL generator every cycle exactly like simulator jobs, and
//   * raw STRL text — validated with the textual parser; the job shape
//     (gang size, runtime, value partitions) is derived from the
//     expression's first leaf, with non-universal partition sets mapping
//     to a data-local preference. The service schedules *jobs*, so a STRL
//     submission is an entry template, not a literally-spliced expression.
//
// Deadlines are submitted relative ("deadline_in" seconds from acceptance)
// because clients do not share the daemon's virtual clock; the canonical
// journaled form stores the resolved absolute deadline.

#ifndef TETRISCHED_SERVICE_JOBSPEC_H_
#define TETRISCHED_SERVICE_JOBSPEC_H_

#include <string>
#include <string_view>

#include "src/common/json.h"
#include "src/core/job.h"

namespace tetrisched {

// Canonical JSON object for `job` (absolute deadline form).
std::string JobSpecToJson(const Job& job);

// Parses a job spec object. `now` resolves relative fields: submit defaults
// to now, "deadline_in" becomes now + deadline_in. On failure returns false
// and sets *error. The job id in the spec is honored when >= 0 (journal
// replay); submissions normally leave it unset and the daemon assigns one.
bool JobSpecFromJson(const JsonValue& spec, SimTime now, Job* job,
                     std::string* error);

// Derives a job template from STRL text (see file comment). `now` anchors
// the submit time. Returns false with *error on parse failure or an
// expression with no usable leaf.
bool JobFromStrlText(std::string_view strl_text, SimTime now,
                     int cluster_partitions, Job* job, std::string* error);

// Parses JobType names as emitted by ToString(JobType); also accepts
// "data_local"/"datalocal" for kDataLocal. Returns false on unknown names.
bool ParseJobType(std::string_view name, JobType* type);

}  // namespace tetrisched

#endif  // TETRISCHED_SERVICE_JOBSPEC_H_
