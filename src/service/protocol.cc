#include "src/service/protocol.h"

namespace tetrisched {

bool ParseServiceRequest(std::string_view payload, ServiceRequest* request,
                         std::string* error_response) {
  JsonValue doc;
  std::string parse_error;
  if (!JsonParse(payload, &doc, &parse_error)) {
    *error_response =
        ErrorResponse(-1, kErrBadRequest, "invalid JSON: " + parse_error);
    return false;
  }
  if (!doc.is_object()) {
    *error_response =
        ErrorResponse(-1, kErrBadRequest, "request must be a JSON object");
    return false;
  }
  request->req_id = doc.IntOr("id", -1);
  request->version = doc.IntOr("v", 0);
  if (request->version != kProtocolVersion) {
    *error_response = ErrorResponse(
        request->req_id, kErrBadVersion,
        "unsupported protocol version " + std::to_string(request->version) +
            " (daemon speaks v" + std::to_string(kProtocolVersion) + ")");
    return false;
  }
  request->op = doc.StringOr("op", "");
  if (request->op.empty()) {
    *error_response =
        ErrorResponse(request->req_id, kErrBadRequest, "missing op");
    return false;
  }
  request->client = doc.StringOr("client", "");
  request->body = std::move(doc);
  return true;
}

std::string OkResponse(int64_t req_id, const JsonObj& extra) {
  JsonObj obj;
  obj.Field("v", kProtocolVersion);
  obj.Field("id", req_id);
  obj.Field("ok", true);
  std::string out = obj.str();
  std::string extra_str = extra.str();
  if (extra_str.size() > 2) {  // non-empty object: splice its members
    out.pop_back();
    out += ",";
    out += extra_str.substr(1);
  }
  return out;
}

std::string ErrorResponse(int64_t req_id, std::string_view code,
                          std::string_view message, int64_t retry_after_ms) {
  JsonObj obj;
  obj.Field("v", kProtocolVersion);
  obj.Field("id", req_id);
  obj.Field("ok", false);
  obj.Field("error", code);
  obj.Field("message", message);
  if (retry_after_ms >= 0) {
    obj.Field("retry_after_ms", retry_after_ms);
  }
  return obj.str();
}

}  // namespace tetrisched
