#include "src/service/admission.h"

#include <algorithm>

namespace tetrisched {

AdmissionQueue::AdmissionQueue(AdmissionOptions options)
    : options_(options) {
  options_.max_queued = std::max(1, options_.max_queued);
  options_.admit_per_cycle = std::max(1, options_.admit_per_cycle);
  options_.cycle_period_ms = std::max<int64_t>(1, options_.cycle_period_ms);
}

int64_t AdmissionQueue::per_client_bound() const {
  // Count the offering client as active even before its first acceptance:
  // with one active client the bound is the whole queue, with n clients an
  // equal share (floored at 1 so a crowded queue still admits newcomers).
  int clients = std::max(1, active_clients());
  return std::max<int64_t>(1, options_.max_queued / clients);
}

int64_t AdmissionQueue::depth_of(const std::string& client) const {
  auto it = queues_.find(client);
  return it == queues_.end() ? 0
                             : static_cast<int64_t>(it->second.size());
}

AdmissionVerdict AdmissionQueue::Offer(QueuedSubmission submission) {
  AdmissionVerdict verdict;
  if (total_queued_ >= options_.max_queued) {
    verdict.reason = "intake queue full (" +
                     std::to_string(total_queued_) + "/" +
                     std::to_string(options_.max_queued) + ")";
    // Hint: the backlog drains admit_per_cycle per cycle.
    int64_t cycles_to_space =
        (total_queued_ + options_.admit_per_cycle) / options_.admit_per_cycle;
    verdict.retry_after_ms = cycles_to_space * options_.cycle_period_ms;
    return verdict;
  }
  int64_t depth = depth_of(submission.client);
  if (depth >= per_client_bound()) {
    verdict.reason = "client over fair-share bound (" +
                     std::to_string(depth) + "/" +
                     std::to_string(per_client_bound()) + " queued)";
    int64_t cycles_to_space =
        (depth + options_.admit_per_cycle) / options_.admit_per_cycle;
    verdict.retry_after_ms = cycles_to_space * options_.cycle_period_ms;
    return verdict;
  }
  queues_[submission.client].push_back(std::move(submission));
  ++total_queued_;
  verdict.admitted = true;
  return verdict;
}

std::vector<QueuedSubmission> AdmissionQueue::DrainRoundRobin(int n) {
  std::vector<QueuedSubmission> out;
  while (n > 0 && total_queued_ > 0) {
    auto it = queues_.lower_bound(next_client_);
    if (it == queues_.end()) {
      it = queues_.begin();
    }
    out.push_back(std::move(it->second.front()));
    it->second.pop_front();
    --total_queued_;
    --n;
    // Advance the cursor past this client (wrap via lower_bound above).
    std::string drained = it->first;
    if (it->second.empty()) {
      queues_.erase(it);
    }
    next_client_ = drained + '\0';  // smallest key strictly after `drained`
  }
  return out;
}

bool AdmissionQueue::CancelJob(JobId job) {
  for (auto it = queues_.begin(); it != queues_.end(); ++it) {
    auto& queue = it->second;
    for (auto entry = queue.begin(); entry != queue.end(); ++entry) {
      if (entry->job.id == job) {
        queue.erase(entry);
        --total_queued_;
        if (queue.empty()) {
          queues_.erase(it);
        }
        return true;
      }
    }
  }
  return false;
}

}  // namespace tetrisched
