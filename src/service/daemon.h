// tetrischedd — the scheduler as a long-running service (DESIGN.md §16).
//
// SchedulerDaemon wraps the TetriSched library in a single-threaded
// poll-based serving loop:
//
//   * transports: loopback TCP and/or Unix domain listeners, plus adopted
//     pre-connected fds (socketpairs) for deterministic in-process tests,
//   * a real-clock cycle driver: every cycle_period_ms of wall time the
//     virtual clock advances by sim_seconds_per_cycle and one scheduling
//     cycle runs — intake drain (admission control + Rayon), completions,
//     TetriScheduler::OnCycle under the §13 cycle budget, ValidatePlan,
//     and a two-phase journaled commit,
//   * admission control with backpressure (admission.h): bounded intake
//     queue, per-client fairness, explicit `overloaded` rejections with
//     retry-after hints,
//   * durability: every acceptance/launch/completion/drop is journaled
//     through PersistenceManager (kServiceSubmit + the §11 vocabulary);
//     SIGTERM triggers a final checkpoint, and a restarted daemon resumes
//     accepted-but-unfinished jobs and adopts journaled running gangs.
//     The daemon persists its *resource-manager view*; like the paper's
//     YARN deployment, running work survives a scheduler restart.
//
// Threading: everything runs on the thread that calls Run(). Other threads
// (and signal handlers) may only call RequestStop/RequestDrain/
// AddConnectionFd/Wakeup, which are async-safe flags + a self-pipe write.

#ifndef TETRISCHED_SERVICE_DAEMON_H_
#define TETRISCHED_SERVICE_DAEMON_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/core/job.h"
#include "src/core/scheduler.h"
#include "src/net/event_loop.h"
#include "src/persist/persist.h"
#include "src/rayon/rayon.h"
#include "src/service/admission.h"
#include "src/service/protocol.h"

namespace tetrisched {

struct DaemonOptions {
  // --- transports (any combination; tests may rely on adopted fds only) --
  std::string unix_socket_path;  // empty = no Unix listener
  int tcp_port = -1;             // -1 = no TCP listener; 0 = kernel-assigned

  // --- cluster & scheduler ----------------------------------------------
  int racks = 4;
  int nodes_per_rack = 8;
  int gpu_racks = 1;
  TetriSchedConfig scheduler;

  // --- cycle driver ------------------------------------------------------
  // Wall-clock between scheduling cycles. The §13 budget defaults to this
  // (solver wall-clock is clamped inside the cycle) unless the caller set
  // scheduler.budget explicitly.
  int64_t cycle_period_ms = 100;
  // Virtual seconds the service clock advances per cycle. The scheduler's
  // plan-ahead/quantum arithmetic runs in virtual seconds, so this is the
  // paper's 4 s cycle period by default; tests shrink cycle_period_ms to
  // run virtual time faster than real time.
  SimDuration sim_seconds_per_cycle = 4;

  // --- admission ---------------------------------------------------------
  AdmissionOptions admission;
  // Bound on the scheduler's pending set; intake drains only into the gap.
  int max_pending_jobs = 256;

  // --- connections -------------------------------------------------------
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  // Evict connections idle longer than this; 0 disables.
  int64_t idle_timeout_ms = 0;

  // --- durability --------------------------------------------------------
  // Journal storage; not owned (a restarted daemon re-attaches to the same
  // storage). nullptr = ephemeral daemon (no journal, no restart story).
  JournalStorage* storage = nullptr;
  int snapshot_every = 256;

  // --- observability -----------------------------------------------------
  // Keep the provenance flight recorder on so the `explain` op works.
  bool enable_provenance = true;
  size_t provenance_ring = 0;  // 0 = TETRISCHED_PROVENANCE_RING default
};

// Point-in-time counters exposed through `status` and to tests.
struct DaemonStatus {
  SimTime now = 0;
  int64_t cycles = 0;
  int64_t queued = 0;
  int64_t pending = 0;
  int64_t running = 0;
  int64_t completed = 0;
  int64_t dropped = 0;
  int64_t cancelled = 0;
  int64_t admitted_total = 0;
  int64_t rejected_total = 0;
  int64_t validator_violations = 0;
  bool draining = false;
  bool drained = false;  // draining and no queued/pending/running work left
};

class SchedulerDaemon {
 public:
  explicit SchedulerDaemon(DaemonOptions options);
  ~SchedulerDaemon();

  SchedulerDaemon(const SchedulerDaemon&) = delete;
  SchedulerDaemon& operator=(const SchedulerDaemon&) = delete;

  // Binds listeners and recovers from the journal. False when a requested
  // listener cannot be bound (the journal is recovered regardless).
  bool Start();

  // Serves until a stop request (RequestStop, `shutdown` op, or a
  // termination signal routed to wakeup_fd). Runs the final checkpoint
  // before returning.
  void Run();

  // Thread-safe controls.
  void RequestStop();
  void RequestDrain();
  // Adopts a pre-connected stream fd (takes ownership). Thread-safe; the
  // connection is registered on the loop thread's next pass.
  void AddConnectionFd(int fd);

  // The event loop's self-pipe write end, for signal handler installation.
  int wakeup_fd() const { return loop_.wakeup_fd(); }

  // Bound TCP port (valid after Start when tcp_port was requested).
  int tcp_port() const { return bound_tcp_port_; }
  const Cluster& cluster() const { return cluster_; }
  const DaemonOptions& options() const { return options_; }

  // Thread-safe snapshot of the serving counters (tests poll this).
  DaemonStatus StatusSnapshot() const;

  // Number of jobs recovered into the pending set / adopted as running at
  // Start() (tests assert restart resume).
  int recovered_pending() const { return recovered_pending_; }
  int recovered_running() const { return recovered_running_; }

 private:
  enum class JobState {
    kQueued,     // accepted into the intake queue
    kPending,    // admitted to the scheduler's pending set
    kRunning,    // gang launched
    kCompleted,
    kDropped,    // deadline unreachable / scheduler drop
    kCancelled,  // client cancel
  };
  static const char* ToString(JobState state);

  struct JobEntry {
    Job job;
    JobState state = JobState::kQueued;
    std::string client;
    SimTime accepted_at = -1;  // virtual time entering the intake queue
    SimTime start = -1;
    SimTime end = -1;
    bool preferred = false;
    std::map<PartitionId, int> placement;
  };

  // --- lifecycle ---------------------------------------------------------
  void RecoverFromJournal();
  void FinalCheckpoint();
  RecoveredState BuildRecoveredState() const;

  // --- serving -----------------------------------------------------------
  void OnListenerReadable(int listener_fd);
  void AdoptConnection(UniqueFd fd);
  void OnConnectionEvent(int64_t connection_id, uint32_t events);
  void CloseConnection(int64_t connection_id);
  void AdoptPendingFds();
  void EvictIdleConnections();

  // --- protocol ----------------------------------------------------------
  std::string HandleRequest(int64_t connection_id, std::string_view payload);
  std::string HandleSubmit(const ServiceRequest& request,
                           const std::string& client, int64_t connection_id);
  std::string HandleStatus(const ServiceRequest& request);
  std::string HandleCancel(const ServiceRequest& request);
  std::string HandleExplain(const ServiceRequest& request);
  std::string HandleMetrics(const ServiceRequest& request);

  // --- cycle driver ------------------------------------------------------
  void RunCycle();
  void CompleteFinishedGangs();
  void DrainIntakeIntoPending();
  void ApplyDecision(const SchedulerPolicy::Decision& decision);
  void DropJob(JobId job, JobState reason, const char* why);

  void Journal(const DurableEvent& event);
  JsonObj JobStatusJson(const JobEntry& entry) const;
  DaemonStatus UnlockedStatus() const;
  void PublishStatus();

  DaemonOptions options_;
  Cluster cluster_;
  TetriScheduler scheduler_;
  RayonAdmission rayon_;
  std::unique_ptr<PersistenceManager> persist_;  // null when no storage
  AdmissionQueue intake_;
  EventLoop loop_;

  std::vector<UniqueFd> listeners_;
  int bound_tcp_port_ = -1;
  std::map<int64_t, std::unique_ptr<FramedConnection>> connections_;
  int64_t next_connection_id_ = 1;

  std::map<JobId, JobEntry> jobs_;
  std::vector<JobId> pending_;  // admission order
  JobId next_job_id_ = 1;
  SimTime now_ = 0;
  int64_t cycles_ = 0;
  int64_t validator_violations_ = 0;
  int64_t completed_ = 0;
  int64_t dropped_ = 0;
  int64_t cancelled_ = 0;
  int64_t running_count_ = 0;
  int64_t admitted_total_ = 0;
  int64_t rejected_total_ = 0;
  int recovered_pending_ = 0;
  int recovered_running_ = 0;

  bool draining_ = false;
  bool stopped_ = false;

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> drain_requested_{false};
  std::mutex adopted_mu_;
  std::vector<UniqueFd> adopted_fds_;

  mutable std::mutex status_mu_;
  DaemonStatus published_status_;
};

}  // namespace tetrisched

#endif  // TETRISCHED_SERVICE_DAEMON_H_
