// Graceful SIGINT/SIGTERM handling via the classic self-pipe pattern
// (DESIGN.md §16).
//
// The handler does the only async-signal-safe thing available: one write(2)
// of the signal number onto a pipe the event loop polls. The daemon thread
// observes the byte at its next poll, begins its shutdown sequence (stop
// intake -> final checkpoint -> clean exit), and the *second* delivery of a
// termination signal falls through to the default disposition so a wedged
// daemon can still be killed.

#ifndef TETRISCHED_SERVICE_SIGNALS_H_
#define TETRISCHED_SERVICE_SIGNALS_H_

namespace tetrisched {

// Installs SIGINT + SIGTERM handlers that write the signal number (one
// byte) to `pipe_write_fd`. Re-entrant deliveries restore the default
// handler first, so a repeat signal terminates immediately. Returns false
// if sigaction fails.
bool InstallTerminationSignalHandlers(int pipe_write_fd);

// Removes the handlers (restores SIG_DFL); used by tests that raise().
void RestoreDefaultSignalHandlers();

// Last signal observed by the handler (0 = none); reset by Install.
int LastTerminationSignal();

// Atomically reads-and-clears the latched signal. The serving loop uses
// this so a stale latch never stops a *later* daemon in the same process
// (tests and restart-in-place both run several daemons per process).
int ConsumeTerminationSignal();

}  // namespace tetrisched

#endif  // TETRISCHED_SERVICE_SIGNALS_H_
