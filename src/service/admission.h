// Intake admission control for tetrischedd (DESIGN.md §16).
//
// DRESS (arXiv:1805.08359) motivates the shape: a reservation-based
// scheduler under congestion must bound its intake and shed load
// *explicitly* — an unbounded queue converts overload into unbounded
// decision latency for everyone. The daemon therefore keeps accepted
// submissions in a bounded queue in front of the scheduler's pending set:
//
//   * a global bound caps total queued submissions,
//   * a per-client bound (global bound / active clients, floored at 1)
//     keeps one flooding client from occupying the whole queue — other
//     clients' submissions still land and still drain,
//   * rejections are explicit `overloaded` responses carrying a
//     retry-after hint derived from the cycle period and the rejected
//     client's backlog, and
//   * the drain order is round-robin across clients, so service is fair
//     even when arrival order is not.
//
// The queue is not thread-safe: it lives on the daemon's event-loop thread.

#ifndef TETRISCHED_SERVICE_ADMISSION_H_
#define TETRISCHED_SERVICE_ADMISSION_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/core/job.h"

namespace tetrisched {

struct AdmissionOptions {
  // Global bound on queued submissions awaiting scheduler admission.
  int max_queued = 256;
  // Submissions moved from the queue into the scheduler's pending set per
  // cycle. Bounds per-cycle STRL growth under bursts.
  int admit_per_cycle = 64;
  // Retry-after hint baseline: one cycle period, scaled by the client's
  // backlog share.
  int64_t cycle_period_ms = 100;
};

struct QueuedSubmission {
  Job job;
  std::string client;
  int64_t connection_id = -1;  // provenance only (responses already sent)
};

struct AdmissionVerdict {
  bool admitted = false;
  int64_t retry_after_ms = 0;  // meaningful when !admitted
  std::string reason;          // human detail when !admitted
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(AdmissionOptions options);

  // Offers one submission for `client`. On rejection nothing is retained.
  AdmissionVerdict Offer(QueuedSubmission submission);

  // Removes up to `n` submissions in round-robin client order.
  std::vector<QueuedSubmission> DrainRoundRobin(int n);

  // Removes a queued submission by job id (cancel before admission).
  bool CancelJob(JobId job);

  int64_t size() const { return total_queued_; }
  int active_clients() const { return static_cast<int>(queues_.size()); }
  int64_t depth_of(const std::string& client) const;
  // Current per-client bound (recomputed from active clients).
  int64_t per_client_bound() const;

  const AdmissionOptions& options() const { return options_; }

 private:
  AdmissionOptions options_;
  // Client -> FIFO of queued submissions. Emptied entries are erased so
  // active_clients() tracks clients with work, not clients ever seen.
  std::map<std::string, std::deque<QueuedSubmission>> queues_;
  // Round-robin cursor: the client to drain next (lower_bound semantics so
  // erased clients do not wedge the cursor).
  std::string next_client_;
  int64_t total_queued_ = 0;
};

}  // namespace tetrisched

#endif  // TETRISCHED_SERVICE_ADMISSION_H_
