// The versioned JSON request/response protocol tetrischedd speaks inside
// net frames (DESIGN.md §16).
//
// Request:  {"v": 1, "op": "submit", "id": 7, "client": "loadgen-a", ...}
// Response: {"v": 1, "id": 7, "ok": true, ...}
//         | {"v": 1, "id": 7, "ok": false, "error": "overloaded",
//            "message": "...", "retry_after_ms": 40}
//
// `id` is a client-chosen correlation id echoed verbatim (the blocking
// client uses a per-connection counter). `client` names the fairness
// bucket for admission control; it defaults to a per-connection identity
// so anonymous clients are isolated per connection rather than pooled.
//
// Ops: submit, status, cancel, explain, metrics, drain, shutdown. Error
// codes are stable protocol strings (kErr* below), not prose; human detail
// rides in "message".

#ifndef TETRISCHED_SERVICE_PROTOCOL_H_
#define TETRISCHED_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/json.h"

namespace tetrisched {

inline constexpr int64_t kProtocolVersion = 1;

// Stable error codes.
inline constexpr const char* kErrBadRequest = "bad_request";
inline constexpr const char* kErrBadVersion = "bad_version";
inline constexpr const char* kErrUnknownOp = "unknown_op";
inline constexpr const char* kErrOverloaded = "overloaded";
inline constexpr const char* kErrDraining = "draining";
inline constexpr const char* kErrNotFound = "not_found";
inline constexpr const char* kErrConflict = "conflict";
inline constexpr const char* kErrInternal = "internal";

struct ServiceRequest {
  int64_t version = 0;
  int64_t req_id = -1;
  std::string op;
  std::string client;  // fairness bucket; empty = per-connection default
  JsonValue body;      // the whole request object (op-specific fields)
};

// Parses one frame payload. On failure returns false and fills *error with
// a kErrBadRequest/kErrBadVersion response the caller can send as-is
// (req_id is echoed when recoverable from the payload).
bool ParseServiceRequest(std::string_view payload, ServiceRequest* request,
                         std::string* error_response);

// Response builders. `extra` fields are spliced into the response object.
std::string OkResponse(int64_t req_id, const JsonObj& extra = JsonObj());
std::string ErrorResponse(int64_t req_id, std::string_view code,
                          std::string_view message,
                          int64_t retry_after_ms = -1);

}  // namespace tetrisched

#endif  // TETRISCHED_SERVICE_PROTOCOL_H_
