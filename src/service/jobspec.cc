#include "src/service/jobspec.h"

#include <cmath>

#include "src/strl/parser.h"

namespace tetrisched {

bool ParseJobType(std::string_view name, JobType* type) {
  if (name == "unconstrained") {
    *type = JobType::kUnconstrained;
  } else if (name == "gpu") {
    *type = JobType::kGpu;
  } else if (name == "mpi") {
    *type = JobType::kMpi;
  } else if (name == "availability") {
    *type = JobType::kAvailability;
  } else if (name == "data-local" || name == "data_local" ||
             name == "datalocal") {
    *type = JobType::kDataLocal;
  } else {
    return false;
  }
  return true;
}

std::string JobSpecToJson(const Job& job) {
  JsonObj obj;
  obj.Field("id", job.id);
  obj.Field("type", ToString(job.type));
  obj.Field("k", job.k);
  obj.Field("runtime", job.actual_runtime);
  obj.Field("slowdown", job.slowdown);
  obj.Field("submit", job.submit);
  obj.Field("reservation", job.wants_reservation);
  if (job.deadline != kTimeNever) {
    obj.Field("deadline", job.deadline);
  }
  if (job.estimate_error != 0.0) {
    obj.Field("estimate_error", job.estimate_error);
  }
  if (!job.preferred_partitions.empty()) {
    JsonArr parts;
    for (PartitionId p : job.preferred_partitions) {
      parts.Add(static_cast<int64_t>(p));
    }
    obj.FieldRaw("preferred_partitions", parts.str());
  }
  return obj.str();
}

bool JobSpecFromJson(const JsonValue& spec, SimTime now, Job* job,
                     std::string* error) {
  if (!spec.is_object()) {
    *error = "job spec must be a JSON object";
    return false;
  }
  *job = Job{};
  job->id = spec.IntOr("id", -1);
  std::string type_name = spec.StringOr("type", "unconstrained");
  if (!ParseJobType(type_name, &job->type)) {
    *error = "unknown job type: " + type_name;
    return false;
  }
  job->k = static_cast<int>(spec.IntOr("k", 1));
  if (job->k < 1 || job->k > 1 << 20) {
    *error = "gang size k out of range";
    return false;
  }
  job->actual_runtime = spec.IntOr("runtime", 0);
  if (job->actual_runtime < 1) {
    *error = "runtime must be a positive integer (seconds)";
    return false;
  }
  job->slowdown = spec.NumberOr("slowdown", 1.0);
  if (!(job->slowdown >= 1.0) || !std::isfinite(job->slowdown)) {
    *error = "slowdown must be >= 1";
    return false;
  }
  job->submit = spec.IntOr("submit", now);
  job->estimate_error = spec.NumberOr("estimate_error", 0.0);
  if (const JsonValue* deadline = spec.Find("deadline");
      deadline != nullptr && deadline->is_number()) {
    job->deadline = static_cast<SimTime>(deadline->number);
  } else if (const JsonValue* rel = spec.Find("deadline_in");
             rel != nullptr && rel->is_number()) {
    if (rel->number <= 0) {
      *error = "deadline_in must be positive";
      return false;
    }
    job->deadline = now + static_cast<SimTime>(rel->number);
  }
  job->wants_reservation = spec.BoolOr("reservation", false);
  if (job->wants_reservation && job->deadline == kTimeNever) {
    *error = "reservation requires a deadline (deadline or deadline_in)";
    return false;
  }
  if (const JsonValue* parts = spec.Find("preferred_partitions");
      parts != nullptr) {
    if (!parts->is_array()) {
      *error = "preferred_partitions must be an array of partition ids";
      return false;
    }
    for (const JsonValue& item : parts->items) {
      if (!item.is_number()) {
        *error = "preferred_partitions entries must be numbers";
        return false;
      }
      job->preferred_partitions.push_back(
          static_cast<PartitionId>(item.number));
    }
  }
  if (job->type == JobType::kDataLocal && job->preferred_partitions.empty()) {
    *error = "data-local jobs need preferred_partitions";
    return false;
  }
  return true;
}

namespace {

// First leaf in pre-order; nullptr for leafless expressions.
const StrlExpr* FirstLeaf(const StrlExpr& expr) {
  if (expr.IsLeaf()) {
    return &expr;
  }
  for (const StrlExpr& child : expr.children) {
    if (const StrlExpr* leaf = FirstLeaf(child)) {
      return leaf;
    }
  }
  return nullptr;
}

}  // namespace

bool JobFromStrlText(std::string_view strl_text, SimTime now,
                     int cluster_partitions, Job* job, std::string* error) {
  StrlParseResult parsed = ParseStrl(strl_text);
  if (!parsed.expr.has_value()) {
    *error = "STRL parse error: " + parsed.error;
    return false;
  }
  const StrlExpr* leaf = FirstLeaf(*parsed.expr);
  if (leaf == nullptr) {
    *error = "STRL expression has no placement leaf";
    return false;
  }
  if (leaf->k < 1 || leaf->duration < 1) {
    *error = "STRL leaf needs k >= 1 and dur >= 1";
    return false;
  }
  *job = Job{};
  job->k = leaf->k;
  job->actual_runtime = leaf->duration;
  job->submit = now;
  for (PartitionId p : leaf->partitions) {
    if (p < 0 || p >= cluster_partitions) {
      *error = "STRL leaf names partition p" + std::to_string(p) +
               " outside the cluster";
      return false;
    }
  }
  // A leaf constrained to a subset of the cluster becomes a data-local
  // preference; the whole cluster stays unconstrained.
  if (static_cast<int>(leaf->partitions.size()) < cluster_partitions) {
    job->type = JobType::kDataLocal;
    job->preferred_partitions = leaf->partitions;
    job->slowdown = 2.0;  // fallback-off-preference penalty, strl_gen default
  } else {
    job->type = JobType::kUnconstrained;
  }
  return true;
}

}  // namespace tetrisched
