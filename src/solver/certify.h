// Independent plan certifier (DESIGN.md §13).
//
// Re-checks a solver incumbent against the *original pre-presolve* model: a
// cheap correctness oracle (one pass over the model) that is independent of
// every transformation the solve pipeline applied — presolve substitutions,
// component decomposition and stitching, warm-start projection, parallel
// incumbent races, and mid-LP cancellation. The scheduler runs it as part of
// the pre-commit ValidatePlan gate: a rejected incumbent is treated like a
// solver failure and drops the cycle down the degradation ladder instead of
// committing a corrupt plan.

#ifndef TETRISCHED_SOLVER_CERTIFY_H_
#define TETRISCHED_SOLVER_CERTIFY_H_

#include <string>

#include "src/solver/milp.h"
#include "src/solver/model.h"

namespace tetrisched {

struct CertifyOptions {
  double feas_tol = 1e-5;  // per-row / per-bound violation tolerance
  double int_tol = 1e-5;   // integrality tolerance
  double obj_tol = 1e-6;   // relative objective-recomputation tolerance
  double gap_slop = 1e-6;  // slack added when auditing a claimed gap
};

struct CertifyReport {
  bool ok = false;
  std::string failure;      // first failed check; empty when ok
  int violated_rows = 0;    // constraint rows outside tolerance
  double objective_error = 0.0;  // |claimed - recomputed|

  explicit operator bool() const { return ok; }
};

// Certifies `result` against `model` (the original, pre-presolve model):
//   * the incumbent has the model's dimension,
//   * every variable sits within its bounds, integer-likes at integers,
//   * every constraint row holds within tolerance,
//   * the claimed objective matches a recomputation from the values,
//   * when the status claims a proven gap (kOptimal / kGapLimit) and the
//     bound is finite, the bound actually covers the claim under
//     `options.rel_gap` / `options.abs_gap`.
// A result without a solution (no incumbent) fails certification; callers
// gate on HasSolution() first.
CertifyReport CertifyPlan(const MilpModel& model, const MilpResult& result,
                          const MilpOptions& options,
                          CertifyOptions certify = {});

}  // namespace tetrisched

#endif  // TETRISCHED_SOLVER_CERTIFY_H_
