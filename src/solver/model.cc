#include "src/solver/model.h"

#include <cassert>
#include <cmath>
#include <sstream>

namespace tetrisched {

VarId MilpModel::AddVar(VarType type, double lower, double upper,
                        std::string name) {
  assert(lower <= upper);
  types_.push_back(type);
  lowers_.push_back(lower);
  uppers_.push_back(upper);
  objective_.push_back(0.0);
  var_names_.push_back(std::move(name));
  return static_cast<VarId>(types_.size() - 1);
}

VarId MilpModel::AddContinuousVar(double lower, double upper,
                                  std::string name) {
  return AddVar(VarType::kContinuous, lower, upper, std::move(name));
}

VarId MilpModel::AddIntegerVar(double lower, double upper, std::string name) {
  return AddVar(VarType::kInteger, lower, upper, std::move(name));
}

VarId MilpModel::AddBinaryVar(std::string name) {
  return AddVar(VarType::kBinary, 0.0, 1.0, std::move(name));
}

void MilpModel::AddObjectiveTerm(VarId var, double delta) {
  assert(var >= 0 && var < num_vars());
  objective_[var] += delta;
}

ConstraintId MilpModel::AddConstraint(std::vector<LinTerm> terms,
                                      ConstraintSense sense, double rhs,
                                      std::string name) {
  for (const LinTerm& term : terms) {
    assert(term.var >= 0 && term.var < num_vars());
    terms_.push_back(term);
  }
  row_start_.push_back(static_cast<int64_t>(terms_.size()));
  senses_.push_back(sense);
  rhs_.push_back(rhs);
  constraint_names_.push_back(std::move(name));
  return static_cast<ConstraintId>(senses_.size() - 1);
}

std::span<const LinTerm> MilpModel::constraint_terms(ConstraintId c) const {
  int64_t begin = row_start_[c];
  int64_t end = row_start_[c + 1];
  return {terms_.data() + begin, static_cast<size_t>(end - begin)};
}

double MilpModel::ObjectiveValue(std::span<const double> values) const {
  double total = 0.0;
  for (int v = 0; v < num_vars(); ++v) {
    total += objective_[v] * values[v];
  }
  return total;
}

bool MilpModel::IsFeasible(std::span<const double> values, double tol) const {
  if (static_cast<int>(values.size()) != num_vars()) {
    return false;
  }
  for (int v = 0; v < num_vars(); ++v) {
    double x = values[v];
    if (x < lowers_[v] - tol || x > uppers_[v] + tol) {
      return false;
    }
    if (IsIntegerLike(v) && std::abs(x - std::round(x)) > tol) {
      return false;
    }
  }
  for (int c = 0; c < num_constraints(); ++c) {
    double lhs = 0.0;
    for (const LinTerm& term : constraint_terms(c)) {
      lhs += term.coeff * values[term.var];
    }
    switch (senses_[c]) {
      case ConstraintSense::kLessEqual:
        if (lhs > rhs_[c] + tol) {
          return false;
        }
        break;
      case ConstraintSense::kGreaterEqual:
        if (lhs < rhs_[c] - tol) {
          return false;
        }
        break;
      case ConstraintSense::kEqual:
        if (std::abs(lhs - rhs_[c]) > tol) {
          return false;
        }
        break;
    }
  }
  return true;
}

std::string MilpModel::DebugString() const {
  std::ostringstream out;
  out << "maximize ";
  bool first = true;
  for (int v = 0; v < num_vars(); ++v) {
    if (objective_[v] == 0.0) {
      continue;
    }
    if (!first) {
      out << " + ";
    }
    out << objective_[v] << "*x" << v;
    first = false;
  }
  out << "\nsubject to\n";
  for (int c = 0; c < num_constraints(); ++c) {
    out << "  [" << constraint_names_[c] << "] ";
    bool row_first = true;
    for (const LinTerm& term : constraint_terms(c)) {
      if (!row_first) {
        out << " + ";
      }
      out << term.coeff << "*x" << term.var;
      row_first = false;
    }
    switch (senses_[c]) {
      case ConstraintSense::kLessEqual:
        out << " <= ";
        break;
      case ConstraintSense::kGreaterEqual:
        out << " >= ";
        break;
      case ConstraintSense::kEqual:
        out << " == ";
        break;
    }
    out << rhs_[c] << "\n";
  }
  out << "bounds\n";
  for (int v = 0; v < num_vars(); ++v) {
    out << "  " << lowers_[v] << " <= x" << v << " <= " << uppers_[v];
    switch (types_[v]) {
      case VarType::kBinary:
        out << " (bin";
        break;
      case VarType::kInteger:
        out << " (int";
        break;
      case VarType::kContinuous:
        out << " (cont";
        break;
    }
    if (!var_names_[v].empty()) {
      out << " '" << var_names_[v] << "'";
    }
    out << ")\n";
  }
  return out.str();
}

}  // namespace tetrisched
