// Coarse solve-outcome classification surfaced to the scheduling layer.
//
// MilpStatus (milp.h) describes the mathematical state of the search
// (optimal/feasible/infeasible/...); SolveStatus answers the operational
// question the scheduler actually cares about: did the solver hand back a
// plan worth committing, and if not, why did it stop? In particular
// kNoIncumbent makes the former implicit "empty plan means timeout"
// convention explicit, so the scheduler can drop to its greedy
// degradation path instead of silently scheduling nothing for a cycle.
//
// Values are ordered best-to-worst so a cycle that runs several solves
// (the per-job greedy path) can keep the worst outcome with a max().

#ifndef TETRISCHED_SOLVER_SOLVE_STATUS_H_
#define TETRISCHED_SOLVER_SOLVE_STATUS_H_

#include <algorithm>

namespace tetrisched {

enum class SolveStatus {
  kOptimal = 0,      // proven optimal
  kGapMet = 1,       // feasible within the requested relative gap
  kTimeLimit = 2,    // real incumbent, but time/node budget expired first
  kStall = 3,        // real incumbent, search aborted on the stall limit
  kNoIncumbent = 4,  // budget exhausted with no usable incumbent (at most
                     // the trivial all-zero plan) — degrade, don't trust
};

inline const char* ToString(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kGapMet:
      return "gap-met";
    case SolveStatus::kTimeLimit:
      return "time-limit";
    case SolveStatus::kStall:
      return "stall";
    case SolveStatus::kNoIncumbent:
      return "no-incumbent";
  }
  return "?";
}

// Worse-of for aggregating several solves into one per-cycle status.
inline SolveStatus WorstStatus(SolveStatus a, SolveStatus b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

}  // namespace tetrisched

#endif  // TETRISCHED_SOLVER_SOLVE_STATUS_H_
