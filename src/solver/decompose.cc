#include "src/solver/decompose.h"

#include <chrono>
#include <cmath>
#include <numeric>
#include <utility>

#include "src/common/budget.h"
#include "src/common/metrics.h"
#include "src/common/span.h"
#include "src/common/thread_pool.h"

namespace tetrisched {
namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point since) {
  return std::chrono::duration<double, std::milli>(Clock::now() - since)
      .count();
}

// Union-find with path halving + union by rank.
int32_t Find(std::vector<int32_t>& parent, int32_t v) {
  while (parent[v] != v) {
    parent[v] = parent[parent[v]];
    v = parent[v];
  }
  return v;
}

void Union(std::vector<int32_t>& parent, std::vector<int32_t>& rank, int32_t a,
           int32_t b) {
  a = Find(parent, a);
  b = Find(parent, b);
  if (a == b) {
    return;
  }
  if (rank[a] < rank[b]) {
    std::swap(a, b);
  }
  parent[b] = a;
  if (rank[a] == rank[b]) {
    ++rank[a];
  }
}

// Severity rank for the mathematical status merge: the worst claim wins,
// with global conditions (infeasible/unbounded/no-solution) on top.
int StatusRank(MilpStatus status) {
  switch (status) {
    case MilpStatus::kOptimal:
      return 0;
    case MilpStatus::kGapLimit:
      return 1;
    case MilpStatus::kFeasible:
      return 2;
    case MilpStatus::kNoSolution:
      return 3;
    case MilpStatus::kUnbounded:
      return 4;
    case MilpStatus::kInfeasible:
      return 5;
  }
  return 5;
}

// One extracted component: the sub-model, its variable map back into the
// original space, its sliced warm start, its budget share, and its result.
struct Component {
  MilpModel model;
  std::vector<VarId> vars;  // component variable id -> original variable id
  std::vector<double> warm;
  MilpOptions options;
  MilpResult result;
  double weight = 0.0;  // deadline-pool weight (variable count)
};

}  // namespace

Decomposition DetectComponents(const MilpModel& model) {
  const int n = model.num_vars();
  const int m = model.num_constraints();
  Decomposition decomp;
  decomp.var_component.assign(n, -1);
  decomp.row_component.assign(m, -1);

  std::vector<int32_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  std::vector<int32_t> rank(n, 0);
  std::vector<bool> in_row(n, false);

  for (int c = 0; c < m; ++c) {
    std::span<const LinTerm> terms = model.constraint_terms(c);
    if (terms.empty()) {
      // A constant row constrains nothing the splitter can attribute to a
      // component; let the monolithic solver classify it.
      decomp.bypass = true;
      return decomp;
    }
    const VarId first = terms[0].var;
    in_row[first] = true;
    for (size_t i = 1; i < terms.size(); ++i) {
      in_row[terms[i].var] = true;
      Union(parent, rank, first, terms[i].var);
    }
  }

  // Component ids in ascending first-variable order, so extraction and
  // stitching are deterministic regardless of union order.
  std::vector<int32_t> comp_of_root(n, -1);
  for (int v = 0; v < n; ++v) {
    if (!in_row[v]) {
      continue;
    }
    const int32_t root = Find(parent, v);
    if (comp_of_root[root] < 0) {
      comp_of_root[root] = decomp.num_components++;
      decomp.component_vars.push_back(0);
      decomp.component_rows.push_back(0);
    }
    decomp.var_component[v] = comp_of_root[root];
    ++decomp.component_vars[comp_of_root[root]];
  }
  for (int c = 0; c < m; ++c) {
    const int32_t comp =
        decomp.var_component[model.constraint_terms(c)[0].var];
    decomp.row_component[c] = comp;
    ++decomp.component_rows[comp];
  }
  return decomp;
}

MilpStatus MergeMilpStatus(MilpStatus a, MilpStatus b) {
  return StatusRank(a) >= StatusRank(b) ? a : b;
}

SolveStatus MergeSolveStatus(SolveStatus a, SolveStatus b) {
  if (a == SolveStatus::kNoIncumbent && b == SolveStatus::kNoIncumbent) {
    return SolveStatus::kNoIncumbent;
  }
  // A failed component contributes only its zero sub-plan; the merged plan
  // is partial, which operationally is a limits-hit solve, not a failed one.
  if (a == SolveStatus::kNoIncumbent) {
    a = SolveStatus::kTimeLimit;
  }
  if (b == SolveStatus::kNoIncumbent) {
    b = SolveStatus::kTimeLimit;
  }
  return WorstStatus(a, b);
}

MilpResult SolveDecomposed(const MilpModel& model, const Decomposition& decomp,
                           const MilpOptions& options,
                           std::span<const double> warm_start,
                           double detect_ms) {
  const auto start_time = Clock::now();
  const int n = model.num_vars();
  const int m = model.num_constraints();
  const int k = decomp.num_components;
  const int num_workers =
      std::max(1, options.num_threads > 0 ? options.num_threads
                                          : ThreadPool::HardwareThreads());

  // ---- Extraction: one sub-model per component, original variable order
  // preserved, so local ids are a monotone remap of the original ids. ------
  const auto extract_start = Clock::now();
  std::vector<Component> components(k);
  std::vector<int32_t> local(n, -1);  // original var -> id in its component
  for (int v = 0; v < n; ++v) {
    const int32_t comp = decomp.var_component[v];
    if (comp < 0) {
      continue;  // free variable, stitched analytically below
    }
    MilpModel& sub = components[comp].model;
    VarId id = -1;
    switch (model.var_type(v)) {
      case VarType::kBinary:
        id = sub.AddBinaryVar(model.var_name(v));
        break;
      case VarType::kInteger:
        id = sub.AddIntegerVar(model.lower_bound(v), model.upper_bound(v),
                               model.var_name(v));
        break;
      case VarType::kContinuous:
        id = sub.AddContinuousVar(model.lower_bound(v), model.upper_bound(v),
                                  model.var_name(v));
        break;
    }
    if (model.objective_coeff(v) != 0.0) {
      sub.AddObjectiveTerm(id, model.objective_coeff(v));
    }
    components[comp].vars.push_back(v);
    local[v] = id;
  }
  for (int c = 0; c < m; ++c) {
    std::span<const LinTerm> terms = model.constraint_terms(c);
    std::vector<LinTerm> remapped;
    remapped.reserve(terms.size());
    for (const LinTerm& term : terms) {
      remapped.push_back({local[term.var], term.coeff});
    }
    components[decomp.row_component[c]].model.AddConstraint(
        std::move(remapped), model.constraint_sense(c),
        model.constraint_rhs(c), model.constraint_name(c));
  }

  // Warm-start slicing: the cycle's full-model hint projects onto each
  // component independently (each component solver re-verifies feasibility
  // of its slice and silently drops an infeasible one, as before).
  const bool have_warm = static_cast<int>(warm_start.size()) == n;

  // Budget apportionment by variable share. Node/gap/stall budgets are
  // fixed shares (they sum to 1, so total work never exceeds the monolithic
  // budget); wall-clock is handled by a DeadlinePool below, so a component
  // that finishes early donates its unused time to the ones still running
  // instead of stranding it. Floors keep a tiny component from being starved
  // below one root solve.
  int total_vars = 0;
  for (int comp = 0; comp < k; ++comp) {
    total_vars += decomp.component_vars[comp];
  }
  const int inner_threads = std::max(1, num_workers / k);
  for (int comp = 0; comp < k; ++comp) {
    Component& component = components[comp];
    const double share =
        static_cast<double>(decomp.component_vars[comp]) / total_vars;
    MilpOptions inner = options;
    inner.enable_decomposition = false;  // components are connected
    // Presolve already ran to fixpoint on the full model; its reductions are
    // row-local, so re-running it per component would find nothing.
    inner.enable_presolve = false;
    inner.num_threads = inner_threads;
    // time_limit_seconds is acquired from the pool at component start; the
    // parent's composed CancelToken (inner.cancel, when set) stays the hard
    // cap either way.
    inner.max_nodes =
        std::max(64, static_cast<int>(options.max_nodes * share));
    inner.abs_gap = std::max(1e-9, options.abs_gap * share);
    if (options.stall_node_limit > 0) {
      inner.stall_node_limit =
          std::max(32, static_cast<int>(options.stall_node_limit * share));
    }
    component.options = inner;
    component.weight = decomp.component_vars[comp];
    if (have_warm) {
      component.warm.resize(component.vars.size());
      for (size_t i = 0; i < component.vars.size(); ++i) {
        component.warm[i] = warm_start[component.vars[i]];
      }
    }
  }
  const double extract_ms = MillisSince(extract_start);

  // ---- Concurrent component solves. Each task touches only its own slot,
  // and each component solve is single-threaded whenever the worker count
  // does not exceed the component count — in that case the whole decomposed
  // solve is deterministic regardless of pool interleaving. ----------------
  // Wall-clock pool over the solve budget: a component's slice is computed
  // when it *starts*, from the time then remaining and the weight still
  // outstanding, so early finishers' unused time flows to later components
  // (with one thread, the last component may inherit nearly the whole
  // remaining budget; with many, concurrent slices still sum to at most the
  // remaining wall-clock).
  DeadlinePool time_pool(options.time_limit_seconds, total_vars);
  const double floor_seconds = std::min(options.time_limit_seconds, 0.005);
  auto solve_component = [&time_pool, floor_seconds](Component& component) {
    TETRI_SPAN("solver.component");
    component.options.time_limit_seconds =
        time_pool.AcquireSeconds(component.weight, floor_seconds);
    component.result = MilpSolver(component.model, component.options)
                           .Solve(component.warm);
    time_pool.Release(component.weight);
  };
  const int pool_threads = std::min(num_workers, k);
  if (pool_threads <= 1) {
    for (Component& component : components) {
      solve_component(component);
    }
  } else {
    ThreadPool pool(pool_threads);
    // Largest components first so the long poles start immediately and the
    // small ones pack around them.
    std::vector<int> order(k);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return decomp.component_vars[a] > decomp.component_vars[b];
    });
    for (int comp : order) {
      pool.Submit([&solve_component, &components, comp] {
        solve_component(components[comp]);
      });
    }
    pool.Wait();
  }

  // ---- Stitching. --------------------------------------------------------
  MilpResult merged;
  merged.threads_used = num_workers;
  merged.components = k;
  merged.decompose_ms = detect_ms + extract_ms;
  for (const Component& component : components) {
    merged.nodes += component.result.nodes;
    merged.lp_iterations += component.result.lp_iterations;
    merged.max_component_ms = std::max(
        merged.max_component_ms, component.result.solve_seconds * 1e3);
  }

  MilpStatus status = MilpStatus::kOptimal;
  for (const Component& component : components) {
    status = MergeMilpStatus(status, component.result.status);
  }
  merged.status = status;
  if (status == MilpStatus::kInfeasible || status == MilpStatus::kUnbounded ||
      status == MilpStatus::kNoSolution) {
    // No full-model assignment can be claimed: a component proved the model
    // empty/unbounded, or ran out of budget with no vector at all.
    merged.solve_status = SolveStatus::kNoIncumbent;
    merged.solve_seconds =
        std::chrono::duration<double>(Clock::now() - start_time).count();
    return merged;
  }

  // Every component holds a feasible sub-assignment: stitch them, then fill
  // the free variables (no constraints) at their objective-maximizing bound.
  std::vector<double> values(n, 0.0);
  for (const Component& component : components) {
    for (size_t i = 0; i < component.vars.size(); ++i) {
      values[component.vars[i]] = component.result.values[i];
    }
  }
  double free_objective = 0.0;
  for (int v = 0; v < n; ++v) {
    if (decomp.var_component[v] >= 0) {
      continue;
    }
    const double coeff = model.objective_coeff(v);
    double value;
    if (coeff > 0.0) {
      value = model.upper_bound(v);
    } else if (coeff < 0.0) {
      value = model.lower_bound(v);
    } else {
      value = std::clamp(0.0, model.lower_bound(v), model.upper_bound(v));
    }
    if (std::isinf(value)) {
      merged.status = MilpStatus::kUnbounded;
      merged.solve_status = SolveStatus::kNoIncumbent;
      merged.values.clear();
      merged.solve_seconds =
          std::chrono::duration<double>(Clock::now() - start_time).count();
      return merged;
    }
    if (model.IsIntegerLike(v)) {
      value = coeff > 0.0 ? std::floor(value) : std::ceil(value);
    }
    values[v] = value;
    free_objective += coeff * value;
  }

  merged.values = std::move(values);
  merged.objective = model.ObjectiveValue(merged.values);
  merged.best_bound = free_objective;
  for (const Component& component : components) {
    merged.best_bound += component.result.best_bound;
  }
  SolveStatus solve_status = components[0].result.solve_status;
  for (int comp = 1; comp < k; ++comp) {
    solve_status =
        MergeSolveStatus(solve_status, components[comp].result.solve_status);
  }
  merged.solve_status = solve_status;
  merged.solve_seconds =
      std::chrono::duration<double>(Clock::now() - start_time).count();
  return merged;
}

}  // namespace tetrisched
