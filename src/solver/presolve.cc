#include "src/solver/presolve.h"

#include <algorithm>
#include <cmath>

namespace tetrisched {
namespace {

constexpr double kTol = 1e-9;
constexpr int kMaxPasses = 10;

}  // namespace

Presolver::Presolver(const MilpModel& original) : original_(original) {
  const int n = original.num_vars();
  const int m = original.num_constraints();

  std::vector<double> lb(n), ub(n);
  for (int v = 0; v < n; ++v) {
    lb[v] = original.lower_bound(v);
    ub[v] = original.upper_bound(v);
  }
  std::vector<bool> row_dropped(m, false);

  auto round_integral = [&](int v) {
    if (original.IsIntegerLike(v)) {
      lb[v] = std::ceil(lb[v] - 1e-6);
      ub[v] = std::floor(ub[v] + 1e-6);
    }
  };
  for (int v = 0; v < n; ++v) {
    round_integral(v);
    if (lb[v] > ub[v] + kTol) {
      infeasible_ = true;
      return;
    }
  }

  auto is_fixed = [&](int v) { return ub[v] - lb[v] <= kTol; };

  // Fixpoint: singleton rows tighten bounds; newly fixed variables turn
  // other rows into singletons.
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    bool changed = false;
    for (int c = 0; c < m; ++c) {
      if (row_dropped[c]) {
        continue;
      }
      double fixed_sum = 0.0;
      int free_var = -1;
      double free_coeff = 0.0;
      int free_count = 0;
      for (const LinTerm& term : original.constraint_terms(c)) {
        if (term.coeff == 0.0) {
          continue;
        }
        if (is_fixed(term.var)) {
          fixed_sum += term.coeff * lb[term.var];
        } else if (free_count == 1 && term.var == free_var) {
          free_coeff += term.coeff;  // duplicate mention of the same var
        } else {
          ++free_count;
          free_var = term.var;
          free_coeff = term.coeff;
          if (free_count > 1) {
            break;
          }
        }
      }
      if (free_count > 1) {
        continue;
      }
      double residual = original.constraint_rhs(c) - fixed_sum;
      ConstraintSense sense = original.constraint_sense(c);
      if (free_count == 0) {
        // Fully fixed row: verify or declare infeasible.
        bool ok = true;
        switch (sense) {
          case ConstraintSense::kLessEqual:
            ok = 0.0 <= residual + 1e-7;
            break;
          case ConstraintSense::kGreaterEqual:
            ok = 0.0 >= residual - 1e-7;
            break;
          case ConstraintSense::kEqual:
            ok = std::abs(residual) <= 1e-7;
            break;
        }
        if (!ok) {
          infeasible_ = true;
          return;
        }
        row_dropped[c] = true;
        ++num_dropped_rows_;
        changed = true;
        continue;
      }
      if (free_coeff == 0.0) {
        continue;
      }
      // Singleton row: a * x {<=,>=,=} residual.
      double bound = residual / free_coeff;
      bool upper = (sense == ConstraintSense::kLessEqual) == (free_coeff > 0);
      switch (sense) {
        case ConstraintSense::kEqual:
          lb[free_var] = std::max(lb[free_var], bound);
          ub[free_var] = std::min(ub[free_var], bound);
          break;
        default:
          if (upper) {
            ub[free_var] = std::min(ub[free_var], bound);
          } else {
            lb[free_var] = std::max(lb[free_var], bound);
          }
          break;
      }
      round_integral(free_var);
      if (lb[free_var] > ub[free_var] + 1e-7) {
        infeasible_ = true;
        return;
      }
      row_dropped[c] = true;
      ++num_dropped_rows_;
      changed = true;
    }
    if (!changed) {
      break;
    }
  }

  // Build the reduced model.
  var_map_.assign(n, -1);
  fixed_value_.assign(n, 0.0);
  for (int v = 0; v < n; ++v) {
    if (is_fixed(v)) {
      fixed_value_[v] = lb[v];
      objective_offset_ += original.objective_coeff(v) * lb[v];
      ++num_fixed_;
      continue;
    }
    VarId reduced_id;
    switch (original.var_type(v)) {
      case VarType::kContinuous:
        reduced_id = reduced_.AddContinuousVar(lb[v], ub[v],
                                               original.var_name(v));
        break;
      case VarType::kBinary:
        if (lb[v] == 0.0 && ub[v] == 1.0) {
          reduced_id = reduced_.AddBinaryVar(original.var_name(v));
        } else {
          reduced_id =
              reduced_.AddIntegerVar(lb[v], ub[v], original.var_name(v));
        }
        break;
      case VarType::kInteger:
        reduced_id =
            reduced_.AddIntegerVar(lb[v], ub[v], original.var_name(v));
        break;
    }
    reduced_.AddObjectiveTerm(reduced_id, original.objective_coeff(v));
    var_map_[v] = reduced_id;
  }

  for (int c = 0; c < m; ++c) {
    if (row_dropped[c]) {
      continue;
    }
    std::vector<LinTerm> terms;
    double rhs = original.constraint_rhs(c);
    for (const LinTerm& term : original.constraint_terms(c)) {
      if (var_map_[term.var] >= 0) {
        terms.push_back({var_map_[term.var], term.coeff});
      } else {
        rhs -= term.coeff * fixed_value_[term.var];
      }
    }
    reduced_.AddConstraint(std::move(terms), original.constraint_sense(c),
                           rhs, original.constraint_name(c));
  }
}

std::vector<double> Presolver::RestoreSolution(
    std::span<const double> reduced_values) const {
  std::vector<double> values(original_.num_vars());
  for (int v = 0; v < original_.num_vars(); ++v) {
    values[v] = var_map_[v] >= 0 ? reduced_values[var_map_[v]]
                                 : fixed_value_[v];
  }
  return values;
}

std::vector<double> Presolver::ProjectSolution(
    std::span<const double> original_values) const {
  std::vector<double> values(reduced_.num_vars(), 0.0);
  for (int v = 0; v < original_.num_vars(); ++v) {
    if (var_map_[v] >= 0) {
      values[var_map_[v]] = original_values[v];
    } else if (std::abs(original_values[v] - fixed_value_[v]) > 1e-6) {
      return {};  // conflicts with a presolve fixing
    }
  }
  return values;
}

}  // namespace tetrisched
