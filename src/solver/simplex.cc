#include "src/solver/simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/metrics.h"

namespace tetrisched {
namespace {

// Pivot iterations between cooperative deadline polls (power of two; each
// poll is one atomic load plus one clock read, so this just keeps the clock
// off the per-pivot path).
constexpr int kCancelPollMask = 15;

Counter* BlandActivations() {
  static Counter* counter =
      GlobalMetrics().GetCounter("tetrisched_solver_bland_activations_total");
  return counter;
}

// Partial pricing: variables are scanned one rotating section at a time, and
// only when the current section has no improving candidate does the scan
// widen to the rest. A section is total_/kPricingSections variables but never
// fewer than kMinPricingSection, so small models (every unit-test model)
// degenerate to the exact full Dantzig scan.
constexpr int kPricingSections = 8;
constexpr int kMinPricingSection = 128;

}  // namespace

LpSolver::LpSolver(const MilpModel& model, LpOptions options)
    : model_(model), options_(options) {
  n_ = model.num_vars();
  m_ = model.num_constraints();
  total_ = n_ + m_;

  cols_.assign(total_, {});
  rhs_b_.assign(m_, 0.0);
  for (int c = 0; c < m_; ++c) {
    rhs_b_[c] = model.constraint_rhs(c);
    for (const LinTerm& term : model.constraint_terms(c)) {
      cols_[term.var].push_back({c, term.coeff});
    }
    // Slack column: unit vector on this row.
    cols_[n_ + c].push_back({c, 1.0});
  }
  // Merge duplicate variable mentions within a row.
  for (int v = 0; v < n_; ++v) {
    auto& col = cols_[v];
    std::sort(col.begin(), col.end(),
              [](const ColEntry& a, const ColEntry& b) { return a.row < b.row; });
    size_t out = 0;
    for (size_t i = 0; i < col.size(); ++i) {
      if (out > 0 && col[out - 1].row == col[i].row) {
        col[out - 1].coeff += col[i].coeff;
      } else {
        col[out++] = col[i];
      }
    }
    col.resize(out);
  }

  obj_.assign(total_, 0.0);
  for (int v = 0; v < n_; ++v) {
    obj_[v] = model.objective_coeff(v);
  }
}

void LpSolver::InstallBounds(std::span<const double> lower,
                             std::span<const double> upper) {
  lb_.assign(total_, 0.0);
  ub_.assign(total_, 0.0);
  for (int v = 0; v < n_; ++v) {
    lb_[v] = lower[v];
    ub_[v] = upper[v];
  }
  for (int c = 0; c < m_; ++c) {
    switch (model_.constraint_sense(c)) {
      case ConstraintSense::kLessEqual:
        lb_[n_ + c] = 0.0;
        ub_[n_ + c] = kInfinity;
        break;
      case ConstraintSense::kGreaterEqual:
        lb_[n_ + c] = -kInfinity;
        ub_[n_ + c] = 0.0;
        break;
      case ConstraintSense::kEqual:
        lb_[n_ + c] = 0.0;
        ub_[n_ + c] = 0.0;
        break;
    }
  }
}

void LpSolver::InstallSlackBasis() {
  basic_.assign(m_, 0);
  status_.assign(total_, Status::kAtLower);
  x_.assign(total_, 0.0);
  for (int v = 0; v < total_; ++v) {
    if (std::isfinite(lb_[v])) {
      status_[v] = Status::kAtLower;
      x_[v] = lb_[v];
    } else if (std::isfinite(ub_[v])) {
      status_[v] = Status::kAtUpper;
      x_[v] = ub_[v];
    } else {
      status_[v] = Status::kFreeZero;
      x_[v] = 0.0;
    }
  }
  for (int c = 0; c < m_; ++c) {
    basic_[c] = n_ + c;
    status_[n_ + c] = Status::kBasic;
  }
  binv_.assign(static_cast<size_t>(m_) * m_, 0.0);
  for (int i = 0; i < m_; ++i) {
    Binv(i, i) = 1.0;
  }
  pivots_since_refactor_ = 0;
}

bool LpSolver::InstallWarmBasis(const LpBasis& warm) {
  if (static_cast<int>(warm.basic.size()) != m_ ||
      static_cast<int>(warm.status.size()) != total_) {
    return false;
  }
  basic_.assign(warm.basic.begin(), warm.basic.end());
  status_.assign(total_, Status::kAtLower);
  x_.assign(total_, 0.0);
  std::vector<bool> is_basic(total_, false);
  for (int i = 0; i < m_; ++i) {
    if (basic_[i] < 0 || basic_[i] >= total_ || is_basic[basic_[i]]) {
      return false;
    }
    is_basic[basic_[i]] = true;
  }
  for (int v = 0; v < total_; ++v) {
    if (is_basic[v]) {
      status_[v] = Status::kBasic;
      continue;
    }
    Status s = static_cast<Status>(warm.status[v]);
    if (s == Status::kAtUpper && std::isfinite(ub_[v])) {
      status_[v] = Status::kAtUpper;
      x_[v] = ub_[v];
    } else if (std::isfinite(lb_[v])) {
      status_[v] = Status::kAtLower;
      x_[v] = lb_[v];
    } else if (std::isfinite(ub_[v])) {
      status_[v] = Status::kAtUpper;
      x_[v] = ub_[v];
    } else {
      status_[v] = Status::kFreeZero;
      x_[v] = 0.0;
    }
  }
  // Build the inverse of the warm basis; a singular snapshot is rejected.
  binv_.assign(static_cast<size_t>(m_) * m_, 0.0);
  std::vector<double> bmat(static_cast<size_t>(m_) * m_, 0.0);
  for (int i = 0; i < m_; ++i) {
    for (const ColEntry& e : cols_[basic_[i]]) {
      bmat[static_cast<size_t>(e.row) * m_ + i] = e.coeff;
    }
    Binv(i, i) = 1.0;
  }
  // Gauss-Jordan with partial pivoting on the augmented [B | I]. O(m^3), so
  // on large bases this is the one place a deadline could silently slip by a
  // whole refactorization: poll the token per column and bail (the caller
  // falls back to the slack basis, and Iterate notices the expiry on its
  // first poll).
  for (int col = 0; col < m_; ++col) {
    if (options_.cancel != nullptr && (col & kCancelPollMask) == 0 &&
        options_.cancel->Expired()) {
      return false;
    }
    int pivot_row = col;
    double best = std::abs(bmat[static_cast<size_t>(col) * m_ + col]);
    for (int r = col + 1; r < m_; ++r) {
      double mag = std::abs(bmat[static_cast<size_t>(r) * m_ + col]);
      if (mag > best) {
        best = mag;
        pivot_row = r;
      }
    }
    if (best < 1e-11) {
      return false;
    }
    if (pivot_row != col) {
      for (int j = 0; j < m_; ++j) {
        std::swap(bmat[static_cast<size_t>(col) * m_ + j],
                  bmat[static_cast<size_t>(pivot_row) * m_ + j]);
        std::swap(Binv(col, j), Binv(pivot_row, j));
      }
    }
    double inv_pivot = 1.0 / bmat[static_cast<size_t>(col) * m_ + col];
    for (int j = 0; j < m_; ++j) {
      bmat[static_cast<size_t>(col) * m_ + j] *= inv_pivot;
      Binv(col, j) *= inv_pivot;
    }
    for (int r = 0; r < m_; ++r) {
      if (r == col) {
        continue;
      }
      double factor = bmat[static_cast<size_t>(r) * m_ + col];
      if (factor == 0.0) {
        continue;
      }
      for (int j = 0; j < m_; ++j) {
        bmat[static_cast<size_t>(r) * m_ + j] -=
            factor * bmat[static_cast<size_t>(col) * m_ + j];
        Binv(r, j) -= factor * Binv(col, j);
      }
    }
  }
  pivots_since_refactor_ = 0;
  return true;
}

void LpSolver::RefactorizeOrReset() {
  LpBasis snapshot = BasisSnapshot();
  if (!InstallWarmBasis(snapshot)) {
    // A cancelled rebuild is expected (Iterate returns kCancelled right
    // after); only a genuinely singular basis deserves the warning.
    if (options_.cancel == nullptr || !options_.cancel->Expired()) {
      TETRI_LOG(kWarning) << "singular basis during refactorization; resetting";
    }
    InstallSlackBasis();
  }
}

void LpSolver::RecomputeBasicValues() {
  std::vector<double> residual = rhs_b_;
  for (int v = 0; v < total_; ++v) {
    if (status_[v] == Status::kBasic || x_[v] == 0.0) {
      continue;
    }
    for (const ColEntry& e : cols_[v]) {
      residual[e.row] -= e.coeff * x_[v];
    }
  }
  for (int i = 0; i < m_; ++i) {
    double sum = 0.0;
    const double* row = &binv_[static_cast<size_t>(i) * m_];
    for (int k = 0; k < m_; ++k) {
      sum += row[k] * residual[k];
    }
    x_[basic_[i]] = sum;
  }
}

double LpSolver::ColumnDot(int var, std::span<const double> row_vec) const {
  double sum = 0.0;
  for (const ColEntry& e : cols_[var]) {
    sum += e.coeff * row_vec[e.row];
  }
  return sum;
}

void LpSolver::ComputeTableauColumn(int var, std::vector<double>& out) const {
  out.assign(m_, 0.0);
  for (const ColEntry& e : cols_[var]) {
    const double coeff = e.coeff;
    const size_t col = static_cast<size_t>(e.row);
    for (int i = 0; i < m_; ++i) {
      out[i] += binv_[static_cast<size_t>(i) * m_ + col] * coeff;
    }
  }
}

double LpSolver::TotalInfeasibility() const {
  double total = 0.0;
  for (int i = 0; i < m_; ++i) {
    int v = basic_[i];
    if (x_[v] < lb_[v]) {
      total += lb_[v] - x_[v];
    } else if (x_[v] > ub_[v]) {
      total += x_[v] - ub_[v];
    }
  }
  return total;
}

void LpSolver::BuildPhase1Costs(std::vector<double>& costs) const {
  costs.assign(total_, 0.0);
  for (int i = 0; i < m_; ++i) {
    int v = basic_[i];
    if (x_[v] < lb_[v] - options_.feas_tol) {
      costs[v] = 1.0;  // needs to increase
    } else if (x_[v] > ub_[v] + options_.feas_tol) {
      costs[v] = -1.0;  // needs to decrease
    }
  }
}

LpStatus LpSolver::Iterate(std::span<const double> costs_in, bool phase1,
                           int* iterations_left) {
  std::vector<double> phase1_costs;
  std::vector<double> y(m_);
  std::vector<double> w;
  int degenerate_streak = 0;
  int cancel_poll = 0;
  bool was_bland = false;

  while (true) {
    if (options_.cancel != nullptr && (cancel_poll++ & kCancelPollMask) == 0 &&
        options_.cancel->Expired()) {
      return LpStatus::kCancelled;
    }
    if (*iterations_left <= 0) {
      return LpStatus::kIterationLimit;
    }
    --*iterations_left;

    std::span<const double> costs = costs_in;
    if (phase1) {
      if (TotalInfeasibility() <= options_.feas_tol * (m_ + 1)) {
        return LpStatus::kOptimal;
      }
      BuildPhase1Costs(phase1_costs);
      costs = phase1_costs;
    }

    // y' = c_B' B^-1 ; skip zero-cost basic rows (most of them in phase 1).
    std::fill(y.begin(), y.end(), 0.0);
    for (int i = 0; i < m_; ++i) {
      double cb = costs[basic_[i]];
      if (cb == 0.0) {
        continue;
      }
      const double* row = &binv_[static_cast<size_t>(i) * m_];
      for (int k = 0; k < m_; ++k) {
        y[k] += cb * row[k];
      }
    }

    // Pricing: partial (rotating-section) Dantzig by default, Bland when
    // stalling. Optimality is only ever declared after a scan that covered
    // every variable, so partial pricing changes the pivot sequence but not
    // the answer; Bland's rule keeps its full lowest-index-first scan, which
    // its anti-cycling argument requires.
    const bool bland = degenerate_streak >= options_.bland_pivot_limit;
    if (bland && !was_bland) {
      BlandActivations()->Increment();
    }
    was_bland = bland;
    int enter = -1;
    int enter_dir = 0;
    double best_viol = options_.cost_tol;
    auto price_candidate = [&](int v) {
      if (status_[v] == Status::kBasic) {
        return false;
      }
      if (ub_[v] - lb_[v] <= 0.0) {
        return false;  // fixed variable can never move
      }
      double z = costs[v] - ColumnDot(v, y);
      int dir = 0;
      double viol = 0.0;
      switch (status_[v]) {
        case Status::kAtLower:
          if (z > options_.cost_tol) {
            dir = 1;
            viol = z;
          }
          break;
        case Status::kAtUpper:
          if (z < -options_.cost_tol) {
            dir = -1;
            viol = -z;
          }
          break;
        case Status::kFreeZero:
          if (std::abs(z) > options_.cost_tol) {
            dir = z > 0 ? 1 : -1;
            viol = std::abs(z);
          }
          break;
        case Status::kBasic:
          break;
      }
      if (dir == 0) {
        return false;
      }
      if (bland) {
        enter = v;
        enter_dir = dir;
        return true;
      }
      if (viol > best_viol) {
        best_viol = viol;
        enter = v;
        enter_dir = dir;
      }
      return false;
    };
    if (bland) {
      for (int v = 0; v < total_; ++v) {
        if (price_candidate(v)) {
          break;
        }
      }
    } else {
      const int section =
          std::max(kMinPricingSection, total_ / kPricingSections);
      int window_start = pricing_cursor_ < total_ ? pricing_cursor_ : 0;
      int scanned = 0;
      while (scanned < total_) {
        const int window_end = std::min(window_start + section, total_);
        for (int v = window_start; v < window_end; ++v) {
          price_candidate(v);
        }
        scanned += window_end - window_start;
        if (enter >= 0) {
          // Keep the cursor here: the section that just produced a candidate
          // is the most likely home of the next one.
          pricing_cursor_ = window_start;
          break;
        }
        window_start = window_end >= total_ ? 0 : window_end;
      }
    }
    if (enter < 0) {
      return LpStatus::kOptimal;  // full scan found no improving direction
    }

    ComputeTableauColumn(enter, w);

    // Ratio test. Entering variable moves by t >= 0 in direction enter_dir;
    // basic i changes by -enter_dir * w[i] * t.
    double limit = kInfinity;
    int leave_row = -1;
    bool leave_to_upper = false;
    double best_pivot_mag = 0.0;
    for (int i = 0; i < m_; ++i) {
      double delta = enter_dir * w[i];
      if (std::abs(delta) <= options_.pivot_tol) {
        continue;
      }
      int bvar = basic_[i];
      double xb = x_[bvar];
      double l = lb_[bvar];
      double u = ub_[bvar];
      double ratio;
      bool to_upper;
      if (phase1 && xb < l - options_.feas_tol) {
        // Infeasible below: blocks only when moving up to its lower bound.
        if (delta < 0.0) {
          ratio = (xb - l) / delta;
          to_upper = false;
        } else {
          continue;
        }
      } else if (phase1 && xb > u + options_.feas_tol) {
        if (delta > 0.0) {
          ratio = (xb - u) / delta;
          to_upper = true;
        } else {
          continue;
        }
      } else if (delta > 0.0) {
        if (!std::isfinite(l)) {
          continue;
        }
        ratio = (xb - l) / delta;
        to_upper = false;
      } else {
        if (!std::isfinite(u)) {
          continue;
        }
        ratio = (xb - u) / delta;
        to_upper = true;
      }
      ratio = std::max(ratio, 0.0);
      bool better;
      if (bland) {
        better = ratio < limit - 1e-12 ||
                 (leave_row >= 0 && ratio < limit + 1e-12 &&
                  basic_[i] < basic_[leave_row]);
      } else {
        better = ratio < limit - 1e-12 ||
                 (ratio < limit + 1e-12 && std::abs(w[i]) > best_pivot_mag);
      }
      if (better) {
        limit = ratio;
        leave_row = i;
        leave_to_upper = to_upper;
        best_pivot_mag = std::abs(w[i]);
      }
    }

    // The entering variable's own opposite bound can bind first (bound flip).
    double flip_range = ub_[enter] - lb_[enter];
    if (std::isfinite(flip_range) && flip_range <= limit) {
      double t = flip_range;
      for (int i = 0; i < m_; ++i) {
        x_[basic_[i]] -= enter_dir * w[i] * t;
      }
      if (status_[enter] == Status::kAtLower) {
        x_[enter] = ub_[enter];
        status_[enter] = Status::kAtUpper;
      } else {
        x_[enter] = lb_[enter];
        status_[enter] = Status::kAtLower;
      }
      degenerate_streak = t <= options_.feas_tol ? degenerate_streak + 1 : 0;
      continue;
    }

    if (leave_row < 0) {
      if (phase1) {
        TETRI_LOG(kWarning) << "phase-1 unbounded direction; treating as "
                               "numerically infeasible";
        return LpStatus::kInfeasible;
      }
      return LpStatus::kUnbounded;
    }

    double t = limit;
    for (int i = 0; i < m_; ++i) {
      x_[basic_[i]] -= enter_dir * w[i] * t;
    }
    if (status_[enter] == Status::kAtLower) {
      x_[enter] = lb_[enter] + t;
    } else if (status_[enter] == Status::kAtUpper) {
      x_[enter] = ub_[enter] - t;
    } else {
      x_[enter] = enter_dir * t;
    }

    int leaving = basic_[leave_row];
    status_[leaving] = leave_to_upper ? Status::kAtUpper : Status::kAtLower;
    x_[leaving] = leave_to_upper ? ub_[leaving] : lb_[leaving];
    basic_[leave_row] = enter;
    status_[enter] = Status::kBasic;

    // Update the explicit inverse: one Gauss step on the pivot row.
    double pivot = w[leave_row];
    double* prow = &binv_[static_cast<size_t>(leave_row) * m_];
    double inv_pivot = 1.0 / pivot;
    for (int k = 0; k < m_; ++k) {
      prow[k] *= inv_pivot;
    }
    for (int i = 0; i < m_; ++i) {
      if (i == leave_row) {
        continue;
      }
      double factor = w[i];
      if (factor == 0.0) {
        continue;
      }
      double* row = &binv_[static_cast<size_t>(i) * m_];
      for (int k = 0; k < m_; ++k) {
        row[k] -= factor * prow[k];
      }
    }

    degenerate_streak = t <= options_.feas_tol ? degenerate_streak + 1 : 0;
    if (++pivots_since_refactor_ >= options_.refactor_every) {
      RefactorizeOrReset();
      RecomputeBasicValues();
    }
  }
}

LpResult LpSolver::Solve() {
  std::vector<double> lower(n_), upper(n_);
  for (int v = 0; v < n_; ++v) {
    lower[v] = model_.lower_bound(v);
    upper[v] = model_.upper_bound(v);
  }
  return Solve(lower, upper, nullptr);
}

LpResult LpSolver::Solve(std::span<const double> lower,
                         std::span<const double> upper) {
  return Solve(lower, upper, nullptr);
}

LpResult LpSolver::Solve(std::span<const double> lower,
                         std::span<const double> upper, const LpBasis* warm) {
  assert(static_cast<int>(lower.size()) == n_ &&
         static_cast<int>(upper.size()) == n_);
  InstallBounds(lower, upper);
  // Reset the pricing cursor so a solve's pivot sequence depends only on its
  // arguments, not on which solves this instance ran before (keeps
  // single-threaded branch-and-bound runs reproducible).
  pricing_cursor_ = 0;

  bool warm_ok = warm != nullptr && InstallWarmBasis(*warm);
  if (!warm_ok) {
    InstallSlackBasis();
  }
  RecomputeBasicValues();

  LpResult result;
  int iterations_left = options_.max_iterations;

  if (TotalInfeasibility() > options_.feas_tol * (m_ + 1)) {
    LpStatus phase1 = Iterate({}, /*phase1=*/true, &iterations_left);
    if (phase1 == LpStatus::kIterationLimit) {
      result.status = LpStatus::kIterationLimit;
      result.iterations = options_.max_iterations;
      return result;
    }
    if (phase1 == LpStatus::kCancelled) {
      // Cancelled while still (possibly) infeasible: report the cancellation
      // rather than misclassifying the interrupted state as infeasible.
      result.status = LpStatus::kCancelled;
      result.iterations = options_.max_iterations - iterations_left;
      return result;
    }
    if (TotalInfeasibility() > options_.feas_tol * (m_ + 1)) {
      result.status = LpStatus::kInfeasible;
      result.iterations = options_.max_iterations - iterations_left;
      return result;
    }
  }

  LpStatus phase2 = Iterate(obj_, /*phase1=*/false, &iterations_left);
  result.status = phase2;
  result.iterations = options_.max_iterations - iterations_left;
  if (phase2 != LpStatus::kOptimal && phase2 != LpStatus::kIterationLimit) {
    return result;
  }

  result.values.assign(n_, 0.0);
  double objective = 0.0;
  for (int v = 0; v < n_; ++v) {
    double x = x_[v];
    // Snap to bounds within tolerance so callers see clean values.
    if (x < lb_[v]) {
      x = lb_[v];
    } else if (x > ub_[v]) {
      x = ub_[v];
    }
    result.values[v] = x;
    objective += obj_[v] * x;
  }
  result.objective = objective;
  return result;
}

LpBasis LpSolver::BasisSnapshot() const {
  LpBasis snapshot;
  snapshot.basic.assign(basic_.begin(), basic_.end());
  snapshot.status.resize(total_);
  for (int v = 0; v < total_; ++v) {
    snapshot.status[v] = static_cast<uint8_t>(status_[v]);
  }
  return snapshot;
}

}  // namespace tetrisched
