#include "src/solver/milp.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <set>
#include <vector>

#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/span.h"
#include "src/common/thread_pool.h"
#include "src/solver/decompose.h"
#include "src/solver/presolve.h"

namespace tetrisched {
namespace {

using Clock = std::chrono::steady_clock;

// Registry-backed solver instruments (DESIGN.md §10). The phase histograms
// attribute each solve's wall-clock to presolve / LP pricing / B&B search;
// the counters aggregate work done by all branch-and-bound workers. Only
// per-LP-call timing and queue-wait timing read a clock on the hot path, and
// both are gated by ObservabilityEnabled().
struct SolverInstruments {
  Histogram* presolve_ms;
  Histogram* lp_ms;                 // per-LP-call latency (root + nodes)
  Histogram* branch_and_bound_ms;   // worker-section wall-clock per solve
  Histogram* queue_wait_ms;         // per queue_cv wait episode (enabled only)
  Histogram* decompose_ms;          // detection (+ extraction) per solve
  Histogram* components;            // components per decomposition-checked solve
  Histogram* largest_component_vars;
  Counter* solves;
  Counter* nodes;
  Counter* lp_iterations;
  Counter* incumbent_improvements;
  Counter* queue_waits;
  Counter* presolve_fixed_vars;
  Counter* presolve_dropped_rows;
};

// Power-of-two buckets for count-valued histograms (component counts and
// component sizes, not latencies).
const std::vector<double>& CountBuckets() {
  static const std::vector<double> buckets{1,  2,   4,   8,   16,   32,
                                           64, 128, 256, 512, 1024, 4096};
  return buckets;
}

SolverInstruments& Instruments() {
  MetricsRegistry& registry = GlobalMetrics();
  static SolverInstruments instruments{
      registry.GetHistogram("tetrisched_phase_presolve_ms"),
      registry.GetHistogram("tetrisched_phase_lp_ms"),
      registry.GetHistogram("tetrisched_phase_branch_and_bound_ms"),
      registry.GetHistogram("tetrisched_solver_queue_wait_ms"),
      registry.GetHistogram("tetrisched_phase_decompose_ms"),
      registry.GetHistogram("tetrisched_solver_components", CountBuckets()),
      registry.GetHistogram("tetrisched_solver_largest_component_vars",
                            CountBuckets()),
      registry.GetCounter("tetrisched_solver_solves_total"),
      registry.GetCounter("tetrisched_solver_nodes_total"),
      registry.GetCounter("tetrisched_solver_lp_iterations_total"),
      registry.GetCounter("tetrisched_solver_incumbent_improvements_total"),
      registry.GetCounter("tetrisched_solver_queue_waits_total"),
      registry.GetCounter("tetrisched_solver_presolve_fixed_vars_total"),
      registry.GetCounter("tetrisched_solver_presolve_dropped_rows_total"),
  };
  return instruments;
}

struct BoundChange {
  VarId var;
  double lower;
  double upper;
};

// One branch-and-bound node. Bound tightenings are stored as a single delta
// plus a shared pointer to the (immutable) parent, so creating a node is O(1)
// and deep trees stop copying O(depth) change lists on every branch.
struct Node {
  double bound;  // parent LP bound (optimistic estimate for this node)
  int depth = 0;
  uint64_t seq = 0;  // tie-break for deterministic ordering
  std::shared_ptr<const Node> parent;
  BoundChange delta{-1, 0.0, 0.0};  // delta.var < 0 on the root node
};

struct NodeOrder {
  // Max-heap on bound; deeper nodes win ties (tends to find incumbents),
  // then insertion order for determinism.
  bool operator()(const std::shared_ptr<const Node>& a,
                  const std::shared_ptr<const Node>& b) const {
    if (a->bound != b->bound) {
      return a->bound < b->bound;
    }
    if (a->depth != b->depth) {
      return a->depth < b->depth;
    }
    return a->seq > b->seq;
  }
};

using NodeQueue =
    std::priority_queue<std::shared_ptr<const Node>,
                        std::vector<std::shared_ptr<const Node>>, NodeOrder>;

// Applies the ancestor chain's bound tightenings on top of the root bounds
// already present in lower/upper. Tightenings commute (max on lower, min on
// upper), so walking leaf-to-root is fine.
void ApplyNodeBounds(const Node& node, std::span<double> lower,
                     std::span<double> upper) {
  for (const Node* cur = &node; cur != nullptr; cur = cur->parent.get()) {
    if (cur->delta.var < 0) {
      continue;
    }
    lower[cur->delta.var] = std::max(lower[cur->delta.var], cur->delta.lower);
    upper[cur->delta.var] = std::min(upper[cur->delta.var], cur->delta.upper);
  }
}

// Picks the integer-like variable whose LP value is most fractional,
// preferring binaries (choice indicators) over general integers (partition
// counts) — indicator integrality usually drags the counts along.
int MostFractionalVar(const MilpModel& model, std::span<const double> values,
                      double int_tol) {
  int best_binary = -1;
  double best_binary_score = int_tol;
  int best_integer = -1;
  double best_integer_score = int_tol;
  for (int v = 0; v < model.num_vars(); ++v) {
    if (!model.IsIntegerLike(v)) {
      continue;
    }
    double x = values[v];
    double frac = x - std::floor(x);
    double score = std::min(frac, 1.0 - frac);
    if (model.var_type(v) == VarType::kBinary) {
      if (score > best_binary_score) {
        best_binary_score = score;
        best_binary = v;
      }
    } else if (score > best_integer_score) {
      best_integer_score = score;
      best_integer = v;
    }
  }
  return best_binary >= 0 ? best_binary : best_integer;
}

// Rounds integer-like entries to the nearest integer (for clean incumbents).
std::vector<double> RoundedCopy(const MilpModel& model,
                                std::span<const double> values) {
  std::vector<double> rounded(values.begin(), values.end());
  for (int v = 0; v < model.num_vars(); ++v) {
    if (model.IsIntegerLike(v)) {
      rounded[v] = std::round(rounded[v]);
    }
  }
  return rounded;
}

}  // namespace

MilpSolver::MilpSolver(const MilpModel& model, MilpOptions options)
    : model_(model), options_(options) {}

MilpResult MilpSolver::Solve(std::span<const double> warm_start) {
  const auto start_time = Clock::now();
  auto elapsed = [&]() {
    return std::chrono::duration<double>(Clock::now() - start_time).count();
  };
  SolverInstruments& ins = Instruments();
  auto millis_since = [](Clock::time_point since) {
    return std::chrono::duration<double, std::milli>(Clock::now() - since)
        .count();
  };
  // Per-LP-call latency only reads the clock when observability is on; the
  // iteration counter flush happens at the call sites as before.
  auto timed_lp = [&](LpSolver& lp, std::span<const double> lo,
                      std::span<const double> hi,
                      const LpBasis* warm) -> LpResult {
    if (!ObservabilityEnabled()) {
      return lp.Solve(lo, hi, warm);
    }
    const auto lp_start = Clock::now();
    LpResult lp_result = lp.Solve(lo, hi, warm);
    ins.lp_ms->Observe(millis_since(lp_start));
    return lp_result;
  };

  const int num_workers =
      std::max(1, options_.num_threads > 0 ? options_.num_threads
                                           : ThreadPool::HardwareThreads());

  // A non-positive budget means "no solve attempt": report no-incumbent
  // explicitly so callers exercise their degradation path instead of
  // misreading a trivially empty plan as a decision.
  if (options_.time_limit_seconds <= 0.0) {
    MilpResult result;
    result.status = MilpStatus::kNoSolution;
    result.solve_status = SolveStatus::kNoIncumbent;
    result.threads_used = num_workers;
    result.solve_seconds = elapsed();
    return result;
  }

  // Hard deadline for this solve: the internal wall-clock limit composed
  // with any external token (earliest wins). Threaded through every LP solve
  // below — root, workers, diving, presolve recursion, decomposed components
  // — so expiry is honored inside a pivot loop, not just at node boundaries.
  CancelToken deadline;
  deadline.ArmAfterSeconds(options_.time_limit_seconds);
  if (options_.cancel != nullptr &&
      options_.cancel->deadline_nanos() < deadline.deadline_nanos()) {
    deadline.ArmAtNanos(options_.cancel->deadline_nanos());
  }

  if (options_.enable_presolve) {
    const auto presolve_start = Clock::now();
    // The presolve span pauses around the recursive solve of the reduced
    // model (which reports its own setup/root/branch_and_bound spans as
    // siblings) so trace durations stay additive, then resumes for the
    // solution-restore tail.
    std::optional<ScopedSpan> presolve_span;
    presolve_span.emplace("solver.presolve");
    Presolver presolver(model_);
    ins.presolve_fixed_vars->Increment(presolver.num_fixed_vars());
    ins.presolve_dropped_rows->Increment(presolver.num_dropped_rows());
    if (presolver.infeasible()) {
      ins.presolve_ms->Observe(millis_since(presolve_start));
      MilpResult result;
      result.status = MilpStatus::kInfeasible;
      result.threads_used = num_workers;
      result.solve_seconds = elapsed();
      return result;
    }
    if (presolver.num_fixed_vars() > 0 ||
        presolver.num_dropped_rows() > 0) {
      std::vector<double> projected_warm;
      if (!warm_start.empty() &&
          static_cast<int>(warm_start.size()) == model_.num_vars()) {
        projected_warm = presolver.ProjectSolution(warm_start);
      }
      MilpOptions inner_options = options_;
      inner_options.enable_presolve = false;
      // The inner solve restarts its elapsed clock; the composed token keeps
      // the original absolute deadline binding across the recursion.
      inner_options.cancel = &deadline;
      MilpSolver inner(presolver.reduced(), inner_options);
      // Reduction work ends here; the inner solve reports its own lp /
      // branch_and_bound phases against the reduced model.
      ins.presolve_ms->Observe(millis_since(presolve_start));
      presolve_span.reset();
      MilpResult result = inner.Solve(projected_warm);
      presolve_span.emplace("solver.presolve");
      if (result.HasSolution()) {
        result.values = presolver.RestoreSolution(result.values);
        result.objective = model_.ObjectiveValue(result.values);
      }
      result.best_bound += presolver.objective_offset();
      result.solve_seconds = elapsed();
      return result;
    }
    ins.presolve_ms->Observe(millis_since(presolve_start));
  }

  // Component decomposition (decompose.h / DESIGN.md §12). Runs on the
  // post-presolve model: by this point presolve either found nothing (we fell
  // through above) or this is the inner recursion's frame solving the reduced
  // model, whose severed couplings are exactly what detection exploits. When
  // the model splits, each component is solved as an independent MilpSolver
  // (with enable_decomposition off) and the stitched result returns here;
  // single-component models fall through to the monolithic search below with
  // nothing but an O(nonzeros) detection pass spent.
  if (options_.enable_decomposition) {
    std::optional<ScopedSpan> decompose_span;
    decompose_span.emplace("solver.decompose");
    const auto detect_start = Clock::now();
    Decomposition decomp = DetectComponents(model_);
    const double detect_ms = millis_since(detect_start);
    ins.decompose_ms->Observe(detect_ms);
    ins.components->Observe(std::max(1, decomp.num_components));
    ins.largest_component_vars->Observe(decomp.largest_component_vars());
    if (decomp.Splits()) {
      // Component solves flush their own node / LP-iteration / solve totals
      // into the registry; the stitched frame adds nothing on top. Each
      // component composes its pooled slice with this solve's deadline.
      MilpOptions decomposed_options = options_;
      decomposed_options.cancel = &deadline;
      MilpResult decomposed = SolveDecomposed(model_, decomp,
                                              decomposed_options, warm_start,
                                              detect_ms);
      decomposed.solve_seconds = elapsed();
      return decomposed;
    }
  }

  MilpResult result;
  result.threads_used = num_workers;
  const int n = model_.num_vars();

  // Covers tableau construction and incumbent seeding (the work between
  // presolve and the root relaxation); closed just before the root LP so
  // solver child spans tile scheduler.solve with no untracked gap.
  std::optional<ScopedSpan> setup_span;
  setup_span.emplace("solver.setup");

  LpOptions lp_options = options_.lp;
  lp_options.cancel = &deadline;
  LpSolver root_lp(model_, lp_options);

  std::vector<double> root_lower(n), root_upper(n);
  for (int v = 0; v < n; ++v) {
    root_lower[v] = model_.lower_bound(v);
    root_upper[v] = model_.upper_bound(v);
  }

  // ---- State shared between workers -------------------------------------
  //
  // Two locks, never held together:
  //  * queue_mu guards the open-node queue, the bounds of in-flight nodes,
  //    the sequence counter, and the termination flags;
  //  * incumbent_mu guards the incumbent vector/objective. The incumbent
  //    objective is mirrored in an atomic so the hot bound-pruning test in
  //    every worker never takes a lock.
  // Counters (nodes, LP iterations, stall) are plain atomics.
  std::mutex queue_mu;
  std::condition_variable queue_cv;
  NodeQueue open;
  std::multiset<double> expanding_bounds;  // bounds of nodes being expanded
  uint64_t next_seq = 0;
  bool done = false;
  bool limits_hit = false;
  bool stall_hit = false;  // limits_hit specifically via stall_node_limit
  bool found_unbounded = false;
  double final_bound = 0.0;  // last global bound observed at a pop

  std::mutex incumbent_mu;
  bool have_incumbent = false;
  double incumbent_obj = -kInfinity;
  std::vector<double> incumbent;
  // Mirror of incumbent_obj; -kInfinity means "no incumbent yet".
  std::atomic<double> incumbent_atomic{-kInfinity};
  // True once a warm start or the search itself supplied the incumbent;
  // stays false while only the trivial all-zero fallback is held, which is
  // what distinguishes kTimeLimit/kStall from kNoIncumbent.
  std::atomic<bool> real_incumbent{false};

  std::atomic<int> nodes{0};
  std::atomic<long> lp_iterations{0};
  std::atomic<int> nodes_since_improvement{0};

  auto finalize_counts = [&]() {
    result.nodes = nodes.load(std::memory_order_relaxed);
    result.lp_iterations = lp_iterations.load(std::memory_order_relaxed);
    result.solve_seconds = elapsed();
    // Flush this solve's totals into the process-wide registry. The
    // presolve-recursion path never reaches here in the outer frame, so the
    // inner solve's flush is the only one and nothing double-counts.
    ins.solves->Increment();
    ins.nodes->Increment(result.nodes);
    ins.lp_iterations->Increment(result.lp_iterations);
  };

  auto offer_incumbent = [&](std::span<const double> values,
                             bool from_search = true) {
    std::vector<double> rounded = RoundedCopy(model_, values);
    if (!model_.IsFeasible(rounded, 1e-5)) {
      return false;
    }
    double obj = model_.ObjectiveValue(rounded);
    std::lock_guard<std::mutex> lock(incumbent_mu);
    if (!have_incumbent || obj > incumbent_obj) {
      // Any strict improvement resets the stall counter, including the very
      // first incumbent (the zero-clamped fallback or a warm start).
      ins.incumbent_improvements->Increment();
      nodes_since_improvement.store(0, std::memory_order_relaxed);
      incumbent = std::move(rounded);
      incumbent_obj = obj;
      have_incumbent = true;
      incumbent_atomic.store(obj, std::memory_order_release);
      if (from_search) {
        real_incumbent.store(true, std::memory_order_relaxed);
      }
    }
    return true;
  };

  // Caller-provided warm start (e.g. last cycle's plan), checked first.
  if (!warm_start.empty() && static_cast<int>(warm_start.size()) == n) {
    offer_incumbent(warm_start);
  }
  // Zero-clamped fallback: in scheduling models "assign nothing" is always
  // feasible, which guarantees the solver never returns empty-handed on a
  // time limit.
  {
    std::vector<double> zero(n);
    for (int v = 0; v < n; ++v) {
      zero[v] = std::clamp(0.0, root_lower[v], root_upper[v]);
    }
    offer_incumbent(zero, /*from_search=*/false);
  }

  auto gap_satisfied = [&](double bound) {
    double inc = incumbent_atomic.load(std::memory_order_acquire);
    if (inc == -kInfinity) {
      return false;
    }
    double gap = bound - inc;
    if (gap <= options_.abs_gap) {
      return true;
    }
    return gap <= options_.rel_gap * std::max(std::abs(inc), 1e-9);
  };

  // Diving heuristic: from a fractional LP point, repeatedly fix the most
  // fractional integer to a rounding (trying the nearer side first, the
  // other side on infeasibility) until integral. Cheap and effective on
  // packing structures; used at the root and periodically during the search.
  // `lp` is the calling worker's private solver.
  auto dive = [&](LpSolver& lp, const std::vector<double>& from_lower,
                  const std::vector<double>& from_upper, LpResult start_relax,
                  const LpBasis* start_basis) {
    std::vector<double> dive_lower = from_lower;
    std::vector<double> dive_upper = from_upper;
    LpResult relax = std::move(start_relax);
    LpBasis basis;
    const LpBasis* warm = start_basis;
    for (int step = 0; step < 2 * n + 16; ++step) {
      int v = MostFractionalVar(model_, relax.values, options_.int_tol);
      if (v < 0) {
        offer_incumbent(relax.values);
        return;
      }
      double x = relax.values[v];
      double near = std::clamp(std::round(x), dive_lower[v], dive_upper[v]);
      double far = near > x ? std::floor(x) : std::ceil(x);
      far = std::clamp(far, dive_lower[v], dive_upper[v]);

      double saved_lower = dive_lower[v];
      double saved_upper = dive_upper[v];
      dive_lower[v] = near;
      dive_upper[v] = near;
      LpResult next = timed_lp(lp, dive_lower, dive_upper, warm);
      lp_iterations.fetch_add(next.iterations, std::memory_order_relaxed);
      if (next.status == LpStatus::kCancelled) {
        return;  // deadline expired mid-dive; keep whatever incumbent exists
      }
      if (next.status != LpStatus::kOptimal && far != near) {
        dive_lower[v] = far;
        dive_upper[v] = far;
        next = timed_lp(lp, dive_lower, dive_upper, warm);
        lp_iterations.fetch_add(next.iterations, std::memory_order_relaxed);
      }
      if (next.status != LpStatus::kOptimal) {
        // Both roundings failed: release the variable and stop diving.
        dive_lower[v] = saved_lower;
        dive_upper[v] = saved_upper;
        return;
      }
      relax = std::move(next);
      basis = lp.BasisSnapshot();
      warm = &basis;
      if (deadline.Expired()) {
        return;
      }
    }
  };

  setup_span.reset();

  // The whole root phase (relaxation, integrality check, dive); root_lp and
  // root_dive record as children. Closed before branch and bound; on the
  // early-return paths the destructor closes it at function exit.
  std::optional<ScopedSpan> root_span;
  root_span.emplace("solver.root");

  // Root relaxation (always on the calling thread).
  LpResult root = [&] {
    TETRI_SPAN("solver.root_lp");
    return timed_lp(root_lp, root_lower, root_upper, nullptr);
  }();
  lp_iterations.fetch_add(root.iterations, std::memory_order_relaxed);
  nodes.store(1, std::memory_order_relaxed);
  if (root.status == LpStatus::kInfeasible) {
    result.status =
        have_incumbent ? MilpStatus::kFeasible : MilpStatus::kInfeasible;
    if (have_incumbent) {
      result.objective = incumbent_obj;
      result.values = incumbent;
      result.best_bound = incumbent_obj;
      // The incumbent (warm start or zero plan) is all the search will get.
      result.solve_status = real_incumbent.load(std::memory_order_relaxed)
                                ? SolveStatus::kOptimal
                                : SolveStatus::kNoIncumbent;
    }
    finalize_counts();
    return result;
  }
  if (root.status == LpStatus::kUnbounded) {
    result.status = MilpStatus::kUnbounded;
    finalize_counts();
    return result;
  }
  if (root.status == LpStatus::kCancelled) {
    // Deadline expired inside the root relaxation. Return the best incumbent
    // held so far (warm start or the zero-clamped fallback); the relaxation
    // never finished, so no honest bound exists.
    if (have_incumbent) {
      result.status = MilpStatus::kFeasible;
      result.objective = incumbent_obj;
      result.values = incumbent;
      result.best_bound = kInfinity;
      result.solve_status = real_incumbent.load(std::memory_order_relaxed)
                                ? SolveStatus::kTimeLimit
                                : SolveStatus::kNoIncumbent;
    } else {
      result.status = MilpStatus::kNoSolution;
      result.solve_status = SolveStatus::kNoIncumbent;
    }
    finalize_counts();
    return result;
  }
  if (root.status == LpStatus::kIterationLimit) {
    TETRI_LOG(kWarning) << "LP iteration limit at root; bound may be loose";
  }

  final_bound = root.objective;
  LpBasis root_basis = root_lp.BasisSnapshot();

  int root_branch_var =
      MostFractionalVar(model_, root.values, options_.int_tol);
  if (root_branch_var < 0) {
    offer_incumbent(root.values);
    result.status = MilpStatus::kOptimal;
    result.solve_status = SolveStatus::kOptimal;
    result.objective = incumbent_obj;
    result.values = incumbent;
    result.best_bound = root.objective;
    finalize_counts();
    return result;
  }
  if (options_.enable_diving) {
    TETRI_SPAN("solver.root_dive");
    dive(root_lp, root_lower, root_upper, root, &root_basis);
  }

  {
    auto node = std::make_shared<Node>();
    node->bound = root.objective;
    node->seq = next_seq++;
    open.push(std::move(node));
  }

  constexpr int kDiveEvery = 64;

  // Best-bound branch and bound over the shared queue. Each worker owns its
  // LpSolver (and with it the warm-start basis of the last node it solved);
  // everything else it touches is the shared state above.
  auto worker = [&](int /*worker_id*/) {
    LpSolver lp(model_, lp_options);
    LpBasis last_basis = root_basis;
    std::vector<double> lower(n), upper(n);

    std::unique_lock<std::mutex> lock(queue_mu);
    while (true) {
      auto runnable = [&] {
        return done || !open.empty() || expanding_bounds.empty();
      };
      if (!runnable()) {
        // Queue contention: this worker is about to block on peers. The
        // wait count is always maintained; the wait-duration histogram
        // reads the clock only when observability is on.
        ins.queue_waits->Increment();
        if (ObservabilityEnabled()) {
          const auto wait_start = Clock::now();
          queue_cv.wait(lock, runnable);
          ins.queue_wait_ms->Observe(millis_since(wait_start));
        } else {
          queue_cv.wait(lock, runnable);
        }
      }
      if (done) {
        break;
      }
      if (open.empty()) {
        if (expanding_bounds.empty()) {
          // Queue drained and nobody is expanding: search exhausted.
          done = true;
          queue_cv.notify_all();
          break;
        }
        continue;  // spurious wakeup while peers still expand
      }
      if (nodes.load(std::memory_order_relaxed) >= options_.max_nodes ||
          deadline.Expired()) {
        limits_hit = true;
        done = true;
        queue_cv.notify_all();
        break;
      }
      if (options_.stall_node_limit > 0 &&
          incumbent_atomic.load(std::memory_order_acquire) != -kInfinity &&
          nodes_since_improvement.load(std::memory_order_relaxed) >=
              options_.stall_node_limit) {
        limits_hit = true;
        stall_hit = true;
        done = true;
        queue_cv.notify_all();
        break;
      }

      std::shared_ptr<const Node> node = open.top();
      double global_bound = node->bound;
      if (!expanding_bounds.empty()) {
        global_bound = std::max(global_bound, *expanding_bounds.rbegin());
      }
      final_bound = global_bound;
      if (gap_satisfied(global_bound)) {
        done = true;
        queue_cv.notify_all();
        break;
      }
      open.pop();
      {
        double inc = incumbent_atomic.load(std::memory_order_acquire);
        if (inc != -kInfinity && node->bound <= inc + options_.abs_gap) {
          continue;  // cannot improve on the incumbent
        }
      }
      auto active_it = expanding_bounds.insert(node->bound);
      lock.unlock();

      // ---- expansion, outside the queue lock ----
      std::copy(root_lower.begin(), root_lower.end(), lower.begin());
      std::copy(root_upper.begin(), root_upper.end(), upper.begin());
      ApplyNodeBounds(*node, lower, upper);

      LpResult relax = timed_lp(lp, lower, upper, &last_basis);
      int node_count = nodes.fetch_add(1, std::memory_order_relaxed) + 1;
      nodes_since_improvement.fetch_add(1, std::memory_order_relaxed);
      lp_iterations.fetch_add(relax.iterations, std::memory_order_relaxed);

      bool make_children = false;
      bool hit_unbounded = false;
      bool hit_cancel = false;
      double node_bound = node->bound;
      int branch_var = -1;
      double branch_x = 0.0;

      if (relax.status == LpStatus::kInfeasible) {
        // Subtree empty; drop the node.
      } else if (relax.status == LpStatus::kCancelled) {
        // Deadline expired mid-LP: stop the whole search. The node is NOT
        // pruned as infeasible — it simply goes unexplored, so the incumbent
        // stays whatever was proven before the cut.
        hit_cancel = true;
      } else if (relax.status == LpStatus::kIterationLimit) {
        TETRI_LOG(kWarning) << "LP iteration limit inside B&B node; pruning";
      } else if (relax.status == LpStatus::kUnbounded) {
        hit_unbounded = true;
      } else {
        last_basis = lp.BasisSnapshot();
        node_bound = std::min(node->bound, relax.objective);
        double inc = incumbent_atomic.load(std::memory_order_acquire);
        if (inc == -kInfinity || node_bound > inc + options_.abs_gap) {
          branch_var = MostFractionalVar(model_, relax.values,
                                         options_.int_tol);
          if (branch_var < 0) {
            offer_incumbent(relax.values);
          } else if (options_.enable_diving &&
                     node_count % kDiveEvery == 0) {
            dive(lp, lower, upper, relax, &last_basis);
            if (!gap_satisfied(node_bound)) {
              make_children = true;
              branch_x = relax.values[branch_var];
            }
          } else {
            make_children = true;
            branch_x = relax.values[branch_var];
          }
        }
      }

      lock.lock();
      expanding_bounds.erase(active_it);
      if (hit_cancel) {
        limits_hit = true;
        done = true;
      }
      if (hit_unbounded) {
        found_unbounded = true;
        done = true;
      }
      // Children are pushed even if another worker just signalled done: they
      // keep the final best-bound honest and simply go unprocessed.
      if (make_children) {
        auto down = std::make_shared<Node>();
        down->bound = node_bound;
        down->depth = node->depth + 1;
        down->seq = next_seq++;
        down->parent = node;
        down->delta = {branch_var, -kInfinity, std::floor(branch_x)};
        open.push(std::move(down));

        auto up = std::make_shared<Node>();
        up->bound = node_bound;
        up->depth = node->depth + 1;
        up->seq = next_seq++;
        up->parent = node;
        up->delta = {branch_var, std::ceil(branch_x), kInfinity};
        open.push(std::move(up));
      }
      queue_cv.notify_all();
    }
  };

  root_span.reset();

  {
    TETRI_SPAN("solver.branch_and_bound");
    const auto bnb_start = Clock::now();
    if (num_workers == 1) {
      // Run on the calling thread: identical node ordering, counts, and
      // results to the historical sequential implementation.
      worker(0);
    } else {
      ThreadPool pool(num_workers);
      for (int w = 0; w < num_workers; ++w) {
        pool.Submit([&worker, w] { worker(w); });
      }
      pool.Wait();
    }
    ins.branch_and_bound_ms->Observe(millis_since(bnb_start));
  }

  // Result assembly (incumbent copy, status classification) until return.
  TETRI_SPAN("solver.finalize");

  // All workers have joined; shared state is safe to read without locks.
  if (found_unbounded) {
    result.status = MilpStatus::kUnbounded;
    finalize_counts();
    return result;
  }

  double global_bound = final_bound;
  if (!open.empty()) {
    global_bound = open.top()->bound;
  } else if (have_incumbent) {
    global_bound = incumbent_obj;  // search exhausted: incumbent is optimal
  }

  result.best_bound = global_bound;
  finalize_counts();
  if (!have_incumbent) {
    result.status =
        limits_hit ? MilpStatus::kNoSolution : MilpStatus::kInfeasible;
    return result;
  }
  result.objective = incumbent_obj;
  result.values = incumbent;
  if (open.empty() || global_bound <= incumbent_obj + options_.abs_gap) {
    result.status = MilpStatus::kOptimal;
    result.solve_status = SolveStatus::kOptimal;
  } else if (gap_satisfied(global_bound)) {
    result.status = MilpStatus::kGapLimit;
    result.solve_status = SolveStatus::kGapMet;
  } else {
    result.status = MilpStatus::kFeasible;
    // A limits-hit search that never improved on the trivial zero plan is
    // operationally a failed solve, however "feasible" it looks.
    if (!real_incumbent.load(std::memory_order_relaxed)) {
      result.solve_status = SolveStatus::kNoIncumbent;
    } else {
      result.solve_status =
          stall_hit ? SolveStatus::kStall : SolveStatus::kTimeLimit;
    }
  }
  return result;
}

}  // namespace tetrisched
