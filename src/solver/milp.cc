#include "src/solver/milp.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <queue>

#include "src/common/logging.h"
#include "src/solver/presolve.h"

namespace tetrisched {
namespace {

using Clock = std::chrono::steady_clock;

struct BoundChange {
  VarId var;
  double lower;
  double upper;
};

struct Node {
  double bound;  // parent LP bound (optimistic estimate for this node)
  std::vector<BoundChange> changes;
  int depth = 0;
  uint64_t seq = 0;  // tie-break for deterministic ordering
};

struct NodeOrder {
  // Max-heap on bound; deeper nodes win ties (tends to find incumbents),
  // then insertion order for determinism.
  bool operator()(const std::shared_ptr<Node>& a,
                  const std::shared_ptr<Node>& b) const {
    if (a->bound != b->bound) {
      return a->bound < b->bound;
    }
    if (a->depth != b->depth) {
      return a->depth < b->depth;
    }
    return a->seq > b->seq;
  }
};

// Picks the integer-like variable whose LP value is most fractional,
// preferring binaries (choice indicators) over general integers (partition
// counts) — indicator integrality usually drags the counts along.
int MostFractionalVar(const MilpModel& model, std::span<const double> values,
                      double int_tol) {
  int best_binary = -1;
  double best_binary_score = int_tol;
  int best_integer = -1;
  double best_integer_score = int_tol;
  for (int v = 0; v < model.num_vars(); ++v) {
    if (!model.IsIntegerLike(v)) {
      continue;
    }
    double x = values[v];
    double frac = x - std::floor(x);
    double score = std::min(frac, 1.0 - frac);
    if (model.var_type(v) == VarType::kBinary) {
      if (score > best_binary_score) {
        best_binary_score = score;
        best_binary = v;
      }
    } else if (score > best_integer_score) {
      best_integer_score = score;
      best_integer = v;
    }
  }
  return best_binary >= 0 ? best_binary : best_integer;
}

// Rounds integer-like entries to the nearest integer (for clean incumbents).
std::vector<double> RoundedCopy(const MilpModel& model,
                                std::span<const double> values) {
  std::vector<double> rounded(values.begin(), values.end());
  for (int v = 0; v < model.num_vars(); ++v) {
    if (model.IsIntegerLike(v)) {
      rounded[v] = std::round(rounded[v]);
    }
  }
  return rounded;
}

}  // namespace

MilpSolver::MilpSolver(const MilpModel& model, MilpOptions options)
    : model_(model), options_(options) {}

MilpResult MilpSolver::Solve(std::span<const double> warm_start) {
  const auto start_time = Clock::now();
  auto elapsed = [&]() {
    return std::chrono::duration<double>(Clock::now() - start_time).count();
  };

  if (options_.enable_presolve) {
    Presolver presolver(model_);
    if (presolver.infeasible()) {
      MilpResult result;
      result.status = MilpStatus::kInfeasible;
      result.solve_seconds = elapsed();
      return result;
    }
    if (presolver.num_fixed_vars() > 0 ||
        presolver.num_dropped_rows() > 0) {
      std::vector<double> projected_warm;
      if (!warm_start.empty() &&
          static_cast<int>(warm_start.size()) == model_.num_vars()) {
        projected_warm = presolver.ProjectSolution(warm_start);
      }
      MilpOptions inner_options = options_;
      inner_options.enable_presolve = false;
      MilpSolver inner(presolver.reduced(), inner_options);
      MilpResult result = inner.Solve(projected_warm);
      if (result.HasSolution()) {
        result.values = presolver.RestoreSolution(result.values);
        result.objective = model_.ObjectiveValue(result.values);
      }
      result.best_bound += presolver.objective_offset();
      result.solve_seconds = elapsed();
      return result;
    }
  }

  MilpResult result;
  const int n = model_.num_vars();

  LpSolver lp(model_, options_.lp);

  std::vector<double> root_lower(n), root_upper(n);
  for (int v = 0; v < n; ++v) {
    root_lower[v] = model_.lower_bound(v);
    root_upper[v] = model_.upper_bound(v);
  }

  bool have_incumbent = false;
  double incumbent_obj = -kInfinity;
  std::vector<double> incumbent;

  int nodes_since_improvement = 0;
  auto offer_incumbent = [&](std::span<const double> values) {
    std::vector<double> rounded = RoundedCopy(model_, values);
    if (!model_.IsFeasible(rounded, 1e-5)) {
      return false;
    }
    double obj = model_.ObjectiveValue(rounded);
    if (!have_incumbent || obj > incumbent_obj) {
      if (have_incumbent && obj > incumbent_obj + options_.abs_gap) {
        nodes_since_improvement = 0;
      }
      incumbent = std::move(rounded);
      incumbent_obj = obj;
      have_incumbent = true;
    }
    return true;
  };

  // Caller-provided warm start (e.g. last cycle's plan), checked first.
  if (!warm_start.empty() && static_cast<int>(warm_start.size()) == n) {
    offer_incumbent(warm_start);
  }
  // Zero-clamped fallback: in scheduling models "assign nothing" is always
  // feasible, which guarantees the solver never returns empty-handed on a
  // time limit.
  {
    std::vector<double> zero(n);
    for (int v = 0; v < n; ++v) {
      zero[v] = std::clamp(0.0, root_lower[v], root_upper[v]);
    }
    offer_incumbent(zero);
  }

  // Diving heuristic: from a fractional LP point, repeatedly fix the most
  // fractional integer to a rounding (trying the nearer side first, the
  // other side on infeasibility) until integral. Cheap and effective on
  // packing structures; used at the root and periodically during the search.
  auto dive = [&](const std::vector<double>& from_lower,
                  const std::vector<double>& from_upper, LpResult start_relax,
                  const LpBasis* start_basis) {
    std::vector<double> dive_lower = from_lower;
    std::vector<double> dive_upper = from_upper;
    LpResult relax = std::move(start_relax);
    LpBasis basis;
    const LpBasis* warm = start_basis;
    for (int step = 0; step < 2 * n + 16; ++step) {
      int v = MostFractionalVar(model_, relax.values, options_.int_tol);
      if (v < 0) {
        offer_incumbent(relax.values);
        return;
      }
      double x = relax.values[v];
      double near = std::clamp(std::round(x), dive_lower[v], dive_upper[v]);
      double far = near > x ? std::floor(x) : std::ceil(x);
      far = std::clamp(far, dive_lower[v], dive_upper[v]);

      double saved_lower = dive_lower[v];
      double saved_upper = dive_upper[v];
      dive_lower[v] = near;
      dive_upper[v] = near;
      LpResult next = lp.Solve(dive_lower, dive_upper, warm);
      result.lp_iterations += next.iterations;
      if (next.status != LpStatus::kOptimal && far != near) {
        dive_lower[v] = far;
        dive_upper[v] = far;
        next = lp.Solve(dive_lower, dive_upper, warm);
        result.lp_iterations += next.iterations;
      }
      if (next.status != LpStatus::kOptimal) {
        // Both roundings failed: release the variable and stop diving.
        dive_lower[v] = saved_lower;
        dive_upper[v] = saved_upper;
        return;
      }
      relax = std::move(next);
      basis = lp.BasisSnapshot();
      warm = &basis;
      if (elapsed() > options_.time_limit_seconds) {
        return;
      }
    }
  };

  // Root relaxation.
  LpResult root = lp.Solve(root_lower, root_upper, nullptr);
  result.lp_iterations += root.iterations;
  result.nodes = 1;
  if (root.status == LpStatus::kInfeasible) {
    result.status =
        have_incumbent ? MilpStatus::kFeasible : MilpStatus::kInfeasible;
    if (have_incumbent) {
      result.objective = incumbent_obj;
      result.values = incumbent;
      result.best_bound = incumbent_obj;
    }
    result.solve_seconds = elapsed();
    return result;
  }
  if (root.status == LpStatus::kUnbounded) {
    result.status = MilpStatus::kUnbounded;
    result.solve_seconds = elapsed();
    return result;
  }
  if (root.status == LpStatus::kIterationLimit) {
    TETRI_LOG(kWarning) << "LP iteration limit at root; bound may be loose";
  }

  double global_bound = root.objective;
  LpBasis last_basis = lp.BasisSnapshot();

  auto gap_satisfied = [&](double bound) {
    if (!have_incumbent) {
      return false;
    }
    double gap = bound - incumbent_obj;
    if (gap <= options_.abs_gap) {
      return true;
    }
    return gap <= options_.rel_gap * std::max(std::abs(incumbent_obj), 1e-9);
  };

  int root_branch_var =
      MostFractionalVar(model_, root.values, options_.int_tol);
  if (root_branch_var < 0) {
    offer_incumbent(root.values);
    result.status = MilpStatus::kOptimal;
    result.objective = incumbent_obj;
    result.values = incumbent;
    result.best_bound = root.objective;
    result.solve_seconds = elapsed();
    return result;
  }
  if (options_.enable_diving) {
    dive(root_lower, root_upper, root, &last_basis);
  }

  // Best-bound branch and bound with periodic re-diving.
  std::priority_queue<std::shared_ptr<Node>, std::vector<std::shared_ptr<Node>>,
                      NodeOrder>
      open;
  uint64_t next_seq = 0;
  {
    auto node = std::make_shared<Node>();
    node->bound = root.objective;
    node->seq = next_seq++;
    open.push(std::move(node));
  }

  std::vector<double> lower(n), upper(n);
  bool limits_hit = false;
  constexpr int kDiveEvery = 64;

  while (!open.empty()) {
    if (result.nodes >= options_.max_nodes ||
        elapsed() > options_.time_limit_seconds) {
      limits_hit = true;
      break;
    }
    if (options_.stall_node_limit > 0 && have_incumbent &&
        nodes_since_improvement >= options_.stall_node_limit) {
      limits_hit = true;
      break;
    }
    std::shared_ptr<Node> node = open.top();
    global_bound = node->bound;
    if (gap_satisfied(global_bound)) {
      break;
    }
    open.pop();
    if (have_incumbent && node->bound <= incumbent_obj + options_.abs_gap) {
      continue;  // cannot improve on the incumbent
    }

    lower = root_lower;
    upper = root_upper;
    for (const BoundChange& change : node->changes) {
      lower[change.var] = std::max(lower[change.var], change.lower);
      upper[change.var] = std::min(upper[change.var], change.upper);
    }

    LpResult relax = lp.Solve(lower, upper, &last_basis);
    ++result.nodes;
    ++nodes_since_improvement;
    result.lp_iterations += relax.iterations;
    if (relax.status == LpStatus::kInfeasible) {
      continue;
    }
    if (relax.status == LpStatus::kIterationLimit) {
      TETRI_LOG(kWarning) << "LP iteration limit inside B&B node; pruning";
      continue;
    }
    if (relax.status == LpStatus::kUnbounded) {
      result.status = MilpStatus::kUnbounded;
      result.solve_seconds = elapsed();
      return result;
    }
    last_basis = lp.BasisSnapshot();

    double node_bound = std::min(node->bound, relax.objective);
    if (have_incumbent && node_bound <= incumbent_obj + options_.abs_gap) {
      continue;
    }

    int branch_var = MostFractionalVar(model_, relax.values, options_.int_tol);
    if (branch_var < 0) {
      offer_incumbent(relax.values);
      continue;
    }

    if (options_.enable_diving && result.nodes % kDiveEvery == 0) {
      dive(lower, upper, relax, &last_basis);
      if (gap_satisfied(node_bound)) {
        continue;
      }
    }

    double x = relax.values[branch_var];
    auto down = std::make_shared<Node>();
    down->bound = node_bound;
    down->depth = node->depth + 1;
    down->seq = next_seq++;
    down->changes = node->changes;
    down->changes.push_back({branch_var, -kInfinity, std::floor(x)});
    open.push(std::move(down));

    auto up = std::make_shared<Node>();
    up->bound = node_bound;
    up->depth = node->depth + 1;
    up->seq = next_seq++;
    up->changes = node->changes;
    up->changes.push_back({branch_var, std::ceil(x), kInfinity});
    open.push(std::move(up));
  }

  if (!open.empty()) {
    global_bound = open.top()->bound;
  } else if (have_incumbent) {
    global_bound = incumbent_obj;  // search exhausted: incumbent is optimal
  }

  result.best_bound = global_bound;
  result.solve_seconds = elapsed();
  if (!have_incumbent) {
    result.status =
        limits_hit ? MilpStatus::kNoSolution : MilpStatus::kInfeasible;
    return result;
  }
  result.objective = incumbent_obj;
  result.values = incumbent;
  if (open.empty() || global_bound <= incumbent_obj + options_.abs_gap) {
    result.status = MilpStatus::kOptimal;
  } else if (gap_satisfied(global_bound)) {
    result.status = MilpStatus::kGapLimit;
  } else {
    result.status = MilpStatus::kFeasible;
  }
  return result;
}

}  // namespace tetrisched
