// MILP presolve: cheap model reductions applied before branch and bound.
//
// The STRL compiler's models carry easy structure a real solver exploits
// before searching — most notably culled options pinned to zero
// (`I <= 0` singleton rows) and demand rows whose indicator got fixed. The
// presolver iterates three reductions to a fixed point:
//
//   1. singleton rows  -> variable bound tightening, row dropped,
//   2. integral bound rounding (ceil/floor for integer-like variables),
//   3. fixed variables (lb == ub) -> folded into the remaining rows' rhs
//      and removed from the model.
//
// The reduced model solves faster; RestoreSolution() maps its solutions back
// to the original variable space. Presolve is exact: it never cuts off an
// optimal solution, and it detects some infeasibilities outright.

#ifndef TETRISCHED_SOLVER_PRESOLVE_H_
#define TETRISCHED_SOLVER_PRESOLVE_H_

#include <span>
#include <vector>

#include "src/solver/model.h"

namespace tetrisched {

class Presolver {
 public:
  explicit Presolver(const MilpModel& original);

  // True when presolve proved the model infeasible; reduced() is then
  // meaningless.
  bool infeasible() const { return infeasible_; }

  const MilpModel& reduced() const { return reduced_; }

  int num_fixed_vars() const { return num_fixed_; }
  int num_dropped_rows() const { return num_dropped_rows_; }

  // Objective contribution of the eliminated (fixed) variables.
  double objective_offset() const { return objective_offset_; }

  // Maps a solution of the reduced model back to the original space.
  std::vector<double> RestoreSolution(
      std::span<const double> reduced_values) const;

  // Projects an original-space assignment onto the reduced model's
  // variables (for warm starts). Returns empty if the assignment conflicts
  // with presolve's fixings.
  std::vector<double> ProjectSolution(
      std::span<const double> original_values) const;

 private:
  const MilpModel& original_;
  MilpModel reduced_;
  bool infeasible_ = false;
  int num_fixed_ = 0;
  int num_dropped_rows_ = 0;
  double objective_offset_ = 0.0;

  // Per original variable: index in the reduced model, or -1 if fixed.
  std::vector<int32_t> var_map_;
  // Fixed value for eliminated variables (valid where var_map_ == -1).
  std::vector<double> fixed_value_;
};

}  // namespace tetrisched

#endif  // TETRISCHED_SOLVER_PRESOLVE_H_
