// Branch-and-bound MILP solver over the bounded-variable simplex.
//
// Mirrors the way TetriSched drives CPLEX in the paper (§3.2.2): the solver
// is asked for a solution within a relative optimality gap (10% default)
// under a wall-clock budget, and can be seeded with a feasible warm-start
// incumbent (the previous cycle's schedule). If the budget expires, the best
// incumbent found so far is returned rather than failing.
//
// Search: best-bound node selection, most-fractional branching, and a diving
// heuristic at the root to obtain an incumbent quickly. With num_threads > 1
// the tree is explored by a pool of workers sharing a best-bound node queue
// and an incumbent; each worker owns a private LpSolver (basis warm-start
// state) so LP solves run without any locking (see DESIGN.md §8).

#ifndef TETRISCHED_SOLVER_MILP_H_
#define TETRISCHED_SOLVER_MILP_H_

#include <span>
#include <vector>

#include "src/solver/model.h"
#include "src/solver/simplex.h"
#include "src/solver/solve_status.h"

namespace tetrisched {

enum class MilpStatus {
  kOptimal,     // proven within abs gap of the true optimum
  kGapLimit,    // feasible, proven within the requested relative gap
  kFeasible,    // feasible, but node/time limit hit before proving the gap
  kInfeasible,  // no feasible assignment exists
  kUnbounded,
  kNoSolution,  // limits hit before any incumbent was found
};

struct MilpOptions {
  double rel_gap = 0.10;         // paper: "within 10% of the optimal"
  double abs_gap = 1e-6;
  int max_nodes = 20000;
  double time_limit_seconds = 10.0;
  double int_tol = 1e-6;
  bool enable_diving = true;     // root diving heuristic for a fast incumbent
  // Stop after this many B&B nodes without incumbent improvement and return
  // the incumbent (status kFeasible). 0 disables. The equivalent of a
  // commercial solver's "solution polishing" abort: on scheduling models the
  // bound is loose, so proving the gap often costs far more than finding the
  // near-optimal solution.
  int stall_node_limit = 0;
  // Exact model reductions before search (see presolve.h). On by default;
  // disable to measure its effect.
  bool enable_presolve = true;
  // Split the (presolved) model into connected components of its
  // variable-constraint incidence graph and solve them as independent
  // sub-MILPs on the thread pool (see decompose.h / DESIGN.md §12). Exact;
  // on by default. Single-component models bypass the layer and are
  // bit-identical to a monolithic solve.
  bool enable_decomposition = true;
  // Branch-and-bound workers sharing one best-bound node queue. 0 means one
  // worker per hardware thread. 1 runs the search on the calling thread with
  // fully deterministic node ordering and node counts (use it in tests that
  // assert either). >1 keeps the same gap/time/node guarantees but the node
  // visit order — and therefore the node count — varies run to run.
  int num_threads = 0;
  // External cooperative deadline (budget.h), composed with
  // time_limit_seconds: the solve arms an internal token at whichever
  // deadline comes first and threads it through the root LP, presolve
  // recursion, every branch-and-bound worker's LP solves, the diving
  // heuristic, and each decomposed component, so the wall-clock limit is
  // honored *inside* an LP solve rather than only at node boundaries. A solve
  // cut off mid-LP returns the best incumbent so far with
  // SolveStatus::kTimeLimit — never a torn result. Not owned; nullptr (or an
  // unarmed token) leaves only the internal time_limit_seconds deadline.
  const CancelToken* cancel = nullptr;
  LpOptions lp;
};

struct MilpResult {
  MilpStatus status = MilpStatus::kNoSolution;
  // Operational classification of how the solve ended (solve_status.h).
  // kNoIncumbent whenever `values` holds nothing better than the trivial
  // all-zero fallback: the caller should not treat it as a schedule.
  SolveStatus solve_status = SolveStatus::kNoIncumbent;
  double objective = 0.0;        // incumbent objective (valid unless kNoSolution)
  std::vector<double> values;    // incumbent assignment
  double best_bound = 0.0;       // proven upper bound on the optimum
  int nodes = 0;
  long lp_iterations = 0;
  int threads_used = 1;  // resolved worker count (after the 0 = auto default)
  double solve_seconds = 0.0;
  // Decomposition breakdown (DESIGN.md §12): number of independent
  // components solved (1 = monolithic / bypass), wall-clock spent detecting
  // and extracting them, and the slowest single component solve. When
  // components == 1 the two timings stay 0 except for detection cost.
  int components = 1;
  double decompose_ms = 0.0;
  double max_component_ms = 0.0;

  bool HasSolution() const {
    return status == MilpStatus::kOptimal || status == MilpStatus::kGapLimit ||
           status == MilpStatus::kFeasible;
  }
};

class MilpSolver {
 public:
  explicit MilpSolver(const MilpModel& model, MilpOptions options = {});

  // `warm_start`, if non-empty, is checked for feasibility and used as the
  // initial incumbent (size must be model.num_vars()).
  MilpResult Solve(std::span<const double> warm_start = {});

 private:
  const MilpModel& model_;
  MilpOptions options_;
};

}  // namespace tetrisched

#endif  // TETRISCHED_SOLVER_MILP_H_
