// Component decomposition of the cycle MILP (DESIGN.md §12).
//
// TetriSched's aggregate objective is a top-level SUM of per-job STRL
// expressions, so jobs are coupled only through shared space-time supply
// rows: whenever jobs prefer disjoint equivalence sets or non-overlapping
// plan-ahead slots, the compiled model is block-diagonal. Solving k
// independent sub-MILPs is exponentially cheaper than one monolithic branch
// and bound over their union, and the component solves parallelize on the
// existing thread pool independently of (and multiplicatively with) the
// per-solve worker count of DESIGN.md §8.
//
// The layer has three stages, all exact:
//   1. DetectComponents: union-find over the variable-constraint incidence
//      graph, O(num_vars + nonzeros). Runs after presolve, whose variable
//      fixings fold fixed columns out of the remaining rows and thereby
//      sever couplings (a culled job splits away from the supply rows it can
//      no longer touch).
//   2. Sub-model extraction with index remapping (original variable order is
//      preserved inside each component, so extraction is deterministic).
//   3. Independent MilpSolver runs per component — global time/node/stall
//      budgets and the absolute gap are apportioned by variable share, the
//      warm-start vector is sliced per component — followed by stitching the
//      incumbents, bounds, statuses, and counters back into one MilpResult.
//
// MilpSolver::Solve consults this layer when MilpOptions::enable_decomposition
// is set (the default): single-component models bypass it entirely and are
// bit-identical to the monolithic search.

#ifndef TETRISCHED_SOLVER_DECOMPOSE_H_
#define TETRISCHED_SOLVER_DECOMPOSE_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "src/solver/milp.h"
#include "src/solver/model.h"
#include "src/solver/solve_status.h"

namespace tetrisched {

// Connected components of a model's variable-constraint incidence graph.
struct Decomposition {
  // Number of row-induced components. Variables that appear in no constraint
  // are not counted: they are "free" and stitched analytically.
  int num_components = 0;
  // Per variable: component index, or -1 for a free variable.
  std::vector<int32_t> var_component;
  // Per constraint row: component index.
  std::vector<int32_t> row_component;
  // Per component: variable / row counts (budget apportionment weights).
  std::vector<int> component_vars;
  std::vector<int> component_rows;
  // Set when the model contains a shape the splitter refuses to reason
  // about (currently: a constraint with no terms); callers must fall back
  // to the monolithic solve.
  bool bypass = false;

  int largest_component_vars() const {
    int largest = 0;
    for (int vars : component_vars) {
      largest = std::max(largest, vars);
    }
    return largest;
  }

  // True when the model genuinely splits and SolveDecomposed applies.
  bool Splits() const { return !bypass && num_components >= 2; }
};

// Builds the incidence-graph components of `model`. O(num_vars + nonzeros);
// no sub-models are built (extraction happens inside SolveDecomposed only
// when the model actually splits).
Decomposition DetectComponents(const MilpModel& model);

// Conservative cross-component merge of the mathematical search status:
// infeasibility of any component makes the whole model infeasible and
// dominates; unboundedness is likewise global; a component that found no
// assignment at all (kNoSolution) poisons the stitched vector; otherwise the
// weakest optimality claim wins (all optimal -> optimal, else all within the
// gap -> gap limit, else feasible).
MilpStatus MergeMilpStatus(MilpStatus a, MilpStatus b);

// Conservative cross-component merge of the operational outcome. The one
// deliberate asymmetry (DESIGN.md §12): a kNoIncumbent component degrades
// only itself — its sub-plan is the trivial zero vector, but the other
// components' allocations still land, so the merged plan is reported as
// kTimeLimit (partial) rather than kNoIncumbent. Only when *every*
// component failed does the merge stay kNoIncumbent and hand the scheduler
// to its degradation ladder.
SolveStatus MergeSolveStatus(SolveStatus a, SolveStatus b);

// Solves the components of `decomp` (which must satisfy Splits()) as
// independent MilpSolver instances scheduled on a thread pool, and stitches
// the per-component results into one MilpResult over the original variable
// space. `warm_start`, when sized to the model, is sliced per component.
// `detect_ms` is folded into the result's decompose_ms alongside the
// extraction time measured here.
MilpResult SolveDecomposed(const MilpModel& model, const Decomposition& decomp,
                           const MilpOptions& options,
                           std::span<const double> warm_start,
                           double detect_ms);

}  // namespace tetrisched

#endif  // TETRISCHED_SOLVER_DECOMPOSE_H_
