// Mixed Integer Linear Program model builder.
//
// The STRL compiler emits models through this API; the solver consumes them.
// The paper used IBM CPLEX behind the same kind of interface — this repo
// substitutes its own solver (see simplex.h / milp.h) with the same contract:
// maximize a linear objective over bounded continuous / integer / binary
// variables subject to linear constraints, within a relative optimality gap.
//
// Conventions:
//  * The objective is always MAXIMIZED (STRL value flows upward).
//  * Variable bounds default to [0, +inf) for continuous/integer and [0, 1]
//    for binary.
//  * Duplicate variables inside one constraint are allowed and are summed.

#ifndef TETRISCHED_SOLVER_MODEL_H_
#define TETRISCHED_SOLVER_MODEL_H_

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace tetrisched {

using VarId = int32_t;
using ConstraintId = int32_t;

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class VarType {
  kContinuous,
  kInteger,
  kBinary,
};

enum class ConstraintSense {
  kLessEqual,     // sum <= rhs
  kGreaterEqual,  // sum >= rhs
  kEqual,         // sum == rhs
};

// One (coefficient, variable) pair of a linear expression.
struct LinTerm {
  VarId var = -1;
  double coeff = 0.0;
};

class MilpModel {
 public:
  MilpModel() = default;

  // --- Model construction -------------------------------------------------

  VarId AddContinuousVar(double lower, double upper, std::string name = "");
  VarId AddIntegerVar(double lower, double upper, std::string name = "");
  VarId AddBinaryVar(std::string name = "");

  // Adds `delta` to the objective coefficient of `var`.
  void AddObjectiveTerm(VarId var, double delta);

  ConstraintId AddConstraint(std::vector<LinTerm> terms, ConstraintSense sense,
                             double rhs, std::string name = "");

  // --- Introspection ------------------------------------------------------

  int num_vars() const { return static_cast<int>(types_.size()); }
  int num_constraints() const { return static_cast<int>(senses_.size()); }

  VarType var_type(VarId v) const { return types_[v]; }
  double lower_bound(VarId v) const { return lowers_[v]; }
  double upper_bound(VarId v) const { return uppers_[v]; }
  double objective_coeff(VarId v) const { return objective_[v]; }
  const std::string& var_name(VarId v) const { return var_names_[v]; }

  std::span<const LinTerm> constraint_terms(ConstraintId c) const;
  ConstraintSense constraint_sense(ConstraintId c) const { return senses_[c]; }
  double constraint_rhs(ConstraintId c) const { return rhs_[c]; }
  const std::string& constraint_name(ConstraintId c) const {
    return constraint_names_[c];
  }

  bool IsIntegerLike(VarId v) const {
    return types_[v] != VarType::kContinuous;
  }

  // --- Solution checking --------------------------------------------------

  // Objective value of an assignment (no feasibility check).
  double ObjectiveValue(std::span<const double> values) const;

  // True iff `values` satisfies every bound, every constraint, and
  // integrality of integer-like variables, all within `tol`.
  bool IsFeasible(std::span<const double> values, double tol = 1e-6) const;

  // Human-readable dump (LP-format-like) for debugging small models.
  std::string DebugString() const;

 private:
  VarId AddVar(VarType type, double lower, double upper, std::string name);

  std::vector<VarType> types_;
  std::vector<double> lowers_;
  std::vector<double> uppers_;
  std::vector<double> objective_;
  std::vector<std::string> var_names_;

  // Constraints in compressed form: terms_ holds all rows back to back,
  // row c spanning [row_start_[c], row_start_[c + 1]).
  std::vector<LinTerm> terms_;
  std::vector<int64_t> row_start_{0};
  std::vector<ConstraintSense> senses_;
  std::vector<double> rhs_;
  std::vector<std::string> constraint_names_;
};

}  // namespace tetrisched

#endif  // TETRISCHED_SOLVER_MODEL_H_
