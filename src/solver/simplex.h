// Bounded-variable two-phase primal simplex.
//
// Solves the LP relaxation of a MilpModel (integrality dropped):
//
//     maximize c'x  subject to  Ax {<=,>=,==} b,  l <= x <= u
//
// Internally each row gets a slack variable so the system becomes
// A x + I s = b with bounds on slacks encoding the row sense. The solver
// keeps an explicit dense basis inverse, refactorized periodically, and uses
// partial (rotating-section) Dantzig pricing — widening to a full scan before
// declaring optimality — with a Bland's-rule fallback against cycling.
//
// Branch-and-bound passes per-variable bound overrides (branching decisions)
// and may seed the solver with a basis snapshot from the parent node.

#ifndef TETRISCHED_SOLVER_SIMPLEX_H_
#define TETRISCHED_SOLVER_SIMPLEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/budget.h"
#include "src/solver/model.h"

namespace tetrisched {

enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  // Cooperative cancellation (LpOptions::cancel expired mid-solve). The
  // result carries no values: a cancelled solve is abandoned, never torn.
  kCancelled,
};

struct LpOptions {
  int max_iterations = 50000;
  double feas_tol = 1e-7;   // bound / constraint feasibility
  double cost_tol = 1e-7;   // reduced-cost optimality threshold
  double pivot_tol = 1e-9;  // minimum acceptable pivot magnitude
  int refactor_every = 150;  // rebuild basis inverse every N pivots
  // Consecutive degenerate pivots before pricing falls back to Bland's
  // anti-cycling rule (counted in tetrisched_solver_bland_activations_total).
  // <= 0 engages Bland's rule from the first pivot.
  int bland_pivot_limit = 256;
  // Cooperative deadline, polled every few pivots inside Iterate and per
  // column during warm-basis refactorization. Not owned; must outlive the
  // solver. nullptr (default) or an unarmed token never reads the clock, so
  // the plumbing is inert unless a deadline is actually armed.
  const CancelToken* cancel = nullptr;
};

// Basis snapshot for warm starting (opaque to callers).
struct LpBasis {
  std::vector<int32_t> basic;    // row -> variable index (structural+slack)
  std::vector<uint8_t> status;   // per-variable nonbasic status
};

struct LpResult {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;  // structural variables only
  int iterations = 0;
};

class LpSolver {
 public:
  // The model must outlive the solver. Constraint matrix and objective are
  // captured at construction; bounds may be overridden per Solve call.
  explicit LpSolver(const MilpModel& model, LpOptions options = {});

  // Solves with the model's own bounds.
  LpResult Solve();

  // Solves with overridden bounds for the structural variables (size must
  // equal model.num_vars()); used by branch and bound.
  LpResult Solve(std::span<const double> lower, std::span<const double> upper);

  // Same, seeding the initial basis from `warm`; falls back to the slack
  // basis if the snapshot does not fit this model.
  LpResult Solve(std::span<const double> lower, std::span<const double> upper,
                 const LpBasis* warm);

  // Snapshot of the final basis of the last Solve (valid after any Solve).
  LpBasis BasisSnapshot() const;

 private:
  enum class Status : uint8_t {
    kBasic,
    kAtLower,
    kAtUpper,
    kFreeZero,  // nonbasic free variable pinned at 0
  };

  struct ColEntry {
    int32_t row;
    double coeff;
  };

  // Dense m x m basis inverse, row major.
  double& Binv(int i, int j) { return binv_[static_cast<size_t>(i) * m_ + j]; }

  void InstallBounds(std::span<const double> lower,
                     std::span<const double> upper);
  void InstallSlackBasis();
  bool InstallWarmBasis(const LpBasis& warm);
  void RefactorizeOrReset();       // rebuild binv_ from basis_, else slack basis
  void RecomputeBasicValues();     // x_B = B^-1 (b - A_N x_N)
  double ColumnDot(int var, std::span<const double> row_vec) const;
  void ComputeTableauColumn(int var, std::vector<double>& out) const;

  // Runs simplex iterations with objective `costs` (phase 1 or 2).
  // `phase1` enables the infeasibility-aware ratio test.
  LpStatus Iterate(std::span<const double> costs, bool phase1,
                   int* iterations_left);

  double TotalInfeasibility() const;
  void BuildPhase1Costs(std::vector<double>& costs) const;

  const MilpModel& model_;
  LpOptions options_;

  int n_ = 0;       // structural variables
  int m_ = 0;       // rows / slacks
  int total_ = 0;   // n_ + m_

  // Sparse columns of [A | I].
  std::vector<std::vector<ColEntry>> cols_;
  std::vector<double> rhs_b_;

  // Per-variable working bounds (structural overrides + slack encodings).
  std::vector<double> lb_;
  std::vector<double> ub_;
  std::vector<double> obj_;  // phase-2 costs, structural + zero slacks

  // Simplex state.
  std::vector<int32_t> basic_;    // row -> var
  std::vector<Status> status_;    // var -> status
  std::vector<double> x_;         // var -> value
  std::vector<double> binv_;
  int pivots_since_refactor_ = 0;
  int pricing_cursor_ = 0;  // start of the current partial-pricing section
};

}  // namespace tetrisched

#endif  // TETRISCHED_SOLVER_SIMPLEX_H_
