#include "src/solver/certify.h"

#include <cmath>
#include <cstdio>

#include "src/common/metrics.h"

namespace tetrisched {
namespace {

Counter* CertifierRejects() {
  static Counter* counter =
      GlobalMetrics().GetCounter("tetrisched_certifier_rejects_total");
  return counter;
}

std::string Describe(const char* what, int index, double magnitude) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s (index %d, violation %.3g)", what, index,
                magnitude);
  return buf;
}

}  // namespace

CertifyReport CertifyPlan(const MilpModel& model, const MilpResult& result,
                          const MilpOptions& options, CertifyOptions certify) {
  CertifyReport report;
  auto reject = [&](std::string failure) -> CertifyReport& {
    report.ok = false;
    if (report.failure.empty()) {
      report.failure = std::move(failure);
    }
    return report;
  };

  if (!result.HasSolution() ||
      static_cast<int>(result.values.size()) != model.num_vars()) {
    reject("incumbent missing or wrong dimension");
    CertifierRejects()->Increment();
    return report;
  }

  report.ok = true;

  // Bounds and integrality, against the original (pre-presolve) bounds.
  for (int v = 0; v < model.num_vars(); ++v) {
    const double x = result.values[v];
    if (!std::isfinite(x)) {
      reject(Describe("non-finite value", v, 0.0));
      break;
    }
    if (x < model.lower_bound(v) - certify.feas_tol ||
        x > model.upper_bound(v) + certify.feas_tol) {
      const double viol = std::max(model.lower_bound(v) - x,
                                   x - model.upper_bound(v));
      reject(Describe("variable bound violated", v, viol));
      break;
    }
    if (model.IsIntegerLike(v) &&
        std::abs(x - std::round(x)) > certify.int_tol) {
      reject(Describe("integrality violated", v, std::abs(x - std::round(x))));
      break;
    }
  }

  // Every constraint row, re-evaluated from scratch.
  for (int c = 0; c < model.num_constraints(); ++c) {
    double lhs = 0.0;
    for (const LinTerm& term : model.constraint_terms(c)) {
      lhs += term.coeff * result.values[term.var];
    }
    const double rhs = model.constraint_rhs(c);
    const double tol = certify.feas_tol * std::max(1.0, std::abs(rhs));
    double viol = 0.0;
    switch (model.constraint_sense(c)) {
      case ConstraintSense::kLessEqual:
        viol = lhs - rhs;
        break;
      case ConstraintSense::kGreaterEqual:
        viol = rhs - lhs;
        break;
      case ConstraintSense::kEqual:
        viol = std::abs(lhs - rhs);
        break;
    }
    if (viol > tol) {
      ++report.violated_rows;
      if (report.ok) {
        reject(Describe("constraint row violated", c, viol));
      }
    }
  }

  // Claimed objective must match a recomputation from the committed values.
  const double recomputed = model.ObjectiveValue(result.values);
  report.objective_error = std::abs(recomputed - result.objective);
  if (report.objective_error >
      certify.obj_tol * std::max(1.0, std::abs(recomputed))) {
    reject(Describe("objective mismatch", -1, report.objective_error));
  }

  // A finite bound must actually bound the incumbent from above (the model
  // is a maximization); a bound below the incumbent is internally
  // inconsistent no matter what status the solve claims.
  if (std::isfinite(result.best_bound) &&
      result.best_bound <
          recomputed - (options.abs_gap + certify.gap_slop)) {
    reject(Describe("bound below incumbent", -1,
                    recomputed - result.best_bound));
  }

  // Gap audit: only when the solve *claims* a proven gap. kFeasible makes no
  // gap claim, and an infinite bound (e.g. a root LP cut off mid-solve)
  // honestly claims nothing.
  if ((result.status == MilpStatus::kOptimal ||
       result.status == MilpStatus::kGapLimit) &&
      std::isfinite(result.best_bound)) {
    const double gap = result.best_bound - recomputed;
    const double allowed =
        result.status == MilpStatus::kOptimal
            ? options.abs_gap + certify.gap_slop
            : std::max(options.abs_gap,
                       options.rel_gap * std::max(std::abs(recomputed), 1e-9)) +
                  certify.gap_slop;
    if (gap > allowed) {
      reject(Describe("claimed gap not covered by bound", -1, gap - allowed));
    }
  }

  if (!report.ok) {
    CertifierRejects()->Increment();
  }
  return report;
}

}  // namespace tetrisched
