// Textual STRL parser: the inverse of ToString().
//
// Grammar (whitespace-insensitive):
//
//   expr     := leaf | op
//   leaf     := ("nCk" | "LnCk") "(" pset "," kv... ")"
//   pset     := "{" "p" INT ("," "p" INT)* "}"
//   kv       := "k=" INT | "s=" INT | "dur=" INT | "v=" REAL
//   op       := ("max" | "min" | "sum") "(" expr ("," expr)* ")"
//             | "scale" "(" REAL "," expr ")"
//             | "barrier" "(" REAL "," expr ")"
//
// Example:  max(nCk({p0,p1}, k=2, s=0, dur=10, v=4), nCk({p2}, k=1, s=0,
//           dur=20, v=1))
//
// Leaf tags are not part of the textual form; ParseStrl assigns fresh
// sequential tags (1, 2, ...) in leaf order so parsed expressions can be
// compiled and their solutions extracted immediately.

#ifndef TETRISCHED_STRL_PARSER_H_
#define TETRISCHED_STRL_PARSER_H_

#include <optional>
#include <string>
#include <string_view>

#include "src/strl/strl.h"

namespace tetrisched {

struct StrlParseResult {
  std::optional<StrlExpr> expr;
  std::string error;  // non-empty iff expr is nullopt; includes position
};

StrlParseResult ParseStrl(std::string_view text);

}  // namespace tetrisched

#endif  // TETRISCHED_STRL_PARSER_H_
