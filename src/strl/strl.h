// Space-Time Request Language (STRL) abstract syntax (paper §4).
//
// A STRL expression is a function mapping resource space-time shapes to
// scalar value. Leaves request "any k resources out of an equivalence set,
// starting at s for duration dur, worth v"; operators multiplex (MAX),
// enforce uniformity (MIN), aggregate (SUM), amplify (SCALE), or threshold
// (BARRIER) the value flowing upward:
//
//   nCk(eqset, k, start, dur, v)   principal primitive (gang of k)
//   LnCk(eqset, k, start, dur, v)  linear variant: value v * (granted/k)
//   max(e1..en)                    choose at most one (soft constraints)
//   min(e1..en)                    all-or-nothing (anti-affinity, gangs)
//   sum(e1..en)                    aggregate (global scheduling)
//   scale(e, s)                    multiply value by s
//   barrier(e, v)                  v if e's value reaches v, else 0
//
// Expressions are plain value types (children owned by vector), rebuilt
// fresh every scheduling cycle by the STRL generator.

#ifndef TETRISCHED_STRL_STRL_H_
#define TETRISCHED_STRL_STRL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/time.h"

namespace tetrisched {

enum class StrlKind {
  kNCk,
  kLnCk,
  kMax,
  kMin,
  kSum,
  kScale,
  kBarrier,
};

// Caller-defined identifier attached to leaves so MILP solutions can be
// mapped back to job placement options.
using LeafTag = int64_t;
inline constexpr LeafTag kNoTag = -1;

struct StrlExpr {
  StrlKind kind = StrlKind::kSum;

  // Leaf fields (kNCk / kLnCk).
  PartitionSet partitions;
  int k = 0;
  SimTime start = 0;
  SimDuration duration = 0;
  double value = 0.0;
  LeafTag tag = kNoTag;

  // kScale factor or kBarrier threshold.
  double scalar = 0.0;

  std::vector<StrlExpr> children;

  bool IsLeaf() const {
    return kind == StrlKind::kNCk || kind == StrlKind::kLnCk;
  }
  TimeRange interval() const { return {start, start + duration}; }
};

// --- Factories --------------------------------------------------------------

StrlExpr NCk(PartitionSet partitions, int k, SimTime start, SimDuration dur,
             double value, LeafTag tag = kNoTag);
StrlExpr LnCk(PartitionSet partitions, int k, SimTime start, SimDuration dur,
              double value, LeafTag tag = kNoTag);
StrlExpr Max(std::vector<StrlExpr> children);
StrlExpr Min(std::vector<StrlExpr> children);
StrlExpr Sum(std::vector<StrlExpr> children);
StrlExpr Scale(StrlExpr child, double factor);
StrlExpr Barrier(StrlExpr child, double threshold);

// --- Introspection ----------------------------------------------------------

int CountLeaves(const StrlExpr& expr);
int CountNodes(const StrlExpr& expr);
std::string ToString(const StrlExpr& expr);

// --- Reference evaluator (for tests) ----------------------------------------

// A concrete space-time allocation: per chosen leaf tag, how many nodes were
// granted from each partition.
using LeafGrants = std::map<LeafTag, std::map<PartitionId, int>>;

// Evaluates `expr` against `grants` per STRL semantics. Assumes the grant set
// is consistent with the expression's choice structure (at most one child of
// each MAX receives grants); used to cross-check the MILP objective.
double EvaluateStrl(const StrlExpr& expr, const LeafGrants& grants);

}  // namespace tetrisched

#endif  // TETRISCHED_STRL_STRL_H_
