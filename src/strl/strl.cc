#include "src/strl/strl.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <sstream>

namespace tetrisched {

StrlExpr NCk(PartitionSet partitions, int k, SimTime start, SimDuration dur,
             double value, LeafTag tag) {
  assert(k > 0 && dur > 0 && !partitions.empty());
  StrlExpr expr;
  expr.kind = StrlKind::kNCk;
  expr.partitions = std::move(partitions);
  expr.k = k;
  expr.start = start;
  expr.duration = dur;
  expr.value = value;
  expr.tag = tag;
  return expr;
}

StrlExpr LnCk(PartitionSet partitions, int k, SimTime start, SimDuration dur,
              double value, LeafTag tag) {
  StrlExpr expr = NCk(std::move(partitions), k, start, dur, value, tag);
  expr.kind = StrlKind::kLnCk;
  return expr;
}

namespace {

StrlExpr MakeOperator(StrlKind kind, std::vector<StrlExpr> children) {
  assert(!children.empty());
  StrlExpr expr;
  expr.kind = kind;
  expr.children = std::move(children);
  return expr;
}

}  // namespace

StrlExpr Max(std::vector<StrlExpr> children) {
  return MakeOperator(StrlKind::kMax, std::move(children));
}

StrlExpr Min(std::vector<StrlExpr> children) {
  return MakeOperator(StrlKind::kMin, std::move(children));
}

StrlExpr Sum(std::vector<StrlExpr> children) {
  return MakeOperator(StrlKind::kSum, std::move(children));
}

StrlExpr Scale(StrlExpr child, double factor) {
  StrlExpr expr;
  expr.kind = StrlKind::kScale;
  expr.scalar = factor;
  expr.children.push_back(std::move(child));
  return expr;
}

StrlExpr Barrier(StrlExpr child, double threshold) {
  StrlExpr expr;
  expr.kind = StrlKind::kBarrier;
  expr.scalar = threshold;
  expr.children.push_back(std::move(child));
  return expr;
}

int CountLeaves(const StrlExpr& expr) {
  if (expr.IsLeaf()) {
    return 1;
  }
  int total = 0;
  for (const StrlExpr& child : expr.children) {
    total += CountLeaves(child);
  }
  return total;
}

int CountNodes(const StrlExpr& expr) {
  int total = 1;
  for (const StrlExpr& child : expr.children) {
    total += CountNodes(child);
  }
  return total;
}

namespace {

void AppendString(const StrlExpr& expr, std::ostringstream& out) {
  switch (expr.kind) {
    case StrlKind::kNCk:
    case StrlKind::kLnCk: {
      out << (expr.kind == StrlKind::kNCk ? "nCk({" : "LnCk({");
      for (size_t i = 0; i < expr.partitions.size(); ++i) {
        if (i > 0) {
          out << ",";
        }
        out << "p" << expr.partitions[i];
      }
      out << "}, k=" << expr.k << ", s=" << expr.start
          << ", dur=" << expr.duration << ", v=" << expr.value << ")";
      return;
    }
    case StrlKind::kMax:
      out << "max(";
      break;
    case StrlKind::kMin:
      out << "min(";
      break;
    case StrlKind::kSum:
      out << "sum(";
      break;
    case StrlKind::kScale:
      out << "scale(" << expr.scalar << ", ";
      break;
    case StrlKind::kBarrier:
      out << "barrier(" << expr.scalar << ", ";
      break;
  }
  for (size_t i = 0; i < expr.children.size(); ++i) {
    if (i > 0) {
      out << ", ";
    }
    AppendString(expr.children[i], out);
  }
  out << ")";
}

}  // namespace

std::string ToString(const StrlExpr& expr) {
  std::ostringstream out;
  AppendString(expr, out);
  return out.str();
}

double EvaluateStrl(const StrlExpr& expr, const LeafGrants& grants) {
  switch (expr.kind) {
    case StrlKind::kNCk: {
      auto it = grants.find(expr.tag);
      if (it == grants.end()) {
        return 0.0;
      }
      int granted = 0;
      for (const auto& [partition, count] : it->second) {
        if (std::find(expr.partitions.begin(), expr.partitions.end(),
                      partition) != expr.partitions.end()) {
          granted += count;
        }
      }
      return granted >= expr.k ? expr.value : 0.0;
    }
    case StrlKind::kLnCk: {
      auto it = grants.find(expr.tag);
      if (it == grants.end()) {
        return 0.0;
      }
      int granted = 0;
      for (const auto& [partition, count] : it->second) {
        if (std::find(expr.partitions.begin(), expr.partitions.end(),
                      partition) != expr.partitions.end()) {
          granted += count;
        }
      }
      granted = std::min(granted, expr.k);
      return expr.value * static_cast<double>(granted) /
             static_cast<double>(expr.k);
    }
    case StrlKind::kMax: {
      double best = 0.0;
      for (const StrlExpr& child : expr.children) {
        best = std::max(best, EvaluateStrl(child, grants));
      }
      return best;
    }
    case StrlKind::kMin: {
      double lowest = std::numeric_limits<double>::infinity();
      for (const StrlExpr& child : expr.children) {
        lowest = std::min(lowest, EvaluateStrl(child, grants));
      }
      return lowest;
    }
    case StrlKind::kSum: {
      double total = 0.0;
      for (const StrlExpr& child : expr.children) {
        total += EvaluateStrl(child, grants);
      }
      return total;
    }
    case StrlKind::kScale:
      return expr.scalar * EvaluateStrl(expr.children[0], grants);
    case StrlKind::kBarrier: {
      double inner = EvaluateStrl(expr.children[0], grants);
      return inner >= expr.scalar ? expr.scalar : 0.0;
    }
  }
  return 0.0;
}

}  // namespace tetrisched
