#include "src/strl/value.h"

#include <algorithm>
#include <cassert>

namespace tetrisched {

ValueFunction ValueFunction::SloStep(double height, SimTime deadline) {
  ValueFunction fn;
  fn.kind_ = Kind::kStep;
  fn.height_ = height;
  fn.deadline_ = deadline;
  return fn;
}

ValueFunction ValueFunction::LinearDecay(double v0, SimTime reference,
                                         double slope_per_second,
                                         double floor) {
  assert(floor > 0.0);
  ValueFunction fn;
  fn.kind_ = Kind::kLinearDecay;
  fn.height_ = v0;
  fn.deadline_ = reference;
  fn.slope_ = slope_per_second;
  fn.floor_ = floor;
  return fn;
}

double ValueFunction::At(SimTime t) const {
  switch (kind_) {
    case Kind::kStep:
      return t <= deadline_ ? height_ : 0.0;
    case Kind::kLinearDecay: {
      double v = height_ - slope_ * static_cast<double>(t - deadline_);
      return std::max(v, floor_);
    }
  }
  return 0.0;
}

double ShadeByCompletion(double value, SimTime now, SimTime completion) {
  if (value <= 0.0) {
    return 0.0;
  }
  double penalty = kCompletionTieBreak *
                   static_cast<double>(completion - now) /
                   kTieBreakHorizonSeconds;
  return value * std::max(0.0, 1.0 - penalty);
}

ValueFunction AcceptedSloValue(SimTime deadline, double v0) {
  return ValueFunction::SloStep(kAcceptedSloMultiplier * v0, deadline);
}

ValueFunction UnreservedSloValue(SimTime deadline, double v0) {
  return ValueFunction::SloStep(kUnreservedSloMultiplier * v0, deadline);
}

ValueFunction BestEffortValue(SimTime submit, SimDuration decay_horizon,
                              double v0) {
  assert(decay_horizon > 0);
  double slope = v0 * (1.0 - kBestEffortFloorFraction) /
                 static_cast<double>(decay_horizon);
  return ValueFunction::LinearDecay(v0, submit, slope,
                                    kBestEffortFloorFraction * v0);
}

}  // namespace tetrisched
