// Completion-time value functions (paper §6.2.2, Fig 5).
//
// A value function v(t) maps a job's completion time to scalar value; the
// STRL generator evaluates it at each candidate option's completion time to
// produce leaf values. The paper's internal defaults:
//
//   accepted SLO job:        v(t) = 1000 * v0 for t <= deadline, else 0
//   SLO job w/o reservation: v(t) =   25 * v0 for t <= deadline, else 0
//   best-effort job:         linear decay from v0 with completion time
//
// Best-effort decay is floored at a small positive value so long-waiting BE
// jobs never become invisible to the optimizer (the paper culls zero-value
// *SLO* jobs; BE jobs always retain a latency incentive).

#ifndef TETRISCHED_STRL_VALUE_H_
#define TETRISCHED_STRL_VALUE_H_

#include "src/common/time.h"

namespace tetrisched {

// Paper Fig 5 multipliers over the common base value v0.
inline constexpr double kAcceptedSloMultiplier = 1000.0;
inline constexpr double kUnreservedSloMultiplier = 25.0;
inline constexpr double kBestEffortFloorFraction = 0.01;

// Deterministic tie-break applied by the STRL generator: step value
// functions make the optimizer indifferent between any two options that meet
// the deadline, so option values are shaded down by at most
// kCompletionTieBreak (5%) proportionally to how far in the future they
// complete (normalized by kTieBreakHorizonSeconds). This prefers faster
// placements and earlier starts without perturbing the 1000x/25x/1x class
// separation.
inline constexpr double kCompletionTieBreak = 0.05;
inline constexpr double kTieBreakHorizonSeconds = 10000.0;

// Shades `value` by the completion-time tie-break; keeps zero at zero.
double ShadeByCompletion(double value, SimTime now, SimTime completion);

class ValueFunction {
 public:
  // Step function: `height` until `deadline` (inclusive), 0 after.
  static ValueFunction SloStep(double height, SimTime deadline);

  // Linear decay: v0 at `reference` dropping by `slope_per_second`, floored
  // at `floor` (> 0).
  static ValueFunction LinearDecay(double v0, SimTime reference,
                                   double slope_per_second, double floor);

  // Value of completing at time t.
  double At(SimTime t) const;

  bool is_step() const { return kind_ == Kind::kStep; }
  SimTime deadline() const { return deadline_; }

 private:
  enum class Kind { kStep, kLinearDecay };

  Kind kind_ = Kind::kStep;
  double height_ = 0.0;       // step height or decay v0
  SimTime deadline_ = 0;      // step deadline or decay reference
  double slope_ = 0.0;
  double floor_ = 0.0;
};

// The paper's internal defaults for the three job classes, parameterized by
// the common base value v0 (= 1 in all experiments).
ValueFunction AcceptedSloValue(SimTime deadline, double v0 = 1.0);
ValueFunction UnreservedSloValue(SimTime deadline, double v0 = 1.0);
// Best-effort decay reaches the floor after `decay_horizon` seconds past
// `submit`; ties latency sensitivity to the expected job scale.
ValueFunction BestEffortValue(SimTime submit, SimDuration decay_horizon,
                              double v0 = 1.0);

}  // namespace tetrisched

#endif  // TETRISCHED_STRL_VALUE_H_
