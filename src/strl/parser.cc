#include "src/strl/parser.h"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <sstream>

namespace tetrisched {
namespace {

// Hard recursion ceiling for nested operators. Parsing is recursive-descent,
// so pathological inputs like "max(max(max(..." would otherwise exhaust the
// stack; real generated expressions nest a handful of levels.
constexpr int kMaxParseDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StrlParseResult Run() {
    StrlParseResult result;
    std::optional<StrlExpr> expr = ParseExpr();
    SkipSpace();
    if (expr.has_value() && pos_ != text_.size()) {
      Fail("trailing input");
      expr.reset();
    }
    if (!expr.has_value()) {
      result.error = error_;
      return result;
    }
    result.expr = std::move(expr);
    return result;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool Consume(char c) {
    if (Peek(c)) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Expect(char c) {
    if (Consume(c)) {
      return true;
    }
    std::ostringstream out;
    out << "expected '" << c << "'";
    Fail(out.str());
    return false;
  }

  void Fail(const std::string& message) {
    if (error_.empty()) {
      std::ostringstream out;
      out << message << " at offset " << pos_;
      error_ = out.str();
    }
  }

  // Reads an identifier ([A-Za-z]+).
  std::string ReadWord() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  std::optional<int64_t> ReadInt() {
    SkipSpace();
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    int64_t value = 0;
    auto [ptr, ec] = std::from_chars(text_.data() + start, text_.data() + pos_,
                                     value);
    if (ec != std::errc() || ptr != text_.data() + pos_ || pos_ == start) {
      Fail("expected integer");
      return std::nullopt;
    }
    return value;
  }

  std::optional<double> ReadReal() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == '-' || text_[pos_] == '+' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      Fail("expected number");
      return std::nullopt;
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      Fail("malformed number");
      return std::nullopt;
    }
    return value;
  }

  // "key=" with the given key, e.g. k= / s= / dur= / v=.
  bool ExpectKey(std::string_view key) {
    SkipSpace();
    if (text_.substr(pos_, key.size()) == key) {
      pos_ += key.size();
      return true;
    }
    std::ostringstream out;
    out << "expected '" << key << "'";
    Fail(out.str());
    return false;
  }

  std::optional<PartitionSet> ParsePartitionSet() {
    if (!Expect('{')) {
      return std::nullopt;
    }
    PartitionSet set;
    do {
      SkipSpace();
      if (!Consume('p')) {
        Fail("expected partition 'pN'");
        return std::nullopt;
      }
      std::optional<int64_t> id = ReadInt();
      if (!id.has_value()) {
        return std::nullopt;
      }
      set.push_back(static_cast<PartitionId>(*id));
    } while (Consume(','));
    if (!Expect('}')) {
      return std::nullopt;
    }
    return set;
  }

  std::optional<StrlExpr> ParseLeaf(bool linear) {
    if (!Expect('(')) {
      return std::nullopt;
    }
    std::optional<PartitionSet> partitions = ParsePartitionSet();
    if (!partitions.has_value() || !Expect(',') || !ExpectKey("k=")) {
      return std::nullopt;
    }
    std::optional<int64_t> k = ReadInt();
    if (!k.has_value() || *k <= 0 || !Expect(',') || !ExpectKey("s=")) {
      if (k.has_value() && *k <= 0) {
        Fail("k must be positive");
      }
      return std::nullopt;
    }
    std::optional<int64_t> start = ReadInt();
    if (!start.has_value() || !Expect(',') || !ExpectKey("dur=")) {
      return std::nullopt;
    }
    std::optional<int64_t> dur = ReadInt();
    if (!dur.has_value() || *dur <= 0 || !Expect(',') || !ExpectKey("v=")) {
      if (dur.has_value() && *dur <= 0) {
        Fail("dur must be positive");
      }
      return std::nullopt;
    }
    std::optional<double> value = ReadReal();
    if (!value.has_value() || !Expect(')')) {
      return std::nullopt;
    }
    StrlExpr leaf =
        linear ? LnCk(std::move(*partitions), static_cast<int>(*k), *start,
                      *dur, *value, next_tag_)
               : NCk(std::move(*partitions), static_cast<int>(*k), *start,
                     *dur, *value, next_tag_);
    ++next_tag_;
    return leaf;
  }

  std::optional<std::vector<StrlExpr>> ParseChildren() {
    if (!Expect('(')) {
      return std::nullopt;
    }
    std::vector<StrlExpr> children;
    do {
      std::optional<StrlExpr> child = ParseExpr();
      if (!child.has_value()) {
        return std::nullopt;
      }
      children.push_back(std::move(*child));
    } while (Consume(','));
    if (!Expect(')')) {
      return std::nullopt;
    }
    return children;
  }

  std::optional<StrlExpr> ParseScalarOp(bool is_scale) {
    if (!Expect('(')) {
      return std::nullopt;
    }
    std::optional<double> scalar = ReadReal();
    if (!scalar.has_value() || !Expect(',')) {
      return std::nullopt;
    }
    std::optional<StrlExpr> child = ParseExpr();
    if (!child.has_value() || !Expect(')')) {
      return std::nullopt;
    }
    return is_scale ? Scale(std::move(*child), *scalar)
                    : Barrier(std::move(*child), *scalar);
  }

  std::optional<StrlExpr> ParseExpr() {
    if (depth_ >= kMaxParseDepth) {
      Fail("expression nested deeper than the limit of 64");
      return std::nullopt;
    }
    ++depth_;
    std::optional<StrlExpr> expr = ParseExprInner();
    --depth_;
    return expr;
  }

  std::optional<StrlExpr> ParseExprInner() {
    std::string word = ReadWord();
    if (word == "nCk") {
      return ParseLeaf(/*linear=*/false);
    }
    if (word == "LnCk") {
      return ParseLeaf(/*linear=*/true);
    }
    if (word == "max" || word == "min" || word == "sum") {
      std::optional<std::vector<StrlExpr>> children = ParseChildren();
      if (!children.has_value()) {
        return std::nullopt;
      }
      if (word == "max") {
        return Max(std::move(*children));
      }
      if (word == "min") {
        return Min(std::move(*children));
      }
      return Sum(std::move(*children));
    }
    if (word == "scale") {
      return ParseScalarOp(/*is_scale=*/true);
    }
    if (word == "barrier") {
      return ParseScalarOp(/*is_scale=*/false);
    }
    Fail(word.empty() ? "expected expression"
                      : "unknown operator '" + word + "'");
    return std::nullopt;
  }

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
  LeafTag next_tag_ = 1;
};

}  // namespace

StrlParseResult ParseStrl(std::string_view text) { return Parser(text).Run(); }

}  // namespace tetrisched
