#include "src/persist/persist.h"

#include <chrono>

#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/obs/provenance.h"

namespace tetrisched {
namespace {

// Registry-backed persistence instruments (DESIGN.md §10). Process-wide,
// like every other tetrisched_* instrument; SimMetrics keeps per-run copies.
struct PersistInstruments {
  Counter* appends;
  Counter* snapshots;
  Counter* recoveries;
  Counter* replayed;
  Counter* dropped;
  Histogram* recovery_ms;
  Histogram* replay_records;
};

PersistInstruments& Instruments() {
  MetricsRegistry& registry = GlobalMetrics();
  static const std::vector<double> kRecordBounds{
      0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000};
  static PersistInstruments instruments{
      registry.GetCounter("tetrisched_persist_journal_appends_total"),
      registry.GetCounter("tetrisched_persist_snapshots_total"),
      registry.GetCounter("tetrisched_persist_recoveries_total"),
      registry.GetCounter("tetrisched_persist_journal_replayed_total"),
      registry.GetCounter("tetrisched_persist_journal_dropped_total"),
      registry.GetHistogram("tetrisched_persist_recovery_ms"),
      registry.GetHistogram("tetrisched_persist_replay_records",
                            kRecordBounds),
  };
  return instruments;
}

}  // namespace

PersistenceManager::PersistenceManager(
    std::unique_ptr<JournalStorage> storage, PersistOptions options)
    : storage_(std::move(storage)), options_(options) {}

int64_t PersistenceManager::Append(const DurableEvent& event) {
  storage_->AppendJournal(EncodeFrame(EncodeEvent(event)));
  ++journal_records_;
  Instruments().appends->Increment();
  return journal_records_;
}

void PersistenceManager::Checkpoint(const RecoveredState& state) {
  storage_->WriteSnapshot(EncodeSnapshot(state));
  storage_->TruncateJournal();
  journal_records_ = 0;
  ++snapshots_taken_;
  Instruments().snapshots->Increment();
}

bool PersistenceManager::MaybeCheckpoint(const RecoveredState& state) {
  if (options_.snapshot_every <= 0 ||
      journal_records_ < options_.snapshot_every) {
    return false;
  }
  Checkpoint(state);
  return true;
}

RecoveryResult PersistenceManager::Recover() {
  auto start = std::chrono::steady_clock::now();
  RecoveryResult result;

  std::string snapshot_bytes = storage_->ReadSnapshot();
  if (!snapshot_bytes.empty()) {
    if (DecodeSnapshot(snapshot_bytes, &result.state)) {
      result.snapshot_loaded = true;
    } else {
      // A half-written snapshot cannot exist (atomic replace); a corrupt
      // one means media damage. Recover what the journal alone holds.
      TETRI_LOG(kWarning)
          << "persist: snapshot failed to decode; replaying journal from "
             "an empty state";
      result.state = RecoveredState{};
    }
  }

  std::string journal_bytes = storage_->ReadJournal();
  DecodedJournal decoded =
      DecodeFrames(journal_bytes, options_.log_dropped);
  for (const std::string& payload : decoded.payloads) {
    DurableEvent event;
    if (!DecodeEvent(payload, &event)) {
      // CRC-clean but semantically undecodable (version skew): skip the
      // record but keep replaying — later records are independently framed.
      ++result.undecodable;
      TETRI_LOG(kWarning)
          << "persist: skipping undecodable journal record ("
          << payload.size() << " bytes)";
      continue;
    }
    ApplyEvent(result.state, event);
    ++result.replayed;
    if (ProvenanceRecorder::Global().enabled()) {
      // One provenance record per replayed journal record, so the flight
      // recorder shows exactly which durable history rebuilt the RM view.
      ProvenanceRecord record;
      record.kind = ProvKind::kReplay;
      record.time = event.time;
      record.job = event.job;
      record.label = ToString(event.kind);
      ProvenanceRecorder::Global().Record(std::move(record));
    }
  }
  result.dropped = decoded.dropped_records;

  if (decoded.valid_bytes < journal_bytes.size()) {
    // Persist the truncation so a second recovery (or a crash during this
    // one) sees exactly the same intact prefix.
    std::string prefix = journal_bytes.substr(0, decoded.valid_bytes);
    storage_->TruncateJournal();
    storage_->AppendJournal(prefix);
  }
  journal_records_ = result.replayed;

  result.recover_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  PersistInstruments& instruments = Instruments();
  instruments.recoveries->Increment();
  instruments.replayed->Increment(result.replayed);
  if (result.dropped > 0) {
    instruments.dropped->Increment(result.dropped);
  }
  instruments.recovery_ms->Observe(result.recover_ms);
  instruments.replay_records->Observe(static_cast<double>(result.replayed));
  return result;
}

}  // namespace tetrisched
