#include "src/persist/records.h"

#include <algorithm>

#include "src/common/bytes.h"

namespace tetrisched {
namespace {

constexpr uint8_t kEventVersion = 1;
// v2 appends RecoveredState::service_jobs; v1 snapshots (no service layer)
// still decode, with an empty service-jobs table.
constexpr uint8_t kSnapshotVersion = 2;
constexpr uint8_t kMinSnapshotVersion = 1;

void PutCounts(ByteWriter& writer, const std::map<PartitionId, int>& counts) {
  writer.PutU32(static_cast<uint32_t>(counts.size()));
  for (const auto& [partition, count] : counts) {
    writer.PutI64(partition);
    writer.PutI64(count);
  }
}

bool GetCounts(ByteReader& reader, std::map<PartitionId, int>* counts) {
  counts->clear();
  uint32_t size = reader.GetU32();
  for (uint32_t i = 0; i < size && reader.ok(); ++i) {
    PartitionId partition = static_cast<PartitionId>(reader.GetI64());
    int count = static_cast<int>(reader.GetI64());
    (*counts)[partition] = count;
  }
  return reader.ok();
}

void PutGang(ByteWriter& writer, const GangRecord& gang) {
  writer.PutI64(gang.job);
  PutCounts(writer, gang.counts);
  writer.PutI64(gang.start);
  writer.PutI64(gang.expected_end);
  writer.PutI64(gang.est_duration);
}

bool GetGang(ByteReader& reader, GangRecord* gang) {
  gang->job = reader.GetI64();
  if (!GetCounts(reader, &gang->counts)) {
    return false;
  }
  gang->start = reader.GetI64();
  gang->expected_end = reader.GetI64();
  gang->est_duration = reader.GetI64();
  return reader.ok();
}

void PutJobIds(ByteWriter& writer, const std::vector<JobId>& ids) {
  writer.PutU32(static_cast<uint32_t>(ids.size()));
  for (JobId id : ids) {
    writer.PutI64(id);
  }
}

bool GetJobIds(ByteReader& reader, std::vector<JobId>* ids) {
  ids->clear();
  uint32_t size = reader.GetU32();
  ids->reserve(std::min<uint32_t>(size, 1u << 20));
  for (uint32_t i = 0; i < size && reader.ok(); ++i) {
    ids->push_back(reader.GetI64());
  }
  return reader.ok();
}

void PutRayon(ByteWriter& writer, const RayonState& rayon) {
  writer.PutI64(rayon.capacity);
  writer.PutI64(rayon.num_accepted);
  writer.PutI64(rayon.num_rejected);
  writer.PutU32(static_cast<uint32_t>(rayon.deltas.size()));
  for (const auto& [time, delta] : rayon.deltas) {
    writer.PutI64(time);
    writer.PutI64(delta);
  }
}

bool GetRayon(ByteReader& reader, RayonState* rayon) {
  rayon->capacity = static_cast<int>(reader.GetI64());
  rayon->num_accepted = static_cast<int>(reader.GetI64());
  rayon->num_rejected = static_cast<int>(reader.GetI64());
  rayon->deltas.clear();
  uint32_t size = reader.GetU32();
  for (uint32_t i = 0; i < size && reader.ok(); ++i) {
    SimTime time = reader.GetI64();
    int delta = static_cast<int>(reader.GetI64());
    rayon->deltas.emplace_back(time, delta);
  }
  return reader.ok();
}

// Mirrors RayonAdmission::Submit's agenda arithmetic (no zero-erase).
void RayonReplayAdmit(RayonState& rayon, TimeRange interval, int k) {
  auto bump = [&](SimTime time, int delta) {
    auto it = std::lower_bound(
        rayon.deltas.begin(), rayon.deltas.end(), time,
        [](const auto& entry, SimTime t) { return entry.first < t; });
    if (it != rayon.deltas.end() && it->first == time) {
      it->second += delta;
    } else {
      rayon.deltas.insert(it, {time, delta});
    }
  };
  bump(interval.start, k);
  bump(interval.end, -k);
  ++rayon.num_accepted;
}

// Mirrors RayonAdmission::Release (erases agenda steps that cancel out).
void RayonReplayRelease(RayonState& rayon, TimeRange interval, int k) {
  if (interval.empty() || k <= 0) {
    return;
  }
  auto bump = [&](SimTime time, int delta) {
    auto it = std::lower_bound(
        rayon.deltas.begin(), rayon.deltas.end(), time,
        [](const auto& entry, SimTime t) { return entry.first < t; });
    if (it != rayon.deltas.end() && it->first == time) {
      it->second += delta;
    } else {
      rayon.deltas.insert(it, {time, delta});
    }
  };
  bump(interval.start, -k);
  bump(interval.end, k);
  for (SimTime time : {interval.start, interval.end}) {
    auto it = std::lower_bound(
        rayon.deltas.begin(), rayon.deltas.end(), time,
        [](const auto& entry, SimTime t) { return entry.first < t; });
    if (it != rayon.deltas.end() && it->first == time && it->second == 0) {
      rayon.deltas.erase(it);
    }
  }
}

}  // namespace

const char* ToString(DurableEventKind kind) {
  switch (kind) {
    case DurableEventKind::kRayonAdmit:
      return "rayon_admit";
    case DurableEventKind::kRayonRelease:
      return "rayon_release";
    case DurableEventKind::kRayonReject:
      return "rayon_reject";
    case DurableEventKind::kSloUpdate:
      return "slo_update";
    case DurableEventKind::kCommitIntent:
      return "commit_intent";
    case DurableEventKind::kGangLaunch:
      return "gang_launch";
    case DurableEventKind::kCommitApplied:
      return "commit_applied";
    case DurableEventKind::kGangComplete:
      return "gang_complete";
    case DurableEventKind::kGangKill:
      return "gang_kill";
    case DurableEventKind::kGangPreempt:
      return "gang_preempt";
    case DurableEventKind::kJobDropped:
      return "job_dropped";
    case DurableEventKind::kPlanAheadAdapt:
      return "plan_ahead_adapt";
    case DurableEventKind::kEpochBump:
      return "epoch_bump";
    case DurableEventKind::kServiceSubmit:
      return "service_submit";
  }
  return "unknown";
}

std::string EncodeEvent(const DurableEvent& event) {
  ByteWriter writer;
  writer.PutU8(kEventVersion);
  writer.PutU8(static_cast<uint8_t>(event.kind));
  writer.PutI64(event.time);
  writer.PutI64(event.job);
  writer.PutI64(event.k);
  writer.PutI64(event.interval.start);
  writer.PutI64(event.interval.end);
  writer.PutI64(event.retries);
  writer.PutI64(event.eligible_at);
  writer.PutU8(event.slo_class);
  writer.PutU8(event.preferred ? 1 : 0);
  writer.PutI64(event.runtime);
  PutGang(writer, event.gang);
  writer.PutU32(static_cast<uint32_t>(event.gangs.size()));
  for (const GangRecord& gang : event.gangs) {
    PutGang(writer, gang);
  }
  PutJobIds(writer, event.drops);
  PutJobIds(writer, event.preempts);
  writer.PutString(event.blob);
  writer.PutI64(event.node);
  writer.PutI64(static_cast<int64_t>(event.epoch));
  return writer.Take();
}

bool DecodeEvent(std::string_view bytes, DurableEvent* event) {
  ByteReader reader(bytes);
  if (reader.GetU8() != kEventVersion) {
    return false;
  }
  event->kind = static_cast<DurableEventKind>(reader.GetU8());
  event->time = reader.GetI64();
  event->job = reader.GetI64();
  event->k = static_cast<int>(reader.GetI64());
  event->interval.start = reader.GetI64();
  event->interval.end = reader.GetI64();
  event->retries = static_cast<int>(reader.GetI64());
  event->eligible_at = reader.GetI64();
  event->slo_class = reader.GetU8();
  event->preferred = reader.GetU8() != 0;
  event->runtime = reader.GetI64();
  if (!GetGang(reader, &event->gang)) {
    return false;
  }
  uint32_t num_gangs = reader.GetU32();
  event->gangs.clear();
  for (uint32_t i = 0; i < num_gangs && reader.ok(); ++i) {
    GangRecord gang;
    if (!GetGang(reader, &gang)) {
      return false;
    }
    event->gangs.push_back(std::move(gang));
  }
  if (!GetJobIds(reader, &event->drops) ||
      !GetJobIds(reader, &event->preempts)) {
    return false;
  }
  event->blob = reader.GetString();
  event->node = static_cast<NodeId>(reader.GetI64());
  event->epoch = static_cast<uint64_t>(reader.GetI64());
  return reader.ok() && reader.AtEnd();
}

void ApplyEvent(RecoveredState& state, const DurableEvent& event) {
  switch (event.kind) {
    case DurableEventKind::kRayonAdmit:
      RayonReplayAdmit(state.rayon, event.interval, event.k);
      break;
    case DurableEventKind::kRayonRelease:
      RayonReplayRelease(state.rayon, event.interval, event.k);
      break;
    case DurableEventKind::kRayonReject:
      ++state.rayon.num_rejected;
      break;
    case DurableEventKind::kSloUpdate:
      state.slo[event.job] =
          SloRecord{event.job, event.slo_class, event.interval};
      break;
    case DurableEventKind::kCommitIntent:
      state.pending_intent =
          PendingIntent{event.time, event.gangs, event.drops, event.preempts};
      break;
    case DurableEventKind::kGangLaunch:
      state.running[event.gang.job] = event.gang;
      if (auto it = state.retries.find(event.gang.job);
          it != state.retries.end()) {
        it->second.last_kill = -1;  // restart resolves the kill gap
      }
      break;
    case DurableEventKind::kCommitApplied:
      state.pending_intent.reset();
      state.policy_state = event.blob;
      break;
    case DurableEventKind::kGangComplete:
      state.running.erase(event.job);
      state.finished.insert(event.job);
      state.service_jobs.erase(event.job);
      state.completions.push_back(
          CompletionRecord{event.job, event.preferred, event.runtime});
      break;
    case DurableEventKind::kGangKill:
      state.running.erase(event.job);
      state.retries[event.job] =
          RetryRecord{event.job, event.retries, event.eligible_at, event.time};
      break;
    case DurableEventKind::kGangPreempt:
      state.running.erase(event.job);
      break;
    case DurableEventKind::kJobDropped:
      state.running.erase(event.job);
      state.finished.insert(event.job);
      state.service_jobs.erase(event.job);
      break;
    case DurableEventKind::kServiceSubmit:
      state.service_jobs[event.job] = event.blob;
      break;
    case DurableEventKind::kPlanAheadAdapt:
      // Informational only: the adapted AIMD state is recovered from the
      // kCommitApplied policy blob, not replayed from these records.
      break;
    case DurableEventKind::kEpochBump: {
      // Max-merge keeps the table monotonic even when a snapshot already
      // carries a newer epoch than a replayed record.
      uint64_t& epoch = state.epochs[event.node];
      epoch = std::max(epoch, event.epoch);
      break;
    }
  }
}

std::string EncodeSnapshot(const RecoveredState& state) {
  ByteWriter writer;
  writer.PutU8(kSnapshotVersion);
  writer.PutI64(state.checkpoint_time);
  PutRayon(writer, state.rayon);

  writer.PutU32(static_cast<uint32_t>(state.running.size()));
  for (const auto& [job, gang] : state.running) {
    PutGang(writer, gang);
  }

  writer.PutU32(static_cast<uint32_t>(state.retries.size()));
  for (const auto& [job, retry] : state.retries) {
    writer.PutI64(retry.job);
    writer.PutI64(retry.retries);
    writer.PutI64(retry.eligible_at);
    writer.PutI64(retry.last_kill);
  }

  writer.PutU32(static_cast<uint32_t>(state.finished.size()));
  for (JobId job : state.finished) {
    writer.PutI64(job);
  }

  writer.PutU32(static_cast<uint32_t>(state.slo.size()));
  for (const auto& [job, record] : state.slo) {
    writer.PutI64(record.job);
    writer.PutU8(record.slo_class);
    writer.PutI64(record.reservation.start);
    writer.PutI64(record.reservation.end);
  }

  writer.PutU32(static_cast<uint32_t>(state.completions.size()));
  for (const CompletionRecord& completion : state.completions) {
    writer.PutI64(completion.job);
    writer.PutU8(completion.preferred ? 1 : 0);
    writer.PutI64(completion.runtime);
  }

  writer.PutString(state.policy_state);
  // Snapshots are only taken at consistent points, so pending_intent is
  // encoded as a presence flag for completeness.
  writer.PutU8(state.pending_intent.has_value() ? 1 : 0);
  if (state.pending_intent.has_value()) {
    const PendingIntent& intent = *state.pending_intent;
    writer.PutI64(intent.time);
    writer.PutU32(static_cast<uint32_t>(intent.gangs.size()));
    for (const GangRecord& gang : intent.gangs) {
      PutGang(writer, gang);
    }
    PutJobIds(writer, intent.drops);
    PutJobIds(writer, intent.preempts);
  }
  writer.PutU32(static_cast<uint32_t>(state.epochs.size()));
  for (const auto& [node, epoch] : state.epochs) {
    writer.PutI64(node);
    writer.PutI64(static_cast<int64_t>(epoch));
  }
  writer.PutU32(static_cast<uint32_t>(state.service_jobs.size()));
  for (const auto& [job, spec] : state.service_jobs) {
    writer.PutI64(job);
    writer.PutString(spec);
  }
  return writer.Take();
}

bool DecodeSnapshot(std::string_view bytes, RecoveredState* state) {
  *state = RecoveredState{};
  ByteReader reader(bytes);
  uint8_t version = reader.GetU8();
  if (version < kMinSnapshotVersion || version > kSnapshotVersion) {
    return false;
  }
  state->checkpoint_time = reader.GetI64();
  if (!GetRayon(reader, &state->rayon)) {
    return false;
  }

  uint32_t num_running = reader.GetU32();
  for (uint32_t i = 0; i < num_running && reader.ok(); ++i) {
    GangRecord gang;
    if (!GetGang(reader, &gang)) {
      return false;
    }
    state->running[gang.job] = std::move(gang);
  }

  uint32_t num_retries = reader.GetU32();
  for (uint32_t i = 0; i < num_retries && reader.ok(); ++i) {
    RetryRecord retry;
    retry.job = reader.GetI64();
    retry.retries = static_cast<int>(reader.GetI64());
    retry.eligible_at = reader.GetI64();
    retry.last_kill = reader.GetI64();
    state->retries[retry.job] = retry;
  }

  uint32_t num_finished = reader.GetU32();
  for (uint32_t i = 0; i < num_finished && reader.ok(); ++i) {
    state->finished.insert(reader.GetI64());
  }

  uint32_t num_slo = reader.GetU32();
  for (uint32_t i = 0; i < num_slo && reader.ok(); ++i) {
    SloRecord record;
    record.job = reader.GetI64();
    record.slo_class = reader.GetU8();
    record.reservation.start = reader.GetI64();
    record.reservation.end = reader.GetI64();
    state->slo[record.job] = record;
  }

  uint32_t num_completions = reader.GetU32();
  for (uint32_t i = 0; i < num_completions && reader.ok(); ++i) {
    CompletionRecord completion;
    completion.job = reader.GetI64();
    completion.preferred = reader.GetU8() != 0;
    completion.runtime = reader.GetI64();
    state->completions.push_back(completion);
  }

  state->policy_state = reader.GetString();
  if (reader.GetU8() != 0) {
    PendingIntent intent;
    intent.time = reader.GetI64();
    uint32_t num_gangs = reader.GetU32();
    for (uint32_t i = 0; i < num_gangs && reader.ok(); ++i) {
      GangRecord gang;
      if (!GetGang(reader, &gang)) {
        return false;
      }
      intent.gangs.push_back(std::move(gang));
    }
    if (!GetJobIds(reader, &intent.drops) ||
        !GetJobIds(reader, &intent.preempts)) {
      return false;
    }
    state->pending_intent = std::move(intent);
  }
  uint32_t num_epochs = reader.GetU32();
  for (uint32_t i = 0; i < num_epochs && reader.ok(); ++i) {
    NodeId node = static_cast<NodeId>(reader.GetI64());
    uint64_t epoch = static_cast<uint64_t>(reader.GetI64());
    state->epochs[node] = epoch;
  }
  if (version >= 2) {
    uint32_t num_service = reader.GetU32();
    for (uint32_t i = 0; i < num_service && reader.ok(); ++i) {
      JobId job = reader.GetI64();
      state->service_jobs[job] = reader.GetString();
    }
  }
  return reader.ok() && reader.AtEnd();
}

}  // namespace tetrisched
