// Durable scheduler events, snapshots, and replay (DESIGN.md §11).
//
// Everything the scheduler process must not lose across a crash is captured
// as a stream of DurableEvents appended to the write-ahead journal
// (journal.h), plus periodic full-state snapshots that bound replay length.
// RecoveredState is both the snapshot payload and the replay accumulator:
//
//   recover = DecodeSnapshot(snapshot) then ApplyEvent(...) per journal
//             record, truncating the torn tail at the first bad CRC.
//
// The two-phase commit protocol over these records:
//   * kCommitIntent is journaled *before* any of a cycle's mutations land
//     (placements, drops, preemptions listed in full),
//   * each applied mutation gets its own record (kGangLaunch, kJobDropped,
//     kGangPreempt) *after* the cluster state changed,
//   * kCommitApplied closes the cycle and carries the policy's opaque
//     durable state (TetriSched's warm-start plan).
// Replay that ends with an open intent (crash mid-commit) exposes it in
// RecoveredState::pending_intent so the harness can reconcile: gangs the
// cluster is actually running but the journal never confirmed are adopted
// from the intent; unconfirmed ones simply stay pending and are replanned.
// Every ApplyEvent is idempotent with respect to the state it targets, so a
// record journaled just before the matching mutation (journal ahead of
// memory) converges to the same state as one journaled just after.

#ifndef TETRISCHED_PERSIST_RECORDS_H_
#define TETRISCHED_PERSIST_RECORDS_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/time.h"
#include "src/core/job.h"
#include "src/rayon/rayon.h"

namespace tetrisched {

enum class DurableEventKind : uint8_t {
  kRayonAdmit = 1,    // reservation granted: job, k, interval
  kRayonRelease = 2,  // reservation capacity returned: k, interval
  kRayonReject = 3,   // admission rejected (counter parity only)
  kSloUpdate = 4,     // job's slo_class/reservation changed (re-admission)
  kCommitIntent = 5,  // cycle plan about to be applied (gangs/drops/preempts)
  kGangLaunch = 6,    // one placement landed on the cluster
  kCommitApplied = 7, // cycle fully applied; blob = policy durable state
  kGangComplete = 8,  // job finished (preferred flag + runtime for replay)
  kGangKill = 9,      // gang killed by a node failure; retry/backoff state
  kGangPreempt = 10,  // gang preempted back to pending
  kJobDropped = 11,   // job dropped (deadline unreachable / retries spent)
  // AIMD plan-ahead adaptation (DESIGN.md §13): k = direction (-1 shrink,
  // +1 restore), runtime = the new effective plan-ahead window. Informational
  // for replay inspection — the authoritative adapted state rides the
  // kCommitApplied policy blob, so ApplyEvent treats this as a no-op.
  kPlanAheadAdapt = 12,
  // Fence-epoch bump (DESIGN.md §15): the scheduler gave up on `node` and
  // raised its placement epoch to `epoch`. Journaled *before* the in-memory
  // bump (WAL discipline) so recovery can never issue a command under an
  // epoch older than one a node agent may already have adopted — i.e. a
  // crash never resurrects a fenced placement.
  kEpochBump = 13,
  // Service-layer job acceptance (DESIGN.md §16): tetrischedd admitted a
  // client submission into its pending set. `blob` carries the canonical
  // JSON job spec (service/jobspec.h) so a restarted daemon can rebuild the
  // Job; erased from RecoveredState::service_jobs when the job finishes or
  // is dropped, so replay leaves exactly the accepted-but-unfinished set.
  kServiceSubmit = 14,
};

const char* ToString(DurableEventKind kind);

// One running (or intended) gang as the scheduler's resource-manager view:
// what it holds and when it is believed to release it. Ground-truth fields
// (concrete node ids, actual completion time) are deliberately absent —
// they belong to the cluster, which survives a scheduler crash.
struct GangRecord {
  JobId job = -1;
  std::map<PartitionId, int> counts;
  SimTime start = 0;
  SimTime expected_end = 0;
  SimDuration est_duration = 0;

  bool operator==(const GangRecord& other) const = default;
};

struct DurableEvent {
  DurableEventKind kind = DurableEventKind::kCommitApplied;
  SimTime time = 0;
  JobId job = -1;

  // Rayon fields (kRayonAdmit / kRayonRelease).
  int k = 0;
  TimeRange interval{0, 0};

  // Retry/backoff fields (kGangKill).
  int retries = 0;
  SimTime eligible_at = 0;

  // kSloUpdate.
  uint8_t slo_class = 0;

  // kGangComplete (estimator replay inputs).
  bool preferred = false;
  SimDuration runtime = 0;

  // kGangLaunch.
  GangRecord gang;

  // kCommitIntent.
  std::vector<GangRecord> gangs;
  std::vector<JobId> drops;
  std::vector<JobId> preempts;

  // kCommitApplied: opaque policy durable state.
  std::string blob;

  // kEpochBump.
  NodeId node = -1;
  uint64_t epoch = 0;

  bool operator==(const DurableEvent& other) const = default;
};

std::string EncodeEvent(const DurableEvent& event);
bool DecodeEvent(std::string_view bytes, DurableEvent* event);

struct RetryRecord {
  JobId job = -1;
  int retries = 0;
  SimTime eligible_at = 0;
  SimTime last_kill = -1;

  bool operator==(const RetryRecord& other) const = default;
};

struct SloRecord {
  JobId job = -1;
  uint8_t slo_class = 0;
  TimeRange reservation{0, 0};

  bool operator==(const SloRecord& other) const = default;
};

struct CompletionRecord {
  JobId job = -1;
  bool preferred = false;
  SimDuration runtime = 0;

  bool operator==(const CompletionRecord& other) const = default;
};

struct PendingIntent {
  SimTime time = 0;
  std::vector<GangRecord> gangs;
  std::vector<JobId> drops;
  std::vector<JobId> preempts;

  bool operator==(const PendingIntent& other) const = default;
};

// Full recoverable image of the scheduler process. Doubles as the snapshot
// payload and the journal-replay accumulator.
struct RecoveredState {
  SimTime checkpoint_time = 0;
  RayonState rayon;
  std::map<JobId, GangRecord> running;
  std::map<JobId, RetryRecord> retries;
  std::set<JobId> finished;       // completed or dropped
  std::map<JobId, SloRecord> slo; // current class/reservation per SLO job
  // Ordered completion observations (rebuilds the runtime estimator).
  std::vector<CompletionRecord> completions;
  // Latest policy durable state (kCommitApplied blob).
  std::string policy_state;
  // Intent journaled without a matching kCommitApplied: crash mid-commit.
  std::optional<PendingIntent> pending_intent;
  // Per-node fence epochs (DESIGN.md §15); only nodes ever fenced appear.
  // Replay max-merges kEpochBump records so the table is monotonic even
  // across snapshot/journal boundaries.
  std::map<NodeId, uint64_t> epochs;
  // Accepted-but-unfinished service submissions (DESIGN.md §16): job id ->
  // canonical JSON job spec. A restarted tetrischedd resumes every job
  // here that is neither `running` (adopted as a live gang) nor `finished`.
  std::map<JobId, std::string> service_jobs;

  bool operator==(const RecoveredState& other) const = default;
};

// Applies one journal record to the accumulator (see the protocol above).
void ApplyEvent(RecoveredState& state, const DurableEvent& event);

std::string EncodeSnapshot(const RecoveredState& state);
bool DecodeSnapshot(std::string_view bytes, RecoveredState* state);

}  // namespace tetrisched

#endif  // TETRISCHED_PERSIST_RECORDS_H_
