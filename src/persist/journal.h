// Append-only, CRC32-framed write-ahead journal (DESIGN.md §11).
//
// The journal is a flat byte stream of self-delimiting frames:
//
//   frame := [u32 payload_len][u32 crc32(payload)][payload bytes]
//
// (all integers little-endian). Appends are strictly at the tail, so a
// crash mid-append can only produce a *torn tail* — a final frame whose
// length header, CRC, or payload is incomplete or corrupt. DecodeFrames
// therefore treats the first bad CRC or short frame as the end of the
// reliable log: everything before it is returned, everything after is
// dropped (one warning per structurally-recognizable dropped frame, one for
// an unframeable tail) and reported in `dropped_records` so recovery can
// surface the truncation instead of aborting.
//
// Durability is abstracted behind JournalStorage so the simulator's
// crash-injection tests can run against an in-memory "disk" that survives
// the simulated scheduler death, while real deployments use the file-backed
// variant (journal file + snapshot file, the latter replaced crash-atomically
// via write-to-temp + rename).

#ifndef TETRISCHED_PERSIST_JOURNAL_H_
#define TETRISCHED_PERSIST_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace tetrisched {

// Standard CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the same
// checksum gzip/PNG use. Crc32("123456789") == 0xCBF43926.
uint32_t Crc32(std::string_view data);

// Wraps `payload` in a length+CRC frame.
std::string EncodeFrame(std::string_view payload);

struct DecodedJournal {
  std::vector<std::string> payloads;  // frames before the first bad one
  size_t valid_bytes = 0;     // journal prefix covered by `payloads`
  int dropped_records = 0;    // frames (or tail fragments) truncated away
};

// Walks the frame stream, stopping at the first CRC mismatch or truncated
// frame. Frames past the first bad one are never trusted as data, but their
// headers are still walked (best effort) purely to count and warn about
// each dropped record; an unframeable byte tail counts as one more.
DecodedJournal DecodeFrames(std::string_view bytes, bool log_dropped = true);

// Durable byte store for one journal + one snapshot.
class JournalStorage {
 public:
  virtual ~JournalStorage() = default;

  virtual void AppendJournal(std::string_view bytes) = 0;
  virtual std::string ReadJournal() const = 0;
  virtual void TruncateJournal() = 0;

  // Atomically replaces the snapshot (readers never see a partial one).
  virtual void WriteSnapshot(std::string_view bytes) = 0;
  virtual std::string ReadSnapshot() const = 0;  // empty when none exists
};

// In-memory storage: "durable" across a simulated scheduler crash because
// the simulation harness, not the scheduler, owns it.
class MemoryJournalStorage : public JournalStorage {
 public:
  void AppendJournal(std::string_view bytes) override;
  std::string ReadJournal() const override;
  void TruncateJournal() override;
  void WriteSnapshot(std::string_view bytes) override;
  std::string ReadSnapshot() const override;

  // Test hooks: mutate the stored bytes to model media corruption.
  std::string& mutable_journal() { return journal_; }
  std::string& mutable_snapshot() { return snapshot_; }

 private:
  std::string journal_;
  std::string snapshot_;
};

// File-backed storage rooted at a directory: `<dir>/journal.wal` +
// `<dir>/snapshot.bin`. Journal appends are flushed per record; the
// snapshot is replaced via WriteFileAtomic.
class FileJournalStorage : public JournalStorage {
 public:
  explicit FileJournalStorage(std::string dir);

  void AppendJournal(std::string_view bytes) override;
  std::string ReadJournal() const override;
  void TruncateJournal() override;
  void WriteSnapshot(std::string_view bytes) override;
  std::string ReadSnapshot() const override;

  std::string journal_path() const;
  std::string snapshot_path() const;

 private:
  std::string dir_;
};

}  // namespace tetrisched

#endif  // TETRISCHED_PERSIST_JOURNAL_H_
