// Crash-tolerant scheduler state: write-ahead journaling, periodic
// snapshots, and recovery (DESIGN.md §11).
//
// PersistenceManager owns the durability policy on top of a JournalStorage:
//   * Append() frames one DurableEvent (CRC32, length-prefixed) and appends
//     it to the journal,
//   * Checkpoint() serializes the full RecoveredState as the snapshot
//     (replaced crash-atomically) and truncates the journal,
//   * MaybeCheckpoint() applies the snapshot cadence
//     (PersistOptions::snapshot_every journal records),
//   * Recover() loads the snapshot, replays every intact journal record on
//     top of it, and truncates a torn or corrupt tail at the first bad CRC
//     (one warning per dropped record) instead of aborting.
//
// Recovery counters and durations flow into the global metrics registry
// (tetrisched_persist_* instruments, DESIGN.md §10).

#ifndef TETRISCHED_PERSIST_PERSIST_H_
#define TETRISCHED_PERSIST_PERSIST_H_

#include <cstdint>
#include <memory>

#include "src/persist/journal.h"
#include "src/persist/records.h"

namespace tetrisched {

struct PersistOptions {
  // Journal records between snapshots; 0 disables automatic checkpoints
  // (the journal then grows until Checkpoint() is called explicitly).
  int snapshot_every = 256;
  // Warn per record dropped from a torn/corrupt journal tail.
  bool log_dropped = true;
};

struct RecoveryResult {
  RecoveredState state;
  bool snapshot_loaded = false;
  int replayed = 0;         // intact journal records applied
  int dropped = 0;          // torn/corrupt tail records truncated away
  int undecodable = 0;      // CRC-clean frames whose payload failed to parse
  double recover_ms = 0.0;  // wall-clock spent in Recover()
};

class PersistenceManager {
 public:
  explicit PersistenceManager(std::unique_ptr<JournalStorage> storage,
                              PersistOptions options = {});

  // Write-ahead append. Returns the number of journal records accumulated
  // since the last checkpoint.
  int64_t Append(const DurableEvent& event);

  // Serializes `state` as the new snapshot and truncates the journal.
  void Checkpoint(const RecoveredState& state);

  // Checkpoint iff the cadence says so; returns true when one was taken.
  bool MaybeCheckpoint(const RecoveredState& state);

  // Snapshot load + journal replay; truncates the journal's bad tail (the
  // surviving prefix is kept so a second recovery is byte-identical).
  RecoveryResult Recover();

  int64_t journal_records() const { return journal_records_; }
  int64_t snapshots_taken() const { return snapshots_taken_; }
  const PersistOptions& options() const { return options_; }
  JournalStorage& storage() { return *storage_; }

 private:
  std::unique_ptr<JournalStorage> storage_;
  PersistOptions options_;
  int64_t journal_records_ = 0;  // since the last checkpoint
  int64_t snapshots_taken_ = 0;
};

}  // namespace tetrisched

#endif  // TETRISCHED_PERSIST_PERSIST_H_
