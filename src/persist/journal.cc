#include "src/persist/journal.h"

#include <array>
#include <fstream>
#include <sstream>

#include "src/common/atomic_io.h"
#include "src/common/bytes.h"
#include "src/common/logging.h"

namespace tetrisched {
namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr size_t kFrameHeaderBytes = 8;  // u32 length + u32 crc

// Reads the two little-endian header words at `offset`; false when fewer
// than kFrameHeaderBytes remain.
bool ReadHeader(std::string_view bytes, size_t offset, uint32_t* length,
                uint32_t* crc) {
  if (bytes.size() - offset < kFrameHeaderBytes) {
    return false;
  }
  ByteReader reader(bytes.substr(offset, kFrameHeaderBytes));
  *length = reader.GetU32();
  *crc = reader.GetU32();
  return true;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (char ch : data) {
    crc = table[(crc ^ static_cast<uint8_t>(ch)) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string EncodeFrame(std::string_view payload) {
  ByteWriter writer;
  writer.PutU32(static_cast<uint32_t>(payload.size()));
  writer.PutU32(Crc32(payload));
  std::string frame = writer.Take();
  frame.append(payload.data(), payload.size());
  return frame;
}

DecodedJournal DecodeFrames(std::string_view bytes, bool log_dropped) {
  DecodedJournal decoded;
  size_t offset = 0;
  bool tail_bad = false;
  while (offset < bytes.size()) {
    uint32_t length = 0;
    uint32_t crc = 0;
    if (!ReadHeader(bytes, offset, &length, &crc) ||
        bytes.size() - offset - kFrameHeaderBytes < length) {
      tail_bad = true;  // torn frame: header or payload incomplete
      break;
    }
    std::string_view payload =
        bytes.substr(offset + kFrameHeaderBytes, length);
    if (Crc32(payload) != crc) {
      tail_bad = true;
      break;
    }
    decoded.payloads.emplace_back(payload);
    offset += kFrameHeaderBytes + length;
  }
  decoded.valid_bytes = offset;

  if (!tail_bad) {
    return decoded;
  }
  // The log ends here. Walk the remaining frames structurally (their
  // contents are untrusted) so every dropped record gets one warning.
  size_t cursor = offset;
  while (cursor < bytes.size()) {
    uint32_t length = 0;
    uint32_t crc = 0;
    if (!ReadHeader(bytes, cursor, &length, &crc) ||
        bytes.size() - cursor - kFrameHeaderBytes < length) {
      // Unframeable tail fragment: one final dropped record.
      ++decoded.dropped_records;
      if (log_dropped) {
        TETRI_LOG(kWarning)
            << "journal: dropping torn tail record at offset " << cursor
            << " (" << bytes.size() - cursor << " trailing bytes)";
      }
      break;
    }
    ++decoded.dropped_records;
    if (log_dropped) {
      TETRI_LOG(kWarning) << "journal: dropping record at offset " << cursor
                          << " past the first bad CRC (payload " << length
                          << " bytes)";
    }
    cursor += kFrameHeaderBytes + length;
  }
  return decoded;
}

// --- MemoryJournalStorage ---------------------------------------------------

void MemoryJournalStorage::AppendJournal(std::string_view bytes) {
  journal_.append(bytes.data(), bytes.size());
}

std::string MemoryJournalStorage::ReadJournal() const { return journal_; }

void MemoryJournalStorage::TruncateJournal() { journal_.clear(); }

void MemoryJournalStorage::WriteSnapshot(std::string_view bytes) {
  snapshot_.assign(bytes.data(), bytes.size());
}

std::string MemoryJournalStorage::ReadSnapshot() const { return snapshot_; }

// --- FileJournalStorage -----------------------------------------------------

FileJournalStorage::FileJournalStorage(std::string dir)
    : dir_(std::move(dir)) {}

std::string FileJournalStorage::journal_path() const {
  return dir_ + "/journal.wal";
}

std::string FileJournalStorage::snapshot_path() const {
  return dir_ + "/snapshot.bin";
}

void FileJournalStorage::AppendJournal(std::string_view bytes) {
  std::ofstream out(journal_path(),
                    std::ios::binary | std::ios::app);
  if (!out) {
    TETRI_LOG(kError) << "journal: cannot append to " << journal_path();
    return;
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
}

std::string FileJournalStorage::ReadJournal() const {
  std::ifstream in(journal_path(), std::ios::binary);
  if (!in) {
    return {};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void FileJournalStorage::TruncateJournal() {
  std::ofstream out(journal_path(),
                    std::ios::binary | std::ios::trunc);
  if (!out) {
    TETRI_LOG(kError) << "journal: cannot truncate " << journal_path();
  }
}

void FileJournalStorage::WriteSnapshot(std::string_view bytes) {
  if (!WriteFileAtomic(snapshot_path(), bytes)) {
    TETRI_LOG(kError) << "journal: cannot write snapshot "
                      << snapshot_path();
  }
}

std::string FileJournalStorage::ReadSnapshot() const {
  std::ifstream in(snapshot_path(), std::ios::binary);
  if (!in) {
    return {};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace tetrisched
