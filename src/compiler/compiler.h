// STRL -> MILP compilation (paper §5, Algorithm 1).
//
// The compiler walks a STRL expression tree and emits:
//   * one binary indicator variable per choice-carrying subexpression,
//   * one integer "partition" variable per (leaf, partition) pair tracking
//     how many nodes the leaf draws from that equivalence-set partition,
//   * demand constraints (each chosen nCk leaf receives exactly k nodes),
//   * choice constraints (MAX picks at most one child, SUM any subset),
//   * supply constraints (per partition per time slice, usage <= available).
//
// Two reductions keep the model small, mirroring the paper's optimizations:
// leaves whose equivalence set reduces to a single usable partition skip
// their partition variable (P = k*I), and partitions with zero availability
// across the leaf's interval are dropped from the leaf entirely.
//
// The CompiledStrl result owns the MilpModel plus the bookkeeping needed to
// translate a solver assignment back into space-time allocations, and to
// translate the previous cycle's schedule into a warm-start vector.

#ifndef TETRISCHED_COMPILER_COMPILER_H_
#define TETRISCHED_COMPILER_COMPILER_H_

#include <map>
#include <span>
#include <vector>

#include "src/cluster/availability.h"
#include "src/solver/model.h"
#include "src/strl/strl.h"

namespace tetrisched {

// One (partition, slice) capacity row of the compiled model, with enough
// geometry to relate it back to job alternatives. Decision provenance uses
// these to explain rejected jobs: a row whose LHS activity reaches its RHS
// in the incumbent is *binding* — the resource was saturated there.
struct SupplyRowRef {
  ConstraintId row = -1;
  PartitionId partition = -1;
  int slice = 0;
  SimTime slice_start = 0;
  double rhs = 0.0;       // available capacity
  double activity = 0.0;  // LHS value under the queried assignment
};

// One chosen leaf in a solved schedule.
struct StrlAllocation {
  LeafTag tag = kNoTag;
  SimTime start = 0;
  SimDuration duration = 0;
  std::map<PartitionId, int> counts;  // partition -> nodes granted
  double value = 0.0;                 // leaf value

  int total_nodes() const {
    int total = 0;
    for (const auto& [partition, count] : counts) {
      total += count;
    }
    return total;
  }
};

class CompiledStrl {
 public:
  const MilpModel& model() const { return model_; }
  MilpModel& mutable_model() { return model_; }

  int num_leaves() const { return static_cast<int>(leaves_.size()); }

  // Model variables owned exclusively by leaf `leaf` (its choice indicator
  // plus any per-partition count variables). With the solver's decomposition
  // layer (solver/decompose.h), a component's jobs are recovered by mapping
  // each leaf's variables to their component id.
  std::vector<VarId> LeafVars(int leaf) const;

  LeafTag leaf_tag(int leaf) const { return leaves_[leaf].tag; }

  // Maps a solver assignment back to the chosen space-time allocations.
  std::vector<StrlAllocation> ExtractAllocations(
      std::span<const double> values) const;

  // Builds a full warm-start assignment that grants the given leaves.
  // Returns an empty vector when a tag is unknown. The result is a *hint*:
  // the MILP solver independently verifies feasibility and silently drops
  // infeasible warm starts.
  std::vector<double> BuildWarmStart(const LeafGrants& grants) const;

  // Every supply row of the model (activity fields left 0).
  const std::vector<SupplyRowRef>& supply_rows() const { return supply_rows_; }

  // Supply rows saturated under `values`: activity >= rhs - tol. `values`
  // must be a full assignment (e.g. MilpResult::values).
  std::vector<SupplyRowRef> BindingSupplyRows(std::span<const double> values,
                                              double tol = 1e-6) const;

  // Subset of `rows` that constrain leaf `tag`: rows whose partition the
  // leaf may draw from and whose slice overlaps the leaf's interval.
  std::vector<SupplyRowRef> RowsTouchingLeaf(
      LeafTag tag, const std::vector<SupplyRowRef>& rows) const;

  // True when the leaf was culled at compile time (no partition had any
  // headroom over its interval), i.e. the option was capacity-blocked
  // before the solver ever saw it.
  bool LeafCulledAtCompile(LeafTag tag) const;

 private:
  friend class StrlCompiler;
  friend struct StrlCompileAccess;  // implementation backdoor (compiler.cc)

  struct LeafInfo {
    LeafTag tag = kNoTag;
    SimTime start = 0;
    SimDuration duration = 0;
    int k = 0;
    double value = 0.0;
    bool linear = false;  // LnCk
    VarId indicator = -1;
    // Parallel arrays: partition id and its P variable (-1 when the leaf
    // collapsed to a single partition and P == k * indicator).
    std::vector<PartitionId> partitions;
    std::vector<VarId> partition_vars;
    // Indicators of enclosing MAX/SUM nodes (root first) that must be 1 for
    // this leaf to be chosen; used for warm starts.
    std::vector<VarId> ancestor_indicators;
  };

  MilpModel model_;
  std::vector<LeafInfo> leaves_;
  std::map<LeafTag, int> tag_to_leaf_;
  std::vector<SupplyRowRef> supply_rows_;
  TimeGrid grid_;  // copy of the compile-time grid, for row geometry
  VarId root_indicator_ = -1;
};

class StrlCompiler {
 public:
  // `availability` provides both the time grid and per-(partition, slice)
  // free capacity; it must outlive Compile().
  explicit StrlCompiler(const AvailabilityGrid& availability);

  CompiledStrl Compile(const StrlExpr& root);

 private:
  const AvailabilityGrid& availability_;
};

}  // namespace tetrisched

#endif  // TETRISCHED_COMPILER_COMPILER_H_
