#include "src/compiler/compiler.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

#include "src/common/logging.h"
#include "src/common/metrics.h"

namespace tetrisched {

// Implementation backdoor into CompiledStrl's private state; keeps the
// recursive generator out of the public header.
struct StrlCompileAccess {
  using LeafInfo = CompiledStrl::LeafInfo;
  static MilpModel& model(CompiledStrl& c) { return c.model_; }
  static std::vector<CompiledStrl::LeafInfo>& leaves(CompiledStrl& c) {
    return c.leaves_;
  }
  static std::map<LeafTag, int>& tags(CompiledStrl& c) {
    return c.tag_to_leaf_;
  }
  static std::vector<SupplyRowRef>& supply_rows(CompiledStrl& c) {
    return c.supply_rows_;
  }
  static TimeGrid& grid(CompiledStrl& c) { return c.grid_; }
  static VarId& root(CompiledStrl& c) { return c.root_indicator_; }
};

namespace {

// Recursive generation context (Algorithm 1's globals).
struct GenContext {
  const AvailabilityGrid& availability;
  CompiledStrl* out;
  // used[(partition, slice)] accumulates LHS terms for supply constraints.
  std::map<std::pair<PartitionId, int>, std::vector<LinTerm>> used;
  std::vector<VarId> indicator_chain;  // enclosing MAX/SUM indicators
};

// Tightest usable upper bound for a leaf's draw from one partition: the
// minimum availability across the leaf's active slices (and never above k).
int PartitionHeadroom(const GenContext& ctx, PartitionId partition,
                      SimTime start, SimDuration dur, int k) {
  auto [first, last] =
      ctx.availability.grid().ClippedSliceRange(start, dur);
  int headroom = k;
  for (int slice = first; slice < last; ++slice) {
    headroom =
        std::min(headroom, std::max(0, ctx.availability.avail(partition, slice)));
  }
  return headroom;
}

void TrackUsage(GenContext& ctx, PartitionId partition, SimTime start,
                SimDuration dur, VarId var, double coeff) {
  auto [first, last] =
      ctx.availability.grid().ClippedSliceRange(start, dur);
  for (int slice = first; slice < last; ++slice) {
    ctx.used[{partition, slice}].push_back({var, coeff});
  }
}

// gen(expr, I): emits variables/constraints for `expr` under indicator `I`
// and returns the objective terms contributed by the subtree.
std::vector<LinTerm> Gen(GenContext& ctx, const StrlExpr& expr, VarId I);

std::vector<LinTerm> GenLeaf(GenContext& ctx, const StrlExpr& expr, VarId I) {
  MilpModel& model = StrlCompileAccess::model(*ctx.out);
  StrlCompileAccess::LeafInfo info;
  info.tag = expr.tag;
  info.start = expr.start;
  info.duration = expr.duration;
  info.k = expr.k;
  info.value = expr.value;
  info.linear = expr.kind == StrlKind::kLnCk;
  info.indicator = I;
  info.ancestor_indicators = ctx.indicator_chain;

  // Keep only partitions that can contribute at least one node.
  std::vector<std::pair<PartitionId, int>> usable;
  for (PartitionId partition : expr.partitions) {
    int headroom =
        PartitionHeadroom(ctx, partition, expr.start, expr.duration, expr.k);
    if (headroom > 0) {
      usable.emplace_back(partition, headroom);
    }
  }

  std::vector<LinTerm> objective;
  int total_headroom = 0;
  for (const auto& [partition, headroom] : usable) {
    total_headroom += headroom;
  }
  if (usable.empty() || total_headroom < (info.linear ? 1 : expr.k)) {
    // The option cannot be satisfied inside this window: pin I = 0 instead of
    // emitting an unusable subtree (the paper's expression culling).
    model.AddConstraint({{I, 1.0}}, ConstraintSense::kLessEqual, 0.0,
                        "cull_t" + std::to_string(expr.tag));
    StrlCompileAccess::leaves(*ctx.out).push_back(std::move(info));
    if (expr.tag != kNoTag) {
      StrlCompileAccess::tags(*ctx.out)[expr.tag] =
          static_cast<int>(StrlCompileAccess::leaves(*ctx.out).size()) - 1;
    }
    return objective;
  }

  if (!info.linear && usable.size() == 1) {
    // Single-partition nCk: P == k * I, no partition variable needed.
    PartitionId partition = usable[0].first;
    info.partitions.push_back(partition);
    info.partition_vars.push_back(-1);
    TrackUsage(ctx, partition, expr.start, expr.duration, I,
               static_cast<double>(expr.k));
    objective.push_back({I, expr.value});
  } else {
    std::vector<LinTerm> demand;
    for (const auto& [partition, headroom] : usable) {
      VarId p = model.AddIntegerVar(
          0.0, headroom,
          "P_t" + std::to_string(expr.tag) + "_p" + std::to_string(partition));
      info.partitions.push_back(partition);
      info.partition_vars.push_back(p);
      TrackUsage(ctx, partition, expr.start, expr.duration, p, 1.0);
      demand.push_back({p, 1.0});
    }
    if (info.linear) {
      // (Demand) sum P <= k * I; value flows per granted node.
      demand.push_back({I, -static_cast<double>(expr.k)});
      model.AddConstraint(std::move(demand), ConstraintSense::kLessEqual, 0.0,
                          "ldemand_t" + std::to_string(expr.tag));
      for (size_t i = 0; i < info.partition_vars.size(); ++i) {
        objective.push_back(
            {info.partition_vars[i], expr.value / expr.k});
      }
    } else {
      // (Demand) sum P == k * I.
      demand.push_back({I, -static_cast<double>(expr.k)});
      model.AddConstraint(std::move(demand), ConstraintSense::kEqual, 0.0,
                          "demand_t" + std::to_string(expr.tag));
      objective.push_back({I, expr.value});
    }
  }

  StrlCompileAccess::leaves(*ctx.out).push_back(std::move(info));
  if (expr.tag != kNoTag) {
    StrlCompileAccess::tags(*ctx.out)[expr.tag] =
        static_cast<int>(StrlCompileAccess::leaves(*ctx.out).size()) - 1;
  }
  return objective;
}

std::vector<LinTerm> Gen(GenContext& ctx, const StrlExpr& expr, VarId I) {
  MilpModel& model = StrlCompileAccess::model(*ctx.out);
  switch (expr.kind) {
    case StrlKind::kNCk:
    case StrlKind::kLnCk:
      return GenLeaf(ctx, expr, I);

    case StrlKind::kMax: {
      std::vector<LinTerm> objective;
      std::vector<LinTerm> choice;
      ctx.indicator_chain.push_back(I);
      for (const StrlExpr& child : expr.children) {
        VarId child_i = model.AddBinaryVar();
        std::vector<LinTerm> child_obj = Gen(ctx, child, child_i);
        objective.insert(objective.end(), child_obj.begin(), child_obj.end());
        choice.push_back({child_i, 1.0});
      }
      ctx.indicator_chain.pop_back();
      // At most one child may be chosen (and none if I == 0).
      choice.push_back({I, -1.0});
      model.AddConstraint(std::move(choice), ConstraintSense::kLessEqual, 0.0,
                          "max_choice");
      return objective;
    }

    case StrlKind::kSum: {
      std::vector<LinTerm> objective;
      std::vector<LinTerm> gate;
      ctx.indicator_chain.push_back(I);
      for (const StrlExpr& child : expr.children) {
        VarId child_i = model.AddBinaryVar();
        std::vector<LinTerm> child_obj = Gen(ctx, child, child_i);
        objective.insert(objective.end(), child_obj.begin(), child_obj.end());
        gate.push_back({child_i, 1.0});
      }
      ctx.indicator_chain.pop_back();
      // Up to n children; all gated off when I == 0.
      gate.push_back({I, -static_cast<double>(expr.children.size())});
      model.AddConstraint(std::move(gate), ConstraintSense::kLessEqual, 0.0,
                          "sum_gate");
      return objective;
    }

    case StrlKind::kMin: {
      // V represents the minimum child value; maximization pushes V up to it.
      VarId v = model.AddContinuousVar(0.0, kInfinity, "min_v");
      for (const StrlExpr& child : expr.children) {
        std::vector<LinTerm> child_obj = Gen(ctx, child, I);
        // child objective - V >= 0.
        child_obj.push_back({v, -1.0});
        model.AddConstraint(std::move(child_obj),
                            ConstraintSense::kGreaterEqual, 0.0, "min_bound");
      }
      return {{v, 1.0}};
    }

    case StrlKind::kScale: {
      std::vector<LinTerm> objective = Gen(ctx, expr.children[0], I);
      for (LinTerm& term : objective) {
        term.coeff *= expr.scalar;
      }
      return objective;
    }

    case StrlKind::kBarrier: {
      std::vector<LinTerm> inner = Gen(ctx, expr.children[0], I);
      // v * I <= f(child).
      inner.push_back({I, -expr.scalar});
      model.AddConstraint(std::move(inner), ConstraintSense::kGreaterEqual,
                          0.0, "barrier");
      return {{I, expr.scalar}};
    }
  }
  return {};
}

}  // namespace

StrlCompiler::StrlCompiler(const AvailabilityGrid& availability)
    : availability_(availability) {}

CompiledStrl StrlCompiler::Compile(const StrlExpr& root) {
  CompiledStrl out;
  GenContext ctx{availability_, &out, {}, {}};

  // Free binary root indicator, exactly as in Algorithm 1's genAndSolve: the
  // optimizer turns the root on whenever positive value is reachable, and a
  // root that cannot be satisfied (e.g. a culled leaf) simply stays off.
  VarId root_i = StrlCompileAccess::model(out).AddBinaryVar("root");
  StrlCompileAccess::root(out) = root_i;

  std::vector<LinTerm> objective;
  if (root.kind == StrlKind::kSum) {
    // A top-level SUM (the aggregate objective: one child per pending job) is
    // compiled without its gate row. The gate `sum I_child - n * I_root <= 0`
    // is vacuous at the root — the free root indicator can always be 1, SUM
    // admits any child subset, and the root carries no objective weight — but
    // it stitches every job subtree into one connected component. Dropping it
    // is exact and lets jobs that share no supply row split into independent
    // sub-MILPs (see solver/decompose.h).
    MilpModel& model = StrlCompileAccess::model(out);
    ctx.indicator_chain.push_back(root_i);
    for (const StrlExpr& child : root.children) {
      VarId child_i = model.AddBinaryVar();
      std::vector<LinTerm> child_obj = Gen(ctx, child, child_i);
      objective.insert(objective.end(), child_obj.begin(), child_obj.end());
    }
    ctx.indicator_chain.pop_back();
  } else {
    objective = Gen(ctx, root, root_i);
  }
  for (const LinTerm& term : objective) {
    StrlCompileAccess::model(out).AddObjectiveTerm(term.var, term.coeff);
  }

  // (Supply) per partition per slice: usage <= available capacity. Row ids
  // plus slice geometry are retained so the scheduler can later ask which
  // saturated rows blocked a rejected job's alternatives.
  StrlCompileAccess::grid(out) = availability_.grid();
  for (auto& [key, terms] : ctx.used) {
    auto [partition, slice] = key;
    double avail =
        std::max(0, availability_.avail(partition, slice));
    ConstraintId row = StrlCompileAccess::model(out).AddConstraint(
        std::move(terms), ConstraintSense::kLessEqual, avail,
        "supply_p" + std::to_string(partition) + "_s" +
            std::to_string(slice));
    StrlCompileAccess::supply_rows(out).push_back(
        {row, partition, slice, availability_.grid().SliceStart(slice),
         avail, 0.0});
  }
  return out;
}

std::vector<SupplyRowRef> CompiledStrl::BindingSupplyRows(
    std::span<const double> values, double tol) const {
  std::vector<SupplyRowRef> binding;
  for (const SupplyRowRef& ref : supply_rows_) {
    double activity = 0.0;
    for (const LinTerm& term : model_.constraint_terms(ref.row)) {
      activity += term.coeff * values[term.var];
    }
    if (activity >= ref.rhs - tol) {
      SupplyRowRef hit = ref;
      hit.activity = activity;
      binding.push_back(hit);
    }
  }
  return binding;
}

std::vector<SupplyRowRef> CompiledStrl::RowsTouchingLeaf(
    LeafTag tag, const std::vector<SupplyRowRef>& rows) const {
  std::vector<SupplyRowRef> touching;
  auto it = tag_to_leaf_.find(tag);
  if (it == tag_to_leaf_.end()) {
    return touching;
  }
  const LeafInfo& leaf = leaves_[it->second];
  auto [first, last] = grid_.ClippedSliceRange(leaf.start, leaf.duration);
  for (const SupplyRowRef& ref : rows) {
    if (ref.slice < first || ref.slice >= last) {
      continue;
    }
    if (std::find(leaf.partitions.begin(), leaf.partitions.end(),
                  ref.partition) != leaf.partitions.end()) {
      touching.push_back(ref);
    }
  }
  return touching;
}

bool CompiledStrl::LeafCulledAtCompile(LeafTag tag) const {
  auto it = tag_to_leaf_.find(tag);
  return it != tag_to_leaf_.end() && leaves_[it->second].partitions.empty();
}

std::vector<StrlAllocation> CompiledStrl::ExtractAllocations(
    std::span<const double> values) const {
  std::vector<StrlAllocation> allocations;
  for (const LeafInfo& leaf : leaves_) {
    if (values[leaf.indicator] < 0.5) {
      continue;
    }
    StrlAllocation alloc;
    alloc.tag = leaf.tag;
    alloc.start = leaf.start;
    alloc.duration = leaf.duration;
    alloc.value = leaf.value;
    for (size_t i = 0; i < leaf.partitions.size(); ++i) {
      int count;
      if (leaf.partition_vars[i] < 0) {
        count = leaf.k;  // collapsed single-partition leaf
      } else {
        count = static_cast<int>(std::lround(values[leaf.partition_vars[i]]));
      }
      if (count > 0) {
        alloc.counts[leaf.partitions[i]] = count;
      }
    }
    if (alloc.counts.empty()) {
      continue;  // chosen LnCk with zero grant contributes nothing
    }
    allocations.push_back(std::move(alloc));
  }
  return allocations;
}

std::vector<VarId> CompiledStrl::LeafVars(int leaf) const {
  const LeafInfo& info = leaves_[leaf];
  std::vector<VarId> vars;
  vars.reserve(1 + info.partition_vars.size());
  vars.push_back(info.indicator);
  for (VarId p : info.partition_vars) {
    if (p >= 0) {  // -1: collapsed single-partition leaf, P == k * I
      vars.push_back(p);
    }
  }
  return vars;
}

std::vector<double> CompiledStrl::BuildWarmStart(
    const LeafGrants& grants) const {
  std::vector<double> values(model_.num_vars(), 0.0);
  values[root_indicator_] = 1.0;
  for (const auto& [tag, counts] : grants) {
    auto it = tag_to_leaf_.find(tag);
    if (it == tag_to_leaf_.end()) {
      // The job set changed since the previous cycle (the granted leaf was
      // not recompiled), so the whole hint is unusable and the solver starts
      // cold. Keep warm-start efficacy visible: count every miss, log only
      // on power-of-two totals so a churn-heavy workload cannot flood the
      // log (BuildWarmStart bails on the first stale tag, so this fires at
      // most once per cycle anyway).
      static Counter* misses =
          GlobalMetrics().GetCounter("tetrisched_warmstart_miss_total");
      misses->Increment();
      const int64_t total = misses->value();
      if ((total & (total - 1)) == 0) {
        TETRI_LOG(kWarning) << "warm-start miss: previous-cycle leaf tag "
                            << tag << " absent from the compiled model ("
                            << total << " misses total)";
      }
      return {};
    }
    const LeafInfo& leaf = leaves_[it->second];
    values[leaf.indicator] = 1.0;
    for (VarId ancestor : leaf.ancestor_indicators) {
      values[ancestor] = 1.0;
    }
    for (size_t i = 0; i < leaf.partitions.size(); ++i) {
      auto count_it = counts.find(leaf.partitions[i]);
      if (count_it == counts.end()) {
        continue;
      }
      if (leaf.partition_vars[i] >= 0) {
        values[leaf.partition_vars[i]] =
            static_cast<double>(count_it->second);
      }
    }
  }
  return values;
}

}  // namespace tetrisched
