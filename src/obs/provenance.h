// Decision provenance: the scheduling flight recorder (DESIGN.md §14).
//
// Metrics (metrics.h) and spans (span.h) answer "how long did cycle N take";
// this subsystem answers "why did job J end up where it did". Every layer of
// the stack appends causal per-job events — arrival, the exact alternative
// set STRL generation offered (with utilities), which alternative the MILP
// chose and its objective contribution, which supply rows were binding for
// rejected jobs, placements/deferrals/preemptions with their rationale,
// degradation-ladder and AIMD adaptations, retry/backoff, recovery replay,
// completion or SLO miss — into a global bounded ring buffer.
//
// Cost model mirrors the span collector: when disabled (the default) every
// record site is a single relaxed atomic load and recording never happens,
// so provenance-off runs are byte-identical to a build without the recorder.
// When enabled, records are appended under a mutex (cycle-phase granularity,
// negligible contention) and never influence any scheduling decision.
//
// The ring is exported as JSONL (one record per line) via
// ProvenanceRecorder::ExportJsonl, crash-atomically; the Simulator wires
// this to the TETRISCHED_PROVENANCE_JSONL environment variable and the
// tetrisched_explain CLI (tools/explain.cc) consumes the artifact.

#ifndef TETRISCHED_OBS_PROVENANCE_H_
#define TETRISCHED_OBS_PROVENANCE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/time.h"

namespace tetrisched {

// Event kinds, in rough lifecycle order. The JSONL `kind` field carries
// ToString(kind); the explain CLI groups and renders by it.
enum class ProvKind : uint8_t {
  kArrival = 0,        // job entered the pending queue (simulator)
  kOffered,            // STRL generation produced this job's alternative set
  kCulled,             // no positive-value option: job dropped at generation
  kSolve,              // cycle-level MILP outcome (job == -1)
  kChosen,             // solver picked a start-now alternative for the job
  kDeferred,           // solver picked a future-start alternative (warm start)
  kRejected,           // job had offers but the incumbent allocated none
  kFallback,           // cycle degraded to a lower ladder rung
  kCertifierReject,    // plan certifier refused the incumbent (cycle-level)
  kPlanAheadAdapt,     // AIMD shrank/restored the plan-ahead window
  kPreemptRescue,      // rescue preemption fired for a stranded SLO job
  kStart,              // gang actually started on the cluster
  kPreempted,          // running gang preempted back to pending
  kFailureKill,        // gang killed by a node failure (retry/backoff)
  kDropped,            // job dropped (culled / retries exhausted)
  kCompleted,          // gang finished
  kSloMiss,            // SLO job failed its deadline; label = attributed cause
  kCrash,              // injected scheduler crash
  kRecovery,           // recovery pass finished (snapshot + replay)
  kReplay,             // one journal record replayed during recovery
  kSuspected,          // failure detector suspected a node this gang runs on
  kFenced,             // stale copy killed via epoch fencing (reconciliation)
  kReconciled,         // orphaned copy adopted back after a false suspicion
};

const char* ToString(ProvKind kind);

// Root-cause buckets for kSloMiss attribution, most-specific first. The
// label of every kSloMiss record is ToString of one of these, making the
// report machine-checkable.
enum class SloMissCause : uint8_t {
  kChurnKilled = 0,        // lost >= 1 gang to node failures
  kBudgetDegraded,         // planned in degraded cycles (fallback rung or
                           // shrunken plan-ahead) before missing
  kQueuedBehindCapacity,   // rejected in cycles where every alternative hit a
                           // saturated supply row
  kSolverRejected,         // rejected while capacity remained (outbid)
  kDeadlineUnreachable,    // culled at STRL generation (no feasible option)
  kSlowPlacement,          // ran, but on a non-preferred (slow) placement
  kMisestimated,           // ran promptly on the preferred placement and
                           // still missed: runtime estimate was wrong
  kUnknown,
};

const char* ToString(SloMissCause cause);

struct ProvenanceRecord {
  ProvKind kind = ProvKind::kArrival;
  uint64_t seq = 0;    // recorder-assigned, strictly increasing
  int64_t cycle = -1;  // scheduling cycle ordinal (-1 = outside any cycle)
  SimTime time = 0;    // simulated time of the event
  uint64_t ts_us = 0;  // wall micros on the span epoch (exemplar link)
  int64_t job = -1;    // -1 for cycle-level records
  double value = 0.0;  // kind-specific scalar (objective, rung, ...)
  std::string label;   // short classification (escaped at export)
  std::string detail;  // kind-specific payload: raw JSON value, or empty
};

// JSONL line for one record (no trailing newline).
std::string ProvenanceRecordToJson(const ProvenanceRecord& record);

// Rolling per-job aggregates maintained while recording; the inputs to SLO
// miss attribution. Cheap enough to keep for every job ever seen (a handful
// of ints), so summaries survive ring eviction.
struct JobProvSummary {
  int offered_cycles = 0;    // cycles in which the job had >= 1 alternative
  int chosen_cycles = 0;     // cycles granting a start-now alternative
  int deferred_cycles = 0;   // cycles granting only a future-start slot
  int rejected_cycles = 0;   // offered but allocated nothing
  int capacity_cycles = 0;   // rejected with every alternative supply-bound
  int degraded_cycles = 0;   // touched in a degraded cycle (fallback rung,
                             // certifier reject, or shrunken plan-ahead)
  int kills = 0;             // failure kills
  int preemptions = 0;
  bool culled = false;           // ever dropped at STRL generation
  bool started = false;          // ever started on the cluster
  bool started_preferred = false;  // last start was a preferred placement
};

// Global bounded flight recorder. All methods are thread-safe; enabled() is
// a relaxed atomic load suitable for gating record sites in hot paths.
class ProvenanceRecorder {
 public:
  static ProvenanceRecorder& Global();

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Clears all state and turns recording on. ring_capacity == 0 uses
  // TETRISCHED_PROVENANCE_RING from the environment (default 65536,
  // clamped to >= 16).
  void Enable(size_t ring_capacity = 0);
  // Turns recording off; buffered records and summaries are kept until the
  // next Enable()/Clear().
  void Disable();
  // Flips the enabled flag without clearing buffered state (used to restore
  // a caller's prior recorder state around a nested run).
  void SetEnabled(bool enabled);
  void Clear();

  // Marks the start of a scheduling cycle: assigns the cycle ordinal stamped
  // onto subsequent records and resets per-cycle bookkeeping. `degraded`
  // flags a cycle planned under a shrunken (AIMD-adapted) plan-ahead window.
  void BeginCycle(SimTime now, bool degraded = false);
  int64_t cycle() const;

  // Appends one record (no-op unless enabled). Unset seq / ts_us / cycle
  // fields are stamped by the recorder.
  void Record(ProvenanceRecord record);

  size_t size() const;
  uint64_t dropped() const;  // records evicted from the ring
  size_t ring_capacity() const;

  // Records currently buffered, in seq order.
  std::vector<ProvenanceRecord> Snapshot() const;
  JobProvSummary Summary(int64_t job) const;

  // Attributes an SLO miss for `job` from its summary. When `detail_json`
  // is non-null it receives a JSON object with the evidence counts backing
  // the verdict.
  SloMissCause AttributeSloMiss(int64_t job,
                                std::string* detail_json = nullptr) const;

  // One JSONL line per buffered record.
  std::string ToJsonl() const;
  // ToJsonl() written crash-atomically; returns false (with a warning
  // logged) on I/O failure.
  bool ExportJsonl(const std::string& path) const;

  static size_t RingCapacityFromEnv();

 private:
  void MarkTouched(int64_t job);    // job participated in the current cycle
  void MarkCycleDegraded();         // retroactively taint touched jobs

  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  std::deque<ProvenanceRecord> ring_;
  size_t capacity_ = 65536;
  uint64_t next_seq_ = 0;
  uint64_t dropped_ = 0;
  int64_t cycle_ = -1;
  bool cycle_degraded_ = false;
  // job -> already counted toward degraded_cycles this cycle.
  std::map<int64_t, bool> cycle_jobs_;
  std::map<int64_t, JobProvSummary> jobs_;
};

}  // namespace tetrisched

#endif  // TETRISCHED_OBS_PROVENANCE_H_
