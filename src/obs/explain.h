// Offline analysis of provenance JSONL exports: the library behind the
// tetrisched_explain CLI (tools/explain.cc). Kept as a library so tests can
// drive the report generation without spawning processes.
//
// Inputs are artifacts this repo itself wrote (ProvenanceRecorder::
// ExportJsonl), parsed tolerantly: malformed lines are counted and skipped
// rather than aborting, since a crash-interrupted export may be replayed
// through here while debugging.

#ifndef TETRISCHED_OBS_EXPLAIN_H_
#define TETRISCHED_OBS_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/provenance.h"

namespace tetrisched {

// One parsed JSONL line. `detail` keeps the raw JSON payload so reports can
// splice it through or parse it further per kind.
struct ProvEvent {
  uint64_t seq = 0;
  std::string kind;
  int64_t cycle = -1;
  int64_t time = 0;
  uint64_t ts_us = 0;
  int64_t job = -1;
  double value = 0.0;
  std::string label;
  std::string detail;
};

struct ProvLog {
  std::vector<ProvEvent> events;  // in file order (== seq order on export)
  size_t malformed_lines = 0;
};

// Parses JSONL text (as produced by ProvenanceRecorder::ToJsonl).
ProvLog ParseProvenanceJsonl(const std::string& text);
// Reads `path` and parses it; returns false if the file cannot be read.
bool LoadProvenanceJsonl(const std::string& path, ProvLog* out,
                         std::string* error = nullptr);

// Human-readable reports. Each always returns non-empty text — "no such
// job" / "no SLO misses recorded" are themselves answers.

// Full annotated timeline for one job: the alternative sets offered each
// cycle, what the solver chose (and its objective contribution), every
// defer/reject with its reason, placement/preemption/kill history, and the
// final outcome.
std::string ExplainJob(const ProvLog& log, int64_t job);

// Attribution report over every slo-miss record: per-cause buckets with the
// evidence counts that produced each verdict.
std::string ExplainSloMisses(const ProvLog& log);

// What happened in cycle `cycle`: solve outcome, ladder rung, adaptations,
// and the per-job decisions made in that plan.
std::string ExplainCycle(const ProvLog& log, int64_t cycle);

// Top-level digest: record/cycle/job counts and event-kind histogram.
std::string ExplainSummary(const ProvLog& log);

}  // namespace tetrisched

#endif  // TETRISCHED_OBS_EXPLAIN_H_
