#include "src/obs/explain.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "src/common/json.h"

namespace tetrisched {

namespace {

// Serializes a parsed JsonValue back to compact JSON, for splicing `detail`
// payloads into report lines.
std::string Render(const JsonValue& value) {
  switch (value.kind) {
    case JsonValue::Kind::kNull:
      return "null";
    case JsonValue::Kind::kBool:
      return value.bool_value ? "true" : "false";
    case JsonValue::Kind::kNumber:
      return JsonNumber(value.number);
    case JsonValue::Kind::kString:
      return JsonQuote(value.string);
    case JsonValue::Kind::kArray: {
      JsonArr arr;
      for (const JsonValue& item : value.items) {
        arr.AddRaw(Render(item));
      }
      return arr.str();
    }
    case JsonValue::Kind::kObject: {
      JsonObj obj;
      for (const auto& [key, member] : value.members) {
        obj.FieldRaw(key, Render(member));
      }
      return obj.str();
    }
  }
  return "null";
}

// Renders one offered-alternative object ({kind, start, duration, k, value,
// preferred}) as a compact human line.
std::string RenderAlternative(const JsonValue& alt) {
  std::ostringstream out;
  out << alt.StringOr("kind", "?") << " start=" << alt.IntOr("start", -1)
      << " dur=" << alt.IntOr("duration", -1) << " k=" << alt.IntOr("k", -1)
      << " value=" << JsonNumber(alt.NumberOr("value", 0.0));
  if (alt.BoolOr("preferred", false)) {
    out << " (preferred)";
  }
  return out.str();
}

std::string DescribeEvent(const ProvEvent& event) {
  std::ostringstream out;
  out << "t=" << event.time << " cycle=" << event.cycle << "  " << event.kind;
  if (!event.label.empty()) {
    out << " [" << event.label << "]";
  }
  if (event.kind == "offered") {
    JsonValue detail;
    if (!event.detail.empty() && JsonParse(event.detail, &detail) &&
        detail.is_array()) {
      out << " " << detail.items.size() << " alternative(s):";
      for (const JsonValue& alt : detail.items) {
        out << "\n      - " << RenderAlternative(alt);
      }
      return out.str();
    }
  }
  if (event.kind == "chosen" || event.kind == "deferred") {
    out << " objective-contribution=" << JsonNumber(event.value);
  } else if (event.value != 0.0) {
    out << " value=" << JsonNumber(event.value);
  }
  if (!event.detail.empty() && event.kind != "offered") {
    out << " detail=" << event.detail;
  }
  return out.str();
}

}  // namespace

ProvLog ParseProvenanceJsonl(const std::string& text) {
  ProvLog log;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      eol = text.size();
    }
    std::string_view line(text.data() + pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) {
      continue;
    }
    JsonValue value;
    if (!JsonParse(line, &value) || !value.is_object()) {
      ++log.malformed_lines;
      continue;
    }
    ProvEvent event;
    event.seq = static_cast<uint64_t>(value.IntOr("seq", 0));
    event.kind = value.StringOr("kind", "?");
    event.cycle = value.IntOr("cycle", -1);
    event.time = value.IntOr("time", 0);
    event.ts_us = static_cast<uint64_t>(value.IntOr("ts_us", 0));
    event.job = value.IntOr("job", -1);
    event.value = value.NumberOr("value", 0.0);
    event.label = value.StringOr("label", "");
    if (const JsonValue* detail = value.Find("detail")) {
      event.detail = Render(*detail);
    }
    log.events.push_back(std::move(event));
  }
  return log;
}

bool LoadProvenanceJsonl(const std::string& path, ProvLog* out,
                         std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = ParseProvenanceJsonl(buffer.str());
  return true;
}

std::string ExplainJob(const ProvLog& log, int64_t job) {
  std::ostringstream out;
  out << "=== job " << job << " ===\n";
  size_t shown = 0;
  for (const ProvEvent& event : log.events) {
    if (event.job != job) {
      continue;
    }
    out << "  " << DescribeEvent(event) << "\n";
    ++shown;
  }
  if (shown == 0) {
    out << "  no provenance records for this job (wrong id, or evicted "
           "from the ring buffer)\n";
  }
  return out.str();
}

std::string ExplainSloMisses(const ProvLog& log) {
  // cause -> [(job, evidence-detail)]
  std::map<std::string, std::vector<const ProvEvent*>> by_cause;
  for (const ProvEvent& event : log.events) {
    if (event.kind == "slo-miss") {
      std::string cause = event.label.empty() ? "unknown" : event.label;
      by_cause[cause].push_back(&event);
    }
  }
  std::ostringstream out;
  out << "=== SLO-miss attribution ===\n";
  if (by_cause.empty()) {
    out << "no SLO misses recorded\n";
    return out.str();
  }
  size_t total = 0;
  for (const auto& [cause, events] : by_cause) {
    total += events.size();
  }
  out << total << " miss(es) across " << by_cause.size() << " cause(s)\n";
  for (const auto& [cause, events] : by_cause) {
    out << "\n" << cause << " (" << events.size() << "):\n";
    for (const ProvEvent* event : events) {
      out << "  job " << event->job << " t=" << event->time;
      if (!event->detail.empty()) {
        out << " evidence=" << event->detail;
      }
      out << "\n";
    }
  }
  return out.str();
}

std::string ExplainCycle(const ProvLog& log, int64_t cycle) {
  std::ostringstream out;
  out << "=== cycle " << cycle << " ===\n";
  size_t shown = 0;
  for (const ProvEvent& event : log.events) {
    if (event.cycle != cycle) {
      continue;
    }
    out << "  " << DescribeEvent(event);
    if (event.job >= 0) {
      out << " (job " << event.job << ")";
    }
    out << "\n";
    ++shown;
  }
  if (shown == 0) {
    out << "  no records for this cycle\n";
  }
  return out.str();
}

std::string ExplainSummary(const ProvLog& log) {
  std::map<std::string, size_t> kinds;
  std::set<int64_t> jobs;
  int64_t max_cycle = -1;
  for (const ProvEvent& event : log.events) {
    ++kinds[event.kind];
    if (event.job >= 0) {
      jobs.insert(event.job);
    }
    max_cycle = std::max(max_cycle, event.cycle);
  }
  std::ostringstream out;
  out << "=== provenance summary ===\n";
  out << log.events.size() << " record(s), " << jobs.size() << " job(s), "
      << (max_cycle + 1) << " cycle(s)";
  if (log.malformed_lines > 0) {
    out << ", " << log.malformed_lines << " malformed line(s) skipped";
  }
  out << "\n";
  for (const auto& [kind, count] : kinds) {
    out << "  " << kind << ": " << count << "\n";
  }
  return out.str();
}

}  // namespace tetrisched
