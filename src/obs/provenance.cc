#include "src/obs/provenance.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "src/common/atomic_io.h"
#include "src/common/json.h"
#include "src/common/logging.h"
#include "src/common/span.h"

namespace tetrisched {

const char* ToString(ProvKind kind) {
  switch (kind) {
    case ProvKind::kArrival:
      return "arrival";
    case ProvKind::kOffered:
      return "offered";
    case ProvKind::kCulled:
      return "culled";
    case ProvKind::kSolve:
      return "solve";
    case ProvKind::kChosen:
      return "chosen";
    case ProvKind::kDeferred:
      return "deferred";
    case ProvKind::kRejected:
      return "rejected";
    case ProvKind::kFallback:
      return "fallback";
    case ProvKind::kCertifierReject:
      return "certifier-reject";
    case ProvKind::kPlanAheadAdapt:
      return "plan-ahead-adapt";
    case ProvKind::kPreemptRescue:
      return "preempt-rescue";
    case ProvKind::kStart:
      return "start";
    case ProvKind::kPreempted:
      return "preempted";
    case ProvKind::kFailureKill:
      return "failure-kill";
    case ProvKind::kDropped:
      return "dropped";
    case ProvKind::kCompleted:
      return "completed";
    case ProvKind::kSloMiss:
      return "slo-miss";
    case ProvKind::kCrash:
      return "crash";
    case ProvKind::kRecovery:
      return "recovery";
    case ProvKind::kReplay:
      return "replay";
    case ProvKind::kSuspected:
      return "suspected";
    case ProvKind::kFenced:
      return "fenced";
    case ProvKind::kReconciled:
      return "reconciled";
  }
  return "unknown";
}

const char* ToString(SloMissCause cause) {
  switch (cause) {
    case SloMissCause::kChurnKilled:
      return "churn-killed";
    case SloMissCause::kBudgetDegraded:
      return "budget-degraded";
    case SloMissCause::kQueuedBehindCapacity:
      return "queued-behind-capacity";
    case SloMissCause::kSolverRejected:
      return "solver-rejected";
    case SloMissCause::kDeadlineUnreachable:
      return "deadline-unreachable";
    case SloMissCause::kSlowPlacement:
      return "slow-placement";
    case SloMissCause::kMisestimated:
      return "misestimated";
    case SloMissCause::kUnknown:
      return "unknown";
  }
  return "unknown";
}

std::string ProvenanceRecordToJson(const ProvenanceRecord& record) {
  JsonObj obj;
  obj.Field("seq", record.seq)
      .Field("kind", ToString(record.kind))
      .Field("cycle", record.cycle)
      .Field("time", record.time)
      .Field("ts_us", record.ts_us)
      .Field("job", record.job);
  if (record.value != 0.0) {
    obj.Field("value", record.value);
  }
  if (!record.label.empty()) {
    obj.Field("label", record.label);
  }
  if (!record.detail.empty()) {
    obj.FieldRaw("detail", record.detail);
  }
  return obj.str();
}

ProvenanceRecorder& ProvenanceRecorder::Global() {
  static ProvenanceRecorder* recorder = new ProvenanceRecorder();
  return *recorder;
}

size_t ProvenanceRecorder::RingCapacityFromEnv() {
  constexpr size_t kDefault = 65536;
  constexpr size_t kMin = 16;
  const char* raw = std::getenv("TETRISCHED_PROVENANCE_RING");
  if (raw == nullptr || raw[0] == '\0') {
    return kDefault;
  }
  char* end = nullptr;
  long long parsed = std::strtoll(raw, &end, 10);
  if (end == raw || parsed <= 0) {
    return kDefault;
  }
  return std::max<size_t>(kMin, static_cast<size_t>(parsed));
}

void ProvenanceRecorder::Enable(size_t ring_capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  jobs_.clear();
  cycle_jobs_.clear();
  next_seq_ = 0;
  dropped_ = 0;
  cycle_ = -1;
  cycle_degraded_ = false;
  capacity_ = ring_capacity > 0 ? ring_capacity : RingCapacityFromEnv();
  enabled_.store(true, std::memory_order_relaxed);
}

void ProvenanceRecorder::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void ProvenanceRecorder::SetEnabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
}

void ProvenanceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  jobs_.clear();
  cycle_jobs_.clear();
  next_seq_ = 0;
  dropped_ = 0;
  cycle_ = -1;
  cycle_degraded_ = false;
}

void ProvenanceRecorder::BeginCycle(SimTime now, bool degraded) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++cycle_;
  // When degraded, jobs recorded later this cycle pick the taint up in
  // MarkTouched.
  cycle_degraded_ = degraded;
  cycle_jobs_.clear();
  (void)now;
}

int64_t ProvenanceRecorder::cycle() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cycle_;
}

void ProvenanceRecorder::MarkTouched(int64_t job) {
  if (job < 0) {
    return;
  }
  auto [it, inserted] = cycle_jobs_.emplace(job, false);
  JobProvSummary& summary = jobs_[job];
  if (cycle_degraded_ && !it->second) {
    ++summary.degraded_cycles;
    it->second = true;
  }
  (void)inserted;
}

void ProvenanceRecorder::MarkCycleDegraded() {
  cycle_degraded_ = true;
  for (auto& [job, counted] : cycle_jobs_) {
    if (!counted) {
      ++jobs_[job].degraded_cycles;
      counted = true;
    }
  }
}

void ProvenanceRecorder::Record(ProvenanceRecord record) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  record.seq = next_seq_++;
  if (record.cycle < 0) {
    record.cycle = cycle_;
  }
  if (record.ts_us == 0) {
    record.ts_us = span_internal::NowMicros();
  }
  MarkTouched(record.job);
  JobProvSummary* summary =
      record.job >= 0 ? &jobs_[record.job] : nullptr;
  switch (record.kind) {
    case ProvKind::kOffered:
      if (summary != nullptr) {
        ++summary->offered_cycles;
      }
      break;
    case ProvKind::kChosen:
      if (summary != nullptr) {
        ++summary->chosen_cycles;
      }
      break;
    case ProvKind::kDeferred:
      if (summary != nullptr) {
        ++summary->deferred_cycles;
      }
      break;
    case ProvKind::kRejected:
      if (summary != nullptr) {
        ++summary->rejected_cycles;
        if (record.label == "capacity") {
          ++summary->capacity_cycles;
        }
      }
      break;
    case ProvKind::kCulled:
      if (summary != nullptr) {
        summary->culled = true;
      }
      break;
    case ProvKind::kFallback:
    case ProvKind::kCertifierReject:
      MarkCycleDegraded();
      break;
    case ProvKind::kStart:
      if (summary != nullptr) {
        summary->started = true;
        summary->started_preferred = record.label == "preferred";
      }
      break;
    case ProvKind::kFailureKill:
      if (summary != nullptr) {
        ++summary->kills;
      }
      break;
    case ProvKind::kPreempted:
      if (summary != nullptr) {
        ++summary->preemptions;
      }
      break;
    default:
      break;
  }
  ring_.push_back(std::move(record));
  while (ring_.size() > capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
}

size_t ProvenanceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t ProvenanceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

size_t ProvenanceRecorder::ring_capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

std::vector<ProvenanceRecord> ProvenanceRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<ProvenanceRecord>(ring_.begin(), ring_.end());
}

JobProvSummary ProvenanceRecorder::Summary(int64_t job) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(job);
  return it != jobs_.end() ? it->second : JobProvSummary{};
}

SloMissCause ProvenanceRecorder::AttributeSloMiss(
    int64_t job, std::string* detail_json) const {
  JobProvSummary s = Summary(job);
  SloMissCause cause = SloMissCause::kUnknown;
  if (s.kills > 0) {
    cause = SloMissCause::kChurnKilled;
  } else if (s.degraded_cycles > 0) {
    cause = SloMissCause::kBudgetDegraded;
  } else if (s.rejected_cycles > 0 &&
             s.capacity_cycles * 2 >= s.rejected_cycles) {
    cause = SloMissCause::kQueuedBehindCapacity;
  } else if (s.rejected_cycles > 0) {
    cause = SloMissCause::kSolverRejected;
  } else if (s.culled && !s.started) {
    cause = SloMissCause::kDeadlineUnreachable;
  } else if (s.started && !s.started_preferred) {
    cause = SloMissCause::kSlowPlacement;
  } else if (s.started) {
    cause = SloMissCause::kMisestimated;
  }
  if (detail_json != nullptr) {
    *detail_json = JsonObj()
                       .Field("offered_cycles", s.offered_cycles)
                       .Field("chosen_cycles", s.chosen_cycles)
                       .Field("deferred_cycles", s.deferred_cycles)
                       .Field("rejected_cycles", s.rejected_cycles)
                       .Field("capacity_cycles", s.capacity_cycles)
                       .Field("degraded_cycles", s.degraded_cycles)
                       .Field("kills", s.kills)
                       .Field("preemptions", s.preemptions)
                       .Field("culled", s.culled)
                       .Field("started", s.started)
                       .Field("started_preferred", s.started_preferred)
                       .str();
  }
  return cause;
}

std::string ProvenanceRecorder::ToJsonl() const {
  std::vector<ProvenanceRecord> records = Snapshot();
  std::string out;
  out.reserve(records.size() * 96);
  for (const ProvenanceRecord& record : records) {
    out += ProvenanceRecordToJson(record);
    out += "\n";
  }
  return out;
}

bool ProvenanceRecorder::ExportJsonl(const std::string& path) const {
  if (!WriteFileAtomic(path, ToJsonl())) {
    TETRI_LOG(kWarning) << "failed to export provenance JSONL to " << path;
    return false;
  }
  return true;
}

}  // namespace tetrisched
