// Simplified Rayon reservation system (Curino et al., SoCC'14; paper §2.1).
//
// Rayon is the admission-control frontend TetriSched runs in tandem with:
// SLO jobs submit RDL requests — Window(s, f, Atom(k, gang, dur)) — and Rayon
// either *accepts* (guaranteeing k nodes for dur somewhere inside the window,
// never overcommitting aggregate capacity) or *rejects* them. TetriSched
// consumes only the outputs: the accept/reject signal, the deadline, and the
// runtime estimate. The baseline CapacityScheduler additionally enforces the
// concrete reservation intervals chosen here.
//
// Admission uses a stepwise capacity agenda and earliest-fit placement of the
// requested (k x dur) block inside [window_start, window_end].

#ifndef TETRISCHED_RAYON_RAYON_H_
#define TETRISCHED_RAYON_RAYON_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/time.h"

namespace tetrisched {

// RDL: Window(s, f, Atom(b, k, gang, dur)) — container size b is implicit
// (one node per container in this repo's resource model).
struct RdlRequest {
  int64_t requester = -1;   // job id
  int k = 1;                // gang size (simultaneous nodes)
  SimDuration duration = 0; // estimated runtime
  SimTime window_start = 0; // earliest start (submission time)
  SimTime window_end = 0;   // deadline (latest completion)
};

struct ReservationDecision {
  bool accepted = false;
  TimeRange interval{0, 0};  // the guaranteed [start, start+duration) slot
};

// Complete serializable image of a RayonAdmission: the capacity, the
// accept/reject counters, and the stepwise agenda. Exported for snapshots
// and rebuilt on crash recovery (DESIGN.md §11); replaying journaled
// admissions/releases on top of an exported state must land exactly where
// the live object would, so the delta arithmetic in ExportState/Restore
// mirrors Submit/Release bit for bit.
struct RayonState {
  int capacity = 0;
  int num_accepted = 0;
  int num_rejected = 0;
  // (time, capacity delta) agenda steps, ascending by time.
  std::vector<std::pair<SimTime, int>> deltas;

  bool operator==(const RayonState& other) const = default;
};

class RayonAdmission {
 public:
  explicit RayonAdmission(int cluster_capacity);

  // Earliest-fit admission: finds the first t in
  // [window_start, window_end - duration] where k nodes are free across
  // [t, t + duration) given all previously accepted reservations; commits
  // and returns the interval, or rejects.
  ReservationDecision Submit(const RdlRequest& request);

  // Committed capacity at time t (sum of accepted reservations covering t).
  int CommittedAt(SimTime t) const;

  // Returns a previously accepted reservation's capacity to the agenda
  // (failure-path shrink-or-drop re-admission: release the dead gang's
  // slot, then Submit the shrunk request). `interval`/`k` must match an
  // accepted Submit. num_accepted() stays a lifetime counter and is not
  // decremented.
  void Release(TimeRange interval, int k);

  // Snapshot/recovery support: ExportState captures the full agenda;
  // Restore overwrites this object with a previously exported (or
  // journal-replayed) state. Restore(ExportState()) is an exact no-op.
  RayonState ExportState() const;
  void Restore(const RayonState& state);

  int capacity() const { return capacity_; }
  int num_accepted() const { return num_accepted_; }
  int num_rejected() const { return num_rejected_; }

 private:
  int capacity_;
  int num_accepted_ = 0;
  int num_rejected_ = 0;
  // Stepwise committed-capacity agenda: time -> capacity delta.
  std::map<SimTime, int> deltas_;
};

}  // namespace tetrisched

#endif  // TETRISCHED_RAYON_RAYON_H_
