#include "src/rayon/rayon.h"

#include <algorithm>
#include <cassert>

namespace tetrisched {

RayonAdmission::RayonAdmission(int cluster_capacity)
    : capacity_(cluster_capacity) {
  assert(capacity_ > 0);
}

int RayonAdmission::CommittedAt(SimTime t) const {
  int committed = 0;
  for (const auto& [time, delta] : deltas_) {
    if (time > t) {
      break;
    }
    committed += delta;
  }
  return committed;
}

RayonState RayonAdmission::ExportState() const {
  RayonState state;
  state.capacity = capacity_;
  state.num_accepted = num_accepted_;
  state.num_rejected = num_rejected_;
  state.deltas.assign(deltas_.begin(), deltas_.end());
  return state;
}

void RayonAdmission::Restore(const RayonState& state) {
  capacity_ = state.capacity;
  num_accepted_ = state.num_accepted;
  num_rejected_ = state.num_rejected;
  deltas_.clear();
  deltas_.insert(state.deltas.begin(), state.deltas.end());
}

void RayonAdmission::Release(TimeRange interval, int k) {
  if (interval.empty() || k <= 0) {
    return;
  }
  deltas_[interval.start] -= k;
  deltas_[interval.end] += k;
  for (SimTime t : {interval.start, interval.end}) {
    auto it = deltas_.find(t);
    if (it != deltas_.end() && it->second == 0) {
      deltas_.erase(it);
    }
  }
}

ReservationDecision RayonAdmission::Submit(const RdlRequest& request) {
  ReservationDecision decision;
  if (request.k > capacity_ || request.duration <= 0 ||
      request.window_start + request.duration > request.window_end) {
    ++num_rejected_;
    return decision;
  }

  // Candidate starts: the window start plus every agenda step point inside
  // the window (capacity only changes there, so earliest-fit needs nothing
  // else).
  SimTime latest_start = request.window_end - request.duration;
  std::vector<SimTime> candidates{request.window_start};
  for (const auto& [time, delta] : deltas_) {
    if (time > request.window_start && time <= latest_start) {
      candidates.push_back(time);
    }
  }

  for (SimTime start : candidates) {
    SimTime end = start + request.duration;
    // Max committed capacity over [start, end).
    int committed = 0;
    int peak = 0;
    for (const auto& [time, delta] : deltas_) {
      if (time >= end) {
        break;
      }
      committed += delta;
      if (time >= start) {
        peak = std::max(peak, committed);
      }
    }
    peak = std::max(peak, CommittedAt(start));
    if (peak + request.k <= capacity_) {
      deltas_[start] += request.k;
      deltas_[end] -= request.k;
      ++num_accepted_;
      decision.accepted = true;
      decision.interval = {start, end};
      return decision;
    }
  }

  ++num_rejected_;
  return decision;
}

}  // namespace tetrisched
