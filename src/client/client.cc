#include "src/client/client.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>

#include "src/common/logging.h"

namespace tetrisched {

namespace {

ServiceReply TransportFailure(std::string message) {
  ServiceReply reply;
  reply.transport_ok = false;
  reply.error = "transport";
  reply.message = std::move(message);
  return reply;
}

}  // namespace

ServiceClient::ServiceClient(UniqueFd fd) : fd_(std::move(fd)) {}

ServiceClient ServiceClient::ConnectTcp(int port) {
  return ServiceClient(ConnectTcpLoopback(port));
}

ServiceClient ServiceClient::ConnectUnix(const std::string& path) {
  return ServiceClient(tetrisched::ConnectUnix(path));
}

ServiceClient ServiceClient::Adopt(int fd) {
  return ServiceClient(UniqueFd(fd));
}

bool ServiceClient::SendAll(std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::write(fd_.get(), bytes.data() + sent, bytes.size() - sent);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // The fd may be nonblocking (adopted socketpair ends); wait for space.
      pollfd p{fd_.get(), POLLOUT, 0};
      if (::poll(&p, 1, timeout_ms_ <= 0 ? -1 : timeout_ms_) > 0) {
        continue;
      }
    }
    return false;
  }
  return true;
}

bool ServiceClient::RecvFrame(std::string* payload) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms_ <= 0 ? 0 : timeout_ms_);
  for (;;) {
    if (decoder_.Next(payload) == FrameDecoder::Result::kFrame) {
      return true;
    }
    int wait_ms = -1;
    if (timeout_ms_ > 0) {
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) {
        return false;
      }
      wait_ms = static_cast<int>(left.count());
    }
    pollfd p{fd_.get(), POLLIN, 0};
    int rc = ::poll(&p, 1, wait_ms);
    if (rc == 0) {
      return false;  // timed out
    }
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    char buf[16384];
    ssize_t n = ::read(fd_.get(), buf, sizeof(buf));
    if (n > 0) {
      decoder_.Feed(std::string_view(buf, static_cast<size_t>(n)));
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    return false;  // peer closed or hard error
  }
}

ServiceReply ServiceClient::Call(const std::string& op,
                                 const JsonObj& fields) {
  if (!fd_.valid()) {
    return TransportFailure("not connected");
  }
  int64_t id = next_id_++;
  JsonObj envelope;
  envelope.Field("v", static_cast<int64_t>(1));
  envelope.Field("op", op);
  envelope.Field("id", id);
  if (!client_name_.empty()) {
    envelope.Field("client", client_name_);
  }
  std::string request = envelope.str();
  if (!fields.empty()) {
    // Splice the op-specific fields into the envelope object.
    std::string body = fields.str();
    request.pop_back();  // '}'
    request += ",";
    request.append(body, 1, body.size() - 1);
  }
  if (!SendAll(EncodeNetFrame(request))) {
    fd_.Reset();
    return TransportFailure("send failed");
  }
  // One request in flight at a time, but skip any frame whose id does not
  // match (stale responses after a timed-out call).
  for (;;) {
    std::string payload;
    if (!RecvFrame(&payload)) {
      fd_.Reset();
      return TransportFailure("no response (timeout or closed)");
    }
    ServiceReply reply;
    std::string error;
    if (!JsonParse(payload, &reply.body, &error)) {
      TETRI_LOG(kWarning) << "client: undecodable response: " << error;
      continue;
    }
    if (reply.body.IntOr("id", -1) != id) {
      continue;
    }
    reply.transport_ok = true;
    reply.ok = reply.body.BoolOr("ok", false);
    reply.error = reply.body.StringOr("error", "");
    reply.message = reply.body.StringOr("message", "");
    reply.retry_after_ms = reply.body.IntOr("retry_after_ms", -1);
    return reply;
  }
}

ServiceReply ServiceClient::SubmitSpec(const JsonObj& job_spec) {
  JsonObj fields;
  fields.FieldRaw("job", job_spec.str());
  return Call("submit", fields);
}

ServiceReply ServiceClient::SubmitStrl(const std::string& strl_text) {
  JsonObj fields;
  fields.Field("strl", strl_text);
  return Call("submit", fields);
}

ServiceReply ServiceClient::Status() { return Call("status"); }

ServiceReply ServiceClient::StatusOf(int64_t job) {
  JsonObj fields;
  fields.Field("job", job);
  return Call("status", fields);
}

ServiceReply ServiceClient::Cancel(int64_t job) {
  JsonObj fields;
  fields.Field("job", job);
  return Call("cancel", fields);
}

ServiceReply ServiceClient::Explain(int64_t job) {
  JsonObj fields;
  if (job >= 0) {
    fields.Field("job", job);
  }
  return Call("explain", fields);
}

ServiceReply ServiceClient::Metrics(const std::string& format) {
  JsonObj fields;
  fields.Field("format", format);
  return Call("metrics", fields);
}

ServiceReply ServiceClient::Drain() { return Call("drain"); }

ServiceReply ServiceClient::Shutdown() { return Call("shutdown"); }

}  // namespace tetrisched
