// Blocking client for the tetrischedd wire protocol (DESIGN.md §16).
//
// Deliberately synchronous: one request on the wire at a time, one matching
// response awaited with a poll(2) deadline. That keeps the library a
// dependency-light building block for CLIs (tools/tetrisched_ctl), load
// generators (bench/fig_service), and in-process tests, which all want
// call-and-wait semantics rather than an event loop of their own.
//
// Transport: loopback TCP, Unix domain socket, or an adopted pre-connected
// fd (the daemon's AddConnectionFd counterpart for socketpair tests).

#ifndef TETRISCHED_CLIENT_CLIENT_H_
#define TETRISCHED_CLIENT_CLIENT_H_

#include <cstdint>
#include <string>

#include "src/common/json.h"
#include "src/net/frame.h"
#include "src/net/socket.h"

namespace tetrisched {

// One parsed response envelope. `body` is the whole response object, so
// op-specific fields ("job", "report", "metrics", ...) are reachable via
// body.Find/IntOr/StringOr.
struct ServiceReply {
  bool transport_ok = false;  // false: connection failed/timed out mid-call
  bool ok = false;            // the response's "ok" field
  std::string error;          // protocol error code ("overloaded", ...)
  std::string message;        // human detail
  int64_t retry_after_ms = -1;
  JsonValue body;

  bool Overloaded() const { return !ok && error == "overloaded"; }
};

class ServiceClient {
 public:
  // Failed connects yield a client whose connected() is false (the socket
  // helpers already logged why).
  static ServiceClient ConnectTcp(int port);
  static ServiceClient ConnectUnix(const std::string& path);
  // Takes ownership of a pre-connected stream fd.
  static ServiceClient Adopt(int fd);

  ServiceClient() = default;
  ServiceClient(ServiceClient&&) = default;
  ServiceClient& operator=(ServiceClient&&) = default;

  bool connected() const { return fd_.valid(); }

  // Fairness-bucket identity sent with every request ("" = let the daemon
  // key by connection).
  void set_client_name(std::string name) { client_name_ = std::move(name); }
  // Per-call deadline for the response (default 10 s; <= 0 waits forever).
  void set_timeout_ms(int timeout_ms) { timeout_ms_ = timeout_ms; }

  // One round trip: sends {"v":1,"op":op,"id":<auto>,"client":...} with
  // `fields` spliced in, blocks for the response with the matching id.
  ServiceReply Call(const std::string& op, const JsonObj& fields = JsonObj());

  // Convenience wrappers over Call.
  ServiceReply SubmitSpec(const JsonObj& job_spec);  // {"job": {...}}
  ServiceReply SubmitStrl(const std::string& strl_text);
  ServiceReply Status();                 // daemon-wide
  ServiceReply StatusOf(int64_t job);    // one job
  ServiceReply Cancel(int64_t job);
  ServiceReply Explain(int64_t job);     // -1 = summary report
  ServiceReply Metrics(const std::string& format = "json");
  ServiceReply Drain();
  ServiceReply Shutdown();

  void Close() { fd_.Reset(); }

 private:
  explicit ServiceClient(UniqueFd fd);

  bool SendAll(std::string_view bytes);
  // Blocks (bounded by timeout_ms_) until one whole frame decodes.
  bool RecvFrame(std::string* payload);

  UniqueFd fd_;
  FrameDecoder decoder_{kDefaultMaxFrameBytes};
  std::string client_name_;
  int timeout_ms_ = 10000;
  int64_t next_id_ = 1;
};

}  // namespace tetrisched

#endif  // TETRISCHED_CLIENT_CLIENT_H_
