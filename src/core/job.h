// Job model shared by the scheduler, workload generator, and simulator.
//
// Jobs carry ground-truth runtimes (what the simulator enforces) and the
// scheduler only ever sees *estimates* derived from them through the
// workload's estimate-error multiplier — the paper's central robustness knob
// (§6.3: positive error = over-estimation, negative = under-estimation).

#ifndef TETRISCHED_CORE_JOB_H_
#define TETRISCHED_CORE_JOB_H_

#include <cmath>
#include <cstdint>
#include <optional>
#include <string>

#include "src/cluster/cluster.h"
#include "src/common/time.h"

namespace tetrisched {

using JobId = int64_t;

// Placement-preference type (paper §6.2.1).
enum class JobType {
  kUnconstrained,  // any k nodes, no slowdown
  kGpu,            // prefers k GPU nodes; slowdown elsewhere
  kMpi,            // prefers all k on one rack; slowdown when spread
  kAvailability,   // anti-affinity: one task per rack (Fig 1); MIN-expressed
  kDataLocal,      // prefers an explicit partition set (data locality /
                   // dynamic heterogeneity, paper S2.2); slowdown elsewhere
};

// Deadline-sensitivity class (paper §6.2.2). The SLO split between accepted
// and unreserved is decided by Rayon admission at submit time.
enum class SloClass {
  kBestEffort,
  kSloAccepted,
  kSloUnreserved,
};

struct Job {
  JobId id = -1;
  JobType type = JobType::kUnconstrained;
  bool wants_reservation = false;  // submits to Rayon (SLO job)
  int k = 1;                       // gang size (simultaneous containers)
  SimTime submit = 0;

  // Ground truth: runtime on a preferred placement; fallback placements run
  // `slowdown` times longer (>= 1).
  SimDuration actual_runtime = 0;
  double slowdown = 1.0;

  // Absolute completion deadline for SLO jobs; kTimeNever for best effort.
  SimTime deadline = kTimeNever;

  // Estimates visible to Rayon/scheduler are actual * (1 + estimate_error).
  double estimate_error = 0.0;

  // For kDataLocal jobs: the equivalence set holding this job's input data
  // (e.g. Cluster::TaggedPartitions of its dataset's replica group).
  PartitionSet preferred_partitions;

  // Filled in by Rayon admission before the job reaches the scheduler.
  SloClass slo_class = SloClass::kBestEffort;
  TimeRange reservation{0, 0};  // valid iff slo_class == kSloAccepted

  SimDuration ActualRuntime(bool preferred) const {
    return preferred ? actual_runtime
                     : static_cast<SimDuration>(
                           std::llround(actual_runtime * slowdown));
  }

  // Learned estimates installed by a RuntimeEstimator (when the simulator
  // runs with estimate learning enabled); they take precedence over the
  // submitted error-injected estimate.
  std::optional<SimDuration> learned_estimate_preferred;
  std::optional<SimDuration> learned_estimate_fallback;

  SimDuration EstimatedRuntime(bool preferred) const {
    const std::optional<SimDuration>& learned =
        preferred ? learned_estimate_preferred : learned_estimate_fallback;
    if (learned.has_value()) {
      return std::max<SimDuration>(1, *learned);
    }
    double estimate = ActualRuntime(preferred) * (1.0 + estimate_error);
    return std::max<SimDuration>(1, static_cast<SimDuration>(
                                        std::llround(estimate)));
  }

  bool is_slo() const { return slo_class != SloClass::kBestEffort; }

  std::string DebugString() const;
};

const char* ToString(JobType type);
const char* ToString(SloClass slo_class);

}  // namespace tetrisched

#endif  // TETRISCHED_CORE_JOB_H_
