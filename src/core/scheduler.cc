#include "src/core/scheduler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "src/common/bytes.h"
#include "src/common/json.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/span.h"
#include "src/compiler/compiler.h"
#include "src/core/plan_check.h"
#include "src/obs/provenance.h"
#include "src/solver/certify.h"

namespace tetrisched {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

// Registry-backed cycle-phase instruments (DESIGN.md §10). Pointers are
// resolved once and cached; instrument updates are lock-free.
struct CycleInstruments {
  Histogram* cycle_ms;
  Histogram* availability_ms;
  Histogram* strl_gen_ms;
  Histogram* compile_ms;
  Histogram* solve_ms;
  Histogram* commit_ms;
  Histogram* fallback_ms;
  Counter* cycles;
  Counter* fallback_cycles;
  Counter* skipped_cycles;
  Counter* validator_rejects;
  Counter* dropped_jobs;
  // Cycle budget / adaptive plan-ahead instruments (DESIGN.md §13).
  Counter* budget_blown_cycles;
  Counter* overrun_strl_gen;
  Counter* overrun_compile;
  Counter* overrun_solve;
  Counter* overrun_commit;
  Counter* plan_ahead_adaptations;
  Gauge* effective_plan_ahead;
  // Degradation-ladder and preemption audit (one rung counter fires per
  // non-empty cycle; rung 1/2 refine the existing fallback/skipped pair).
  Counter* rung0_cycles;
  Counter* rung1_cycles;
  Counter* rung2_cycles;
  Counter* preemptions;
};

CycleInstruments& Instruments() {
  MetricsRegistry& registry = GlobalMetrics();
  static CycleInstruments instruments{
      registry.GetHistogram("tetrisched_cycle_ms"),
      registry.GetHistogram("tetrisched_phase_availability_ms"),
      registry.GetHistogram("tetrisched_phase_strl_gen_ms"),
      registry.GetHistogram("tetrisched_phase_compile_ms"),
      registry.GetHistogram("tetrisched_phase_solve_ms"),
      registry.GetHistogram("tetrisched_phase_commit_ms"),
      registry.GetHistogram("tetrisched_phase_fallback_ms"),
      registry.GetCounter("tetrisched_cycles_total"),
      registry.GetCounter("tetrisched_fallback_cycles_total"),
      registry.GetCounter("tetrisched_skipped_cycles_total"),
      registry.GetCounter("tetrisched_validator_rejects_total"),
      registry.GetCounter("tetrisched_dropped_jobs_total"),
      registry.GetCounter("tetrisched_budget_blown_cycles_total"),
      registry.GetCounter("tetrisched_budget_overrun_strl_gen_total"),
      registry.GetCounter("tetrisched_budget_overrun_compile_total"),
      registry.GetCounter("tetrisched_budget_overrun_solve_total"),
      registry.GetCounter("tetrisched_budget_overrun_commit_total"),
      registry.GetCounter("tetrisched_plan_ahead_adaptations_total"),
      registry.GetGauge("tetrisched_effective_plan_ahead"),
      registry.GetCounter("tetrisched_ladder_rung0_cycles_total"),
      registry.GetCounter("tetrisched_ladder_rung1_cycles_total"),
      registry.GetCounter("tetrisched_ladder_rung2_cycles_total"),
      registry.GetCounter("tetrisched_preemptions_total"),
  };
  return instruments;
}

// Priority order for the greedy (NG) policy's three FIFO queues (paper §6.3).
int QueueRank(const Job& job) {
  switch (job.slo_class) {
    case SloClass::kSloAccepted:
      return 0;
    case SloClass::kSloUnreserved:
      return 1;
    case SloClass::kBestEffort:
      return 2;
  }
  return 2;
}

// Emits one kOffered provenance record per job with the full alternative
// set the STRL generator produced (tag, kind, start, duration, k, value).
// Callers gate on recorder.enabled().
void RecordOffers(ProvenanceRecorder& recorder, SimTime now,
                  const OptionRegistry& registry,
                  const std::vector<const Job*>& pending) {
  std::map<JobId, int> job_k;
  for (const Job* job : pending) {
    job_k[job->id] = job->k;
  }
  std::map<JobId, JsonArr> offers;
  for (const auto& [tag, option] : registry) {
    offers[option.job].AddRaw(JsonObj()
                                  .Field("tag", tag)
                                  .Field("kind",
                                         OptionKindName(option.option_kind))
                                  .Field("start", option.start)
                                  .Field("duration", option.est_duration)
                                  .Field("k", job_k[option.job])
                                  .Field("value", option.value)
                                  .Field("preferred", option.preferred)
                                  .str());
  }
  for (auto& [job, alternatives] : offers) {
    ProvenanceRecord record;
    record.kind = ProvKind::kOffered;
    record.time = now;
    record.job = job;
    record.value = static_cast<double>(alternatives.size());
    record.detail = alternatives.str();
    recorder.Record(std::move(record));
  }
}

// Emits kCulled records for jobs the generator dropped (no positive-value
// option within the window).
void RecordCulls(ProvenanceRecorder& recorder, SimTime now,
                 const std::vector<JobId>& dropped) {
  for (JobId job : dropped) {
    ProvenanceRecord record;
    record.kind = ProvKind::kCulled;
    record.time = now;
    record.job = job;
    record.label = "no-positive-value-option";
    recorder.Record(std::move(record));
  }
}

// Min free nodes of `partition` across the slices overlapped by
// [start, start + duration), clipped to the grid.
int FreeOver(const AvailabilityGrid& availability, PartitionId partition,
             SimTime start, SimDuration duration) {
  auto [first, last] = availability.grid().ClippedSliceRange(start, duration);
  if (first >= last) {
    return 0;
  }
  int free = std::numeric_limits<int>::max();
  for (int slice = first; slice < last; ++slice) {
    free = std::min(free, availability.avail(partition, slice));
  }
  return std::max(0, free);
}

}  // namespace

TetriSchedConfig TetriSchedConfig::Full(SimDuration plan_ahead) {
  TetriSchedConfig config;
  config.plan_ahead = plan_ahead;
  return config;
}

TetriSchedConfig TetriSchedConfig::NoHeterogeneity(SimDuration plan_ahead) {
  TetriSchedConfig config;
  config.plan_ahead = plan_ahead;
  config.heterogeneity_aware = false;
  return config;
}

TetriSchedConfig TetriSchedConfig::NoGlobal(SimDuration plan_ahead) {
  TetriSchedConfig config;
  config.plan_ahead = plan_ahead;
  config.global = false;
  return config;
}

TetriSchedConfig TetriSchedConfig::NoPlanAhead() {
  TetriSchedConfig config;
  config.plan_ahead = config.quantum;  // single-slice window: now or never
  return config;
}

TetriScheduler::TetriScheduler(const Cluster& cluster, TetriSchedConfig config)
    : cluster_(cluster),
      config_(config),
      generator_(cluster, StrlGenOptions{config.plan_ahead, config.quantum,
                                         config.heterogeneity_aware,
                                         config.be_decay_horizon}),
      aimd_(config.budget.aimd),
      effective_plan_ahead_(config.plan_ahead),
      effective_rel_gap_(config.milp.rel_gap) {}

const char* TetriScheduler::name() const {
  if (!config_.heterogeneity_aware) {
    return "TetriSched-NH";
  }
  if (!config_.global) {
    return "TetriSched-NG";
  }
  if (config_.plan_ahead <= config_.quantum) {
    return "TetriSched-NP";
  }
  return "TetriSched";
}

std::string TetriScheduler::ExportDurableState() const {
  ByteWriter writer;
  writer.PutU32(static_cast<uint32_t>(previous_plan_.size()));
  for (const auto& [tag, counts] : previous_plan_) {
    writer.PutI64(tag);
    writer.PutU32(static_cast<uint32_t>(counts.size()));
    for (const auto& [partition, count] : counts) {
      writer.PutI64(partition);
      writer.PutI64(count);
    }
  }
  // AIMD overload-controller state (DESIGN.md §13), appended after the
  // warm-start map so pre-budget blobs (which stop at the map) still import.
  writer.PutDouble(aimd_.level());
  writer.PutU32(static_cast<uint32_t>(aimd_.blown_streak()));
  writer.PutU32(static_cast<uint32_t>(aimd_.healthy_streak()));
  return writer.str();
}

void TetriScheduler::ImportDurableState(std::string_view blob) {
  previous_plan_.clear();
  if (blob.empty()) {
    return;  // empty export: no surviving plan
  }
  ByteReader reader(blob);
  LeafGrants plan;
  uint32_t num_tags = reader.GetU32();
  for (uint32_t i = 0; reader.ok() && i < num_tags; ++i) {
    LeafTag tag = reader.GetI64();
    uint32_t num_counts = reader.GetU32();
    std::map<PartitionId, int>& counts = plan[tag];
    for (uint32_t j = 0; reader.ok() && j < num_counts; ++j) {
      PartitionId partition = static_cast<PartitionId>(reader.GetI64());
      counts[partition] = static_cast<int>(reader.GetI64());
    }
  }
  // Blobs from before the budget subsystem end at the warm-start map; treat
  // a missing suffix as "never adapted" rather than corruption.
  bool has_aimd = false;
  double level = 1.0;
  uint32_t blown_streak = 0;
  uint32_t healthy_streak = 0;
  if (reader.ok() && !reader.AtEnd()) {
    level = reader.GetDouble();
    blown_streak = reader.GetU32();
    healthy_streak = reader.GetU32();
    has_aimd = true;
  }
  if (!reader.ok() || !reader.AtEnd()) {
    TETRI_LOG(kWarning)
        << "TetriScheduler: discarding malformed durable state ("
        << blob.size() << " bytes); next solve starts cold";
    return;
  }
  previous_plan_ = std::move(plan);
  if (has_aimd) {
    aimd_.RestoreState(level, static_cast<int>(blown_streak),
                       static_cast<int>(healthy_streak));
    // Re-derive the adapted window/gap so a recovered scheduler resumes on
    // the same plan-ahead trajectory as the crashed one. At level 1.0 this
    // is the identity, so non-adapted recoveries stay bit-identical.
    ApplyAimdLevel();
  }
}

TimeGrid TetriScheduler::MakeGrid(SimTime now) const {
  TimeGrid grid;
  grid.start = QuantizeDown(now, config_.quantum);
  grid.quantum = config_.quantum;
  // The adapted window (== config_.plan_ahead unless the AIMD controller
  // shrank it under overload) bounds both the grid and STRL generation.
  SimTime horizon = now + effective_plan_ahead_;
  grid.num_slices = static_cast<int>(
      QuantaCovering(horizon - grid.start, config_.quantum));
  return grid;
}

AvailabilityGrid TetriScheduler::BuildAvailability(
    SimTime now, const std::vector<RunningHold>& running) const {
  AvailabilityGrid availability(cluster_, MakeGrid(now));
  for (const RunningHold& hold : running) {
    // Optimistic completion with upward adjustment: a job observed to run
    // past its estimate is assumed to hold resources one more quantum
    // (paper §7.1: adjust under-estimates upward when observed too low).
    SimTime expected_end =
        std::max(hold.expected_end, now + config_.quantum);
    for (const auto& [partition, count] : hold.counts) {
      availability.Reduce(partition, {now, expected_end}, count);
    }
  }
  return availability;
}

TetriScheduler::Decision TetriScheduler::OnCycle(
    SimTime now, const std::vector<const Job*>& pending,
    const std::vector<RunningHold>& running) {
  TETRI_SPAN("scheduler.cycle");
  auto cycle_start = Clock::now();
  cycle_start_ = cycle_start;  // anchors CycleMilpOptions' remaining-budget
  Decision decision;
  decision.stats.pending_count = static_cast<int>(pending.size());
  if (pending.empty()) {
    previous_plan_.clear();
    return decision;
  }
  Instruments().cycles->Increment();
  ProvenanceRecorder& recorder = ProvenanceRecorder::Global();
  if (recorder.enabled()) {
    // A cycle planned under an AIMD-shrunken window is degraded: jobs it
    // touches inherit the taint for budget-degraded SLO-miss attribution.
    recorder.BeginCycle(now, effective_plan_ahead_ < config_.plan_ahead);
  }

  auto availability_start = Clock::now();
  AvailabilityGrid availability = [&] {
    TETRI_SPAN("scheduler.availability");
    return BuildAvailability(now, running);
  }();
  Instruments().availability_ms->Observe(
      1e3 * Seconds(availability_start, Clock::now()));
  std::set<JobId> planned;
  decision = config_.global ? GlobalCycle(now, pending, availability, &planned)
                            : GreedyCycle(now, pending, availability);

  if (config_.enable_preemption && config_.global) {
    // Rescue preemption (extension): an accepted SLO job that received no
    // allocation at all and is about to run out of feasible start times can
    // reclaim capacity from the youngest running best-effort containers.
    const Job* stranded = nullptr;
    for (const Job* job : pending) {
      if (job->slo_class != SloClass::kSloAccepted ||
          planned.count(job->id) != 0) {
        continue;
      }
      SimTime latest_start =
          job->deadline - job->EstimatedRuntime(/*preferred=*/true);
      if (latest_start >= now &&
          latest_start < now + 2 * config_.quantum) {
        stranded = job;
        break;
      }
    }
    if (stranded != nullptr) {
      std::vector<const RunningHold*> victims;
      for (const RunningHold& hold : running) {
        if (hold.slo_class == SloClass::kBestEffort) {
          victims.push_back(&hold);
        }
      }
      std::sort(victims.begin(), victims.end(),
                [](const RunningHold* a, const RunningHold* b) {
                  return a->start > b->start;  // youngest first
                });
      std::set<JobId> preempted;
      int freed = 0;
      for (const RunningHold* victim : victims) {
        if (freed >= stranded->k) {
          break;
        }
        preempted.insert(victim->job);
        for (const auto& [partition, count] : victim->counts) {
          freed += count;
        }
      }
      if (freed >= stranded->k && !preempted.empty()) {
        std::vector<RunningHold> surviving;
        for (const RunningHold& hold : running) {
          if (preempted.count(hold.job) == 0) {
            surviving.push_back(hold);
          }
        }
        AvailabilityGrid retry = BuildAvailability(now, surviving);
        decision = GlobalCycle(now, pending, retry, &planned);
        decision.preempt.assign(preempted.begin(), preempted.end());
        Instruments().preemptions->Increment(
            static_cast<int64_t>(preempted.size()));
        if (recorder.enabled()) {
          JsonArr victims_json;
          for (JobId victim : preempted) {
            victims_json.Add(static_cast<int64_t>(victim));
          }
          ProvenanceRecord record;
          record.kind = ProvKind::kPreemptRescue;
          record.time = now;
          record.job = stranded->id;
          record.label = "youngest-be-first";
          record.value = static_cast<double>(freed);
          record.detail =
              JsonObj().FieldRaw("victims", victims_json.str()).str();
          recorder.Record(std::move(record));
        }
      }
    }
  }

  // Degradation ladder (DESIGN.md §9): MILP -> greedy first-fit -> skip.
  // Rung 2: the solver ended with nothing better than the trivial empty
  // plan, so replan the cycle with the solver-free first-fit pass.
  auto first_fit = [&]() {
    TETRI_SPAN("scheduler.fallback");
    auto fallback_start = Clock::now();
    std::set<JobId> dropped(decision.drop.begin(), decision.drop.end());
    std::vector<const Job*> eligible;
    for (const Job* job : pending) {
      if (dropped.count(job->id) == 0) {
        eligible.push_back(job);
      }
    }
    AvailabilityGrid fresh = BuildAvailability(now, running);
    std::vector<Placement> placements = FirstFitPass(now, eligible, fresh);
    Instruments().fallback_ms->Observe(
        1e3 * Seconds(fallback_start, Clock::now()));
    return placements;
  };
  if (decision.stats.solve_status == SolveStatus::kNoIncumbent) {
    decision.start_now = first_fit();
    decision.preempt.clear();
    decision.stats.used_fallback = true;
    decision.stats.ladder_rung = 1;
    previous_plan_.clear();  // nothing from the failed solve is trustworthy
    if (recorder.enabled()) {
      ProvenanceRecord record;
      record.kind = ProvKind::kFallback;
      record.time = now;
      record.label = "no-incumbent";
      record.value = 1.0;  // ladder rung entered
      recorder.Record(std::move(record));
    }
  }

  // Pre-commit plan validation (defense in depth): a plan violating ledger
  // invariants drops to the next ladder rung instead of being committed.
  auto validate = [&]() {
    std::vector<RunningHold> surviving;
    if (decision.preempt.empty()) {
      surviving = running;
    } else {
      std::set<JobId> preempted(decision.preempt.begin(),
                                decision.preempt.end());
      for (const RunningHold& hold : running) {
        if (preempted.count(hold.job) == 0) {
          surviving.push_back(hold);
        }
      }
    }
    return ValidatePlan(cluster_, pending, surviving, decision.start_now);
  };
  std::vector<PlanViolation> violations = [&] {
    TETRI_SPAN("scheduler.validate");
    return validate();
  }();
  if (!violations.empty()) {
    for (const PlanViolation& violation : violations) {
      TETRI_LOG(kWarning) << "plan validation failed (job " << violation.job
                          << "): " << violation.reason;
    }
    decision.stats.validator_rejects += static_cast<int>(violations.size());
    previous_plan_.clear();
    if (!decision.stats.used_fallback) {
      decision.preempt.clear();
      decision.start_now = first_fit();
      decision.stats.used_fallback = true;
      decision.stats.ladder_rung = 1;
      if (recorder.enabled()) {
        ProvenanceRecord record;
        record.kind = ProvKind::kFallback;
        record.time = now;
        record.label = "validator-reject";
        record.value = 1.0;
        recorder.Record(std::move(record));
      }
      violations = validate();
      decision.stats.validator_rejects += static_cast<int>(violations.size());
    }
    if (!violations.empty()) {
      // Rung 3: even the greedy plan is unsafe; schedule nothing and
      // replan next cycle.
      decision.start_now.clear();
      decision.stats.ladder_rung = 2;
      if (recorder.enabled()) {
        ProvenanceRecord record;
        record.kind = ProvKind::kFallback;
        record.time = now;
        record.label = "validator-reject";
        record.value = 2.0;  // cycle skipped entirely
        recorder.Record(std::move(record));
      }
    }
  }

  decision.stats.pending_count = static_cast<int>(pending.size());
  decision.stats.scheduled_count = static_cast<int>(decision.start_now.size());
  decision.stats.dropped_count = static_cast<int>(decision.drop.size());
  decision.stats.cycle_seconds = Seconds(cycle_start, Clock::now());

  CycleInstruments& instruments = Instruments();
  const CycleBudgetOptions& budget = config_.budget;
  if (budget.budget_seconds > 0.0) {
    // Budget accounting + AIMD adaptation (DESIGN.md §13). Phase shares are
    // advisory (overruns are counted, not enforced); only the solve phase is
    // hard-limited, via the deadline in CycleMilpOptions().
    decision.stats.budget_seconds = budget.budget_seconds;
    decision.stats.budget_blown =
        decision.stats.cycle_seconds > budget.budget_seconds;
    const double solve_share =
        std::max(0.0, 1.0 - budget.strl_gen_share - budget.compile_share -
                          budget.commit_share);
    const struct {
      double spent;
      double share;
      Counter* counter;
    } phases[] = {
        {decision.stats.strl_gen_seconds, budget.strl_gen_share,
         instruments.overrun_strl_gen},
        {decision.stats.compile_seconds, budget.compile_share,
         instruments.overrun_compile},
        {decision.stats.solver_seconds, solve_share,
         instruments.overrun_solve},
        {decision.stats.commit_seconds, budget.commit_share,
         instruments.overrun_commit},
    };
    for (const auto& phase : phases) {
      if (phase.spent > phase.share * budget.budget_seconds) {
        ++decision.stats.phase_overruns;
        phase.counter->Increment();
      }
    }
    if (decision.stats.budget_blown) {
      instruments.budget_blown_cycles->Increment();
    }
    decision.stats.plan_ahead_adapted =
        aimd_.Observe(decision.stats.budget_blown);
    if (decision.stats.plan_ahead_adapted != 0) {
      ApplyAimdLevel();
      instruments.plan_ahead_adaptations->Increment();
      TETRI_LOG(kInfo) << "plan-ahead "
                       << (decision.stats.plan_ahead_adapted < 0 ? "shrunk"
                                                                 : "restored")
                       << " to " << effective_plan_ahead_
                       << " (AIMD level " << aimd_.level() << ", rel_gap "
                       << effective_rel_gap_ << ")";
      if (recorder.enabled()) {
        ProvenanceRecord record;
        record.kind = ProvKind::kPlanAheadAdapt;
        record.time = now;
        record.label =
            decision.stats.plan_ahead_adapted < 0 ? "shrunk" : "restored";
        record.value = static_cast<double>(effective_plan_ahead_);
        record.detail = JsonObj()
                            .Field("aimd_level", aimd_.level())
                            .Field("rel_gap", effective_rel_gap_)
                            .str();
        recorder.Record(std::move(record));
      }
    }
  }
  decision.stats.effective_plan_ahead = effective_plan_ahead_;
  decision.stats.effective_rel_gap =
      budget.budget_seconds > 0.0 && budget.adapt_rel_gap
          ? effective_rel_gap_
          : config_.milp.rel_gap;

  instruments.cycle_ms->Observe(1e3 * decision.stats.cycle_seconds);
  instruments.strl_gen_ms->Observe(1e3 * decision.stats.strl_gen_seconds);
  instruments.compile_ms->Observe(1e3 * decision.stats.compile_seconds);
  instruments.solve_ms->Observe(1e3 * decision.stats.solver_seconds);
  instruments.commit_ms->Observe(1e3 * decision.stats.commit_seconds);
  if (decision.stats.ladder_rung > 0) {
    instruments.fallback_cycles->Increment();
  }
  if (decision.stats.ladder_rung == 2) {
    instruments.skipped_cycles->Increment();
  }
  switch (decision.stats.ladder_rung) {
    case 0:
      instruments.rung0_cycles->Increment();
      break;
    case 1:
      instruments.rung1_cycles->Increment();
      break;
    default:
      instruments.rung2_cycles->Increment();
      break;
  }
  if (decision.stats.validator_rejects > 0) {
    instruments.validator_rejects->Increment(decision.stats.validator_rejects);
  }
  if (!decision.drop.empty()) {
    instruments.dropped_jobs->Increment(
        static_cast<int64_t>(decision.drop.size()));
  }
  return decision;
}

TetriScheduler::Decision TetriScheduler::GlobalCycle(
    SimTime now, const std::vector<const Job*>& pending,
    AvailabilityGrid& availability, std::set<JobId>* planned) {
  Decision decision;
  OptionRegistry registry;

  // Expand every pending job; jobs with no positive-value option are dropped
  // (their SLO is no longer reachable).
  auto strl_gen_start = Clock::now();
  std::vector<StrlExpr> job_exprs;
  {
    TETRI_SPAN("scheduler.strl_gen");
    for (const Job* job : pending) {
      std::optional<StrlExpr> expr =
          generator_.GenerateJobExpr(*job, now, &registry);
      if (expr.has_value()) {
        job_exprs.push_back(std::move(*expr));
      } else {
        decision.drop.push_back(job->id);
      }
    }
  }
  decision.stats.strl_gen_seconds = Seconds(strl_gen_start, Clock::now());
  ProvenanceRecorder& recorder = ProvenanceRecorder::Global();
  if (recorder.enabled()) {
    RecordOffers(recorder, now, registry, pending);
    RecordCulls(recorder, now, decision.drop);
  }
  if (job_exprs.empty()) {
    previous_plan_.clear();
    return decision;
  }

  auto compile_start = Clock::now();
  StrlExpr root = job_exprs.size() == 1 ? std::move(job_exprs[0])
                                        : Sum(std::move(job_exprs));
  CompiledStrl compiled = [&] {
    TETRI_SPAN("scheduler.compile");
    return StrlCompiler(availability).Compile(root);
  }();
  decision.stats.compile_seconds = Seconds(compile_start, Clock::now());
  decision.stats.milp_vars = compiled.model().num_vars();
  decision.stats.milp_constraints = compiled.model().num_constraints();

  // Warm start from the surviving part of last cycle's plan.
  std::vector<double> warm;
  if (config_.enable_warm_start && !previous_plan_.empty()) {
    warm = compiled.BuildWarmStart(previous_plan_);
  }

  const MilpOptions milp_options = CycleMilpOptions();
  MilpSolver solver(compiled.model(), milp_options);
  MilpResult result = [&] {
    TETRI_SPAN("scheduler.solve");
    return solver.Solve(warm);
  }();
  decision.stats.solver_seconds = result.solve_seconds;
  decision.stats.milp_nodes = result.nodes;
  decision.stats.milp_components = result.components;
  decision.stats.decompose_ms = result.decompose_ms;
  decision.stats.solve_status = result.solve_status;
  if (recorder.enabled()) {
    ProvenanceRecord record;
    record.kind = ProvKind::kSolve;
    record.time = now;
    record.label = ToString(result.solve_status);
    record.value = result.objective;
    record.detail = JsonObj()
                        .Field("vars", compiled.model().num_vars())
                        .Field("constraints",
                               compiled.model().num_constraints())
                        .Field("nodes", result.nodes)
                        .Field("components", result.components)
                        .Field("solve_seconds", result.solve_seconds)
                        .str();
    recorder.Record(std::move(record));
  }
  previous_plan_.clear();
  if (!result.HasSolution()) {
    // OnCycle reads stats.solve_status and replans the cycle greedily.
    TETRI_LOG(kWarning) << "MILP produced no schedule ("
                        << ToString(result.solve_status) << ")";
    return decision;
  }

  // Independent plan certifier (certify.h): re-check the incumbent against
  // the model before committing anything derived from it. A reject demotes
  // the cycle to kNoIncumbent, which sends OnCycle down the greedy rung.
  if (config_.certify_plans &&
      result.solve_status != SolveStatus::kNoIncumbent) {
    CertifyReport report = [&] {
      TETRI_SPAN("scheduler.certify");
      return CertifyPlan(compiled.model(), result, milp_options);
    }();
    if (!report.ok) {
      TETRI_LOG(kWarning) << "plan certifier rejected the incumbent: "
                          << report.failure;
      decision.stats.certifier_rejects += 1;
      decision.stats.solve_status = SolveStatus::kNoIncumbent;
      if (recorder.enabled()) {
        ProvenanceRecord record;
        record.kind = ProvKind::kCertifierReject;
        record.time = now;
        record.label = report.failure;
        record.value = static_cast<double>(report.violated_rows);
        recorder.Record(std::move(record));
      }
      return decision;
    }
  }

  // Commit only the allocations starting now; remember deferred choices as
  // next cycle's warm start.
  TETRI_SPAN("scheduler.commit");
  auto commit_start = Clock::now();
  std::map<JobId, Placement> starting;
  std::vector<StrlAllocation> allocations =
      compiled.ExtractAllocations(result.values);
  for (const StrlAllocation& alloc : allocations) {
    auto option_it = registry.find(alloc.tag);
    if (option_it == registry.end()) {
      continue;  // untagged leaf (not produced by the generator)
    }
    const JobOption& option = option_it->second;
    if (planned != nullptr) {
      planned->insert(option.job);
    }
    if (recorder.enabled()) {
      ProvenanceRecord record;
      record.kind = option.start > now ? ProvKind::kDeferred
                                       : ProvKind::kChosen;
      record.time = now;
      record.job = option.job;
      record.label = OptionKindName(option.option_kind);
      record.value = option.value;  // this leaf's objective contribution
      record.detail = JsonObj()
                          .Field("tag", alloc.tag)
                          .Field("start", option.start)
                          .Field("duration", option.est_duration)
                          .Field("nodes", alloc.total_nodes())
                          .Field("preferred", option.preferred)
                          .str();
      recorder.Record(std::move(record));
    }
    if (option.start > now) {
      previous_plan_[alloc.tag] = alloc.counts;
      continue;
    }
    Placement& placement = starting[option.job];
    placement.job = option.job;
    placement.est_duration = option.est_duration;
    placement.preferred_belief = option.preferred;
    placement.value = option.value;
    for (const auto& [partition, count] : alloc.counts) {
      placement.counts[partition] += count;
    }
  }
  for (auto& [job, placement] : starting) {
    decision.start_now.push_back(std::move(placement));
  }

  if (recorder.enabled()) {
    // Rejected jobs: offered alternatives but the incumbent allocated
    // nothing. Classify each via the saturated supply rows of the incumbent:
    // if every alternative was either culled at compile time (zero headroom)
    // or touches a binding row, the job was blocked by capacity; otherwise
    // it was outbid by higher-value jobs.
    std::set<JobId> allocated;
    for (const StrlAllocation& alloc : allocations) {
      auto option_it = registry.find(alloc.tag);
      if (option_it != registry.end()) {
        allocated.insert(option_it->second.job);
      }
    }
    std::map<JobId, std::vector<LeafTag>> job_tags;
    for (const auto& [tag, option] : registry) {
      job_tags[option.job].push_back(tag);
    }
    std::vector<SupplyRowRef> binding =
        compiled.BindingSupplyRows(result.values);
    for (const auto& [job, tags] : job_tags) {
      if (allocated.count(job) != 0) {
        continue;
      }
      int blocked = 0;
      JsonArr rows_json;
      std::set<ConstraintId> seen_rows;
      for (LeafTag tag : tags) {
        bool tag_blocked = compiled.LeafCulledAtCompile(tag);
        if (!tag_blocked) {
          for (const SupplyRowRef& row :
               compiled.RowsTouchingLeaf(tag, binding)) {
            tag_blocked = true;
            if (seen_rows.insert(row.row).second && rows_json.size() < 8) {
              rows_json.AddRaw(JsonObj()
                                   .Field("partition", row.partition)
                                   .Field("slice_start", row.slice_start)
                                   .Field("rhs", row.rhs)
                                   .Field("activity", row.activity)
                                   .str());
            }
          }
        }
        if (tag_blocked) {
          ++blocked;
        }
      }
      ProvenanceRecord record;
      record.kind = ProvKind::kRejected;
      record.time = now;
      record.job = job;
      record.label =
          blocked == static_cast<int>(tags.size()) ? "capacity" : "outbid";
      record.detail =
          JsonObj()
              .Field("alternatives", static_cast<int64_t>(tags.size()))
              .Field("blocked", blocked)
              .FieldRaw("binding_rows", rows_json.str())
              .str();
      recorder.Record(std::move(record));
    }
  }
  decision.stats.commit_seconds = Seconds(commit_start, Clock::now());
  return decision;
}

MilpOptions TetriScheduler::CycleMilpOptions() const {
  MilpOptions milp = config_.milp;
  const CycleBudgetOptions& budget = config_.budget;
  if (budget.budget_seconds <= 0.0) {
    return milp;  // budget subsystem off: configured options verbatim
  }
  if (budget.adapt_rel_gap) {
    milp.rel_gap = effective_rel_gap_;
  }
  // Wall-clock left in the cycle budget once earlier phases spent theirs,
  // minus the commit reserve. A cycle that already blew its budget before
  // the solve gets a zero limit -> kNoSolution -> the greedy ladder rung,
  // which is the designed degradation rather than a torn solve.
  const double elapsed = Seconds(cycle_start_, Clock::now());
  const double solve_budget =
      budget.budget_seconds * (1.0 - budget.commit_share) - elapsed;
  milp.time_limit_seconds =
      std::min(milp.time_limit_seconds, std::max(solve_budget, 0.0));
  return milp;
}

void TetriScheduler::ApplyAimdLevel() {
  const CycleBudgetOptions& budget = config_.budget;
  const double level = aimd_.level();
  if (budget.adapt_plan_ahead) {
    // Quantize the shrunk window to whole quanta, flooring at one quantum:
    // level 0 degrades to the paper's NP (now-or-never) configuration.
    const double target = level * static_cast<double>(config_.plan_ahead);
    const int64_t slices = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(
               target / static_cast<double>(config_.quantum))));
    effective_plan_ahead_ =
        std::min(config_.plan_ahead, slices * config_.quantum);
    generator_.set_plan_ahead(effective_plan_ahead_);
    Instruments().effective_plan_ahead->Set(
        static_cast<double>(effective_plan_ahead_));
  }
  if (budget.adapt_rel_gap) {
    // Interpolate between the configured gap (level 1) and the relaxed
    // overload gap (level 0).
    effective_rel_gap_ =
        budget.relaxed_rel_gap +
        level * (config_.milp.rel_gap - budget.relaxed_rel_gap);
  }
}

TetriScheduler::Decision TetriScheduler::GreedyCycle(
    SimTime now, const std::vector<const Job*>& pending,
    AvailabilityGrid& availability) {
  Decision decision;
  ProvenanceRecorder& recorder = ProvenanceRecorder::Global();

  // Three FIFO queues in priority order: accepted SLO, unreserved SLO, BE.
  std::vector<const Job*> ordered(pending.begin(), pending.end());
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Job* a, const Job* b) {
                     if (QueueRank(*a) != QueueRank(*b)) {
                       return QueueRank(*a) < QueueRank(*b);
                     }
                     return a->submit < b->submit;
                   });

  for (const Job* job : ordered) {
    OptionRegistry registry;
    auto strl_gen_start = Clock::now();
    std::optional<StrlExpr> expr = [&] {
      TETRI_SPAN("scheduler.strl_gen");
      return generator_.GenerateJobExpr(*job, now, &registry);
    }();
    decision.stats.strl_gen_seconds += Seconds(strl_gen_start, Clock::now());
    if (!expr.has_value()) {
      decision.drop.push_back(job->id);
      if (recorder.enabled()) {
        RecordCulls(recorder, now, {job->id});
      }
      continue;
    }
    if (recorder.enabled()) {
      // The per-job registry holds only this job's tags, so this emits
      // exactly one kOffered record.
      RecordOffers(recorder, now, registry, pending);
    }

    auto compile_start = Clock::now();
    CompiledStrl compiled = [&] {
      TETRI_SPAN("scheduler.compile");
      return StrlCompiler(availability).Compile(*expr);
    }();
    decision.stats.compile_seconds += Seconds(compile_start, Clock::now());
    decision.stats.milp_vars += compiled.model().num_vars();
    decision.stats.milp_constraints += compiled.model().num_constraints();
    MilpSolver solver(compiled.model(), config_.milp);
    MilpResult result = [&] {
      TETRI_SPAN("scheduler.solve");
      return solver.Solve();
    }();
    decision.stats.solver_seconds += result.solve_seconds;
    decision.stats.milp_nodes += result.nodes;
    decision.stats.milp_components =
        std::max(decision.stats.milp_components, result.components);
    decision.stats.decompose_ms += result.decompose_ms;
    decision.stats.solve_status =
        WorstStatus(decision.stats.solve_status, result.solve_status);
    if (!result.HasSolution() || result.objective <= 0.0) {
      if (recorder.enabled()) {
        ProvenanceRecord record;
        record.kind = ProvKind::kRejected;
        record.time = now;
        record.job = job->id;
        record.label = "no-feasible-option";
        recorder.Record(std::move(record));
      }
      continue;  // nothing schedulable for this job within the window
    }

    // Commit the chosen option against this cycle's availability so later
    // (lower-priority) jobs cannot double-book it.
    auto commit_start = Clock::now();
    Placement placement;
    bool starts_now = false;
    for (const StrlAllocation& alloc :
         compiled.ExtractAllocations(result.values)) {
      auto option_it = registry.find(alloc.tag);
      if (option_it == registry.end()) {
        continue;
      }
      const JobOption& option = option_it->second;
      for (const auto& [partition, count] : alloc.counts) {
        availability.Reduce(partition,
                            {alloc.start, alloc.start + alloc.duration},
                            count);
      }
      if (recorder.enabled()) {
        ProvenanceRecord record;
        record.kind = option.start > now ? ProvKind::kDeferred
                                         : ProvKind::kChosen;
        record.time = now;
        record.job = option.job;
        record.label = OptionKindName(option.option_kind);
        record.value = option.value;
        record.detail = JsonObj()
                            .Field("tag", alloc.tag)
                            .Field("start", option.start)
                            .Field("duration", option.est_duration)
                            .Field("nodes", alloc.total_nodes())
                            .Field("preferred", option.preferred)
                            .str();
        recorder.Record(std::move(record));
      }
      if (option.start <= now) {
        starts_now = true;
        placement.job = option.job;
        placement.est_duration = option.est_duration;
        placement.preferred_belief = option.preferred;
        placement.value = option.value;
        for (const auto& [partition, count] : alloc.counts) {
          placement.counts[partition] += count;
        }
      }
    }
    if (starts_now) {
      decision.start_now.push_back(std::move(placement));
    }
    decision.stats.commit_seconds += Seconds(commit_start, Clock::now());
  }
  return decision;
}

std::vector<Placement> TetriScheduler::FirstFitPass(
    SimTime now, const std::vector<const Job*>& pending,
    AvailabilityGrid& availability) const {
  std::vector<Placement> placements;

  // Same three FIFO queues as the greedy policy: accepted SLO first.
  std::vector<const Job*> ordered(pending.begin(), pending.end());
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Job* a, const Job* b) {
                     if (QueueRank(*a) != QueueRank(*b)) {
                       return QueueRank(*a) < QueueRank(*b);
                     }
                     return a->submit < b->submit;
                   });

  // Candidate equivalence sets per job in preference order; mirrors the
  // STRL generator's per-type options, minus the plan-ahead dimension.
  struct Candidate {
    PartitionSet partitions;
    bool preferred = false;
  };

  for (const Job* job : ordered) {
    if (config_.heterogeneity_aware && job->type == JobType::kAvailability) {
      // Anti-affinity gang: one task per rack, up to k racks, as many as
      // currently fit (MIN semantics allow a partial gang >= 1).
      SimDuration duration = job->EstimatedRuntime(/*preferred=*/true);
      if (job->deadline != kTimeNever && now + duration > job->deadline) {
        continue;
      }
      std::map<PartitionId, int> take;
      int placed = 0;
      for (RackId rack = 0; rack < cluster_.num_racks() && placed < job->k;
           ++rack) {
        for (PartitionId partition : cluster_.RackPartitions(rack)) {
          if (FreeOver(availability, partition, now, duration) >= 1) {
            ++take[partition];
            ++placed;
            break;
          }
        }
      }
      if (placed < 1) {
        continue;
      }
      Placement placement;
      placement.job = job->id;
      placement.est_duration = duration;
      placement.preferred_belief = true;
      for (const auto& [partition, count] : take) {
        availability.Reduce(partition, {now, now + duration}, count);
      }
      placement.counts = std::move(take);
      placements.push_back(std::move(placement));
      continue;
    }

    std::vector<Candidate> candidates;
    if (!config_.heterogeneity_aware) {
      // NH mode mirrors the generator: whole cluster, conservative runtime.
      candidates.push_back({cluster_.AllPartitions(), false});
    } else {
      switch (job->type) {
        case JobType::kUnconstrained:
          candidates.push_back({cluster_.AllPartitions(), true});
          break;
        case JobType::kGpu:
          candidates.push_back({cluster_.GpuPartitions(), true});
          candidates.push_back({cluster_.AllPartitions(), false});
          break;
        case JobType::kMpi:
          for (RackId rack = 0; rack < cluster_.num_racks(); ++rack) {
            candidates.push_back({cluster_.RackPartitions(rack), true});
          }
          candidates.push_back({cluster_.AllPartitions(), false});
          break;
        case JobType::kDataLocal:
          candidates.push_back({job->preferred_partitions, true});
          candidates.push_back({cluster_.AllPartitions(), false});
          break;
        case JobType::kAvailability:
          break;  // handled above
      }
    }

    for (const Candidate& candidate : candidates) {
      SimDuration duration = job->EstimatedRuntime(candidate.preferred);
      if (job->deadline != kTimeNever && now + duration > job->deadline) {
        continue;  // this placement cannot meet the SLO
      }
      std::map<PartitionId, int> take;
      int remaining = job->k;
      for (PartitionId partition : candidate.partitions) {
        if (remaining == 0) {
          break;
        }
        int grab = std::min(remaining,
                            FreeOver(availability, partition, now, duration));
        if (grab > 0) {
          take[partition] = grab;
          remaining -= grab;
        }
      }
      if (remaining > 0) {
        continue;  // the gang does not fit in this equivalence set
      }
      Placement placement;
      placement.job = job->id;
      placement.est_duration = duration;
      placement.preferred_belief = candidate.preferred;
      for (const auto& [partition, count] : take) {
        availability.Reduce(partition, {now, now + duration}, count);
      }
      placement.counts = std::move(take);
      placements.push_back(std::move(placement));
      break;
    }
  }
  return placements;
}

}  // namespace tetrisched
