#include "src/core/scheduler.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "src/common/logging.h"
#include "src/compiler/compiler.h"

namespace tetrisched {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

// Priority order for the greedy (NG) policy's three FIFO queues (paper §6.3).
int QueueRank(const Job& job) {
  switch (job.slo_class) {
    case SloClass::kSloAccepted:
      return 0;
    case SloClass::kSloUnreserved:
      return 1;
    case SloClass::kBestEffort:
      return 2;
  }
  return 2;
}

}  // namespace

TetriSchedConfig TetriSchedConfig::Full(SimDuration plan_ahead) {
  TetriSchedConfig config;
  config.plan_ahead = plan_ahead;
  return config;
}

TetriSchedConfig TetriSchedConfig::NoHeterogeneity(SimDuration plan_ahead) {
  TetriSchedConfig config;
  config.plan_ahead = plan_ahead;
  config.heterogeneity_aware = false;
  return config;
}

TetriSchedConfig TetriSchedConfig::NoGlobal(SimDuration plan_ahead) {
  TetriSchedConfig config;
  config.plan_ahead = plan_ahead;
  config.global = false;
  return config;
}

TetriSchedConfig TetriSchedConfig::NoPlanAhead() {
  TetriSchedConfig config;
  config.plan_ahead = config.quantum;  // single-slice window: now or never
  return config;
}

TetriScheduler::TetriScheduler(const Cluster& cluster, TetriSchedConfig config)
    : cluster_(cluster),
      config_(config),
      generator_(cluster, StrlGenOptions{config.plan_ahead, config.quantum,
                                         config.heterogeneity_aware,
                                         config.be_decay_horizon}) {}

const char* TetriScheduler::name() const {
  if (!config_.heterogeneity_aware) {
    return "TetriSched-NH";
  }
  if (!config_.global) {
    return "TetriSched-NG";
  }
  if (config_.plan_ahead <= config_.quantum) {
    return "TetriSched-NP";
  }
  return "TetriSched";
}

TimeGrid TetriScheduler::MakeGrid(SimTime now) const {
  TimeGrid grid;
  grid.start = QuantizeDown(now, config_.quantum);
  grid.quantum = config_.quantum;
  SimTime horizon = now + config_.plan_ahead;
  grid.num_slices = static_cast<int>(
      QuantaCovering(horizon - grid.start, config_.quantum));
  return grid;
}

AvailabilityGrid TetriScheduler::BuildAvailability(
    SimTime now, const std::vector<RunningHold>& running) const {
  AvailabilityGrid availability(cluster_, MakeGrid(now));
  for (const RunningHold& hold : running) {
    // Optimistic completion with upward adjustment: a job observed to run
    // past its estimate is assumed to hold resources one more quantum
    // (paper §7.1: adjust under-estimates upward when observed too low).
    SimTime expected_end =
        std::max(hold.expected_end, now + config_.quantum);
    for (const auto& [partition, count] : hold.counts) {
      availability.Reduce(partition, {now, expected_end}, count);
    }
  }
  return availability;
}

TetriScheduler::Decision TetriScheduler::OnCycle(
    SimTime now, const std::vector<const Job*>& pending,
    const std::vector<RunningHold>& running) {
  auto cycle_start = Clock::now();
  Decision decision;
  decision.stats.pending_count = static_cast<int>(pending.size());
  if (pending.empty()) {
    previous_plan_.clear();
    return decision;
  }

  AvailabilityGrid availability = BuildAvailability(now, running);
  std::set<JobId> planned;
  decision = config_.global ? GlobalCycle(now, pending, availability, &planned)
                            : GreedyCycle(now, pending, availability);

  if (config_.enable_preemption && config_.global) {
    // Rescue preemption (extension): an accepted SLO job that received no
    // allocation at all and is about to run out of feasible start times can
    // reclaim capacity from the youngest running best-effort containers.
    const Job* stranded = nullptr;
    for (const Job* job : pending) {
      if (job->slo_class != SloClass::kSloAccepted ||
          planned.count(job->id) != 0) {
        continue;
      }
      SimTime latest_start =
          job->deadline - job->EstimatedRuntime(/*preferred=*/true);
      if (latest_start >= now &&
          latest_start < now + 2 * config_.quantum) {
        stranded = job;
        break;
      }
    }
    if (stranded != nullptr) {
      std::vector<const RunningHold*> victims;
      for (const RunningHold& hold : running) {
        if (hold.slo_class == SloClass::kBestEffort) {
          victims.push_back(&hold);
        }
      }
      std::sort(victims.begin(), victims.end(),
                [](const RunningHold* a, const RunningHold* b) {
                  return a->start > b->start;  // youngest first
                });
      std::set<JobId> preempted;
      int freed = 0;
      for (const RunningHold* victim : victims) {
        if (freed >= stranded->k) {
          break;
        }
        preempted.insert(victim->job);
        for (const auto& [partition, count] : victim->counts) {
          freed += count;
        }
      }
      if (freed >= stranded->k && !preempted.empty()) {
        std::vector<RunningHold> surviving;
        for (const RunningHold& hold : running) {
          if (preempted.count(hold.job) == 0) {
            surviving.push_back(hold);
          }
        }
        AvailabilityGrid retry = BuildAvailability(now, surviving);
        decision = GlobalCycle(now, pending, retry, &planned);
        decision.preempt.assign(preempted.begin(), preempted.end());
      }
    }
  }

  decision.stats.pending_count = static_cast<int>(pending.size());
  decision.stats.scheduled_count = static_cast<int>(decision.start_now.size());
  decision.stats.dropped_count = static_cast<int>(decision.drop.size());
  decision.stats.cycle_seconds = Seconds(cycle_start, Clock::now());
  return decision;
}

TetriScheduler::Decision TetriScheduler::GlobalCycle(
    SimTime now, const std::vector<const Job*>& pending,
    AvailabilityGrid& availability, std::set<JobId>* planned) {
  Decision decision;
  OptionRegistry registry;

  // Expand every pending job; jobs with no positive-value option are dropped
  // (their SLO is no longer reachable).
  std::vector<StrlExpr> job_exprs;
  for (const Job* job : pending) {
    std::optional<StrlExpr> expr =
        generator_.GenerateJobExpr(*job, now, &registry);
    if (expr.has_value()) {
      job_exprs.push_back(std::move(*expr));
    } else {
      decision.drop.push_back(job->id);
    }
  }
  if (job_exprs.empty()) {
    previous_plan_.clear();
    return decision;
  }

  StrlExpr root = job_exprs.size() == 1 ? std::move(job_exprs[0])
                                        : Sum(std::move(job_exprs));
  CompiledStrl compiled = StrlCompiler(availability).Compile(root);
  decision.stats.milp_vars = compiled.model().num_vars();
  decision.stats.milp_constraints = compiled.model().num_constraints();

  // Warm start from the surviving part of last cycle's plan.
  std::vector<double> warm;
  if (config_.enable_warm_start && !previous_plan_.empty()) {
    warm = compiled.BuildWarmStart(previous_plan_);
  }

  MilpSolver solver(compiled.model(), config_.milp);
  MilpResult result = solver.Solve(warm);
  decision.stats.solver_seconds = result.solve_seconds;
  decision.stats.milp_nodes = result.nodes;
  previous_plan_.clear();
  if (!result.HasSolution()) {
    // With all-zero being feasible this only happens on solver limits;
    // schedule nothing and replan next cycle.
    TETRI_LOG(kWarning) << "MILP produced no schedule (status "
                        << static_cast<int>(result.status) << ")";
    return decision;
  }

  // Commit only the allocations starting now; remember deferred choices as
  // next cycle's warm start.
  std::map<JobId, Placement> starting;
  for (const StrlAllocation& alloc :
       compiled.ExtractAllocations(result.values)) {
    auto option_it = registry.find(alloc.tag);
    if (option_it == registry.end()) {
      continue;  // untagged leaf (not produced by the generator)
    }
    const JobOption& option = option_it->second;
    if (planned != nullptr) {
      planned->insert(option.job);
    }
    if (option.start > now) {
      previous_plan_[alloc.tag] = alloc.counts;
      continue;
    }
    Placement& placement = starting[option.job];
    placement.job = option.job;
    placement.est_duration = option.est_duration;
    placement.preferred_belief = option.preferred;
    placement.value = option.value;
    for (const auto& [partition, count] : alloc.counts) {
      placement.counts[partition] += count;
    }
  }
  for (auto& [job, placement] : starting) {
    decision.start_now.push_back(std::move(placement));
  }
  return decision;
}

TetriScheduler::Decision TetriScheduler::GreedyCycle(
    SimTime now, const std::vector<const Job*>& pending,
    AvailabilityGrid& availability) {
  Decision decision;

  // Three FIFO queues in priority order: accepted SLO, unreserved SLO, BE.
  std::vector<const Job*> ordered(pending.begin(), pending.end());
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Job* a, const Job* b) {
                     if (QueueRank(*a) != QueueRank(*b)) {
                       return QueueRank(*a) < QueueRank(*b);
                     }
                     return a->submit < b->submit;
                   });

  for (const Job* job : ordered) {
    OptionRegistry registry;
    std::optional<StrlExpr> expr =
        generator_.GenerateJobExpr(*job, now, &registry);
    if (!expr.has_value()) {
      decision.drop.push_back(job->id);
      continue;
    }

    CompiledStrl compiled = StrlCompiler(availability).Compile(*expr);
    decision.stats.milp_vars += compiled.model().num_vars();
    decision.stats.milp_constraints += compiled.model().num_constraints();
    MilpSolver solver(compiled.model(), config_.milp);
    MilpResult result = solver.Solve();
    decision.stats.solver_seconds += result.solve_seconds;
    decision.stats.milp_nodes += result.nodes;
    if (!result.HasSolution() || result.objective <= 0.0) {
      continue;  // nothing schedulable for this job within the window
    }

    // Commit the chosen option against this cycle's availability so later
    // (lower-priority) jobs cannot double-book it.
    Placement placement;
    bool starts_now = false;
    for (const StrlAllocation& alloc :
         compiled.ExtractAllocations(result.values)) {
      auto option_it = registry.find(alloc.tag);
      if (option_it == registry.end()) {
        continue;
      }
      const JobOption& option = option_it->second;
      for (const auto& [partition, count] : alloc.counts) {
        availability.Reduce(partition,
                            {alloc.start, alloc.start + alloc.duration},
                            count);
      }
      if (option.start <= now) {
        starts_now = true;
        placement.job = option.job;
        placement.est_duration = option.est_duration;
        placement.preferred_belief = option.preferred;
        placement.value = option.value;
        for (const auto& [partition, count] : alloc.counts) {
          placement.counts[partition] += count;
        }
      }
    }
    if (starts_now) {
      decision.start_now.push_back(std::move(placement));
    }
  }
  return decision;
}

}  // namespace tetrisched
