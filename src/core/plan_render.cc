#include "src/core/plan_render.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace tetrisched {
namespace {

char GlyphFor(int job_index) {
  constexpr const char* kGlyphs =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
  constexpr int kNumGlyphs = 62;
  return kGlyphs[job_index % kNumGlyphs];
}

}  // namespace

std::string RenderPlan(const Cluster& cluster,
                       const std::vector<PlanSlot>& slots, SimTime origin,
                       SimDuration quantum, int num_slices) {
  // grid[node][slice] = job letter or '.'.
  std::vector<std::vector<char>> grid(
      cluster.num_nodes(), std::vector<char>(num_slices, '.'));
  std::map<int64_t, char> job_glyphs;
  bool overflow = false;

  // Per partition, fill rows top-down per slice; a slot occupies `count`
  // node rows of its partition for every slice its interval covers.
  for (const PlanSlot& slot : slots) {
    auto [glyph_it, inserted] = job_glyphs.try_emplace(
        slot.job, GlyphFor(static_cast<int>(job_glyphs.size())));
    char glyph = glyph_it->second;
    const Partition& partition = cluster.partition(slot.partition);
    for (int slice = 0; slice < num_slices; ++slice) {
      SimTime slice_start = origin + slice * quantum;
      TimeRange slice_range{slice_start, slice_start + quantum};
      if (!slot.interval.overlaps(slice_range)) {
        continue;
      }
      int placed = 0;
      for (NodeId node : partition.nodes) {
        if (placed == slot.count) {
          break;
        }
        if (grid[node][slice] == '.') {
          grid[node][slice] = glyph;
          ++placed;
        }
      }
      if (placed < slot.count) {
        overflow = true;
      }
    }
  }

  std::ostringstream out;
  out << "      t=";
  for (int slice = 0; slice < num_slices; ++slice) {
    out << origin + slice * quantum;
    if (slice + 1 < num_slices) {
      out << std::string(2, ' ');
    }
  }
  out << "\n";
  // Rows from the highest node id down, annotated with partition boundaries.
  for (NodeId node = cluster.num_nodes() - 1; node >= 0; --node) {
    out << "  M" << node << (node < 10 ? " " : "") << " [";
    for (int slice = 0; slice < num_slices; ++slice) {
      out << ' ' << grid[node][slice] << ' ';
    }
    out << "]";
    const Partition& partition = cluster.partition(cluster.partition_of(node));
    if (partition.nodes.front() == node) {
      out << "  rack " << partition.rack << (partition.has_gpu ? " (gpu)" : "");
    }
    out << "\n";
  }
  if (overflow) {
    out << "  OVERFLOW: some slots exceeded partition capacity\n";
  }
  if (!job_glyphs.empty()) {
    out << "  legend:";
    for (const auto& [job, glyph] : job_glyphs) {
      out << " " << glyph << "=job" << job;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace tetrisched
