// Learned runtime estimation (the "Perforator" box of the paper's Fig 2).
//
// Production schedulers get runtime estimates from tools that observe
// recurring jobs and regress runtime against job class, gang size, and
// placement quality [1, 7, 10-12, 38]. The paper treats that machinery as an
// external input and injects synthetic estimate error; this module provides
// the closest in-repo equivalent so the "estimates learned from clustering
// similar jobs" future-work path (§4.4) can be exercised end to end:
//
//   * jobs are clustered by (type, gang-size bucket, placement quality),
//   * each cluster keeps an exponentially-weighted mean of observed
//     runtimes normalized per node-second,
//   * Predict() returns the cluster's estimate once it has enough
//     observations, else nullopt (callers fall back to the submitted
//     estimate).
//
// The simulator can run with the estimator in the loop: completions feed
// Observe(), arrivals consult Predict(), and the injected estimate error
// decays as clusters converge — reproducing the "robust estimates for
// recurring production jobs" premise.

#ifndef TETRISCHED_CORE_ESTIMATOR_H_
#define TETRISCHED_CORE_ESTIMATOR_H_

#include <map>
#include <optional>

#include "src/common/time.h"
#include "src/core/job.h"

namespace tetrisched {

struct EstimatorOptions {
  // Observations required before a cluster's prediction is trusted.
  int min_observations = 3;
  // Exponential moving average weight of the newest observation.
  double ema_alpha = 0.3;
  // Gang sizes are bucketed by powers of two (1, 2, 3-4, 5-8, ...).
  bool bucket_gang_sizes = true;
};

class RuntimeEstimator {
 public:
  explicit RuntimeEstimator(EstimatorOptions options = {});

  // Records a completed execution: the job, whether it ran on preferred
  // resources, and the observed wall-clock runtime.
  void Observe(const Job& job, bool preferred, SimDuration runtime);

  // Predicted runtime for `job` under the given placement quality, or
  // nullopt while the matching cluster is still cold.
  std::optional<SimDuration> Predict(const Job& job, bool preferred) const;

  int num_clusters() const { return static_cast<int>(clusters_.size()); }
  int total_observations() const { return total_observations_; }

 private:
  struct ClusterKey {
    JobType type;
    int gang_bucket;
    bool preferred;
    auto operator<=>(const ClusterKey&) const = default;
  };
  struct ClusterStats {
    int observations = 0;
    double ema_runtime = 0.0;  // smoothed observed runtime
  };

  ClusterKey KeyFor(const Job& job, bool preferred) const;

  EstimatorOptions options_;
  std::map<ClusterKey, ClusterStats> clusters_;
  int total_observations_ = 0;
};

}  // namespace tetrisched

#endif  // TETRISCHED_CORE_ESTIMATOR_H_
