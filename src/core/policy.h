// Scheduler policy interface between the simulator and the scheduling
// algorithms (TetriSched variants and the Rayon/CapacityScheduler baseline).
//
// Each simulated scheduling cycle the simulator presents the pending queue
// and the holds of currently running jobs; the policy answers with the jobs
// to launch right now (as partition-count placements), jobs to drop (SLO jobs
// whose deadline became unreachable), and — for preemption-capable baselines
// — running jobs to kill.

#ifndef TETRISCHED_CORE_POLICY_H_
#define TETRISCHED_CORE_POLICY_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/time.h"
#include "src/core/job.h"
#include "src/solver/solve_status.h"

namespace tetrisched {

// What a running job currently holds and when the *scheduler believes* it
// will release it (estimate-derived; adjusted upward when observed late).
struct RunningHold {
  JobId job = -1;
  SloClass slo_class = SloClass::kBestEffort;
  SimTime start = 0;
  // End of the job's Rayon reservation window (kTimeNever unless accepted).
  // A running job past this instant is no longer guaranteed and becomes
  // preemptible in the baseline stack.
  SimTime reservation_end = kTimeNever;
  std::map<PartitionId, int> counts;
  SimTime expected_end = 0;
};

// A decision to start a job now on the given partition counts.
struct Placement {
  JobId job = -1;
  std::map<PartitionId, int> counts;
  SimDuration est_duration = 0;   // scheduler's belief for this placement
  bool preferred_belief = false;  // scheduler planned the fast option
  double value = 0.0;             // STRL value of the chosen option

  int total_nodes() const {
    int total = 0;
    for (const auto& [partition, count] : counts) {
      total += count;
    }
    return total;
  }
};

// Per-cycle measurements feeding the Fig-12 scalability analysis. These are
// per-decision snapshots of the same timers that feed the process-wide
// MetricsRegistry phase histograms (tetrisched_phase_*_ms; DESIGN.md §10):
// the struct keeps the test-facing per-cycle view, the registry keeps the
// cumulative distributions.
struct CycleStats {
  double cycle_seconds = 0.0;   // wall-clock for the whole decision
  double solver_seconds = 0.0;  // wall-clock inside the MILP solver
  // Wall-clock of the other OnCycle phases: STRL expansion, STRL->MILP
  // compilation, and allocation extraction/commit bookkeeping.
  double strl_gen_seconds = 0.0;
  double compile_seconds = 0.0;
  double commit_seconds = 0.0;
  int milp_vars = 0;
  int milp_constraints = 0;
  int milp_nodes = 0;
  // Solver decomposition breakdown (DESIGN.md §12): independent components
  // of the cycle MILP (1 = monolithic) and wall-clock spent splitting it.
  int milp_components = 1;
  double decompose_ms = 0.0;
  int pending_count = 0;
  int scheduled_count = 0;
  int dropped_count = 0;
  // Graceful-degradation bookkeeping. `solve_status` is the worst MILP
  // outcome across the cycle's solves (kOptimal for non-MILP policies);
  // `used_fallback` marks cycles whose plan came from the greedy first-fit
  // ladder rung instead of the solver; `validator_rejects` counts
  // placements the pre-commit plan validator refused.
  SolveStatus solve_status = SolveStatus::kOptimal;
  bool used_fallback = false;
  int validator_rejects = 0;
  // Degradation-ladder rung that produced the committed plan: 0 = MILP,
  // 1 = greedy first-fit fallback, 2 = skip (nothing committed this cycle).
  // used_fallback == (ladder_rung > 0); the rung adds *which* rung.
  int ladder_rung = 0;
  // Cycle budget / adaptive plan-ahead (DESIGN.md §13). budget_seconds == 0
  // means the budget subsystem was off this cycle and the rest are inert.
  double budget_seconds = 0.0;     // configured cycle budget
  bool budget_blown = false;       // cycle_seconds exceeded the budget
  int phase_overruns = 0;          // phases that exceeded their share
  SimDuration effective_plan_ahead = 0;  // window actually used this cycle
  double effective_rel_gap = 0.0;        // rel_gap actually used this cycle
  // AIMD adaptation taken *after* this cycle: -1 = plan-ahead shrank,
  // +1 = restored a step, 0 = unchanged. Journaled as kPlanAheadAdapt.
  int plan_ahead_adapted = 0;
  // Incumbents refused by the independent plan certifier (certify.h); each
  // reject degrades the cycle to the greedy ladder rung.
  int certifier_rejects = 0;
};

class SchedulerPolicy {
 public:
  struct Decision {
    std::vector<Placement> start_now;
    std::vector<JobId> drop;
    std::vector<JobId> preempt;  // running jobs to kill (baseline only)
    CycleStats stats;
  };

  virtual ~SchedulerPolicy() = default;

  virtual Decision OnCycle(SimTime now,
                           const std::vector<const Job*>& pending,
                           const std::vector<RunningHold>& running) = 0;

  virtual const char* name() const = 0;

  // Opaque durable state for crash recovery (DESIGN.md §11). The simulator
  // journals the export with every committed cycle and feeds it back into a
  // freshly constructed policy after a crash. Stateless policies keep the
  // defaults; TetriSched round-trips its warm-start plan.
  virtual std::string ExportDurableState() const { return {}; }
  virtual void ImportDurableState(std::string_view /*blob*/) {}
};

}  // namespace tetrisched

#endif  // TETRISCHED_CORE_POLICY_H_
