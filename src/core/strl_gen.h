// STRL Generator (paper §3.1, §4.4): turns a pending job plus reservation
// information into a STRL expression enumerating its space-time options over
// the plan-ahead window.
//
// For every feasible start time s (slot 0 = "start right now", later slots
// aligned to absolute quantum boundaries so option identities are stable
// across cycles for warm starting), a job-type plugin emits one or more
// placement options:
//
//   unconstrained:  nCk(whole cluster, k, s, dur, v)
//   gpu:            max( nCk(gpu partitions, k, s, fast, v_fast),
//                        nCk(whole cluster, k, s, slow, v_slow) )
//   mpi:            max( nCk(rack_r, k, s, fast, v_fast) for each rack r,
//                        nCk(whole cluster, k, s, slow, v_slow) )
//   availability:   min( nCk(rack_r, 1, s, dur, v) for each rack r )
//
// Options whose value is zero (an SLO start that cannot meet the deadline)
// are culled at generation time — the paper's expression-growth optimization.
// A heterogeneity-blind mode (TetriSched-NH) collapses every type to the
// whole-cluster option with the conservative slow runtime.

#ifndef TETRISCHED_CORE_STRL_GEN_H_
#define TETRISCHED_CORE_STRL_GEN_H_

#include <map>
#include <optional>
#include <string>

#include "src/cluster/cluster.h"
#include "src/core/job.h"
#include "src/strl/strl.h"
#include "src/strl/value.h"

namespace tetrisched {

struct StrlGenOptions {
  SimDuration plan_ahead = 96;  // window length, seconds
  SimDuration quantum = 8;      // time-slice width
  bool heterogeneity_aware = true;  // false => TetriSched-NH
  // Horizon over which best-effort value decays to its floor.
  SimDuration be_decay_horizon = 600;
};

// Metadata recorded per generated leaf so chosen MILP options can be mapped
// back to concrete scheduling decisions.
struct JobOption {
  JobId job = -1;
  SimTime start = 0;
  SimDuration est_duration = 0;  // scheduler's belief
  bool preferred = false;        // was this the fast placement option?
  double value = 0.0;
  int option_kind = 0;  // kKindPreferred / kKindFallback / rack-specific
};

using OptionRegistry = std::map<LeafTag, JobOption>;

// Human-readable name for JobOption::option_kind ("preferred", "fallback",
// "rack<r>"), used by decision provenance.
std::string OptionKindName(int option_kind);

class StrlGenerator {
 public:
  StrlGenerator(const Cluster& cluster, StrlGenOptions options);

  // Builds the option tree for `job` at scheduling instant `now`. Returns
  // nullopt when no option has positive value (SLO deadline unreachable);
  // such jobs should be dropped (paper: culling zero-value pending jobs).
  std::optional<StrlExpr> GenerateJobExpr(const Job& job, SimTime now,
                                          OptionRegistry* registry) const;

  // Value function the generator applies for this job (exposed for tests).
  ValueFunction JobValue(const Job& job) const;

  const StrlGenOptions& options() const { return options_; }

  // Adjusts the plan-ahead window in place (adaptive plan-ahead under
  // overload, DESIGN.md §13). Leaf tags only encode job/start/kind, so
  // options generated under different windows stay warm-start compatible.
  void set_plan_ahead(SimDuration plan_ahead) {
    options_.plan_ahead = plan_ahead;
  }

 private:
  // Candidate start times in [now, now + plan_ahead): `now` itself, then
  // absolute quantum-aligned instants.
  std::vector<SimTime> CandidateStarts(SimTime now) const;

  LeafTag MakeTag(const Job& job, SimTime start, int option_kind) const;

  const Cluster& cluster_;
  StrlGenOptions options_;
};

}  // namespace tetrisched

#endif  // TETRISCHED_CORE_STRL_GEN_H_
