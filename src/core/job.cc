#include "src/core/job.h"

#include <sstream>

namespace tetrisched {

const char* ToString(JobType type) {
  switch (type) {
    case JobType::kUnconstrained:
      return "unconstrained";
    case JobType::kGpu:
      return "gpu";
    case JobType::kMpi:
      return "mpi";
    case JobType::kAvailability:
      return "availability";
    case JobType::kDataLocal:
      return "data-local";
  }
  return "?";
}

const char* ToString(SloClass slo_class) {
  switch (slo_class) {
    case SloClass::kBestEffort:
      return "best-effort";
    case SloClass::kSloAccepted:
      return "slo-accepted";
    case SloClass::kSloUnreserved:
      return "slo-unreserved";
  }
  return "?";
}

std::string Job::DebugString() const {
  std::ostringstream out;
  out << "job " << id << " [" << ToString(type) << ", " << ToString(slo_class)
      << "] k=" << k << " submit=" << submit << " runtime=" << actual_runtime
      << " slowdown=" << slowdown;
  if (deadline != kTimeNever) {
    out << " deadline=" << deadline;
  }
  return out.str();
}

}  // namespace tetrisched
