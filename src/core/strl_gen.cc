#include "src/core/strl_gen.h"

#include <algorithm>
#include <cassert>

namespace tetrisched {
namespace {

// Tag layout: ((job * kMaxSlots) + absolute_slot) * kMaxKinds + kind.
// Stable across cycles (slots are absolute quantum indices), which is what
// lets the previous cycle's plan warm-start the next cycle's MILP.
constexpr int64_t kMaxKinds = 64;
constexpr int64_t kMaxSlots = int64_t{1} << 24;

constexpr int kKindPreferred = 0;
constexpr int kKindFallback = 1;
constexpr int kKindRackBase = 2;  // + rack id

}  // namespace

std::string OptionKindName(int option_kind) {
  if (option_kind == kKindPreferred) {
    return "preferred";
  }
  if (option_kind == kKindFallback) {
    return "fallback";
  }
  return "rack" + std::to_string(option_kind - kKindRackBase);
}

StrlGenerator::StrlGenerator(const Cluster& cluster, StrlGenOptions options)
    : cluster_(cluster), options_(options) {
  assert(options_.quantum > 0 && options_.plan_ahead >= options_.quantum);
}

ValueFunction StrlGenerator::JobValue(const Job& job) const {
  switch (job.slo_class) {
    case SloClass::kSloAccepted:
      return AcceptedSloValue(job.deadline);
    case SloClass::kSloUnreserved:
      return UnreservedSloValue(job.deadline);
    case SloClass::kBestEffort:
      return BestEffortValue(job.submit, options_.be_decay_horizon);
  }
  return BestEffortValue(job.submit, options_.be_decay_horizon);
}

std::vector<SimTime> StrlGenerator::CandidateStarts(SimTime now) const {
  std::vector<SimTime> starts{now};
  SimTime horizon = now + options_.plan_ahead;
  for (SimTime t = QuantizeDown(now, options_.quantum) + options_.quantum;
       t < horizon; t += options_.quantum) {
    if (t > now) {
      starts.push_back(t);
    }
  }
  return starts;
}

LeafTag StrlGenerator::MakeTag(const Job& job, SimTime start,
                               int option_kind) const {
  int64_t slot = start / options_.quantum;
  assert(slot >= 0 && slot < kMaxSlots && option_kind < kMaxKinds);
  return (job.id * kMaxSlots + slot) * kMaxKinds + option_kind;
}

std::optional<StrlExpr> StrlGenerator::GenerateJobExpr(
    const Job& job, SimTime now, OptionRegistry* registry) const {
  const ValueFunction value_fn = JobValue(job);
  const PartitionSet all = cluster_.AllPartitions();
  const bool het = options_.heterogeneity_aware;

  auto record = [&](LeafTag tag, SimTime start, SimDuration dur,
                    bool preferred, double value, int kind) {
    if (registry != nullptr) {
      (*registry)[tag] = JobOption{job.id, start, dur, preferred, value, kind};
    }
  };

  std::vector<StrlExpr> start_options;
  for (SimTime start : CandidateStarts(now)) {
    std::vector<StrlExpr> options;

    // Fast (preferred) and slow (fallback) runtimes as the scheduler
    // estimates them.
    SimDuration fast = job.EstimatedRuntime(/*preferred=*/true);
    SimDuration slow = job.EstimatedRuntime(/*preferred=*/false);
    // Completion-time shading breaks the tie between options a step value
    // function rates equally: faster placements and earlier starts win.
    double v_fast =
        ShadeByCompletion(value_fn.At(start + fast), now, start + fast);
    double v_slow =
        ShadeByCompletion(value_fn.At(start + slow), now, start + slow);

    switch (het ? job.type : JobType::kUnconstrained) {
      case JobType::kUnconstrained: {
        // NH mode treats every job as unconstrained but must stay
        // conservative about its runtime (paper §6.3).
        SimDuration dur = het ? fast : slow;
        double v = het ? v_fast : v_slow;
        if (v > 0.0 && cluster_.CapacityOf(all) >= job.k) {
          LeafTag tag = MakeTag(job, start, kKindPreferred);
          options.push_back(NCk(all, job.k, start, dur, v, tag));
          // In NH mode the scheduler plans with the conservative slow
          // runtime, i.e. it does not believe the placement is preferred.
          record(tag, start, dur, /*preferred=*/het, v, kKindPreferred);
        }
        break;
      }

      case JobType::kDataLocal:
      case JobType::kGpu: {
        PartitionSet gpu = job.type == JobType::kDataLocal
                               ? job.preferred_partitions
                               : cluster_.GpuPartitions();
        if (v_fast > 0.0 && cluster_.CapacityOf(gpu) >= job.k) {
          LeafTag tag = MakeTag(job, start, kKindPreferred);
          options.push_back(NCk(gpu, job.k, start, fast, v_fast, tag));
          record(tag, start, fast, /*preferred=*/true, v_fast,
                 kKindPreferred);
        }
        if (v_slow > 0.0 && cluster_.CapacityOf(all) >= job.k) {
          LeafTag tag = MakeTag(job, start, kKindFallback);
          options.push_back(NCk(all, job.k, start, slow, v_slow, tag));
          record(tag, start, slow, /*preferred=*/false, v_slow,
                 kKindFallback);
        }
        break;
      }

      case JobType::kMpi: {
        if (v_fast > 0.0) {
          for (RackId rack = 0; rack < cluster_.num_racks(); ++rack) {
            PartitionSet rack_set = cluster_.RackPartitions(rack);
            if (cluster_.CapacityOf(rack_set) < job.k) {
              continue;
            }
            LeafTag tag = MakeTag(job, start, kKindRackBase + rack);
            options.push_back(
                NCk(std::move(rack_set), job.k, start, fast, v_fast, tag));
            record(tag, start, fast, /*preferred=*/true, v_fast,
                   kKindRackBase + rack);
          }
        }
        if (v_slow > 0.0 && cluster_.CapacityOf(all) >= job.k) {
          LeafTag tag = MakeTag(job, start, kKindFallback);
          options.push_back(NCk(all, job.k, start, slow, v_slow, tag));
          record(tag, start, slow, /*preferred=*/false, v_slow,
                 kKindFallback);
        }
        break;
      }

      case JobType::kAvailability: {
        // One task on each of min(k, num_racks) racks, all required (MIN).
        int racks = std::min(job.k, cluster_.num_racks());
        if (v_fast > 0.0 && racks > 0) {
          std::vector<StrlExpr> legs;
          for (RackId rack = 0; rack < racks; ++rack) {
            PartitionSet rack_set = cluster_.RackPartitions(rack);
            if (cluster_.CapacityOf(rack_set) < 1) {
              legs.clear();
              break;
            }
            LeafTag tag = MakeTag(job, start, kKindRackBase + rack);
            legs.push_back(
                NCk(std::move(rack_set), 1, start, fast, v_fast, tag));
            record(tag, start, fast, /*preferred=*/true, v_fast,
                   kKindRackBase + rack);
          }
          if (!legs.empty()) {
            options.push_back(legs.size() == 1 ? std::move(legs[0])
                                               : Min(std::move(legs)));
          }
        }
        break;
      }
    }

    if (options.empty()) {
      continue;
    }
    start_options.push_back(options.size() == 1 ? std::move(options[0])
                                                : Max(std::move(options)));
  }

  if (start_options.empty()) {
    return std::nullopt;
  }
  if (start_options.size() == 1) {
    return std::move(start_options[0]);
  }
  return Max(std::move(start_options));
}

}  // namespace tetrisched
