// ASCII space-time schedule rendering, in the style of the paper's Fig 1:
// machines along the rows, time slices along the columns, one letter per
// job. Used by examples and debugging to visualize what the MILP chose.
//
//        t=0      8     16     24
//   M3  [ A  A  A  B  B  .  .  . ]
//   M2  [ A  A  A  B  B  .  .  . ]   rack 1
//   M1  [ C  C  C  C  C  C  .  . ]
//   M0  [ C  C  C  C  C  C  .  . ]   rack 0 (gpu)

#ifndef TETRISCHED_CORE_PLAN_RENDER_H_
#define TETRISCHED_CORE_PLAN_RENDER_H_

#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/time.h"

namespace tetrisched {

// One job's planned (or executed) slot in resource space-time.
struct PlanSlot {
  int64_t job = -1;
  PartitionId partition = -1;
  int count = 0;
  TimeRange interval{0, 0};
};

// Renders the slots onto a machines x time grid. Node rows are grouped by
// partition; time is quantized by `quantum` from `origin` for `num_slices`
// columns. Jobs are lettered 'A'.. in first-appearance order (wrapping
// through lowercase and digits); '.' marks idle cells. Slots that exceed a
// partition's capacity in any slice are reported inline as "OVERFLOW".
std::string RenderPlan(const Cluster& cluster,
                       const std::vector<PlanSlot>& slots, SimTime origin,
                       SimDuration quantum, int num_slices);

}  // namespace tetrisched

#endif  // TETRISCHED_CORE_PLAN_RENDER_H_
