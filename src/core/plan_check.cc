#include "src/core/plan_check.h"

#include <map>
#include <set>
#include <sstream>

namespace tetrisched {
namespace {

std::string Describe(PartitionId partition, int want, int have) {
  std::ostringstream out;
  out << "partition " << partition << " over-committed: plan wants " << want
      << " nodes, only " << have << " free";
  return out.str();
}

}  // namespace

std::vector<PlanViolation> ValidatePlan(
    const Cluster& cluster, const std::vector<const Job*>& pending,
    const std::vector<RunningHold>& running,
    const std::vector<Placement>& start_now) {
  std::vector<PlanViolation> violations;

  std::map<JobId, const Job*> pending_by_id;
  for (const Job* job : pending) {
    pending_by_id[job->id] = job;
  }

  // Free capacity right now: partition capacity minus running holds. Failed
  // nodes reach us as synthetic holds, so they are accounted for too.
  std::vector<int> free(cluster.num_partitions());
  for (const Partition& partition : cluster.partitions()) {
    free[partition.id] = partition.capacity();
  }
  for (const RunningHold& hold : running) {
    for (const auto& [partition, count] : hold.counts) {
      if (partition >= 0 && partition < cluster.num_partitions()) {
        free[partition] -= count;
      }
    }
  }

  std::set<JobId> placed;
  std::vector<int> wanted(cluster.num_partitions(), 0);
  for (const Placement& placement : start_now) {
    auto job_it = pending_by_id.find(placement.job);
    if (job_it == pending_by_id.end()) {
      violations.push_back({placement.job, "placement for a non-pending job"});
      continue;
    }
    if (!placed.insert(placement.job).second) {
      violations.push_back({placement.job, "job placed twice in one plan"});
      continue;
    }
    const Job& job = *job_it->second;

    bool counts_ok = true;
    for (const auto& [partition, count] : placement.counts) {
      if (partition < 0 || partition >= cluster.num_partitions()) {
        violations.push_back({placement.job, "partition id out of range"});
        counts_ok = false;
        break;
      }
      if (count < 0) {
        violations.push_back({placement.job, "negative partition count"});
        counts_ok = false;
        break;
      }
    }
    if (!counts_ok) {
      continue;
    }

    int total = placement.total_nodes();
    // Availability gangs legitimately place one task per rack (1..k);
    // everything else is an exact gang of k.
    bool gang_ok = job.type == JobType::kAvailability
                       ? total >= 1 && total <= job.k
                       : total == job.k;
    if (!gang_ok) {
      std::ostringstream out;
      out << "gang-size violation: placed " << total << " nodes for a k="
          << job.k << " " << ToString(job.type) << " job";
      violations.push_back({placement.job, out.str()});
      continue;
    }
    for (const auto& [partition, count] : placement.counts) {
      wanted[partition] += count;
    }
  }

  for (PartitionId partition = 0; partition < cluster.num_partitions();
       ++partition) {
    if (wanted[partition] > free[partition]) {
      violations.push_back(
          {-1, Describe(partition, wanted[partition], free[partition])});
    }
  }
  return violations;
}

}  // namespace tetrisched
