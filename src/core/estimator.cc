#include "src/core/estimator.h"

#include <cmath>

namespace tetrisched {
namespace {

// Power-of-two gang buckets: 1, 2, 3-4, 5-8, 9-16, ...
int GangBucket(int k) {
  int bucket = 0;
  int bound = 1;
  while (bound < k) {
    bound *= 2;
    ++bucket;
  }
  return bucket;
}

}  // namespace

RuntimeEstimator::RuntimeEstimator(EstimatorOptions options)
    : options_(options) {}

RuntimeEstimator::ClusterKey RuntimeEstimator::KeyFor(const Job& job,
                                                      bool preferred) const {
  ClusterKey key;
  key.type = job.type;
  key.gang_bucket = options_.bucket_gang_sizes ? GangBucket(job.k) : job.k;
  key.preferred = preferred;
  return key;
}

void RuntimeEstimator::Observe(const Job& job, bool preferred,
                               SimDuration runtime) {
  if (runtime <= 0) {
    return;
  }
  ClusterStats& stats = clusters_[KeyFor(job, preferred)];
  if (stats.observations == 0) {
    stats.ema_runtime = static_cast<double>(runtime);
  } else {
    stats.ema_runtime = options_.ema_alpha * static_cast<double>(runtime) +
                        (1.0 - options_.ema_alpha) * stats.ema_runtime;
  }
  ++stats.observations;
  ++total_observations_;
}

std::optional<SimDuration> RuntimeEstimator::Predict(const Job& job,
                                                     bool preferred) const {
  auto it = clusters_.find(KeyFor(job, preferred));
  if (it == clusters_.end() ||
      it->second.observations < options_.min_observations) {
    return std::nullopt;
  }
  return static_cast<SimDuration>(std::llround(it->second.ema_runtime));
}

}  // namespace tetrisched
