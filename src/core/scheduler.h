// The TetriSched scheduler core (paper §3.2).
//
// Every cycle the scheduler:
//   1. quantizes the plan-ahead window into a TimeGrid aligned to absolute
//      quantum boundaries (so option identities are stable for warm starts),
//   2. computes per-partition availability from the holds of running jobs,
//   3. expands every pending job into a STRL expression (STRL Generator),
//   4. aggregates them under SUM, compiles to MILP, and solves with the
//      previous cycle's surviving plan as the warm-start incumbent,
//   5. commits only the allocations chosen to start *now*; deferred choices
//      are remembered solely as next cycle's warm start (adaptive re-planning
//      — nothing future is ever locked in).
//
// Feature ablations used in the paper's §7.2 (Table 2):
//   * global=false        -> TetriSched-NG: per-job MILPs in priority order
//   * heterogeneity=false -> TetriSched-NH: whole-cluster, slow-runtime STRL
//   * plan_ahead==quantum -> TetriSched-NP: now-or-never (alsched-like)
//
// Graceful degradation (DESIGN.md §9): when a cycle's MILP ends with no
// usable incumbent (SolveStatus::kNoIncumbent) or the resulting plan fails
// pre-commit validation, the cycle is replanned by a heterogeneity-aware
// greedy first-fit pass over the same availability grid; if even that plan
// fails validation, the cycle schedules nothing and replans next period.

#ifndef TETRISCHED_CORE_SCHEDULER_H_
#define TETRISCHED_CORE_SCHEDULER_H_

#include <chrono>
#include <map>
#include <set>
#include <vector>

#include "src/cluster/availability.h"
#include "src/cluster/cluster.h"
#include "src/common/budget.h"
#include "src/core/policy.h"
#include "src/core/strl_gen.h"
#include "src/solver/milp.h"

namespace tetrisched {

struct TetriSchedConfig {
  SimDuration plan_ahead = 96;  // paper sweeps 0..144 s; ~100 s saturates
  SimDuration quantum = 8;
  bool global = true;
  bool heterogeneity_aware = true;
  SimDuration be_decay_horizon = 600;
  // Extension beyond the paper (its S7.2 names preemption as future work):
  // when an accepted SLO job is about to lose its last feasible start and
  // best-effort containers hold the capacity, preempt the youngest BE jobs
  // and re-solve the cycle once. Off by default to match the paper.
  bool enable_preemption = false;
  // Seed each cycle's MILP with the previous cycle's surviving plan
  // (paper §3.2.2). Disable only for the warm-start ablation bench.
  bool enable_warm_start = true;
  // Cycle deadline enforcement + adaptive plan-ahead (DESIGN.md §13).
  // budget.budget_seconds == 0 (default) keeps the whole subsystem inert.
  CycleBudgetOptions budget;
  // Independent plan certifier (certify.h): re-check every MILP incumbent
  // against the uncompiled model before commit; a reject degrades the cycle
  // to the greedy ladder rung. Read-only on healthy plans, so it never
  // changes a correct schedule. Independent of budget_seconds.
  bool certify_plans = true;
  MilpOptions milp = DefaultMilpOptions();

  static MilpOptions DefaultMilpOptions() {
    MilpOptions options;
    options.rel_gap = 0.10;  // paper §3.2.2: within 10% of optimal
    options.time_limit_seconds = 0.5;
    options.max_nodes = 2000;
    // Bail once the incumbent stops improving: scheduling bounds are loose
    // and only the solution itself is committed each cycle.
    options.stall_node_limit = 250;
    return options;
  }

  // Convenience constructors for the paper's ablated configurations.
  static TetriSchedConfig Full(SimDuration plan_ahead = 96);
  static TetriSchedConfig NoHeterogeneity(SimDuration plan_ahead = 96);
  static TetriSchedConfig NoGlobal(SimDuration plan_ahead = 96);
  static TetriSchedConfig NoPlanAhead();
};

class TetriScheduler : public SchedulerPolicy {
 public:
  TetriScheduler(const Cluster& cluster, TetriSchedConfig config);

  Decision OnCycle(SimTime now, const std::vector<const Job*>& pending,
                   const std::vector<RunningHold>& running) override;

  const char* name() const override;

  // Durable state = the warm-start plan (the only mutable policy state).
  // Round-tripping it through a crash keeps post-recovery solves on the
  // same incumbent trajectory as an uninterrupted run (DESIGN.md §11).
  std::string ExportDurableState() const override;
  void ImportDurableState(std::string_view blob) override;

  const TetriSchedConfig& config() const { return config_; }

  // Current adapted plan-ahead window / relative gap (== the configured
  // values unless the AIMD controller has shrunk them; exposed for tests).
  SimDuration effective_plan_ahead() const { return effective_plan_ahead_; }
  double effective_rel_gap() const { return effective_rel_gap_; }
  const AimdController& aimd() const { return aimd_; }

 private:
  // `planned` receives the ids of jobs given any allocation (now or
  // deferred) so rescue preemption can spot stranded SLO jobs.
  Decision GlobalCycle(SimTime now, const std::vector<const Job*>& pending,
                       AvailabilityGrid& availability,
                       std::set<JobId>* planned = nullptr);
  Decision GreedyCycle(SimTime now, const std::vector<const Job*>& pending,
                       AvailabilityGrid& availability);

  // Solver-free heterogeneity-aware first-fit over the availability grid:
  // the greedy rung of the degradation ladder. Only start-now placements
  // are produced (no deferral, no drops). Exposed for tests via OnCycle
  // with milp.time_limit_seconds = 0.
  std::vector<Placement> FirstFitPass(SimTime now,
                                      const std::vector<const Job*>& pending,
                                      AvailabilityGrid& availability) const;

  TimeGrid MakeGrid(SimTime now) const;
  AvailabilityGrid BuildAvailability(
      SimTime now, const std::vector<RunningHold>& running) const;

  // MILP options for this cycle's global solve: the configured options with
  // the adapted rel_gap and the wall-clock remaining in the cycle's solve
  // budget (when budgeted).
  MilpOptions CycleMilpOptions() const;
  // Maps the AIMD level onto effective_plan_ahead_ (quantized to whole
  // quanta, floored at one quantum = NP) and effective_rel_gap_.
  void ApplyAimdLevel();

  const Cluster& cluster_;
  TetriSchedConfig config_;
  StrlGenerator generator_;

  // Deferred choices from the previous cycle, keyed by stable leaf tags;
  // used only as the next solve's warm-start hint.
  LeafGrants previous_plan_;

  // Cycle budget / adaptive plan-ahead state (DESIGN.md §13).
  AimdController aimd_;
  SimDuration effective_plan_ahead_ = 0;
  double effective_rel_gap_ = 0.0;
  std::chrono::steady_clock::time_point cycle_start_{};
};

}  // namespace tetrisched

#endif  // TETRISCHED_CORE_SCHEDULER_H_
