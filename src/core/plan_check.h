// Pre-commit plan validation (defense in depth against solver/compiler
// bugs).
//
// Before a cycle's start-now placements are committed to the simulator's
// node ledger, the scheduler checks every one of them against invariants
// that no correct plan can violate: placements must name pending jobs and
// in-range partitions, respect gang-size semantics (exact gangs place
// exactly k nodes; availability gangs place 1..k), and in aggregate must
// fit inside the capacity left over by running jobs (including failed
// nodes, which appear as synthetic holds). A plan that fails any check is
// rejected wholesale and the scheduler drops to its greedy fallback rung
// instead of corrupting the ledger.

#ifndef TETRISCHED_CORE_PLAN_CHECK_H_
#define TETRISCHED_CORE_PLAN_CHECK_H_

#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/core/policy.h"

namespace tetrisched {

struct PlanViolation {
  JobId job = -1;  // offending placement's job; -1 for aggregate violations
  std::string reason;
};

// Checks `start_now` against `pending` (the only jobs a plan may start) and
// the capacity not held by `running`. Returns every violation found; an
// empty result means the plan is safe to commit.
std::vector<PlanViolation> ValidatePlan(
    const Cluster& cluster, const std::vector<const Job*>& pending,
    const std::vector<RunningHold>& running,
    const std::vector<Placement>& start_now);

}  // namespace tetrisched

#endif  // TETRISCHED_CORE_PLAN_CHECK_H_
