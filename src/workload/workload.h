// Workload generation (paper §6.2, §6.4, Table 1).
//
// The paper drives its experiments with Gridmix-3-style synthetic jobs whose
// parameter distributions come from the SWIM project (Facebook fb2009_2 for
// SLO jobs, Yahoo yahoo_1 for best-effort) plus purely synthetic GS MIX /
// GS HET mixes. The exact trace values are not redistributable, so this
// module reproduces the *qualitative shape* — lognormal runtimes and gang
// sizes with a heavy tail for production jobs, smaller best-effort jobs,
// Poisson arrivals calibrated to ~100% of cluster capacity — and exposes the
// same composition knobs as Table 1:
//
//   GR SLO  100% SLO /  0% BE   unconstrained          (fb2009_2-derived)
//   GR MIX   52% SLO / 48% BE   unconstrained          (fb2009_2 + yahoo_1)
//   GS MIX   70% SLO / 30% BE   unconstrained          (synthetic)
//   GS HET   75% SLO / 25% BE   SLO: 50% GPU, 50% MPI  (synthetic)

#ifndef TETRISCHED_WORKLOAD_WORKLOAD_H_
#define TETRISCHED_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/core/job.h"

namespace tetrisched {

enum class WorkloadKind {
  kGrSlo,
  kGrMix,
  kGsMix,
  kGsHet,
};

const char* ToString(WorkloadKind kind);

// Arrival process shape (TR §: "varied cluster loads, inter-arrival
// burstiness"). All patterns are calibrated to the same average rate.
enum class ArrivalPattern {
  kPoisson,  // exponential inter-arrival gaps
  kBursty,   // geometric bursts of back-to-back arrivals, long gaps between
  kDiurnal,  // sinusoidally modulated rate (daily load wave)
};

const char* ToString(ArrivalPattern pattern);

struct WorkloadParams {
  WorkloadKind kind = WorkloadKind::kGsMix;
  uint64_t seed = 1;
  int num_jobs = 80;

  // Offered load as a fraction of cluster capacity; the paper adjusts load
  // to utilize "near 100% of the available cluster capacity".
  double target_load = 1.0;

  // Runtime estimate error applied to every job: estimates = actual*(1+err).
  double estimate_error = 0.0;

  // Deadline slack: deadline = submit + slack * preferred_runtime, with
  // slack drawn uniformly from [slack_min, slack_max].
  double slack_min = 2.0;
  double slack_max = 4.0;

  // Runtime penalty for GPU/MPI jobs placed off their preference (paper
  // Fig 1 uses 3 vs 2 time units = 1.5x).
  double slowdown = 1.5;

  // Arrival process; kBursty uses `burst_factor` as the mean burst size
  // (1 = Poisson-like), kDiurnal modulates the rate by +/-80% over
  // `diurnal_period` seconds.
  ArrivalPattern arrivals = ArrivalPattern::kPoisson;
  double burst_factor = 4.0;
  SimDuration diurnal_period = 2000;
};

// Composition of one Table-1 workload (fractions in [0,1]).
struct WorkloadComposition {
  double slo_fraction = 1.0;
  double gpu_fraction = 0.0;  // of SLO jobs
  double mpi_fraction = 0.0;  // of SLO jobs
};

WorkloadComposition CompositionFor(WorkloadKind kind);

// Generates `params.num_jobs` jobs sorted by submit time. Jobs carry ground
// truth runtimes; Rayon admission (slo_class/reservation) is NOT yet applied
// — run them through AdmitWorkload or the simulator's setup.
std::vector<Job> GenerateWorkload(const Cluster& cluster,
                                  const WorkloadParams& params);

// Human-readable summary used by the Table-1 bench.
std::string DescribeWorkload(const std::vector<Job>& jobs);

}  // namespace tetrisched

#endif  // TETRISCHED_WORKLOAD_WORKLOAD_H_
