#include "src/workload/workload.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

#include "src/common/rng.h"

namespace tetrisched {
namespace {

// Qualitative SWIM-derived shapes: production (fb2009_2-like) jobs are
// larger and longer with a heavy lognormal tail; best-effort (yahoo_1-like)
// jobs are small and short. GS synthetic classes are tighter around their
// means to isolate scheduling effects (paper §6.4).
struct ClassShape {
  double runtime_log_mean;
  double runtime_log_sigma;
  SimDuration runtime_min;
  SimDuration runtime_max;
  double gang_log_mean;
  double gang_log_sigma;
  int gang_min;
};

constexpr ClassShape kProductionSlo = {std::log(110.0), 0.55, 30,  600,
                                       std::log(4.0),   0.55, 2};
constexpr ClassShape kTraceBestEffort = {std::log(45.0), 0.50, 10, 240,
                                         std::log(2.0),  0.50, 1};
constexpr ClassShape kSyntheticSlo = {std::log(90.0), 0.35, 30,  360,
                                      std::log(3.5),  0.45, 2};
constexpr ClassShape kSyntheticBestEffort = {std::log(40.0), 0.35, 10, 150,
                                             std::log(2.0),  0.40, 1};

SimDuration DrawRuntime(Rng& rng, const ClassShape& shape) {
  double runtime = rng.Lognormal(shape.runtime_log_mean,
                                 shape.runtime_log_sigma);
  return std::clamp<SimDuration>(static_cast<SimDuration>(std::llround(runtime)),
                                 shape.runtime_min, shape.runtime_max);
}

int DrawGang(Rng& rng, const ClassShape& shape, int gang_max) {
  double gang = rng.Lognormal(shape.gang_log_mean, shape.gang_log_sigma);
  return std::clamp(static_cast<int>(std::llround(gang)), shape.gang_min,
                    gang_max);
}

}  // namespace

const char* ToString(ArrivalPattern pattern) {
  switch (pattern) {
    case ArrivalPattern::kPoisson:
      return "poisson";
    case ArrivalPattern::kBursty:
      return "bursty";
    case ArrivalPattern::kDiurnal:
      return "diurnal";
  }
  return "?";
}

const char* ToString(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kGrSlo:
      return "GR SLO";
    case WorkloadKind::kGrMix:
      return "GR MIX";
    case WorkloadKind::kGsMix:
      return "GS MIX";
    case WorkloadKind::kGsHet:
      return "GS HET";
  }
  return "?";
}

WorkloadComposition CompositionFor(WorkloadKind kind) {
  // Paper Table 1.
  switch (kind) {
    case WorkloadKind::kGrSlo:
      return {1.00, 0.0, 0.0};
    case WorkloadKind::kGrMix:
      return {0.52, 0.0, 0.0};
    case WorkloadKind::kGsMix:
      return {0.70, 0.0, 0.0};
    case WorkloadKind::kGsHet:
      return {0.75, 0.5, 0.5};
  }
  return {1.0, 0.0, 0.0};
}

std::vector<Job> GenerateWorkload(const Cluster& cluster,
                                  const WorkloadParams& params) {
  Rng rng(params.seed);
  WorkloadComposition composition = CompositionFor(params.kind);
  const bool trace_derived = params.kind == WorkloadKind::kGrSlo ||
                             params.kind == WorkloadKind::kGrMix;
  const ClassShape& slo_shape =
      trace_derived ? kProductionSlo : kSyntheticSlo;
  const ClassShape& be_shape =
      trace_derived ? kTraceBestEffort : kSyntheticBestEffort;

  // Largest gang that can still be placed on preferred resources.
  int max_rack = 0;
  for (RackId rack = 0; rack < cluster.num_racks(); ++rack) {
    max_rack = std::max(max_rack, cluster.CapacityOf(cluster.RackPartitions(rack)));
  }
  int gpu_capacity = cluster.CapacityOf(cluster.GpuPartitions());
  int general_gang_max = std::max(1, cluster.num_nodes() / 3);

  std::vector<Job> jobs;
  jobs.reserve(params.num_jobs);
  double total_work = 0.0;  // node-seconds
  for (int i = 0; i < params.num_jobs; ++i) {
    Job job;
    job.id = i;
    job.estimate_error = params.estimate_error;
    bool slo = rng.Bernoulli(composition.slo_fraction);
    const ClassShape& shape = slo ? slo_shape : be_shape;
    job.wants_reservation = slo;
    job.actual_runtime = DrawRuntime(rng, shape);
    job.k = DrawGang(rng, shape, general_gang_max);
    job.slowdown = 1.0;

    if (slo) {
      double type_draw = rng.UniformReal(0.0, 1.0);
      if (type_draw < composition.gpu_fraction) {
        job.type = JobType::kGpu;
        job.slowdown = params.slowdown;
        job.k = std::min(job.k, std::max(1, gpu_capacity / 2));
      } else if (type_draw < composition.gpu_fraction + composition.mpi_fraction) {
        job.type = JobType::kMpi;
        job.slowdown = params.slowdown;
        job.k = std::min(job.k, std::max(1, max_rack));
      }
      double slack = rng.UniformReal(params.slack_min, params.slack_max);
      job.deadline = static_cast<SimTime>(
          std::llround(slack * static_cast<double>(job.actual_runtime)));
      // Deadline is relative here; made absolute after arrivals are drawn.
    }
    total_work += static_cast<double>(job.k) *
                  static_cast<double>(job.actual_runtime);
    jobs.push_back(job);
  }

  // Arrivals calibrated so offered work ~= target_load * capacity; the
  // pattern shapes gaps around the same mean rate.
  double makespan =
      total_work / (params.target_load * cluster.num_nodes());
  double mean_gap = makespan / std::max(1, params.num_jobs);
  SimTime clock = 0;
  int burst_remaining = 0;
  for (Job& job : jobs) {
    double gap = 0.0;
    switch (params.arrivals) {
      case ArrivalPattern::kPoisson:
        gap = rng.Exponential(mean_gap);
        break;
      case ArrivalPattern::kBursty: {
        if (burst_remaining > 0) {
          --burst_remaining;
          gap = 1.0;  // back-to-back within a burst
        } else {
          // Mean burst size B; inter-burst gap stretched by B to keep the
          // average arrival rate unchanged.
          double b = std::max(1.0, params.burst_factor);
          while (rng.Bernoulli(1.0 - 1.0 / b)) {
            ++burst_remaining;
          }
          gap = rng.Exponential(mean_gap * b);
        }
        break;
      }
      case ArrivalPattern::kDiurnal: {
        // Thinning: candidates at peak rate (1.8x mean), accepted with the
        // instantaneous modulated rate.
        double peak_gap = mean_gap / 1.8;
        double t = static_cast<double>(clock);
        do {
          gap += rng.Exponential(peak_gap);
          t = static_cast<double>(clock) + gap;
        } while (!rng.Bernoulli(
            (1.0 + 0.8 * std::sin(2.0 * 3.14159265358979 * t /
                                  static_cast<double>(params.diurnal_period))) /
            1.8));
        break;
      }
    }
    clock += static_cast<SimTime>(std::llround(gap));
    job.submit = clock;
    if (job.deadline != kTimeNever) {
      job.deadline += job.submit;
    }
  }
  return jobs;
}

std::string DescribeWorkload(const std::vector<Job>& jobs) {
  int slo = 0, be = 0, gpu = 0, mpi = 0, unconstrained = 0;
  double work = 0.0;
  SimTime horizon = 0;
  for (const Job& job : jobs) {
    (job.wants_reservation ? slo : be)++;
    switch (job.type) {
      case JobType::kGpu:
        ++gpu;
        break;
      case JobType::kMpi:
        ++mpi;
        break;
      default:
        ++unconstrained;
        break;
    }
    work += static_cast<double>(job.k) * job.actual_runtime;
    horizon = std::max(horizon, job.submit);
  }
  std::ostringstream out;
  out << jobs.size() << " jobs (" << slo << " SLO / " << be
      << " BE; " << unconstrained << " unconstrained, " << gpu << " gpu, "
      << mpi << " mpi), " << static_cast<long long>(work)
      << " node-seconds of work, last arrival at t=" << horizon;
  return out.str();
}

}  // namespace tetrisched
