#include "src/cluster/ledger.h"

#include <cassert>

namespace tetrisched {

NodeLedger::NodeLedger(const Cluster& cluster) : cluster_(cluster) {
  free_.assign(cluster.num_nodes(), true);
  free_count_.assign(cluster.num_partitions(), 0);
  for (const Partition& partition : cluster.partitions()) {
    free_count_[partition.id] = partition.capacity();
  }
  total_free_ = cluster.num_nodes();
}

std::vector<NodeId> NodeLedger::Acquire(PartitionId partition, int count) {
  assert(count <= free_count_[partition]);
  std::vector<NodeId> acquired;
  acquired.reserve(count);
  for (NodeId node : cluster_.partition(partition).nodes) {
    if (static_cast<int>(acquired.size()) == count) {
      break;
    }
    if (free_[node]) {
      free_[node] = false;
      acquired.push_back(node);
    }
  }
  assert(static_cast<int>(acquired.size()) == count);
  free_count_[partition] -= count;
  total_free_ -= count;
  return acquired;
}

std::vector<NodeId> NodeLedger::AcquireAvoiding(PartitionId partition,
                                                int count,
                                                const std::vector<char>& avoid) {
  std::vector<NodeId> acquired;
  acquired.reserve(count);
  for (NodeId node : cluster_.partition(partition).nodes) {
    if (static_cast<int>(acquired.size()) == count) {
      break;
    }
    if (free_[node] && !avoid[node]) {
      free_[node] = false;
      acquired.push_back(node);
    }
  }
  free_count_[partition] -= static_cast<int>(acquired.size());
  total_free_ -= static_cast<int>(acquired.size());
  return acquired;
}

int NodeLedger::FreeAvoiding(PartitionId partition,
                             const std::vector<char>& avoid) const {
  int free = 0;
  for (NodeId node : cluster_.partition(partition).nodes) {
    if (free_[node] && !avoid[node]) {
      ++free;
    }
  }
  return free;
}

std::vector<NodeId> NodeLedger::AcquireAnywhere(int count) {
  assert(count <= total_free_);
  std::vector<NodeId> acquired;
  acquired.reserve(count);
  for (const Partition& partition : cluster_.partitions()) {
    int want = count - static_cast<int>(acquired.size());
    if (want == 0) {
      break;
    }
    int take = std::min(want, free_count_[partition.id]);
    if (take == 0) {
      continue;
    }
    std::vector<NodeId> got = Acquire(partition.id, take);
    acquired.insert(acquired.end(), got.begin(), got.end());
  }
  assert(static_cast<int>(acquired.size()) == count);
  return acquired;
}

void NodeLedger::TakeSpecific(NodeId node) {
  assert(free_[node]);
  free_[node] = false;
  --free_count_[cluster_.partition_of(node)];
  --total_free_;
}

void NodeLedger::ReturnSpecific(NodeId node) {
  assert(!free_[node]);
  free_[node] = true;
  ++free_count_[cluster_.partition_of(node)];
  ++total_free_;
}

void NodeLedger::Release(const std::vector<NodeId>& nodes) {
  for (NodeId node : nodes) {
    assert(!free_[node]);
    free_[node] = true;
    ++free_count_[cluster_.partition_of(node)];
    ++total_free_;
  }
}

}  // namespace tetrisched
