#include "src/cluster/availability.h"

#include <algorithm>
#include <sstream>

namespace tetrisched {

std::pair<int, int> TimeGrid::ClippedSliceRange(SimTime s,
                                                SimDuration dur) const {
  SimTime end = s + dur;
  if (end <= start || s >= horizon_end() || dur <= 0) {
    return {0, 0};
  }
  SimTime clipped_start = std::max(s, start);
  SimTime clipped_end = std::min(end, horizon_end());
  int first = static_cast<int>((clipped_start - start) / quantum);
  int last = static_cast<int>((clipped_end - start + quantum - 1) / quantum);
  return {first, last};
}

AvailabilityGrid::AvailabilityGrid(const Cluster& cluster, TimeGrid grid)
    : grid_(grid) {
  capacity_.resize(cluster.num_partitions());
  for (const Partition& partition : cluster.partitions()) {
    capacity_[partition.id].assign(grid_.num_slices, partition.capacity());
  }
}

void AvailabilityGrid::Reduce(PartitionId partition, TimeRange range,
                              int count) {
  auto [first, last] = grid_.ClippedSliceRange(range.start, range.length());
  for (int slice = first; slice < last; ++slice) {
    capacity_[partition][slice] -= count;
  }
}

bool AvailabilityGrid::CanFit(PartitionId partition, TimeRange range,
                              int count) const {
  auto [first, last] = grid_.ClippedSliceRange(range.start, range.length());
  for (int slice = first; slice < last; ++slice) {
    if (capacity_[partition][slice] < count) {
      return false;
    }
  }
  return true;
}

std::string AvailabilityGrid::DebugString() const {
  std::ostringstream out;
  for (size_t p = 0; p < capacity_.size(); ++p) {
    out << "partition " << p << ":";
    for (int c : capacity_[p]) {
      out << " " << c;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace tetrisched
