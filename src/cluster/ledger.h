// Node-level allocation ledger used by the simulator.
//
// The MILP operates on partition counts; the simulator converts a chosen
// (partition -> count) allocation into concrete node assignments (the paper's
// "placement": mapping tasks to machines) and tracks node occupancy.

#ifndef TETRISCHED_CLUSTER_LEDGER_H_
#define TETRISCHED_CLUSTER_LEDGER_H_

#include <vector>

#include "src/cluster/cluster.h"

namespace tetrisched {

class NodeLedger {
 public:
  explicit NodeLedger(const Cluster& cluster);

  int free_in_partition(PartitionId partition) const {
    return free_count_[partition];
  }
  int total_free() const { return total_free_; }
  bool is_free(NodeId node) const { return free_[node]; }

  // Acquires `count` free nodes from `partition` (lowest ids first, for
  // determinism). Returns the nodes; requires count <= free_in_partition.
  std::vector<NodeId> Acquire(PartitionId partition, int count);

  // Acquire that skips nodes flagged in `avoid` (indexed by NodeId). Used
  // under a lossy control plane: a believed-down node may be physically
  // free, but the scheduler must not place onto capacity it cannot reach.
  // Returns fewer than `count` nodes when the eligible pool runs dry — the
  // caller treats the shortfall as a stale-view bounce and releases any
  // partial take.
  std::vector<NodeId> AcquireAvoiding(PartitionId partition, int count,
                                      const std::vector<char>& avoid);

  // Free nodes of `partition` outside `avoid` (the believed-free count).
  int FreeAvoiding(PartitionId partition, const std::vector<char>& avoid) const;

  // Acquires `count` free nodes from anywhere (partition order). Used by the
  // heterogeneity-unaware baseline. Requires count <= total_free().
  std::vector<NodeId> AcquireAnywhere(int count);

  void Release(const std::vector<NodeId>& nodes);

  // Takes one specific free node out of circulation (node failure) /
  // returns it (recovery). Requires the node to be free / out.
  void TakeSpecific(NodeId node);
  void ReturnSpecific(NodeId node);

 private:
  const Cluster& cluster_;
  std::vector<bool> free_;
  std::vector<int> free_count_;  // per partition
  int total_free_ = 0;
};

}  // namespace tetrisched

#endif  // TETRISCHED_CLUSTER_LEDGER_H_
