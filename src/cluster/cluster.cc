#include "src/cluster/cluster.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <tuple>
#include <sstream>

namespace tetrisched {

Cluster::Cluster(std::vector<NodeSpec> nodes) : nodes_(std::move(nodes)) {
  // Normalize ids to positions.
  for (size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].id = static_cast<NodeId>(i);
  }
  node_partition_.assign(nodes_.size(), -1);

  // Group nodes by attribute signature (rack, gpu, tag) into partitions.
  std::map<std::tuple<RackId, bool, int>, PartitionId> signature_to_partition;
  for (const NodeSpec& node : nodes_) {
    auto signature = std::make_tuple(node.rack, node.has_gpu, node.attr_tag);
    auto [it, inserted] = signature_to_partition.try_emplace(
        signature, static_cast<PartitionId>(partitions_.size()));
    if (inserted) {
      Partition partition;
      partition.id = it->second;
      partition.rack = node.rack;
      partition.has_gpu = node.has_gpu;
      partition.attr_tag = node.attr_tag;
      partitions_.push_back(std::move(partition));
    }
    partitions_[it->second].nodes.push_back(node.id);
    node_partition_[node.id] = it->second;
    num_racks_ = std::max(num_racks_, node.rack + 1);
    if (node.has_gpu) {
      ++num_gpu_nodes_;
    }
  }
}

PartitionSet Cluster::AllPartitions() const {
  PartitionSet set;
  set.reserve(partitions_.size());
  for (const Partition& partition : partitions_) {
    set.push_back(partition.id);
  }
  return set;
}

PartitionSet Cluster::GpuPartitions() const {
  PartitionSet set;
  for (const Partition& partition : partitions_) {
    if (partition.has_gpu) {
      set.push_back(partition.id);
    }
  }
  return set;
}

PartitionSet Cluster::TaggedPartitions(int attr_tag) const {
  PartitionSet set;
  for (const Partition& partition : partitions_) {
    if (partition.attr_tag == attr_tag) {
      set.push_back(partition.id);
    }
  }
  return set;
}

PartitionSet Cluster::RackPartitions(RackId rack) const {
  PartitionSet set;
  for (const Partition& partition : partitions_) {
    if (partition.rack == rack) {
      set.push_back(partition.id);
    }
  }
  return set;
}

int Cluster::CapacityOf(const PartitionSet& set) const {
  int total = 0;
  for (PartitionId id : set) {
    total += partitions_[id].capacity();
  }
  return total;
}

std::string Cluster::DebugString() const {
  std::ostringstream out;
  out << "cluster: " << num_nodes() << " nodes, " << num_racks_ << " racks, "
      << num_gpu_nodes_ << " gpu nodes, " << partitions_.size()
      << " partitions\n";
  for (const Partition& partition : partitions_) {
    out << "  partition " << partition.id << ": rack " << partition.rack
        << (partition.has_gpu ? " [gpu]" : "") << " x"
        << partition.capacity() << "\n";
  }
  return out.str();
}

Cluster MakeUniformCluster(int racks, int nodes_per_rack, int gpu_racks) {
  assert(racks > 0 && nodes_per_rack > 0 && gpu_racks <= racks);
  std::vector<NodeSpec> nodes;
  nodes.reserve(static_cast<size_t>(racks) * nodes_per_rack);
  for (int rack = 0; rack < racks; ++rack) {
    for (int i = 0; i < nodes_per_rack; ++i) {
      NodeSpec node;
      node.rack = rack;
      node.has_gpu = rack < gpu_racks;
      nodes.push_back(node);
    }
  }
  return Cluster(std::move(nodes));
}

}  // namespace tetrisched
