// Quantized resource availability over the plan-ahead window.
//
// The scheduler discretizes the plan-ahead horizon into fixed-width slices
// (paper §5: "we discretize time and track integral resource capacity in each
// equivalence set for each discretized time slice"). AvailabilityGrid holds
// avail(partition, slice): full partition capacity minus the holds of already
// running jobs (whose expected completion times come from — possibly
// adjusted — runtime estimates).

#ifndef TETRISCHED_CLUSTER_AVAILABILITY_H_
#define TETRISCHED_CLUSTER_AVAILABILITY_H_

#include <string>
#include <utility>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/time.h"

namespace tetrisched {

// The quantized plan-ahead window: slices [start + i*quantum,
// start + (i+1)*quantum) for i in [0, num_slices).
struct TimeGrid {
  SimTime start = 0;
  SimDuration quantum = 1;
  int num_slices = 1;

  SimTime horizon_end() const { return start + quantum * num_slices; }
  SimTime SliceStart(int slice) const { return start + quantum * slice; }

  // Slice index containing `t` (may be out of [0, num_slices)).
  int SliceOf(SimTime t) const {
    SimTime delta = t - start;
    return static_cast<int>(delta >= 0 ? delta / quantum
                                       : (delta - quantum + 1) / quantum);
  }

  // Slices overlapped by [s, s+dur), clipped to the grid; returns a
  // half-open [first, last) pair (empty if no overlap).
  std::pair<int, int> ClippedSliceRange(SimTime s, SimDuration dur) const;
};

class AvailabilityGrid {
 public:
  AvailabilityGrid(const Cluster& cluster, TimeGrid grid);

  const TimeGrid& grid() const { return grid_; }
  int num_partitions() const { return static_cast<int>(capacity_.size()); }

  int avail(PartitionId partition, int slice) const {
    return capacity_[partition][slice];
  }

  // Subtracts `count` nodes of `partition` over [range.start, range.end),
  // clipped to the grid. Availability may go negative only if the caller
  // over-commits; Reduce itself does not check.
  void Reduce(PartitionId partition, TimeRange range, int count);

  // True iff `count` nodes of `partition` are free over the whole range.
  bool CanFit(PartitionId partition, TimeRange range, int count) const;

  std::string DebugString() const;

 private:
  TimeGrid grid_;
  // capacity_[partition][slice]
  std::vector<std::vector<int>> capacity_;
};

}  // namespace tetrisched

#endif  // TETRISCHED_CLUSTER_AVAILABILITY_H_
