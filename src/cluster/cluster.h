// Cluster resource model: nodes, racks, static attributes, and the
// equivalence-set partitioning that underpins STRL and the MILP compiler.
//
// TetriSched's key complexity reduction (paper §4.2, §5, TR Appendix A) is to
// group machines that are interchangeable from every job's point of view into
// *partitions* — maximal sets of nodes with an identical attribute signature
// (same rack, same static attributes). STRL leaves then name partition sets
// and counts instead of enumerating machine k-tuples, and the MILP tracks one
// integer variable per (leaf, partition) instead of one per machine.

#ifndef TETRISCHED_CLUSTER_CLUSTER_H_
#define TETRISCHED_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tetrisched {

using NodeId = int32_t;
using PartitionId = int32_t;
using RackId = int32_t;

// Static description of one machine. `attr_tag` is an opaque user-defined
// attribute class (dataset replica group, kernel version, ...) that
// participates in the partition signature: nodes with different tags are
// never considered interchangeable.
struct NodeSpec {
  NodeId id = -1;
  RackId rack = 0;
  bool has_gpu = false;
  int attr_tag = 0;
};

// A maximal set of nodes with an identical attribute signature.
struct Partition {
  PartitionId id = -1;
  RackId rack = 0;
  bool has_gpu = false;
  int attr_tag = 0;
  std::vector<NodeId> nodes;

  int capacity() const { return static_cast<int>(nodes.size()); }
};

// A set of partitions a STRL leaf may draw from (an equivalence set).
using PartitionSet = std::vector<PartitionId>;

// Immutable cluster topology plus its partitioning.
class Cluster {
 public:
  explicit Cluster(std::vector<NodeSpec> nodes);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_partitions() const { return static_cast<int>(partitions_.size()); }
  int num_racks() const { return num_racks_; }
  int num_gpu_nodes() const { return num_gpu_nodes_; }

  const NodeSpec& node(NodeId id) const { return nodes_[id]; }
  const Partition& partition(PartitionId id) const { return partitions_[id]; }
  const std::vector<Partition>& partitions() const { return partitions_; }
  PartitionId partition_of(NodeId id) const { return node_partition_[id]; }

  // Equivalence-set helpers used by the STRL generator.
  PartitionSet AllPartitions() const;
  PartitionSet GpuPartitions() const;
  PartitionSet RackPartitions(RackId rack) const;
  PartitionSet TaggedPartitions(int attr_tag) const;

  // Total node count across a partition set.
  int CapacityOf(const PartitionSet& set) const;

  std::string DebugString() const;

 private:
  std::vector<NodeSpec> nodes_;
  std::vector<Partition> partitions_;
  std::vector<PartitionId> node_partition_;
  int num_racks_ = 0;
  int num_gpu_nodes_ = 0;
};

// Convenience builder: `racks` racks of `nodes_per_rack` nodes each; the
// first `gpu_racks` racks are GPU-equipped. Mirrors the paper's testbeds
// (8 equal racks; rack-granular GPU labeling as in Fig 1).
Cluster MakeUniformCluster(int racks, int nodes_per_rack, int gpu_racks = 0);

}  // namespace tetrisched

#endif  // TETRISCHED_CLUSTER_CLUSTER_H_
