// Thin POSIX socket helpers for the service layer: RAII fd ownership,
// non-blocking setup, and the three transports tetrischedd speaks —
// loopback TCP, Unix domain sockets, and pre-connected socketpairs (the
// deterministic in-process test transport).
//
// All functions return -1 / empty UniqueFd on failure and log a warning;
// callers treat that as "this endpoint is unavailable", never as fatal.

#ifndef TETRISCHED_NET_SOCKET_H_
#define TETRISCHED_NET_SOCKET_H_

#include <string>
#include <utility>

namespace tetrisched {

// Owns one file descriptor; closes it on destruction.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset(other.Release());
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Reset(int fd = -1);

 private:
  int fd_ = -1;
};

// Marks `fd` non-blocking (and close-on-exec). Returns false on failure.
bool SetNonBlocking(int fd);

// Listening socket on 127.0.0.1:`port` (port 0 = kernel-assigned). On
// success *bound_port receives the actual port. SO_REUSEADDR is set.
UniqueFd ListenTcpLoopback(int port, int* bound_port);

// Listening Unix domain socket at `path` (an existing socket file at the
// path is unlinked first — the daemon owns its socket path).
UniqueFd ListenUnix(const std::string& path);

// Blocking connects (the client library is deliberately synchronous).
UniqueFd ConnectTcpLoopback(int port);
UniqueFd ConnectUnix(const std::string& path);

// AF_UNIX stream socketpair; first is conventionally the daemon end.
std::pair<UniqueFd, UniqueFd> MakeSocketPair();

// Accepts one pending connection from a listening socket; invalid UniqueFd
// when none is pending (EAGAIN) or on error.
UniqueFd AcceptOne(int listen_fd);

}  // namespace tetrisched

#endif  // TETRISCHED_NET_SOCKET_H_
