#include "src/net/event_loop.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/logging.h"

namespace tetrisched {

EventLoop::EventLoop() {
  int fds[2] = {-1, -1};
  if (::pipe(fds) == 0) {
    wake_read_.Reset(fds[0]);
    wake_write_.Reset(fds[1]);
    SetNonBlocking(wake_read_.get());
    SetNonBlocking(wake_write_.get());
  } else {
    TETRI_LOG(kWarning) << "pipe: " << std::strerror(errno);
  }
}

EventLoop::~EventLoop() = default;

void EventLoop::Add(int fd, std::function<void(uint32_t)> callback) {
  handlers_[fd] = Handler{std::move(callback), false};
}

void EventLoop::Remove(int fd) { handlers_.erase(fd); }

void EventLoop::SetWriteInterest(int fd, bool enabled) {
  auto it = handlers_.find(fd);
  if (it != handlers_.end()) {
    it->second.want_write = enabled;
  }
}

void EventLoop::DrainWakePipe() {
  char buf[64];
  while (::read(wake_read_.get(), buf, sizeof(buf)) > 0) {
  }
}

void EventLoop::Wakeup() {
  if (wake_write_.valid()) {
    char byte = 1;
    // Best effort: a full pipe already guarantees a pending wakeup.
    [[maybe_unused]] ssize_t n = ::write(wake_write_.get(), &byte, 1);
  }
}

int EventLoop::PollOnce(int timeout_ms) {
  std::vector<pollfd> fds;
  fds.reserve(handlers_.size() + 1);
  if (wake_read_.valid()) {
    fds.push_back(pollfd{wake_read_.get(), POLLIN, 0});
  }
  for (const auto& [fd, handler] : handlers_) {
    short events = POLLIN;
    if (handler.want_write) {
      events |= POLLOUT;
    }
    fds.push_back(pollfd{fd, events, 0});
  }
  int rc = ::poll(fds.data(), fds.size(), timeout_ms);
  if (rc < 0) {
    if (errno != EINTR) {
      TETRI_LOG(kWarning) << "poll: " << std::strerror(errno);
    }
    return 0;
  }
  int dispatched = 0;
  for (const pollfd& p : fds) {
    if (p.revents == 0) {
      continue;
    }
    if (wake_read_.valid() && p.fd == wake_read_.get()) {
      DrainWakePipe();
      continue;
    }
    // The handler may have been removed by an earlier callback this pass.
    auto it = handlers_.find(p.fd);
    if (it == handlers_.end()) {
      continue;
    }
    uint32_t mask = 0;
    if (p.revents & POLLIN) {
      mask |= kReadable;
    }
    if (p.revents & POLLOUT) {
      mask |= kWritable;
    }
    if (p.revents & (POLLERR | POLLHUP | POLLNVAL)) {
      mask |= kError;
    }
    // Copy: the callback may Remove(fd) and invalidate the iterator.
    std::function<void(uint32_t)> callback = it->second.callback;
    callback(mask);
    ++dispatched;
  }
  return dispatched;
}

FramedConnection::FramedConnection(UniqueFd fd, size_t max_frame_bytes,
                                   int64_t connection_id)
    : fd_(std::move(fd)),
      connection_id_(connection_id),
      decoder_(max_frame_bytes) {
  SetNonBlocking(fd_.get());
  Touch();
}

bool FramedConnection::ReadInto(std::vector<std::string>* frames) {
  if (closed_) {
    return false;
  }
  char buf[16384];
  bool peer_open = true;
  for (;;) {
    ssize_t n = ::read(fd_.get(), buf, sizeof(buf));
    if (n > 0) {
      Touch();
      decoder_.Feed(std::string_view(buf, static_cast<size_t>(n)));
      if (static_cast<size_t>(n) < sizeof(buf)) {
        break;  // drained what was there
      }
      continue;
    }
    if (n == 0) {
      peer_open = false;  // orderly shutdown
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    if (errno == EINTR) {
      continue;
    }
    peer_open = false;
    break;
  }
  std::string payload;
  while (decoder_.Next(&payload) == FrameDecoder::Result::kFrame) {
    frames->push_back(std::move(payload));
    payload.clear();
  }
  if (!peer_open) {
    closed_ = true;
  }
  return peer_open;
}

bool FramedConnection::SendFrame(std::string_view payload) {
  if (closed_) {
    return false;
  }
  write_buffer_.append(EncodeNetFrame(payload));
  return FlushWrites();
}

bool FramedConnection::FlushWrites() {
  if (closed_) {
    return false;
  }
  while (write_pos_ < write_buffer_.size()) {
    ssize_t n = ::write(fd_.get(), write_buffer_.data() + write_pos_,
                        write_buffer_.size() - write_pos_);
    if (n > 0) {
      Touch();
      write_pos_ += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;  // kernel buffer full; caller arms write interest
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    closed_ = true;
    return false;
  }
  if (write_pos_ == write_buffer_.size()) {
    write_buffer_.clear();
    write_pos_ = 0;
  } else if (write_pos_ > (1u << 16)) {
    write_buffer_.erase(0, write_pos_);
    write_pos_ = 0;
  }
  return true;
}

}  // namespace tetrisched
