// Length-prefixed framing for the tetrischedd wire protocol (DESIGN.md §16).
//
// A frame is:
//
//   frame := [4-byte magic "TSF1"][u32 payload_len][payload bytes]
//
// (integers little-endian). Payloads are opaque to this layer; the service
// puts one RFC-8259 JSON document (src/common/json.h) in each.
//
// The decoder is incremental and hostile-input safe:
//   * a hard payload-size cap is enforced *from the header alone* — an
//     oversized length prefix is rejected without ever allocating or
//     reserving the claimed size (the classic length-prefix DoS),
//   * a bad magic, or a frame rejected for size, switches the decoder into
//     resync mode: it scans forward for the next magic occurrence, so one
//     corrupt frame (bit-flipped prefix, truncated tail from a crashed
//     peer, garbage injected mid-stream) costs the frames it overlaps, not
//     the connection,
//   * buffered-but-unparsed bytes are bounded by cap + header size, so a
//     peer that never completes a frame cannot grow the buffer without
//     bound.
//
// Decoder statistics (frames, resyncs, oversized rejects, skipped bytes)
// feed the tetrisched_net_* instruments and the fuzz tests.

#ifndef TETRISCHED_NET_FRAME_H_
#define TETRISCHED_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace tetrisched {

// 4-byte frame magic, chosen to be unlikely in JSON payload text.
inline constexpr char kFrameMagic[4] = {'T', 'S', 'F', '1'};
inline constexpr size_t kFrameHeaderBytes = 8;  // magic + u32 length

// Default hard cap on one frame's payload. Large enough for any metrics or
// explain response, small enough that a hostile length prefix cannot cause
// a meaningful allocation.
inline constexpr size_t kDefaultMaxFrameBytes = 1 << 20;  // 1 MiB

// Wraps `payload` in a frame. The caller is responsible for keeping
// payloads under the receiver's cap.
std::string EncodeNetFrame(std::string_view payload);

class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame_bytes = kDefaultMaxFrameBytes);

  // Appends raw stream bytes to the internal buffer.
  void Feed(std::string_view bytes);

  enum class Result {
    kFrame,     // *payload holds one complete payload
    kNeedMore,  // no complete frame buffered; Feed more bytes
  };

  // Extracts the next complete frame, skipping garbage/oversized/corrupt
  // regions (counted in the stats below). Call until kNeedMore.
  Result Next(std::string* payload);

  size_t max_frame_bytes() const { return max_frame_bytes_; }
  // Bytes buffered but not yet consumed (bounded by cap + header).
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

  // --- statistics -----------------------------------------------------------
  int64_t frames_decoded() const { return frames_decoded_; }
  int64_t oversized_rejected() const { return oversized_rejected_; }
  int64_t resyncs() const { return resyncs_; }
  int64_t bytes_skipped() const { return bytes_skipped_; }

 private:
  // Drops `n` bytes from the front of the logical buffer.
  void Skip(size_t n);
  // Compacts the buffer when the consumed prefix dominates.
  void Compact();
  // Scans for the next magic at-or-after the current position; consumes
  // everything before it (keeping a partial-magic tail). Returns true when
  // a full magic is aligned at the front.
  bool ResyncToMagic();

  size_t max_frame_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;   // bytes of buffer_ already processed
  bool skipping_ = false; // true while hunting for the next magic

  int64_t frames_decoded_ = 0;
  int64_t oversized_rejected_ = 0;
  int64_t resyncs_ = 0;
  int64_t bytes_skipped_ = 0;
};

}  // namespace tetrisched

#endif  // TETRISCHED_NET_FRAME_H_
