#include "src/net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/logging.h"

namespace tetrisched {

void UniqueFd::Reset(int fd) {
  if (fd_ >= 0) {
    ::close(fd_);
  }
  fd_ = fd;
}

bool SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return false;
  }
  int fdflags = ::fcntl(fd, F_GETFD, 0);
  if (fdflags >= 0) {
    ::fcntl(fd, F_SETFD, fdflags | FD_CLOEXEC);
  }
  return true;
}

UniqueFd ListenTcpLoopback(int port, int* bound_port) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    TETRI_LOG(kWarning) << "socket(AF_INET): " << std::strerror(errno);
    return {};
  }
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    TETRI_LOG(kWarning) << "bind(127.0.0.1:" << port
                        << "): " << std::strerror(errno);
    return {};
  }
  if (::listen(fd.get(), 64) < 0) {
    TETRI_LOG(kWarning) << "listen: " << std::strerror(errno);
    return {};
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual), &len) ==
        0) {
      *bound_port = ntohs(actual.sin_port);
    }
  }
  SetNonBlocking(fd.get());
  return fd;
}

UniqueFd ListenUnix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    TETRI_LOG(kWarning) << "unix socket path too long: " << path;
    return {};
  }
  UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    TETRI_LOG(kWarning) << "socket(AF_UNIX): " << std::strerror(errno);
    return {};
  }
  ::unlink(path.c_str());
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    TETRI_LOG(kWarning) << "bind(" << path << "): " << std::strerror(errno);
    return {};
  }
  if (::listen(fd.get(), 64) < 0) {
    TETRI_LOG(kWarning) << "listen(" << path << "): " << std::strerror(errno);
    return {};
  }
  SetNonBlocking(fd.get());
  return fd;
}

UniqueFd ConnectTcpLoopback(int port) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return {};
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    TETRI_LOG(kWarning) << "connect(127.0.0.1:" << port
                        << "): " << std::strerror(errno);
    return {};
  }
  int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

UniqueFd ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    return {};
  }
  UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return {};
  }
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    TETRI_LOG(kWarning) << "connect(" << path
                        << "): " << std::strerror(errno);
    return {};
  }
  return fd;
}

std::pair<UniqueFd, UniqueFd> MakeSocketPair() {
  int fds[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) < 0) {
    TETRI_LOG(kWarning) << "socketpair: " << std::strerror(errno);
    return {};
  }
  return {UniqueFd(fds[0]), UniqueFd(fds[1])};
}

UniqueFd AcceptOne(int listen_fd) {
  int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) {
    if (errno != EAGAIN && errno != EWOULDBLOCK) {
      TETRI_LOG(kWarning) << "accept: " << std::strerror(errno);
    }
    return {};
  }
  return UniqueFd(fd);
}

}  // namespace tetrisched
