// A small poll(2)-based event loop plus the per-connection buffering the
// service layer runs on (DESIGN.md §16).
//
// EventLoop multiplexes readable/writable interest over registered fds and
// dispatches to std::function callbacks. It is single-threaded by design:
// the daemon thread alone touches the loop; other threads may only call
// Wakeup() (a self-pipe write, async-signal-safe) to interrupt a blocking
// poll — the same mechanism the SIGTERM handler uses.
//
// FramedConnection owns one stream fd and speaks the frame codec: reads
// accumulate into a FrameDecoder, writes queue into an outbound buffer
// flushed opportunistically (first synchronously, then via writable
// interest when the kernel buffer fills). An idle deadline marks
// connections whose peer has gone quiet for eviction.

#ifndef TETRISCHED_NET_EVENT_LOOP_H_
#define TETRISCHED_NET_EVENT_LOOP_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/net/frame.h"
#include "src/net/socket.h"

namespace tetrisched {

class EventLoop {
 public:
  // Bitmask passed to callbacks.
  static constexpr uint32_t kReadable = 1;
  static constexpr uint32_t kWritable = 2;
  static constexpr uint32_t kError = 4;  // POLLERR / POLLHUP / POLLNVAL

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Registers `fd` with read interest. The callback runs from PollOnce with
  // the ready-event mask. Re-registering an fd replaces its callback.
  void Add(int fd, std::function<void(uint32_t)> callback);
  void Remove(int fd);
  // Toggles write interest (read interest is always on).
  void SetWriteInterest(int fd, bool enabled);
  bool Watching(int fd) const { return handlers_.count(fd) > 0; }

  // One poll + dispatch pass. timeout_ms < 0 blocks indefinitely, 0 polls.
  // Returns the number of fds dispatched (0 on timeout). Safe against
  // handlers that Add/Remove fds (including their own).
  int PollOnce(int timeout_ms);

  // Interrupts a blocking PollOnce from any thread or a signal handler
  // (one write(2) on the self-pipe; overflow is harmless).
  void Wakeup();
  // The self-pipe write end, for installing into a signal handler.
  int wakeup_fd() const { return wake_write_.get(); }

 private:
  struct Handler {
    std::function<void(uint32_t)> callback;
    bool want_write = false;
  };

  void DrainWakePipe();

  std::map<int, Handler> handlers_;
  UniqueFd wake_read_;
  UniqueFd wake_write_;
};

// One framed stream peer. Owns the fd; nonblocking.
class FramedConnection {
 public:
  FramedConnection(UniqueFd fd, size_t max_frame_bytes,
                   int64_t connection_id);

  int fd() const { return fd_.get(); }
  int64_t id() const { return connection_id_; }
  bool closed() const { return closed_; }
  FrameDecoder& decoder() { return decoder_; }

  // Reads whatever the kernel has; decoded payloads are appended to
  // *frames. Returns false when the peer closed or errored (connection
  // should be dropped after processing the frames).
  bool ReadInto(std::vector<std::string>* frames);

  // Queues one framed payload and flushes as much as the kernel accepts.
  // Returns true while the connection is healthy.
  bool SendFrame(std::string_view payload);

  // Flushes queued bytes; call on writable readiness.
  bool FlushWrites();
  bool wants_write() const { return write_pos_ < write_buffer_.size(); }

  // Idle-timeout support: last activity (read or write) stamp.
  std::chrono::steady_clock::time_point last_activity() const {
    return last_activity_;
  }

 private:
  void Touch() { last_activity_ = std::chrono::steady_clock::now(); }

  UniqueFd fd_;
  int64_t connection_id_;
  FrameDecoder decoder_;
  std::string write_buffer_;
  size_t write_pos_ = 0;
  bool closed_ = false;
  std::chrono::steady_clock::time_point last_activity_;
};

}  // namespace tetrisched

#endif  // TETRISCHED_NET_EVENT_LOOP_H_
