#include "src/net/frame.h"

#include <cstring>

namespace tetrisched {

namespace {

uint32_t ReadU32Le(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

std::string EncodeNetFrame(std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.append(kFrameMagic, sizeof(kFrameMagic));
  uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  }
  out.append(payload.data(), payload.size());
  return out;
}

FrameDecoder::FrameDecoder(size_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes) {}

void FrameDecoder::Feed(std::string_view bytes) {
  buffer_.append(bytes.data(), bytes.size());
}

void FrameDecoder::Skip(size_t n) {
  consumed_ += n;
  bytes_skipped_ += static_cast<int64_t>(n);
}

void FrameDecoder::Compact() {
  if (consumed_ > 0 && (consumed_ >= buffer_.size() || consumed_ > 4096)) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
}

bool FrameDecoder::ResyncToMagic() {
  std::string_view rest =
      std::string_view(buffer_).substr(consumed_);
  const std::string_view magic(kFrameMagic, sizeof(kFrameMagic));
  size_t pos = rest.find(magic);
  if (pos != std::string_view::npos) {
    Skip(pos);
    skipping_ = false;
    return true;
  }
  // No full magic: keep only the longest buffer suffix that is a proper
  // magic prefix (a magic may be split across Feed boundaries).
  size_t keep = 0;
  for (size_t len = std::min(rest.size(), magic.size() - 1); len > 0; --len) {
    if (rest.substr(rest.size() - len) == magic.substr(0, len)) {
      keep = len;
      break;
    }
  }
  Skip(rest.size() - keep);
  Compact();
  return false;
}

FrameDecoder::Result FrameDecoder::Next(std::string* payload) {
  for (;;) {
    if (skipping_ && !ResyncToMagic()) {
      return Result::kNeedMore;
    }
    std::string_view rest = std::string_view(buffer_).substr(consumed_);
    if (rest.size() < kFrameHeaderBytes) {
      // Not enough for a header. If what we have cannot be a magic prefix,
      // enter resync so the partial junk is discarded rather than blocking.
      if (rest.size() >= sizeof(kFrameMagic) &&
          std::memcmp(rest.data(), kFrameMagic, sizeof(kFrameMagic)) != 0) {
        skipping_ = true;
        ++resyncs_;
        continue;
      }
      Compact();
      return Result::kNeedMore;
    }
    if (std::memcmp(rest.data(), kFrameMagic, sizeof(kFrameMagic)) != 0) {
      skipping_ = true;
      ++resyncs_;
      continue;
    }
    uint32_t len = ReadU32Le(rest.data() + sizeof(kFrameMagic));
    if (static_cast<size_t>(len) > max_frame_bytes_) {
      // DoS guard: reject from the header alone — never allocate `len`.
      ++oversized_rejected_;
      ++resyncs_;
      // Skip just the magic so a magic embedded in what we mis-read as a
      // length can still be found.
      Skip(sizeof(kFrameMagic));
      skipping_ = true;
      continue;
    }
    if (rest.size() < kFrameHeaderBytes + len) {
      Compact();
      return Result::kNeedMore;  // complete header, incomplete payload
    }
    payload->assign(rest.data() + kFrameHeaderBytes, len);
    consumed_ += kFrameHeaderBytes + len;
    ++frames_decoded_;
    Compact();
    return Result::kFrame;
  }
}

}  // namespace tetrisched
