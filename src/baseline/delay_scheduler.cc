#include "src/baseline/delay_scheduler.h"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace tetrisched {
namespace {

using Clock = std::chrono::steady_clock;

int QueueRank(const Job& job) {
  switch (job.slo_class) {
    case SloClass::kSloAccepted:
      return 0;
    case SloClass::kSloUnreserved:
      return 1;
    case SloClass::kBestEffort:
      return 2;
  }
  return 2;
}

}  // namespace

DelayScheduler::DelayScheduler(const Cluster& cluster,
                               DelaySchedulerConfig config)
    : cluster_(cluster), config_(config) {}

std::map<PartitionId, int> DelayScheduler::TryPreferred(
    const Job& job, const std::vector<int>& free) const {
  std::map<PartitionId, int> counts;
  auto take_from_set = [&](const PartitionSet& set, int need) {
    for (PartitionId partition : set) {
      if (need == 0) {
        break;
      }
      int take = std::min(need, free[partition]);
      if (take > 0) {
        counts[partition] = take;
        need -= take;
      }
    }
    return need == 0;
  };

  switch (job.type) {
    case JobType::kUnconstrained: {
      std::vector<int> scratch = free;
      int need = job.k;
      for (PartitionId p = 0; p < static_cast<PartitionId>(scratch.size());
           ++p) {
        int take = std::min(need, scratch[p]);
        if (take > 0) {
          counts[p] = take;
          need -= take;
        }
      }
      if (need != 0) {
        counts.clear();
      }
      return counts;
    }
    case JobType::kGpu:
    case JobType::kDataLocal: {
      PartitionSet preferred = job.type == JobType::kGpu
                                   ? cluster_.GpuPartitions()
                                   : job.preferred_partitions;
      if (!take_from_set(preferred, job.k)) {
        counts.clear();
      }
      return counts;
    }
    case JobType::kMpi: {
      for (RackId rack = 0; rack < cluster_.num_racks(); ++rack) {
        counts.clear();
        if (take_from_set(cluster_.RackPartitions(rack), job.k)) {
          return counts;
        }
      }
      counts.clear();
      return counts;
    }
    case JobType::kAvailability: {
      int racks = std::min(job.k, cluster_.num_racks());
      for (RackId rack = 0; rack < racks; ++rack) {
        if (!take_from_set(cluster_.RackPartitions(rack), 1)) {
          counts.clear();
          return counts;
        }
      }
      return counts;
    }
  }
  return counts;
}

std::map<PartitionId, int> DelayScheduler::TakeAnywhere(
    const Job& job, std::vector<int>& free) const {
  std::map<PartitionId, int> counts;
  int need = job.k;
  for (PartitionId p = 0; p < static_cast<PartitionId>(free.size()) && need > 0;
       ++p) {
    int take = std::min(need, free[p]);
    if (take > 0) {
      counts[p] = take;
      free[p] -= take;
      need -= take;
    }
  }
  assert(need == 0);
  return counts;
}

DelayScheduler::Decision DelayScheduler::OnCycle(
    SimTime now, const std::vector<const Job*>& pending,
    const std::vector<RunningHold>& running) {
  auto cycle_start = Clock::now();
  Decision decision;
  decision.stats.pending_count = static_cast<int>(pending.size());

  std::vector<int> free(cluster_.num_partitions(), 0);
  for (const Partition& partition : cluster_.partitions()) {
    free[partition.id] = partition.capacity();
  }
  int total_free = cluster_.num_nodes();
  for (const RunningHold& hold : running) {
    for (const auto& [partition, count] : hold.counts) {
      free[partition] -= count;
      total_free -= count;
    }
  }

  std::vector<const Job*> ordered(pending.begin(), pending.end());
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Job* a, const Job* b) {
                     if (QueueRank(*a) != QueueRank(*b)) {
                       return QueueRank(*a) < QueueRank(*b);
                     }
                     return a->submit < b->submit;
                   });

  for (const Job* job : ordered) {
    auto [it, inserted] = first_seen_.try_emplace(job->id, now);
    SimTime waited = now - it->second;

    int gang = job->type == JobType::kAvailability
                   ? std::min(job->k, cluster_.num_racks())
                   : job->k;
    if (total_free < gang) {
      continue;  // not enough capacity at all; keep waiting
    }

    std::map<PartitionId, int> counts = TryPreferred(*job, free);
    bool preferred = !counts.empty();
    if (!preferred) {
      if (waited < config_.delay_tolerance) {
        continue;  // keep waiting for the preferred placement
      }
      counts = TakeAnywhere(*job, free);
    } else {
      for (const auto& [partition, count] : counts) {
        free[partition] -= count;
      }
    }
    total_free -= gang;

    Placement placement;
    placement.job = job->id;
    placement.counts = std::move(counts);
    placement.preferred_belief = preferred;
    placement.est_duration = job->EstimatedRuntime(preferred);
    decision.start_now.push_back(std::move(placement));
    first_seen_.erase(job->id);
  }

  decision.stats.scheduled_count = static_cast<int>(decision.start_now.size());
  decision.stats.cycle_seconds =
      std::chrono::duration<double>(Clock::now() - cycle_start).count();
  return decision;
}

}  // namespace tetrisched
