// Delay-scheduling baseline (Zaharia et al., EuroSys'10 — the paper's
// "always waiting [41]" reference point in §3.2.1).
//
// The paper frames TetriSched's plan-ahead as the informed middle ground
// between two uninformed extremes:
//   * never wait (alsched / TetriSched-NP): grab the fallback immediately,
//   * always wait (delay scheduling): hold out for the preferred placement,
//     bounded by a fixed tolerance D.
//
// This policy implements the classic bounded variant: jobs are served FIFO
// within the three priority queues; a job is placed on its preferred
// resources when they are free, otherwise it *waits* — until it has waited
// `delay_tolerance` seconds, at which point it accepts any placement. It is
// deadline-blind while waiting (it understands neither runtime estimates nor
// plan-ahead), which is exactly the weakness TetriSched's informed deferral
// removes.

#ifndef TETRISCHED_BASELINE_DELAY_SCHEDULER_H_
#define TETRISCHED_BASELINE_DELAY_SCHEDULER_H_

#include <map>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/core/policy.h"

namespace tetrisched {

struct DelaySchedulerConfig {
  // How long a job may wait for its preferred placement before it accepts
  // an arbitrary one. 0 degenerates to "never wait".
  SimDuration delay_tolerance = 60;
};

class DelayScheduler : public SchedulerPolicy {
 public:
  DelayScheduler(const Cluster& cluster, DelaySchedulerConfig config = {});

  Decision OnCycle(SimTime now, const std::vector<const Job*>& pending,
                   const std::vector<RunningHold>& running) override;

  const char* name() const override { return "DelaySched"; }

 private:
  // Attempts a preferred placement for `job` given free counts; returns an
  // empty map when impossible.
  std::map<PartitionId, int> TryPreferred(const Job& job,
                                          const std::vector<int>& free) const;
  std::map<PartitionId, int> TakeAnywhere(const Job& job,
                                          std::vector<int>& free) const;

  const Cluster& cluster_;
  DelaySchedulerConfig config_;
  // First time each job was seen pending (start of its wait clock).
  std::map<JobId, SimTime> first_seen_;
};

}  // namespace tetrisched

#endif  // TETRISCHED_BASELINE_DELAY_SCHEDULER_H_
