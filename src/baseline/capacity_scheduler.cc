#include "src/baseline/capacity_scheduler.h"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace tetrisched {
namespace {

using Clock = std::chrono::steady_clock;

// A demoted job: accepted SLO whose reservation window expired before it
// started. It joins the best-effort queue and its deadline is forgotten.
bool ReservationExpired(const Job& job, SimTime now) {
  return job.slo_class == SloClass::kSloAccepted && now > job.reservation.end;
}

bool ReservationActive(const Job& job, SimTime now) {
  return job.slo_class == SloClass::kSloAccepted &&
         now >= job.reservation.start && now <= job.reservation.end;
}

}  // namespace

CapacityScheduler::CapacityScheduler(const Cluster& cluster,
                                     CapacitySchedulerConfig config)
    : cluster_(cluster), config_(config) {}

Placement CapacityScheduler::TakeAnywhere(const Job& job,
                                          std::vector<int>& free) const {
  Placement placement;
  placement.job = job.id;
  // Heterogeneity-unaware: plan with the conservative slow runtime.
  placement.est_duration = job.EstimatedRuntime(/*preferred=*/false);
  placement.preferred_belief = job.type == JobType::kUnconstrained;
  int need = job.k;
  for (PartitionId p = 0; p < static_cast<PartitionId>(free.size()) && need > 0;
       ++p) {
    int take = std::min(need, free[p]);
    if (take > 0) {
      placement.counts[p] = take;
      free[p] -= take;
      need -= take;
    }
  }
  assert(need == 0);
  return placement;
}

CapacityScheduler::Decision CapacityScheduler::OnCycle(
    SimTime now, const std::vector<const Job*>& pending,
    const std::vector<RunningHold>& running) {
  auto cycle_start = Clock::now();
  Decision decision;
  decision.stats.pending_count = static_cast<int>(pending.size());

  // Free capacity per partition.
  std::vector<int> free(cluster_.num_partitions(), 0);
  for (const Partition& partition : cluster_.partitions()) {
    free[partition.id] = partition.capacity();
  }
  int total_free = cluster_.num_nodes();
  for (const RunningHold& hold : running) {
    for (const auto& [partition, count] : hold.counts) {
      free[partition] -= count;
      total_free -= count;
    }
  }

  // Preemptible running containers, most recent first (cheapest lost work):
  // anything the reservation system does not *currently* guarantee — BE jobs,
  // SLO jobs without reservations, and accepted jobs that ran past their
  // reservation window (under-estimation transfers them to best-effort
  // treatment, paper S7.1).
  std::vector<const RunningHold*> preemptible;
  for (const RunningHold& hold : running) {
    if (hold.slo_class != SloClass::kSloAccepted ||
        now > hold.reservation_end) {
      preemptible.push_back(&hold);
    }
  }
  std::sort(preemptible.begin(), preemptible.end(),
            [](const RunningHold* a, const RunningHold* b) {
              return a->start > b->start;
            });
  size_t next_victim = 0;

  // 1. Honor active reservations, preempting BE containers when short.
  std::vector<const Job*> reserved;
  std::vector<const Job*> best_effort;
  for (const Job* job : pending) {
    if (ReservationActive(*job, now)) {
      reserved.push_back(job);
    } else if (job->slo_class == SloClass::kSloAccepted &&
               now < job->reservation.start) {
      // Reservation not started yet: CS waits for the plan.
      continue;
    } else {
      // BE jobs, SLO w/o reservation, and demoted (expired) accepted jobs
      // all share the best-effort queue; deadline information is lost.
      best_effort.push_back(job);
      (void)ReservationExpired;  // demotion is implicit in this branch
    }
  }
  std::stable_sort(reserved.begin(), reserved.end(),
                   [](const Job* a, const Job* b) {
                     return a->reservation.start < b->reservation.start;
                   });
  std::stable_sort(best_effort.begin(), best_effort.end(),
                   [](const Job* a, const Job* b) {
                     return a->submit < b->submit;
                   });

  for (const Job* job : reserved) {
    while (total_free < job->k && config_.enable_preemption &&
           next_victim < preemptible.size()) {
      const RunningHold* victim = preemptible[next_victim++];
      decision.preempt.push_back(victim->job);
      for (const auto& [partition, count] : victim->counts) {
        free[partition] += count;
        total_free += count;
      }
    }
    if (total_free < job->k) {
      continue;  // cannot honor yet, retry next cycle
    }
    decision.start_now.push_back(TakeAnywhere(*job, free));
    total_free -= job->k;
  }

  // 2. Fill remaining capacity FIFO from the best-effort queue.
  for (const Job* job : best_effort) {
    if (total_free < job->k) {
      continue;  // strict FIFO would block; CS packs what fits
    }
    decision.start_now.push_back(TakeAnywhere(*job, free));
    total_free -= job->k;
  }

  decision.stats.scheduled_count = static_cast<int>(decision.start_now.size());
  decision.stats.cycle_seconds =
      std::chrono::duration<double>(Clock::now() - cycle_start).count();
  return decision;
}

}  // namespace tetrisched
