// Rayon/CapacityScheduler baseline (paper §6.1, §7.1).
//
// Models the mainline YARN stack TetriSched is evaluated against: the Rayon
// reservation plan is enforced statically by a capacity scheduler that
//   * starts an accepted SLO job once its reservation interval begins,
//     preempting running best-effort containers if needed to honor the
//     guarantee (the paper enables CS container preemption),
//   * demotes accepted SLO jobs whose reservation expired before they started
//     into the best-effort queue — losing their deadline information,
//   * fills remaining capacity FIFO from the best-effort queue (BE jobs, SLO
//     jobs without reservations, and demoted jobs alike),
//   * is heterogeneity-unaware: placements take arbitrary free nodes, and
//     runtime expectations use the conservative slow estimate.

#ifndef TETRISCHED_BASELINE_CAPACITY_SCHEDULER_H_
#define TETRISCHED_BASELINE_CAPACITY_SCHEDULER_H_

#include <vector>

#include "src/cluster/cluster.h"
#include "src/core/policy.h"

namespace tetrisched {

struct CapacitySchedulerConfig {
  bool enable_preemption = true;  // paper: enabled, to enforce guarantees
};

class CapacityScheduler : public SchedulerPolicy {
 public:
  CapacityScheduler(const Cluster& cluster,
                    CapacitySchedulerConfig config = {});

  Decision OnCycle(SimTime now, const std::vector<const Job*>& pending,
                   const std::vector<RunningHold>& running) override;

  const char* name() const override { return "Rayon/CS"; }

 private:
  // Builds a placement drawing `k` nodes from `free` (partition id order),
  // decrementing `free` in place.
  Placement TakeAnywhere(const Job& job, std::vector<int>& free) const;

  const Cluster& cluster_;
  CapacitySchedulerConfig config_;
  // Jobs the baseline has started, to distinguish preemptible BE containers.
  std::vector<JobId> running_best_effort_;
};

}  // namespace tetrisched

#endif  // TETRISCHED_BASELINE_CAPACITY_SCHEDULER_H_
