// Little-endian binary (de)serialization helpers shared by the persistence
// subsystem and any module that needs a compact durable encoding (the
// scheduler's warm-start blob, journal records, snapshots).
//
// The encoding is explicitly little-endian and fixed-width so journal files
// written on one machine replay identically on another; ByteReader is
// bounds-checked and turns every truncation into a clean `ok() == false`
// instead of UB, which the journal layer relies on to detect torn records.

#ifndef TETRISCHED_COMMON_BYTES_H_
#define TETRISCHED_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace tetrisched {

class ByteWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }

  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

  void PutDouble(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t pos() const { return pos_; }

  uint8_t GetU8() {
    if (!Require(1)) {
      return 0;
    }
    return static_cast<uint8_t>(data_[pos_++]);
  }

  uint32_t GetU32() {
    if (!Require(4)) {
      return 0;
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  uint64_t GetU64() {
    if (!Require(8)) {
      return 0;
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  int64_t GetI64() { return static_cast<int64_t>(GetU64()); }

  double GetDouble() {
    uint64_t bits = GetU64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string GetString() {
    uint32_t size = GetU32();
    if (!Require(size)) {
      return {};
    }
    std::string s(data_.substr(pos_, size));
    pos_ += size;
    return s;
  }

 private:
  bool Require(size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace tetrisched

#endif  // TETRISCHED_COMMON_BYTES_H_
