#include "src/common/thread_pool.h"

namespace tetrisched {

ThreadPool::ThreadPool(int num_threads) {
  const int count = num_threads < 1 ? 1 : num_threads;
  threads_.reserve(count);
  for (int i = 0; i < count; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& thread : threads_) {
    thread.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
    if (tasks_.empty()) {
      return;  // stopping and drained
    }
    std::function<void()> task = std::move(tasks_.front());
    tasks_.pop();
    lock.unlock();
    task();
    lock.lock();
    if (--in_flight_ == 0) {
      idle_cv_.notify_all();
    }
  }
}

int ThreadPool::HardwareThreads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

}  // namespace tetrisched
