// Cycle-level observability: a process-wide registry of named instruments.
//
// Three instrument kinds, all safe for concurrent use from branch-and-bound
// workers (lock-free atomics on the update path):
//   * Counter   — monotonically increasing integer (events, nodes, waits),
//   * Gauge     — last-write-wins double (queue depth, config knobs),
//   * Histogram — fixed ascending bucket bounds plus exact count/sum/min/max;
//                 percentiles are interpolated from the bucket counts and
//                 clamped to the observed [min, max] range.
//
// Instruments are created on first use by name and live for the lifetime of
// the process (pointers returned by the registry are stable; Reset() zeroes
// values without invalidating them), so hot paths can cache the pointer once
// and update with a single relaxed atomic op. Exposition formats:
//   * ToPrometheusText() — Prometheus 0.0.4 text format,
//   * ToJson()           — one JSON object with p50/p95/p99/max per histogram.
//
// The registry itself is always on (updates are a few nanoseconds). Anything
// that must *read a clock* on a hot path — RAII spans (span.h) and the
// solver's per-LP-call timing — is additionally gated by the global
// observability flag below, which keeps disabled-instrumentation overhead
// within noise (see bench/micro_solver.cc).

#ifndef TETRISCHED_COMMON_METRICS_H_
#define TETRISCHED_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tetrisched {

namespace metrics_internal {
extern std::atomic<bool> g_observability_enabled;
}  // namespace metrics_internal

// Global switch for clock-reading instrumentation (spans, per-LP timing).
// Enabled automatically by Simulator::Run when an export path is configured.
inline bool ObservabilityEnabled() {
  return metrics_internal::g_observability_enabled.load(
      std::memory_order_relaxed);
}
void SetObservabilityEnabled(bool enabled);

class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Read-only copy of one histogram, decoupled from subsequent updates.
struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;    // finite ascending upper bounds
  std::vector<int64_t> buckets;  // bounds.size() + 1 (last = overflow)
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // observed extrema (0 when count == 0)
  double max = 0.0;

  double Mean() const { return count > 0 ? sum / count : 0.0; }
  // p in [0, 100]; interpolated within the containing bucket and clamped to
  // the observed [min, max].
  double Percentile(double p) const;
};

class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double x);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  HistogramSnapshot Snapshot(const std::string& name = "") const;
  double Percentile(double p) const { return Snapshot().Percentile(p); }
  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<int64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

// Default bucket bounds for millisecond latencies: 10 us .. 10 s, roughly
// 1-2-5 per decade. Wide enough for STRL-generation micro-phases and whole
// churn-cycle solves alike.
const std::vector<double>& DefaultLatencyBucketsMs();

struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::vector<HistogramSnapshot> histograms;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create by name. Returned pointers stay valid for the registry's
  // lifetime; a histogram's bucket bounds are fixed by its first creation.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds =
                              DefaultLatencyBucketsMs());

  // Point-in-time copy: later instrument updates do not alter the snapshot.
  MetricsSnapshot Snapshot() const;

  std::string ToPrometheusText() const;
  std::string ToJson() const;

  // Zeroes every instrument's value. Pointers handed out remain valid.
  void Reset();

 private:
  mutable std::mutex mu_;  // guards the maps, never the instrument values
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// The process-wide registry all library instrumentation reports into.
MetricsRegistry& GlobalMetrics();

// Refreshes the process-level gauges every exporter includes:
//   * tetrisched_process_uptime_seconds — wall seconds since process start,
//   * tetrisched_build_info{version=...,compiler=...,sanitizers=...} — the
//     Prometheus build-info idiom: a constant-1 gauge whose labels carry the
//     build identity.
// Call immediately before exporting (the simulator's export paths and the
// daemon's `metrics` op both do).
void UpdateProcessMetrics();

// The labeled name of the build-info gauge (exposed for tests).
const std::string& BuildInfoMetricName();

}  // namespace tetrisched

#endif  // TETRISCHED_COMMON_METRICS_H_
