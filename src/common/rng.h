// Deterministic random-number utilities for workload generation.
//
// Every experiment takes an explicit seed so benchmark tables are exactly
// reproducible run-to-run. Rng is a thin, copyable wrapper over
// std::mt19937_64 with the handful of distributions the workload generator
// needs.

#ifndef TETRISCHED_COMMON_RNG_H_
#define TETRISCHED_COMMON_RNG_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace tetrisched {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  // Uniform real in [lo, hi).
  double UniformReal(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Bernoulli trial with success probability p in [0, 1].
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  // Exponential with the given mean (mean > 0).
  double Exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  // Lognormal parameterized directly by the *target* mean and sigma of the
  // underlying normal, the common parameterization for job-size tails.
  double Lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  // Index drawn proportionally to the given non-negative weights.
  // Requires at least one strictly positive weight.
  size_t WeightedIndex(std::span<const double> weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  // Forks an independent generator; used to give each workload stream its own
  // stable substream regardless of evaluation order elsewhere.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace tetrisched

#endif  // TETRISCHED_COMMON_RNG_H_
