// RAII scoped timers forming a thread-aware span tree, exportable as Chrome
// trace-event JSON (load via chrome://tracing or https://ui.perfetto.dev).
//
// Usage on a code path:
//
//   void TetriScheduler::OnCycle(...) {
//     TETRI_SPAN("scheduler.cycle");          // whole-function span
//     { TETRI_SPAN("scheduler.strl_gen"); ... }  // nested child span
//   }
//
// Collection is off by default. A disabled ScopedSpan costs one relaxed
// atomic load and nothing else — no clock read, no allocation — so
// instrumentation can stay compiled into hot paths (the overhead is verified
// by bench/micro_solver's span benchmarks). When ObservabilityEnabled() is
// set (metrics.h), each span records its name, wall-clock interval, thread,
// and nesting depth into the global SpanCollector; nesting is reconstructed
// per thread from start/duration containment, which is exactly how Chrome's
// trace viewer stacks "X" (complete) events.
//
// Span names must be string literals (the collector stores the pointer).

#ifndef TETRISCHED_COMMON_SPAN_H_
#define TETRISCHED_COMMON_SPAN_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/metrics.h"

namespace tetrisched {

struct SpanRecord {
  const char* name = "";  // string literal supplied to TETRI_SPAN
  uint64_t start_us = 0;  // microseconds since the process span epoch
  uint64_t duration_us = 0;
  uint32_t thread = 0;  // small dense id, stable per OS thread
  int32_t depth = 0;    // nesting depth within the recording thread
};

namespace span_internal {

// Microseconds since a process-wide steady_clock epoch.
uint64_t NowMicros();
// Dense per-thread id (0, 1, 2, ... in first-use order).
uint32_t CurrentThreadId();
// Mutable nesting depth of the calling thread.
int32_t& CurrentDepth();

// One-shot crash hook for fault injection (DESIGN.md §11): while armed, the
// first ScopedSpan constructed *on the arming thread* whose name matches
// `name` disarms the hook and invokes `fn` (which typically throws a crash
// signal). Solver worker threads construct spans too, so the thread match is
// load-bearing — the signal must unwind the scheduler's cycle, not a pool
// thread. Disarmed cost: one relaxed atomic load in the ScopedSpan ctor.
void ArmSpanCrashHook(const char* name, void (*fn)());
void DisarmSpanCrashHook();
bool SpanCrashHookArmed();
void MaybeFireSpanCrashHook(const char* name);

}  // namespace span_internal

// Thread-safe buffer of finished spans. Recording appends under a mutex;
// spans are per-cycle-phase granularity, so contention is negligible.
class SpanCollector {
 public:
  static SpanCollector& Global();

  void Record(const SpanRecord& span);

  std::vector<SpanRecord> Snapshot() const;
  size_t size() const;
  void Clear();

  // Chrome trace-event JSON: one "X" (complete) event per span, with ts/dur
  // in microseconds and the recording thread as tid.
  std::string ToChromeTraceJson() const;

 private:
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
};

class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (span_internal::SpanCrashHookArmed()) {
      span_internal::MaybeFireSpanCrashHook(name);  // may throw (by design)
    }
    if (!ObservabilityEnabled()) {
      return;  // zero-overhead disabled path: one relaxed load, no clock
    }
    name_ = name;
    depth_ = span_internal::CurrentDepth()++;
    start_us_ = span_internal::NowMicros();
  }

  ~ScopedSpan() {
    if (name_ == nullptr) {
      return;
    }
    --span_internal::CurrentDepth();
    SpanCollector::Global().Record(
        {name_, start_us_, span_internal::NowMicros() - start_us_,
         span_internal::CurrentThreadId(), depth_});
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  uint64_t start_us_ = 0;
  int32_t depth_ = 0;
};

#define TETRI_SPAN_CONCAT_INNER(a, b) a##b
#define TETRI_SPAN_CONCAT(a, b) TETRI_SPAN_CONCAT_INNER(a, b)
#define TETRI_SPAN(name) \
  ::tetrisched::ScopedSpan TETRI_SPAN_CONCAT(tetri_span_, __LINE__)(name)

}  // namespace tetrisched

#endif  // TETRISCHED_COMMON_SPAN_H_
