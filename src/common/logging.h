// Minimal leveled logging for library internals.
//
// Libraries log through TETRI_LOG(kLevel) << ... streams; verbosity is
// controlled globally (default: warnings and errors only) so tests and
// benches stay quiet unless an experiment opts into tracing. Filtering
// happens at message flush time, which keeps the macro trivial; the streams
// are cheap enough for the non-hot paths that log.

#ifndef TETRISCHED_COMMON_LOGGING_H_
#define TETRISCHED_COMMON_LOGGING_H_

#include <sstream>

namespace tetrisched {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

// Global threshold; messages below it are discarded. The initial threshold
// comes from the TETRISCHED_LOG_LEVEL environment variable when set
// ("debug" | "info" | "warning"/"warn" | "error", case-insensitive), so CI
// and benches can raise verbosity without recompiling; it defaults to
// kWarning otherwise.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Parses a level name as accepted by TETRISCHED_LOG_LEVEL; returns
// `fallback` for null/unrecognized input.
LogLevel ParseLogLevel(const char* name, LogLevel fallback);

namespace log_internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();  // Emits to stderr if level >= threshold.

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace log_internal

#define TETRI_LOG(severity)                                              \
  ::tetrisched::log_internal::LogMessage(                                \
      ::tetrisched::LogLevel::severity, __FILE__, __LINE__)              \
      .stream()

}  // namespace tetrisched

#endif  // TETRISCHED_COMMON_LOGGING_H_
