// Minimal leveled logging for library internals.
//
// Libraries log through TETRI_LOG(kLevel) << ... streams; verbosity is
// controlled globally (default: warnings and errors only) so tests and
// benches stay quiet unless an experiment opts into tracing. Filtering
// happens at message flush time, which keeps the macro trivial; the streams
// are cheap enough for the non-hot paths that log.

#ifndef TETRISCHED_COMMON_LOGGING_H_
#define TETRISCHED_COMMON_LOGGING_H_

#include <cstdint>
#include <map>
#include <sstream>
#include <string>

namespace tetrisched {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

// Global threshold; messages below it are discarded. The initial threshold
// comes from the TETRISCHED_LOG_LEVEL environment variable when set
// ("debug" | "info" | "warning"/"warn" | "error", case-insensitive), so CI
// and benches can raise verbosity without recompiling; it defaults to
// kWarning otherwise.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Parses a level name as accepted by TETRISCHED_LOG_LEVEL; returns
// `fallback` for null/unrecognized input.
LogLevel ParseLogLevel(const char* name, LogLevel fallback);

// Per-key log deduplication on a logical tick axis (scheduler cycles, not
// wall clock, so suppression is deterministic). A repeating condition —
// e.g. a node flapping between kAlive and kSuspect under heavy message
// loss — logs at most once per key per `every_n_ticks`; suppressed
// repetitions are counted and surfaced as a suffix on the next emitted
// line. Not thread-safe; callers own one limiter per single-threaded log
// site.
//
//   LogRateLimiter limit(/*every_n_ticks=*/16);
//   if (int64_t n = 0; limit.ShouldLog(node, cycle, &n)) {
//     TETRI_LOG(kWarning) << "node " << node << " suspected"
//                         << LogRateLimiter::SuppressedSuffix(n);
//   }
class LogRateLimiter {
 public:
  explicit LogRateLimiter(int64_t every_n_ticks)
      : every_n_ticks_(every_n_ticks < 1 ? 1 : every_n_ticks) {}

  // True when the caller should emit for `key` at `tick`; *suppressed (may
  // be null) receives how many calls were swallowed since the last emit.
  bool ShouldLog(int64_t key, int64_t tick, int64_t* suppressed = nullptr);

  // " (+N suppressed)" for N > 0, "" otherwise.
  static std::string SuppressedSuffix(int64_t suppressed);

 private:
  struct KeyState {
    int64_t last_emit_tick = 0;
    int64_t suppressed = 0;
    bool emitted = false;
  };
  int64_t every_n_ticks_;
  std::map<int64_t, KeyState> keys_;
};

namespace log_internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();  // Emits to stderr if level >= threshold.

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace log_internal

#define TETRI_LOG(severity)                                              \
  ::tetrisched::log_internal::LogMessage(                                \
      ::tetrisched::LogLevel::severity, __FILE__, __LINE__)              \
      .stream()

}  // namespace tetrisched

#endif  // TETRISCHED_COMMON_LOGGING_H_
