// Simulated-time primitives shared by every TetriSched module.
//
// All scheduling logic runs against a discrete simulated clock measured in
// integral seconds. The scheduler additionally quantizes the plan-ahead
// horizon into fixed-width slices; helpers for that quantization live here so
// the compiler, the STRL generator, and the simulator agree on rounding.

#ifndef TETRISCHED_COMMON_TIME_H_
#define TETRISCHED_COMMON_TIME_H_

#include <cstdint>
#include <string>

namespace tetrisched {

// Simulated wall-clock time in seconds since experiment start.
using SimTime = int64_t;

// Duration in simulated seconds.
using SimDuration = int64_t;

// Sentinel for "no deadline" / "never".
inline constexpr SimTime kTimeNever = INT64_MAX;

// A half-open interval [start, end) in simulated time.
struct TimeRange {
  SimTime start = 0;
  SimTime end = 0;

  SimDuration length() const { return end - start; }
  bool empty() const { return end <= start; }
  bool contains(SimTime t) const { return t >= start && t < end; }
  bool overlaps(const TimeRange& other) const {
    return start < other.end && other.start < end;
  }
  bool operator==(const TimeRange& other) const = default;
};

// Rounds `t` down to a multiple of `quantum` (quantum >= 1).
constexpr SimTime QuantizeDown(SimTime t, SimDuration quantum) {
  return (t / quantum) * quantum;
}

// Rounds `t` up to a multiple of `quantum` (quantum >= 1).
constexpr SimTime QuantizeUp(SimTime t, SimDuration quantum) {
  return ((t + quantum - 1) / quantum) * quantum;
}

// Number of quanta fully or partially covered by a duration.
constexpr int64_t QuantaCovering(SimDuration d, SimDuration quantum) {
  return (d + quantum - 1) / quantum;
}

// Human-readable "h:mm:ss" rendering used by example programs and traces.
std::string FormatSimTime(SimTime t);

}  // namespace tetrisched

#endif  // TETRISCHED_COMMON_TIME_H_
