// Cycle deadline enforcement primitives (DESIGN.md §13).
//
// Four pieces, deliberately small and dependency-free so every layer from
// the simplex inner loop up to the scheduler can share them:
//   * CancelToken    — an armable absolute wall-clock deadline, polled
//                      cooperatively (one relaxed atomic load + one clock
//                      read when armed; an unarmed token never touches the
//                      clock, so disabled plumbing is inert).
//   * DeadlinePool   — a weighted pool over one shared deadline. Concurrent
//                      claimants acquire a slice of the *remaining*
//                      wall-clock proportional to their weight among the
//                      still-outstanding claimants, so work that finishes
//                      early implicitly donates its unused time to whatever
//                      is still running (replaces fixed-share apportionment
//                      in the component decomposition).
//   * AimdController — additive-increase / multiplicative-decrease control
//                      of a scalar level in [min_level, 1], driven by a
//                      per-cycle blown/healthy budget signal. Deterministic:
//                      the trajectory is a pure function of the observation
//                      sequence.
//   * CycleBudgetOptions — the scheduler-facing knobs
//                      (TetriSchedConfig::budget).

#ifndef TETRISCHED_COMMON_BUDGET_H_
#define TETRISCHED_COMMON_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>

namespace tetrisched {

// Shared wall-clock deadline. One controller arms it; any number of workers
// poll Expired() from hot loops. Passed by pointer (not copyable); nullptr
// and unarmed both mean "no deadline".
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // Arms the deadline `seconds` from now (<= 0 expires immediately).
  void ArmAfterSeconds(double seconds);
  // Arms at an absolute steady-clock nanosecond stamp (see NowNanos), used
  // to compose tokens: earliest deadline wins.
  void ArmAtNanos(int64_t deadline_ns);
  // Expires the token immediately.
  void Cancel();
  // Returns to the unarmed state (Expired() constant false, no clock reads).
  void Disarm();

  bool armed() const {
    return deadline_ns_.load(std::memory_order_relaxed) != kUnarmed;
  }
  // True once the deadline passed. Unarmed tokens never read the clock.
  bool Expired() const {
    int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    if (deadline == kUnarmed) {
      return false;
    }
    return NowNanos() >= deadline;
  }
  // Seconds until expiry (negative once expired); +infinity when unarmed.
  double RemainingSeconds() const;
  // Absolute deadline stamp; kUnarmed sentinel when unarmed.
  int64_t deadline_nanos() const {
    return deadline_ns_.load(std::memory_order_relaxed);
  }

  static int64_t NowNanos();
  static constexpr int64_t kUnarmed = INT64_MAX;

 private:
  std::atomic<int64_t> deadline_ns_{kUnarmed};
};

// Weighted wall-clock pool for concurrent sub-solves sharing one deadline.
// Construct with the total budget and the aggregate weight of every claimant
// (e.g. total variable count across components); each claimant calls
// AcquireSeconds when it starts and Release when it finishes. Because a
// claimant's slice is computed from the wall-clock remaining *at its start*
// and the weight still outstanding, any time an earlier claimant left unused
// flows to the ones after it.
class DeadlinePool {
 public:
  DeadlinePool(double total_seconds, double total_weight);

  // Slice for a claimant of `weight`: its proportional share of the
  // remaining wall-clock among the outstanding weight, capped at the
  // remaining wall-clock, but never below `floor_seconds` (a zero budget
  // would read as "no solve attempt" downstream).
  double AcquireSeconds(double weight, double floor_seconds);
  // Marks `weight` finished; its unused time redistributes implicitly.
  void Release(double weight);

 private:
  std::mutex mu_;
  std::chrono::steady_clock::time_point end_;
  double outstanding_weight_;
};

struct AimdOptions {
  int shrink_after = 3;        // consecutive blown cycles before a shrink
  double shrink_factor = 0.5;  // multiplicative decrease of the level
  int restore_after = 4;       // consecutive healthy cycles before a restore
  double restore_step = 0.125; // additive increase of the level
  double min_level = 0.0;      // floor (the scheduler quantizes to >= NP)
};

// AIMD over a level in [min_level, 1]. The scheduler maps the level onto the
// effective plan-ahead window (1 = configured plan_ahead, min = one quantum,
// the NP configuration).
class AimdController {
 public:
  AimdController() = default;
  explicit AimdController(AimdOptions options) : options_(options) {}

  // Feeds one cycle's outcome. Returns -1 when the level shrank this
  // observation, +1 when it restored, 0 when unchanged. Each adaptation
  // resets its streak, so K blown cycles cause one shrink, not K - shrink_after.
  int Observe(bool blown);

  double level() const { return level_; }
  int blown_streak() const { return blown_streak_; }
  int healthy_streak() const { return healthy_streak_; }

  // Overwrites the full controller state (crash-recovery import).
  void RestoreState(double level, int blown_streak, int healthy_streak);

 private:
  AimdOptions options_;
  double level_ = 1.0;
  int blown_streak_ = 0;
  int healthy_streak_ = 0;
};

// Scheduler-facing budget knobs (TetriSchedConfig::budget, DESIGN.md §13).
struct CycleBudgetOptions {
  // Wall-clock budget for one whole scheduling cycle, in seconds. 0 (the
  // default) disables deadline enforcement and adaptation entirely: no
  // deadline is armed and scheduling is bit-identical to pre-budget
  // behavior. Operationally this is the cycle period (paper: 4 s).
  double budget_seconds = 0.0;
  // Phase apportionment, as fractions of budget_seconds. The solve phase
  // gets whatever generation and compile left over, minus the commit
  // reserve; each phase that exceeds its share bumps a
  // tetrisched_budget_overrun_<phase>_total counter.
  double strl_gen_share = 0.10;
  double compile_share = 0.10;
  double commit_share = 0.10;
  // Overload adaptation. After aimd.shrink_after consecutive blown cycles
  // the effective plan-ahead shrinks multiplicatively toward the NP
  // configuration (one quantum) and rel_gap relaxes to relaxed_rel_gap;
  // after aimd.restore_after healthy cycles it restores additively.
  bool adapt_plan_ahead = true;
  bool adapt_rel_gap = true;
  double relaxed_rel_gap = 0.25;
  AimdOptions aimd;
};

}  // namespace tetrisched

#endif  // TETRISCHED_COMMON_BUDGET_H_
