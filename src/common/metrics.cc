#include "src/common/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>

#include "src/common/json.h"

namespace tetrisched {

namespace metrics_internal {
std::atomic<bool> g_observability_enabled{false};
}  // namespace metrics_internal

void SetObservabilityEnabled(bool enabled) {
  metrics_internal::g_observability_enabled.store(enabled,
                                                  std::memory_order_relaxed);
}

namespace {

constexpr double kHistInfinity = std::numeric_limits<double>::infinity();

// fetch_add for atomic<double> without relying on C++20 library support.
void AtomicAdd(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& target, double x) {
  double cur = target.load(std::memory_order_relaxed);
  while (x < cur && !target.compare_exchange_weak(cur, x,
                                                  std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double x) {
  double cur = target.load(std::memory_order_relaxed);
  while (x > cur && !target.compare_exchange_weak(cur, x,
                                                  std::memory_order_relaxed)) {
  }
}

std::string FormatNumber(double v) {
  if (std::isinf(v)) {
    return v > 0 ? "1e999" : "-1e999";  // JSON has no Infinity literal
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

double HistogramSnapshot::Percentile(double p) const {
  if (count <= 0) {
    return 0.0;
  }
  p = std::clamp(p, 0.0, 100.0);
  double target = (p / 100.0) * static_cast<double>(count);
  int64_t cumulative = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    int64_t in_bucket = buckets[b];
    if (in_bucket == 0) {
      continue;
    }
    if (static_cast<double>(cumulative + in_bucket) < target) {
      cumulative += in_bucket;
      continue;
    }
    // Interpolate within [lo, hi], using the observed extrema for the two
    // half-open end buckets.
    double lo = b == 0 ? min : bounds[b - 1];
    double hi = b < bounds.size() ? bounds[b] : max;
    lo = std::clamp(lo, min, max);
    hi = std::clamp(hi, min, max);
    double frac =
        (target - static_cast<double>(cumulative)) / in_bucket;
    return std::clamp(lo + frac * (hi - lo), min, max);
  }
  return max;
}

// Infinity sentinels make concurrent extremum tracking race-free: the CAS
// ordering predicate is correct from the very first observation. Snapshot()
// maps them back to 0 for the count == 0 case.
Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  std::sort(bounds_.begin(), bounds_.end());
  min_.store(kHistInfinity, std::memory_order_relaxed);
  max_.store(-kHistInfinity, std::memory_order_relaxed);
}

void Histogram::Observe(double x) {
  // Prometheus `le` semantics: bucket b counts bounds[b-1] < x <= bounds[b],
  // so a value equal to a bound lands in that bound's bucket.
  size_t b = std::lower_bound(bounds_.begin(), bounds_.end(), x) -
             bounds_.begin();
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, x);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicMin(min_, x);
  AtomicMax(max_, x);
}

HistogramSnapshot Histogram::Snapshot(const std::string& name) const {
  HistogramSnapshot snap;
  snap.name = name;
  snap.bounds = bounds_;
  snap.buckets.reserve(buckets_.size());
  for (const auto& bucket : buckets_) {
    snap.buckets.push_back(bucket.load(std::memory_order_relaxed));
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = min_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  if (snap.count == 0) {
    snap.min = 0.0;
    snap.max = 0.0;
  }
  return snap;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(kHistInfinity, std::memory_order_relaxed);
  max_.store(-kHistInfinity, std::memory_order_relaxed);
}

const std::vector<double>& DefaultLatencyBucketsMs() {
  static const std::vector<double> kBuckets = {
      0.01, 0.02, 0.05, 0.1,  0.2,  0.5,   1.0,   2.0,   5.0,    10.0,
      20.0, 50.0, 100., 200., 500., 1000., 2000., 5000., 10000.};
  return kBuckets;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(bounds);
  }
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.push_back(histogram->Snapshot(name));
  }
  return snap;
}

namespace {

// Instrument names may embed Prometheus labels ("name{k=\"v\"}"); the TYPE
// comment line must carry the bare metric name.
std::string PromBaseName(const std::string& name) {
  size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

}  // namespace

std::string MetricsRegistry::ToPrometheusText() const {
  MetricsSnapshot snap = Snapshot();
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    out += "# TYPE " + PromBaseName(name) + " counter\n";
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    out += "# TYPE " + PromBaseName(name) + " gauge\n";
    out += name + " " + FormatNumber(value) + "\n";
  }
  for (const HistogramSnapshot& h : snap.histograms) {
    out += "# TYPE " + h.name + " histogram\n";
    int64_t cumulative = 0;
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      cumulative += h.buckets[b];
      std::string le =
          b < h.bounds.size() ? FormatNumber(h.bounds[b]) : "+Inf";
      out += h.name + "_bucket{le=\"" + le + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += h.name + "_sum " + FormatNumber(h.sum) + "\n";
    out += h.name + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  MetricsSnapshot snap = Snapshot();
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(name) + "\": " + std::to_string(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(name) + "\": " + FormatNumber(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const HistogramSnapshot& h : snap.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(h.name) + "\": {\"count\": " +
           std::to_string(h.count) + ", \"sum\": " + FormatNumber(h.sum) +
           ", \"mean\": " + FormatNumber(h.Mean()) +
           ", \"min\": " + FormatNumber(h.min) +
           ", \"p50\": " + FormatNumber(h.Percentile(50)) +
           ", \"p95\": " + FormatNumber(h.Percentile(95)) +
           ", \"p99\": " + FormatNumber(h.Percentile(99)) +
           ", \"max\": " + FormatNumber(h.max) + ",\n      \"buckets\": [";
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) {
        out += ", ";
      }
      std::string le =
          b < h.bounds.size() ? FormatNumber(h.bounds[b]) : "\"+Inf\"";
      out += "{\"le\": " + le + ", \"count\": " +
             std::to_string(h.buckets[b]) + "}";
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

namespace {

// Captured at static-init time, close enough to process start for an
// uptime gauge.
const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();

std::string BuildCompilerString() {
#if defined(__clang_major__)
  return "clang-" + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__);
#elif defined(__GNUC__)
  return "gcc-" + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__);
#else
  return "unknown";
#endif
}

std::string BuildSanitizerString() {
  std::string out;
#if defined(__SANITIZE_ADDRESS__)
  out += "asan";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  out += "asan";
#endif
#endif
#if defined(__SANITIZE_THREAD__)
  out += out.empty() ? "tsan" : "+tsan";
#endif
  return out.empty() ? "none" : out;
}

}  // namespace

const std::string& BuildInfoMetricName() {
#ifndef TETRISCHED_VERSION
#define TETRISCHED_VERSION "dev"
#endif
  static const std::string name = "tetrisched_build_info{version=\"" +
                                  std::string(TETRISCHED_VERSION) +
                                  "\",compiler=\"" + BuildCompilerString() +
                                  "\",sanitizers=\"" +
                                  BuildSanitizerString() + "\"}";
  return name;
}

void UpdateProcessMetrics() {
  double uptime = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - g_process_start)
                      .count();
  GlobalMetrics().GetGauge("tetrisched_process_uptime_seconds")->Set(uptime);
  GlobalMetrics().GetGauge(BuildInfoMetricName())->Set(1.0);
}

}  // namespace tetrisched
