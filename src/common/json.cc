#include "src/common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace tetrisched {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

std::string JsonQuote(std::string_view s) {
  std::string out;
  std::string escaped = JsonEscape(s);
  out.reserve(escaped.size() + 2);
  out.push_back('"');
  out += escaped;
  out.push_back('"');
  return out;
}

std::string JsonNumber(double v) {
  if (std::isnan(v)) {
    return "null";  // JSON has no NaN literal
  }
  if (std::isinf(v)) {
    return v > 0 ? "1e999" : "-1e999";  // JSON has no Infinity literal
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  if (std::strtod(buf, nullptr) != v) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

// --- Builders ---------------------------------------------------------------

void JsonObj::Key(std::string_view key) {
  if (!body_.empty()) {
    body_ += ",";
  }
  body_ += JsonQuote(key);
  body_ += ":";
}

JsonObj& JsonObj::Field(std::string_view key, double v) {
  Key(key);
  body_ += JsonNumber(v);
  return *this;
}

JsonObj& JsonObj::Field(std::string_view key, int64_t v) {
  Key(key);
  body_ += std::to_string(v);
  return *this;
}

JsonObj& JsonObj::Field(std::string_view key, uint64_t v) {
  Key(key);
  body_ += std::to_string(v);
  return *this;
}

JsonObj& JsonObj::Field(std::string_view key, bool v) {
  Key(key);
  body_ += v ? "true" : "false";
  return *this;
}

JsonObj& JsonObj::Field(std::string_view key, std::string_view s) {
  Key(key);
  body_ += JsonQuote(s);
  return *this;
}

JsonObj& JsonObj::FieldRaw(std::string_view key, std::string_view raw_json) {
  Key(key);
  body_ += raw_json;
  return *this;
}

void JsonArr::Sep() {
  if (!body_.empty()) {
    body_ += ",";
  }
  ++count_;
}

JsonArr& JsonArr::Add(double v) {
  Sep();
  body_ += JsonNumber(v);
  return *this;
}

JsonArr& JsonArr::Add(int64_t v) {
  Sep();
  body_ += std::to_string(v);
  return *this;
}

JsonArr& JsonArr::Add(std::string_view s) {
  Sep();
  body_ += JsonQuote(s);
  return *this;
}

JsonArr& JsonArr::AddRaw(std::string_view raw_json) {
  Sep();
  body_ += raw_json;
  return *this;
}

// --- Parser -----------------------------------------------------------------

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [name, value] : members) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

double JsonValue::NumberOr(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->kind == Kind::kNumber ? v->number : fallback;
}

int64_t JsonValue::IntOr(std::string_view key, int64_t fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->kind == Kind::kNumber
             ? static_cast<int64_t>(std::llround(v->number))
             : fallback;
}

std::string JsonValue::StringOr(std::string_view key,
                                std::string_view fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->kind == Kind::kString ? v->string
                                                  : std::string(fallback);
}

bool JsonValue::BoolOr(std::string_view key, bool fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->kind == Kind::kBool ? v->bool_value : fallback;
}

namespace {

constexpr int kMaxDepth = 64;

struct Parser {
  std::string_view text;
  size_t pos = 0;
  std::string error;

  bool Fail(const std::string& message) {
    if (error.empty()) {
      error = message + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void SkipWs() {
    while (pos < text.size()) {
      char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos;
    }
  }

  bool Consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool Literal(std::string_view word) {
    if (text.substr(pos, word.size()) == word) {
      pos += word.size();
      return true;
    }
    return Fail("invalid literal");
  }

  // Appends `cp` (a Unicode scalar value) to `out` as UTF-8.
  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool Hex4(uint32_t* out) {
    if (pos + 4 > text.size()) {
      return Fail("truncated \\u escape");
    }
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text[pos++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Fail("bad hex digit in \\u escape");
      }
    }
    *out = value;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      return Fail("expected string");
    }
    out->clear();
    while (true) {
      if (pos >= text.size()) {
        return Fail("unterminated string");
      }
      char c = text[pos++];
      if (c == '"') {
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos >= text.size()) {
        return Fail("truncated escape");
      }
      char e = text[pos++];
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t cp = 0;
          if (!Hex4(&cp)) {
            return false;
          }
          // Surrogate pair: a high surrogate must be followed by \uDC00..
          if (cp >= 0xD800 && cp < 0xDC00 &&
              text.substr(pos, 2) == "\\u") {
            size_t save = pos;
            pos += 2;
            uint32_t low = 0;
            if (!Hex4(&low)) {
              return false;
            }
            if (low >= 0xDC00 && low < 0xE000) {
              cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
            } else {
              pos = save;  // lone surrogate; keep it as-is
            }
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
  }

  bool ParseNumber(double* out) {
    size_t start = pos;
    if (pos < text.size() && text[pos] == '-') {
      ++pos;
    }
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    if (pos == start) {
      return Fail("expected number");
    }
    std::string token(text.substr(start, pos - start));
    char* end = nullptr;
    *out = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos = start;
      return Fail("malformed number");
    }
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      return Fail("nesting too deep");
    }
    SkipWs();
    if (pos >= text.size()) {
      return Fail("unexpected end of input");
    }
    char c = text[pos];
    if (c == '{') {
      ++pos;
      out->kind = JsonValue::Kind::kObject;
      SkipWs();
      if (Consume('}')) {
        return true;
      }
      while (true) {
        SkipWs();
        std::string key;
        if (!ParseString(&key)) {
          return false;
        }
        SkipWs();
        if (!Consume(':')) {
          return Fail("expected ':'");
        }
        JsonValue value;
        if (!ParseValue(&value, depth + 1)) {
          return false;
        }
        out->members.emplace_back(std::move(key), std::move(value));
        SkipWs();
        if (Consume(',')) {
          continue;
        }
        if (Consume('}')) {
          return true;
        }
        return Fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos;
      out->kind = JsonValue::Kind::kArray;
      SkipWs();
      if (Consume(']')) {
        return true;
      }
      while (true) {
        JsonValue value;
        if (!ParseValue(&value, depth + 1)) {
          return false;
        }
        out->items.push_back(std::move(value));
        SkipWs();
        if (Consume(',')) {
          continue;
        }
        if (Consume(']')) {
          return true;
        }
        return Fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      return Literal("true");
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = false;
      return Literal("false");
    }
    if (c == 'n') {
      out->kind = JsonValue::Kind::kNull;
      return Literal("null");
    }
    out->kind = JsonValue::Kind::kNumber;
    return ParseNumber(&out->number);
  }
};

}  // namespace

bool JsonParse(std::string_view text, JsonValue* out, std::string* error) {
  Parser parser{text, 0, {}};
  *out = JsonValue{};
  bool ok = parser.ParseValue(out, 0);
  if (ok) {
    parser.SkipWs();
    if (parser.pos != text.size()) {
      ok = parser.Fail("trailing garbage");
    }
  }
  if (!ok && error != nullptr) {
    *error = parser.error;
  }
  return ok;
}

}  // namespace tetrisched
