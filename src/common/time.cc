#include "src/common/time.h"

#include <cstdio>

namespace tetrisched {

std::string FormatSimTime(SimTime t) {
  if (t == kTimeNever) {
    return "never";
  }
  const char* sign = t < 0 ? "-" : "";
  if (t < 0) {
    t = -t;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%lld:%02lld:%02lld", sign,
                static_cast<long long>(t / 3600),
                static_cast<long long>((t / 60) % 60),
                static_cast<long long>(t % 60));
  return buf;
}

}  // namespace tetrisched
