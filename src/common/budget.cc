#include "src/common/budget.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tetrisched {

int64_t CancelToken::NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void CancelToken::ArmAfterSeconds(double seconds) {
  if (!std::isfinite(seconds)) {
    Disarm();
    return;
  }
  ArmAtNanos(NowNanos() + static_cast<int64_t>(seconds * 1e9));
}

void CancelToken::ArmAtNanos(int64_t deadline_ns) {
  deadline_ns_.store(deadline_ns, std::memory_order_relaxed);
}

void CancelToken::Cancel() {
  deadline_ns_.store(INT64_MIN, std::memory_order_relaxed);
}

void CancelToken::Disarm() {
  deadline_ns_.store(kUnarmed, std::memory_order_relaxed);
}

double CancelToken::RemainingSeconds() const {
  int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline == kUnarmed) {
    return std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(deadline - NowNanos()) * 1e-9;
}

DeadlinePool::DeadlinePool(double total_seconds, double total_weight)
    : end_(std::chrono::steady_clock::now() +
           std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double>(std::max(total_seconds, 0.0)))),
      outstanding_weight_(std::max(total_weight, 0.0)) {}

double DeadlinePool::AcquireSeconds(double weight, double floor_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  double remaining =
      std::chrono::duration<double>(end_ - std::chrono::steady_clock::now())
          .count();
  remaining = std::max(remaining, 0.0);
  double share = outstanding_weight_ > 0.0
                     ? remaining * (weight / outstanding_weight_)
                     : remaining;
  return std::max(floor_seconds, std::min(share, remaining));
}

void DeadlinePool::Release(double weight) {
  std::lock_guard<std::mutex> lock(mu_);
  outstanding_weight_ = std::max(outstanding_weight_ - weight, 0.0);
}

int AimdController::Observe(bool blown) {
  if (blown) {
    ++blown_streak_;
    healthy_streak_ = 0;
    if (blown_streak_ >= options_.shrink_after &&
        level_ > options_.min_level) {
      level_ = std::max(options_.min_level, level_ * options_.shrink_factor);
      blown_streak_ = 0;
      return -1;
    }
    return 0;
  }
  ++healthy_streak_;
  blown_streak_ = 0;
  if (healthy_streak_ >= options_.restore_after && level_ < 1.0) {
    level_ = std::min(1.0, level_ + options_.restore_step);
    healthy_streak_ = 0;
    return 1;
  }
  return 0;
}

void AimdController::RestoreState(double level, int blown_streak,
                                  int healthy_streak) {
  level_ = std::clamp(level, options_.min_level, 1.0);
  blown_streak_ = std::max(blown_streak, 0);
  healthy_streak_ = std::max(healthy_streak, 0);
}

}  // namespace tetrisched
