#include "src/common/rng.h"

#include <cassert>
#include <numeric>

namespace tetrisched {

size_t Rng::WeightedIndex(std::span<const double> weights) {
  assert(!weights.empty());
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  assert(total > 0.0);
  double draw = UniformReal(0.0, total);
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (draw < cumulative) {
      return i;
    }
  }
  return weights.size() - 1;  // Floating-point slack on the last bucket.
}

}  // namespace tetrisched
