#include "src/common/atomic_io.h"

#include <cstdio>
#include <fstream>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace tetrisched {

bool WriteFileAtomic(const std::string& path, std::string_view content) {
#ifdef _WIN32
  long pid = static_cast<long>(_getpid());
#else
  long pid = static_cast<long>(getpid());
#endif
  std::string tmp = path + ".tmp." + std::to_string(pid);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return false;
    }
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace tetrisched
