// Fixed-size pool of worker threads draining a FIFO task queue.
//
// The parallel branch-and-bound solver (src/solver/milp.cc) submits one
// long-running search loop per worker; any other subsystem may submit short
// tasks the same way. Wait() blocks until every submitted task has finished,
// so one pool can be reused across submission rounds. The destructor drains
// remaining tasks before joining.

#ifndef TETRISCHED_COMMON_THREAD_POOL_H_
#define TETRISCHED_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tetrisched {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();  // runs queued tasks to completion, then joins

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished running.
  void Wait();

  int size() const { return static_cast<int>(threads_.size()); }

  // Hardware concurrency with a floor of 1 (the standard allows 0 to mean
  // "unknown").
  static int HardwareThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: task available or stopping
  std::condition_variable idle_cv_;  // Wait(): all tasks drained
  std::queue<std::function<void()>> tasks_;
  int in_flight_ = 0;  // queued + currently running tasks
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace tetrisched

#endif  // TETRISCHED_COMMON_THREAD_POOL_H_
