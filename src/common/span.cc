#include "src/common/span.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

#include "src/common/json.h"

namespace tetrisched {
namespace span_internal {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point ProcessEpoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

struct SpanCrashHook {
  std::atomic<bool> armed{false};
  const char* name = nullptr;
  void (*fn)() = nullptr;
  std::thread::id thread;
};

SpanCrashHook& CrashHook() {
  static SpanCrashHook hook;
  return hook;
}

}  // namespace

void ArmSpanCrashHook(const char* name, void (*fn)()) {
  SpanCrashHook& hook = CrashHook();
  hook.name = name;
  hook.fn = fn;
  hook.thread = std::this_thread::get_id();
  hook.armed.store(true, std::memory_order_release);
}

void DisarmSpanCrashHook() {
  CrashHook().armed.store(false, std::memory_order_release);
}

bool SpanCrashHookArmed() {
  return CrashHook().armed.load(std::memory_order_relaxed);
}

void MaybeFireSpanCrashHook(const char* name) {
  SpanCrashHook& hook = CrashHook();
  if (!hook.armed.load(std::memory_order_acquire) ||
      std::this_thread::get_id() != hook.thread ||
      std::strcmp(name, hook.name) != 0) {
    return;
  }
  // Disarm before firing: the callback throws, and the unwinding path
  // constructs spans of its own.
  hook.armed.store(false, std::memory_order_release);
  hook.fn();
}

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            ProcessEpoch())
          .count());
}

uint32_t CurrentThreadId() {
  static std::atomic<uint32_t> next_id{0};
  thread_local uint32_t id = next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

int32_t& CurrentDepth() {
  thread_local int32_t depth = 0;
  return depth;
}

}  // namespace span_internal

SpanCollector& SpanCollector::Global() {
  static SpanCollector* collector = new SpanCollector();
  return *collector;
}

void SpanCollector::Record(const SpanRecord& span) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(span);
}

std::vector<SpanRecord> SpanCollector::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

size_t SpanCollector::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

void SpanCollector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
}

std::string SpanCollector::ToChromeTraceJson() const {
  std::vector<SpanRecord> spans = Snapshot();
  std::string out = "{\"traceEvents\": [";
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& span = spans[i];
    if (i > 0) {
      out += ",";
    }
    out += "\n  {\"name\": \"";
    out += JsonEscape(span.name);
    out += "\", \"cat\": \"tetrisched\", \"ph\": \"X\", \"ts\": " +
           std::to_string(span.start_us) +
           ", \"dur\": " + std::to_string(span.duration_us) +
           ", \"pid\": 1, \"tid\": " + std::to_string(span.thread) +
           ", \"args\": {\"depth\": " + std::to_string(span.depth) + "}}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

}  // namespace tetrisched
