#include "src/common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace tetrisched {
namespace {

int InitialThreshold() {
  return static_cast<int>(
      ParseLogLevel(std::getenv("TETRISCHED_LOG_LEVEL"), LogLevel::kWarning));
}

std::atomic<int> g_threshold{InitialThreshold()};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel ParseLogLevel(const char* name, LogLevel fallback) {
  if (name == nullptr || *name == '\0') {
    return fallback;
  }
  std::string lowered(name);
  for (char& c : lowered) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lowered == "debug") {
    return LogLevel::kDebug;
  }
  if (lowered == "info") {
    return LogLevel::kInfo;
  }
  if (lowered == "warning" || lowered == "warn") {
    return LogLevel::kWarning;
  }
  if (lowered == "error") {
    return LogLevel::kError;
  }
  return fallback;
}

void SetLogLevel(LogLevel level) {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool LogRateLimiter::ShouldLog(int64_t key, int64_t tick,
                               int64_t* suppressed) {
  KeyState& state = keys_[key];
  if (state.emitted && tick - state.last_emit_tick < every_n_ticks_) {
    ++state.suppressed;
    if (suppressed != nullptr) {
      *suppressed = 0;
    }
    return false;
  }
  if (suppressed != nullptr) {
    *suppressed = state.suppressed;
  }
  state.suppressed = 0;
  state.last_emit_tick = tick;
  state.emitted = true;
  return true;
}

std::string LogRateLimiter::SuppressedSuffix(int64_t suppressed) {
  if (suppressed <= 0) {
    return std::string();
  }
  return " (+" + std::to_string(suppressed) + " suppressed)";
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_threshold.load(std::memory_order_relaxed));
}

namespace log_internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_threshold.load(std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level_), Basename(file_),
               line_, stream_.str().c_str());
}

}  // namespace log_internal
}  // namespace tetrisched
