#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace tetrisched {
namespace {

std::atomic<int> g_threshold{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_threshold.load(std::memory_order_relaxed));
}

namespace log_internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_threshold.load(std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level_), Basename(file_),
               line_, stream_.str().c_str());
}

}  // namespace log_internal
}  // namespace tetrisched
