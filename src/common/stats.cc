#include "src/common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace tetrisched {

void SampleStats::Add(double x) {
  samples_.push_back(x);
  sum_ += x;
  sorted_valid_ = false;
}

const std::vector<double>& SampleStats::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  return sorted_;
}

double SampleStats::Mean() const {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double SampleStats::Min() const {
  return samples_.empty() ? 0.0
                          : *std::min_element(samples_.begin(), samples_.end());
}

double SampleStats::Max() const {
  return samples_.empty() ? 0.0
                          : *std::max_element(samples_.begin(), samples_.end());
}

double SampleStats::Percentile(double p) const {
  assert(p >= 0.0 && p <= 100.0);
  if (samples_.empty()) {
    return 0.0;
  }
  const std::vector<double>& sorted = EnsureSorted();
  if (sorted.size() == 1) {
    return sorted[0];
  }
  double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = static_cast<size_t>(std::ceil(rank));
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::vector<double> SampleStats::Sorted() const { return EnsureSorted(); }

std::vector<std::pair<double, double>> SampleStats::Cdf(
    size_t max_points) const {
  std::vector<std::pair<double, double>> points;
  if (samples_.empty() || max_points == 0) {
    return points;
  }
  const std::vector<double>& sorted = EnsureSorted();
  size_t n = sorted.size();
  size_t step = std::max<size_t>(1, n / max_points);
  for (size_t i = 0; i < n; i += step) {
    points.emplace_back(sorted[i],
                        static_cast<double>(i + 1) / static_cast<double>(n));
  }
  if (points.back().second < 1.0) {
    points.emplace_back(sorted.back(), 1.0);
  }
  return points;
}

std::string FormatPercent(double numerator, double denominator) {
  if (denominator <= 0.0) {
    return "n/a";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * numerator / denominator);
  return buf;
}

}  // namespace tetrisched
