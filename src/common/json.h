// Minimal JSON utilities shared by every exporter (metrics, trace spans,
// bench records, decision provenance) and by the explain CLI.
//
// Emission side: JsonEscape/JsonQuote implement the full RFC 8259 string
// escaping rules (quotes, backslashes, and every control character below
// 0x20; non-ASCII bytes pass through as UTF-8), JsonNumber formats doubles
// with the repo-wide convention that infinities become the out-of-range
// literal 1e999, and JsonObj/JsonArr are tiny append-only builders for
// hand-rolled exports.
//
// Parse side: JsonValue + JsonParse form a small recursive-descent parser
// covering the full JSON grammar (objects, arrays, strings with \uXXXX
// escapes, numbers, booleans, null). It exists for round-trip tests and the
// provenance explain tooling, not for speed; inputs are artifacts this repo
// itself wrote.

#ifndef TETRISCHED_COMMON_JSON_H_
#define TETRISCHED_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tetrisched {

// Escapes `s` for inclusion inside a JSON string literal (no surrounding
// quotes). Control characters use the short escapes where JSON defines them
// (\b \f \n \r \t) and \u00XX otherwise; bytes >= 0x20 other than '"' and
// '\\' pass through unchanged (UTF-8 sequences are legal JSON as-is).
std::string JsonEscape(std::string_view s);

// `"` + JsonEscape(s) + `"`.
std::string JsonQuote(std::string_view s);

// Shortest round-trippable rendering of `v` (%.17g trimmed via %.9g first);
// infinities render as the out-of-range literal 1e999 / -1e999 and NaN as
// null, since JSON has no literals for either.
std::string JsonNumber(double v);

// --- Builders ---------------------------------------------------------------

class JsonArr;

// Append-only JSON object builder:
//   JsonObj().Field("job", 7).Field("kind", "offered").str()
class JsonObj {
 public:
  JsonObj& Field(std::string_view key, double v);
  JsonObj& Field(std::string_view key, int64_t v);
  JsonObj& Field(std::string_view key, int v) {
    return Field(key, static_cast<int64_t>(v));
  }
  JsonObj& Field(std::string_view key, uint64_t v);
  JsonObj& Field(std::string_view key, bool v);
  JsonObj& Field(std::string_view key, std::string_view s);
  JsonObj& Field(std::string_view key, const char* s) {
    return Field(key, std::string_view(s));
  }
  // Splices `raw_json` verbatim as the value (caller guarantees validity).
  JsonObj& FieldRaw(std::string_view key, std::string_view raw_json);

  bool empty() const { return body_.empty(); }
  std::string str() const { return "{" + body_ + "}"; }

 private:
  void Key(std::string_view key);
  std::string body_;
};

class JsonArr {
 public:
  JsonArr& Add(double v);
  JsonArr& Add(int64_t v);
  JsonArr& Add(std::string_view s);
  JsonArr& AddRaw(std::string_view raw_json);

  bool empty() const { return body_.empty(); }
  size_t size() const { return count_; }
  std::string str() const { return "[" + body_ + "]"; }

 private:
  void Sep();
  std::string body_;
  size_t count_ = 0;
};

// --- Parser -----------------------------------------------------------------

// Parsed JSON document. Object member order is preserved (duplicate keys are
// kept; Find returns the first).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> items;                              // kArray
  std::vector<std::pair<std::string, JsonValue>> members;    // kObject

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  // First member named `key`, or nullptr (also when not an object).
  const JsonValue* Find(std::string_view key) const;

  // Typed lookups with defaults, for tolerant consumers.
  double NumberOr(std::string_view key, double fallback) const;
  int64_t IntOr(std::string_view key, int64_t fallback) const;
  std::string StringOr(std::string_view key, std::string_view fallback) const;
  bool BoolOr(std::string_view key, bool fallback) const;
};

// Parses exactly one JSON document (trailing whitespace allowed, trailing
// garbage rejected). On failure returns false and, when `error` is non-null,
// stores a message with the byte offset of the problem.
bool JsonParse(std::string_view text, JsonValue* out,
               std::string* error = nullptr);

}  // namespace tetrisched

#endif  // TETRISCHED_COMMON_JSON_H_
