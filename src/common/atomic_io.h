// Crash-atomic file replacement for every artifact this repo exports
// (metrics JSON/Prometheus text, Chrome traces, bench JSON, journal
// snapshots).
//
// A process that dies mid-export must never leave a truncated artifact at
// the destination path: consumers (CI validators, perf-tracking scripts,
// recovery) treat whatever is at the path as complete. WriteFileAtomic
// therefore streams the content to `<path>.tmp.<pid>` in the same directory
// and renames it over the destination only after a successful write+close —
// rename(2) within one directory is atomic, so readers observe either the
// old file or the new one, never a prefix.

#ifndef TETRISCHED_COMMON_ATOMIC_IO_H_
#define TETRISCHED_COMMON_ATOMIC_IO_H_

#include <string>
#include <string_view>

namespace tetrisched {

// Atomically replaces `path` with `content`. Returns false (leaving any
// previous file intact and cleaning up the temporary) if the temporary
// cannot be written or renamed; the caller decides whether to log.
bool WriteFileAtomic(const std::string& path, std::string_view content);

}  // namespace tetrisched

#endif  // TETRISCHED_COMMON_ATOMIC_IO_H_
