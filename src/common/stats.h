// Lightweight statistics helpers used by the metrics pipeline and benches.

#ifndef TETRISCHED_COMMON_STATS_H_
#define TETRISCHED_COMMON_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace tetrisched {

// Accumulates a stream of samples; supports mean/min/max online and
// percentiles from a retained copy. The sorted copy is cached and only
// rebuilt after new samples arrive, so a flush that queries many quantiles
// (p50/p95/p99/Cdf) pays the O(n log n) sort once, not per query.
class SampleStats {
 public:
  void Add(double x);

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double sum() const { return sum_; }
  double Mean() const;
  double Min() const;
  double Max() const;

  // p in [0, 100]; linear interpolation between closest ranks.
  double Percentile(double p) const;

  // Sorted copy of the samples (the empirical CDF support).
  std::vector<double> Sorted() const;

  // Points (x, F(x)) of the empirical CDF, downsampled to at most
  // `max_points` evenly spaced quantiles. Used by the Fig-12 CDF bench.
  std::vector<std::pair<double, double>> Cdf(size_t max_points = 100) const;

 private:
  // Sorts into sorted_ if stale and returns it.
  const std::vector<double>& EnsureSorted() const;

  std::vector<double> samples_;
  double sum_ = 0.0;
  mutable std::vector<double> sorted_;  // cache; valid iff sorted_valid_
  mutable bool sorted_valid_ = false;
};

// Fraction rendered as "NN.N%" (or "n/a" for 0 denominators).
std::string FormatPercent(double numerator, double denominator);

}  // namespace tetrisched

#endif  // TETRISCHED_COMMON_STATS_H_
