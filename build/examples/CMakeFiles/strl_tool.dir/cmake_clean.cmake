file(REMOVE_RECURSE
  "CMakeFiles/strl_tool.dir/strl_tool.cpp.o"
  "CMakeFiles/strl_tool.dir/strl_tool.cpp.o.d"
  "strl_tool"
  "strl_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strl_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
