# Empty dependencies file for strl_tool.
# This may be replaced when dependencies are built.
