
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/strl_tool.cpp" "examples/CMakeFiles/strl_tool.dir/strl_tool.cpp.o" "gcc" "examples/CMakeFiles/strl_tool.dir/strl_tool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compiler/CMakeFiles/tetri_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/strl/CMakeFiles/tetri_strl.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/tetri_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/tetri_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tetri_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
