# Empty compiler generated dependencies file for gpu_affinity.
# This may be replaced when dependencies are built.
