file(REMOVE_RECURSE
  "CMakeFiles/gpu_affinity.dir/gpu_affinity.cpp.o"
  "CMakeFiles/gpu_affinity.dir/gpu_affinity.cpp.o.d"
  "gpu_affinity"
  "gpu_affinity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_affinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
