file(REMOVE_RECURSE
  "CMakeFiles/production_mix.dir/production_mix.cpp.o"
  "CMakeFiles/production_mix.dir/production_mix.cpp.o.d"
  "production_mix"
  "production_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/production_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
