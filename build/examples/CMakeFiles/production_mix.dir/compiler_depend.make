# Empty compiler generated dependencies file for production_mix.
# This may be replaced when dependencies are built.
