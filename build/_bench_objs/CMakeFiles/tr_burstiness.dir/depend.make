# Empty dependencies file for tr_burstiness.
# This may be replaced when dependencies are built.
