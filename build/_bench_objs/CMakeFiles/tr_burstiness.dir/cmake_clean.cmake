file(REMOVE_RECURSE
  "../bench/tr_burstiness"
  "../bench/tr_burstiness.pdb"
  "CMakeFiles/tr_burstiness.dir/tr_burstiness.cc.o"
  "CMakeFiles/tr_burstiness.dir/tr_burstiness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tr_burstiness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
