# Empty dependencies file for fig08_gsmix_error_sweep.
# This may be replaced when dependencies are built.
