# Empty dependencies file for ablation_waiting.
# This may be replaced when dependencies are built.
