file(REMOVE_RECURSE
  "../bench/ablation_waiting"
  "../bench/ablation_waiting.pdb"
  "CMakeFiles/ablation_waiting.dir/ablation_waiting.cc.o"
  "CMakeFiles/ablation_waiting.dir/ablation_waiting.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_waiting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
