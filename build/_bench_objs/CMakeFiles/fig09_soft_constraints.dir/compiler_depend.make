# Empty compiler generated dependencies file for fig09_soft_constraints.
# This may be replaced when dependencies are built.
