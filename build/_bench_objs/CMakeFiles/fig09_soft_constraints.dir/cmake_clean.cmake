file(REMOVE_RECURSE
  "../bench/fig09_soft_constraints"
  "../bench/fig09_soft_constraints.pdb"
  "CMakeFiles/fig09_soft_constraints.dir/fig09_soft_constraints.cc.o"
  "CMakeFiles/fig09_soft_constraints.dir/fig09_soft_constraints.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_soft_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
