file(REMOVE_RECURSE
  "../bench/fig11_planahead_sweep"
  "../bench/fig11_planahead_sweep.pdb"
  "CMakeFiles/fig11_planahead_sweep.dir/fig11_planahead_sweep.cc.o"
  "CMakeFiles/fig11_planahead_sweep.dir/fig11_planahead_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_planahead_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
