# Empty dependencies file for fig04_milp_example.
# This may be replaced when dependencies are built.
