file(REMOVE_RECURSE
  "../bench/fig04_milp_example"
  "../bench/fig04_milp_example.pdb"
  "CMakeFiles/fig04_milp_example.dir/fig04_milp_example.cc.o"
  "CMakeFiles/fig04_milp_example.dir/fig04_milp_example.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_milp_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
