file(REMOVE_RECURSE
  "../bench/fig06_grmix_error_sweep"
  "../bench/fig06_grmix_error_sweep.pdb"
  "CMakeFiles/fig06_grmix_error_sweep.dir/fig06_grmix_error_sweep.cc.o"
  "CMakeFiles/fig06_grmix_error_sweep.dir/fig06_grmix_error_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_grmix_error_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
