# Empty dependencies file for fig06_grmix_error_sweep.
# This may be replaced when dependencies are built.
