# Empty compiler generated dependencies file for fig07_grslo_error_sweep.
# This may be replaced when dependencies are built.
