file(REMOVE_RECURSE
  "../bench/fig10_global_vs_greedy"
  "../bench/fig10_global_vs_greedy.pdb"
  "CMakeFiles/fig10_global_vs_greedy.dir/fig10_global_vs_greedy.cc.o"
  "CMakeFiles/fig10_global_vs_greedy.dir/fig10_global_vs_greedy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_global_vs_greedy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
