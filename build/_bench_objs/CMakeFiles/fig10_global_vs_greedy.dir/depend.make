# Empty dependencies file for fig10_global_vs_greedy.
# This may be replaced when dependencies are built.
