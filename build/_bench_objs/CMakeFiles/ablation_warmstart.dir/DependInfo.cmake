
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_warmstart.cc" "_bench_objs/CMakeFiles/ablation_warmstart.dir/ablation_warmstart.cc.o" "gcc" "_bench_objs/CMakeFiles/ablation_warmstart.dir/ablation_warmstart.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/_bench_objs/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tetri_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rayon/CMakeFiles/tetri_rayon.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/tetri_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tetri_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tetri_core.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/tetri_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/strl/CMakeFiles/tetri_strl.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/tetri_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/tetri_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tetri_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
