file(REMOVE_RECURSE
  "../bench/ablation_warmstart"
  "../bench/ablation_warmstart.pdb"
  "CMakeFiles/ablation_warmstart.dir/ablation_warmstart.cc.o"
  "CMakeFiles/ablation_warmstart.dir/ablation_warmstart.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_warmstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
