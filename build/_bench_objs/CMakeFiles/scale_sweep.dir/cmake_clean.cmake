file(REMOVE_RECURSE
  "../bench/scale_sweep"
  "../bench/scale_sweep.pdb"
  "CMakeFiles/scale_sweep.dir/scale_sweep.cc.o"
  "CMakeFiles/scale_sweep.dir/scale_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scale_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
