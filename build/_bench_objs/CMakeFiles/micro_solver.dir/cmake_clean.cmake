file(REMOVE_RECURSE
  "../bench/micro_solver"
  "../bench/micro_solver.pdb"
  "CMakeFiles/micro_solver.dir/micro_solver.cc.o"
  "CMakeFiles/micro_solver.dir/micro_solver.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
