file(REMOVE_RECURSE
  "../bench/ablation_preemption"
  "../bench/ablation_preemption.pdb"
  "CMakeFiles/ablation_preemption.dir/ablation_preemption.cc.o"
  "CMakeFiles/ablation_preemption.dir/ablation_preemption.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_preemption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
