file(REMOVE_RECURSE
  "../bench/ablation_partitions"
  "../bench/ablation_partitions.pdb"
  "CMakeFiles/ablation_partitions.dir/ablation_partitions.cc.o"
  "CMakeFiles/ablation_partitions.dir/ablation_partitions.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_partitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
