# Empty dependencies file for table1_fig05_config.
# This may be replaced when dependencies are built.
