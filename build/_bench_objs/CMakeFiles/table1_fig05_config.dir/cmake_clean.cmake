file(REMOVE_RECURSE
  "../bench/table1_fig05_config"
  "../bench/table1_fig05_config.pdb"
  "CMakeFiles/table1_fig05_config.dir/table1_fig05_config.cc.o"
  "CMakeFiles/table1_fig05_config.dir/table1_fig05_config.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_fig05_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
