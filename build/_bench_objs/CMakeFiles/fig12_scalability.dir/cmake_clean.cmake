file(REMOVE_RECURSE
  "../bench/fig12_scalability"
  "../bench/fig12_scalability.pdb"
  "CMakeFiles/fig12_scalability.dir/fig12_scalability.cc.o"
  "CMakeFiles/fig12_scalability.dir/fig12_scalability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
