file(REMOVE_RECURSE
  "CMakeFiles/tetri_cluster.dir/availability.cc.o"
  "CMakeFiles/tetri_cluster.dir/availability.cc.o.d"
  "CMakeFiles/tetri_cluster.dir/cluster.cc.o"
  "CMakeFiles/tetri_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/tetri_cluster.dir/ledger.cc.o"
  "CMakeFiles/tetri_cluster.dir/ledger.cc.o.d"
  "libtetri_cluster.a"
  "libtetri_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tetri_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
