# Empty dependencies file for tetri_cluster.
# This may be replaced when dependencies are built.
