# Empty compiler generated dependencies file for tetri_common.
# This may be replaced when dependencies are built.
