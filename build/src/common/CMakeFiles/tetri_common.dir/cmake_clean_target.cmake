file(REMOVE_RECURSE
  "libtetri_common.a"
)
