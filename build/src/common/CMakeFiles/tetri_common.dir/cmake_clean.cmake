file(REMOVE_RECURSE
  "CMakeFiles/tetri_common.dir/logging.cc.o"
  "CMakeFiles/tetri_common.dir/logging.cc.o.d"
  "CMakeFiles/tetri_common.dir/rng.cc.o"
  "CMakeFiles/tetri_common.dir/rng.cc.o.d"
  "CMakeFiles/tetri_common.dir/stats.cc.o"
  "CMakeFiles/tetri_common.dir/stats.cc.o.d"
  "CMakeFiles/tetri_common.dir/time.cc.o"
  "CMakeFiles/tetri_common.dir/time.cc.o.d"
  "libtetri_common.a"
  "libtetri_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tetri_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
