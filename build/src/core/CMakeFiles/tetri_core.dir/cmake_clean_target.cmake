file(REMOVE_RECURSE
  "libtetri_core.a"
)
