file(REMOVE_RECURSE
  "CMakeFiles/tetri_core.dir/estimator.cc.o"
  "CMakeFiles/tetri_core.dir/estimator.cc.o.d"
  "CMakeFiles/tetri_core.dir/job.cc.o"
  "CMakeFiles/tetri_core.dir/job.cc.o.d"
  "CMakeFiles/tetri_core.dir/plan_render.cc.o"
  "CMakeFiles/tetri_core.dir/plan_render.cc.o.d"
  "CMakeFiles/tetri_core.dir/scheduler.cc.o"
  "CMakeFiles/tetri_core.dir/scheduler.cc.o.d"
  "CMakeFiles/tetri_core.dir/strl_gen.cc.o"
  "CMakeFiles/tetri_core.dir/strl_gen.cc.o.d"
  "libtetri_core.a"
  "libtetri_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tetri_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
