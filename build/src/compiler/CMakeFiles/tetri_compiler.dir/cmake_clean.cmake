file(REMOVE_RECURSE
  "CMakeFiles/tetri_compiler.dir/compiler.cc.o"
  "CMakeFiles/tetri_compiler.dir/compiler.cc.o.d"
  "libtetri_compiler.a"
  "libtetri_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tetri_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
