file(REMOVE_RECURSE
  "libtetri_compiler.a"
)
