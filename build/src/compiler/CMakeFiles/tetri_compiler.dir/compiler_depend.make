# Empty compiler generated dependencies file for tetri_compiler.
# This may be replaced when dependencies are built.
