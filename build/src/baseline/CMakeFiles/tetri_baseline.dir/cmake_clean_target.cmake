file(REMOVE_RECURSE
  "libtetri_baseline.a"
)
