# Empty dependencies file for tetri_baseline.
# This may be replaced when dependencies are built.
