file(REMOVE_RECURSE
  "CMakeFiles/tetri_baseline.dir/capacity_scheduler.cc.o"
  "CMakeFiles/tetri_baseline.dir/capacity_scheduler.cc.o.d"
  "CMakeFiles/tetri_baseline.dir/delay_scheduler.cc.o"
  "CMakeFiles/tetri_baseline.dir/delay_scheduler.cc.o.d"
  "libtetri_baseline.a"
  "libtetri_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tetri_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
