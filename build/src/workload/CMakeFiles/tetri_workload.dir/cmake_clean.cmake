file(REMOVE_RECURSE
  "CMakeFiles/tetri_workload.dir/workload.cc.o"
  "CMakeFiles/tetri_workload.dir/workload.cc.o.d"
  "libtetri_workload.a"
  "libtetri_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tetri_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
