# Empty compiler generated dependencies file for tetri_workload.
# This may be replaced when dependencies are built.
