file(REMOVE_RECURSE
  "libtetri_workload.a"
)
