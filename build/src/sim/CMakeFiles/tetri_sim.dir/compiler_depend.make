# Empty compiler generated dependencies file for tetri_sim.
# This may be replaced when dependencies are built.
