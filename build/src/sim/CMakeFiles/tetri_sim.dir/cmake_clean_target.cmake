file(REMOVE_RECURSE
  "libtetri_sim.a"
)
