file(REMOVE_RECURSE
  "CMakeFiles/tetri_rayon.dir/rayon.cc.o"
  "CMakeFiles/tetri_rayon.dir/rayon.cc.o.d"
  "libtetri_rayon.a"
  "libtetri_rayon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tetri_rayon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
