file(REMOVE_RECURSE
  "libtetri_rayon.a"
)
