# Empty compiler generated dependencies file for tetri_rayon.
# This may be replaced when dependencies are built.
