file(REMOVE_RECURSE
  "libtetri_solver.a"
)
