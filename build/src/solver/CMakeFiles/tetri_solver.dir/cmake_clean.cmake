file(REMOVE_RECURSE
  "CMakeFiles/tetri_solver.dir/milp.cc.o"
  "CMakeFiles/tetri_solver.dir/milp.cc.o.d"
  "CMakeFiles/tetri_solver.dir/model.cc.o"
  "CMakeFiles/tetri_solver.dir/model.cc.o.d"
  "CMakeFiles/tetri_solver.dir/presolve.cc.o"
  "CMakeFiles/tetri_solver.dir/presolve.cc.o.d"
  "CMakeFiles/tetri_solver.dir/simplex.cc.o"
  "CMakeFiles/tetri_solver.dir/simplex.cc.o.d"
  "libtetri_solver.a"
  "libtetri_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tetri_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
