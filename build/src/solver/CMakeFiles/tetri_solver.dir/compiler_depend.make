# Empty compiler generated dependencies file for tetri_solver.
# This may be replaced when dependencies are built.
