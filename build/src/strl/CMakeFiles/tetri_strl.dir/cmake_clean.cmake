file(REMOVE_RECURSE
  "CMakeFiles/tetri_strl.dir/parser.cc.o"
  "CMakeFiles/tetri_strl.dir/parser.cc.o.d"
  "CMakeFiles/tetri_strl.dir/strl.cc.o"
  "CMakeFiles/tetri_strl.dir/strl.cc.o.d"
  "CMakeFiles/tetri_strl.dir/value.cc.o"
  "CMakeFiles/tetri_strl.dir/value.cc.o.d"
  "libtetri_strl.a"
  "libtetri_strl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tetri_strl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
