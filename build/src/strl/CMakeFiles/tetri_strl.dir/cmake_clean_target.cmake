file(REMOVE_RECURSE
  "libtetri_strl.a"
)
