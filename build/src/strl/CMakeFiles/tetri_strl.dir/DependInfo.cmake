
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/strl/parser.cc" "src/strl/CMakeFiles/tetri_strl.dir/parser.cc.o" "gcc" "src/strl/CMakeFiles/tetri_strl.dir/parser.cc.o.d"
  "/root/repo/src/strl/strl.cc" "src/strl/CMakeFiles/tetri_strl.dir/strl.cc.o" "gcc" "src/strl/CMakeFiles/tetri_strl.dir/strl.cc.o.d"
  "/root/repo/src/strl/value.cc" "src/strl/CMakeFiles/tetri_strl.dir/value.cc.o" "gcc" "src/strl/CMakeFiles/tetri_strl.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tetri_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/tetri_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
