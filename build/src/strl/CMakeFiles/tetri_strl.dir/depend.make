# Empty dependencies file for tetri_strl.
# This may be replaced when dependencies are built.
