file(REMOVE_RECURSE
  "CMakeFiles/strl_test.dir/strl_test.cc.o"
  "CMakeFiles/strl_test.dir/strl_test.cc.o.d"
  "strl_test"
  "strl_test.pdb"
  "strl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
