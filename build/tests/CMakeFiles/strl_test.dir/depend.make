# Empty dependencies file for strl_test.
# This may be replaced when dependencies are built.
