file(REMOVE_RECURSE
  "CMakeFiles/strl_gen_test.dir/strl_gen_test.cc.o"
  "CMakeFiles/strl_gen_test.dir/strl_gen_test.cc.o.d"
  "strl_gen_test"
  "strl_gen_test.pdb"
  "strl_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strl_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
