# Empty compiler generated dependencies file for strl_gen_test.
# This may be replaced when dependencies are built.
