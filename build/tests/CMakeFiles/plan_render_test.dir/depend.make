# Empty dependencies file for plan_render_test.
# This may be replaced when dependencies are built.
