file(REMOVE_RECURSE
  "CMakeFiles/plan_render_test.dir/plan_render_test.cc.o"
  "CMakeFiles/plan_render_test.dir/plan_render_test.cc.o.d"
  "plan_render_test"
  "plan_render_test.pdb"
  "plan_render_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_render_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
