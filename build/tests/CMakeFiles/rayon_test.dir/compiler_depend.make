# Empty compiler generated dependencies file for rayon_test.
# This may be replaced when dependencies are built.
