file(REMOVE_RECURSE
  "CMakeFiles/delay_scheduler_test.dir/delay_scheduler_test.cc.o"
  "CMakeFiles/delay_scheduler_test.dir/delay_scheduler_test.cc.o.d"
  "delay_scheduler_test"
  "delay_scheduler_test.pdb"
  "delay_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delay_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
