# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/strl_test[1]_include.cmake")
include("/root/repo/build/tests/compiler_test[1]_include.cmake")
include("/root/repo/build/tests/rayon_test[1]_include.cmake")
include("/root/repo/build/tests/strl_gen_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/estimator_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/plan_render_test[1]_include.cmake")
include("/root/repo/build/tests/presolve_test[1]_include.cmake")
include("/root/repo/build/tests/delay_scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/invariants_test[1]_include.cmake")
include("/root/repo/build/tests/solver_stress_test[1]_include.cmake")
