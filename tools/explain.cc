// tetrisched_explain: interrogate a provenance JSONL export.
//
// Usage:
//   tetrisched_explain [--file PATH] [--job J] [--cycle C]
//                      [--slo-misses] [--summary]
//
// PATH defaults to $TETRISCHED_PROVENANCE_JSONL, so a simulation run and
// the explain invocation that follows can share one environment variable.
// With no query flags, prints the summary digest. Exit codes: 0 on success,
// 1 when the export cannot be read, 2 on usage errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/obs/explain.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--file PATH] [--job J] [--cycle C] "
               "[--slo-misses] [--summary]\n"
               "PATH defaults to $TETRISCHED_PROVENANCE_JSONL\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  if (const char* env = std::getenv("TETRISCHED_PROVENANCE_JSONL")) {
    path = env;
  }
  bool want_summary = false;
  bool want_slo_misses = false;
  std::vector<int64_t> jobs;
  std::vector<int64_t> cycles;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(arg, "--file") == 0) {
      const char* value = next();
      if (value == nullptr) {
        return Usage(argv[0]);
      }
      path = value;
    } else if (std::strcmp(arg, "--job") == 0) {
      const char* value = next();
      if (value == nullptr) {
        return Usage(argv[0]);
      }
      jobs.push_back(std::strtoll(value, nullptr, 10));
    } else if (std::strcmp(arg, "--cycle") == 0) {
      const char* value = next();
      if (value == nullptr) {
        return Usage(argv[0]);
      }
      cycles.push_back(std::strtoll(value, nullptr, 10));
    } else if (std::strcmp(arg, "--slo-misses") == 0) {
      want_slo_misses = true;
    } else if (std::strcmp(arg, "--summary") == 0) {
      want_summary = true;
    } else if (std::strcmp(arg, "--help") == 0 ||
               std::strcmp(arg, "-h") == 0) {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return Usage(argv[0]);
    }
  }

  if (path.empty()) {
    std::fprintf(stderr,
                 "no provenance export: pass --file or set "
                 "TETRISCHED_PROVENANCE_JSONL\n");
    return Usage(argv[0]);
  }

  tetrisched::ProvLog log;
  std::string error;
  if (!tetrisched::LoadProvenanceJsonl(path, &log, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  if (!want_summary && !want_slo_misses && jobs.empty() && cycles.empty()) {
    want_summary = true;
  }
  if (want_summary) {
    std::fputs(tetrisched::ExplainSummary(log).c_str(), stdout);
  }
  for (int64_t job : jobs) {
    std::fputs(tetrisched::ExplainJob(log, job).c_str(), stdout);
  }
  for (int64_t cycle : cycles) {
    std::fputs(tetrisched::ExplainCycle(log, cycle).c_str(), stdout);
  }
  if (want_slo_misses) {
    std::fputs(tetrisched::ExplainSloMisses(log).c_str(), stdout);
  }
  return 0;
}
