// tetrisched_ctl: command-line client for a running tetrischedd.
//
// Usage:
//   tetrisched_ctl COMMAND (--socket PATH | --port N) [options]
//
// Commands:
//   submit   --file SPEC.json | --strl-file PATH | --strl TEXT
//            | [--type T --k K --runtime S [--slowdown F]
//               [--deadline-in S] [--reservation]]
//            [--count N] (repeat the submission N times)
//   status   [--job J]
//   cancel   --job J
//   explain  [--job J]
//   metrics  [--format json|prom]
//   drain
//   shutdown
//
// Shared options: --client NAME (admission fairness bucket),
// --timeout-ms MS. Exit codes: 0 success, 1 connection/response failure or
// unreadable input file, 2 usage errors (unknown flags, missing values).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "src/client/client.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s COMMAND (--socket PATH | --port N) [options]\n"
      "commands:\n"
      "  submit   --file SPEC.json | --strl-file PATH | --strl TEXT\n"
      "           | [--type T --k K --runtime S [--slowdown F]\n"
      "              [--deadline-in S] [--reservation]] [--count N]\n"
      "  status   [--job J]\n"
      "  cancel   --job J\n"
      "  explain  [--job J]\n"
      "  metrics  [--format json|prom]\n"
      "  drain\n"
      "  shutdown\n"
      "shared: --client NAME, --timeout-ms MS\n",
      argv0);
  return 2;
}

bool ReadWholeFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return in.good() || in.eof();
}

// Prints the fields of a reply the caller cares about and maps it to an
// exit code.
int Report(const tetrisched::ServiceReply& reply) {
  if (!reply.transport_ok) {
    std::fprintf(stderr, "error: %s\n", reply.message.c_str());
    return 1;
  }
  if (!reply.ok) {
    std::fprintf(stderr, "error: %s (%s)", reply.error.c_str(),
                 reply.message.c_str());
    if (reply.retry_after_ms >= 0) {
      std::fprintf(stderr, " retry_after_ms=%lld",
                   static_cast<long long>(reply.retry_after_ms));
    }
    std::fprintf(stderr, "\n");
    return 1;
  }
  // Large text payloads print verbatim; everything else as the raw JSON.
  std::string report = reply.body.StringOr("report", "");
  std::string metrics = reply.body.StringOr("metrics", "");
  if (!report.empty()) {
    std::fputs(report.c_str(), stdout);
  } else if (!metrics.empty()) {
    std::fputs(metrics.c_str(), stdout);
  } else {
    // Scalar response fields as "key=value" pairs, envelope omitted.
    std::printf("ok");
    for (const auto& [key, value] : reply.body.members) {
      if (key == "v" || key == "id" || key == "ok") {
        continue;
      }
      if (value.is_number()) {
        std::printf(" %s=%lld", key.c_str(),
                    static_cast<long long>(value.number));
      } else if (value.is_string()) {
        std::printf(" %s=%s", key.c_str(), value.string.c_str());
      } else if (value.kind == tetrisched::JsonValue::Kind::kBool) {
        std::printf(" %s=%s", key.c_str(),
                    value.bool_value ? "true" : "false");
      }
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage(argv[0]);
  }
  std::string command = argv[1];
  if (command == "--help" || command == "-h") {
    Usage(argv[0]);
    return 0;
  }
  if (command != "submit" && command != "status" && command != "cancel" &&
      command != "explain" && command != "metrics" && command != "drain" &&
      command != "shutdown") {
    std::fprintf(stderr, "unknown command: %s\n", command.c_str());
    return Usage(argv[0]);
  }

  std::string socket_path;
  int port = -1;
  std::string client_name;
  int timeout_ms = 10000;
  std::string spec_file;
  std::string strl_file;
  std::string strl_text;
  std::string type;
  int64_t k = -1;
  int64_t runtime = -1;
  double slowdown = 1.0;
  int64_t deadline_in = -1;
  bool reservation = false;
  int64_t count = 1;
  int64_t job = -1;
  std::string format = "json";

  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto next_str = [&](std::string* out) {
      const char* value = next();
      if (value == nullptr) {
        return false;
      }
      *out = value;
      return true;
    };
    auto next_int = [&](int64_t* out) {
      const char* value = next();
      if (value == nullptr) {
        return false;
      }
      *out = std::strtoll(value, nullptr, 10);
      return true;
    };
    int64_t n = 0;
    if (std::strcmp(arg, "--socket") == 0 && next_str(&socket_path)) {
    } else if (std::strcmp(arg, "--port") == 0 && next_int(&n)) {
      port = static_cast<int>(n);
    } else if (std::strcmp(arg, "--client") == 0 && next_str(&client_name)) {
    } else if (std::strcmp(arg, "--timeout-ms") == 0 && next_int(&n)) {
      timeout_ms = static_cast<int>(n);
    } else if (std::strcmp(arg, "--file") == 0 && next_str(&spec_file)) {
    } else if (std::strcmp(arg, "--strl-file") == 0 && next_str(&strl_file)) {
    } else if (std::strcmp(arg, "--strl") == 0 && next_str(&strl_text)) {
    } else if (std::strcmp(arg, "--type") == 0 && next_str(&type)) {
    } else if (std::strcmp(arg, "--k") == 0 && next_int(&k)) {
    } else if (std::strcmp(arg, "--runtime") == 0 && next_int(&runtime)) {
    } else if (std::strcmp(arg, "--slowdown") == 0) {
      const char* value = next();
      if (value == nullptr) {
        return Usage(argv[0]);
      }
      slowdown = std::strtod(value, nullptr);
    } else if (std::strcmp(arg, "--deadline-in") == 0 &&
               next_int(&deadline_in)) {
    } else if (std::strcmp(arg, "--reservation") == 0) {
      reservation = true;
    } else if (std::strcmp(arg, "--count") == 0 && next_int(&count)) {
    } else if (std::strcmp(arg, "--job") == 0 && next_int(&job)) {
    } else if (std::strcmp(arg, "--format") == 0 && next_str(&format)) {
    } else {
      std::fprintf(stderr, "unknown or incomplete argument: %s\n", arg);
      return Usage(argv[0]);
    }
  }

  if (socket_path.empty() && port < 0) {
    std::fprintf(stderr, "no endpoint: pass --socket or --port\n");
    return Usage(argv[0]);
  }

  // Validate submit inputs before connecting, so a bad file fails fast.
  std::string spec_json;
  if (command == "submit") {
    if (!spec_file.empty()) {
      if (!ReadWholeFile(spec_file, &spec_json)) {
        std::fprintf(stderr, "cannot read spec file: %s\n",
                     spec_file.c_str());
        return 1;
      }
    } else if (!strl_file.empty()) {
      if (!ReadWholeFile(strl_file, &strl_text)) {
        std::fprintf(stderr, "cannot read STRL file: %s\n",
                     strl_file.c_str());
        return 1;
      }
    } else if (strl_text.empty()) {
      if (type.empty() || k <= 0 || runtime <= 0) {
        std::fprintf(stderr,
                     "submit needs --file, --strl[-file], or --type/--k/"
                     "--runtime\n");
        return Usage(argv[0]);
      }
    }
  }
  if (command == "cancel" && job < 0) {
    std::fprintf(stderr, "cancel needs --job\n");
    return Usage(argv[0]);
  }

  tetrisched::ServiceClient client =
      socket_path.empty() ? tetrisched::ServiceClient::ConnectTcp(port)
                          : tetrisched::ServiceClient::ConnectUnix(socket_path);
  if (!client.connected()) {
    std::fprintf(stderr, "cannot connect to tetrischedd\n");
    return 1;
  }
  client.set_timeout_ms(timeout_ms);
  if (!client_name.empty()) {
    client.set_client_name(client_name);
  }

  if (command == "submit") {
    int failures = 0;
    for (int64_t i = 0; i < count; ++i) {
      tetrisched::ServiceReply reply;
      if (!spec_json.empty()) {
        tetrisched::JsonObj fields;
        fields.FieldRaw("job", spec_json);
        reply = client.Call("submit", fields);
      } else if (!strl_text.empty()) {
        tetrisched::JsonObj fields;
        fields.Field("strl", strl_text);
        if (deadline_in > 0) {
          fields.Field("deadline_in", deadline_in);
        }
        if (reservation) {
          fields.Field("reservation", true);
        }
        reply = client.Call("submit", fields);
      } else {
        tetrisched::JsonObj spec;
        spec.Field("type", type);
        spec.Field("k", k);
        spec.Field("runtime", runtime);
        spec.Field("slowdown", slowdown);
        if (deadline_in > 0) {
          spec.Field("deadline_in", deadline_in);
        }
        if (reservation) {
          spec.Field("reservation", true);
        }
        reply = client.SubmitSpec(spec);
      }
      if (Report(reply) != 0) {
        ++failures;
        if (!reply.transport_ok) {
          return 1;  // connection gone; stop retrying
        }
      }
    }
    return failures == 0 ? 0 : 1;
  }
  if (command == "status") {
    return Report(job >= 0 ? client.StatusOf(job) : client.Status());
  }
  if (command == "cancel") {
    return Report(client.Cancel(job));
  }
  if (command == "explain") {
    return Report(client.Explain(job));
  }
  if (command == "metrics") {
    tetrisched::ServiceReply reply = client.Metrics(format);
    if (reply.transport_ok && reply.ok && format == "json") {
      // Print the nested metrics object itself.
      if (const tetrisched::JsonValue* m = reply.body.Find("metrics");
          m != nullptr && m->is_object()) {
        // Re-encode minimally: the daemon sent it verbatim from the
        // registry, so just confirm receipt with the counters count.
        std::printf("metrics: %zu counters, %zu gauges\n",
                    m->Find("counters") != nullptr
                        ? m->Find("counters")->members.size()
                        : 0,
                    m->Find("gauges") != nullptr
                        ? m->Find("gauges")->members.size()
                        : 0);
        return 0;
      }
    }
    return Report(reply);
  }
  if (command == "drain") {
    return Report(client.Drain());
  }
  return Report(client.Shutdown());
}
