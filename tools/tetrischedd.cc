// tetrischedd: the TetriSched scheduler as a long-running service
// (DESIGN.md §16).
//
// Usage:
//   tetrischedd --socket PATH | --port N [--journal DIR]
//               [--racks R] [--nodes-per-rack N] [--gpu-racks G]
//               [--cycle-ms MS] [--sim-seconds-per-cycle S]
//               [--plan-ahead S] [--quantum S]
//               [--max-queued N] [--admit-per-cycle N] [--max-pending N]
//               [--idle-timeout-ms MS] [--no-provenance]
//
// At least one listener (--socket and/or --port; --port 0 picks a free
// port, printed on startup) is required. With --journal the daemon
// journals every acceptance/launch/completion through a write-ahead log
// in DIR and a SIGTERM/SIGINT triggers drain -> final checkpoint -> clean
// exit; a restart with the same DIR resumes accepted-but-unfinished jobs.
// Exit codes: 0 clean shutdown, 1 startup failure, 2 usage errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "src/persist/journal.h"
#include "src/service/daemon.h"
#include "src/service/signals.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --socket PATH | --port N [--journal DIR]\n"
      "          [--racks R] [--nodes-per-rack N] [--gpu-racks G]\n"
      "          [--cycle-ms MS] [--sim-seconds-per-cycle S]\n"
      "          [--plan-ahead S] [--quantum S]\n"
      "          [--max-queued N] [--admit-per-cycle N] [--max-pending N]\n"
      "          [--idle-timeout-ms MS] [--no-provenance]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  tetrisched::DaemonOptions options;
  std::string journal_dir;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto next_int = [&](int64_t* out) {
      const char* value = next();
      if (value == nullptr) {
        return false;
      }
      *out = std::strtoll(value, nullptr, 10);
      return true;
    };
    int64_t n = 0;
    if (std::strcmp(arg, "--socket") == 0) {
      const char* value = next();
      if (value == nullptr) {
        return Usage(argv[0]);
      }
      options.unix_socket_path = value;
    } else if (std::strcmp(arg, "--port") == 0 && next_int(&n)) {
      options.tcp_port = static_cast<int>(n);
    } else if (std::strcmp(arg, "--journal") == 0) {
      const char* value = next();
      if (value == nullptr) {
        return Usage(argv[0]);
      }
      journal_dir = value;
    } else if (std::strcmp(arg, "--racks") == 0 && next_int(&n)) {
      options.racks = static_cast<int>(n);
    } else if (std::strcmp(arg, "--nodes-per-rack") == 0 && next_int(&n)) {
      options.nodes_per_rack = static_cast<int>(n);
    } else if (std::strcmp(arg, "--gpu-racks") == 0 && next_int(&n)) {
      options.gpu_racks = static_cast<int>(n);
    } else if (std::strcmp(arg, "--cycle-ms") == 0 && next_int(&n)) {
      options.cycle_period_ms = n;
    } else if (std::strcmp(arg, "--sim-seconds-per-cycle") == 0 &&
               next_int(&n)) {
      options.sim_seconds_per_cycle = n;
    } else if (std::strcmp(arg, "--plan-ahead") == 0 && next_int(&n)) {
      options.scheduler.plan_ahead = n;
    } else if (std::strcmp(arg, "--quantum") == 0 && next_int(&n)) {
      options.scheduler.quantum = n;
    } else if (std::strcmp(arg, "--max-queued") == 0 && next_int(&n)) {
      options.admission.max_queued = static_cast<int>(n);
    } else if (std::strcmp(arg, "--admit-per-cycle") == 0 && next_int(&n)) {
      options.admission.admit_per_cycle = static_cast<int>(n);
    } else if (std::strcmp(arg, "--max-pending") == 0 && next_int(&n)) {
      options.max_pending_jobs = static_cast<int>(n);
    } else if (std::strcmp(arg, "--idle-timeout-ms") == 0 && next_int(&n)) {
      options.idle_timeout_ms = n;
    } else if (std::strcmp(arg, "--no-provenance") == 0) {
      options.enable_provenance = false;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return Usage(argv[0]);
    }
  }

  if (options.unix_socket_path.empty() && options.tcp_port < 0) {
    std::fprintf(stderr, "no listener: pass --socket and/or --port\n");
    return Usage(argv[0]);
  }

  std::unique_ptr<tetrisched::FileJournalStorage> storage;
  if (!journal_dir.empty()) {
    storage = std::make_unique<tetrisched::FileJournalStorage>(journal_dir);
    options.storage = storage.get();
  }

  tetrisched::SchedulerDaemon daemon(std::move(options));
  if (!daemon.Start()) {
    std::fprintf(stderr, "tetrischedd: failed to bind listeners\n");
    return 1;
  }
  if (!tetrisched::InstallTerminationSignalHandlers(daemon.wakeup_fd())) {
    std::fprintf(stderr, "tetrischedd: failed to install signal handlers\n");
    return 1;
  }
  if (daemon.tcp_port() >= 0) {
    std::printf("tetrischedd listening on 127.0.0.1:%d\n", daemon.tcp_port());
  }
  if (!daemon.options().unix_socket_path.empty()) {
    std::printf("tetrischedd listening on %s\n",
                daemon.options().unix_socket_path.c_str());
  }
  if (daemon.recovered_pending() + daemon.recovered_running() > 0) {
    std::printf("tetrischedd resumed %d pending + %d running jobs\n",
                daemon.recovered_pending(), daemon.recovered_running());
  }
  std::fflush(stdout);

  daemon.Run();
  tetrisched::RestoreDefaultSignalHandlers();
  std::printf("tetrischedd: clean shutdown\n");
  return 0;
}
