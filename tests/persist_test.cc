// Tests for the persistence subsystem (DESIGN.md §11): CRC32 framing,
// torn-tail/corruption truncation, the durable-event and snapshot codecs,
// journal replay semantics (ApplyEvent), Rayon agenda export/restore and
// replay equivalence, and the PersistenceManager checkpoint/recover cycle.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/persist/journal.h"
#include "src/persist/persist.h"
#include "src/persist/records.h"
#include "src/rayon/rayon.h"

namespace tetrisched {
namespace {

// --- CRC32 and framing ------------------------------------------------------

TEST(Crc32Test, MatchesIeeeCheckValue) {
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_NE(Crc32("a"), Crc32("b"));
}

TEST(FrameTest, RoundTripsMultipleFrames) {
  std::string journal;
  std::vector<std::string> payloads = {"alpha", "", "gamma with spaces",
                                       std::string(1000, '\x7f')};
  for (const std::string& p : payloads) {
    journal += EncodeFrame(p);
  }
  DecodedJournal decoded = DecodeFrames(journal, /*log_dropped=*/false);
  EXPECT_EQ(decoded.payloads, payloads);
  EXPECT_EQ(decoded.valid_bytes, journal.size());
  EXPECT_EQ(decoded.dropped_records, 0);
}

TEST(FrameTest, TornTailTruncatedAtLastFrame) {
  std::string journal = EncodeFrame("first") + EncodeFrame("second");
  size_t intact = journal.size();
  journal += EncodeFrame("torn").substr(0, 10);  // header + partial payload
  DecodedJournal decoded = DecodeFrames(journal, /*log_dropped=*/false);
  ASSERT_EQ(decoded.payloads.size(), 2u);
  EXPECT_EQ(decoded.payloads[1], "second");
  EXPECT_EQ(decoded.valid_bytes, intact);
  EXPECT_EQ(decoded.dropped_records, 1);
}

TEST(FrameTest, BitFlipDropsEverythingFromFirstBadCrc) {
  std::string f1 = EncodeFrame("one");
  std::string f2 = EncodeFrame("two");
  std::string f3 = EncodeFrame("three");
  std::string journal = f1 + f2 + f3;
  journal[f1.size() + 8] ^= 0x01;  // flip a payload bit inside frame 2
  DecodedJournal decoded = DecodeFrames(journal, /*log_dropped=*/false);
  ASSERT_EQ(decoded.payloads.size(), 1u);
  EXPECT_EQ(decoded.payloads[0], "one");
  EXPECT_EQ(decoded.valid_bytes, f1.size());
  // Frames 2 and 3 are both past the first bad CRC: one warning each.
  EXPECT_EQ(decoded.dropped_records, 2);
}

TEST(FrameTest, GarbageJournalYieldsNothing) {
  DecodedJournal decoded =
      DecodeFrames("not a journal at all", /*log_dropped=*/false);
  EXPECT_TRUE(decoded.payloads.empty());
  EXPECT_EQ(decoded.valid_bytes, 0u);
  EXPECT_GE(decoded.dropped_records, 1);
}

// --- Durable-event codec ----------------------------------------------------

DurableEvent FullEvent() {
  DurableEvent event;
  event.kind = DurableEventKind::kCommitIntent;
  event.time = 1234;
  event.job = 7;
  event.k = 4;
  event.interval = {10, 90};
  event.retries = 2;
  event.eligible_at = 60;
  event.slo_class = 1;
  event.preferred = true;
  event.runtime = 33;
  event.gang = GangRecord{7, {{0, 2}, {3, 1}}, 12, 45, 33};
  event.gangs = {GangRecord{8, {{1, 1}}, 12, 20, 8},
                 GangRecord{9, {{2, 3}}, 12, 52, 40}};
  event.drops = {11, 12};
  event.preempts = {13};
  event.blob = std::string("opaque\0policy\x01state", 19);
  return event;
}

TEST(EventCodecTest, RoundTripsEveryField) {
  DurableEvent event = FullEvent();
  DurableEvent decoded;
  ASSERT_TRUE(DecodeEvent(EncodeEvent(event), &decoded));
  EXPECT_EQ(decoded, event);
}

TEST(EventCodecTest, RoundTripsEveryKind) {
  for (uint8_t kind = 1; kind <= 11; ++kind) {
    DurableEvent event = FullEvent();
    event.kind = static_cast<DurableEventKind>(kind);
    DurableEvent decoded;
    ASSERT_TRUE(DecodeEvent(EncodeEvent(event), &decoded))
        << ToString(event.kind);
    EXPECT_EQ(decoded, event) << ToString(event.kind);
  }
}

TEST(EventCodecTest, RejectsTruncatedAndTrailingBytes) {
  std::string bytes = EncodeEvent(FullEvent());
  DurableEvent decoded;
  EXPECT_FALSE(DecodeEvent(bytes.substr(0, bytes.size() / 2), &decoded));
  EXPECT_FALSE(DecodeEvent(bytes + "x", &decoded));
  EXPECT_FALSE(DecodeEvent("", &decoded));
}

// --- Snapshot codec ---------------------------------------------------------

RecoveredState FullState() {
  RecoveredState state;
  state.checkpoint_time = 400;
  state.rayon = RayonState{16, 5, 2, {{0, 4}, {100, -4}}};
  state.running[3] = GangRecord{3, {{0, 2}}, 380, 420, 40};
  state.running[5] = GangRecord{5, {{1, 1}, {2, 1}}, 396, 500, 104};
  state.retries[9] = RetryRecord{9, 2, 410, 390};
  state.finished = {1, 2};
  state.slo[3] = SloRecord{3, 1, {380, 430}};
  state.completions = {CompletionRecord{1, true, 50},
                       CompletionRecord{2, false, 61}};
  state.policy_state = "warm-start-blob";
  state.pending_intent =
      PendingIntent{400, {GangRecord{6, {{0, 1}}, 400, 440, 40}}, {8}, {5}};
  return state;
}

TEST(SnapshotCodecTest, RoundTripsFullState) {
  RecoveredState state = FullState();
  RecoveredState decoded;
  ASSERT_TRUE(DecodeSnapshot(EncodeSnapshot(state), &decoded));
  EXPECT_EQ(decoded, state);
}

TEST(SnapshotCodecTest, RoundTripsWithoutPendingIntent) {
  RecoveredState state = FullState();
  state.pending_intent.reset();
  RecoveredState decoded;
  ASSERT_TRUE(DecodeSnapshot(EncodeSnapshot(state), &decoded));
  EXPECT_EQ(decoded, state);
  EXPECT_FALSE(decoded.pending_intent.has_value());
}

TEST(SnapshotCodecTest, RejectsCorruptBytes) {
  std::string bytes = EncodeSnapshot(FullState());
  RecoveredState decoded;
  EXPECT_FALSE(DecodeSnapshot(bytes.substr(0, bytes.size() - 3), &decoded));
  EXPECT_FALSE(DecodeSnapshot("junk", &decoded));
}

// --- Replay semantics (ApplyEvent) ------------------------------------------

DurableEvent Launch(JobId job, SimTime start, SimDuration dur) {
  DurableEvent event;
  event.kind = DurableEventKind::kGangLaunch;
  event.time = start;
  event.gang = GangRecord{job, {{0, 1}}, start, start + dur, dur};
  return event;
}

TEST(ApplyEventTest, TwoPhaseCommitIntentThenApplied) {
  RecoveredState state;
  DurableEvent intent;
  intent.kind = DurableEventKind::kCommitIntent;
  intent.time = 8;
  intent.gangs = {GangRecord{1, {{0, 2}}, 8, 28, 20}};
  intent.drops = {4};
  ApplyEvent(state, intent);
  ASSERT_TRUE(state.pending_intent.has_value());
  EXPECT_EQ(state.pending_intent->gangs, intent.gangs);

  ApplyEvent(state, Launch(1, 8, 20));
  EXPECT_EQ(state.running.count(1), 1u);

  DurableEvent applied;
  applied.kind = DurableEventKind::kCommitApplied;
  applied.blob = "plan";
  ApplyEvent(state, applied);
  EXPECT_FALSE(state.pending_intent.has_value());
  EXPECT_EQ(state.policy_state, "plan");
}

TEST(ApplyEventTest, LaunchIsIdempotentAndClosesKillGap) {
  RecoveredState state;
  DurableEvent kill;
  kill.kind = DurableEventKind::kGangKill;
  kill.time = 50;
  kill.job = 1;
  kill.retries = 1;
  kill.eligible_at = 54;
  ApplyEvent(state, kill);
  EXPECT_EQ(state.running.count(1), 0u);
  EXPECT_EQ(state.retries[1].last_kill, 50);

  ApplyEvent(state, Launch(1, 60, 20));
  ApplyEvent(state, Launch(1, 60, 20));  // replay of the same record
  EXPECT_EQ(state.running.size(), 1u);
  EXPECT_EQ(state.retries[1].last_kill, -1);
  EXPECT_EQ(state.retries[1].retries, 1);  // kill count survives the restart
}

TEST(ApplyEventTest, CompleteAndDropRetireJobs) {
  RecoveredState state;
  ApplyEvent(state, Launch(1, 0, 10));
  ApplyEvent(state, Launch(2, 0, 10));

  DurableEvent complete;
  complete.kind = DurableEventKind::kGangComplete;
  complete.job = 1;
  complete.preferred = true;
  complete.runtime = 9;
  ApplyEvent(state, complete);

  DurableEvent dropped;
  dropped.kind = DurableEventKind::kJobDropped;
  dropped.job = 2;
  ApplyEvent(state, dropped);

  EXPECT_TRUE(state.running.empty());
  EXPECT_EQ(state.finished, (std::set<JobId>{1, 2}));
  ASSERT_EQ(state.completions.size(), 1u);
  EXPECT_EQ(state.completions[0].runtime, 9);
}

// --- Rayon export/restore and replay equivalence ----------------------------

TEST(RayonStateTest, RestoreOfExportIsExactNoOp) {
  RayonAdmission live(8);
  live.Submit({1, 4, 20, 0, 100});
  live.Submit({2, 6, 30, 0, 100});
  live.Submit({3, 8, 50, 0, 60});  // may reject: counters must round-trip too
  RayonState exported = live.ExportState();

  RayonAdmission restored(0);
  restored.Restore(exported);
  EXPECT_EQ(restored.ExportState(), exported);
  // Both must make identical future decisions.
  RayonAdmission copy(8);
  copy.Restore(exported);
  ReservationDecision a = restored.Submit({9, 3, 25, 0, 200});
  ReservationDecision b = copy.Submit({9, 3, 25, 0, 200});
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.interval, b.interval);
}

TEST(RayonStateTest, JournalReplayMatchesLiveAgenda) {
  RayonAdmission live(8);
  RecoveredState image;
  image.rayon = live.ExportState();

  auto journal_admit = [&](JobId job, int k, SimDuration dur, SimTime lo,
                           SimTime hi) {
    ReservationDecision decision = live.Submit({job, k, dur, lo, hi});
    DurableEvent event;
    event.job = job;
    event.k = k;
    if (decision.accepted) {
      event.kind = DurableEventKind::kRayonAdmit;
      event.interval = decision.interval;
    } else {
      event.kind = DurableEventKind::kRayonReject;
    }
    ApplyEvent(image, event);
    return decision;
  };

  journal_admit(1, 4, 20, 0, 100);
  journal_admit(2, 6, 30, 0, 100);
  journal_admit(3, 8, 50, 0, 60);
  ReservationDecision first = journal_admit(4, 2, 10, 0, 40);

  // Release one accepted reservation and journal it.
  if (first.accepted) {
    live.Release(first.interval, 2);
    DurableEvent release;
    release.kind = DurableEventKind::kRayonRelease;
    release.job = 4;
    release.k = 2;
    release.interval = first.interval;
    ApplyEvent(image, release);
  }

  EXPECT_EQ(image.rayon, live.ExportState());
}

// --- PersistenceManager -----------------------------------------------------

DurableEvent SloEvent(JobId job, SimTime lo, SimTime hi) {
  DurableEvent event;
  event.kind = DurableEventKind::kSloUpdate;
  event.job = job;
  event.slo_class = 1;
  event.interval = {lo, hi};
  return event;
}

TEST(PersistenceManagerTest, RecoverReplaysSnapshotPlusJournal) {
  auto storage = std::make_unique<MemoryJournalStorage>();
  PersistenceManager persist(std::move(storage), {.snapshot_every = 0});

  RecoveredState base;
  base.checkpoint_time = 100;
  base.finished = {1};
  persist.Checkpoint(base);
  persist.Append(Launch(2, 104, 50));
  persist.Append(SloEvent(2, 104, 160));

  RecoveryResult rec = persist.Recover();
  EXPECT_TRUE(rec.snapshot_loaded);
  EXPECT_EQ(rec.replayed, 2);
  EXPECT_EQ(rec.dropped, 0);
  EXPECT_EQ(rec.state.checkpoint_time, 100);
  EXPECT_EQ(rec.state.finished, (std::set<JobId>{1}));
  EXPECT_EQ(rec.state.running.count(2), 1u);
  EXPECT_EQ(rec.state.slo.count(2), 1u);
}

TEST(PersistenceManagerTest, SnapshotCadenceTruncatesJournal) {
  auto storage = std::make_unique<MemoryJournalStorage>();
  MemoryJournalStorage* raw = storage.get();
  PersistenceManager persist(std::move(storage), {.snapshot_every = 3});

  RecoveredState image;
  for (JobId job = 1; job <= 2; ++job) {
    DurableEvent event = Launch(job, 0, 10);
    persist.Append(event);
    ApplyEvent(image, event);
    EXPECT_FALSE(persist.MaybeCheckpoint(image));
  }
  DurableEvent third = Launch(3, 0, 10);
  persist.Append(third);
  ApplyEvent(image, third);
  EXPECT_TRUE(persist.MaybeCheckpoint(image));
  EXPECT_TRUE(raw->ReadJournal().empty());
  EXPECT_EQ(persist.journal_records(), 0);
  EXPECT_EQ(persist.snapshots_taken(), 1);

  RecoveryResult rec = persist.Recover();
  EXPECT_TRUE(rec.snapshot_loaded);
  EXPECT_EQ(rec.replayed, 0);
  EXPECT_EQ(rec.state.running.size(), 3u);
}

TEST(PersistenceManagerTest, CorruptTailTruncatedAndPersisted) {
  auto storage = std::make_unique<MemoryJournalStorage>();
  MemoryJournalStorage* raw = storage.get();
  PersistenceManager persist(std::move(storage),
                             {.snapshot_every = 0, .log_dropped = false});

  persist.Append(Launch(1, 0, 10));
  size_t intact = raw->ReadJournal().size();
  persist.Append(Launch(2, 4, 10));
  raw->mutable_journal().back() ^= 0x40;  // corrupt the last record

  RecoveryResult rec = persist.Recover();
  EXPECT_EQ(rec.replayed, 1);
  EXPECT_EQ(rec.dropped, 1);
  EXPECT_EQ(rec.state.running.count(1), 1u);
  EXPECT_EQ(rec.state.running.count(2), 0u);
  // The bad tail was truncated on disk: the journal is the valid prefix.
  EXPECT_EQ(raw->ReadJournal().size(), intact);

  RecoveryResult again = persist.Recover();
  EXPECT_EQ(again.dropped, 0);
  EXPECT_EQ(again.state, rec.state);
}

TEST(PersistenceManagerTest, CorruptSnapshotFallsBackToEmptyState) {
  auto storage = std::make_unique<MemoryJournalStorage>();
  MemoryJournalStorage* raw = storage.get();
  PersistenceManager persist(std::move(storage), {.snapshot_every = 0});

  persist.Checkpoint(FullState());
  raw->mutable_snapshot().resize(raw->mutable_snapshot().size() / 2);
  persist.Append(Launch(1, 0, 10));

  RecoveryResult rec = persist.Recover();
  EXPECT_FALSE(rec.snapshot_loaded);
  EXPECT_EQ(rec.replayed, 1);  // journal still replays on the empty base
  EXPECT_EQ(rec.state.running.count(1), 1u);
}

TEST(FileJournalStorageTest, PersistsAcrossReopen) {
  std::string dir =
      (std::filesystem::temp_directory_path() /
       ("tetri_persist_test_" + std::to_string(::getpid()))).string();
  std::filesystem::create_directories(dir);

  {
    PersistenceManager persist(std::make_unique<FileJournalStorage>(dir),
                               {.snapshot_every = 0});
    RecoveredState base;
    base.checkpoint_time = 7;
    persist.Checkpoint(base);
    persist.Append(Launch(1, 8, 10));
  }
  {
    PersistenceManager persist(std::make_unique<FileJournalStorage>(dir),
                               {.snapshot_every = 0});
    RecoveryResult rec = persist.Recover();
    EXPECT_TRUE(rec.snapshot_loaded);
    EXPECT_EQ(rec.state.checkpoint_time, 7);
    EXPECT_EQ(rec.replayed, 1);
    EXPECT_EQ(rec.state.running.count(1), 1u);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace tetrisched
