// Tests for the observability layer: metrics registry semantics, snapshot
// isolation, concurrent updates (run under TSan in CI), span tree recording,
// export formats, and the no-behavior-change guarantee of enabling exports.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/metrics.h"
#include "src/common/span.h"
#include "src/core/scheduler.h"
#include "src/sim/simulator.h"
#include "src/sim/trace.h"
#include "src/solver/milp.h"
#include "src/solver/model.h"

namespace tetrisched {
namespace {

// Restores the global observability flag on scope exit so tests cannot leak
// an enabled flag into each other.
class ObservabilityGuard {
 public:
  ObservabilityGuard() : prev_(ObservabilityEnabled()) {}
  ~ObservabilityGuard() { SetObservabilityEnabled(prev_); }

 private:
  bool prev_;
};

TEST(MetricsTest, CounterBasics) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0);
}

TEST(MetricsTest, GaugeBasics) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.Set(3.5);
  EXPECT_EQ(gauge.value(), 3.5);
  gauge.Set(-1.0);
  EXPECT_EQ(gauge.value(), -1.0);
  gauge.Reset();
  EXPECT_EQ(gauge.value(), 0.0);
}

TEST(MetricsTest, HistogramBucketsAndStats) {
  Histogram hist({1.0, 10.0, 100.0});
  hist.Observe(0.5);    // bucket 0 (<= 1)
  hist.Observe(1.0);    // bucket 0 (upper bound inclusive)
  hist.Observe(5.0);    // bucket 1
  hist.Observe(500.0);  // overflow bucket
  HistogramSnapshot snap = hist.Snapshot("h");
  EXPECT_EQ(snap.count, 4);
  EXPECT_DOUBLE_EQ(snap.sum, 506.5);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 500.0);
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets[0], 2);
  EXPECT_EQ(snap.buckets[1], 1);
  EXPECT_EQ(snap.buckets[2], 0);
  EXPECT_EQ(snap.buckets[3], 1);
  // Percentiles are monotone in p and clamped to the observed extrema.
  double p50 = snap.Percentile(50);
  double p95 = snap.Percentile(95);
  EXPECT_LE(p50, p95);
  EXPECT_GE(snap.Percentile(0), snap.min);
  EXPECT_LE(snap.Percentile(100), snap.max);
  EXPECT_DOUBLE_EQ(snap.Mean(), 506.5 / 4.0);
}

TEST(MetricsTest, EmptyHistogramIsWellDefined) {
  Histogram hist({1.0, 2.0});
  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_EQ(snap.min, 0.0);
  EXPECT_EQ(snap.max, 0.0);
  EXPECT_EQ(snap.Percentile(50), 0.0);
  EXPECT_EQ(snap.Mean(), 0.0);
}

TEST(MetricsTest, SnapshotIsolation) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c");
  Histogram* hist = registry.GetHistogram("h", {1.0, 2.0});
  counter->Increment(3);
  hist->Observe(1.5);
  MetricsSnapshot snap = registry.Snapshot();
  // Updates after the snapshot must not be visible in it.
  counter->Increment(100);
  hist->Observe(0.5);
  EXPECT_EQ(snap.counters.at("c"), 3);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1);
  EXPECT_EQ(registry.Snapshot().counters.at("c"), 103);
}

TEST(MetricsTest, RegistryFindOrCreateIsStable) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("same");
  Counter* b = registry.GetCounter("same");
  EXPECT_EQ(a, b);
  a->Increment(7);
  registry.Reset();
  // Reset zeroes values but keeps handed-out pointers valid.
  EXPECT_EQ(a->value(), 0);
  a->Increment();
  EXPECT_EQ(registry.GetCounter("same")->value(), 1);
}

TEST(MetricsTest, ConcurrentUpdatesAreExact) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c");
  Histogram* hist = registry.GetHistogram("h", {0.5});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        hist->Observe(t % 2 == 0 ? 0.25 : 1.0);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter->value(), kThreads * kPerThread);
  HistogramSnapshot snap = hist->Snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_EQ(snap.buckets[0] + snap.buckets[1], kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(snap.min, 0.25);
  EXPECT_DOUBLE_EQ(snap.max, 1.0);
}

TEST(MetricsTest, PrometheusTextFormat) {
  MetricsRegistry registry;
  registry.GetCounter("jobs_total")->Increment(5);
  registry.GetGauge("depth")->Set(2.5);
  Histogram* hist = registry.GetHistogram("latency_ms", {1.0, 10.0});
  hist->Observe(0.5);
  hist->Observe(5.0);
  std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE jobs_total counter"), std::string::npos);
  EXPECT_NE(text.find("jobs_total 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE latency_ms histogram"), std::string::npos);
  // Buckets are cumulative and end with +Inf.
  EXPECT_NE(text.find("latency_ms_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("latency_ms_bucket{le=\"10\"} 2"), std::string::npos);
  EXPECT_NE(text.find("latency_ms_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("latency_ms_sum"), std::string::npos);
  EXPECT_NE(text.find("latency_ms_count 2"), std::string::npos);
}

// Minimal structural JSON check: balanced braces/brackets outside strings.
void ExpectBalancedJson(const std::string& json) {
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      ++braces;
    } else if (c == '}') {
      --braces;
    } else if (c == '[') {
      ++brackets;
    } else if (c == ']') {
      --brackets;
    }
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(MetricsTest, JsonExportShape) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Increment(1);
  Histogram* hist = registry.GetHistogram("h", {1.0});
  hist->Observe(0.5);
  std::string json = registry.ToJson();
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
  // An empty registry is still valid JSON.
  ExpectBalancedJson(MetricsRegistry().ToJson());
}

TEST(SpanTest, DisabledSpansRecordNothing) {
  ObservabilityGuard guard;
  SetObservabilityEnabled(false);
  size_t before = SpanCollector::Global().size();
  {
    TETRI_SPAN("test.disabled");
    TETRI_SPAN("test.disabled_inner");
  }
  EXPECT_EQ(SpanCollector::Global().size(), before);
}

TEST(SpanTest, NestedSpansRecordDepthAndContainment) {
  ObservabilityGuard guard;
  SetObservabilityEnabled(true);
  SpanCollector::Global().Clear();
  {
    TETRI_SPAN("test.outer");
    { TETRI_SPAN("test.inner"); }
  }
  SetObservabilityEnabled(false);
  std::vector<SpanRecord> spans = SpanCollector::Global().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Spans finish innermost-first.
  const SpanRecord& inner = spans[0];
  const SpanRecord& outer = spans[1];
  EXPECT_STREQ(inner.name, "test.inner");
  EXPECT_STREQ(outer.name, "test.outer");
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(inner.depth, 1);
  EXPECT_EQ(outer.thread, inner.thread);
  // Interval containment: inner ⊆ outer.
  EXPECT_GE(inner.start_us, outer.start_us);
  EXPECT_LE(inner.start_us + inner.duration_us,
            outer.start_us + outer.duration_us);
  SpanCollector::Global().Clear();
}

TEST(SpanTest, ChromeTraceJsonShape) {
  ObservabilityGuard guard;
  SetObservabilityEnabled(true);
  SpanCollector::Global().Clear();
  { TETRI_SPAN("test.chrome"); }
  SetObservabilityEnabled(false);
  std::string json = SpanCollector::Global().ToChromeTraceJson();
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"test.chrome\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\""), std::string::npos);
  SpanCollector::Global().Clear();
}

TEST(SolverObservabilityTest, SolvePopulatesPhaseInstruments) {
  ObservabilityGuard guard;
  SetObservabilityEnabled(true);
  MetricsRegistry& registry = GlobalMetrics();
  Histogram* lp_ms = registry.GetHistogram("tetrisched_phase_lp_ms");
  Histogram* bnb_ms =
      registry.GetHistogram("tetrisched_phase_branch_and_bound_ms");
  Counter* nodes = registry.GetCounter("tetrisched_solver_nodes_total");
  Counter* solves = registry.GetCounter("tetrisched_solver_solves_total");
  int64_t lp_before = lp_ms->count();
  int64_t bnb_before = bnb_ms->count();
  int64_t nodes_before = nodes->value();
  int64_t solves_before = solves->value();

  // max x + y with x + y <= 1.5 over binaries: fractional root, forces
  // branching, optimum 1.
  MilpModel model;
  VarId x = model.AddBinaryVar("x");
  VarId y = model.AddBinaryVar("y");
  model.AddObjectiveTerm(x, 1.0);
  model.AddObjectiveTerm(y, 1.0);
  model.AddConstraint({{x, 1}, {y, 1}}, ConstraintSense::kLessEqual, 1.5);
  MilpOptions options;
  options.num_threads = 1;
  MilpResult result = MilpSolver(model, options).Solve();
  ASSERT_TRUE(result.HasSolution());
  EXPECT_NEAR(result.objective, 1.0, 1e-6);

  EXPECT_GT(lp_ms->count(), lp_before);
  EXPECT_GT(bnb_ms->count(), bnb_before);
  EXPECT_GT(nodes->value(), nodes_before);
  EXPECT_EQ(solves->value(), solves_before + 1);
}

Job MakeJob(JobId id, int k, SimDuration runtime, SimTime submit) {
  Job job;
  job.id = id;
  job.k = k;
  job.actual_runtime = runtime;
  job.submit = submit;
  return job;
}

std::string RunScheduleCsv(const SimConfig& base_config) {
  Cluster cluster = MakeUniformCluster(2, 4, 0);
  std::vector<Job> jobs;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back(MakeJob(i + 1, 1 + i % 3, 40 + 10 * (i % 2), 5 * i));
  }
  ApplyAdmission(cluster, jobs);
  TetriSchedConfig config = TetriSchedConfig::Full();
  config.milp.rel_gap = 0.0;
  config.milp.num_threads = 1;
  TetriScheduler scheduler(cluster, config);
  SimTrace trace;
  SimConfig sim_config = base_config;
  sim_config.trace = &trace;
  Simulator sim(cluster, scheduler, jobs, sim_config);
  sim.Run();
  return trace.ToCsv();
}

// Drops the trailing `value` column (wall-clock cycle latency, which varies
// run to run) so the remaining columns describe only scheduling decisions.
std::string StripTimingColumn(const std::string& csv) {
  std::istringstream in(csv);
  std::string out;
  std::string line;
  while (std::getline(in, line)) {
    size_t comma = line.rfind(',');
    out += line.substr(0, comma);
    out += '\n';
  }
  return out;
}

TEST(DeterminismTest, EnablingExportsDoesNotChangeSchedule) {
  ObservabilityGuard guard;
  SetObservabilityEnabled(false);
  SimConfig plain;
  std::string baseline = StripTimingColumn(RunScheduleCsv(plain));

  SimConfig exporting;
  exporting.metrics_json_path = "metrics_test_export.json";
  exporting.metrics_prom_path = "metrics_test_export.prom";
  exporting.trace_json_path = "metrics_test_export_trace.json";
  std::string with_exports = StripTimingColumn(RunScheduleCsv(exporting));

  // Byte-identical event streams: observability must not steer decisions.
  EXPECT_EQ(baseline, with_exports);
  // Run() restored the flag it enabled.
  EXPECT_FALSE(ObservabilityEnabled());

  // The exported files exist, are well formed, and carry the phase data.
  auto slurp = [](const char* path) {
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  std::string metrics_json = slurp("metrics_test_export.json");
  std::string prom = slurp("metrics_test_export.prom");
  std::string trace_json = slurp("metrics_test_export_trace.json");
  ExpectBalancedJson(metrics_json);
  ExpectBalancedJson(trace_json);
  for (const char* phase :
       {"tetrisched_phase_strl_gen_ms", "tetrisched_phase_compile_ms",
        "tetrisched_phase_solve_ms", "tetrisched_phase_commit_ms",
        "tetrisched_phase_lp_ms", "tetrisched_phase_branch_and_bound_ms"}) {
    EXPECT_NE(metrics_json.find(phase), std::string::npos) << phase;
    EXPECT_NE(prom.find(phase), std::string::npos) << phase;
  }
  EXPECT_NE(trace_json.find("scheduler.cycle"), std::string::npos);
  EXPECT_NE(trace_json.find("scheduler.solve"), std::string::npos);
  std::remove("metrics_test_export.json");
  std::remove("metrics_test_export.prom");
  std::remove("metrics_test_export_trace.json");
}

TEST(ProcessMetricsTest, UptimeAndBuildInfoInBothExports) {
  UpdateProcessMetrics();
  MetricsRegistry& registry = GlobalMetrics();

  double uptime =
      registry.GetGauge("tetrisched_process_uptime_seconds")->value();
  EXPECT_GT(uptime, 0.0);
  EXPECT_LT(uptime, 3600.0);  // a test process is not an hour old

  // The build-info gauge follows the Prometheus idiom: constant 1, identity
  // in the labels.
  const std::string& name = BuildInfoMetricName();
  EXPECT_NE(name.find("tetrisched_build_info{"), std::string::npos);
  EXPECT_NE(name.find("version="), std::string::npos);
  EXPECT_NE(name.find("compiler="), std::string::npos);
  EXPECT_NE(name.find("sanitizers="), std::string::npos);
  EXPECT_EQ(registry.GetGauge(name)->value(), 1.0);

  std::string prom = registry.ToPrometheusText();
  // The TYPE comment must carry the bare metric name, the sample line the
  // labeled one.
  EXPECT_NE(prom.find("# TYPE tetrisched_build_info gauge\n"),
            std::string::npos);
  EXPECT_NE(prom.find(name + " 1"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE tetrisched_process_uptime_seconds gauge"),
            std::string::npos);

  std::string json = registry.ToJson();
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("tetrisched_process_uptime_seconds"),
            std::string::npos);
  EXPECT_NE(json.find("tetrisched_build_info"), std::string::npos);

  // A later refresh advances uptime monotonically.
  UpdateProcessMetrics();
  EXPECT_GE(registry.GetGauge("tetrisched_process_uptime_seconds")->value(),
            uptime);
}

}  // namespace
}  // namespace tetrisched
