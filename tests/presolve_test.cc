// Tests for MILP presolve: correctness of reductions, solution restoration,
// and equivalence of solve results with presolve on and off.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/solver/milp.h"
#include "src/solver/presolve.h"

namespace tetrisched {
namespace {

TEST(PresolveTest, FixedVariableIsEliminated) {
  MilpModel model;
  VarId x = model.AddContinuousVar(2.0, 2.0, "x");  // fixed
  VarId y = model.AddContinuousVar(0.0, 10.0, "y");
  model.AddObjectiveTerm(x, 1.0);
  model.AddObjectiveTerm(y, 1.0);
  model.AddConstraint({{x, 1.0}, {y, 1.0}}, ConstraintSense::kLessEqual, 5.0);

  Presolver presolver(model);
  ASSERT_FALSE(presolver.infeasible());
  EXPECT_EQ(presolver.num_fixed_vars(), 1);
  EXPECT_EQ(presolver.reduced().num_vars(), 1);
  EXPECT_DOUBLE_EQ(presolver.objective_offset(), 2.0);
  // Folded and absorbed as a bound: y <= 3, row dropped.
  EXPECT_EQ(presolver.reduced().num_constraints(), 0);
  EXPECT_DOUBLE_EQ(presolver.reduced().upper_bound(0), 3.0);

  std::vector<double> restored = presolver.RestoreSolution(std::vector<double>{3.0});
  EXPECT_DOUBLE_EQ(restored[x], 2.0);
  EXPECT_DOUBLE_EQ(restored[y], 3.0);
}

TEST(PresolveTest, SingletonRowTightensBound) {
  MilpModel model;
  VarId x = model.AddContinuousVar(0.0, 100.0, "x");
  model.AddObjectiveTerm(x, 1.0);
  model.AddConstraint({{x, 2.0}}, ConstraintSense::kLessEqual, 10.0);

  Presolver presolver(model);
  ASSERT_FALSE(presolver.infeasible());
  EXPECT_EQ(presolver.num_dropped_rows(), 1);
  EXPECT_EQ(presolver.reduced().num_constraints(), 0);
  EXPECT_DOUBLE_EQ(presolver.reduced().upper_bound(0), 5.0);
}

TEST(PresolveTest, CulledIndicatorCascade) {
  // The compiler's culling pattern: I <= 0 fixes the binary to 0, which in
  // turn resolves the demand row sum(P) == 2*I into P == 0.
  MilpModel model;
  VarId i = model.AddBinaryVar("I");
  VarId p = model.AddIntegerVar(0, 4, "P");
  model.AddObjectiveTerm(i, 5.0);
  model.AddConstraint({{i, 1.0}}, ConstraintSense::kLessEqual, 0.0, "cull");
  model.AddConstraint({{p, 1.0}, {i, -2.0}}, ConstraintSense::kEqual, 0.0,
                      "demand");

  Presolver presolver(model);
  ASSERT_FALSE(presolver.infeasible());
  EXPECT_EQ(presolver.num_fixed_vars(), 2);
  EXPECT_EQ(presolver.reduced().num_vars(), 0);
  EXPECT_EQ(presolver.reduced().num_constraints(), 0);
  std::vector<double> restored = presolver.RestoreSolution({});
  EXPECT_DOUBLE_EQ(restored[i], 0.0);
  EXPECT_DOUBLE_EQ(restored[p], 0.0);
}

TEST(PresolveTest, IntegralBoundRounding) {
  MilpModel model;
  VarId x = model.AddIntegerVar(0, 10, "x");
  model.AddObjectiveTerm(x, 1.0);
  model.AddConstraint({{x, 2.0}}, ConstraintSense::kLessEqual, 7.0);

  Presolver presolver(model);
  EXPECT_DOUBLE_EQ(presolver.reduced().upper_bound(0), 3.0);  // floor(3.5)
}

TEST(PresolveTest, DetectsInfeasibleSingleton) {
  MilpModel model;
  VarId x = model.AddContinuousVar(0.0, 1.0, "x");
  model.AddConstraint({{x, 1.0}}, ConstraintSense::kGreaterEqual, 2.0);
  EXPECT_TRUE(Presolver(model).infeasible());
}

TEST(PresolveTest, DetectsInfeasibleFixedRow) {
  MilpModel model;
  VarId x = model.AddContinuousVar(3.0, 3.0, "x");
  model.AddConstraint({{x, 1.0}}, ConstraintSense::kEqual, 5.0);
  EXPECT_TRUE(Presolver(model).infeasible());
}

TEST(PresolveTest, ProjectionRejectsConflicts) {
  MilpModel model;
  VarId x = model.AddContinuousVar(1.0, 1.0, "x");
  VarId y = model.AddContinuousVar(0.0, 5.0, "y");
  model.AddObjectiveTerm(y, 1.0);
  model.AddConstraint({{x, 1.0}, {y, 1.0}}, ConstraintSense::kLessEqual, 4.0);

  Presolver presolver(model);
  std::vector<double> ok = presolver.ProjectSolution(std::vector<double>{1.0, 2.0});
  ASSERT_EQ(ok.size(), 1u);
  EXPECT_DOUBLE_EQ(ok[0], 2.0);
  EXPECT_TRUE(presolver.ProjectSolution(std::vector<double>{0.0, 2.0}).empty());
}

// Property: random MILPs solve to the same optimum with and without
// presolve.
class PresolveEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(PresolveEquivalenceTest, SameOptimum) {
  Rng rng(4242 + GetParam());
  MilpModel model;
  const int n = static_cast<int>(rng.UniformInt(3, 8));
  for (int v = 0; v < n; ++v) {
    if (rng.Bernoulli(0.3)) {
      double fixed = rng.UniformInt(0, 2);
      model.AddIntegerVar(fixed, fixed);  // pre-fixed var
    } else {
      model.AddBinaryVar();
    }
    model.AddObjectiveTerm(v, rng.UniformReal(-2.0, 5.0));
  }
  int rows = static_cast<int>(rng.UniformInt(1, 6));
  for (int c = 0; c < rows; ++c) {
    std::vector<LinTerm> terms;
    int mentions = static_cast<int>(rng.UniformInt(1, n));
    for (int k = 0; k < mentions; ++k) {
      terms.push_back({static_cast<VarId>(rng.UniformInt(0, n - 1)),
                       rng.UniformReal(-2.0, 3.0)});
    }
    model.AddConstraint(std::move(terms), ConstraintSense::kLessEqual,
                        rng.UniformReal(0.5, 6.0));
  }

  MilpOptions with;
  with.rel_gap = 0.0;
  with.enable_presolve = true;
  MilpOptions without = with;
  without.enable_presolve = false;

  MilpResult a = MilpSolver(model, with).Solve();
  MilpResult b = MilpSolver(model, without).Solve();
  ASSERT_EQ(a.HasSolution(), b.HasSolution()) << "seed " << GetParam();
  if (a.HasSolution()) {
    EXPECT_NEAR(a.objective, b.objective, 1e-5) << "seed " << GetParam();
    EXPECT_TRUE(model.IsFeasible(a.values, 1e-5));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomModels, PresolveEquivalenceTest,
                         ::testing::Range(0, 30));

}  // namespace
}  // namespace tetrisched
