// Tests for the Fig-1-style ASCII plan renderer.

#include <gtest/gtest.h>

#include "src/core/plan_render.h"

namespace tetrisched {
namespace {

TEST(PlanRenderTest, RendersSimplePlan) {
  Cluster cluster = MakeUniformCluster(2, 2, 1);
  std::vector<PlanSlot> slots = {
      {1, cluster.GpuPartitions()[0], 2, {0, 16}},
      {2, cluster.RackPartitions(1)[0], 1, {8, 24}},
  };
  std::string text = RenderPlan(cluster, slots, 0, 8, 3);
  EXPECT_NE(text.find("A"), std::string::npos);
  EXPECT_NE(text.find("B"), std::string::npos);
  EXPECT_NE(text.find("rack 0 (gpu)"), std::string::npos);
  EXPECT_NE(text.find("rack 1"), std::string::npos);
  EXPECT_NE(text.find("legend: A=job1 B=job2"), std::string::npos);
  EXPECT_EQ(text.find("OVERFLOW"), std::string::npos);
}

TEST(PlanRenderTest, GridCellsMatchOccupancy) {
  Cluster cluster = MakeUniformCluster(1, 2, 0);
  // One job on both nodes for the first two slices only.
  std::vector<PlanSlot> slots = {{7, 0, 2, {0, 16}}};
  std::string text = RenderPlan(cluster, slots, 0, 8, 4);
  // Each machine row: [ A  A  .  . ]; count grid cells only (the legend
  // line also contains an 'A').
  int a_count = 0;
  int dot_count = 0;
  bool in_row = false;
  for (char c : text) {
    if (c == '[') {
      in_row = true;
    } else if (c == ']') {
      in_row = false;
    } else if (in_row && c == 'A') {
      ++a_count;
    } else if (in_row && c == '.') {
      ++dot_count;
    }
  }
  EXPECT_EQ(a_count, 4);  // 2 nodes x 2 slices
  EXPECT_EQ(dot_count, 4);
}

TEST(PlanRenderTest, ReportsOverflow) {
  Cluster cluster = MakeUniformCluster(1, 2, 0);
  std::vector<PlanSlot> slots = {{1, 0, 3, {0, 8}}};  // 3 > capacity 2
  std::string text = RenderPlan(cluster, slots, 0, 8, 1);
  EXPECT_NE(text.find("OVERFLOW"), std::string::npos);
}

TEST(PlanRenderTest, ManyJobsWrapGlyphs) {
  Cluster cluster = MakeUniformCluster(1, 4, 0);
  std::vector<PlanSlot> slots;
  for (int i = 0; i < 30; ++i) {
    slots.push_back({i, 0, 1, {i * 8, i * 8 + 8}});
  }
  std::string text = RenderPlan(cluster, slots, 0, 8, 30);
  EXPECT_NE(text.find('A'), std::string::npos);
  EXPECT_NE(text.find('a'), std::string::npos);  // wrapped into lowercase
}

TEST(PlanRenderTest, EmptyPlanIsAllIdle) {
  Cluster cluster = MakeUniformCluster(1, 2, 0);
  std::string text = RenderPlan(cluster, {}, 0, 8, 3);
  EXPECT_EQ(text.find("legend"), std::string::npos);
  EXPECT_NE(text.find('.'), std::string::npos);
}

}  // namespace
}  // namespace tetrisched
