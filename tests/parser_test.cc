// Tests for the textual STRL parser, including round-trips with ToString and
// compile-through to the MILP solver.

#include <gtest/gtest.h>

#include <iterator>
#include <random>
#include <string>

#include "src/cluster/availability.h"
#include "src/compiler/compiler.h"
#include "src/solver/milp.h"
#include "src/strl/parser.h"

namespace tetrisched {
namespace {

StrlExpr MustParse(std::string_view text) {
  StrlParseResult result = ParseStrl(text);
  EXPECT_TRUE(result.expr.has_value()) << result.error;
  return std::move(*result.expr);
}

TEST(ParserTest, ParsesLeaf) {
  StrlExpr expr = MustParse("nCk({p0,p1}, k=2, s=10, dur=20, v=4.5)");
  EXPECT_EQ(expr.kind, StrlKind::kNCk);
  EXPECT_EQ(expr.partitions, (PartitionSet{0, 1}));
  EXPECT_EQ(expr.k, 2);
  EXPECT_EQ(expr.start, 10);
  EXPECT_EQ(expr.duration, 20);
  EXPECT_DOUBLE_EQ(expr.value, 4.5);
  EXPECT_EQ(expr.tag, 1);  // fresh sequential tags
}

TEST(ParserTest, ParsesLinearLeaf) {
  StrlExpr expr = MustParse("LnCk({p3}, k=5, s=0, dur=8, v=10)");
  EXPECT_EQ(expr.kind, StrlKind::kLnCk);
  EXPECT_EQ(expr.k, 5);
}

TEST(ParserTest, ParsesOperators) {
  StrlExpr expr = MustParse(
      "sum(max(nCk({p0}, k=1, s=0, dur=1, v=1), nCk({p1}, k=1, s=0, dur=1, "
      "v=2)), min(nCk({p0}, k=1, s=0, dur=1, v=3), nCk({p1}, k=1, s=0, "
      "dur=1, v=3)))");
  EXPECT_EQ(expr.kind, StrlKind::kSum);
  ASSERT_EQ(expr.children.size(), 2u);
  EXPECT_EQ(expr.children[0].kind, StrlKind::kMax);
  EXPECT_EQ(expr.children[1].kind, StrlKind::kMin);
  EXPECT_EQ(CountLeaves(expr), 4);
}

TEST(ParserTest, ParsesScaleAndBarrier) {
  StrlExpr expr =
      MustParse("barrier(3, scale(2.5, nCk({p0}, k=1, s=0, dur=1, v=2)))");
  EXPECT_EQ(expr.kind, StrlKind::kBarrier);
  EXPECT_DOUBLE_EQ(expr.scalar, 3.0);
  EXPECT_EQ(expr.children[0].kind, StrlKind::kScale);
  EXPECT_DOUBLE_EQ(expr.children[0].scalar, 2.5);
}

TEST(ParserTest, WhitespaceInsensitive) {
  StrlExpr a = MustParse("max(nCk({p0},k=1,s=0,dur=1,v=1))");
  StrlExpr b = MustParse("  max ( nCk ( { p0 } , k=1 , s=0, dur=1, v=1 ) ) ");
  EXPECT_EQ(ToString(a), ToString(b));
}

TEST(ParserTest, RoundTripsWithToString) {
  StrlExpr original = Sum(
      {Max({NCk({0, 1}, 2, 0, 10, 4.0, 1), NCk({2}, 2, 8, 15, 3.0, 2)}),
       Min({NCk({0}, 1, 0, 10, 2.0, 3), NCk({1}, 1, 0, 10, 2.0, 4)}),
       Barrier(Scale(LnCk({0, 1, 2}, 4, 16, 10, 8.0, 5), 1.5), 6.0)});
  StrlExpr reparsed = MustParse(ToString(original));
  // Tags differ (parser assigns fresh ones); structure must match exactly.
  EXPECT_EQ(ToString(reparsed), ToString(original));
  EXPECT_EQ(CountNodes(reparsed), CountNodes(original));
}

TEST(ParserTest, ParsedExprCompilesAndSolves) {
  Cluster cluster = MakeUniformCluster(2, 2, 1);
  StrlExpr expr = MustParse(
      "max(nCk({p0}, k=2, s=0, dur=2, v=4), nCk({p0,p1}, k=2, s=0, dur=3, "
      "v=3))");
  TimeGrid grid{.start = 0, .quantum = 1, .num_slices = 4};
  AvailabilityGrid avail(cluster, grid);
  CompiledStrl compiled = StrlCompiler(avail).Compile(expr);
  MilpOptions options;
  options.rel_gap = 0.0;
  MilpResult result = MilpSolver(compiled.model(), options).Solve();
  ASSERT_TRUE(result.HasSolution());
  EXPECT_NEAR(result.objective, 4.0, 1e-6);
}

TEST(ParserTest, NegativeStartAllowed) {
  StrlExpr expr = MustParse("nCk({p0}, k=1, s=-5, dur=10, v=1)");
  EXPECT_EQ(expr.start, -5);
}

// --- Error reporting ---------------------------------------------------------

struct BadInput {
  const char* text;
  const char* expected_error_fragment;
};

class ParserErrorTest : public ::testing::TestWithParam<BadInput> {};

TEST_P(ParserErrorTest, ReportsError) {
  StrlParseResult result = ParseStrl(GetParam().text);
  EXPECT_FALSE(result.expr.has_value());
  EXPECT_NE(result.error.find(GetParam().expected_error_fragment),
            std::string::npos)
      << "got: " << result.error;
}

INSTANTIATE_TEST_SUITE_P(
    BadInputs, ParserErrorTest,
    ::testing::Values(
        BadInput{"", "expected expression"},
        BadInput{"foo(1)", "unknown operator"},
        BadInput{"nCk({p0} k=1, s=0, dur=1, v=1)", "expected ','"},
        BadInput{"nCk({x0}, k=1, s=0, dur=1, v=1)", "expected partition"},
        BadInput{"nCk({p0}, k=0, s=0, dur=1, v=1)", "k must be positive"},
        BadInput{"nCk({p0}, k=1, s=0, dur=0, v=1)", "dur must be positive"},
        BadInput{"max(nCk({p0}, k=1, s=0, dur=1, v=1)", "expected ')'"},
        BadInput{"nCk({p0}, k=1, s=0, dur=1, v=1) junk", "trailing input"},
        BadInput{"scale(x, nCk({p0}, k=1, s=0, dur=1, v=1))",
                 "expected number"}));

// --- Hardening: depth limit, truncation, fuzz --------------------------------

std::string Nested(const std::string& op_prefix, int levels,
                   const std::string& leaf) {
  std::string text;
  for (int i = 0; i < levels; ++i) {
    text += op_prefix;
  }
  text += leaf;
  text.append(levels, ')');
  return text;
}

TEST(ParserHardeningTest, DeeplyNestedInputFailsGracefully) {
  // Recursive descent without a ceiling would blow the stack here.
  std::string text =
      Nested("scale(1.0, ", 5000, "nCk({p0}, k=1, s=0, dur=1, v=1)");
  StrlParseResult result = ParseStrl(text);
  EXPECT_FALSE(result.expr.has_value());
  EXPECT_NE(result.error.find("nested deeper"), std::string::npos)
      << "got: " << result.error;
}

TEST(ParserHardeningTest, NestingUnderTheLimitStillParses) {
  std::string text =
      Nested("scale(1.0, ", 50, "nCk({p0}, k=1, s=0, dur=1, v=1)");
  StrlParseResult result = ParseStrl(text);
  EXPECT_TRUE(result.expr.has_value()) << result.error;
}

TEST(ParserHardeningTest, UnbalancedOperatorRunHitsDepthLimitNotStack) {
  // No closing parens at all: the parser must diagnose, not recurse forever.
  std::string text;
  for (int i = 0; i < 100000; ++i) {
    text += "max(";
  }
  StrlParseResult result = ParseStrl(text);
  EXPECT_FALSE(result.expr.has_value());
  EXPECT_FALSE(result.error.empty());
}

const char* const kCorpus[] = {
    "nCk({p0,p1}, k=2, s=10, dur=20, v=4.5)",
    "LnCk({p3}, k=5, s=0, dur=8, v=10)",
    "sum(max(nCk({p0}, k=1, s=0, dur=1, v=1), nCk({p1}, k=1, s=0, dur=1, "
    "v=2)), min(nCk({p0}, k=1, s=0, dur=1, v=3), nCk({p1}, k=1, s=0, "
    "dur=1, v=3)))",
    "barrier(3, scale(2.5, nCk({p0}, k=1, s=0, dur=1, v=2)))",
    "max(nCk({p0}, k=1, s=-5, dur=10, v=1), LnCk({p1,p2}, k=3, s=4, dur=6, "
    "v=0.25))",
};

TEST(ParserHardeningTest, EveryPrefixOfValidInputFailsGracefully) {
  for (const char* text : kCorpus) {
    std::string full(text);
    for (size_t cut = 0; cut < full.size(); ++cut) {
      StrlParseResult result = ParseStrl(full.substr(0, cut));
      if (!result.expr.has_value()) {
        EXPECT_FALSE(result.error.empty())
            << "silent failure on prefix of length " << cut;
      }
    }
  }
}

TEST(ParserHardeningTest, SeededFuzzOverMutatedCorpusNeverCrashes) {
  // Deterministic fuzz: random byte flips, insertions, deletions, and chunk
  // duplications over valid corpus expressions. The parser must always
  // either parse or return a diagnostic — never crash, hang, or throw.
  std::mt19937 rng(0xC0FFEE);
  int parsed = 0;
  int rejected = 0;
  for (int iter = 0; iter < 4000; ++iter) {
    std::string text = kCorpus[rng() % std::size(kCorpus)];
    int mutations = 1 + static_cast<int>(rng() % 8);
    for (int m = 0; m < mutations && !text.empty(); ++m) {
      size_t pos = rng() % text.size();
      switch (rng() % 4) {
        case 0:  // flip a byte (printable-ish range keeps tokens plausible)
          text[pos] = static_cast<char>(' ' + rng() % 95);
          break;
        case 1:  // delete a byte
          text.erase(pos, 1);
          break;
        case 2:  // insert a structural byte
          text.insert(pos, 1, "(){},=.-0123456789maxsuminck"[rng() % 28]);
          break;
        case 3: {  // duplicate a random chunk
          size_t len = 1 + rng() % 16;
          text.insert(pos, text.substr(pos, len));
          break;
        }
      }
    }
    StrlParseResult result = ParseStrl(text);
    if (result.expr.has_value()) {
      ++parsed;
    } else {
      ++rejected;
      EXPECT_FALSE(result.error.empty()) << "silent failure on: " << text;
    }
  }
  // Sanity: the mutator must exercise both outcomes.
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

}  // namespace
}  // namespace tetrisched
