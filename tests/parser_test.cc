// Tests for the textual STRL parser, including round-trips with ToString and
// compile-through to the MILP solver.

#include <gtest/gtest.h>

#include "src/cluster/availability.h"
#include "src/compiler/compiler.h"
#include "src/solver/milp.h"
#include "src/strl/parser.h"

namespace tetrisched {
namespace {

StrlExpr MustParse(std::string_view text) {
  StrlParseResult result = ParseStrl(text);
  EXPECT_TRUE(result.expr.has_value()) << result.error;
  return std::move(*result.expr);
}

TEST(ParserTest, ParsesLeaf) {
  StrlExpr expr = MustParse("nCk({p0,p1}, k=2, s=10, dur=20, v=4.5)");
  EXPECT_EQ(expr.kind, StrlKind::kNCk);
  EXPECT_EQ(expr.partitions, (PartitionSet{0, 1}));
  EXPECT_EQ(expr.k, 2);
  EXPECT_EQ(expr.start, 10);
  EXPECT_EQ(expr.duration, 20);
  EXPECT_DOUBLE_EQ(expr.value, 4.5);
  EXPECT_EQ(expr.tag, 1);  // fresh sequential tags
}

TEST(ParserTest, ParsesLinearLeaf) {
  StrlExpr expr = MustParse("LnCk({p3}, k=5, s=0, dur=8, v=10)");
  EXPECT_EQ(expr.kind, StrlKind::kLnCk);
  EXPECT_EQ(expr.k, 5);
}

TEST(ParserTest, ParsesOperators) {
  StrlExpr expr = MustParse(
      "sum(max(nCk({p0}, k=1, s=0, dur=1, v=1), nCk({p1}, k=1, s=0, dur=1, "
      "v=2)), min(nCk({p0}, k=1, s=0, dur=1, v=3), nCk({p1}, k=1, s=0, "
      "dur=1, v=3)))");
  EXPECT_EQ(expr.kind, StrlKind::kSum);
  ASSERT_EQ(expr.children.size(), 2u);
  EXPECT_EQ(expr.children[0].kind, StrlKind::kMax);
  EXPECT_EQ(expr.children[1].kind, StrlKind::kMin);
  EXPECT_EQ(CountLeaves(expr), 4);
}

TEST(ParserTest, ParsesScaleAndBarrier) {
  StrlExpr expr =
      MustParse("barrier(3, scale(2.5, nCk({p0}, k=1, s=0, dur=1, v=2)))");
  EXPECT_EQ(expr.kind, StrlKind::kBarrier);
  EXPECT_DOUBLE_EQ(expr.scalar, 3.0);
  EXPECT_EQ(expr.children[0].kind, StrlKind::kScale);
  EXPECT_DOUBLE_EQ(expr.children[0].scalar, 2.5);
}

TEST(ParserTest, WhitespaceInsensitive) {
  StrlExpr a = MustParse("max(nCk({p0},k=1,s=0,dur=1,v=1))");
  StrlExpr b = MustParse("  max ( nCk ( { p0 } , k=1 , s=0, dur=1, v=1 ) ) ");
  EXPECT_EQ(ToString(a), ToString(b));
}

TEST(ParserTest, RoundTripsWithToString) {
  StrlExpr original = Sum(
      {Max({NCk({0, 1}, 2, 0, 10, 4.0, 1), NCk({2}, 2, 8, 15, 3.0, 2)}),
       Min({NCk({0}, 1, 0, 10, 2.0, 3), NCk({1}, 1, 0, 10, 2.0, 4)}),
       Barrier(Scale(LnCk({0, 1, 2}, 4, 16, 10, 8.0, 5), 1.5), 6.0)});
  StrlExpr reparsed = MustParse(ToString(original));
  // Tags differ (parser assigns fresh ones); structure must match exactly.
  EXPECT_EQ(ToString(reparsed), ToString(original));
  EXPECT_EQ(CountNodes(reparsed), CountNodes(original));
}

TEST(ParserTest, ParsedExprCompilesAndSolves) {
  Cluster cluster = MakeUniformCluster(2, 2, 1);
  StrlExpr expr = MustParse(
      "max(nCk({p0}, k=2, s=0, dur=2, v=4), nCk({p0,p1}, k=2, s=0, dur=3, "
      "v=3))");
  TimeGrid grid{.start = 0, .quantum = 1, .num_slices = 4};
  AvailabilityGrid avail(cluster, grid);
  CompiledStrl compiled = StrlCompiler(avail).Compile(expr);
  MilpOptions options;
  options.rel_gap = 0.0;
  MilpResult result = MilpSolver(compiled.model(), options).Solve();
  ASSERT_TRUE(result.HasSolution());
  EXPECT_NEAR(result.objective, 4.0, 1e-6);
}

TEST(ParserTest, NegativeStartAllowed) {
  StrlExpr expr = MustParse("nCk({p0}, k=1, s=-5, dur=10, v=1)");
  EXPECT_EQ(expr.start, -5);
}

// --- Error reporting ---------------------------------------------------------

struct BadInput {
  const char* text;
  const char* expected_error_fragment;
};

class ParserErrorTest : public ::testing::TestWithParam<BadInput> {};

TEST_P(ParserErrorTest, ReportsError) {
  StrlParseResult result = ParseStrl(GetParam().text);
  EXPECT_FALSE(result.expr.has_value());
  EXPECT_NE(result.error.find(GetParam().expected_error_fragment),
            std::string::npos)
      << "got: " << result.error;
}

INSTANTIATE_TEST_SUITE_P(
    BadInputs, ParserErrorTest,
    ::testing::Values(
        BadInput{"", "expected expression"},
        BadInput{"foo(1)", "unknown operator"},
        BadInput{"nCk({p0} k=1, s=0, dur=1, v=1)", "expected ','"},
        BadInput{"nCk({x0}, k=1, s=0, dur=1, v=1)", "expected partition"},
        BadInput{"nCk({p0}, k=0, s=0, dur=1, v=1)", "k must be positive"},
        BadInput{"nCk({p0}, k=1, s=0, dur=0, v=1)", "dur must be positive"},
        BadInput{"max(nCk({p0}, k=1, s=0, dur=1, v=1)", "expected ')'"},
        BadInput{"nCk({p0}, k=1, s=0, dur=1, v=1) junk", "trailing input"},
        BadInput{"scale(x, nCk({p0}, k=1, s=0, dur=1, v=1))",
                 "expected number"}));

}  // namespace
}  // namespace tetrisched
