// End-to-end tests for the tetrischedd service layer (DESIGN.md §16):
// daemon + clients over socketpairs, admission backpressure, drain
// semantics, and SIGTERM -> final checkpoint -> restart recovery.

#include <csignal>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/client/client.h"
#include "src/net/socket.h"
#include "src/persist/journal.h"
#include "src/service/daemon.h"
#include "src/service/signals.h"

namespace tetrisched {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

// Runs a daemon on a background thread and hands out socketpair-backed
// clients. Everything is in-process and loopback-free, so the tests are
// deterministic under sanitizers and need no filesystem or ports.
class DaemonHarness {
 public:
  explicit DaemonHarness(DaemonOptions options) {
    daemon_ = std::make_unique<SchedulerDaemon>(std::move(options));
  }

  ~DaemonHarness() { Stop(); }

  bool Start() {
    if (!daemon_->Start()) {
      return false;
    }
    thread_ = std::thread([this] { daemon_->Run(); });
    return true;
  }

  ServiceClient Connect(const std::string& name) {
    auto [daemon_end, client_end] = MakeSocketPair();
    daemon_->AddConnectionFd(daemon_end.Release());
    ServiceClient client = ServiceClient::Adopt(client_end.Release());
    client.set_client_name(name);
    client.set_timeout_ms(5000);
    return client;
  }

  void Stop() {
    if (thread_.joinable()) {
      daemon_->RequestStop();
      thread_.join();
    }
  }

  // Joins the serving thread without requesting a stop (the daemon is
  // expected to exit on its own, e.g. after a signal).
  void Join() {
    if (thread_.joinable()) {
      thread_.join();
    }
  }

  SchedulerDaemon& daemon() { return *daemon_; }

  // Polls the status snapshot until `done` holds or the deadline passes.
  bool WaitFor(const std::function<bool(const DaemonStatus&)>& done,
               int timeout_ms = 10000) {
    steady_clock::time_point deadline =
        steady_clock::now() + milliseconds(timeout_ms);
    while (steady_clock::now() < deadline) {
      if (done(daemon_->StatusSnapshot())) {
        return true;
      }
      std::this_thread::sleep_for(milliseconds(2));
    }
    return done(daemon_->StatusSnapshot());
  }

 private:
  std::unique_ptr<SchedulerDaemon> daemon_;
  std::thread thread_;
};

DaemonOptions FastOptions() {
  DaemonOptions options;
  options.racks = 2;
  options.nodes_per_rack = 4;
  options.gpu_racks = 1;
  options.cycle_period_ms = 5;  // virtual time runs 800x real time
  options.sim_seconds_per_cycle = 4;
  options.admission.cycle_period_ms = 5;
  return options;
}

JsonObj SmallJob(int64_t runtime = 4) {
  JsonObj spec;
  spec.Field("type", "unconstrained");
  spec.Field("k", static_cast<int64_t>(1));
  spec.Field("runtime", runtime);
  return spec;
}

// The acceptance scenario: two clients over socketpairs submit 20 jobs
// while a third floods past the admission bound. The flooder observes
// `overloaded` rejections with retry hints; the well-behaved clients'
// jobs all complete, and the plan validator never fires.
TEST(ServiceEndToEndTest, BackpressureIsolatesFloodingClient) {
  DaemonOptions options = FastOptions();
  options.admission.max_queued = 8;
  options.admission.admit_per_cycle = 4;
  DaemonHarness harness(options);
  ASSERT_TRUE(harness.Start());

  ServiceClient alice = harness.Connect("alice");
  ServiceClient bob = harness.Connect("bob");
  ServiceClient flood = harness.Connect("flood");
  ASSERT_TRUE(alice.connected());
  ASSERT_TRUE(bob.connected());
  ASSERT_TRUE(flood.connected());

  // The flooder fires 60 submissions back-to-back — far faster than the
  // queue drains at admit_per_cycle per 5 ms cycle.
  int flood_accepted = 0;
  int flood_overloaded = 0;
  for (int i = 0; i < 60; ++i) {
    ServiceReply reply = flood.SubmitSpec(SmallJob());
    ASSERT_TRUE(reply.transport_ok);
    if (reply.ok) {
      ++flood_accepted;
    } else if (reply.Overloaded()) {
      ++flood_overloaded;
      EXPECT_GT(reply.retry_after_ms, 0);
    } else {
      FAIL() << "unexpected error: " << reply.error;
    }
  }
  EXPECT_GT(flood_overloaded, 0) << "flood never hit the admission bound";

  // Meanwhile the polite clients submit 10 jobs each, honoring the retry
  // hints. All 20 must eventually be accepted despite the flood.
  std::vector<int64_t> polite_jobs;
  for (int i = 0; i < 20; ++i) {
    ServiceClient& client = (i % 2 == 0) ? alice : bob;
    for (;;) {
      ServiceReply reply = client.SubmitSpec(SmallJob());
      ASSERT_TRUE(reply.transport_ok);
      if (reply.ok) {
        polite_jobs.push_back(reply.body.IntOr("job", -1));
        break;
      }
      ASSERT_TRUE(reply.Overloaded()) << reply.error;
      std::this_thread::sleep_for(
          milliseconds(std::max<int64_t>(1, reply.retry_after_ms)));
    }
  }
  ASSERT_EQ(polite_jobs.size(), 20u);
  for (int64_t job : polite_jobs) {
    EXPECT_GT(job, 0);
  }

  // Everything accepted (polite + flood survivors) runs to completion.
  int64_t accepted = 20 + flood_accepted;
  ASSERT_TRUE(harness.WaitFor([&](const DaemonStatus& status) {
    return status.completed + status.dropped >= accepted;
  })) << "jobs did not finish";

  DaemonStatus status = harness.daemon().StatusSnapshot();
  EXPECT_EQ(status.validator_violations, 0);
  EXPECT_GE(status.rejected_total, flood_overloaded);
  EXPECT_EQ(status.completed + status.dropped, accepted);

  // Per-job status for a polite job reports a terminal state.
  ServiceReply reply = alice.StatusOf(polite_jobs.front());
  ASSERT_TRUE(reply.transport_ok);
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.body.StringOr("state", ""), "completed");

  harness.Stop();
}

// `drain` stops intake (new submissions are refused) but in-flight work
// runs to completion, after which the status reports drained.
TEST(ServiceEndToEndTest, DrainFinishesInflightAndRefusesNewWork) {
  DaemonOptions options = FastOptions();
  DaemonHarness harness(options);
  ASSERT_TRUE(harness.Start());
  ServiceClient client = harness.Connect("drain-test");
  ASSERT_TRUE(client.connected());

  for (int i = 0; i < 6; ++i) {
    ServiceReply reply = client.SubmitSpec(SmallJob(/*runtime=*/20));
    ASSERT_TRUE(reply.transport_ok);
    ASSERT_TRUE(reply.ok) << reply.error;
  }
  // Let at least one job start before draining so there is in-flight work.
  ASSERT_TRUE(harness.WaitFor(
      [](const DaemonStatus& status) { return status.running > 0; }));

  ServiceReply drain = client.Drain();
  ASSERT_TRUE(drain.transport_ok);
  ASSERT_TRUE(drain.ok);

  ServiceReply refused = client.SubmitSpec(SmallJob());
  ASSERT_TRUE(refused.transport_ok);
  EXPECT_FALSE(refused.ok);
  EXPECT_EQ(refused.error, "draining");

  ASSERT_TRUE(harness.WaitFor(
      [](const DaemonStatus& status) { return status.drained; }));
  DaemonStatus status = harness.daemon().StatusSnapshot();
  EXPECT_EQ(status.completed + status.dropped, 6);
  EXPECT_EQ(status.queued, 0);
  EXPECT_EQ(status.pending, 0);
  EXPECT_EQ(status.running, 0);
  EXPECT_EQ(status.validator_violations, 0);

  harness.Stop();
}

// SIGTERM mid-run: the self-pipe handler wakes the loop, the daemon writes
// a final checkpoint, and a restarted daemon attached to the same journal
// storage resumes every accepted-but-unfinished job.
TEST(ServiceEndToEndTest, SigtermCheckpointsAndRestartRecovers) {
  MemoryJournalStorage storage;

  int64_t accepted = 0;
  int64_t finished_before_kill = 0;
  {
    DaemonOptions options = FastOptions();
    options.storage = &storage;
    options.admission.admit_per_cycle = 2;
    DaemonHarness harness(options);
    ASSERT_TRUE(harness.Start());
    ASSERT_TRUE(InstallTerminationSignalHandlers(harness.daemon().wakeup_fd()));

    ServiceClient client = harness.Connect("sigterm-test");
    ASSERT_TRUE(client.connected());
    for (int i = 0; i < 8; ++i) {
      // Long jobs: nothing finishes before the kill.
      ServiceReply reply = client.SubmitSpec(SmallJob(/*runtime=*/200));
      ASSERT_TRUE(reply.transport_ok);
      ASSERT_TRUE(reply.ok) << reply.error;
      ++accepted;
    }
    // Kill mid-run: some jobs running, the rest still queued/pending.
    ASSERT_TRUE(harness.WaitFor(
        [](const DaemonStatus& status) { return status.running > 0; }));
    finished_before_kill = harness.daemon().StatusSnapshot().completed;

    ASSERT_EQ(raise(SIGTERM), 0);
    harness.Join();  // daemon exits on its own via the self-pipe
    RestoreDefaultSignalHandlers();
    EXPECT_EQ(harness.daemon().StatusSnapshot().validator_violations, 0);
  }

  // The final checkpoint must have produced a snapshot.
  EXPECT_FALSE(storage.ReadSnapshot().empty());

  // Restart against the same storage: every accepted-but-unfinished job is
  // resumed (pending again or adopted as running) and runs to completion.
  {
    DaemonOptions options = FastOptions();
    options.storage = &storage;
    DaemonHarness harness(options);
    ASSERT_TRUE(harness.Start());
    int64_t recovered = harness.daemon().recovered_pending() +
                        harness.daemon().recovered_running();
    EXPECT_EQ(recovered, accepted - finished_before_kill);
    EXPECT_GT(harness.daemon().recovered_running(), 0);

    ASSERT_TRUE(harness.WaitFor(
        [&](const DaemonStatus& status) {
          return status.completed + status.dropped >= recovered;
        },
        /*timeout_ms=*/20000))
        << "recovered jobs did not finish after restart";
    DaemonStatus status = harness.daemon().StatusSnapshot();
    EXPECT_EQ(status.validator_violations, 0);
    harness.Stop();
  }
}

// The journal survives a *second* restart cycle: jobs accepted by the
// restarted daemon are themselves durable.
TEST(ServiceEndToEndTest, JournalAcceptsNewWorkAfterRestart) {
  MemoryJournalStorage storage;
  {
    DaemonOptions options = FastOptions();
    options.storage = &storage;
    DaemonHarness harness(options);
    ASSERT_TRUE(harness.Start());
    ServiceClient client = harness.Connect("gen1");
    ServiceReply reply = client.SubmitSpec(SmallJob(/*runtime=*/500));
    ASSERT_TRUE(reply.transport_ok);
    ASSERT_TRUE(reply.ok);
    ASSERT_TRUE(harness.WaitFor(
        [](const DaemonStatus& status) { return status.running > 0; }));
    harness.Stop();  // RequestStop also runs the final checkpoint
  }
  {
    DaemonOptions options = FastOptions();
    options.storage = &storage;
    DaemonHarness harness(options);
    ASSERT_TRUE(harness.Start());
    EXPECT_EQ(harness.daemon().recovered_pending() +
                  harness.daemon().recovered_running(),
              1);
    harness.Stop();
  }
}

// STRL text submissions round-trip through the parser and schedule.
TEST(ServiceEndToEndTest, StrlSubmissionSchedules) {
  DaemonHarness harness(FastOptions());
  ASSERT_TRUE(harness.Start());
  ServiceClient client = harness.Connect("strl");
  ServiceReply reply = client.SubmitStrl(
      "nCk({p0,p1}, k=2, s=0, dur=8, v=4)");
  ASSERT_TRUE(reply.transport_ok);
  ASSERT_TRUE(reply.ok) << reply.error << ": " << reply.message;
  ASSERT_TRUE(harness.WaitFor([](const DaemonStatus& status) {
    return status.completed >= 1;
  })) << "STRL job never completed";
  harness.Stop();
}

// Cancel: a queued job is cancellable; a finished job reports conflict.
TEST(ServiceEndToEndTest, CancelQueuedAndFinishedJobs) {
  DaemonOptions options = FastOptions();
  options.cycle_period_ms = 50;  // slow cycles: jobs stay queued briefly
  options.admission.cycle_period_ms = 50;
  DaemonHarness harness(options);
  ASSERT_TRUE(harness.Start());
  ServiceClient client = harness.Connect("cancel-test");

  ServiceReply submit = client.SubmitSpec(SmallJob());
  ASSERT_TRUE(submit.ok);
  int64_t job = submit.body.IntOr("job", -1);
  ASSERT_GT(job, 0);
  ServiceReply cancel = client.Cancel(job);
  ASSERT_TRUE(cancel.transport_ok);
  if (cancel.ok) {  // lost the race with admission only on a very slow box
    ASSERT_TRUE(harness.WaitFor([&](const DaemonStatus& status) {
      return status.cancelled >= 1;
    }));
    ServiceReply again = client.Cancel(job);
    ASSERT_TRUE(again.transport_ok);
    EXPECT_FALSE(again.ok);  // already terminal
  }
  harness.Stop();
}

// The daemon-wide status and metrics ops answer over the wire with the
// service counters and the process/build-info gauges.
TEST(ServiceEndToEndTest, StatusAndMetricsOverTheWire) {
  DaemonHarness harness(FastOptions());
  ASSERT_TRUE(harness.Start());
  ServiceClient client = harness.Connect("obs");

  ServiceReply submit = client.SubmitSpec(SmallJob());
  ASSERT_TRUE(submit.ok);
  ASSERT_TRUE(harness.WaitFor(
      [](const DaemonStatus& status) { return status.completed >= 1; }));

  ServiceReply status = client.Status();
  ASSERT_TRUE(status.ok);
  EXPECT_GE(status.body.IntOr("completed", -1), 1);
  EXPECT_GE(status.body.IntOr("cycles", -1), 1);
  EXPECT_GE(status.body.IntOr("effective_plan_ahead", -1), 0);

  ServiceReply prom = client.Metrics("prom");
  ASSERT_TRUE(prom.ok);
  std::string text = prom.body.StringOr("metrics", "");
  EXPECT_NE(text.find("tetrisched_service_admitted_total"), std::string::npos);
  EXPECT_NE(text.find("tetrisched_process_uptime_seconds"), std::string::npos);
  EXPECT_NE(text.find("tetrisched_build_info{"), std::string::npos);

  ServiceReply explain = client.Explain(-1);
  ASSERT_TRUE(explain.ok);
  EXPECT_FALSE(explain.body.StringOr("report", "").empty());

  harness.Stop();
}

}  // namespace
}  // namespace tetrisched
