// Tests for the discrete-event simulator, admission wiring, and end-to-end
// integration with both scheduler stacks.

#include <gtest/gtest.h>

#include "src/baseline/capacity_scheduler.h"
#include "src/core/scheduler.h"
#include "src/sim/simulator.h"
#include "src/workload/workload.h"

namespace tetrisched {
namespace {

Job MakeJob(JobId id, JobType type, int k, SimDuration runtime,
            SimTime deadline, bool wants_reservation, SimTime submit,
            double slowdown = 1.5) {
  Job job;
  job.id = id;
  job.type = type;
  job.wants_reservation = wants_reservation;
  job.k = k;
  job.submit = submit;
  job.actual_runtime = runtime;
  job.slowdown = type == JobType::kUnconstrained ? 1.0 : slowdown;
  job.deadline = deadline;
  return job;
}

TEST(PlacementQualityTest, GpuMpiAndDataLocalRules) {
  Cluster cluster = MakeUniformCluster(2, 2, 1);
  PartitionId gpu = cluster.GpuPartitions()[0];
  PartitionId other = -1;
  for (const Partition& p : cluster.partitions()) {
    if (!p.has_gpu) {
      other = p.id;
    }
  }
  Job job;
  job.type = JobType::kGpu;
  EXPECT_TRUE(IsPreferredPlacement(cluster, job, {{gpu, 2}}));
  EXPECT_FALSE(IsPreferredPlacement(cluster, job, {{gpu, 1}, {other, 1}}));
  job.type = JobType::kMpi;
  EXPECT_TRUE(IsPreferredPlacement(cluster, job, {{gpu, 2}}));
  EXPECT_FALSE(IsPreferredPlacement(cluster, job, {{gpu, 1}, {other, 1}}));
  job.type = JobType::kUnconstrained;
  EXPECT_TRUE(IsPreferredPlacement(cluster, job, {{gpu, 1}, {other, 1}}));
  job.type = JobType::kDataLocal;
  job.preferred_partitions = {other};
  EXPECT_TRUE(IsPreferredPlacement(cluster, job, {{other, 2}}));
  EXPECT_FALSE(IsPreferredPlacement(cluster, job, {{gpu, 1}, {other, 1}}));
}

TEST(AdmissionTest, SplitsSloClasses) {
  Cluster cluster = MakeUniformCluster(1, 4, 0);
  std::vector<Job> jobs;
  // Two 4-node jobs with tight overlapping windows: only one fits the plan.
  jobs.push_back(MakeJob(1, JobType::kUnconstrained, 4, 100, 110, true, 0));
  jobs.push_back(MakeJob(2, JobType::kUnconstrained, 4, 100, 110, true, 0));
  jobs.push_back(MakeJob(3, JobType::kUnconstrained, 1, 10, kTimeNever, false, 0));
  int accepted = ApplyAdmission(cluster, jobs);
  EXPECT_EQ(accepted, 1);
  EXPECT_EQ(jobs[0].slo_class, SloClass::kSloAccepted);
  EXPECT_EQ(jobs[0].reservation.start, 0);
  EXPECT_EQ(jobs[1].slo_class, SloClass::kSloUnreserved);
  EXPECT_EQ(jobs[2].slo_class, SloClass::kBestEffort);
}

class SimulatorTest : public ::testing::Test {
 protected:
  SimulatorTest() : cluster_(MakeUniformCluster(2, 4, 1)) {}

  TetriSchedConfig ExactConfig() {
    TetriSchedConfig config = TetriSchedConfig::Full();
    config.milp.rel_gap = 0.0;
    return config;
  }

  Cluster cluster_;
};

TEST_F(SimulatorTest, SingleJobRunsToCompletion) {
  std::vector<Job> jobs{
      MakeJob(1, JobType::kUnconstrained, 2, 50, 500, true, 0)};
  ApplyAdmission(cluster_, jobs);
  TetriScheduler scheduler(cluster_, ExactConfig());
  Simulator sim(cluster_, scheduler, jobs);
  SimMetrics metrics = sim.Run();
  ASSERT_EQ(metrics.outcomes.size(), 1u);
  EXPECT_TRUE(metrics.outcomes[0].completed);
  EXPECT_EQ(metrics.outcomes[0].start_time, 0);
  EXPECT_EQ(metrics.outcomes[0].completion, 50);
  EXPECT_TRUE(metrics.outcomes[0].MetDeadline());
  EXPECT_DOUBLE_EQ(metrics.TotalSloAttainment(), 1.0);
}

TEST_F(SimulatorTest, GpuJobRunsFastOnGpu) {
  std::vector<Job> jobs{MakeJob(1, JobType::kGpu, 2, 40, 1000, true, 0)};
  ApplyAdmission(cluster_, jobs);
  TetriScheduler scheduler(cluster_, ExactConfig());
  Simulator sim(cluster_, scheduler, jobs);
  SimMetrics metrics = sim.Run();
  EXPECT_TRUE(metrics.outcomes[0].preferred);
  EXPECT_EQ(metrics.outcomes[0].completion, 40);  // fast runtime
}

TEST_F(SimulatorTest, UnderestimatedJobStillRunsToActualCompletion) {
  // Estimate says 25s, reality is 50s: the scheduler must adapt, and the
  // sim must complete the job at its actual time.
  std::vector<Job> jobs{
      MakeJob(1, JobType::kUnconstrained, 2, 50, 500, true, 0)};
  jobs[0].estimate_error = -0.5;
  ApplyAdmission(cluster_, jobs);
  TetriScheduler scheduler(cluster_, ExactConfig());
  Simulator sim(cluster_, scheduler, jobs);
  SimMetrics metrics = sim.Run();
  EXPECT_EQ(metrics.outcomes[0].completion, 50);
}

TEST_F(SimulatorTest, ContendingJobsSerializeWithoutOversubscription) {
  // Three 4-node jobs on 8 nodes: at most two run concurrently.
  std::vector<Job> jobs;
  for (int i = 0; i < 3; ++i) {
    jobs.push_back(
        MakeJob(i, JobType::kUnconstrained, 4, 60, kTimeNever, false, 0));
  }
  ApplyAdmission(cluster_, jobs);
  TetriScheduler scheduler(cluster_, ExactConfig());
  Simulator sim(cluster_, scheduler, jobs);
  SimMetrics metrics = sim.Run();
  int completed = 0;
  for (const JobOutcome& outcome : metrics.outcomes) {
    EXPECT_TRUE(outcome.completed);
    ++completed;
  }
  EXPECT_EQ(completed, 3);
  EXPECT_GT(metrics.makespan, 60);  // they could not all run at once
}

TEST_F(SimulatorTest, DroppedSloJobCountsAsMissed) {
  // Deadline impossible from the start: scheduler drops it.
  std::vector<Job> jobs{
      MakeJob(1, JobType::kUnconstrained, 2, 100, 50, true, 0)};
  ApplyAdmission(cluster_, jobs);
  TetriScheduler scheduler(cluster_, ExactConfig());
  Simulator sim(cluster_, scheduler, jobs);
  SimMetrics metrics = sim.Run();
  EXPECT_TRUE(metrics.outcomes[0].dropped);
  EXPECT_FALSE(metrics.outcomes[0].MetDeadline());
  EXPECT_DOUBLE_EQ(metrics.TotalSloAttainment(), 0.0);
}

TEST_F(SimulatorTest, UtilizationWithinBounds) {
  std::vector<Job> jobs;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back(MakeJob(i, JobType::kUnconstrained, 2, 40, kTimeNever,
                           false, i * 10));
  }
  ApplyAdmission(cluster_, jobs);
  TetriScheduler scheduler(cluster_, ExactConfig());
  Simulator sim(cluster_, scheduler, jobs);
  SimMetrics metrics = sim.Run();
  EXPECT_GT(metrics.utilization, 0.0);
  EXPECT_LE(metrics.utilization, 1.0);
}

TEST_F(SimulatorTest, BestEffortLatencyMeasured) {
  std::vector<Job> jobs{
      MakeJob(1, JobType::kUnconstrained, 2, 30, kTimeNever, false, 5)};
  ApplyAdmission(cluster_, jobs);
  TetriScheduler scheduler(cluster_, ExactConfig());
  Simulator sim(cluster_, scheduler, jobs);
  SimMetrics metrics = sim.Run();
  // Submitted at 5, starts at the next 4s cycle (8), runs 30 -> latency 33.
  EXPECT_NEAR(metrics.MeanBestEffortLatency(), 33.0, 1e-9);
}

// --- Baseline CapacityScheduler ---------------------------------------------

class BaselineTest : public ::testing::Test {
 protected:
  BaselineTest() : cluster_(MakeUniformCluster(2, 4, 1)) {}
  Cluster cluster_;
};

TEST_F(BaselineTest, RunsSimpleWorkload) {
  std::vector<Job> jobs{
      MakeJob(1, JobType::kUnconstrained, 4, 50, 300, true, 0),
      MakeJob(2, JobType::kUnconstrained, 2, 30, kTimeNever, false, 0)};
  ApplyAdmission(cluster_, jobs);
  CapacityScheduler scheduler(cluster_);
  Simulator sim(cluster_, scheduler, jobs);
  SimMetrics metrics = sim.Run();
  EXPECT_TRUE(metrics.outcomes[0].completed);
  EXPECT_TRUE(metrics.outcomes[1].completed);
  EXPECT_DOUBLE_EQ(metrics.AcceptedSloAttainment(), 1.0);
}

TEST_F(BaselineTest, PreemptsBestEffortForReservation) {
  // BE job fills the cluster; an accepted SLO job whose reservation starts
  // later must preempt it.
  std::vector<Job> jobs{
      MakeJob(1, JobType::kUnconstrained, 8, 200, kTimeNever, false, 0),
      MakeJob(2, JobType::kUnconstrained, 8, 50, 300, true, 20)};
  ApplyAdmission(cluster_, jobs);
  ASSERT_EQ(jobs[1].slo_class, SloClass::kSloAccepted);
  CapacityScheduler scheduler(cluster_);
  Simulator sim(cluster_, scheduler, jobs);
  SimMetrics metrics = sim.Run();
  EXPECT_GT(metrics.preemptions, 0);
  EXPECT_TRUE(metrics.outcomes[1].MetDeadline());
  // The BE job eventually completes after restarting.
  EXPECT_TRUE(metrics.outcomes[0].completed);
}

TEST_F(BaselineTest, HeterogeneityUnawarePlacement) {
  // An MPI job with free nodes spread across racks gets a spread placement
  // (slow), whereas TetriSched would pack it onto one rack.
  std::vector<Job> jobs{
      MakeJob(1, JobType::kMpi, 4, 40, 10000, true, 0, /*slowdown=*/2.0)};
  ApplyAdmission(cluster_, jobs);

  {
    CapacityScheduler cs(cluster_);
    Simulator sim(cluster_, cs, jobs);
    SimMetrics metrics = sim.Run();
    // CS takes nodes in partition order; with 4-node racks the job fits on
    // rack 0 -> actually preferred here. Occupy rack 0 partially instead:
    // simpler check below uses TetriSched vs CS on a contended setup.
    EXPECT_TRUE(metrics.outcomes[0].completed);
  }

  // Contended: fragment the free capacity. A long 3-gang pins most of rack
  // 0; a short 3-gang straddles into rack 1 and finishes, leaving 1 free
  // node on rack 0 and 4 on rack 1 when the MPI job arrives. CS packs nodes
  // in partition order and spreads the gang across racks (slow run);
  // TetriSched's rack-local STRL option picks rack 1 (fast run).
  // Rack-local occupiers pin down one rack each (3 of 4 nodes); the short
  // one finishes before the MPI job arrives, leaving 1 free node on one rack
  // and 4 on the other.
  std::vector<Job> contended{
      MakeJob(10, JobType::kMpi, 3, 300, kTimeNever, false, 0, 2.0),
      MakeJob(12, JobType::kMpi, 3, 20, kTimeNever, false, 0, 2.0),
      MakeJob(11, JobType::kMpi, 4, 40, 10000, true, 24, 2.0)};
  ApplyAdmission(cluster_, contended);

  CapacityScheduler cs(cluster_);
  Simulator cs_sim(cluster_, cs, contended);
  SimMetrics cs_metrics = cs_sim.Run();

  TetriSchedConfig config = TetriSchedConfig::Full();
  config.milp.rel_gap = 0.0;
  TetriScheduler tetri(cluster_, config);
  Simulator tetri_sim(cluster_, tetri, contended);
  SimMetrics tetri_metrics = tetri_sim.Run();

  const JobOutcome* cs_mpi = &cs_metrics.outcomes[2];
  const JobOutcome* tetri_mpi = &tetri_metrics.outcomes[2];
  ASSERT_EQ(cs_mpi->id, 11);
  ASSERT_EQ(tetri_mpi->id, 11);
  EXPECT_FALSE(cs_mpi->preferred);
  EXPECT_TRUE(tetri_mpi->preferred);
  EXPECT_LT(tetri_mpi->completion - tetri_mpi->start_time,
            cs_mpi->completion - cs_mpi->start_time);
}

// --- End-to-end smoke: full workload through both stacks --------------------

TEST(EndToEndTest, TetriSchedBeatsBaselineOnHetMix) {
  Cluster cluster = MakeUniformCluster(4, 4, 2);
  WorkloadParams params;
  params.kind = WorkloadKind::kGsHet;
  params.num_jobs = 30;
  params.seed = 42;
  std::vector<Job> jobs = GenerateWorkload(cluster, params);
  ApplyAdmission(cluster, jobs);

  TetriSchedConfig config = TetriSchedConfig::Full();
  config.milp.time_limit_seconds = 0.2;
  TetriScheduler tetri(cluster, config);
  SimMetrics tetri_metrics = Simulator(cluster, tetri, jobs).Run();

  CapacityScheduler cs(cluster);
  SimMetrics cs_metrics = Simulator(cluster, cs, jobs).Run();

  // Both must finish the workload sanely.
  EXPECT_GT(tetri_metrics.TotalSloAttainment(), 0.3);
  EXPECT_LE(tetri_metrics.utilization, 1.0);
  EXPECT_LE(cs_metrics.utilization, 1.0);
  // The headline claim, qualitatively: TetriSched attains at least as many
  // SLOs on the heterogeneous mix.
  EXPECT_GE(tetri_metrics.TotalSloAttainment(),
            cs_metrics.TotalSloAttainment() - 1e-9);
}

}  // namespace
}  // namespace tetrisched
