// Wire-layer tests (DESIGN.md §16): frame codec round trips, hostile-input
// behavior of the incremental decoder (seeded fuzz), and the event loop +
// framed connection over a socketpair.

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/net/event_loop.h"
#include "src/net/frame.h"
#include "src/net/socket.h"

namespace tetrisched {
namespace {

std::string Payload(size_t n, char fill = 'x') {
  return std::string(n, fill);
}

TEST(FrameCodecTest, RoundTripSingleFrame) {
  FrameDecoder decoder;
  decoder.Feed(EncodeNetFrame("hello"));
  std::string payload;
  ASSERT_EQ(decoder.Next(&payload), FrameDecoder::Result::kFrame);
  EXPECT_EQ(payload, "hello");
  EXPECT_EQ(decoder.Next(&payload), FrameDecoder::Result::kNeedMore);
  EXPECT_EQ(decoder.frames_decoded(), 1);
  EXPECT_EQ(decoder.resyncs(), 0);
}

TEST(FrameCodecTest, EmptyPayloadAndBinaryPayload) {
  FrameDecoder decoder;
  std::string binary = std::string("\x00\x01TSF1\xff", 7);  // magic inside
  decoder.Feed(EncodeNetFrame(""));
  decoder.Feed(EncodeNetFrame(binary));
  std::string payload;
  ASSERT_EQ(decoder.Next(&payload), FrameDecoder::Result::kFrame);
  EXPECT_EQ(payload, "");
  ASSERT_EQ(decoder.Next(&payload), FrameDecoder::Result::kFrame);
  EXPECT_EQ(payload, binary);
}

TEST(FrameCodecTest, ByteAtATimeDelivery) {
  std::string stream = EncodeNetFrame("first") + EncodeNetFrame("second");
  FrameDecoder decoder;
  std::vector<std::string> got;
  for (char byte : stream) {
    decoder.Feed(std::string_view(&byte, 1));
    std::string payload;
    while (decoder.Next(&payload) == FrameDecoder::Result::kFrame) {
      got.push_back(payload);
    }
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "first");
  EXPECT_EQ(got[1], "second");
}

TEST(FrameCodecTest, TruncatedFrameNeverYields) {
  std::string frame = EncodeNetFrame("truncate me please");
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    FrameDecoder decoder;
    decoder.Feed(std::string_view(frame.data(), cut));
    std::string payload;
    EXPECT_EQ(decoder.Next(&payload), FrameDecoder::Result::kNeedMore)
        << "cut at " << cut;
    // Completing the frame afterwards still decodes it.
    decoder.Feed(std::string_view(frame.data() + cut, frame.size() - cut));
    ASSERT_EQ(decoder.Next(&payload), FrameDecoder::Result::kFrame);
    EXPECT_EQ(payload, "truncate me please");
  }
}

TEST(FrameCodecTest, OversizedLengthRejectedWithoutBuffering) {
  constexpr size_t kCap = 4096;
  FrameDecoder decoder(kCap);
  // A header claiming ~1 GiB: the decoder must reject it from the header
  // alone. We can't observe allocator calls directly, but buffered_bytes is
  // documented (and asserted) to stay bounded by cap + header, which is
  // impossible if the claimed size were ever reserved.
  std::string header(kFrameMagic, sizeof(kFrameMagic));
  uint32_t huge = 1u << 30;
  header.append(reinterpret_cast<const char*>(&huge), sizeof(huge));
  decoder.Feed(header);
  std::string payload;
  EXPECT_EQ(decoder.Next(&payload), FrameDecoder::Result::kNeedMore);
  EXPECT_EQ(decoder.oversized_rejected(), 1);
  EXPECT_LE(decoder.buffered_bytes(), kCap + kFrameHeaderBytes);

  // The stream recovers: a valid frame after the hostile header decodes.
  decoder.Feed(Payload(64, 'z'));  // pretend-payload of the hostile frame
  decoder.Feed(EncodeNetFrame("survivor"));
  std::vector<std::string> got;
  while (decoder.Next(&payload) == FrameDecoder::Result::kFrame) {
    got.push_back(payload);
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "survivor");
  EXPECT_LE(decoder.buffered_bytes(), kCap + kFrameHeaderBytes);
}

TEST(FrameCodecTest, MaxSizedFrameStillDecodes) {
  constexpr size_t kCap = 1024;
  FrameDecoder decoder(kCap);
  std::string payload_in = Payload(kCap, 'm');
  decoder.Feed(EncodeNetFrame(payload_in));
  std::string payload;
  ASSERT_EQ(decoder.Next(&payload), FrameDecoder::Result::kFrame);
  EXPECT_EQ(payload, payload_in);
  // One byte over the cap is rejected.
  decoder.Feed(EncodeNetFrame(Payload(kCap + 1)));
  EXPECT_EQ(decoder.Next(&payload), FrameDecoder::Result::kNeedMore);
  EXPECT_EQ(decoder.oversized_rejected(), 1);
}

TEST(FrameCodecTest, GarbageThenValidFrameResyncs) {
  FrameDecoder decoder;
  decoder.Feed("this is not a frame at all, just noise ... TSF");  // bait
  decoder.Feed("not-magic");
  decoder.Feed(EncodeNetFrame("the real thing"));
  std::string payload;
  ASSERT_EQ(decoder.Next(&payload), FrameDecoder::Result::kFrame);
  EXPECT_EQ(payload, "the real thing");
  EXPECT_GE(decoder.resyncs(), 1);
  EXPECT_GT(decoder.bytes_skipped(), 0);
}

TEST(FrameCodecTest, BitFlippedLengthPrefixLosesOneFrameNotTheStream) {
  // Flip every bit of the length prefix in turn. A flipped length may
  // shrink the frame (tail skipped), inflate it (following bytes swallowed
  // as payload), or blow past the cap (rejected from the header). The
  // padding between victim and survivor exceeds any in-cap claim, so in
  // every case the survivor frame must come through.
  constexpr size_t kCap = 1 << 12;
  std::string first = EncodeNetFrame("victim-frame-payload");
  std::string padding(kCap + 64, '.');  // magic-free, longer than any claim
  std::string second = EncodeNetFrame("survivor");
  for (size_t bit = 0; bit < 32; ++bit) {
    std::string corrupted = first;
    corrupted[4 + bit / 8] ^= static_cast<char>(1u << (bit % 8));
    FrameDecoder decoder(kCap);
    decoder.Feed(corrupted);
    decoder.Feed(padding);
    decoder.Feed(second);
    std::string payload;
    std::vector<std::string> got;
    while (decoder.Next(&payload) == FrameDecoder::Result::kFrame) {
      got.push_back(payload);
    }
    ASSERT_FALSE(got.empty()) << "bit " << bit;
    EXPECT_EQ(got.back(), "survivor") << "bit " << bit;
    EXPECT_LE(decoder.buffered_bytes(), kCap + kFrameHeaderBytes);
  }
}

// Seeded fuzz: interleave valid frames with garbage, truncations, hostile
// lengths, and random chunking. Deterministic by construction (fixed seed).
//
// Each injected corruption is followed by a magic-free pad longer than any
// in-cap length claim, so a bogus header can only ever swallow pad bytes.
// Under that construction the decoder owes us *every* valid frame, in
// order — possibly interleaved with bogus frames assembled from corrupt
// bytes, which length-prefix framing cannot avoid.
TEST(FrameCodecFuzzTest, SeededHostileStream) {
  std::mt19937 rng(0xC0FFEE);
  constexpr size_t kCap = 1 << 12;
  const std::string pad(kCap + 64, '.');  // exceeds any accepted claim

  for (int round = 0; round < 50; ++round) {
    std::string stream;
    std::vector<std::string> expected;
    std::uniform_int_distribution<int> action(0, 4);
    std::uniform_int_distribution<int> size_dist(0, 256);
    for (int i = 0; i < 40; ++i) {
      switch (action(rng)) {
        case 0:
        case 1: {  // valid frame (lowercase payload: can't contain magic)
          std::string payload(static_cast<size_t>(size_dist(rng)), 'a');
          for (char& c : payload) {
            c = static_cast<char>('a' + rng() % 26);
          }
          stream += EncodeNetFrame(payload);
          expected.push_back(payload);
          break;
        }
        case 2: {  // garbage bytes (lowercase, so no accidental magic)
          size_t n = static_cast<size_t>(size_dist(rng));
          for (size_t b = 0; b < n; ++b) {
            stream += static_cast<char>('a' + rng() % 26);
          }
          stream += pad;
          break;
        }
        case 3: {  // truncated frame (header + partial payload)
          std::string frame = EncodeNetFrame(
              std::string(static_cast<size_t>(size_dist(rng)) + 8, 't'));
          stream += frame.substr(0, kFrameHeaderBytes + 4);
          stream += pad;
          break;
        }
        case 4: {  // hostile oversized header
          std::string header(kFrameMagic, sizeof(kFrameMagic));
          uint32_t huge = (1u << 24) + rng() % 1000;
          header.append(reinterpret_cast<const char*>(&huge), sizeof(huge));
          stream += header;
          stream += pad;
          break;
        }
      }
    }

    // Feed in random chunk sizes.
    FrameDecoder decoder(kCap);
    std::vector<std::string> got;
    size_t pos = 0;
    std::uniform_int_distribution<size_t> chunk_dist(1, 97);
    while (pos < stream.size()) {
      size_t n = std::min(chunk_dist(rng), stream.size() - pos);
      decoder.Feed(std::string_view(stream.data() + pos, n));
      pos += n;
      std::string payload;
      while (decoder.Next(&payload) == FrameDecoder::Result::kFrame) {
        got.push_back(payload);
      }
      // The DoS bound must hold at every step, not just at the end.
      ASSERT_LE(decoder.buffered_bytes(), kCap + kFrameHeaderBytes);
    }

    // Completeness: every valid frame arrives, in order, as an ordered
    // subsequence of the decoded stream.
    size_t cursor = 0;
    for (size_t e = 0; e < expected.size(); ++e) {
      while (cursor < got.size() && got[cursor] != expected[e]) {
        ++cursor;  // skip bogus frames assembled from corrupt bytes
      }
      ASSERT_LT(cursor, got.size())
          << "round " << round << ": lost valid frame " << e << " of "
          << expected.size();
      ++cursor;
    }
    EXPECT_EQ(decoder.frames_decoded(), static_cast<int64_t>(got.size()));
  }
}

TEST(EventLoopTest, WakeupInterruptsPoll) {
  EventLoop loop;
  loop.Wakeup();
  // Returns promptly (0 dispatched handlers) instead of blocking 5 s.
  EXPECT_EQ(loop.PollOnce(5000), 0);
}

TEST(EventLoopTest, DispatchesReadableAndHonorsRemove) {
  EventLoop loop;
  auto [a, b] = MakeSocketPair();
  ASSERT_TRUE(a.valid());
  int events_seen = 0;
  loop.Add(a.get(), [&](uint32_t mask) {
    EXPECT_TRUE(mask & EventLoop::kReadable);
    ++events_seen;
    char buf[16];
    [[maybe_unused]] ssize_t n = ::read(a.get(), buf, sizeof(buf));
  });
  ASSERT_EQ(::write(b.get(), "x", 1), 1);
  EXPECT_EQ(loop.PollOnce(1000), 1);
  EXPECT_EQ(events_seen, 1);

  loop.Remove(a.get());
  ASSERT_EQ(::write(b.get(), "y", 1), 1);
  EXPECT_EQ(loop.PollOnce(0), 0);
  EXPECT_EQ(events_seen, 1);
}

TEST(FramedConnectionTest, RoundTripOverSocketPair) {
  auto [a, b] = MakeSocketPair();
  ASSERT_TRUE(a.valid());
  FramedConnection left(std::move(a), kDefaultMaxFrameBytes, 1);
  FramedConnection right(std::move(b), kDefaultMaxFrameBytes, 2);

  ASSERT_TRUE(left.SendFrame("ping"));
  std::vector<std::string> frames;
  ASSERT_TRUE(right.ReadInto(&frames));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], "ping");

  ASSERT_TRUE(right.SendFrame("pong"));
  frames.clear();
  ASSERT_TRUE(left.ReadInto(&frames));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], "pong");
}

TEST(FramedConnectionTest, PeerCloseDetected) {
  auto [a, b] = MakeSocketPair();
  FramedConnection left(std::move(a), kDefaultMaxFrameBytes, 1);
  b.Reset();  // peer gone
  std::vector<std::string> frames;
  EXPECT_FALSE(left.ReadInto(&frames));
  EXPECT_TRUE(left.closed());
}

TEST(SocketTest, TcpLoopbackListenConnectAccept) {
  int port = 0;
  UniqueFd listener = ListenTcpLoopback(0, &port);
  ASSERT_TRUE(listener.valid());
  ASSERT_GT(port, 0);
  UniqueFd client = ConnectTcpLoopback(port);
  ASSERT_TRUE(client.valid());
  UniqueFd accepted = AcceptOne(listener.get());
  ASSERT_TRUE(accepted.valid());
  ASSERT_EQ(::write(client.get(), "hi", 2), 2);
  char buf[4] = {};
  EXPECT_EQ(::read(accepted.get(), buf, sizeof(buf)), 2);
  EXPECT_EQ(std::string(buf, 2), "hi");
}

}  // namespace
}  // namespace tetrisched
